#include "telemetry/bench_report.h"

#include <fstream>

#include "telemetry/json.h"

namespace bigmap::telemetry {

void write_snapshot_json(JsonWriter& w, const StatsSnapshot& s) {
  w.begin_object();
  if (s.instance_id == 0xFFFFFFFFu) {
    w.field("instance", "fleet");
  } else {
    w.field("instance", s.instance_id);
  }
  w.field("kernel", s.kernel);
  w.field("relative_ms", s.relative_ms);
  w.field("execs", s.execs);
  w.field("execs_per_sec", s.execs_per_sec);
  w.field("execs_per_sec_now", s.execs_per_sec_now);
  w.field("interesting", s.interesting);
  w.field("crashes", s.crashes);
  w.field("hangs", s.hangs);
  w.field("queue_depth", s.queue_depth);
  w.field("covered_positions", s.covered_positions);
  w.field("map_positions", s.map_positions);
  w.field("map_density", s.map_density());
  w.field("used_key", s.used_key);
  w.field("saturated_updates", s.saturated_updates);
  w.field("trim_execs", s.trim_execs);
  w.field("sync_published", s.sync_published);
  w.field("sync_imported", s.sync_imported);
  w.field("faulted_execs", s.faulted_execs);
  w.field("injected_hangs", s.injected_hangs);
  w.field("restarts", s.restarts);
  w.field("tracing_untraced_execs", s.tracing_untraced_execs);
  w.field("tracing_traced_execs", s.tracing_traced_execs);
  w.field("tracing_oracle_fires", s.tracing_oracle_fires);
  w.field("tracing_reexec_ns", s.tracing_reexec_ns);
  w.field("checkpoints_written", s.checkpoints_written);
  w.field("checkpoints_loaded", s.checkpoints_loaded);
  w.field("checkpoint_bytes", s.checkpoint_bytes);
  w.field("recovery_torn_tail", s.recovery_torn_tail);
  w.field("recovery_bad_crc", s.recovery_bad_crc);
  w.field("recovery_version_mismatch", s.recovery_version_mismatch);
  w.field("map_resets", s.map_resets);
  w.field("map_classifies", s.map_classifies);
  w.field("map_compares", s.map_compares);
  w.field("map_hashes", s.map_hashes);
  w.end_object();
}

BenchReport::BenchReport(std::string bench_name, double scale)
    : bench_(std::move(bench_name)), scale_(scale) {}

void BenchReport::set_meta(std::string key, std::string value) {
  meta_.emplace_back(std::move(key), MetaValue(std::move(value)));
}

void BenchReport::set_meta(std::string key, double value) {
  meta_.emplace_back(std::move(key), MetaValue(value));
}

void BenchReport::set_meta(std::string key, u64 value) {
  meta_.emplace_back(std::move(key), MetaValue(value));
}

void BenchReport::add_table(std::string name, const TableWriter& table) {
  Table t;
  t.name = std::move(name);
  t.columns = table.header();
  t.rows = table.rows();
  tables_.push_back(std::move(t));
}

void BenchReport::add_series(std::string name,
                             std::vector<StatsSnapshot> series) {
  series_.push_back({std::move(name), std::move(series)});
}

std::string BenchReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("schema_version", kSchemaVersion);
  w.field("bench", bench_);
  w.field("scale", scale_);

  w.key("meta").begin_object();
  for (const auto& [k, v] : meta_) {
    w.key(k);
    if (const auto* s = std::get_if<std::string>(&v)) {
      w.value(*s);
    } else if (const auto* d = std::get_if<double>(&v)) {
      w.value(*d);
    } else {
      w.value(std::get<u64>(v));
    }
  }
  w.end_object();

  w.key("tables").begin_array();
  for (const Table& t : tables_) {
    w.begin_object();
    w.field("name", t.name);
    w.key("columns").begin_array();
    for (const std::string& c : t.columns) w.value(c);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : t.rows) {
      w.begin_array();
      for (const std::string& cell : row) w.value(cell);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("series").begin_array();
  for (const Series& s : series_) {
    w.begin_object();
    w.field("name", s.name);
    w.key("snapshots").begin_array();
    for (const StatsSnapshot& snap : s.snapshots) {
      write_snapshot_json(w, snap);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

bool BenchReport::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << to_json() << '\n';
  return static_cast<bool>(f);
}

}  // namespace bigmap::telemetry
