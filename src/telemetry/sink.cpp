#include "telemetry/sink.h"

#include <algorithm>

#include "util/timing.h"

namespace bigmap::telemetry {

TelemetrySink::TelemetrySink(u32 instance_id)
    : instance_id_(instance_id), born_ns_(monotonic_ns()) {}

u64 TelemetrySink::now_ms() const noexcept {
  return (monotonic_ns() - born_ns_) / 1000000;
}

StatsSnapshot TelemetrySink::live_at(u64 relative_ms) const {
  StatsSnapshot s;
  s.instance_id = instance_id_;
  s.kernel = kernel_.load(std::memory_order_relaxed);
  s.relative_ms = relative_ms;

  s.execs = execs.get();
  s.interesting = interesting.get();
  s.crashes = crashes.get();
  s.hangs = hangs.get();
  s.trim_execs = trim_execs.get();
  s.sync_published = sync_published.get();
  s.sync_imported = sync_imported.get();
  s.faulted_execs = faulted_execs.get();
  s.injected_hangs = injected_hangs.get();
  s.restarts = restarts.get();
  s.tracing_untraced_execs = tracing_untraced_execs.get();
  s.tracing_traced_execs = tracing_traced_execs.get();
  s.tracing_oracle_fires = tracing_oracle_fires.get();
  s.tracing_reexec_ns = tracing_reexec_ns.get();

  s.checkpoints_written = checkpoints_written.get();
  s.checkpoints_loaded = checkpoints_loaded.get();
  s.checkpoint_bytes = checkpoint_bytes.get();
  s.recovery_torn_tail = recovery_torn_tail.get();
  s.recovery_bad_crc = recovery_bad_crc.get();
  s.recovery_version_mismatch = recovery_version_mismatch.get();

  s.queue_depth = queue_depth.get();
  s.covered_positions = covered_positions.get();
  s.map_positions = map_positions.get();
  s.used_key = used_key.get();
  s.saturated_updates = saturated_updates.get();
  s.map_resets = map_resets.get();
  s.map_classifies = map_classifies.get();
  s.map_compares = map_compares.get();
  s.map_hashes = map_hashes.get();

  if (relative_ms > 0) {
    s.execs_per_sec =
        static_cast<double>(s.execs) * 1000.0 / static_cast<double>(relative_ms);
  }
  s.execs_per_sec_now = s.execs_per_sec;
  return s;
}

StatsSnapshot TelemetrySink::stamp_at(u64 relative_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!series_.empty()) {
    relative_ms = std::max(relative_ms, series_.back().relative_ms);
  }
  StatsSnapshot s = live_at(relative_ms);
  if (!series_.empty()) {
    const StatsSnapshot& prev = series_.back();
    const u64 dt_ms = s.relative_ms - prev.relative_ms;
    // Counters are monotone, but don't trust it across observer reads under
    // relaxed ordering: clamp the delta at 0.
    const u64 de = s.execs > prev.execs ? s.execs - prev.execs : 0;
    s.execs_per_sec_now =
        dt_ms > 0 ? static_cast<double>(de) * 1000.0 /
                        static_cast<double>(dt_ms)
                  : s.execs_per_sec;
  }
  series_.push_back(s);
  return s;
}

std::vector<StatsSnapshot> TelemetrySink::series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_;
}

usize TelemetrySink::series_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

StatsSnapshot TelemetrySink::latest() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!series_.empty()) return series_.back();
  }
  return live();
}

FleetTelemetry::FleetTelemetry(u32 num_instances)
    : restarts_(registry_.counter("supervisor.restarts")),
      stalls_(registry_.counter("supervisor.stalls")),
      kills_(registry_.counter("supervisor.kills")),
      alloc_failures_(registry_.counter("supervisor.alloc_failures")),
      backoff_ms_total_(registry_.counter("supervisor.backoff_ms_total")) {
  for (u32 id = 0; id < num_instances; ++id) sinks_.emplace_back(id);
}

StatsSnapshot FleetTelemetry::fleet_total() const {
  StatsSnapshot total;
  total.instance_id = 0xFFFFFFFFu;  // fleet marker
  for (const TelemetrySink& sink : sinks_) {
    const StatsSnapshot s = sink.latest();
    // The kernel is a process-wide selection; surface the first instance
    // that reported one.
    if (total.kernel[0] == '\0' && s.kernel[0] != '\0') {
      total.kernel = s.kernel;
    }
    total.relative_ms = std::max(total.relative_ms, s.relative_ms);
    total.execs += s.execs;
    total.interesting += s.interesting;
    total.crashes += s.crashes;
    total.hangs += s.hangs;
    total.trim_execs += s.trim_execs;
    total.sync_published += s.sync_published;
    total.sync_imported += s.sync_imported;
    total.faulted_execs += s.faulted_execs;
    total.injected_hangs += s.injected_hangs;
    total.tracing_untraced_execs += s.tracing_untraced_execs;
    total.tracing_traced_execs += s.tracing_traced_execs;
    total.tracing_oracle_fires += s.tracing_oracle_fires;
    total.tracing_reexec_ns += s.tracing_reexec_ns;
    total.checkpoints_written += s.checkpoints_written;
    total.checkpoints_loaded += s.checkpoints_loaded;
    total.checkpoint_bytes += s.checkpoint_bytes;
    total.recovery_torn_tail += s.recovery_torn_tail;
    total.recovery_bad_crc += s.recovery_bad_crc;
    total.recovery_version_mismatch += s.recovery_version_mismatch;
    total.queue_depth += s.queue_depth;
    total.covered_positions += s.covered_positions;
    total.map_positions += s.map_positions;
    total.used_key += s.used_key;
    total.saturated_updates += s.saturated_updates;
    total.map_resets += s.map_resets;
    total.map_classifies += s.map_classifies;
    total.map_compares += s.map_compares;
    total.map_hashes += s.map_hashes;
    total.execs_per_sec += s.execs_per_sec;
    total.execs_per_sec_now += s.execs_per_sec_now;
  }
  total.restarts = restarts_.get();
  return total;
}

StatsSnapshot FleetTelemetry::stamp_fleet() {
  StatsSnapshot s = fleet_total();
  std::lock_guard<std::mutex> lock(mu_);
  if (!fleet_series_.empty()) {
    s.relative_ms =
        std::max(s.relative_ms, fleet_series_.back().relative_ms);
  }
  fleet_series_.push_back(s);
  return s;
}

std::vector<StatsSnapshot> FleetTelemetry::fleet_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fleet_series_;
}

}  // namespace bigmap::telemetry
