// Dependency-free JSON writer for machine-readable stats and bench reports.
//
// Deliberately tiny: a forward-only stream builder with automatic comma
// placement and structural validation (mismatched begin/end or a value
// without a pending key in an object abort in debug, produce well-formed
// output otherwise). No DOM, no parsing — every consumer in this repo only
// ever serializes. Output is deterministic for a given call sequence, which
// the golden-file tests rely on.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/types.h"

namespace bigmap::telemetry {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included): ", \, control characters -> \uXXXX.
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key for the next value; only valid directly inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(u64 v);
  JsonWriter& value(i64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(int v) { return value(static_cast<i64>(v)); }
  // Doubles use shortest-ish "%.12g"; NaN/Inf (invalid JSON) become null.
  JsonWriter& value(double v);
  JsonWriter& null();

  // Convenience: key + value in one call.
  template <class T>
  JsonWriter& field(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  // True once every container opened has been closed and a top-level value
  // was written.
  bool complete() const noexcept;

  // The document so far. Call only when complete() for valid JSON.
  const std::string& str() const noexcept { return out_; }

 private:
  enum class Frame : u8 { kObject, kArray };

  void pre_value();  // comma / key bookkeeping before any value or open

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_elems_;
  bool key_pending_ = false;
  bool top_level_done_ = false;
};

}  // namespace bigmap::telemetry
