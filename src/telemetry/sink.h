// TelemetrySink: the live metrics surface one campaign instance publishes
// into, plus FleetTelemetry, the supervisor-side aggregate over N sinks.
//
// Split of responsibilities:
//  - hot path (every execution): lock-free Counter bumps and one Histogram
//    record — no mutex, no allocation (see registry.h);
//  - cadence path (every telemetry_interval execs): the campaign refreshes
//    the map-state gauges and calls stamp(), which assembles a
//    StatsSnapshot — rates included — and appends it to a mutex-guarded
//    series (the raw data behind plot_data);
//  - observer path (supervisor / emitter threads): live() reads the
//    counters at any time without stopping the instance; series() copies
//    the stamped history.
//
// A sink outlives the campaign attempts that feed it: the supervisor keeps
// one sink per instance slot across restarts, so counters and the snapshot
// series are cumulative per *instance*, not per attempt — execs in the last
// snapshot of each instance sum to the supervisor's fleet total.
#pragma once

#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/snapshot.h"

namespace bigmap::telemetry {

class TelemetrySink {
 public:
  explicit TelemetrySink(u32 instance_id = 0);

  u32 instance_id() const noexcept { return instance_id_; }

  // --- hot-path counters (lock-free) ---------------------------------------
  Counter execs;
  Counter interesting;
  Counter crashes;
  Counter hangs;
  Counter trim_execs;
  Counter sync_published;
  Counter sync_imported;
  Counter faulted_execs;
  Counter injected_hangs;
  Counter restarts;  // bumped by the supervisor, not the campaign

  // Coverage-guided tracing counters (see CampaignConfig::tracing):
  // untraced/traced exec split, oracle fires, and wall time spent in traced
  // re-executions.
  Counter tracing_untraced_execs;
  Counter tracing_traced_execs;
  Counter tracing_oracle_fires;
  Counter tracing_reexec_ns;

  // Persistence counters (bumped by the campaign's checkpoint path; see
  // persist/checkpoint.h for the recovery-cause taxonomy).
  Counter checkpoints_written;
  Counter checkpoints_loaded;
  Counter checkpoint_bytes;
  Counter recovery_torn_tail;
  Counter recovery_bad_crc;
  Counter recovery_version_mismatch;

  // Per-execution wall time, log-2 ns buckets.
  Histogram exec_ns;

  // --- sampled gauges (set on the stamp cadence) ---------------------------
  Gauge queue_depth;
  Gauge covered_positions;
  Gauge map_positions;
  Gauge used_key;
  Gauge saturated_updates;
  Gauge map_resets;
  Gauge map_classifies;
  Gauge map_compares;
  Gauge map_hashes;

  // Builds a snapshot of the current counters/gauges at `relative_ms` (most
  // callers use live(), which reads the sink's own clock). Does not append
  // to the series; rates are lifetime-only.
  StatsSnapshot live_at(u64 relative_ms) const;
  StatsSnapshot live() const { return live_at(now_ms()); }

  // Appends live_at(relative_ms) to the series, computing the instantaneous
  // rate against the previous snapshot. relative_ms is clamped to be
  // monotone within the series.
  StatsSnapshot stamp_at(u64 relative_ms);
  StatsSnapshot stamp() { return stamp_at(now_ms()); }

  std::vector<StatsSnapshot> series() const;
  usize series_size() const;
  // Last stamped snapshot; a live() snapshot when none was stamped yet.
  StatsSnapshot latest() const;

  // Milliseconds since this sink was constructed.
  u64 now_ms() const noexcept;

  // Records which whole-map kernel the campaign's coverage map uses; must
  // be a string with static storage duration (kernel names are). Stamped
  // into every subsequent snapshot.
  void set_kernel(const char* name) noexcept {
    kernel_.store(name, std::memory_order_relaxed);
  }
  const char* kernel() const noexcept {
    return kernel_.load(std::memory_order_relaxed);
  }

 private:
  const u32 instance_id_;
  const u64 born_ns_;
  std::atomic<const char*> kernel_{""};

  mutable std::mutex mu_;  // guards series_ only
  std::vector<StatsSnapshot> series_;
};

// Per-instance sinks plus fleet-level aggregation and supervisor event
// counters. The supervisor hands &instance(i) to campaign i and bumps the
// event counters from its watchdog loop; fleet_total() and the fleet series
// are what bench reporters and the stats emitter read.
class FleetTelemetry {
 public:
  explicit FleetTelemetry(u32 num_instances);

  u32 num_instances() const noexcept {
    return static_cast<u32>(sinks_.size());
  }
  TelemetrySink& instance(u32 id) { return sinks_.at(id); }
  const TelemetrySink& instance(u32 id) const { return sinks_.at(id); }

  // Supervisor lifecycle events, also mirrored into registry() under
  // "supervisor.*" names.
  Counter& restarts() { return restarts_; }
  Counter& stalls() { return stalls_; }
  Counter& kills() { return kills_; }
  Counter& alloc_failures() { return alloc_failures_; }
  Counter& backoff_ms_total() { return backoff_ms_total_; }

  // Shared registry for everything else that wants to be observable in the
  // same scrape (FaultInjector per-site counters, ad-hoc gauges).
  MetricRegistry& registry() noexcept { return registry_; }
  const MetricRegistry& registry() const noexcept { return registry_; }

  // Element-wise sum of every instance's latest snapshot (gauges sum too:
  // fleet queue depth is the total queued entries across instances).
  // relative_ms is the max across instances; rates are summed.
  StatsSnapshot fleet_total() const;

  // Appends fleet_total() to the fleet-level series.
  StatsSnapshot stamp_fleet();
  std::vector<StatsSnapshot> fleet_series() const;

 private:
  MetricRegistry registry_;
  Counter& restarts_;
  Counter& stalls_;
  Counter& kills_;
  Counter& alloc_failures_;
  Counter& backoff_ms_total_;

  std::deque<TelemetrySink> sinks_;  // deque: sinks hold atomics, never move

  mutable std::mutex mu_;  // guards fleet_series_ only
  std::vector<StatsSnapshot> fleet_series_;
};

}  // namespace bigmap::telemetry
