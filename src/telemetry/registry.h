// Lock-free metrics registry: monotonic counters, gauges, and log-2
// histograms safe to update from the interpreter hot loop and supervisor
// threads concurrently.
//
// Design rule: the *update* path (Counter::add, Gauge::set,
// Histogram::record) is a single relaxed atomic RMW/store — no mutex, no
// allocation, no branch on registry state. Only registration (get-or-create
// by name) and snapshot iteration take the registry mutex; metric objects
// live in deques so references handed out stay valid for the registry's
// lifetime.
//
// Header-only so low-level modules (util/fault) can mirror their counters
// into a registry without a library-dependency cycle: this header depends
// only on util/types.h.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.h"

namespace bigmap::telemetry {

// Monotonically increasing event count.
class Counter {
 public:
  void add(u64 n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  u64 get() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(u64 v) noexcept { v_.store(v, std::memory_order_relaxed); }
  u64 get() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

// Log-2-bucketed value distribution: bucket 0 holds value 0, bucket i
// (i >= 1) holds values in [2^(i-1), 2^i). 64 buckets cover the full u64
// range.
class Histogram {
 public:
  static constexpr usize kBuckets = 64;

  static usize bucket_of(u64 v) noexcept {
    if (v == 0) return 0;
    const usize b = static_cast<usize>(64 - std::countl_zero(v));
    return b < kBuckets ? b : kBuckets - 1;  // clamp values >= 2^63
  }

  // Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
  static u64 bucket_min(usize i) noexcept {
    return i == 0 ? 0 : u64{1} << (i - 1);
  }

  void record(u64 v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  u64 bucket(usize i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  u64 count() const noexcept {
    u64 n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  u64 sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  std::array<u64, kBuckets> snapshot() const noexcept {
    std::array<u64, kBuckets> out{};
    for (usize i = 0; i < kBuckets; ++i) out[i] = bucket(i);
    return out;
  }

 private:
  std::array<std::atomic<u64>, kBuckets> buckets_{};
  std::atomic<u64> sum_{0};
};

class MetricRegistry {
 public:
  // Get-or-create by name. The returned reference stays valid for the
  // registry's lifetime; repeated calls with the same name return the same
  // object, so handles can be cached once and updated lock-free thereafter.
  Counter& counter(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(std::string(name));
    if (it == counters_.end()) {
      counter_storage_.emplace_back();
      it = counters_.emplace(std::string(name), &counter_storage_.back())
               .first;
    }
    return *it->second;
  }

  Gauge& gauge(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(std::string(name));
    if (it == gauges_.end()) {
      gauge_storage_.emplace_back();
      it = gauges_.emplace(std::string(name), &gauge_storage_.back()).first;
    }
    return *it->second;
  }

  Histogram& histogram(std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(std::string(name));
    if (it == histograms_.end()) {
      histogram_storage_.emplace_back();
      it = histograms_.emplace(std::string(name), &histogram_storage_.back())
               .first;
    }
    return *it->second;
  }

  // Name-sorted snapshots (std::map keeps iteration deterministic).
  std::vector<std::pair<std::string, u64>> counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c->get());
    return out;
  }

  std::vector<std::pair<std::string, u64>> gauges() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) out.emplace_back(name, g->get());
    return out;
  }

  struct HistogramView {
    std::string name;
    std::array<u64, Histogram::kBuckets> buckets{};
    u64 count = 0;
    u64 sum = 0;
  };

  std::vector<HistogramView> histograms() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<HistogramView> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      HistogramView v;
      v.name = name;
      v.buckets = h->snapshot();
      for (u64 b : v.buckets) v.count += b;
      v.sum = h->sum();
      out.push_back(std::move(v));
    }
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Histogram> histogram_storage_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
};

}  // namespace bigmap::telemetry
