#include "telemetry/emit.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace bigmap::telemetry {
namespace {

void kv(std::string& out, const char* k, const std::string& v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-18s: ", k);
  out += buf;
  out += v;
  out += '\n';
}

void kv(std::string& out, const char* k, u64 v) {
  kv(out, k, std::to_string(v));
}

std::string fixed2(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

std::string render_fuzzer_stats(const StatsSnapshot& s,
                                std::string_view banner) {
  std::string out;
  kv(out, "banner", std::string(banner));
  kv(out, "instance_id",
     s.instance_id == 0xFFFFFFFFu ? std::string("fleet")
                                  : std::to_string(s.instance_id));
  kv(out, "kernel",
     std::string(s.kernel[0] != '\0' ? s.kernel : "unknown"));
  kv(out, "relative_ms", s.relative_ms);
  kv(out, "execs_done", s.execs);
  kv(out, "execs_per_sec", fixed2(s.execs_per_sec));
  kv(out, "execs_per_sec_now", fixed2(s.execs_per_sec_now));
  kv(out, "paths_total", s.queue_depth);
  kv(out, "paths_found", s.interesting);
  kv(out, "crashes", s.crashes);
  kv(out, "hangs", s.hangs);
  kv(out, "covered_positions", s.covered_positions);
  kv(out, "map_positions", s.map_positions);
  kv(out, "map_density_pct", fixed2(s.map_density() * 100.0));
  kv(out, "used_key", s.used_key);
  kv(out, "saturated_updates", s.saturated_updates);
  kv(out, "trim_execs", s.trim_execs);
  kv(out, "sync_published", s.sync_published);
  kv(out, "sync_imported", s.sync_imported);
  kv(out, "faulted_execs", s.faulted_execs);
  kv(out, "injected_hangs", s.injected_hangs);
  kv(out, "restarts", s.restarts);
  kv(out, "tracing_untraced", s.tracing_untraced_execs);
  kv(out, "tracing_traced", s.tracing_traced_execs);
  kv(out, "tracing_fires", s.tracing_oracle_fires);
  kv(out, "tracing_reexec_ns", s.tracing_reexec_ns);
  kv(out, "checkpoints_written", s.checkpoints_written);
  kv(out, "checkpoints_loaded", s.checkpoints_loaded);
  kv(out, "checkpoint_bytes", s.checkpoint_bytes);
  kv(out, "recovery_torn_tail", s.recovery_torn_tail);
  kv(out, "recovery_bad_crc", s.recovery_bad_crc);
  kv(out, "recovery_version_mismatch", s.recovery_version_mismatch);
  kv(out, "map_resets", s.map_resets);
  kv(out, "map_classifies", s.map_classifies);
  kv(out, "map_compares", s.map_compares);
  kv(out, "map_hashes", s.map_hashes);
  return out;
}

std::string plot_data_header() {
  return "# relative_ms, execs_done, execs_per_sec, execs_per_sec_now, "
         "paths_total, covered_positions, map_density_pct, used_key, "
         "saturated_updates, crashes, hangs, restarts\n";
}

std::string render_plot_data_row(const StatsSnapshot& s) {
  std::string out;
  out += std::to_string(s.relative_ms);
  out += ", " + std::to_string(s.execs);
  out += ", " + fixed2(s.execs_per_sec);
  out += ", " + fixed2(s.execs_per_sec_now);
  out += ", " + std::to_string(s.queue_depth);
  out += ", " + std::to_string(s.covered_positions);
  out += ", " + fixed2(s.map_density() * 100.0);
  out += ", " + std::to_string(s.used_key);
  out += ", " + std::to_string(s.saturated_updates);
  out += ", " + std::to_string(s.crashes);
  out += ", " + std::to_string(s.hangs);
  out += ", " + std::to_string(s.restarts);
  out += '\n';
  return out;
}

std::string render_plot_data(const std::vector<StatsSnapshot>& series) {
  std::string out = plot_data_header();
  for (const StatsSnapshot& s : series) out += render_plot_data_row(s);
  return out;
}

std::string render_registry_stats(const MetricRegistry& reg) {
  std::string out;
  const auto line = [&out](const std::string& name, u64 value) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%-32s: ", name.c_str());
    out += buf;
    out += std::to_string(value);
    out += '\n';
  };
  for (const auto& [name, v] : reg.counters()) line(name, v);
  for (const auto& [name, v] : reg.gauges()) line(name, v);
  for (const MetricRegistry::HistogramView& h : reg.histograms()) {
    line(h.name + ".count", h.count);
    line(h.name + ".sum", h.sum);
  }
  return out;
}

StatsEmitter::StatsEmitter(std::string root_dir)
    : root_(std::move(root_dir)) {}

bool StatsEmitter::write_pair(const std::string& dir,
                              const StatsSnapshot& latest,
                              const std::vector<StatsSnapshot>& series,
                              std::string_view banner) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  {
    std::ofstream f(dir + "/fuzzer_stats", std::ios::trunc);
    if (!f) return false;
    f << render_fuzzer_stats(latest, banner);
  }
  {
    std::ofstream f(dir + "/plot_data", std::ios::trunc);
    if (!f) return false;
    f << render_plot_data(series);
  }
  return true;
}

bool StatsEmitter::emit_sink(const TelemetrySink& sink,
                             const std::string& subdir,
                             std::string_view banner) {
  return write_pair(root_ + "/" + subdir, sink.latest(), sink.series(),
                    banner);
}

bool StatsEmitter::emit_fleet(const FleetTelemetry& fleet,
                              std::string_view banner) {
  bool ok = true;
  for (u32 id = 0; id < fleet.num_instances(); ++id) {
    ok = emit_sink(fleet.instance(id), "instance_" + std::to_string(id),
                   banner) &&
         ok;
  }
  std::vector<StatsSnapshot> series = fleet.fleet_series();
  StatsSnapshot latest =
      series.empty() ? fleet.fleet_total() : series.back();
  ok = write_pair(root_ + "/fleet", latest, series, banner) && ok;
  ok = emit_registry(fleet.registry(), "fleet") && ok;
  return ok;
}

bool StatsEmitter::emit_registry(const MetricRegistry& reg,
                                 const std::string& subdir) {
  const std::string dir = root_ + "/" + subdir;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  std::ofstream f(dir + "/registry_stats", std::ios::trunc);
  if (!f) return false;
  f << render_registry_stats(reg);
  return static_cast<bool>(f);
}

}  // namespace bigmap::telemetry
