#include "telemetry/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace bigmap::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  assert(!top_level_done_ && "value after complete document");
  if (!stack_.empty()) {
    if (stack_.back() == Frame::kObject) {
      assert(key_pending_ && "object value requires a key");
    } else if (has_elems_.back()) {
      out_ += ',';
    }
    has_elems_.back() = true;
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_elems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  assert(!key_pending_ && "dangling key at end_object");
  out_ += '}';
  stack_.pop_back();
  has_elems_.pop_back();
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_elems_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  has_elems_.pop_back();
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back() == Frame::kObject);
  assert(!key_pending_ && "two keys in a row");
  if (has_elems_.back()) out_ += ',';
  has_elems_.back() = true;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  // pre_value() must not emit another comma for this value.
  has_elems_.back() = false;
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  pre_value();
  out_ += std::to_string(v);
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  pre_value();
  out_ += std::to_string(v);
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  pre_value();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  out_ += "null";
  if (stack_.empty()) top_level_done_ = true;
  return *this;
}

bool JsonWriter::complete() const noexcept {
  return top_level_done_ && stack_.empty();
}

}  // namespace bigmap::telemetry
