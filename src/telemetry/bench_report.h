// Machine-readable bench reporting: every bench binary serializes the
// tables it prints into one stable JSON document so CI can commit
// BENCH_*.json artifacts and later PRs can diff perf trajectories.
//
// Schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "bench": "<name>",
//     "scale": <BIGMAP_BENCH_SCALE>,
//     "meta": { "<key>": "<string>" | <number>, ... },
//     "tables": [
//       { "name": "<table>", "columns": ["..."], "rows": [["..."], ...] }
//     ],
//     "series": [
//       { "name": "<series>", "snapshots": [ { ...StatsSnapshot... } ] }
//     ]
//   }
// Table cells stay the formatted strings the console table shows — the
// schema is about structure, not re-deriving units; consumers that need
// raw numbers read the meta entries or telemetry series.
#pragma once

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "telemetry/snapshot.h"
#include "util/report.h"
#include "util/types.h"

namespace bigmap::telemetry {

class BenchReport {
 public:
  static constexpr int kSchemaVersion = 1;

  BenchReport(std::string bench_name, double scale);

  void set_meta(std::string key, std::string value);
  void set_meta(std::string key, double value);
  void set_meta(std::string key, u64 value);

  void add_table(std::string name, const TableWriter& table);
  void add_series(std::string name, std::vector<StatsSnapshot> series);

  std::string to_json() const;

  // Serializes to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Table {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };
  struct Series {
    std::string name;
    std::vector<StatsSnapshot> snapshots;
  };
  using MetaValue = std::variant<std::string, double, u64>;

  std::string bench_;
  double scale_;
  std::vector<std::pair<std::string, MetaValue>> meta_;
  std::vector<Table> tables_;
  std::vector<Series> series_;
};

// Serializes one snapshot as a JSON object into an open writer (used by
// BenchReport and available to tests).
class JsonWriter;
void write_snapshot_json(JsonWriter& w, const StatsSnapshot& s);

}  // namespace bigmap::telemetry
