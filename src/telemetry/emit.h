// AFL-style stats files: `fuzzer_stats` (current snapshot, key : value
// lines) and `plot_data` (append-friendly time series, one CSV row per
// stamped snapshot) — the same two-file interface afl-fuzz exposes per
// output directory, which downstream tooling (afl-plot, monitors) treats as
// the contract.
//
// Layout written by StatsEmitter under its root directory:
//   <root>/instance_<id>/fuzzer_stats
//   <root>/instance_<id>/plot_data
//   <root>/fleet/fuzzer_stats
//   <root>/fleet/plot_data
//
// The render_* functions are pure (snapshot in, text out) so golden-file
// tests pin the formats byte-for-byte.
#pragma once

#include <string>
#include <vector>

#include "telemetry/sink.h"
#include "telemetry/snapshot.h"

namespace bigmap::telemetry {

// Key : value block, AFL fuzzer_stats style. `banner` names the producer
// (bench/campaign name); written as the first entry.
std::string render_fuzzer_stats(const StatsSnapshot& s,
                                std::string_view banner);

// Header line for plot_data (starts with '#', matches the row order).
std::string plot_data_header();

// One plot_data row, newline-terminated.
std::string render_plot_data_row(const StatsSnapshot& s);

// Header plus every row of `series`.
std::string render_plot_data(const std::vector<StatsSnapshot>& series);

// Key : value block for a MetricRegistry: every counter and gauge by name
// (name-sorted, so golden tests can pin it), then <name>.count/.sum for
// each histogram. This is how subsystem counters that are not part of the
// fixed StatsSnapshot shape — procfleet.*, fault.* — reach stats files.
std::string render_registry_stats(const MetricRegistry& reg);

// Writes fuzzer_stats/plot_data trees. Creation failures are reported by
// return value (benches warn and move on; tests assert).
class StatsEmitter {
 public:
  explicit StatsEmitter(std::string root_dir);

  const std::string& root() const noexcept { return root_; }

  // Writes <root>/<subdir>/{fuzzer_stats,plot_data} from the sink's latest
  // snapshot and stamped series.
  bool emit_sink(const TelemetrySink& sink, const std::string& subdir,
                 std::string_view banner);

  // Emits every instance (instance_<id>/) plus the fleet aggregate
  // (fleet/, using the fleet series and fleet_total()); the fleet's
  // registry lands in fleet/registry_stats.
  bool emit_fleet(const FleetTelemetry& fleet, std::string_view banner);

  // Writes <root>/<subdir>/registry_stats from `reg`.
  bool emit_registry(const MetricRegistry& reg, const std::string& subdir);

 private:
  bool write_pair(const std::string& dir, const StatsSnapshot& latest,
                  const std::vector<StatsSnapshot>& series,
                  std::string_view banner);

  std::string root_;
};

}  // namespace bigmap::telemetry
