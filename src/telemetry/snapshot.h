// StatsSnapshot: one periodic observation of a running campaign instance
// (or of a whole fleet, when aggregated by FleetTelemetry).
//
// Everything is a plain value so snapshots can be stamped under a lock,
// copied out, serialized (fuzzer_stats / plot_data / JSON), and compared in
// golden-file tests without touching live atomics.
#pragma once

#include "util/types.h"

namespace bigmap::telemetry {

struct StatsSnapshot {
  u32 instance_id = 0;
  // Whole-map kernel the producing campaign's coverage map dispatches to
  // ("scalar"/"swar"/"sse2"/"avx2"; empty when the producer never set it).
  // Always a string literal with static storage duration, so plain copies
  // of the snapshot stay valid.
  const char* kernel = "";
  // Milliseconds since the owning sink was created. Monotone within a
  // sink's series even across campaign restarts (the sink outlives the
  // campaign attempts that publish into it).
  u64 relative_ms = 0;

  // Lifetime counters (cumulative across restarts of the instance).
  u64 execs = 0;
  u64 interesting = 0;
  u64 crashes = 0;
  u64 hangs = 0;
  u64 trim_execs = 0;
  u64 sync_published = 0;
  u64 sync_imported = 0;

  // Fault/supervision accounting.
  u64 faulted_execs = 0;
  u64 injected_hangs = 0;
  u64 restarts = 0;

  // Coverage-guided tracing accounting (untraced fast path vs. traced
  // pipeline split; tracing_reexec_ns is wall time in traced replays).
  u64 tracing_untraced_execs = 0;
  u64 tracing_traced_execs = 0;
  u64 tracing_oracle_fires = 0;
  u64 tracing_reexec_ns = 0;

  // Persistence accounting (checkpoint/journal layer). Recovery counters
  // split by cause: a torn snapshot tail, a CRC mismatch, a stale or
  // foreign format version.
  u64 checkpoints_written = 0;
  u64 checkpoints_loaded = 0;
  u64 checkpoint_bytes = 0;
  u64 recovery_torn_tail = 0;
  u64 recovery_bad_crc = 0;
  u64 recovery_version_mismatch = 0;

  // Map-state gauges (sampled, not cumulative).
  u64 queue_depth = 0;
  u64 covered_positions = 0;  // covered virgin positions
  u64 map_positions = 0;      // virgin positions tracked (density denominator)
  u64 used_key = 0;           // two-level only; 0 for flat
  u64 saturated_updates = 0;

  // Whole-map operation counts from the coverage map (reset/classify/
  // compare/hash scans — the Figure 3 cost centers; update() is deliberately
  // not counted per-edge to keep the Listing 1/2 hot path untouched).
  u64 map_resets = 0;
  u64 map_classifies = 0;
  u64 map_compares = 0;
  u64 map_hashes = 0;

  // Throughput: lifetime average and instantaneous (since the previous
  // snapshot in the same series; equals the lifetime rate for the first).
  double execs_per_sec = 0.0;
  double execs_per_sec_now = 0.0;

  double map_density() const noexcept {
    return map_positions == 0 ? 0.0
                              : static_cast<double>(covered_positions) /
                                    static_cast<double>(map_positions);
  }
};

}  // namespace bigmap::telemetry
