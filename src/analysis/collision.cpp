#include "analysis/collision.h"

#include <cmath>
#include <unordered_set>

#include "util/rng.h"

namespace bigmap {

double collision_rate(double hash_space, double num_keys) noexcept {
  if (hash_space <= 0.0 || num_keys <= 0.0) return 0.0;
  // ((H-1)/H)^n computed in log space: exp(n * log1p(-1/H)).
  const double pow_term = std::exp(num_keys * std::log1p(-1.0 / hash_space));
  const double rate = 1.0 - (hash_space / num_keys) * (1.0 - pow_term);
  return rate < 0.0 ? 0.0 : rate;
}

double expected_distinct_keys(double hash_space, double num_keys) noexcept {
  if (hash_space <= 0.0 || num_keys <= 0.0) return 0.0;
  const double pow_term = std::exp(num_keys * std::log1p(-1.0 / hash_space));
  return hash_space * (1.0 - pow_term);
}

double birthday_collision_probability(double hash_space,
                                      u64 num_keys) noexcept {
  if (hash_space <= 0.0 || num_keys < 2) return 0.0;
  if (static_cast<double>(num_keys) > hash_space) return 1.0;
  // P(no collision) = prod_{i=1}^{n-1} (1 - i/H); evaluate in log space.
  double log_no_collision = 0.0;
  for (u64 i = 1; i < num_keys; ++i) {
    log_no_collision += std::log1p(-static_cast<double>(i) / hash_space);
    if (log_no_collision < -60.0) return 1.0;  // underflow: certainty
  }
  return 1.0 - std::exp(log_no_collision);
}

u64 keys_for_collision_probability(double hash_space, double p) noexcept {
  if (hash_space <= 0.0 || p <= 0.0) return 0;
  // Exponential search + binary refine on the monotone probability.
  u64 lo = 2, hi = 2;
  while (birthday_collision_probability(hash_space, hi) < p) {
    lo = hi;
    hi *= 2;
    if (hi > static_cast<u64>(hash_space) + 2) {
      hi = static_cast<u64>(hash_space) + 2;
      break;
    }
  }
  while (lo + 1 < hi) {
    const u64 mid = lo + (hi - lo) / 2;
    if (birthday_collision_probability(hash_space, mid) >= p) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double monte_carlo_collision_rate(u64 hash_space, u64 num_keys, u64 seed,
                                  u32 trials) {
  if (hash_space == 0 || num_keys == 0 || trials == 0) return 0.0;
  Xoshiro256 rng(seed);
  double total = 0.0;
  for (u32 t = 0; t < trials; ++t) {
    std::unordered_set<u64> seen;
    seen.reserve(num_keys * 2);
    u64 collisions = 0;
    for (u64 i = 0; i < num_keys; ++i) {
      const u64 key = rng.next() % hash_space;
      if (!seen.insert(key).second) ++collisions;
    }
    total += static_cast<double>(collisions) /
             static_cast<double>(num_keys);
  }
  return total / trials;
}

}  // namespace bigmap
