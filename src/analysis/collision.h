// Hash-collision analytics (paper §II-B, §III, Figure 2).
//
// Equation 1:  CollisionRate(H, n) = 1 - (H/n) * [1 - ((H-1)/H)^n]
//
// where H is the hash-space size (coverage-bitmap entries) and n the number
// of uniformly drawn keys (block/edge IDs). Also provides the exact
// birthday-problem bound the paper cites ("~50% probability of at least one
// collision after only 300 IDs in a 64 kB map") and a Monte-Carlo
// cross-check used by tests and the Figure 2 bench.
#pragma once

#include "util/types.h"

namespace bigmap {

// Equation 1. Returns a rate in [0, 1). H must be > 0; n == 0 yields 0.
double collision_rate(double hash_space, double num_keys) noexcept;

// Expected number of *distinct* values after n uniform draws from H:
// H * (1 - (1 - 1/H)^n). The complement view of Equation 1
// (collision_rate == 1 - expected_distinct/n).
double expected_distinct_keys(double hash_space, double num_keys) noexcept;

// Probability of at least one collision among n uniform draws from H
// (generalized birthday problem, exact product form evaluated in log
// space).
double birthday_collision_probability(double hash_space, u64 num_keys) noexcept;

// Smallest n such that birthday_collision_probability(H, n) >= p.
u64 keys_for_collision_probability(double hash_space, double p) noexcept;

// Empirical collision rate: draws n keys uniformly from [0, H) and counts
// draws that repeat an earlier value, divided by n (the paper's §II-B
// definition: the {4,2,5,3,2} example has rate 1/5).
double monte_carlo_collision_rate(u64 hash_space, u64 num_keys, u64 seed,
                                  u32 trials = 3);

}  // namespace bigmap
