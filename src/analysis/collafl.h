// CollAFL-style static edge-ID assignment (related work, paper §VI).
//
// CollAFL (Gan et al., S&P'18) removes hash collisions by assigning edge
// IDs at link time: blocks with a single incoming edge get a statically
// unique ID; remaining edges get IDs from per-function hash parameters
// chosen to avoid conflicts. Its costs, which the paper contrasts with
// BigMap: (a) the bitmap must be sized to the number of STATIC edges even
// though only a fraction is ever visited, and (b) the technique is tied to
// edge coverage — it cannot host N-gram or context-sensitive metrics.
//
// This module reproduces the scheme on our synthetic programs: a greedy
// collision-free assignment over the static CFG edge list, with a hashed
// fallback once the map is full, plus the statistics the §VI discussion
// rests on (required map size vs. visited fraction).
#pragma once

#include <unordered_map>

#include "target/program.h"
#include "util/types.h"

namespace bigmap {

class CollAflAssignment {
 public:
  // Builds the assignment for `prog` with a map of `map_size` slots.
  // Edges are assigned unique slots in a deterministic order until the map
  // is exhausted; the remainder fall back to hashing (and may collide).
  CollAflAssignment(const Program& prog, usize map_size);

  // Map slot for the edge prev_block -> cur_block. Edges that were
  // statically assigned return their unique slot; unknown/overflow edges
  // hash into the map (collision possible, like CollAFL's fallback).
  u32 slot(u32 prev_block, u32 cur_block) const noexcept;

  // Statistics.
  usize num_static_edges() const noexcept { return num_static_edges_; }
  usize uniquely_assigned() const noexcept { return uniquely_assigned_; }
  usize hashed_fallback() const noexcept {
    return num_static_edges_ - uniquely_assigned_;
  }

  // Smallest power-of-two map that would fit every static edge uniquely —
  // what CollAFL effectively requires for zero collisions.
  static usize required_map_size(const Program& prog) noexcept;

 private:
  static u64 edge_key(u32 prev, u32 cur) noexcept {
    return (static_cast<u64>(prev) << 32) | cur;
  }

  std::unordered_map<u64, u32> slots_;
  usize map_size_;
  usize num_static_edges_ = 0;
  usize uniquely_assigned_ = 0;
};

}  // namespace bigmap
