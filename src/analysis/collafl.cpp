#include "analysis/collafl.h"

#include <bit>

#include "util/hash.h"

namespace bigmap {

CollAflAssignment::CollAflAssignment(const Program& prog, usize map_size)
    : map_size_(map_size) {
  // Enumerate the static edge list in deterministic (block, successor)
  // order and hand out sequential unique slots while they last. Real
  // CollAFL partitions into single-predecessor blocks (direct IDs) and
  // multi-predecessor blocks (solved hash parameters); the net effect — a
  // collision-free assignment that needs as many slots as static edges —
  // is what matters for the comparison.
  u32 next = 0;
  for (u32 b = 0; b < prog.blocks.size(); ++b) {
    for (u32 t : prog.blocks[b].targets) {
      const u64 key = edge_key(b, t);
      if (slots_.contains(key)) continue;  // duplicate successor entry
      ++num_static_edges_;
      if (next < map_size_) {
        slots_.emplace(key, next++);
        ++uniquely_assigned_;
      }
    }
  }
}

u32 CollAflAssignment::slot(u32 prev_block, u32 cur_block) const noexcept {
  const auto it = slots_.find(edge_key(prev_block, cur_block));
  if (it != slots_.end()) return it->second;
  // Fallback: hash the pair into the map (CollAFL's runtime-computed IDs
  // for unsolvable/indirect edges).
  return static_cast<u32>(mix64(edge_key(prev_block, cur_block))) &
         static_cast<u32>(map_size_ - 1);
}

usize CollAflAssignment::required_map_size(const Program& prog) noexcept {
  const usize edges = prog.static_edge_count();
  return std::bit_ceil(edges == 0 ? 1 : edges);
}

}  // namespace bigmap
