// Coverage metrics: block trace -> coverage-map keys.
//
// AFL-style instrumentation assigns every basic block a random compile-time
// ID uniformly drawn from [0, MAP_SIZE) and derives a coverage key for each
// executed edge. This module reproduces Listing 1's scheme plus the two
// "more expressive" metrics the paper composes on large maps:
//
//   EdgeMetric      E_xy = (B_x >> 1) ^ B_y          (AFL default)
//   NGramMetric     hash of the last N block IDs     (partial path coverage)
//   ContextMetric   calling-context hash ^ edge      (Angora-style)
//
// A metric is a small stateful object: reset per execution, fed one block
// ID per executed block, returning the map key to bump. All calls are
// inlined into the interpreter loop (metrics are template parameters of the
// executor) — no virtual dispatch per edge. BigMap works with any of these
// unchanged (paper §IV-D: "any coverage metric can be used in edge ID's
// place").
#pragma once

#include <array>
#include <vector>

#include "util/hash.h"
#include "util/rng.h"
#include "util/types.h"

namespace bigmap {

// Metric selector for runtime-configured call sites. kNGram is the
// paper's N = 3; the 2/4/8 variants support the map-pressure ablation
// (larger windows hash more context into each key).
enum class MetricKind : u8 {
  kEdge,
  kNGram,   // N = 3 (the paper's composition experiment)
  kNGram2,
  kNGram4,
  kNGram8,
  kContext,
};

inline const char* metric_name(MetricKind m) noexcept {
  switch (m) {
    case MetricKind::kEdge:
      return "edge";
    case MetricKind::kNGram:
      return "ngram3";
    case MetricKind::kNGram2:
      return "ngram2";
    case MetricKind::kNGram4:
      return "ngram4";
    case MetricKind::kNGram8:
      return "ngram8";
    case MetricKind::kContext:
      return "context";
  }
  return "?";
}

// Compile-time random block-ID assignment (Listing 1, line 1): every block
// of a program gets an ID uniformly distributed over [0, map_size).
// Collisions between block IDs are possible and intended — they are part of
// what Equation 1 models.
class BlockIdTable {
 public:
  // `map_size` must be a power of two (checked by the map classes already;
  // the table only needs the modulus).
  BlockIdTable(usize num_blocks, usize map_size, u64 seed) {
    ids_.resize(num_blocks);
    Xoshiro256 rng(seed);
    const u32 mask = static_cast<u32>(map_size - 1);
    for (auto& id : ids_) id = static_cast<u32>(rng.next()) & mask;
  }

  u32 id(u32 block_index) const noexcept { return ids_[block_index]; }
  usize size() const noexcept { return ids_.size(); }

 private:
  std::vector<u32> ids_;
};

// AFL's edge hit-count key: E_xy = (B_x >> 1) ^ B_y.
class EdgeMetric {
 public:
  explicit EdgeMetric(const BlockIdTable& ids) noexcept : ids_(&ids) {}

  void begin_execution() noexcept { prev_ = 0; }

  // Returns the map key for the edge into `block_index`.
  u32 visit(u32 block_index) noexcept {
    const u32 cur = ids_->id(block_index);
    const u32 key = (prev_ >> 1) ^ cur;
    prev_ = cur;
    return key;
  }

 private:
  const BlockIdTable* ids_;
  u32 prev_ = 0;
};

// N-gram partial path coverage: the key is a mix of the last N block IDs
// (the paper's composition experiment uses N = 3). N = 1 degenerates to
// basic-block coverage; N = 2 is equivalent in spirit to edge coverage.
template <usize N>
class NGramMetric {
  static_assert(N >= 1 && N <= 8, "N-gram window must be 1..8");

 public:
  explicit NGramMetric(const BlockIdTable& ids) noexcept : ids_(&ids) {}

  void begin_execution() noexcept {
    window_.fill(0);
    cursor_ = 0;
  }

  u32 visit(u32 block_index) noexcept {
    window_[cursor_] = ids_->id(block_index);
    cursor_ = (cursor_ + 1) % N;
    // Order-sensitive mix of the window contents, oldest first.
    u64 h = 0;
    for (usize i = 0; i < N; ++i) {
      h = hash_combine(h, window_[(cursor_ + i) % N]);
    }
    return static_cast<u32>(h);
  }

 private:
  const BlockIdTable* ids_;
  std::array<u32, N> window_{};
  usize cursor_ = 0;
};

// Calling-context-sensitive edge coverage (Angora-style): the edge key is
// XORed with a hash of the current call stack, distinguishing the same edge
// reached through different call chains. The executor notifies call/return
// transitions.
class ContextMetric {
 public:
  explicit ContextMetric(const BlockIdTable& ids) noexcept : ids_(&ids) {}

  void begin_execution() noexcept {
    prev_ = 0;
    ctx_ = 0;
    ctx_stack_.clear();
  }

  void on_call(u32 callee_entry) noexcept {
    ctx_stack_.push_back(ctx_);
    ctx_ = static_cast<u32>(mix64(ctx_ ^ ids_->id(callee_entry)));
  }

  void on_return() noexcept {
    if (!ctx_stack_.empty()) {
      ctx_ = ctx_stack_.back();
      ctx_stack_.pop_back();
    }
  }

  u32 visit(u32 block_index) noexcept {
    const u32 cur = ids_->id(block_index);
    const u32 key = ((prev_ >> 1) ^ cur) ^ ctx_;
    prev_ = cur;
    return key;
  }

 private:
  const BlockIdTable* ids_;
  u32 prev_ = 0;
  u32 ctx_ = 0;
  std::vector<u32> ctx_stack_;
};

}  // namespace bigmap
