// Fault-tolerant multi-threaded campaign supervisor.
//
// The paper's parallel results (Figures 9/10) assume every instance
// survives a 24 h run; real campaigns don't — instances stall on
// pathological inputs, die to resource exhaustion, and lose their corpus
// state. run_supervised_campaign() runs N run_campaign instances on real
// std::threads against a shared SyncHub and keeps the campaign alive:
//
//  - watchdog: each instance publishes an exec-count heartbeat through
//    CampaignControl; an instance with no progress within
//    stall_deadline_ms gets a cooperative stop request and is restarted;
//  - restarts: exponential backoff (initial * multiplier^k, capped) with a
//    per-instance retry budget; a restarted instance re-runs from scratch
//    with its original seed and full exec budget, and its SyncHub cursor is
//    rewound so it re-imports everything still retained;
//  - no lost finds: the partial result of every attempt — a stalled stop, a
//    kInstanceKill death, a clean finish — has its found_bug_ids /
//    found_stack_hashes unioned into the supervisor result before the
//    instance goes down, so crash/coverage semantics survive restarts;
//  - deterministic failure drills: wire a FaultInjector into
//    SupervisorConfig::fault and every recovery path above becomes
//    reproducibly testable (the injector is also bound thread-locally
//    around each attempt so PageBuffer allocation failures surface as
//    std::bad_alloc retries).
//
// Limits: cancellation is cooperative (checked at execution boundaries);
// a thread wedged inside a single execution cannot be preempted — the
// step-budget hang detector bounds that window.
#pragma once

#include <string>
#include <vector>

#include "fuzzer/campaign.h"
#include "fuzzer/sync.h"
#include "persist/checkpoint.h"
#include "target/program.h"
#include "telemetry/sink.h"
#include "util/fault.h"
#include "util/types.h"

namespace bigmap {

struct SupervisorConfig {
  u32 num_instances = 4;

  // Template for every instance; per-instance fields (seed, sync_id,
  // is_master, control, fault, sync) are filled in by the supervisor.
  // Instance i runs with seed = base.seed + i * instance_seed_stride.
  CampaignConfig base;
  u64 instance_seed_stride = 1;

  // Watchdog: poll heartbeats every poll_ms; restart an instance whose
  // exec count has not moved within stall_deadline_ms.
  u32 poll_ms = 5;
  u32 stall_deadline_ms = 500;

  // Restart policy.
  u32 max_restarts_per_instance = 3;
  u32 backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  u32 backoff_cap_ms = 1000;

  // Shared hub sizing (see SyncHubOptions).
  usize sync_max_records = 1u << 14;
  usize sync_max_input_size = 1u << 16;

  // Optional deterministic fault schedule, applied to every instance
  // (keyed by instance id) and to the hub's publish path.
  FaultInjector* fault = nullptr;

  // Persistence (off when persist_dir is empty). With a directory set, the
  // supervisor keeps a FleetStore there: every instance checkpoints its
  // full state each checkpoint_interval execs, restarts become *warm* —
  // the replacement attempt resumes from the last good snapshot instead of
  // re-running from scratch — and instance lifecycle events are journaled
  // so a SIGKILL'd process can be relaunched with resume = true and
  // continue the run with find-union semantics identical to an
  // uninterrupted one. resume against a directory written by a differently
  // configured fleet throws.
  std::string persist_dir;
  u64 checkpoint_interval = 2048;
  u32 keep_checkpoints = 2;
  bool resume = false;

  // Optional fleet telemetry (must have >= num_instances sinks; validated).
  // The supervisor hands instance(i) to campaign i — the sink survives
  // restarts, so per-instance counters are lifetime totals — bumps the
  // fleet's restart/stall/kill/alloc/backoff counters from the watchdog
  // loop, mirrors the fault injector's per-site counters into
  // telemetry->registry(), and stamps a fleet-level snapshot every
  // fleet_stamp_ms plus once at the end.
  telemetry::FleetTelemetry* telemetry = nullptr;
  u32 fleet_stamp_ms = 100;

  // Safety net for tests: when > 0 and the whole supervised run exceeds
  // this, all instances get a stop request and the run winds down.
  double max_wall_seconds = 0.0;
};

enum class InstanceState : u8 {
  kCompleted,  // final attempt ran to its own stop condition
  kFailed,     // retry budget exhausted (or wall-clock safety stop)
};

struct InstanceHealth {
  u32 id = 0;
  InstanceState state = InstanceState::kCompleted;
  u32 attempts = 0;        // campaign runs started (>= 1)
  u32 restarts = 0;        // attempts - successful completions
  u32 stalls = 0;          // watchdog-triggered stops
  u32 kills = 0;           // kInstanceKill deaths observed
  u32 alloc_failures = 0;  // attempts lost to std::bad_alloc
  u64 execs = 0;           // summed across attempts
  u64 interesting = 0;
  u64 crashes_total = 0;
  u64 faulted_execs = 0;
  u64 injected_hangs = 0;
  u64 faults_injected = 0;  // all faults delivered to this instance
  u32 warm_restarts = 0;    // restarts that resumed from a checkpoint
  std::string last_error;   // last exception message, if any
};

struct SupervisorResult {
  std::vector<InstanceHealth> instances;

  // Union across every attempt of every instance (the Figure 9/10
  // cross-instance crash metric).
  std::vector<u32> found_bug_ids;
  std::vector<u64> found_stack_hashes;

  u64 total_execs = 0;
  u64 total_interesting = 0;
  u64 total_crashes = 0;
  u64 total_restarts = 0;
  double wall_seconds = 0.0;
  double aggregate_throughput = 0.0;  // total_execs / wall_seconds

  // Fault accounting: faults delivered overall, and the subset delivered
  // to instances that nevertheless completed (i.e. survived faults).
  u64 faults_injected = 0;
  u64 faults_survived = 0;

  SyncHubStats sync;

  // Persistence accounting (all zero without persist_dir): checkpoints
  // written/loaded, bytes committed, recoveries by cause, journal replay.
  persist::PersistStats persist;
  // True when this run resumed a previous process's fleet journal.
  bool resumed = false;

  // Final fleet-level telemetry snapshot (zero-initialized when the run
  // had no FleetTelemetry attached). fleet_total.execs equals the summed
  // lifetime execs of every instance sink — the cross-check the fig9 bench
  // reports against total_execs.
  telemetry::StatsSnapshot fleet_total;

  bool all_completed() const noexcept {
    for (const InstanceHealth& h : instances) {
      if (h.state != InstanceState::kCompleted) return false;
    }
    return !instances.empty();
  }
};

// Runs `config.num_instances` supervised campaigns of `config.base` over
// `program`/`seeds` on real threads. Blocks until every instance completes
// or exhausts its retry budget.
SupervisorResult run_supervised_campaign(const Program& program,
                                         const std::vector<Input>& seeds,
                                         const SupervisorConfig& config);

}  // namespace bigmap
