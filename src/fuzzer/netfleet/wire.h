// Netfleet wire format: length-prefixed BMSP records over a byte stream.
//
// The federation socket speaks the exact record framing the persistence
// layer puts on disk (persist/record.h): a connection starts with the
// 8-byte BMSP file header (magic + format version) and then carries
// self-checking records
//
//   record := [u32 type][u32 payload_len][payload][u32 crc]
//
// with the CRC-32 covering type, payload_len, and payload. A torn frame
// (short write, mid-frame reset) or a bit-flipped byte can therefore never
// be mistaken for a valid message: the incremental FrameDecoder detects the
// damage, the link tears the connection down, and the session-resume
// cursor replays whatever the peer provably never accepted. Reusing the
// on-disk framing means the same golden CRC rule guards both failure
// domains — disks that lie and networks that lie.
//
// Message types (netfleet protocol v2, independent of the on-disk
// RecordType space — the streams never mix):
//
//   kHello      session (re)establishment: protocol version, config
//               fingerprint, node id, the receiver's entry cursor (the
//               peer resumes replay exactly there), plus the federation
//               epoch + rank (stale-hub fencing, successor election) and
//               the sender's replay-log base (full-resync detection)
//   kEntry      one novelty-filtered corpus entry, tagged with its
//               absolute sequence number in the sender's lifetime stream
//   kHeartbeat  liveness + cumulative ack (receiver's entry cursor)
//   kBye        orderly goodbye carrying the final cursor
//   kDelta      one opaque oracle-delta blob riding the same reliable
//               sequence space as kEntry (virgin-map delta sync)
//   kResync     the sender's replay log evicted entries the receiver never
//               accepted; carries the new stream base — the receiver
//               fast-forwards its cursor, counting the gap as lost, and
//               exchange resumes (the documented full-resync path)
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fuzzer/queue.h"
#include "util/types.h"

namespace bigmap::netfleet {

inline constexpr u32 kProtocolVersion = 2;

enum class NetMsg : u32 {
  kHello = 1,
  kEntry = 2,
  kHeartbeat = 3,
  kBye = 4,
  kDelta = 5,
  kResync = 6,
};

const char* net_msg_name(NetMsg m) noexcept;

struct HelloMsg {
  u32 proto_version = kProtocolVersion;
  u64 fingerprint = 0;  // both sides must agree (config identity)
  u64 node_id = 0;
  u64 recv_cursor = 0;  // records this side has accepted from the peer
  u64 epoch = 0;        // federation epoch (0 = epoch-agnostic pair link)
  u32 rank = 0;         // sender's position in the static rank table
  u64 log_base = 0;     // sender's replay-log eviction frontier
};

// One decoded frame; `payload` is an owned copy so frames outlive the
// decoder's internal buffer.
struct Frame {
  NetMsg type{};
  std::vector<u8> payload;
};

// Appends the 8-byte BMSP stream preamble (sent once per connection).
void append_preamble(std::vector<u8>& out);

// Appends one framed record: header, payload, CRC.
void append_frame(std::vector<u8>& out, NetMsg type,
                  std::span<const u8> payload);

// Typed encoders. kEntry and kDelta share one payload shape — a sequence
// number plus an opaque length-prefixed blob — so both ride the replay log.
void append_hello(std::vector<u8>& out, const HelloMsg& hello);
void append_entry(std::vector<u8>& out, u64 seq, std::span<const u8> data);
void append_delta(std::vector<u8>& out, u64 seq, std::span<const u8> data);
void append_cursor(std::vector<u8>& out, NetMsg type, u64 cursor);

// Typed decoders; false on structural mismatch.
bool parse_hello(std::span<const u8> payload, HelloMsg* out);
bool parse_entry(std::span<const u8> payload, u64* seq, Input* data);
bool parse_delta(std::span<const u8> payload, u64* seq, Input* data);
bool parse_cursor(std::span<const u8> payload, u64* cursor);

// Incremental stream parser: feed() raw socket bytes, next() complete
// frames. The first 8 bytes of a stream must be the BMSP preamble. Any
// damage — wrong magic, impossible length, CRC mismatch — puts the decoder
// into a sticky broken state; the owning link must drop the connection
// (there is no way to re-synchronize a byte stream after a torn frame).
class FrameDecoder {
 public:
  explicit FrameDecoder(usize max_payload = 1u << 20)
      : max_payload_(max_payload) {}

  void feed(std::span<const u8> bytes);
  // Extracts the next complete frame; std::nullopt when more bytes are
  // needed or the stream is broken.
  std::optional<Frame> next();

  bool broken() const noexcept { return broken_; }
  const std::string& error() const noexcept { return error_; }

  // Forgets all buffered state (new connection, same decoder object).
  void reset();

 private:
  void fail(std::string why);

  const usize max_payload_;
  std::vector<u8> buf_;
  usize pos_ = 0;  // consumed prefix of buf_
  bool preamble_done_ = false;
  bool broken_ = false;
  std::string error_;
};

}  // namespace bigmap::netfleet
