#include "fuzzer/netfleet/nethub.h"

#include <utility>

namespace bigmap::netfleet {

NetHub::NetHub(SyncEndpoint* inner, u32 gateway_instance,
               std::unique_ptr<PeerLink> link)
    : inner_(inner), gateway_(gateway_instance), link_(std::move(link)) {}

void NetHub::set_oracle(std::unique_ptr<corpus::NoveltyOracle> oracle) {
  std::lock_guard<std::mutex> lock(mu_);
  oracle_ = std::move(oracle);
}

u32 NetHub::num_instances() const noexcept {
  return inner_->num_instances();
}

bool NetHub::publish(u32 instance, Input input) {
  return inner_->publish(instance, std::move(input));
}

std::vector<Input> NetHub::fetch_new(u32 instance) {
  return inner_->fetch_new(instance);
}

void NetHub::reset_cursor(u32 instance) {
  inner_->reset_cursor(instance);
}

u64 NetHub::total_published() const { return inner_->total_published(); }

SyncHubStats NetHub::stats() const { return inner_->stats(); }

void NetHub::export_one(Input in) {
  // The oracle verdict also advances the remote model: a shipped entry is
  // coverage the peer now has, a rejected one is coverage it already had.
  if (oracle_ != nullptr && !oracle_->admit(in)) return;
  link_->offer(std::move(in));
}

void NetHub::pump(u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  // Export: everything workers published since the last pump (fetch_new on
  // the gateway id excludes the gateway's own imports — no echo).
  for (Input& in : inner_->fetch_new(gateway_)) {
    export_one(std::move(in));
  }
  link_->pump(now_ns);
  // Import: accepted remote entries become local publishes under the
  // gateway identity; workers pick them up on their next fetch.
  for (Input& in : link_->take_received()) {
    // The peer evidently has this entry: fold it into the remote model so
    // we never ship its coverage back.
    if (oracle_ != nullptr) (void)oracle_->admit(in);
    inner_->publish(gateway_, std::move(in));
  }
}

void NetHub::shutdown(u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  // One last export sweep so finds from the final sync interval still
  // reach the peer before the goodbye.
  for (Input& in : inner_->fetch_new(gateway_)) {
    export_one(std::move(in));
  }
  link_->shutdown(now_ns);
  for (Input& in : link_->take_received()) {
    if (oracle_ != nullptr) (void)oracle_->admit(in);
    inner_->publish(gateway_, std::move(in));
  }
}

LinkStats NetHub::link_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return link_->stats();
}

corpus::OracleStats NetHub::oracle_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return oracle_ != nullptr ? oracle_->stats() : corpus::OracleStats{};
}

}  // namespace bigmap::netfleet
