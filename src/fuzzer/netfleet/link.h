// PeerLink: partition-tolerant corpus-exchange session with one remote
// coordinator.
//
// The link is the robustness core of the federation tier. It is a
// single-threaded, non-blocking state machine (pumped from the
// coordinator's event loop, or behind NetHub's mutex for thread fleets)
// that keeps exactly one session with one peer and survives every partial
// failure a socket can produce:
//
//  - framing: BMSP CRC records (wire.h) — torn or bit-flipped frames are
//    detected, the connection is dropped, and the session resumes;
//  - novelty filter: a maintained remote-virgin summary (the content
//    hashes of everything ever sent to or received from the peer) gates
//    offer() — only entries the remote provably has not seen are shipped,
//    AFL-style, so the wire carries novelty, not the whole corpus again;
//  - session resume: offered records get absolute sequence numbers in a
//    bounded replay log. Each hello (and each heartbeat) carries the
//    receiver's cumulative record cursor; on (re)connect the sender replays
//    exactly the suffix the peer missed — never a duplicate, because the
//    receiver accepts strictly in cursor order and drops everything else;
//  - full resync: when the bounded log evicted records a resuming peer
//    still needed, the sender counts them lost and announces the new
//    stream base (hello log_base + an explicit kResync frame); the
//    receiver fast-forwards its cursor over the gap instead of waiting
//    forever for sequences that no longer exist;
//  - epoch fencing: in an epoch-aware federation (cfg.epoch != 0) a hello
//    from an older epoch is dropped (the stale side sees our higher epoch
//    in our own hello and must rejoin or die); a hello from a NEWER epoch
//    is surfaced via observed_epoch() so the owner can re-elect/re-home —
//    the link itself never adopts an epoch, it only fences;
//  - delta records: offer_delta() ships opaque oracle-delta blobs through
//    the same replay log and sequence space as entries, so virgin-map
//    delta sync inherits the exactly-once guarantees for free;
//  - loss recovery: an injected kNetDrop loses one frame; the receiver's
//    cursor stops advancing, and two consecutive heartbeats with the same
//    stale cursor rewind the send position to it (go-back-N). Frames
//    resent this way are either accepted in order or dropped as
//    duplicates — accepted-entry streams are exactly-once by construction;
//  - liveness: heartbeats every heartbeat_ms; silence past peer_timeout_ms
//    declares the peer down, tears the connection, and schedules a
//    reconnect under exponential backoff with an optional retry budget;
//  - partitions: the kNetPartition chaos site cuts the link for
//    partition_ms. During the cut both sides keep fuzzing on local sync
//    (offer() keeps logging), and the heal replays the backlog through the
//    normal resume path — graceful degradation, then reconciliation;
//  - telemetry: netfleet.* counters (bytes, records, novelty-filtered
//    drops, reconnects, timeouts, partition milliseconds) mirrored into a
//    MetricRegistry so fuzzer_stats / registry_stats / BenchReports see
//    the network tier like every other subsystem.
#pragma once

#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "fuzzer/netfleet/wire.h"
#include "fuzzer/queue.h"
#include "telemetry/registry.h"
#include "util/fault.h"
#include "util/types.h"

namespace bigmap::netfleet {

struct NetPeerConfig {
  bool enabled = false;

  // Exactly one side listens; the other dials. The listener binds
  // host:port (port 0 picks an ephemeral port, readable via
  // PeerLink::listen_port()) unless a pre-bound listening socket is handed
  // in via listen_fd (the federated-pair runner does this so the port is
  // known before forking).
  bool listener = false;
  std::string host = "127.0.0.1";
  u16 port = 0;
  int listen_fd = -1;

  // Session identity: hellos with a different fingerprint are refused
  // permanently (a federation of differently-configured campaigns would
  // exchange meaningless corpora). node_id only labels telemetry.
  u64 session_fingerprint = 0;
  u64 node_id = 0;

  // Federation epoch + rank carried in our hello. epoch 0 means an
  // epoch-agnostic link (the PR 7 pair topology): no fencing either way.
  // In an epoch-aware federation the epoch is immutable per link — a new
  // epoch always means a new PeerLink (promotion or re-home).
  u64 epoch = 0;
  u32 rank = 0;

  // Liveness and reconnect policy.
  u32 heartbeat_ms = 50;
  u32 peer_timeout_ms = 1000;
  u32 reconnect_initial_ms = 10;
  double reconnect_multiplier = 2.0;
  u32 reconnect_cap_ms = 500;
  // Consecutive failed reconnect attempts before giving up permanently
  // (0 = never give up). Giving up is graceful: the fleet keeps fuzzing
  // on local sync alone.
  u32 max_reconnects = 0;

  // Duration of one injected kNetPartition cut.
  u32 partition_ms = 500;

  // Entries larger than this are rejected at offer() (mirrors the hubs'
  // max_input_size gate).
  usize max_entry_size = 1u << 12;
  // Bounded session-resume replay log; the oldest entries are evicted
  // when it overflows, and a peer whose cursor fell behind the eviction
  // frontier has the gap counted as lost, never silently skipped.
  usize send_log_max = 1u << 12;
  // Bound on bytes queued to the socket before entry shipping pauses.
  usize outbox_max = 256u * 1024;

  // How long shutdown() keeps pumping to drain the outbox and deliver the
  // goodbye before closing unconditionally.
  u32 shutdown_linger_ms = 500;
};

struct LinkStats {
  u64 bytes_sent = 0;
  u64 bytes_received = 0;
  u64 records_sent = 0;      // entry+delta frames queued to the wire
  u64 records_received = 0;  // entry+delta frames accepted (in order)
  u64 deltas_sent = 0;       // delta frames queued to the wire
  u64 deltas_received = 0;   // delta frames accepted (in order)
  u64 entries_offered = 0;   // offer() calls that passed the size gate
  u64 novelty_filtered = 0;  // offers suppressed by the remote-virgin set
  u64 duplicates_dropped = 0;     // received entries below our cursor
  u64 out_of_order_dropped = 0;   // received entries above our cursor
  u64 rewinds = 0;                // go-back-N send-position rewinds
  u64 connects = 0;               // sessions established (incl. first)
  u64 reconnects = 0;             // sessions established after the first
  u64 heartbeat_timeouts = 0;     // peers declared down by silence
  u64 conn_errors = 0;            // resets, EOFs, torn/undecodable frames
  u64 hello_rejected = 0;         // fingerprint/version refusals
  u64 injected_drops = 0;
  u64 injected_delays = 0;
  u64 injected_short_writes = 0;
  u64 injected_resets = 0;
  u64 injected_partitions = 0;
  u64 partition_ms_total = 0;
  u64 log_evicted = 0;       // replay-log entries evicted by the bound
  u64 lost_to_eviction = 0;  // entries a resuming peer needed but were gone
  u64 resyncs_sent = 0;      // kResync announcements of an evicted gap
  u64 resync_skipped = 0;    // sequences we fast-forwarded over as receiver
  u64 stale_hellos_dropped = 0;  // hellos fenced out for an older epoch
  u64 epoch_ahead_seen = 0;  // hellos observed from a NEWER epoch
  u64 send_next = 0;         // next sequence to be assigned by offer()
  u64 peer_acked = 0;        // peer's cumulative record cursor
  u64 recv_cursor = 0;       // records accepted from the peer
  u64 peer_epoch = 0;        // epoch from the last accepted hello
  u64 peer_rank = 0;         // rank from the last accepted hello
  bool connected = false;
  bool partitioned = false;
  bool gave_up = false;      // reconnect retry budget exhausted
};

// One replay-log record: a corpus entry or an opaque oracle-delta blob.
// Both kinds share the sequence space, so cursor/ack/rewind semantics are
// identical and a delta can never overtake or shadow an entry.
struct OutRecord {
  enum Kind : u8 { kEntry = 0, kDelta = 1 };
  u8 kind = kEntry;
  Input data;
};

class PeerLink {
 public:
  // `fault` (nullable) drives the kNet* chaos sites keyed by
  // `fault_instance`; `reg` (nullable) receives netfleet.* counters.
  PeerLink(const NetPeerConfig& config, FaultInjector* fault,
           u32 fault_instance, telemetry::MetricRegistry* reg);
  ~PeerLink();
  PeerLink(const PeerLink&) = delete;
  PeerLink& operator=(const PeerLink&) = delete;

  // False when the link could never start (listener bind failure, bad
  // address). A dead link degrades to local-only fuzzing; it never throws.
  bool ok() const noexcept { return !fatal_; }
  const std::string& error() const noexcept { return error_; }

  // Actual bound port (listener side; valid when ok()).
  u16 listen_port() const noexcept { return listen_port_; }

  // Queues one locally-found entry for the peer. Returns false when the
  // entry was suppressed (novelty filter, size gate, or dead link).
  bool offer(Input input);

  // Queues one opaque oracle-delta blob. Deltas bypass the novelty filter
  // (they are state, not corpus) but ride the same replay log, so delivery
  // is exactly-once in sequence with the entries around them.
  bool offer_delta(Input blob);

  // Entries accepted from the peer since the last call, in arrival order.
  std::vector<Input> take_received();

  // Delta blobs accepted from the peer since the last call, in order.
  std::vector<Input> take_received_deltas();

  // Snapshot of the not-yet-acked replay-log suffix, for carrying across
  // an epoch boundary: a re-homing spoke re-offers these to the successor
  // hub so nothing the dead hub never acked is lost.
  std::vector<OutRecord> unacked_records() const;

  // Highest epoch seen in a peer hello that is AHEAD of cfg.epoch (0 when
  // none). The owner reacts — rejoin at the new epoch or latch stale-fatal
  // — the link itself only refuses to exchange across epochs.
  u64 observed_epoch() const noexcept { return observed_epoch_; }
  u32 observed_rank() const noexcept { return observed_rank_; }

  // Drives connect/accept, reads, frame handling, heartbeats, fault
  // injection, and writes. Non-blocking; call often (every few ms).
  void pump(u64 now_ns);

  // Bounded drain: pumps until the outbox and replay backlog are
  // delivered (or the linger budget expires), sends kBye, closes.
  void shutdown(u64 now_ns);

  bool connected() const noexcept { return fd_ >= 0 && hello_received_; }
  LinkStats stats() const;

 private:
  void establish(int fd, u64 now_ns);
  void drop_connection(u64 now_ns, const char* why, bool count_error);
  void enter_partition(u64 now_ns);
  void handle_frame(const Frame& f, u64 now_ns);
  void handle_ack(u64 cursor);
  void announce_resync();
  bool accept_in_order(u64 seq);
  void push_record(OutRecord rec);
  void queue_entries(u64 now_ns);
  void flush(u64 now_ns);
  void bump(telemetry::Counter* c, u64 n = 1) {
    if (c != nullptr) c->add(n);
  }
  bool fire(FaultSite site) {
    return fault_ != nullptr && fault_->fire(site, fault_instance_);
  }
  u64 backoff_ns(u32 attempt) const noexcept;

  const NetPeerConfig cfg_;
  FaultInjector* fault_;
  const u32 fault_instance_;

  bool fatal_ = false;
  std::string error_;

  int listen_fd_ = -1;
  bool owns_listen_fd_ = false;
  u16 listen_port_ = 0;
  int fd_ = -1;
  bool connect_pending_ = false;
  bool hello_sent_ = false;
  bool hello_received_ = false;
  bool peer_said_bye_ = false;

  FrameDecoder decoder_;
  std::vector<u8> outbox_;

  // Bounded replay log: log_ holds records [log_base_, send_next_);
  // send_pos_ is the next sequence to transmit.
  std::deque<OutRecord> log_;
  u64 log_base_ = 0;
  u64 send_next_ = 0;
  u64 send_pos_ = 0;
  u64 peer_acked_ = 0;
  u64 last_hb_cursor_ = 0;
  bool have_hb_cursor_ = false;

  u64 recv_cursor_ = 0;
  std::vector<Input> received_;
  std::vector<Input> received_deltas_;
  std::unordered_set<u64> remote_known_;
  u64 observed_epoch_ = 0;
  u32 observed_rank_ = 0;

  u64 last_rx_ns_ = 0;
  u64 last_hb_tx_ns_ = 0;
  u64 next_reconnect_ns_ = 0;
  u32 reconnect_attempts_ = 0;
  u64 partitioned_until_ns_ = 0;
  bool gave_up_ = false;

  LinkStats stats_;

  // Registry mirrors (null without a registry).
  telemetry::Counter* c_bytes_sent_ = nullptr;
  telemetry::Counter* c_bytes_received_ = nullptr;
  telemetry::Counter* c_records_sent_ = nullptr;
  telemetry::Counter* c_records_received_ = nullptr;
  telemetry::Counter* c_novelty_filtered_ = nullptr;
  telemetry::Counter* c_duplicates_ = nullptr;
  telemetry::Counter* c_reconnects_ = nullptr;
  telemetry::Counter* c_timeouts_ = nullptr;
  telemetry::Counter* c_conn_errors_ = nullptr;
  telemetry::Counter* c_rewinds_ = nullptr;
  telemetry::Counter* c_partition_ms_ = nullptr;
  telemetry::Counter* c_deltas_sent_ = nullptr;
  telemetry::Counter* c_deltas_received_ = nullptr;
  telemetry::Counter* c_resyncs_ = nullptr;
  telemetry::Counter* c_stale_hellos_ = nullptr;
};

}  // namespace bigmap::netfleet
