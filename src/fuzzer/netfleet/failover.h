// FailoverMesh: the self-healing federation node — a SyncEndpoint gateway
// that survives the one fault MeshHub cannot: the death of the hub itself.
//
// Every node in the federation runs one FailoverMesh over a static rank
// table [0, num_nodes). Exactly one rank leads an **epoch**; the others
// follow (spoke role). The wiring is pre-bound by the harness: for every
// ordered pair (leader h, spoke s) there is a listening socket L[h][s] the
// parent bound before forking, so any rank can assume leadership without
// coordination — its listeners already exist, and re-homing spokes simply
// dial the successor's well-known port.
//
//   Election.  Spokes detect hub death locally: the leader link silent
//   (never connected/hello'd) past election_timeout_ms, or its reconnect
//   budget exhausted. There is no gossip round — the successor is the
//   deterministic function succ(leader) = (leader + 1) % num_nodes, and
//   the epoch advances by exactly one, so every live spoke independently
//   computes the same (successor, epoch) pair. If the successor is itself
//   dead, the new epoch's leader link stays silent and the next election
//   fires, walking the ring until a live rank leads. The lowest-rank LIVE
//   node therefore ends up leading, one election-timeout per dead rank.
//
//   Epoch fencing.  Every hello carries the sender's epoch (wire.h v2).
//   PeerLink refuses cross-epoch sessions both ways; a hello from a NEWER
//   epoch is surfaced here via observed_epoch(). A resurrected stale hub
//   probes (resume_probe), observes the successor's higher epoch, and
//   either latches stale-fatal (stale_fatal=true: fenced out for good, the
//   drill's split-brain proof) or rejoins the new epoch as a spoke.
//
//   Cursor handoff.  Links are per-epoch; the replay log is not. When a
//   spoke re-homes it carries the old link's unacked suffix and re-offers
//   it on the new session, so nothing the dead hub never acked is lost.
//   A cross-epoch content-hash seen-set gates every gateway publish, so
//   nothing is double-accepted either — together: exactly-once across the
//   epoch boundary.
//
//   Oracle delta sync.  Followers ship compact virgin-map deltas of their
//   own federation model (corpus::OracleDelta over the kDelta frame) on a
//   steady cadence, and a full-state snapshot on every (re)home. The
//   leader rebuilds its per-peer NoveltyOracle models by APPLYING those
//   records — zero candidate re-executions — instead of the MeshHub
//   scheme of admit()-folding every received entry, which also cuts the
//   steady-state hub executor load. Leader-side models gate relays the
//   same way MeshHub's do.
//
//   Journal.  Epoch transitions and delta records are appended to a
//   federation WAL (persist/federation.h) for resume (a restarted node
//   recovers its last epoch) and for statecheck's post-drill audit.
//
// Thread-safety: like MeshHub — endpoint calls pass through to the inner
// hub; offer/take/pump/shutdown serialize behind one mutex.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "corpus/novelty.h"
#include "fuzzer/netfleet/link.h"
#include "fuzzer/netfleet/mesh.h"
#include "fuzzer/sync.h"

namespace bigmap::netfleet {

struct FailoverNodeConfig {
  bool enabled = false;

  // Static identity. Ranks are [0, num_nodes); initial_leader leads
  // initial_epoch. Epoch 0 is reserved (epoch-agnostic links), so
  // initial_epoch must be >= 1.
  u32 rank = 0;
  u32 num_nodes = 0;
  u32 initial_leader = 0;
  u64 initial_epoch = 1;

  // Pre-bound wiring. listen_fds[s] is OUR listener that rank s dials
  // when WE lead (-1 at index == rank). dial_ports[r] is the port WE dial
  // when rank r leads. Both sized num_nodes.
  std::vector<int> listen_fds;
  std::vector<u16> dial_ports;

  // Per-link template: fingerprint, node id, liveness/backoff tuning,
  // chaos wiring. listener/port/epoch/rank fields are overwritten per
  // link.
  NetPeerConfig link;

  // Leader-link silence (never established) before a spoke declares the
  // leader dead and elects. Must comfortably exceed the link's own
  // peer_timeout + reconnect backoff so transient faults heal in-session.
  u32 election_timeout_ms = 600;

  // Steady-state oracle delta cadence on follower links (0 = only the
  // full-state snapshot at (re)home time).
  u32 delta_interval_ms = 40;

  // Resurrected-node behavior. resume_probe: before acting on the
  // journaled role, dial every other rank and listen for a newer epoch;
  // on silence, resume the prior role. stale_fatal: when a newer epoch is
  // observed, latch fenced (refuse to participate ever again) instead of
  // rejoining it.
  bool resume_probe = false;
  bool stale_fatal = false;
  u32 probe_timeout_ms = 0;  // 0 -> 2 * election_timeout_ms

  // Federation WAL path (empty = no journaling, no epoch resume).
  std::string wal_path;
};

struct FailoverStats {
  u64 epoch = 0;
  u32 role = 0;  // 0 leader, 1 follower, 2 probing, 3 fenced
  u32 leader_rank = 0;
  u64 elections = 0;    // leader deaths this node detected
  u64 promotions = 0;   // elections this node won
  u64 rehomes = 0;      // re-homes to a successor (incl. rejoins)
  u64 rejoins = 0;      // re-homes caused by observing a newer epoch
  u64 fenced = 0;       // 1 when stale-fatal latched
  u64 handoff_reoffered = 0;  // unacked entries re-offered across an epoch
  u64 dup_suppressed = 0;     // cross-epoch duplicate publishes suppressed
  u64 deltas_shipped = 0;     // delta records offered to the wire
  u64 deltas_applied = 0;     // delta records applied to per-peer models
  LinkStats net;              // aggregate over this node's current links
  corpus::OracleStats oracle;  // aggregate over this node's models
};

class FailoverMesh final : public SyncEndpoint {
 public:
  using OracleFactory =
      std::function<std::unique_ptr<corpus::NoveltyOracle>()>;

  // `inner` as in MeshHub (one extra instance, the gateway). `factory`
  // builds one fresh remote model per peer link (may be null / return
  // null: content-hash filtering only, no delta sync). `fault` drives the
  // kNet* chaos sites; `reg` receives failover.* counters.
  FailoverMesh(SyncEndpoint* inner, u32 gateway_instance,
               FailoverNodeConfig cfg, OracleFactory factory,
               FaultInjector* fault, telemetry::MetricRegistry* reg);
  ~FailoverMesh() override;

  u32 num_instances() const noexcept override;
  bool publish(u32 instance, Input input) override;
  std::vector<Input> fetch_new(u32 instance) override;
  void reset_cursor(u32 instance) override;
  u64 total_published() const override;
  SyncHubStats stats() const override;

  // Drives links, elections, delta sync, and epoch reactions; call from
  // the coordinator loop every few milliseconds.
  void pump(u64 now_ns);

  // Final export sweep, link drains, goodbye. Fenced nodes no-op.
  void shutdown(u64 now_ns);

  FailoverStats failover_stats() const;

 private:
  enum class Role { kLeader, kFollower, kProbing, kFenced };

  struct Peer {
    u32 rank = 0;
    std::unique_ptr<PeerLink> link;
    std::unique_ptr<corpus::NoveltyOracle> oracle;  // leader-side model
  };

  void journal_epoch(u8 reason);
  void journal_delta(const Input& blob);
  void load_wal();
  NetPeerConfig link_config(bool listener, u32 remote_rank) const;
  std::unique_ptr<corpus::NoveltyOracle> make_model() const;
  void publish_once(Input in);
  void export_gated(Peer& p, const Input& in);
  void start_probe(u64 now_ns);
  void promote(u64 now_ns, bool resumed);
  void rehome(u32 new_leader, u64 now_ns, bool rejoin);
  void elect(u64 now_ns);
  void react_to_newer_epoch(u64 now_ns);
  void fence(u64 now_ns);
  void capture_handoff(Peer& p);
  void retire_links();
  void ship_deltas(Peer& p, bool full);
  void pump_leader(u64 now_ns);
  void pump_follower(u64 now_ns);
  void pump_probe(u64 now_ns);
  void bump(telemetry::Counter* c, u64 n = 1) {
    if (c != nullptr) c->add(n);
  }

  SyncEndpoint* inner_;
  const u32 gateway_;
  const FailoverNodeConfig cfg_;
  OracleFactory factory_;
  FaultInjector* fault_;
  telemetry::MetricRegistry* reg_;

  Role role_ = Role::kFollower;
  u64 epoch_ = 1;
  u32 leader_ = 0;

  std::vector<Peer> peers_;
  // Follower-side model of everything this node has seen through the
  // federation (gates exports; the source of the shipped deltas). Owned
  // for the node's whole life — it is the state that crosses epochs.
  std::unique_ptr<corpus::NoveltyOracle> my_oracle_;

  // Cross-epoch exactly-once: content hashes of every entry this node has
  // published under the gateway or exported from its own fleet.
  std::unordered_set<u64> seen_hashes_;
  // Entries carried over an epoch boundary, awaiting re-offer (leader:
  // broadcast to every spoke; set only at promotion).
  std::vector<Input> pending_broadcast_;

  u64 last_leader_seen_ns_ = 0;
  u64 last_delta_ns_ = 0;
  u64 probe_deadline_ns_ = 0;
  bool wal_ready_ = false;
  bool started_ = false;

  // Accounting of links/models already destroyed by role transitions, so
  // re-homing never erases the old epoch's stats.
  LinkStats net_carried_;
  corpus::OracleStats oracle_carried_;

  FailoverStats fstats_;
  mutable std::mutex mu_;

  telemetry::Counter* c_elections_ = nullptr;
  telemetry::Counter* c_promotions_ = nullptr;
  telemetry::Counter* c_rehomes_ = nullptr;
  telemetry::Counter* c_rejoins_ = nullptr;
  telemetry::Counter* c_fenced_ = nullptr;
  telemetry::Counter* c_deltas_shipped_ = nullptr;
  telemetry::Counter* c_deltas_applied_ = nullptr;
  telemetry::Counter* c_dup_suppressed_ = nullptr;
  telemetry::Counter* c_handoff_ = nullptr;
};

}  // namespace bigmap::netfleet
