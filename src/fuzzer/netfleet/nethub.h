// NetHub: a SyncEndpoint gateway that federates a local hub with one
// remote peer over a PeerLink.
//
// Campaigns see only the SyncEndpoint interface (sync.h), so federation is
// a wrapper, not a fuzzing-loop change: NetHub forwards every endpoint
// call to the wrapped inner hub (SyncHub for thread fleets, ShmHub for
// process fleets) and reserves one extra inner instance — the *gateway
// instance* — as the remote side's local identity:
//
//   local find  -> inner.publish(worker)  -> pump: inner.fetch_new(gateway)
//               -> link.offer()           -> wire -> remote gateway
//   remote find -> link.take_received()   -> inner.publish(gateway)
//               -> workers import it via their ordinary fetch_new
//
// fetch_new never returns an instance's own publishes, so the gateway
// instance never re-exports what it just imported — there is no echo loop
// by construction, and the novelty filter in the link suppresses
// re-offering anything the peer already has.
//
// Thread-safety: the inner hub is already thread-safe; the link is
// single-threaded, so the wrapper serializes offer/take/pump with a mutex
// and endpoint calls pass straight through.
#pragma once

#include <memory>
#include <mutex>

#include "corpus/novelty.h"
#include "fuzzer/netfleet/link.h"
#include "fuzzer/sync.h"

namespace bigmap::netfleet {

class NetHub final : public SyncEndpoint {
 public:
  // `inner` must outlive the NetHub and must have been created with one
  // more instance than the fleet's workers; the extra (highest) id is the
  // gateway instance. The link is owned.
  NetHub(SyncEndpoint* inner, u32 gateway_instance,
         std::unique_ptr<PeerLink> link);

  // Optional virgin-map novelty gate (owned; see corpus/novelty.h and the
  // MeshHub file comment). Opt-in: without it the pump behaves exactly as
  // before, which keeps the pre-oracle federation drills bit-identical.
  // Attach before the first pump().
  void set_oracle(std::unique_ptr<corpus::NoveltyOracle> oracle);

  u32 num_instances() const noexcept override;
  bool publish(u32 instance, Input input) override;
  std::vector<Input> fetch_new(u32 instance) override;
  void reset_cursor(u32 instance) override;
  u64 total_published() const override;
  SyncHubStats stats() const override;

  // Moves novelty between the inner hub and the wire; call from the
  // supervisor loop every few milliseconds.
  void pump(u64 now_ns);

  // Drains the link (bounded) and closes the session.
  void shutdown(u64 now_ns);

  PeerLink& link() noexcept { return *link_; }
  LinkStats link_stats() const;
  // Zeroed when no oracle is attached.
  corpus::OracleStats oracle_stats() const;

 private:
  // Offers one export, gated by the oracle when present.
  void export_one(Input in);

  SyncEndpoint* inner_;
  const u32 gateway_;
  std::unique_ptr<PeerLink> link_;
  std::unique_ptr<corpus::NoveltyOracle> oracle_;
  mutable std::mutex mu_;
};

}  // namespace bigmap::netfleet
