// Non-blocking TCP plumbing for the federation link.
//
// Thin wrappers over the BSD socket calls the PeerLink state machine
// drives: everything is non-blocking (the link is pumped from a
// single-threaded coordinator loop and must never stall it), every call
// retries EINTR via util/syscall.h, and sends use MSG_NOSIGNAL so a peer
// reset surfaces as EPIPE instead of a process-killing SIGPIPE (the
// process-wide ignore_sigpipe() is belt-and-braces on top).
//
// Return convention for sock_send/sock_recv: >= 0 bytes moved,
// kWouldBlock when the operation would block, kErr on a real error
// (connection dead). recv additionally returns 0 for a clean EOF.
#pragma once

#include <string>

#include "util/types.h"

namespace bigmap::netfleet {

inline constexpr ssize_t kWouldBlock = -2;
inline constexpr ssize_t kErr = -1;

// Marks `fd` non-blocking. Returns false on fcntl failure.
bool set_nonblocking(int fd);

// Binds and listens on host:*port (IPv4, SO_REUSEADDR). *port == 0 picks
// an ephemeral port and writes the chosen one back. Returns the listening
// fd, or -1 with *err set.
int tcp_listen(const std::string& host, u16* port, std::string* err);

// Accepts one pending connection from a non-blocking listener. Returns the
// (non-blocking) connection fd, or kWouldBlock when none is pending, or
// kErr on a real accept failure.
int tcp_accept(int listen_fd);

// Starts a non-blocking connect to host:port. Returns the in-progress fd
// or -1 with *err set on immediate failure.
int tcp_connect_start(const std::string& host, u16 port, std::string* err);

// Polls an in-progress connect: 1 connected, 0 still in progress, -1
// failed (caller closes the fd).
int tcp_connect_poll(int fd);

// Non-blocking send/recv with the convention above.
ssize_t sock_send(int fd, const u8* data, usize n);
ssize_t sock_recv(int fd, u8* data, usize n);

// Closes with SO_LINGER{on, 0}: the kernel sends RST instead of FIN, so
// the peer observes ECONNRESET — the abrupt-reset failure mode the
// kNetConnReset chaos site models.
void close_with_reset(int fd);

}  // namespace bigmap::netfleet
