#include "fuzzer/netfleet/mesh.h"

#include <algorithm>
#include <utility>

namespace bigmap::netfleet {

LinkStats sum_link_stats(const LinkStats& a, const LinkStats& b) {
  LinkStats s = a;
  s.bytes_sent += b.bytes_sent;
  s.bytes_received += b.bytes_received;
  s.records_sent += b.records_sent;
  s.records_received += b.records_received;
  s.deltas_sent += b.deltas_sent;
  s.deltas_received += b.deltas_received;
  s.entries_offered += b.entries_offered;
  s.novelty_filtered += b.novelty_filtered;
  s.duplicates_dropped += b.duplicates_dropped;
  s.out_of_order_dropped += b.out_of_order_dropped;
  s.rewinds += b.rewinds;
  s.connects += b.connects;
  s.reconnects += b.reconnects;
  s.heartbeat_timeouts += b.heartbeat_timeouts;
  s.conn_errors += b.conn_errors;
  s.hello_rejected += b.hello_rejected;
  s.injected_drops += b.injected_drops;
  s.injected_delays += b.injected_delays;
  s.injected_short_writes += b.injected_short_writes;
  s.injected_resets += b.injected_resets;
  s.injected_partitions += b.injected_partitions;
  s.partition_ms_total += b.partition_ms_total;
  s.log_evicted += b.log_evicted;
  s.lost_to_eviction += b.lost_to_eviction;
  s.resyncs_sent += b.resyncs_sent;
  s.resync_skipped += b.resync_skipped;
  s.stale_hellos_dropped += b.stale_hellos_dropped;
  s.epoch_ahead_seen += b.epoch_ahead_seen;
  s.send_next += b.send_next;
  s.peer_acked += b.peer_acked;
  s.recv_cursor += b.recv_cursor;
  s.peer_epoch = std::max(a.peer_epoch, b.peer_epoch);
  s.peer_rank = std::max(a.peer_rank, b.peer_rank);
  s.connected = a.connected || b.connected;
  s.partitioned = a.partitioned || b.partitioned;
  s.gave_up = a.gave_up || b.gave_up;
  return s;
}

MeshHub::MeshHub(SyncEndpoint* inner, u32 gateway_instance)
    : inner_(inner), gateway_(gateway_instance) {}

void MeshHub::add_link(std::unique_ptr<PeerLink> link,
                       std::unique_ptr<corpus::NoveltyOracle> oracle) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.push_back(Peer{std::move(link), std::move(oracle)});
}

u32 MeshHub::num_instances() const noexcept {
  return inner_->num_instances();
}

bool MeshHub::publish(u32 instance, Input input) {
  return inner_->publish(instance, std::move(input));
}

std::vector<Input> MeshHub::fetch_new(u32 instance) {
  return inner_->fetch_new(instance);
}

void MeshHub::reset_cursor(u32 instance) {
  inner_->reset_cursor(instance);
}

u64 MeshHub::total_published() const { return inner_->total_published(); }

SyncHubStats MeshHub::stats() const { return inner_->stats(); }

void MeshHub::export_to(Peer& peer, const Input& in) {
  // The oracle verdict also advances the remote model: a shipped entry is
  // coverage the peer now has, a rejected one is coverage it already had.
  if (peer.oracle != nullptr && !peer.oracle->admit(in)) return;
  peer.link->offer(in);
}

void MeshHub::pump(u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  // Export: everything workers published since the last pump goes to every
  // spoke (fetch_new on the gateway id excludes the gateway's own imports,
  // so relayed entries are not re-exported here).
  for (Input& in : inner_->fetch_new(gateway_)) {
    for (Peer& p : peers_) export_to(p, in);
  }
  for (Peer& p : peers_) p.link->pump(now_ns);
  // Import: accepted entries become local publishes under the gateway
  // identity AND are relayed to the other spokes — the hub hop that makes
  // a star behave like a full mesh.
  for (usize i = 0; i < peers_.size(); ++i) {
    for (Input& in : peers_[i].link->take_received()) {
      if (peers_[i].oracle != nullptr) {
        // The source peer evidently has this entry: fold it into that
        // peer's remote model so we never ship its coverage back.
        (void)peers_[i].oracle->admit(in);
      }
      for (usize j = 0; j < peers_.size(); ++j) {
        if (j != i) export_to(peers_[j], in);
      }
      inner_->publish(gateway_, std::move(in));
    }
  }
}

void MeshHub::shutdown(u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  // One last export sweep so finds from the final sync interval still
  // reach every spoke before the goodbyes.
  for (Input& in : inner_->fetch_new(gateway_)) {
    for (Peer& p : peers_) export_to(p, in);
  }
  for (Peer& p : peers_) p.link->shutdown(now_ns);
  // Entries that arrived during the drain still reach local workers; the
  // links are closed, so there is no spoke relay for them anymore.
  for (Peer& p : peers_) {
    for (Input& in : p.link->take_received()) {
      inner_->publish(gateway_, std::move(in));
    }
  }
}

usize MeshHub::link_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peers_.size();
}

LinkStats MeshHub::link_stats(usize i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peers_[i].link->stats();
}

corpus::OracleStats MeshHub::oracle_stats(usize i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peers_[i].oracle != nullptr ? peers_[i].oracle->stats()
                                     : corpus::OracleStats{};
}

LinkStats MeshHub::aggregate_link_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  LinkStats out;
  for (const Peer& p : peers_) out = sum_link_stats(out, p.link->stats());
  return out;
}

corpus::OracleStats MeshHub::aggregate_oracle_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  corpus::OracleStats out;
  for (const Peer& p : peers_) {
    if (p.oracle == nullptr) continue;
    const corpus::OracleStats& os = p.oracle->stats();
    out.checked += os.checked;
    out.accepted += os.accepted;
    out.rejected += os.rejected;
    out.deltas_exported += os.deltas_exported;
    out.cells_exported += os.cells_exported;
    out.deltas_applied += os.deltas_applied;
    out.cells_applied += os.cells_applied;
  }
  return out;
}

}  // namespace bigmap::netfleet
