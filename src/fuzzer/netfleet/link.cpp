#include "fuzzer/netfleet/link.h"

#include <unistd.h>

#include <algorithm>

#include "fuzzer/netfleet/transport.h"
#include "util/hash.h"
#include "util/syscall.h"

namespace bigmap::netfleet {
namespace {

constexpr u64 kMsNs = 1'000'000ull;
constexpr usize kRecvChunk = 16u * 1024;

}  // namespace

PeerLink::PeerLink(const NetPeerConfig& config, FaultInjector* fault,
                   u32 fault_instance, telemetry::MetricRegistry* reg)
    : cfg_(config), fault_(fault), fault_instance_(fault_instance) {
  if (reg != nullptr) {
    c_bytes_sent_ = &reg->counter("netfleet.bytes_sent");
    c_bytes_received_ = &reg->counter("netfleet.bytes_received");
    c_records_sent_ = &reg->counter("netfleet.records_sent");
    c_records_received_ = &reg->counter("netfleet.records_received");
    c_novelty_filtered_ = &reg->counter("netfleet.novelty_filtered");
    c_duplicates_ = &reg->counter("netfleet.duplicates_dropped");
    c_reconnects_ = &reg->counter("netfleet.reconnects");
    c_timeouts_ = &reg->counter("netfleet.heartbeat_timeouts");
    c_conn_errors_ = &reg->counter("netfleet.conn_errors");
    c_rewinds_ = &reg->counter("netfleet.rewinds");
    c_partition_ms_ = &reg->counter("netfleet.partition_ms");
    c_deltas_sent_ = &reg->counter("netfleet.deltas_sent");
    c_deltas_received_ = &reg->counter("netfleet.deltas_received");
    c_resyncs_ = &reg->counter("netfleet.resyncs_sent");
    c_stale_hellos_ = &reg->counter("netfleet.stale_hellos_dropped");
  }
  if (cfg_.listener) {
    if (cfg_.listen_fd >= 0) {
      listen_fd_ = cfg_.listen_fd;
      owns_listen_fd_ = false;
      listen_port_ = cfg_.port;
      if (!set_nonblocking(listen_fd_)) {
        fatal_ = true;
        error_ = "netfleet: fcntl(O_NONBLOCK) on inherited listener failed";
      }
    } else {
      u16 port = cfg_.port;
      std::string err;
      listen_fd_ = tcp_listen(cfg_.host, &port, &err);
      if (listen_fd_ < 0) {
        fatal_ = true;
        error_ = "netfleet: " + err;
      } else {
        owns_listen_fd_ = true;
        listen_port_ = port;
      }
    }
  }
}

PeerLink::~PeerLink() {
  if (fd_ >= 0) xclose(fd_);
  if (listen_fd_ >= 0 && owns_listen_fd_) xclose(listen_fd_);
}

void PeerLink::push_record(OutRecord rec) {
  log_.push_back(std::move(rec));
  send_next_++;
  // Evict from the front when the replay log overflows its bound. Never
  // evict past send_pos_: dropping an un-transmitted record would silently
  // lose corpus. An un-shippable backlog that large means the peer is gone
  // for good anyway (timeout will fire long before).
  while (log_.size() > cfg_.send_log_max && log_base_ < send_pos_) {
    log_.pop_front();
    log_base_++;
    stats_.log_evicted++;
  }
}

bool PeerLink::offer(Input input) {
  if (fatal_) return false;
  if (input.size() > cfg_.max_entry_size) return false;
  stats_.entries_offered++;
  const u64 h = fnv1a64(input);
  if (!remote_known_.insert(h).second) {
    stats_.novelty_filtered++;
    bump(c_novelty_filtered_);
    return false;
  }
  push_record({OutRecord::kEntry, std::move(input)});
  return true;
}

bool PeerLink::offer_delta(Input blob) {
  if (fatal_) return false;
  push_record({OutRecord::kDelta, std::move(blob)});
  return true;
}

std::vector<Input> PeerLink::take_received() {
  std::vector<Input> out;
  out.swap(received_);
  return out;
}

std::vector<Input> PeerLink::take_received_deltas() {
  std::vector<Input> out;
  out.swap(received_deltas_);
  return out;
}

std::vector<OutRecord> PeerLink::unacked_records() const {
  std::vector<OutRecord> out;
  const u64 from = std::max(peer_acked_, log_base_);
  for (u64 s = from; s < send_next_; ++s) {
    out.push_back(log_[static_cast<usize>(s - log_base_)]);
  }
  return out;
}

u64 PeerLink::backoff_ns(u32 attempt) const noexcept {
  double ms = static_cast<double>(cfg_.reconnect_initial_ms);
  for (u32 i = 0; i < attempt; ++i) ms *= cfg_.reconnect_multiplier;
  const double cap = static_cast<double>(cfg_.reconnect_cap_ms);
  if (ms > cap) ms = cap;
  return static_cast<u64>(ms) * kMsNs;
}

void PeerLink::establish(int fd, u64 now_ns) {
  fd_ = fd;
  connect_pending_ = false;
  hello_sent_ = false;
  hello_received_ = false;
  decoder_.reset();
  outbox_.clear();
  stats_.connects++;
  if (stats_.connects > 1) {
    stats_.reconnects++;
    bump(c_reconnects_);
  }
  reconnect_attempts_ = 0;
  last_rx_ns_ = now_ns;
  last_hb_tx_ns_ = now_ns;
  have_hb_cursor_ = false;
  // Stream preamble + hello open every session; the hello's cursor tells
  // the peer exactly where to resume its replay.
  append_preamble(outbox_);
  HelloMsg hello;
  hello.proto_version = kProtocolVersion;
  hello.fingerprint = cfg_.session_fingerprint;
  hello.node_id = cfg_.node_id;
  hello.recv_cursor = recv_cursor_;
  hello.epoch = cfg_.epoch;
  hello.rank = cfg_.rank;
  hello.log_base = log_base_;
  append_hello(outbox_, hello);
  hello_sent_ = true;
}

void PeerLink::drop_connection(u64 now_ns, const char* why,
                               bool count_error) {
  (void)why;
  if (fd_ >= 0) {
    xclose(fd_);
    fd_ = -1;
  }
  connect_pending_ = false;
  hello_sent_ = false;
  hello_received_ = false;
  outbox_.clear();
  decoder_.reset();
  if (count_error) {
    stats_.conn_errors++;
    bump(c_conn_errors_);
  }
  // Anything past the peer's last ack is in doubt; the hello on the next
  // session tells us precisely where to resume, but rewinding now keeps
  // the invariant send_pos_ >= peer_acked_ trivially true.
  send_pos_ = peer_acked_;
  have_hb_cursor_ = false;
  if (cfg_.max_reconnects != 0 &&
      reconnect_attempts_ >= cfg_.max_reconnects) {
    gave_up_ = true;
    return;
  }
  next_reconnect_ns_ = now_ns + backoff_ns(reconnect_attempts_);
  reconnect_attempts_++;
}

void PeerLink::enter_partition(u64 now_ns) {
  stats_.injected_partitions++;
  stats_.partition_ms_total += cfg_.partition_ms;
  bump(c_partition_ms_, cfg_.partition_ms);
  partitioned_until_ns_ = now_ns + static_cast<u64>(cfg_.partition_ms) * kMsNs;
  if (fd_ >= 0) {
    close_with_reset(fd_);
    fd_ = -1;
  }
  drop_connection(now_ns, "partition", /*count_error=*/false);
}

// Announces the eviction frontier: the peer's cursor points at sequences
// the bounded log no longer holds, so tell it to fast-forward. This is the
// documented full-resync path — the gap is counted, never silent.
void PeerLink::announce_resync() {
  append_cursor(outbox_, NetMsg::kResync, log_base_);
  stats_.resyncs_sent++;
  bump(c_resyncs_);
}

// Receiver-side in-order acceptance shared by kEntry and kDelta: true when
// `seq` is exactly the next expected record. Anything below the cursor was
// provably already accepted (exactly-once); anything above is a gap the
// sender's go-back-N rewind (or a kResync) must close.
bool PeerLink::accept_in_order(u64 seq) {
  if (seq < recv_cursor_) {
    stats_.duplicates_dropped++;
    bump(c_duplicates_);
    return false;
  }
  if (seq > recv_cursor_) {
    stats_.out_of_order_dropped++;
    return false;
  }
  recv_cursor_++;
  stats_.records_received++;
  bump(c_records_received_);
  return true;
}

void PeerLink::handle_ack(u64 cursor) {
  if (cursor > peer_acked_) {
    peer_acked_ = std::min(cursor, send_next_);
    if (send_pos_ < peer_acked_) send_pos_ = peer_acked_;
    // Acked entries will never be replayed again; trim the log.
    while (log_base_ < peer_acked_ && !log_.empty()) {
      log_.pop_front();
      log_base_++;
    }
  }
}

void PeerLink::handle_frame(const Frame& f, u64 now_ns) {
  switch (f.type) {
    case NetMsg::kHello: {
      HelloMsg h;
      if (!parse_hello(f.payload, &h)) {
        drop_connection(now_ns, "bad hello", /*count_error=*/true);
        return;
      }
      if (h.proto_version != kProtocolVersion ||
          h.fingerprint != cfg_.session_fingerprint) {
        // A peer from a different campaign (or protocol era) can never
        // become compatible; stop retrying entirely.
        stats_.hello_rejected++;
        fatal_ = true;
        error_ = "netfleet: peer hello rejected (version/fingerprint)";
        drop_connection(now_ns, "hello rejected", /*count_error=*/true);
        gave_up_ = true;
        return;
      }
      // Epoch fencing (epoch-aware federations only). An OLDER epoch is
      // dropped: the stale side sees our higher epoch in our own hello and
      // must rejoin or die — we never exchange with the past. A NEWER
      // epoch is recorded for the owner (re-elect / re-home / latch
      // stale-fatal) and likewise refused: this link's epoch is immutable.
      if (cfg_.epoch != 0 || h.epoch != 0) {
        if (h.epoch < cfg_.epoch) {
          // Fence the FRAME, not the connection: our own hello (queued at
          // establish, flushed after this handler) must still reach the
          // stale peer so it can observe the newer epoch and rejoin or
          // die. Closing here would race the close ahead of that flush
          // and leave the stale side blind forever. Without a valid
          // hello the session never exchanges records, and the heartbeat
          // timeout reaps it if the peer lingers.
          stats_.stale_hellos_dropped++;
          bump(c_stale_hellos_);
          return;
        }
        if (h.epoch > cfg_.epoch) {
          if (h.epoch > observed_epoch_) {
            observed_epoch_ = h.epoch;
            observed_rank_ = h.rank;
          }
          stats_.epoch_ahead_seen++;
          drop_connection(now_ns, "epoch ahead", /*count_error=*/false);
          return;
        }
      }
      hello_received_ = true;
      stats_.peer_epoch = h.epoch;
      stats_.peer_rank = h.rank;
      // Session resume: the peer's cursor is authoritative for where
      // replay restarts. A cursor behind the eviction frontier means the
      // bounded log already dropped records it needed — count the gap,
      // announce the resync, and resume from what we still have.
      u64 resume = h.recv_cursor;
      handle_ack(resume);
      if (resume < log_base_) {
        stats_.lost_to_eviction += log_base_ - resume;
        resume = log_base_;
        announce_resync();
      }
      if (resume > send_next_) resume = send_next_;  // peer claims too much
      send_pos_ = resume;
      // Mirror image: the peer's log base is ahead of what we have
      // accepted — the records between recv_cursor_ and its base are gone
      // for good. Fast-forward rather than dropping its replay forever.
      if (h.log_base > recv_cursor_) {
        stats_.resync_skipped += h.log_base - recv_cursor_;
        recv_cursor_ = h.log_base;
      }
      break;
    }
    case NetMsg::kEntry: {
      u64 seq = 0;
      Input data;
      if (!parse_entry(f.payload, &seq, &data)) {
        drop_connection(now_ns, "bad entry", /*count_error=*/true);
        return;
      }
      if (!accept_in_order(seq)) return;
      // Anything the peer sent us is by definition known to it.
      remote_known_.insert(fnv1a64(data));
      received_.push_back(std::move(data));
      break;
    }
    case NetMsg::kDelta: {
      u64 seq = 0;
      Input data;
      if (!parse_delta(f.payload, &seq, &data)) {
        drop_connection(now_ns, "bad delta", /*count_error=*/true);
        return;
      }
      if (!accept_in_order(seq)) return;
      stats_.deltas_received++;
      bump(c_deltas_received_);
      received_deltas_.push_back(std::move(data));
      break;
    }
    case NetMsg::kResync: {
      u64 new_base = 0;
      if (!parse_cursor(f.payload, &new_base)) {
        drop_connection(now_ns, "bad resync", /*count_error=*/true);
        return;
      }
      // The sender's bounded log evicted records we never accepted; the
      // gap is unrecoverable by rewind. Fast-forward over it (counted,
      // never silent) so the stream flows again.
      if (new_base > recv_cursor_) {
        stats_.resync_skipped += new_base - recv_cursor_;
        recv_cursor_ = new_base;
      }
      break;
    }
    case NetMsg::kHeartbeat: {
      u64 cursor = 0;
      if (!parse_cursor(f.payload, &cursor)) {
        drop_connection(now_ns, "bad heartbeat", /*count_error=*/true);
        return;
      }
      // Go-back-N: two consecutive heartbeats stuck at the same cursor
      // while we believe we sent further means frames were lost in
      // flight — rewind and resend the suffix.
      if (have_hb_cursor_ && cursor == last_hb_cursor_ &&
          cursor < send_pos_) {
        u64 target = std::max(cursor, log_base_);
        // The stalled cursor points below our eviction frontier: no rewind
        // can reach it. Re-announce the resync (the original kResync frame
        // may itself have been lost to chaos) so the peer fast-forwards.
        if (cursor < log_base_) announce_resync();
        if (target < send_pos_) {
          send_pos_ = target;
          stats_.rewinds++;
          bump(c_rewinds_);
        }
        have_hb_cursor_ = false;  // re-arm: need two fresh stalled beats
      } else {
        last_hb_cursor_ = cursor;
        have_hb_cursor_ = true;
      }
      handle_ack(cursor);
      break;
    }
    case NetMsg::kBye: {
      u64 cursor = 0;
      if (parse_cursor(f.payload, &cursor)) handle_ack(cursor);
      peer_said_bye_ = true;
      drop_connection(now_ns, "peer bye", /*count_error=*/false);
      break;
    }
  }
}

void PeerLink::queue_entries(u64 now_ns) {
  if (!hello_received_) return;  // never ship records before the handshake
  while (send_pos_ < send_next_ && outbox_.size() < cfg_.outbox_max) {
    if (send_pos_ < log_base_) {  // evicted beneath us; skip the gap
      stats_.lost_to_eviction += log_base_ - send_pos_;
      send_pos_ = log_base_;
      announce_resync();
      continue;
    }
    const OutRecord& rec = log_[static_cast<usize>(send_pos_ - log_base_)];
    const u64 seq = send_pos_;
    send_pos_++;
    if (fire(FaultSite::kNetDrop)) {
      // Chaos: lose this frame in flight. send_pos_ already advanced, so
      // recovery is exactly the stalled-heartbeat rewind path.
      stats_.injected_drops++;
      continue;
    }
    if (fire(FaultSite::kNetDelay)) {
      // Chaos: hold this frame (and everything after it) until the next
      // pump. In-order delivery is preserved; only latency is injected.
      stats_.injected_delays++;
      send_pos_ = seq;
      break;
    }
    if (rec.kind == OutRecord::kDelta) {
      append_delta(outbox_, seq, rec.data);
      stats_.deltas_sent++;
      bump(c_deltas_sent_);
    } else {
      append_entry(outbox_, seq, rec.data);
    }
    stats_.records_sent++;
    bump(c_records_sent_);
  }
  (void)now_ns;
}

void PeerLink::flush(u64 now_ns) {
  if (outbox_.empty() || fd_ < 0) return;
  usize limit = outbox_.size();
  bool short_write = false;
  if (fire(FaultSite::kNetShortWrite)) {
    // Chaos: deliver only half the pending bytes, then kill the
    // connection — the classic torn frame. The receiver's CRC framing
    // must absorb it.
    stats_.injected_short_writes++;
    limit = limit / 2;
    short_write = true;
  }
  usize sent = 0;
  while (sent < limit) {
    const ssize_t r = sock_send(fd_, outbox_.data() + sent, limit - sent);
    if (r == kWouldBlock) break;
    if (r == kErr) {
      drop_connection(now_ns, "send error", /*count_error=*/true);
      return;
    }
    sent += static_cast<usize>(r);
  }
  stats_.bytes_sent += sent;
  bump(c_bytes_sent_, sent);
  outbox_.erase(outbox_.begin(), outbox_.begin() + static_cast<std::ptrdiff_t>(sent));
  if (short_write) {
    close_with_reset(fd_);
    fd_ = -1;
    drop_connection(now_ns, "short write", /*count_error=*/true);
  }
}

void PeerLink::pump(u64 now_ns) {
  if (fatal_ || gave_up_) return;

  // Partition window: stay dark until it elapses.
  if (partitioned_until_ns_ != 0) {
    if (now_ns < partitioned_until_ns_) {
      stats_.partitioned = true;
      return;
    }
    partitioned_until_ns_ = 0;
    stats_.partitioned = false;
  }

  // Connection (re)establishment.
  if (fd_ < 0) {
    if (now_ns < next_reconnect_ns_) return;
    if (cfg_.listener) {
      const int fd = tcp_accept(listen_fd_);
      if (fd >= 0) {
        establish(fd, now_ns);
      } else if (fd == static_cast<int>(kErr)) {
        drop_connection(now_ns, "accept error", /*count_error=*/true);
        return;
      } else {
        return;  // nothing pending
      }
    } else {
      std::string err;
      const int fd = tcp_connect_start(cfg_.host, cfg_.port, &err);
      if (fd < 0) {
        drop_connection(now_ns, "connect start", /*count_error=*/true);
        return;
      }
      fd_ = fd;
      connect_pending_ = true;
      last_rx_ns_ = now_ns;  // start the connect-timeout clock
    }
  }

  if (connect_pending_) {
    const int st = tcp_connect_poll(fd_);
    if (st == 0) {
      // Still connecting; a hung connect is bounded by the peer timeout.
      if (now_ns - last_rx_ns_ >
          static_cast<u64>(cfg_.peer_timeout_ms) * kMsNs) {
        drop_connection(now_ns, "connect timeout", /*count_error=*/true);
      }
      return;
    }
    if (st < 0) {
      drop_connection(now_ns, "connect failed", /*count_error=*/true);
      return;
    }
    establish(fd_, now_ns);
  }

  // Injected whole-connection failures, checked once per connected pump.
  if (fd_ >= 0) {
    if (fire(FaultSite::kNetConnReset)) {
      stats_.injected_resets++;
      close_with_reset(fd_);
      fd_ = -1;
      drop_connection(now_ns, "injected reset", /*count_error=*/true);
      return;
    }
    if (fire(FaultSite::kNetPartition)) {
      enter_partition(now_ns);
      return;
    }
  }

  // Drain the socket.
  u8 chunk[kRecvChunk];
  for (;;) {
    const ssize_t r = sock_recv(fd_, chunk, sizeof(chunk));
    if (r == kWouldBlock) break;
    if (r == kErr || r == 0) {
      drop_connection(now_ns, r == 0 ? "peer eof" : "recv error",
                      /*count_error=*/r != 0);
      return;
    }
    stats_.bytes_received += static_cast<u64>(r);
    bump(c_bytes_received_, static_cast<u64>(r));
    last_rx_ns_ = now_ns;
    decoder_.feed({chunk, static_cast<usize>(r)});
    if (static_cast<usize>(r) < sizeof(chunk)) break;
  }
  while (auto f = decoder_.next()) {
    handle_frame(*f, now_ns);
    if (fd_ < 0) return;  // frame handling dropped the connection
  }
  if (decoder_.broken()) {
    // Torn or corrupted stream — no resynchronization possible; the
    // session-resume cursor recovers everything on reconnect.
    drop_connection(now_ns, "broken stream", /*count_error=*/true);
    return;
  }

  // Peer-liveness check: no bytes for peer_timeout_ms → declare it down.
  if (now_ns - last_rx_ns_ >
      static_cast<u64>(cfg_.peer_timeout_ms) * kMsNs) {
    stats_.heartbeat_timeouts++;
    bump(c_timeouts_);
    drop_connection(now_ns, "peer timeout", /*count_error=*/false);
    return;
  }

  // Heartbeat (liveness + cumulative ack of what we accepted).
  if (hello_received_ &&
      now_ns - last_hb_tx_ns_ >=
          static_cast<u64>(cfg_.heartbeat_ms) * kMsNs) {
    append_cursor(outbox_, NetMsg::kHeartbeat, recv_cursor_);
    last_hb_tx_ns_ = now_ns;
  }

  queue_entries(now_ns);
  flush(now_ns);
}

void PeerLink::shutdown(u64 now_ns) {
  if (fatal_ || fd_ < 0) {
    if (fd_ >= 0) {
      xclose(fd_);
      fd_ = -1;
    }
    return;
  }
  // Suppress chaos during the drain: shutdown is about delivering what is
  // owed, and the drill's equality check depends on the backlog landing.
  FaultInjector* saved = fault_;
  fault_ = nullptr;
  const u64 deadline =
      now_ns + static_cast<u64>(cfg_.shutdown_linger_ms) * kMsNs;
  u64 t = now_ns;
  while (t < deadline) {
    pump(t);
    if (fd_ < 0 || gave_up_) break;
    const bool drained = outbox_.empty() && send_pos_ >= send_next_ &&
                         peer_acked_ >= send_next_;
    if (drained) break;
    ::usleep(1000);
    t += kMsNs;
  }
  if (fd_ >= 0) {
    outbox_.clear();
    std::vector<u8> bye;
    append_cursor(bye, NetMsg::kBye, recv_cursor_);
    usize sent = 0;
    while (sent < bye.size()) {
      const ssize_t r = sock_send(fd_, bye.data() + sent, bye.size() - sent);
      if (r == kWouldBlock) {
        ::usleep(1000);
        continue;
      }
      if (r == kErr) break;
      sent += static_cast<usize>(r);
      stats_.bytes_sent += static_cast<u64>(r);
    }
    xclose(fd_);
    fd_ = -1;
  }
  fault_ = saved;
}

LinkStats PeerLink::stats() const {
  LinkStats s = stats_;
  s.send_next = send_next_;
  s.peer_acked = peer_acked_;
  s.recv_cursor = recv_cursor_;
  s.connected = fd_ >= 0 && hello_received_;
  s.partitioned = partitioned_until_ns_ != 0;
  s.gave_up = gave_up_;
  return s;
}

}  // namespace bigmap::netfleet
