// Two-coordinator federation harness: runs a pair of process-fleet
// coordinators in forked child processes, joined by a PeerLink over
// loopback TCP, and merges their results.
//
// This is how the net-chaos drill builds a "two hosts" topology on one
// machine: each half is a full run_process_fleet (its own shm segment,
// workers, persistence, chaos schedule), the only shared state is the
// socket. The parent binds the listener before forking so the connector
// half knows the port with no handshake file; each child reports its
// result over a pipe as plain key-value text, and the parent computes the
// federation union — found bugs, stack hashes, exec totals — which the
// drill compares against a single-fleet baseline.
#pragma once

#include <string>
#include <vector>

#include "fuzzer/procfleet/coordinator.h"
#include "target/program.h"

namespace bigmap::netfleet {

// One half's reported outcome (parsed from its pipe).
struct HalfReport {
  bool ok = false;
  std::string error;
  std::vector<u32> bug_ids;
  std::vector<u64> stack_hashes;
  u64 total_execs = 0;
  u64 total_interesting = 0;
  u64 total_crashes = 0;
  bool all_completed = false;
  LinkStats net;
};

struct FederatedResult {
  bool ok = false;        // both halves ran and reported
  std::string error;
  HalfReport a;           // listener half
  HalfReport b;           // connector half

  // Federation union / totals (the drill's comparison keys).
  std::vector<u32> found_bug_ids;
  std::vector<u64> found_stack_hashes;
  u64 total_execs = 0;
  u64 total_interesting = 0;
  u64 total_crashes = 0;
  bool all_completed = false;
};

// Runs `a` (listener) and `b` (connector) as forked coordinator processes
// federated over loopback. net.enabled / roles / host / port / listen_fd
// are filled in here; everything else in the two configs is the caller's.
// Blocks until both halves exit.
FederatedResult run_federated_pair(const Program& program,
                                   const std::vector<Input>& seeds,
                                   procfleet::ProcFleetConfig a,
                                   procfleet::ProcFleetConfig b);

// Serialization used across the child pipe (exposed for tests).
std::string encode_half_report(const procfleet::ProcFleetResult& r,
                               bool ok, const std::string& error);
bool decode_half_report(const std::string& text, HalfReport* out);

}  // namespace bigmap::netfleet
