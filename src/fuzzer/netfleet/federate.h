// Two-coordinator federation harness: runs a pair of process-fleet
// coordinators in forked child processes, joined by a PeerLink over
// loopback TCP, and merges their results.
//
// This is how the net-chaos drill builds a "two hosts" topology on one
// machine: each half is a full run_process_fleet (its own shm segment,
// workers, persistence, chaos schedule), the only shared state is the
// socket. The parent binds the listener before forking so the connector
// half knows the port with no handshake file; each child reports its
// result over a pipe as plain key-value text, and the parent computes the
// federation union — found bugs, stack hashes, exec totals — which the
// drill compares against a single-fleet baseline.
#pragma once

#include <string>
#include <vector>

#include "fuzzer/procfleet/coordinator.h"
#include "target/program.h"

namespace bigmap::netfleet {

// One node's reported outcome (parsed from its pipe). For a star hub,
// `net` is the sum over its spoke links and `oracle` the aggregate
// novelty-oracle accounting (zeroed when the oracle was off).
struct HalfReport {
  bool ok = false;
  std::string error;
  std::vector<u32> bug_ids;
  std::vector<u64> stack_hashes;
  u64 total_execs = 0;
  u64 total_interesting = 0;
  u64 total_crashes = 0;
  bool all_completed = false;
  LinkStats net;
  corpus::OracleStats oracle;
  // Self-healing federation accounting (zeroed unless the node ran a
  // FailoverMesh; its nested net/oracle fields stay zeroed here — the two
  // members above carry them).
  FailoverStats failover;
};

struct FederatedResult {
  bool ok = false;        // both halves ran and reported
  std::string error;
  HalfReport a;           // listener half
  HalfReport b;           // connector half

  // Federation union / totals (the drill's comparison keys).
  std::vector<u32> found_bug_ids;
  std::vector<u64> found_stack_hashes;
  u64 total_execs = 0;
  u64 total_interesting = 0;
  u64 total_crashes = 0;
  bool all_completed = false;
};

// Runs `a` (listener) and `b` (connector) as forked coordinator processes
// federated over loopback. net.enabled / roles / host / port / listen_fd
// are filled in here; everything else in the two configs is the caller's.
// Blocks until both halves exit.
FederatedResult run_federated_pair(const Program& program,
                                   const std::vector<Input>& seeds,
                                   procfleet::ProcFleetConfig a,
                                   procfleet::ProcFleetConfig b);

// N-node star federation: nodes[0] is the hub, the rest are spokes.
struct StarResult {
  bool ok = false;            // every node ran and reported
  std::string error;
  std::vector<HalfReport> nodes;  // [0] = hub, then spokes in order

  // Federation union / totals across every node.
  std::vector<u32> found_bug_ids;
  std::vector<u64> found_stack_hashes;
  u64 total_execs = 0;
  u64 total_interesting = 0;
  u64 total_crashes = 0;
  bool all_completed = false;
};

// Runs nodes[0] as the star hub (one pre-bound listener link per spoke,
// via mesh_links) and nodes[1..] as connector spokes, all forked
// coordinator processes on loopback. The hub's `net` field serves as the
// template for its per-spoke links (liveness/backoff tuning); roles,
// ports, and listener fds are filled in here. Blocks until every node
// exits. Requires at least two nodes.
StarResult run_federated_star(const Program& program,
                              const std::vector<Input>& seeds,
                              std::vector<procfleet::ProcFleetConfig> nodes);

// Chaos control for the self-healing federation drill: which rank to
// SIGKILL (whole process group: coordinator + its workers), when, and
// whether/how it comes back.
struct FailoverDrillOpts {
  static constexpr u32 kNoKill = 0xFFFFFFFFu;

  u32 kill_rank = kNoKill;
  u32 kill_after_ms = 0;

  enum class Resurrect {
    kNone,    // stays dead; survivors elect and finish without it
    kRejoin,  // restarts (resume + probe) and rejoins the new epoch
    kStale,   // restarts with stale_fatal: must observe the newer epoch
              // and latch fenced (the split-brain rejection proof)
  };
  Resurrect resurrect = Resurrect::kNone;
  u32 resurrect_after_ms = 0;  // measured from the kill
};

struct FailoverStarResult {
  bool ok = false;  // every (surviving or resurrected) node reported
  std::string error;
  std::vector<HalfReport> nodes;  // by rank; a never-resurrected killed
                                  // rank reports ok=false, error "killed"

  // Federation union / totals across every reporting node.
  std::vector<u32> found_bug_ids;
  std::vector<u64> found_stack_hashes;
  u64 total_execs = 0;
  u64 total_interesting = 0;
  u64 total_crashes = 0;
  bool all_completed = false;
};

// N-rank self-healing federation: every node runs a FailoverMesh; rank 0
// leads epoch 1 initially. The parent pre-binds the full listener matrix
// L[h][s] (the socket rank s dials when rank h leads) so ANY rank can be
// promoted without coordination, forks each node into its own process
// group, and applies `opts` (SIGKILL mid-campaign, optional resurrection
// with resume + probe). Blocks until every live node exits.
FailoverStarResult run_failover_star(
    const Program& program, const std::vector<Input>& seeds,
    std::vector<procfleet::ProcFleetConfig> nodes,
    const FailoverDrillOpts& opts);

// Serialization used across the child pipe (exposed for tests).
std::string encode_half_report(const procfleet::ProcFleetResult& r,
                               bool ok, const std::string& error);
bool decode_half_report(const std::string& text, HalfReport* out);

}  // namespace bigmap::netfleet
