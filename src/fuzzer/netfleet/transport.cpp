#include "fuzzer/netfleet/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>

#include "util/syscall.h"

namespace bigmap::netfleet {
namespace {

bool fill_addr(const std::string& host, u16 port, sockaddr_in* addr,
               std::string* err) {
  ::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (err != nullptr) *err = "bad IPv4 address: " + host;
    return false;
  }
  return true;
}

}  // namespace

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int tcp_listen(const std::string& host, u16* port, std::string* err) {
  sockaddr_in addr;
  if (!fill_addr(host, *port, &addr, err)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::string("socket: ") + ::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (err != nullptr) *err = std::string("bind: ") + ::strerror(errno);
    xclose(fd);
    return -1;
  }
  if (::listen(fd, 8) != 0) {
    if (err != nullptr) *err = std::string("listen: ") + ::strerror(errno);
    xclose(fd);
    return -1;
  }
  if (*port == 0) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      if (err != nullptr) {
        *err = std::string("getsockname: ") + ::strerror(errno);
      }
      xclose(fd);
      return -1;
    }
    *port = ntohs(bound.sin_port);
  }
  if (!set_nonblocking(fd)) {
    if (err != nullptr) *err = "fcntl(O_NONBLOCK) failed";
    xclose(fd);
    return -1;
  }
  return fd;
}

int tcp_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      if (!set_nonblocking(fd)) {
        xclose(fd);
        return static_cast<int>(kErr);
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return static_cast<int>(kWouldBlock);
    }
    return static_cast<int>(kErr);
  }
}

int tcp_connect_start(const std::string& host, u16 port, std::string* err) {
  sockaddr_in addr;
  if (!fill_addr(host, port, &addr, err)) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::string("socket: ") + ::strerror(errno);
    return -1;
  }
  if (!set_nonblocking(fd)) {
    if (err != nullptr) *err = "fcntl(O_NONBLOCK) failed";
    xclose(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;  // connected immediately (loopback fast path)
    }
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) return fd;
    if (err != nullptr) *err = std::string("connect: ") + ::strerror(errno);
    xclose(fd);
    return -1;
  }
}

int tcp_connect_poll(int fd) {
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) return -1;
  if (soerr == 0) {
    // SO_ERROR == 0 covers both "connected" and "still connecting"; a
    // zero-byte send disambiguates without touching stream data.
    const ssize_t r = ::send(fd, "", 0, MSG_NOSIGNAL);
    if (r == 0) return 1;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOTCONN ||
        errno == EINTR) {
      return 0;
    }
    return -1;
  }
  if (soerr == EINPROGRESS || soerr == EALREADY || soerr == EINTR) return 0;
  return -1;
}

ssize_t sock_send(int fd, const u8* data, usize n) {
  for (;;) {
    const ssize_t r = ::send(fd, data, n, MSG_NOSIGNAL);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return kErr;
  }
}

ssize_t sock_recv(int fd, u8* data, usize n) {
  for (;;) {
    const ssize_t r = ::recv(fd, data, n, 0);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return kErr;
  }
}

void close_with_reset(int fd) {
  struct linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  xclose(fd);
}

}  // namespace bigmap::netfleet
