#include "fuzzer/netfleet/wire.h"

#include "persist/record.h"
#include "util/hash.h"

namespace bigmap::netfleet {

using bmsp::put_u32_le;
using bmsp::read_u32_le;

const char* net_msg_name(NetMsg m) noexcept {
  switch (m) {
    case NetMsg::kHello: return "hello";
    case NetMsg::kEntry: return "entry";
    case NetMsg::kHeartbeat: return "heartbeat";
    case NetMsg::kBye: return "bye";
    case NetMsg::kDelta: return "delta";
    case NetMsg::kResync: return "resync";
  }
  return "unknown";
}

void append_preamble(std::vector<u8>& out) {
  put_u32_le(out, persist::kMagic);
  put_u32_le(out, persist::kFormatVersion);
}

void append_frame(std::vector<u8>& out, NetMsg type,
                  std::span<const u8> payload) {
  const usize header_start = out.size();
  put_u32_le(out, static_cast<u32>(type));
  put_u32_le(out, static_cast<u32>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  // Same rule as persist::RecordWriter: CRC over type + len + payload.
  const u32 crc = bmsp::frame_crc(out.data() + header_start, payload.size());
  put_u32_le(out, crc);
}

void append_hello(std::vector<u8>& out, const HelloMsg& hello) {
  std::vector<u8> payload;
  persist::PayloadWriter w(payload);
  w.put_u32(hello.proto_version);
  w.put_u64(hello.fingerprint);
  w.put_u64(hello.node_id);
  w.put_u64(hello.recv_cursor);
  w.put_u64(hello.epoch);
  w.put_u32(hello.rank);
  w.put_u64(hello.log_base);
  append_frame(out, NetMsg::kHello, payload);
}

namespace {

void append_seq_blob(std::vector<u8>& out, NetMsg type, u64 seq,
                     std::span<const u8> data) {
  std::vector<u8> payload;
  persist::PayloadWriter w(payload);
  w.put_u64(seq);
  w.put_u32(static_cast<u32>(data.size()));
  w.put_bytes(data);
  append_frame(out, type, payload);
}

bool parse_seq_blob(std::span<const u8> payload, u64* seq, Input* data) {
  persist::PayloadReader r(payload);
  u64 s = 0;
  u32 n = 0;
  std::span<const u8> bytes;
  if (!r.get_u64(&s) || !r.get_u32(&n) || !r.get_bytes(n, &bytes) ||
      !r.done()) {
    return false;
  }
  *seq = s;
  data->assign(bytes.begin(), bytes.end());
  return true;
}

}  // namespace

void append_entry(std::vector<u8>& out, u64 seq, std::span<const u8> data) {
  append_seq_blob(out, NetMsg::kEntry, seq, data);
}

void append_delta(std::vector<u8>& out, u64 seq, std::span<const u8> data) {
  append_seq_blob(out, NetMsg::kDelta, seq, data);
}

void append_cursor(std::vector<u8>& out, NetMsg type, u64 cursor) {
  std::vector<u8> payload;
  persist::PayloadWriter w(payload);
  w.put_u64(cursor);
  append_frame(out, type, payload);
}

bool parse_hello(std::span<const u8> payload, HelloMsg* out) {
  persist::PayloadReader r(payload);
  HelloMsg h;
  if (!r.get_u32(&h.proto_version) || !r.get_u64(&h.fingerprint) ||
      !r.get_u64(&h.node_id) || !r.get_u64(&h.recv_cursor) ||
      !r.get_u64(&h.epoch) || !r.get_u32(&h.rank) ||
      !r.get_u64(&h.log_base) || !r.done()) {
    return false;
  }
  *out = h;
  return true;
}

bool parse_entry(std::span<const u8> payload, u64* seq, Input* data) {
  return parse_seq_blob(payload, seq, data);
}

bool parse_delta(std::span<const u8> payload, u64* seq, Input* data) {
  return parse_seq_blob(payload, seq, data);
}

bool parse_cursor(std::span<const u8> payload, u64* cursor) {
  persist::PayloadReader r(payload);
  u64 c = 0;
  if (!r.get_u64(&c) || !r.done()) return false;
  *cursor = c;
  return true;
}

void FrameDecoder::feed(std::span<const u8> bytes) {
  if (broken_) return;
  // Compact the consumed prefix before growing; keeps the buffer bounded
  // by one partial frame plus whatever arrived in this feed.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (broken_) return std::nullopt;
  if (!preamble_done_) {
    if (buf_.size() - pos_ < persist::kFileHeaderSize) return std::nullopt;
    const u8* p = buf_.data() + pos_;
    if (read_u32_le(p) != persist::kMagic) {
      fail("stream preamble: bad magic");
      return std::nullopt;
    }
    if (read_u32_le(p + 4) != persist::kFormatVersion) {
      fail("stream preamble: unsupported format version");
      return std::nullopt;
    }
    pos_ += persist::kFileHeaderSize;
    preamble_done_ = true;
  }

  const usize avail = buf_.size() - pos_;
  if (avail < persist::kRecordHeaderSize) return std::nullopt;
  const u8* p = buf_.data() + pos_;
  const u32 type = read_u32_le(p);
  const u32 len = read_u32_le(p + 4);
  if (len > max_payload_) {
    fail("frame length " + std::to_string(len) + " exceeds limit");
    return std::nullopt;
  }
  const usize total = persist::kRecordHeaderSize + len +
                      persist::kRecordTrailerSize;
  if (avail < total) return std::nullopt;
  const u32 stored_crc =
      read_u32_le(p + persist::kRecordHeaderSize + len);
  const u32 actual_crc = bmsp::frame_crc(p, len);
  if (stored_crc != actual_crc) {
    fail("frame crc mismatch");
    return std::nullopt;
  }
  Frame f;
  f.type = static_cast<NetMsg>(type);
  f.payload.assign(p + persist::kRecordHeaderSize,
                   p + persist::kRecordHeaderSize + len);
  pos_ += total;
  return f;
}

void FrameDecoder::reset() {
  buf_.clear();
  pos_ = 0;
  preamble_done_ = false;
  broken_ = false;
  error_.clear();
}

void FrameDecoder::fail(std::string why) {
  broken_ = true;
  error_ = std::move(why);
}

}  // namespace bigmap::netfleet
