#include "fuzzer/netfleet/failover.h"

#include <algorithm>
#include <utility>

#include "persist/federation.h"
#include "persist/io.h"
#include "util/hash.h"

namespace bigmap::netfleet {
namespace {

constexpr u64 kMsNs = 1'000'000ull;

// One record (header + payload + CRC) with no file header, for appending
// to an already initialized journal (same shape as the fleet journal's).
template <class Fill>
std::vector<u8> bare_record(persist::RecordType type, Fill&& fill) {
  std::vector<u8> buf;
  persist::PayloadWriter w(buf);
  w.put_u32(static_cast<u32>(type));
  w.put_u32(0);
  const usize payload_start = buf.size();
  fill(w);
  const u32 len = static_cast<u32>(buf.size() - payload_start);
  buf[4] = static_cast<u8>(len);
  buf[5] = static_cast<u8>(len >> 8);
  buf[6] = static_cast<u8>(len >> 16);
  buf[7] = static_cast<u8>(len >> 24);
  const u32 crc = crc32({buf.data(), buf.size()});
  w.put_u32(crc);
  return buf;
}

std::vector<u8> wal_header() {
  std::vector<u8> out;
  bmsp::put_u32_le(out, bmsp::kMagic);
  bmsp::put_u32_le(out, bmsp::kFormatVersion);
  return out;
}

void fold_oracle(corpus::OracleStats& into, const corpus::OracleStats& s) {
  into.checked += s.checked;
  into.accepted += s.accepted;
  into.rejected += s.rejected;
  into.deltas_exported += s.deltas_exported;
  into.cells_exported += s.cells_exported;
  into.deltas_applied += s.deltas_applied;
  into.cells_applied += s.cells_applied;
}

}  // namespace

FailoverMesh::FailoverMesh(SyncEndpoint* inner, u32 gateway_instance,
                           FailoverNodeConfig cfg, OracleFactory factory,
                           FaultInjector* fault,
                           telemetry::MetricRegistry* reg)
    : inner_(inner),
      gateway_(gateway_instance),
      cfg_(std::move(cfg)),
      factory_(std::move(factory)),
      fault_(fault),
      reg_(reg),
      epoch_(std::max<u64>(cfg_.initial_epoch, 1)),
      leader_(cfg_.initial_leader) {
  if (reg_ != nullptr) {
    c_elections_ = &reg_->counter("failover.elections");
    c_promotions_ = &reg_->counter("failover.promotions");
    c_rehomes_ = &reg_->counter("failover.rehomes");
    c_rejoins_ = &reg_->counter("failover.rejoins");
    c_fenced_ = &reg_->counter("failover.fenced");
    c_deltas_shipped_ = &reg_->counter("failover.deltas_shipped");
    c_deltas_applied_ = &reg_->counter("failover.deltas_applied");
    c_dup_suppressed_ = &reg_->counter("failover.dup_suppressed");
    c_handoff_ = &reg_->counter("failover.handoff_reoffered");
  }
  my_oracle_ = make_model();
  load_wal();
}

FailoverMesh::~FailoverMesh() = default;

u32 FailoverMesh::num_instances() const noexcept {
  return inner_->num_instances();
}

bool FailoverMesh::publish(u32 instance, Input input) {
  return inner_->publish(instance, std::move(input));
}

std::vector<Input> FailoverMesh::fetch_new(u32 instance) {
  return inner_->fetch_new(instance);
}

void FailoverMesh::reset_cursor(u32 instance) {
  inner_->reset_cursor(instance);
}

u64 FailoverMesh::total_published() const { return inner_->total_published(); }

SyncHubStats FailoverMesh::stats() const { return inner_->stats(); }

std::unique_ptr<corpus::NoveltyOracle> FailoverMesh::make_model() const {
  return factory_ ? factory_() : nullptr;
}

// ---- Journal -------------------------------------------------------------

void FailoverMesh::load_wal() {
  if (cfg_.wal_path.empty()) return;
  const persist::FaultCtx fault{};  // the federation WAL is not a chaos site
  std::vector<u8> bytes;
  std::string err;
  if (persist::read_file(cfg_.wal_path, &bytes, fault, &err)) {
    // Resume: the last journaled transition is this node's epoch reality.
    const persist::ParsedFile parsed = persist::parse_records(bytes);
    for (const persist::RecordView& r : parsed.records) {
      if (r.type != persist::RecordType::kFederationEpoch) continue;
      persist::FederationEpochRecord rec;
      if (persist::parse_federation_epoch(r.payload, &rec)) {
        epoch_ = std::max(epoch_, rec.epoch);
        leader_ = rec.leader;
      }
    }
    wal_ready_ = true;
    return;
  }
  wal_ready_ =
      persist::write_file_atomic(cfg_.wal_path, wal_header(), fault, &err);
}

void FailoverMesh::journal_epoch(u8 reason) {
  if (!wal_ready_) return;
  persist::FederationEpochRecord rec;
  rec.epoch = epoch_;
  rec.leader = leader_;
  rec.rank = cfg_.rank;
  rec.reason = reason;
  const std::vector<u8> bytes =
      bare_record(persist::RecordType::kFederationEpoch,
                  [&](persist::PayloadWriter& w) {
                    persist::put_federation_epoch(w, rec);
                  });
  std::string err;
  (void)persist::append_file(cfg_.wal_path, bytes, persist::FaultCtx{}, &err);
}

void FailoverMesh::journal_delta(const Input& blob) {
  if (!wal_ready_) return;
  const std::vector<u8> bytes = bare_record(
      persist::RecordType::kVirginDelta,
      [&](persist::PayloadWriter& w) { w.put_bytes(blob); });
  std::string err;
  (void)persist::append_file(cfg_.wal_path, bytes, persist::FaultCtx{}, &err);
}

// ---- Role transitions ----------------------------------------------------

NetPeerConfig FailoverMesh::link_config(bool listener, u32 remote_rank) const {
  NetPeerConfig c = cfg_.link;
  c.enabled = true;
  c.epoch = epoch_;
  c.rank = cfg_.rank;
  if (listener) {
    c.listener = true;
    c.listen_fd = remote_rank < cfg_.listen_fds.size()
                      ? cfg_.listen_fds[remote_rank]
                      : -1;
    c.port = 0;
  } else {
    c.listener = false;
    c.listen_fd = -1;
    c.port = remote_rank < cfg_.dial_ports.size()
                 ? cfg_.dial_ports[remote_rank]
                 : 0;
  }
  return c;
}

// Folds the stats of every current link/model into the carried totals and
// destroys the links — re-homing must not erase the old epoch's accounting.
void FailoverMesh::capture_handoff(Peer& p) {
  for (OutRecord& rec : p.link->unacked_records()) {
    // Entries the dead leader never acked get re-offered in the new
    // epoch. Deltas are NOT carried: the full-state snapshot shipped at
    // re-home supersedes every lost incremental.
    if (rec.kind == OutRecord::kEntry) {
      fstats_.handoff_reoffered++;
      bump(c_handoff_);
      pending_broadcast_.push_back(std::move(rec.data));
    }
  }
}

void FailoverMesh::promote(u64 now_ns, bool resumed) {
  role_ = Role::kLeader;
  leader_ = cfg_.rank;
  fstats_.promotions++;
  bump(c_promotions_);
  for (u32 r = 0; r < cfg_.num_nodes; ++r) {
    if (r == cfg_.rank) continue;
    Peer p;
    p.rank = r;
    p.link = std::make_unique<PeerLink>(link_config(/*listener=*/true, r),
                                        fault_, gateway_, reg_);
    p.oracle = make_model();
    peers_.push_back(std::move(p));
  }
  journal_epoch(static_cast<u8>(resumed ? persist::EpochReason::kResumed
                                        : persist::EpochReason::kElected));
  (void)now_ns;
}

void FailoverMesh::rehome(u32 new_leader, u64 now_ns, bool rejoin) {
  role_ = Role::kFollower;
  leader_ = new_leader;
  fstats_.rehomes++;
  bump(c_rehomes_);
  if (rejoin) {
    fstats_.rejoins++;
    bump(c_rejoins_);
  }
  Peer p;
  p.rank = new_leader;
  p.link = std::make_unique<PeerLink>(
      link_config(/*listener=*/false, new_leader), fault_, gateway_, reg_);
  peers_.push_back(std::move(p));
  last_leader_seen_ns_ = now_ns;
  last_delta_ns_ = now_ns;
  journal_epoch(static_cast<u8>(rejoin ? persist::EpochReason::kRejoin
                                       : persist::EpochReason::kElected));
  // Seed the successor's model of us with everything we provably know,
  // without it executing anything: full-state delta first, then the
  // entries the dead leader never acked.
  ship_deltas(peers_[0], /*full=*/true);
  for (Input& in : pending_broadcast_) {
    (void)peers_[0].link->offer(std::move(in));
  }
  pending_broadcast_.clear();
}

void FailoverMesh::retire_links() {
  for (Peer& p : peers_) {
    net_carried_ = sum_link_stats(net_carried_, p.link->stats());
    if (p.oracle != nullptr) fold_oracle(oracle_carried_, p.oracle->stats());
  }
  peers_.clear();
}

// A spoke's leader link went silent past the election timeout (or gave
// up). Successor selection is a pure function of the dead leader's rank,
// so every live spoke converges on the same new epoch without a single
// coordination message. A dead successor just means the next election
// fires one timeout later, walking the ring to the lowest live rank.
void FailoverMesh::elect(u64 now_ns) {
  fstats_.elections++;
  bump(c_elections_);
  for (Peer& p : peers_) capture_handoff(p);
  retire_links();
  const u32 successor = (leader_ + 1) % cfg_.num_nodes;
  epoch_ += 1;
  if (successor == cfg_.rank) {
    promote(now_ns, /*resumed=*/false);
  } else {
    rehome(successor, now_ns, /*rejoin=*/false);
  }
}

void FailoverMesh::fence(u64 now_ns) {
  role_ = Role::kFenced;
  fstats_.fenced = 1;
  bump(c_fenced_);
  retire_links();
  journal_epoch(static_cast<u8>(persist::EpochReason::kFenced));
  (void)now_ns;
}

// A peer hello carried an epoch ahead of ours: the federation moved on
// without us (we are the resurrected stale node, or we slept through an
// election). Policy decides: fence out forever, or adopt the new epoch
// and re-home to its leader as a spoke.
void FailoverMesh::react_to_newer_epoch(u64 now_ns) {
  u64 observed = 0;
  u32 observed_rank = 0;
  for (const Peer& p : peers_) {
    if (p.link->observed_epoch() > observed) {
      observed = p.link->observed_epoch();
      observed_rank = p.link->observed_rank();
    }
  }
  if (observed <= epoch_) return;
  if (cfg_.stale_fatal) {
    fence(now_ns);
    return;
  }
  for (Peer& p : peers_) capture_handoff(p);
  retire_links();
  epoch_ = observed;
  if (observed_rank == cfg_.rank) {
    // Degenerate (a peer claims we lead an epoch we never saw); take the
    // leadership it expects rather than deadlocking.
    promote(now_ns, /*resumed=*/true);
    return;
  }
  rehome(observed_rank, now_ns, /*rejoin=*/true);
}

void FailoverMesh::start_probe(u64 now_ns) {
  role_ = Role::kProbing;
  const u32 timeout_ms = cfg_.probe_timeout_ms != 0
                             ? cfg_.probe_timeout_ms
                             : 2 * cfg_.election_timeout_ms;
  probe_deadline_ns_ = now_ns + static_cast<u64>(timeout_ms) * kMsNs;
  // Dial every other rank's listener-for-us. Only a rank currently
  // LEADING accepts on that socket, and its hello carries its epoch: a
  // higher one triggers the stale reaction, silence means the federation
  // never elected past us.
  for (u32 r = 0; r < cfg_.num_nodes; ++r) {
    if (r == cfg_.rank) continue;
    Peer p;
    p.rank = r;
    p.link = std::make_unique<PeerLink>(link_config(/*listener=*/false, r),
                                        fault_, gateway_, reg_);
    peers_.push_back(std::move(p));
  }
}

// ---- Steady-state pumping ------------------------------------------------

void FailoverMesh::publish_once(Input in) {
  if (!seen_hashes_.insert(fnv1a64(in)).second) {
    fstats_.dup_suppressed++;
    bump(c_dup_suppressed_);
    return;
  }
  inner_->publish(gateway_, std::move(in));
}

void FailoverMesh::export_gated(Peer& p, const Input& in) {
  // The oracle verdict also advances the remote model: a shipped entry is
  // coverage the peer now has, a rejected one is coverage it already had.
  if (p.oracle != nullptr && !p.oracle->admit(in)) return;
  (void)p.link->offer(in);
}

void FailoverMesh::ship_deltas(Peer& p, bool full) {
  if (my_oracle_ == nullptr) return;
  const std::vector<corpus::OracleDelta> deltas =
      full ? my_oracle_->export_full() : my_oracle_->export_delta();
  for (corpus::OracleDelta d : deltas) {
    d.epoch = epoch_;
    Input blob = corpus::encode_oracle_delta(d);
    journal_delta(blob);
    if (p.link->offer_delta(std::move(blob))) {
      fstats_.deltas_shipped++;
      bump(c_deltas_shipped_);
    }
  }
}

void FailoverMesh::pump_leader(u64 now_ns) {
  // Export: local finds plus anything carried across the epoch boundary,
  // each gated by the per-peer model.
  for (Input& in : inner_->fetch_new(gateway_)) {
    seen_hashes_.insert(fnv1a64(in));
    for (Peer& p : peers_) export_gated(p, in);
  }
  for (Input& in : pending_broadcast_) {
    for (Peer& p : peers_) export_gated(p, in);
  }
  pending_broadcast_.clear();
  for (Peer& p : peers_) p.link->pump(now_ns);
  for (usize i = 0; i < peers_.size(); ++i) {
    for (Input& in : peers_[i].link->take_received()) {
      // The spoke's delta stream keeps its model fresh; unlike MeshHub,
      // the hub does NOT execute received entries against the source
      // model — that is the executor load delta sync removes.
      for (usize j = 0; j < peers_.size(); ++j) {
        if (j != i) export_gated(peers_[j], in);
      }
      publish_once(std::move(in));
    }
    for (Input& blob : peers_[i].link->take_received_deltas()) {
      corpus::OracleDelta d;
      if (!corpus::decode_oracle_delta(blob, &d)) continue;
      if (peers_[i].oracle != nullptr && peers_[i].oracle->apply_delta(d)) {
        fstats_.deltas_applied++;
        bump(c_deltas_applied_);
        journal_delta(blob);
      }
    }
  }
}

void FailoverMesh::pump_follower(u64 now_ns) {
  Peer& p = peers_[0];
  for (Input& in : inner_->fetch_new(gateway_)) {
    seen_hashes_.insert(fnv1a64(in));
    // Gate exports on our own federation model: what the model already
    // knows, the federation has already seen through this node.
    if (my_oracle_ == nullptr || my_oracle_->admit(in)) {
      (void)p.link->offer(std::move(in));
    }
  }
  if (my_oracle_ != nullptr && cfg_.delta_interval_ms != 0 &&
      now_ns - last_delta_ns_ >=
          static_cast<u64>(cfg_.delta_interval_ms) * kMsNs) {
    last_delta_ns_ = now_ns;
    ship_deltas(p, /*full=*/false);
  }
  p.link->pump(now_ns);
  if (p.link->connected()) last_leader_seen_ns_ = now_ns;
  for (Input& in : p.link->take_received()) {
    // Fold receipts into our model (they are now coverage we have), then
    // publish exactly once across all epochs.
    if (my_oracle_ != nullptr) (void)my_oracle_->admit(in);
    publish_once(std::move(in));
  }
  for (Input& blob : p.link->take_received_deltas()) {
    // Not part of the leader->spoke protocol today, but applying is
    // idempotent and strictly informative.
    corpus::OracleDelta d;
    if (my_oracle_ != nullptr && corpus::decode_oracle_delta(blob, &d)) {
      (void)my_oracle_->apply_delta(d);
    }
  }
  const bool gave_up = p.link->stats().gave_up;
  if (gave_up || now_ns - last_leader_seen_ns_ >
                     static_cast<u64>(cfg_.election_timeout_ms) * kMsNs) {
    elect(now_ns);
  }
}

void FailoverMesh::pump_probe(u64 now_ns) {
  for (Peer& p : peers_) p.link->pump(now_ns);
  // A probe that ESTABLISHES at our own epoch means that rank still leads
  // the epoch we remember — adopt it as leader and re-home for real (the
  // probe link is at the right epoch but has not shipped our state).
  for (Peer& p : peers_) {
    if (p.link->connected()) {
      const u32 r = p.rank;
      retire_links();
      rehome(r, now_ns, /*rejoin=*/false);
      fstats_.rehomes--;  // a probe resolution, not a new failover
      return;
    }
  }
  if (now_ns >= probe_deadline_ns_) {
    // Silence everywhere: no newer epoch exists. Resume the journaled
    // role at the journaled epoch.
    retire_links();
    if (leader_ == cfg_.rank) {
      promote(now_ns, /*resumed=*/true);
    } else {
      rehome(leader_, now_ns, /*rejoin=*/false);
      journal_epoch(static_cast<u8>(persist::EpochReason::kResumed));
    }
  }
}

void FailoverMesh::pump(u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (role_ == Role::kFenced) return;
  if (!started_) {
    started_ = true;
    journal_epoch(static_cast<u8>(persist::EpochReason::kInit));
    if (cfg_.resume_probe) {
      start_probe(now_ns);
    } else if (leader_ == cfg_.rank) {
      promote(now_ns, /*resumed=*/false);
      fstats_.promotions--;  // founding leadership, not a failover win
    } else {
      rehome(leader_, now_ns, /*rejoin=*/false);
      fstats_.rehomes--;  // founding membership, not a failover
    }
  }
  react_to_newer_epoch(now_ns);
  if (role_ == Role::kFenced) return;
  switch (role_) {
    case Role::kLeader: pump_leader(now_ns); break;
    case Role::kFollower: pump_follower(now_ns); break;
    case Role::kProbing: pump_probe(now_ns); break;
    case Role::kFenced: break;
  }
}

void FailoverMesh::shutdown(u64 now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || role_ == Role::kFenced || role_ == Role::kProbing) {
    retire_links();
    return;
  }
  // One last export sweep so finds from the final sync interval still
  // reach the federation before the goodbyes.
  if (role_ == Role::kLeader) {
    for (Input& in : inner_->fetch_new(gateway_)) {
      seen_hashes_.insert(fnv1a64(in));
      for (Peer& p : peers_) export_gated(p, in);
    }
  } else if (!peers_.empty()) {
    for (Input& in : inner_->fetch_new(gateway_)) {
      seen_hashes_.insert(fnv1a64(in));
      if (my_oracle_ == nullptr || my_oracle_->admit(in)) {
        (void)peers_[0].link->offer(std::move(in));
      }
    }
    ship_deltas(peers_[0], /*full=*/false);
  }
  for (Peer& p : peers_) p.link->shutdown(now_ns);
  // Entries that arrived during the drain still reach local workers.
  for (Peer& p : peers_) {
    for (Input& in : p.link->take_received()) {
      if (role_ == Role::kFollower && my_oracle_ != nullptr) {
        (void)my_oracle_->admit(in);
      }
      publish_once(std::move(in));
    }
  }
}

FailoverStats FailoverMesh::failover_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FailoverStats s = fstats_;
  s.epoch = epoch_;
  s.role = static_cast<u32>(role_);
  s.leader_rank = leader_;
  s.net = net_carried_;
  s.oracle = oracle_carried_;
  for (const Peer& p : peers_) {
    s.net = sum_link_stats(s.net, p.link->stats());
    if (p.oracle != nullptr) fold_oracle(s.oracle, p.oracle->stats());
  }
  if (my_oracle_ != nullptr) fold_oracle(s.oracle, my_oracle_->stats());
  return s;
}

}  // namespace bigmap::netfleet
