// MeshHub: a SyncEndpoint gateway that federates a local hub with N
// remote peers — the hub role of a hub-and-spoke (star) topology.
//
// Generalizes NetHub (nethub.h) from one PeerLink to many, all sharing
// the single gateway instance of the wrapped inner hub:
//
//   local find   -> inner.publish(worker) -> pump: inner.fetch_new(gateway)
//                -> every link's offer()  -> wire -> each spoke
//   spoke find   -> link[i].take_received() -> inner.publish(gateway)
//                                           -> re-offered on links j != i
//
// The spoke-to-spoke relay is the hub's whole job: spokes only know the
// hub, yet every spoke still receives every other spoke's finds, one hop
// later. fetch_new never returns an instance's own publishes, so relayed
// imports are never echoed back out through the normal export path — the
// relay in the import loop is the only forwarding, and it explicitly
// skips the source link.
//
// Each link may carry a corpus::NoveltyOracle as its "remote model": the
// oracle's virgin maps track the coverage that peer has provably seen
// through this hub (everything shipped to it, everything accepted from
// it). With an oracle attached, an entry is shipped on a link only when
// it would flip virgin bits in that peer's model — a strictly deeper gate
// than the link's built-in content-hash novelty filter, and the reason a
// saturated federation's wire goes quiet instead of re-shipping coverage
// duplicates. Without an oracle the link behaves exactly as in NetHub.
//
// Thread-safety: like NetHub — the inner hub is thread-safe, the links
// and oracles are single-threaded, so offer/take/pump are serialized
// behind one mutex and endpoint calls pass straight through.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "corpus/novelty.h"
#include "fuzzer/netfleet/link.h"
#include "fuzzer/sync.h"

namespace bigmap::netfleet {

// Sums per-link accounting into one LinkStats (booleans OR-ed; the cursor
// fields are summed too and only meaningful per-link).
LinkStats sum_link_stats(const LinkStats& a, const LinkStats& b);

class MeshHub final : public SyncEndpoint {
 public:
  // `inner` must outlive the MeshHub and must have been created with one
  // more instance than the fleet's workers; the extra (highest) id is the
  // gateway instance shared by every link.
  MeshHub(SyncEndpoint* inner, u32 gateway_instance);

  // Attaches one peer session (owned). `oracle` may be null (content-hash
  // novelty only). Attach every link before the first pump().
  void add_link(std::unique_ptr<PeerLink> link,
                std::unique_ptr<corpus::NoveltyOracle> oracle);

  u32 num_instances() const noexcept override;
  bool publish(u32 instance, Input input) override;
  std::vector<Input> fetch_new(u32 instance) override;
  void reset_cursor(u32 instance) override;
  u64 total_published() const override;
  SyncHubStats stats() const override;

  // Moves novelty between the inner hub and every wire, relaying imports
  // across spokes; call from the coordinator loop every few milliseconds.
  void pump(u64 now_ns);

  // Final export sweep, then drains and closes every link.
  void shutdown(u64 now_ns);

  usize link_count() const;
  LinkStats link_stats(usize i) const;
  // Zeroed when link `i` has no oracle.
  corpus::OracleStats oracle_stats(usize i) const;
  LinkStats aggregate_link_stats() const;
  corpus::OracleStats aggregate_oracle_stats() const;

 private:
  struct Peer {
    std::unique_ptr<PeerLink> link;
    std::unique_ptr<corpus::NoveltyOracle> oracle;
  };

  // Offers `in` on one link, gated by its oracle when present.
  void export_to(Peer& peer, const Input& in);

  SyncEndpoint* inner_;
  const u32 gateway_;
  std::vector<Peer> peers_;
  mutable std::mutex mu_;
};

}  // namespace bigmap::netfleet
