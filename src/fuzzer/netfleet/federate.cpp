#include "fuzzer/netfleet/federate.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <exception>
#include <set>
#include <sstream>
#include <thread>

#include "fuzzer/netfleet/transport.h"
#include "util/syscall.h"

namespace bigmap::netfleet {
namespace {

// Reads until EOF (the child closing its end of the pipe).
std::string read_all(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t r = xread(fd, buf, sizeof(buf));
    if (r <= 0) break;
    out.append(buf, static_cast<usize>(r));
  }
  return out;
}

// One forked coordinator half: runs the fleet, reports over `pipe_wr`,
// never returns.
[[noreturn]] void child_main(const Program& program,
                             const std::vector<Input>& seeds,
                             const procfleet::ProcFleetConfig& config,
                             int pipe_wr) {
  std::string report;
  try {
    const procfleet::ProcFleetResult r =
        run_process_fleet(program, seeds, config);
    report = encode_half_report(r, true, "");
  } catch (const std::exception& e) {
    report = encode_half_report(procfleet::ProcFleetResult{}, false,
                                e.what());
  } catch (...) {
    report = encode_half_report(procfleet::ProcFleetResult{}, false,
                                "unknown exception");
  }
  (void)write_full(pipe_wr, reinterpret_cast<const u8*>(report.data()),
                   report.size());
  xclose(pipe_wr);
  ::_exit(0);
}

}  // namespace

std::string encode_half_report(const procfleet::ProcFleetResult& r, bool ok,
                               const std::string& error) {
  std::ostringstream os;
  os << "ok " << (ok ? 1 : 0) << "\n";
  if (!error.empty()) os << "error " << error << "\n";
  os << "bug_ids";
  for (u32 b : r.found_bug_ids) os << ' ' << b;
  os << "\nstack_hashes";
  for (u64 h : r.found_stack_hashes) os << ' ' << h;
  os << "\ntotal_execs " << r.total_execs;
  os << "\ntotal_interesting " << r.total_interesting;
  os << "\ntotal_crashes " << r.total_crashes;
  os << "\nall_completed " << (r.all_completed() ? 1 : 0);
  const LinkStats& n = r.net;
  os << "\nnet_bytes_sent " << n.bytes_sent;
  os << "\nnet_bytes_received " << n.bytes_received;
  os << "\nnet_records_sent " << n.records_sent;
  os << "\nnet_records_received " << n.records_received;
  os << "\nnet_entries_offered " << n.entries_offered;
  os << "\nnet_novelty_filtered " << n.novelty_filtered;
  os << "\nnet_duplicates_dropped " << n.duplicates_dropped;
  os << "\nnet_out_of_order_dropped " << n.out_of_order_dropped;
  os << "\nnet_rewinds " << n.rewinds;
  os << "\nnet_connects " << n.connects;
  os << "\nnet_reconnects " << n.reconnects;
  os << "\nnet_heartbeat_timeouts " << n.heartbeat_timeouts;
  os << "\nnet_conn_errors " << n.conn_errors;
  os << "\nnet_injected_drops " << n.injected_drops;
  os << "\nnet_injected_delays " << n.injected_delays;
  os << "\nnet_injected_short_writes " << n.injected_short_writes;
  os << "\nnet_injected_resets " << n.injected_resets;
  os << "\nnet_injected_partitions " << n.injected_partitions;
  os << "\nnet_partition_ms " << n.partition_ms_total;
  os << "\nnet_log_evicted " << n.log_evicted;
  os << "\nnet_lost_to_eviction " << n.lost_to_eviction;
  os << "\nnet_deltas_sent " << n.deltas_sent;
  os << "\nnet_deltas_received " << n.deltas_received;
  os << "\nnet_resyncs_sent " << n.resyncs_sent;
  os << "\nnet_resync_skipped " << n.resync_skipped;
  os << "\nnet_stale_hellos_dropped " << n.stale_hellos_dropped;
  os << "\nnet_epoch_ahead_seen " << n.epoch_ahead_seen;
  os << "\noracle_checked " << r.oracle.checked;
  os << "\noracle_accepted " << r.oracle.accepted;
  os << "\noracle_rejected " << r.oracle.rejected;
  os << "\noracle_deltas_exported " << r.oracle.deltas_exported;
  os << "\noracle_cells_exported " << r.oracle.cells_exported;
  os << "\noracle_deltas_applied " << r.oracle.deltas_applied;
  os << "\noracle_cells_applied " << r.oracle.cells_applied;
  const FailoverStats& f = r.failover;
  os << "\nfo_epoch " << f.epoch;
  os << "\nfo_role " << f.role;
  os << "\nfo_leader " << f.leader_rank;
  os << "\nfo_elections " << f.elections;
  os << "\nfo_promotions " << f.promotions;
  os << "\nfo_rehomes " << f.rehomes;
  os << "\nfo_rejoins " << f.rejoins;
  os << "\nfo_fenced " << f.fenced;
  os << "\nfo_handoff_reoffered " << f.handoff_reoffered;
  os << "\nfo_dup_suppressed " << f.dup_suppressed;
  os << "\nfo_deltas_shipped " << f.deltas_shipped;
  os << "\nfo_deltas_applied " << f.deltas_applied;
  os << "\n";
  return os.str();
}

bool decode_half_report(const std::string& text, HalfReport* out) {
  HalfReport r;
  bool saw_ok = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "ok") {
      int v = 0;
      ls >> v;
      r.ok = v != 0;
      saw_ok = true;
    } else if (key == "error") {
      std::getline(ls, r.error);
      if (!r.error.empty() && r.error.front() == ' ') r.error.erase(0, 1);
    } else if (key == "bug_ids") {
      u32 v;
      while (ls >> v) r.bug_ids.push_back(v);
    } else if (key == "stack_hashes") {
      u64 v;
      while (ls >> v) r.stack_hashes.push_back(v);
    } else if (key == "total_execs") {
      ls >> r.total_execs;
    } else if (key == "total_interesting") {
      ls >> r.total_interesting;
    } else if (key == "total_crashes") {
      ls >> r.total_crashes;
    } else if (key == "all_completed") {
      int v = 0;
      ls >> v;
      r.all_completed = v != 0;
    } else if (key == "net_bytes_sent") {
      ls >> r.net.bytes_sent;
    } else if (key == "net_bytes_received") {
      ls >> r.net.bytes_received;
    } else if (key == "net_records_sent") {
      ls >> r.net.records_sent;
    } else if (key == "net_records_received") {
      ls >> r.net.records_received;
    } else if (key == "net_entries_offered") {
      ls >> r.net.entries_offered;
    } else if (key == "net_novelty_filtered") {
      ls >> r.net.novelty_filtered;
    } else if (key == "net_duplicates_dropped") {
      ls >> r.net.duplicates_dropped;
    } else if (key == "net_out_of_order_dropped") {
      ls >> r.net.out_of_order_dropped;
    } else if (key == "net_rewinds") {
      ls >> r.net.rewinds;
    } else if (key == "net_connects") {
      ls >> r.net.connects;
    } else if (key == "net_reconnects") {
      ls >> r.net.reconnects;
    } else if (key == "net_heartbeat_timeouts") {
      ls >> r.net.heartbeat_timeouts;
    } else if (key == "net_conn_errors") {
      ls >> r.net.conn_errors;
    } else if (key == "net_injected_drops") {
      ls >> r.net.injected_drops;
    } else if (key == "net_injected_delays") {
      ls >> r.net.injected_delays;
    } else if (key == "net_injected_short_writes") {
      ls >> r.net.injected_short_writes;
    } else if (key == "net_injected_resets") {
      ls >> r.net.injected_resets;
    } else if (key == "net_injected_partitions") {
      ls >> r.net.injected_partitions;
    } else if (key == "net_partition_ms") {
      ls >> r.net.partition_ms_total;
    } else if (key == "net_log_evicted") {
      ls >> r.net.log_evicted;
    } else if (key == "net_lost_to_eviction") {
      ls >> r.net.lost_to_eviction;
    } else if (key == "net_deltas_sent") {
      ls >> r.net.deltas_sent;
    } else if (key == "net_deltas_received") {
      ls >> r.net.deltas_received;
    } else if (key == "net_resyncs_sent") {
      ls >> r.net.resyncs_sent;
    } else if (key == "net_resync_skipped") {
      ls >> r.net.resync_skipped;
    } else if (key == "net_stale_hellos_dropped") {
      ls >> r.net.stale_hellos_dropped;
    } else if (key == "net_epoch_ahead_seen") {
      ls >> r.net.epoch_ahead_seen;
    } else if (key == "oracle_checked") {
      ls >> r.oracle.checked;
    } else if (key == "oracle_accepted") {
      ls >> r.oracle.accepted;
    } else if (key == "oracle_rejected") {
      ls >> r.oracle.rejected;
    } else if (key == "oracle_deltas_exported") {
      ls >> r.oracle.deltas_exported;
    } else if (key == "oracle_cells_exported") {
      ls >> r.oracle.cells_exported;
    } else if (key == "oracle_deltas_applied") {
      ls >> r.oracle.deltas_applied;
    } else if (key == "oracle_cells_applied") {
      ls >> r.oracle.cells_applied;
    } else if (key == "fo_epoch") {
      ls >> r.failover.epoch;
    } else if (key == "fo_role") {
      ls >> r.failover.role;
    } else if (key == "fo_leader") {
      ls >> r.failover.leader_rank;
    } else if (key == "fo_elections") {
      ls >> r.failover.elections;
    } else if (key == "fo_promotions") {
      ls >> r.failover.promotions;
    } else if (key == "fo_rehomes") {
      ls >> r.failover.rehomes;
    } else if (key == "fo_rejoins") {
      ls >> r.failover.rejoins;
    } else if (key == "fo_fenced") {
      ls >> r.failover.fenced;
    } else if (key == "fo_handoff_reoffered") {
      ls >> r.failover.handoff_reoffered;
    } else if (key == "fo_dup_suppressed") {
      ls >> r.failover.dup_suppressed;
    } else if (key == "fo_deltas_shipped") {
      ls >> r.failover.deltas_shipped;
    } else if (key == "fo_deltas_applied") {
      ls >> r.failover.deltas_applied;
    }
  }
  if (!saw_ok) return false;
  *out = r;
  return true;
}

FederatedResult run_federated_pair(const Program& program,
                                   const std::vector<Input>& seeds,
                                   procfleet::ProcFleetConfig a,
                                   procfleet::ProcFleetConfig b) {
  FederatedResult out;
  ignore_sigpipe();

  // Bind the listener in the parent: the connector half then knows the
  // port before either child exists, and the listening socket survives a
  // listener-coordinator that is still setting up.
  u16 port = 0;
  std::string err;
  const int listen_fd = tcp_listen("127.0.0.1", &port, &err);
  if (listen_fd < 0) {
    out.error = "federate: " + err;
    return out;
  }

  // Shared session identity: derive it from config the federation halves
  // genuinely have in common — seeds and worker counts legitimately differ
  // between halves, so the coordinator's per-fleet auto-fingerprint would
  // spuriously mismatch.
  if (a.net.session_fingerprint == 0 && b.net.session_fingerprint == 0) {
    u64 h = 0x66656465ull;
    for (u64 v :
         {a.base.max_execs, static_cast<u64>(a.base.scheme),
          static_cast<u64>(a.base.metric),
          static_cast<u64>(a.base.map.map_size)}) {
      h = (h ^ v) * 0x100000001b3ull;
    }
    a.net.session_fingerprint = h;
    b.net.session_fingerprint = h;
  }

  a.net.enabled = true;
  a.net.listener = true;
  a.net.listen_fd = listen_fd;
  a.net.port = port;
  b.net.enabled = true;
  b.net.listener = false;
  b.net.host = "127.0.0.1";
  b.net.port = port;

  int pipe_a[2] = {-1, -1};
  int pipe_b[2] = {-1, -1};
  if (::pipe(pipe_a) != 0 || ::pipe(pipe_b) != 0) {
    out.error = "federate: pipe failed";
    xclose(listen_fd);
    if (pipe_a[0] >= 0) {
      xclose(pipe_a[0]);
      xclose(pipe_a[1]);
    }
    return out;
  }

  const pid_t pid_a = ::fork();
  if (pid_a == 0) {
    xclose(pipe_a[0]);
    xclose(pipe_b[0]);
    xclose(pipe_b[1]);
    child_main(program, seeds, a, pipe_a[1]);
  }
  const pid_t pid_b = ::fork();
  if (pid_b == 0) {
    xclose(pipe_b[0]);
    xclose(pipe_a[0]);
    xclose(pipe_a[1]);
    xclose(listen_fd);  // only the listener half needs it
    child_main(program, seeds, b, pipe_b[1]);
  }
  xclose(pipe_a[1]);
  xclose(pipe_b[1]);
  xclose(listen_fd);
  if (pid_a < 0 || pid_b < 0) {
    out.error = "federate: fork failed";
    if (pid_a > 0) ::kill(pid_a, SIGKILL);
    if (pid_b > 0) ::kill(pid_b, SIGKILL);
  }

  const std::string text_a = read_all(pipe_a[0]);
  const std::string text_b = read_all(pipe_b[0]);
  xclose(pipe_a[0]);
  xclose(pipe_b[0]);

  int status = 0;
  if (pid_a > 0) (void)xwaitpid(pid_a, &status, 0);
  if (pid_b > 0) (void)xwaitpid(pid_b, &status, 0);
  if (!out.error.empty()) return out;

  if (!decode_half_report(text_a, &out.a)) {
    out.error = "federate: half A produced no report";
    return out;
  }
  if (!decode_half_report(text_b, &out.b)) {
    out.error = "federate: half B produced no report";
    return out;
  }
  if (!out.a.ok) {
    out.error = "federate: half A failed: " + out.a.error;
    return out;
  }
  if (!out.b.ok) {
    out.error = "federate: half B failed: " + out.b.error;
    return out;
  }

  std::set<u32> bugs(out.a.bug_ids.begin(), out.a.bug_ids.end());
  bugs.insert(out.b.bug_ids.begin(), out.b.bug_ids.end());
  out.found_bug_ids.assign(bugs.begin(), bugs.end());
  std::set<u64> hashes(out.a.stack_hashes.begin(), out.a.stack_hashes.end());
  hashes.insert(out.b.stack_hashes.begin(), out.b.stack_hashes.end());
  out.found_stack_hashes.assign(hashes.begin(), hashes.end());
  out.total_execs = out.a.total_execs + out.b.total_execs;
  out.total_interesting = out.a.total_interesting + out.b.total_interesting;
  out.total_crashes = out.a.total_crashes + out.b.total_crashes;
  out.all_completed = out.a.all_completed && out.b.all_completed;
  out.ok = true;
  return out;
}

StarResult run_federated_star(const Program& program,
                              const std::vector<Input>& seeds,
                              std::vector<procfleet::ProcFleetConfig> nodes) {
  StarResult out;
  if (nodes.size() < 2) {
    out.error = "federate: a star needs a hub and at least one spoke";
    return out;
  }
  ignore_sigpipe();
  const usize spokes = nodes.size() - 1;

  // Shared session identity across the whole star, derived (like the pair
  // runner) from config the nodes genuinely have in common — seeds and
  // worker counts legitimately differ per node.
  bool any_fp = false;
  for (const procfleet::ProcFleetConfig& n : nodes) {
    any_fp = any_fp || n.net.session_fingerprint != 0;
  }
  if (!any_fp) {
    u64 h = 0x73746172ull;  // "star"
    for (u64 v :
         {nodes[0].base.max_execs, static_cast<u64>(nodes[0].base.scheme),
          static_cast<u64>(nodes[0].base.metric),
          static_cast<u64>(nodes[0].base.map.map_size)}) {
      h = (h ^ v) * 0x100000001b3ull;
    }
    for (procfleet::ProcFleetConfig& n : nodes) {
      n.net.session_fingerprint = h;
    }
  }

  // One pre-bound listener per spoke: every port is known before any
  // child exists. The hub's `net` field is the per-link template; the hub
  // itself runs on mesh_links only.
  std::vector<int> listen_fds(spokes, -1);
  auto close_listeners = [&] {
    for (int fd : listen_fds) {
      if (fd >= 0) xclose(fd);
    }
  };
  for (usize i = 0; i < spokes; ++i) {
    u16 port = 0;
    std::string err;
    listen_fds[i] = tcp_listen("127.0.0.1", &port, &err);
    if (listen_fds[i] < 0) {
      out.error = "federate: " + err;
      close_listeners();
      return out;
    }
    netfleet::NetPeerConfig link = nodes[0].net;
    link.enabled = true;
    link.listener = true;
    link.listen_fd = listen_fds[i];
    link.port = port;
    nodes[0].mesh_links.push_back(link);

    nodes[i + 1].net.enabled = true;
    nodes[i + 1].net.listener = false;
    nodes[i + 1].net.host = "127.0.0.1";
    nodes[i + 1].net.port = port;
  }
  nodes[0].net.enabled = false;  // hub: mesh_links only

  std::vector<std::array<int, 2>> pipes(nodes.size(), {-1, -1});
  auto close_pipes = [&] {
    for (auto& p : pipes) {
      if (p[0] >= 0) xclose(p[0]);
      if (p[1] >= 0) xclose(p[1]);
    }
  };
  for (auto& p : pipes) {
    if (::pipe(p.data()) != 0) {
      out.error = "federate: pipe failed";
      close_pipes();
      close_listeners();
      return out;
    }
  }

  std::vector<pid_t> pids(nodes.size(), -1);
  for (usize i = 0; i < nodes.size(); ++i) {
    pids[i] = ::fork();
    if (pids[i] == 0) {
      for (usize j = 0; j < pipes.size(); ++j) {
        xclose(pipes[j][0]);
        if (j != i) xclose(pipes[j][1]);
      }
      // Only the hub holds listening sockets (via mesh_links).
      if (i != 0) close_listeners();
      child_main(program, seeds, nodes[i], pipes[i][1]);
    }
  }
  for (auto& p : pipes) {
    xclose(p[1]);
    p[1] = -1;
  }
  close_listeners();
  bool fork_failed = false;
  for (pid_t pid : pids) fork_failed = fork_failed || pid < 0;
  if (fork_failed) {
    out.error = "federate: fork failed";
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
  }

  std::vector<std::string> texts(nodes.size());
  for (usize i = 0; i < nodes.size(); ++i) {
    texts[i] = read_all(pipes[i][0]);
    xclose(pipes[i][0]);
    pipes[i][0] = -1;
  }
  int status = 0;
  for (pid_t pid : pids) {
    if (pid > 0) (void)xwaitpid(pid, &status, 0);
  }
  if (!out.error.empty()) return out;

  out.nodes.resize(nodes.size());
  std::set<u32> bugs;
  std::set<u64> hashes;
  for (usize i = 0; i < nodes.size(); ++i) {
    HalfReport& r = out.nodes[i];
    const std::string who =
        i == 0 ? std::string("hub") : "spoke " + std::to_string(i);
    if (!decode_half_report(texts[i], &r)) {
      out.error = "federate: " + who + " produced no report";
      return out;
    }
    if (!r.ok) {
      out.error = "federate: " + who + " failed: " + r.error;
      return out;
    }
    bugs.insert(r.bug_ids.begin(), r.bug_ids.end());
    hashes.insert(r.stack_hashes.begin(), r.stack_hashes.end());
    out.total_execs += r.total_execs;
    out.total_interesting += r.total_interesting;
    out.total_crashes += r.total_crashes;
  }
  out.found_bug_ids.assign(bugs.begin(), bugs.end());
  out.found_stack_hashes.assign(hashes.begin(), hashes.end());
  out.all_completed = true;
  for (const HalfReport& r : out.nodes) {
    out.all_completed = out.all_completed && r.all_completed;
  }
  out.ok = true;
  return out;
}

FailoverStarResult run_failover_star(
    const Program& program, const std::vector<Input>& seeds,
    std::vector<procfleet::ProcFleetConfig> nodes,
    const FailoverDrillOpts& opts) {
  FailoverStarResult out;
  const usize n = nodes.size();
  if (n < 2) {
    out.error = "failover: need at least two ranks";
    return out;
  }
  if (opts.kill_rank != FailoverDrillOpts::kNoKill && opts.kill_rank >= n) {
    out.error = "failover: kill_rank out of range";
    return out;
  }
  ignore_sigpipe();

  // Shared session identity (same derivation as the star runner: only
  // config the ranks genuinely have in common).
  bool any_fp = false;
  for (const procfleet::ProcFleetConfig& c : nodes) {
    any_fp = any_fp || c.failover.link.session_fingerprint != 0;
  }
  if (!any_fp) {
    u64 h = 0x6661696cull;  // "fail"
    for (u64 v :
         {nodes[0].base.max_execs, static_cast<u64>(nodes[0].base.scheme),
          static_cast<u64>(nodes[0].base.metric),
          static_cast<u64>(nodes[0].base.map.map_size)}) {
      h = (h ^ v) * 0x100000001b3ull;
    }
    for (procfleet::ProcFleetConfig& c : nodes) {
      c.failover.link.session_fingerprint = h;
    }
  }

  // The full listener matrix: fds[h][s] is the socket rank s dials when
  // rank h leads, bound in the parent so every future leadership already
  // has its wiring. The parent keeps every fd open for the whole drill —
  // a resurrected rank re-inherits its row on re-fork.
  std::vector<std::vector<int>> fds(n, std::vector<int>(n, -1));
  std::vector<std::vector<u16>> ports(n, std::vector<u16>(n, 0));
  auto close_matrix = [&] {
    for (auto& row : fds) {
      for (int& fd : row) {
        if (fd >= 0) xclose(fd);
        fd = -1;
      }
    }
  };
  for (usize h = 0; h < n; ++h) {
    for (usize s = 0; s < n; ++s) {
      if (h == s) continue;
      std::string err;
      fds[h][s] = tcp_listen("127.0.0.1", &ports[h][s], &err);
      if (fds[h][s] < 0) {
        out.error = "failover: " + err;
        close_matrix();
        return out;
      }
    }
  }

  for (usize i = 0; i < n; ++i) {
    procfleet::ProcFleetConfig& c = nodes[i];
    c.net.enabled = false;
    c.mesh_links.clear();
    c.failover.enabled = true;
    c.failover.rank = static_cast<u32>(i);
    c.failover.num_nodes = static_cast<u32>(n);
    c.failover.initial_leader = 0;
    if (c.failover.initial_epoch == 0) c.failover.initial_epoch = 1;
    c.failover.link.node_id = i;
    c.failover.listen_fds.assign(n, -1);
    c.failover.dial_ports.assign(n, 0);
    for (usize j = 0; j < n; ++j) {
      if (j == i) continue;
      c.failover.listen_fds[j] = fds[i][j];
      c.failover.dial_ports[j] = ports[j][i];
    }
  }

  std::vector<std::array<int, 2>> pipes(n, {-1, -1});
  auto close_pipes = [&] {
    for (auto& p : pipes) {
      if (p[0] >= 0) xclose(p[0]);
      if (p[1] >= 0) xclose(p[1]);
      p = {-1, -1};
    }
  };
  for (auto& p : pipes) {
    if (::pipe(p.data()) != 0) {
      out.error = "failover: pipe failed";
      close_pipes();
      close_matrix();
      return out;
    }
  }

  // Forks rank i into its OWN process group, so one SIGKILL(-pgid) later
  // takes the coordinator AND every worker it forked — exactly how a host
  // dies. The child drops every matrix fd outside its own row (two
  // processes accepting one listening socket would steal each other's
  // connections) and every pipe but its own write end.
  auto spawn = [&](usize i) -> pid_t {
    const pid_t pid = ::fork();
    if (pid == 0) {
      (void)::setpgid(0, 0);
      for (usize j = 0; j < pipes.size(); ++j) {
        if (pipes[j][0] >= 0) xclose(pipes[j][0]);
        if (j != i && pipes[j][1] >= 0) xclose(pipes[j][1]);
      }
      for (usize h = 0; h < n; ++h) {
        if (h == i) continue;
        for (usize s = 0; s < n; ++s) {
          if (fds[h][s] >= 0) xclose(fds[h][s]);
        }
      }
      child_main(program, seeds, nodes[i], pipes[i][1]);
    }
    if (pid > 0) (void)::setpgid(pid, pid);
    return pid;
  };

  std::vector<pid_t> pids(n, -1);
  std::vector<bool> alive(n, false);
  bool fork_failed = false;
  for (usize i = 0; i < n; ++i) {
    pids[i] = spawn(i);
    alive[i] = pids[i] > 0;
    fork_failed = fork_failed || pids[i] < 0;
  }
  for (auto& p : pipes) {
    xclose(p[1]);
    p[1] = -1;
  }
  if (fork_failed) {
    out.error = "failover: fork failed";
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(-pid, SIGKILL);
    }
    for (pid_t pid : pids) {
      int st = 0;
      if (pid > 0) (void)xwaitpid(pid, &st, 0);
    }
    close_pipes();
    close_matrix();
    return out;
  }

  // Event loop: reap naturally-exiting ranks, fire the kill at its
  // deadline, re-fork the victim at the resurrection deadline.
  const u32 kill_rank = opts.kill_rank;
  bool kill_pending = kill_rank != FailoverDrillOpts::kNoKill;
  bool resurrect_pending =
      kill_pending && opts.resurrect != FailoverDrillOpts::Resurrect::kNone;
  bool was_killed = false;
  u64 elapsed_ms = 0;
  const u64 resurrect_at_ms =
      static_cast<u64>(opts.kill_after_ms) + opts.resurrect_after_ms;
  for (;;) {
    bool any_alive = false;
    for (usize i = 0; i < n; ++i) {
      if (!alive[i]) continue;
      int st = 0;
      const pid_t r = ::waitpid(pids[i], &st, WNOHANG);
      if (r == pids[i]) {
        alive[i] = false;
      } else {
        any_alive = true;
      }
    }
    if (kill_pending && elapsed_ms >= opts.kill_after_ms) {
      kill_pending = false;
      if (alive[kill_rank]) {
        ::kill(-pids[kill_rank], SIGKILL);
        int st = 0;
        (void)xwaitpid(pids[kill_rank], &st, 0);
        alive[kill_rank] = false;
        was_killed = true;
      }
    }
    if (resurrect_pending && !kill_pending && elapsed_ms >= resurrect_at_ms) {
      resurrect_pending = false;
      // Drain the dead generation's (empty or partial) report and give
      // the resurrection a fresh pipe.
      (void)read_all(pipes[kill_rank][0]);
      xclose(pipes[kill_rank][0]);
      if (::pipe(pipes[kill_rank].data()) != 0) {
        out.error = "failover: resurrection pipe failed";
        break;
      }
      procfleet::ProcFleetConfig& c = nodes[kill_rank];
      c.resume = true;
      c.failover.resume_probe = true;
      c.failover.stale_fatal =
          opts.resurrect == FailoverDrillOpts::Resurrect::kStale;
      pids[kill_rank] = spawn(kill_rank);
      xclose(pipes[kill_rank][1]);
      pipes[kill_rank][1] = -1;
      if (pids[kill_rank] < 0) {
        out.error = "failover: resurrection fork failed";
        break;
      }
      alive[kill_rank] = true;
      any_alive = true;
    }
    if (!any_alive && !kill_pending && !resurrect_pending) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    elapsed_ms += 5;
  }
  if (!out.error.empty()) {
    for (usize i = 0; i < n; ++i) {
      if (alive[i]) {
        ::kill(-pids[i], SIGKILL);
        int st = 0;
        (void)xwaitpid(pids[i], &st, 0);
      }
    }
    close_pipes();
    close_matrix();
    return out;
  }

  std::vector<std::string> texts(n);
  for (usize i = 0; i < n; ++i) {
    texts[i] = read_all(pipes[i][0]);
    xclose(pipes[i][0]);
    pipes[i][0] = -1;
  }
  close_matrix();

  out.nodes.resize(n);
  std::set<u32> bugs;
  std::set<u64> hashes;
  bool all_completed = true;
  for (usize i = 0; i < n; ++i) {
    HalfReport& r = out.nodes[i];
    const std::string who = "rank " + std::to_string(i);
    if (i == kill_rank && was_killed &&
        opts.resurrect == FailoverDrillOpts::Resurrect::kNone) {
      r.ok = false;
      r.error = "killed (no resurrection)";
      continue;  // dead forever by design; not a drill failure
    }
    if (!decode_half_report(texts[i], &r)) {
      out.error = "failover: " + who + " produced no report";
      return out;
    }
    if (!r.ok) {
      out.error = "failover: " + who + " failed: " + r.error;
      return out;
    }
    bugs.insert(r.bug_ids.begin(), r.bug_ids.end());
    hashes.insert(r.stack_hashes.begin(), r.stack_hashes.end());
    out.total_execs += r.total_execs;
    out.total_interesting += r.total_interesting;
    out.total_crashes += r.total_crashes;
    all_completed = all_completed && r.all_completed;
  }
  out.found_bug_ids.assign(bugs.begin(), bugs.end());
  out.found_stack_hashes.assign(hashes.begin(), hashes.end());
  out.all_completed = all_completed;
  out.ok = true;
  return out;
}

}  // namespace bigmap::netfleet
