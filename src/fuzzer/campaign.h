// Campaign driver: the full coverage-guided fuzzing loop (paper Figure 1).
//
// Seeds the queue, then cycles: select entry -> havoc/splice mutations ->
// execute -> fitness function (virgin-map new bits) -> queue/crash/discard.
// The loop, scheduling, and mutation machinery are identical for both map
// schemes; only the map data structure differs — which is the paper's
// experimental control.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "core/map_options.h"
#include "fuzzer/crash.h"
#include "fuzzer/queue.h"
#include "fuzzer/sync.h"
#include "instrumentation/metrics.h"
#include "target/program.h"
#include "telemetry/sink.h"
#include "util/fault.h"
#include "util/timing.h"
#include "util/types.h"

namespace bigmap {

namespace persist {
class CheckpointStore;
}

namespace corpus {
class CorpusStore;
}

// Shared-memory control block between a running campaign and its
// supervisor: the campaign publishes an execution heartbeat the watchdog
// samples for stall detection, and honours a cooperative stop request at
// the next execution boundary (finalizing a normal, partial result).
struct CampaignControl {
  std::atomic<u64> progress{0};  // executions performed (heartbeat)
  std::atomic<bool> stop{false};  // request cooperative early exit
  // When nonzero, replaces CampaignConfig::max_execs at the next execution
  // boundary. A supervisor uses this to GROW a running campaign's budget in
  // place (quarantine redistribution) instead of waiting for the worker to
  // finish its stale budget and relaunching it through a checkpoint
  // restore. Only ever raised by the writer.
  std::atomic<u64> budget_override{0};
};

// Optional per-execution callback, invoked at the same boundary as the
// heartbeat update. Procfleet workers install their chaos pump here (the
// seeded SIGKILL/SIGSTOP/exit-mid-publish sites must be able to fire at any
// execution boundary, not just at sync points). Zero overhead when null.
struct ExecHook {
  virtual ~ExecHook() = default;
  virtual void on_exec(u64 execs) = 0;
};

// Execution tracing policy (coverage-guided tracing, Nagy & Hicks).
//
//   kAlways  every exec runs fully traced through the whole-map pipeline
//            (classic AFL behaviour; the control arm for diff testing).
//   kDual    non-seed execs first run UNTRACED with only the inline
//            interest oracle; the exec is re-executed traced iff the
//            oracle fires or the run crashes/hangs. Seeds always run
//            traced (the queue needs their trace for scoring), as do
//            trim executions. The two modes provably produce identical
//            find/crash/queue streams — mode_diff_test pins this.
enum class TracingMode : u8 {
  kAlways = 0,
  kDual = 1,
};

struct CampaignConfig {
  MapScheme scheme = MapScheme::kTwoLevel;
  MetricKind metric = MetricKind::kEdge;
  MapOptions map;

  // Coverage-guided tracing fast path: untraced-by-default execution with
  // traced re-execution on oracle fire. Dual is the default because the
  // modes are find-equivalent; benches compare against kAlways explicitly.
  TracingMode tracing = TracingMode::kDual;

  u64 seed = 1;

  // Stop conditions: whichever hits first (0 disables that bound).
  u64 max_execs = 50000;
  double max_seconds = 0.0;

  // Mutation settings.
  u32 havoc_stack_pow = 4;
  usize max_input_size = 1u << 12;
  std::vector<std::vector<u8>> dictionary;

  // Base havoc rounds per selected entry, scaled by perf_score/100.
  u32 havoc_rounds = 256;

  // Deterministic stage (bitflips/arith/interesting) on first selection of
  // each entry. The paper's runs skip it (persistent-mode 24h protocol).
  bool run_deterministic = false;

  // AFL-style corpus trimming: when an entry is first fuzzed, try removing
  // chunks while the (classified) trace hash stays unchanged. Exercises
  // the map-hash operation heavily — one of the ops that make large flat
  // maps expensive.
  bool trim_enabled = true;

  // When non-zero, sample (execs, covered_positions) every this many
  // executions into CampaignResult::coverage_series.
  u64 series_interval = 0;

  // Interpreter step budget per execution (hang threshold).
  u64 step_budget = 1u << 16;

  // Synthetic application work per executed block (see
  // Interpreter::set_work_per_block). Keeps execution cost realistic
  // relative to map operations.
  u32 work_per_block = 12;

  // Use executed-step counts instead of wall-clock nanoseconds for queue
  // scheduling (fav_factor / perf_score). Makes campaigns bit-for-bit
  // reproducible given a seed; throughput benches keep this off to match
  // AFL's real time-driven scheduling.
  bool deterministic_timing = false;

  // Keep final corpus in the result (for post-hoc bias-free coverage
  // measurement, §V-A3).
  bool keep_corpus = false;

  // Parallel fuzzing: non-null hub makes this instance publish interesting
  // inputs and import other instances' finds every sync_interval execs.
  // Either the in-process SyncHub (thread fleets) or the shared-memory
  // ShmHub (process fleets) — the campaign is agnostic.
  SyncEndpoint* sync = nullptr;
  u32 sync_id = 0;
  u32 sync_interval = 4096;
  bool is_master = false;

  // Supervision hooks (all optional; zero overhead when null). `control`
  // carries the heartbeat/stop channel; `fault` injects deterministic
  // faults into the exec / sync / allocation paths, keyed by sync_id;
  // `exec_hook` fires after every execution (procfleet chaos pump).
  CampaignControl* control = nullptr;
  FaultInjector* fault = nullptr;
  ExecHook* exec_hook = nullptr;

  // Persistence (optional). A non-null store makes the campaign commit a
  // crash-consistent snapshot of its full resumable state every
  // checkpoint_interval execs (0 = only at clean completion) and restore
  // the latest good snapshot at startup when resume_from_checkpoint is
  // set — continuing the lifetime exec budget rather than restarting it.
  persist::CheckpointStore* checkpoint = nullptr;
  u64 checkpoint_interval = 0;
  u32 keep_checkpoints = 2;
  bool resume_from_checkpoint = false;

  // Corpus database (optional, shareable across a fleet's instances). A
  // non-null store receives every queued entry (content-hash dedup + WAL
  // append with the entry's sparse coverage positions) and every crash
  // occurrence (keyed by Crashwalk stack hash, with this instance's exec
  // sequence number so checkpoint-resume replay is idempotent). Checkpoint
  // snapshots then encode durable queue entries as store refs instead of
  // inline bytes, and the restore path resolves them back through the
  // store. When corpus_compact_interval > 0 the campaign also compacts
  // the store every that many execs.
  corpus::CorpusStore* corpus = nullptr;
  u64 corpus_compact_interval = 0;

  // On whole-process resume the telemetry sink starts from zero; this makes
  // a successful restore prime the sink's lifetime counters from the
  // snapshot so fleet totals stay cumulative. In-process warm restarts
  // reuse the surviving sink (which already holds the counts) and must
  // leave this off.
  bool telemetry_restore = false;

  // Telemetry (optional). When non-null, the campaign bumps the sink's
  // lock-free counters on the hot path and stamps a StatsSnapshot — map
  // gauges refreshed, rates computed — every telemetry_interval execs and
  // once at finalize. The sink is owned by the caller (the supervisor keeps
  // one per instance slot, so counters accumulate across restarts).
  telemetry::TelemetrySink* telemetry = nullptr;
  u64 telemetry_interval = 16384;
};

struct CampaignResult {
  std::string benchmark;
  MapScheme scheme{};
  usize map_size = 0;

  u64 execs = 0;
  double wall_seconds = 0.0;
  double throughput() const noexcept {
    return wall_seconds > 0 ? static_cast<double>(execs) / wall_seconds : 0;
  }

  // Seed-phase accounting: processing the initial corpus front-loads the
  // expensive interesting-case path (hash, rank update). Long campaigns —
  // the paper's 24 h runs — are dominated by the steady state after it, so
  // throughput comparisons should use steady_throughput().
  u64 seed_execs = 0;
  double seed_seconds = 0.0;
  double steady_throughput() const noexcept {
    const double t = wall_seconds - seed_seconds;
    return (t > 0 && execs > seed_execs)
               ? static_cast<double>(execs - seed_execs) / t
               : throughput();
  }

  OpTimeBreakdown timing;

  // Coverage measured on the map (covered virgin positions). Map-biased;
  // cross-scheme comparisons should prefer ground-truth edges below.
  usize covered_positions = 0;

  // BigMap only: distinct keys seen (== used_key); 0 for the flat scheme.
  u32 used_key = 0;

  // BigMap only: map updates that aliased into the overflow slot because
  // the condensed bitmap was full (graceful-degradation counter; 0 unless
  // condensed_size was deliberately undersized).
  u64 saturated_updates = 0;

  u64 interesting = 0;  // test cases that produced new bits
  u64 hangs = 0;

  // Fault-injection accounting (all zero without a FaultInjector).
  bool fault_aborted = false;  // died to kInstanceKill; result is partial
  u64 faulted_execs = 0;       // executions lost to kExecAbort
  u64 injected_hangs = 0;      // kTransientHang stalls served

  // Persistence accounting (all zero without a CheckpointStore). When
  // `resumed` is set, every lifetime counter above (execs, interesting,
  // hangs, crashes, trim, fault counters) continues from the restored
  // snapshot rather than from zero — the supervisor accounts for this by
  // treating resumed results as lifetime totals for the instance's current
  // budget segment.
  bool resumed = false;            // state restored from a checkpoint
  u64 resumed_from_execs = 0;      // snapshot's exec counter at restore
  u64 checkpoints_written = 0;
  u64 checkpoint_failures = 0;     // saves lost to (injected) I/O faults

  u64 crashes_total = 0;
  u64 crashes_afl_unique = 0;        // AFL's map-biased dedup
  u64 crashes_crashwalk_unique = 0;  // stack-hash dedup (paper's metric)
  u64 crashes_ground_truth = 0;      // distinct planted bug ids

  usize corpus_size = 0;
  std::vector<Input> corpus;  // populated iff keep_corpus

  // Identities behind the crash counts, for unioning across parallel
  // instances (Figures 9/10): planted bug ids and Crashwalk stack hashes.
  std::vector<u32> found_bug_ids;
  std::vector<u64> found_stack_hashes;

  // Trimming statistics (when trim_enabled).
  u64 trim_execs = 0;
  u64 trimmed_bytes = 0;

  // Coverage-guided tracing accounting. Invariant:
  //   tracing_untraced_execs + tracing_traced_execs == execs
  // (an exec counts as traced when it ran a map pipeline — seeds,
  // oracle-fire re-executions, crash/hang replays, trim executions, and
  // every exec under TracingMode::kAlways).
  u64 tracing_untraced_execs = 0;
  u64 tracing_traced_execs = 0;
  u64 tracing_oracle_fires = 0;  // untraced runs stopped by the oracle
  u64 tracing_reexec_ns = 0;     // wall time spent in traced re-executions

  // Corpus-store accounting (zero without a CorpusStore).
  u64 corpus_appends = 0;     // entries this instance added to the store
  u64 corpus_dedup_hits = 0;  // adds dropped as already-known content

  // Coverage growth samples (when series_interval > 0): (execs, covered
  // map positions) pairs — the raw data behind coverage-over-time plots.
  std::vector<std::pair<u64, usize>> coverage_series;
};

// Runs a campaign of `config` over `program` starting from `seeds`.
// Dispatches on scheme x metric to the fully-inlined implementation.
CampaignResult run_campaign(const Program& program,
                            const std::vector<Input>& seeds,
                            const CampaignConfig& config);

// Ground-truth edge coverage of a corpus: executes every input on an
// uninstrumented interpreter and counts distinct (prev_block, cur_block)
// pairs. This is the paper's "bias-free independent coverage build".
u64 measure_corpus_edges(const Program& program,
                         const std::vector<Input>& corpus,
                         u64 step_budget = 1u << 16);

}  // namespace bigmap
