#include "fuzzer/queue.h"

#include <algorithm>

namespace bigmap {

SeedQueue::SeedQueue(usize map_positions)
    : top_entry_(map_positions, kNoEntry), top_factor_(map_positions, 0) {}

usize SeedQueue::add(Input data, u64 exec_ns, u32 bitmap_hash, u32 depth) {
  auto e = std::make_unique<QueueEntry>();
  e->data = std::move(data);
  e->exec_ns = exec_ns;
  e->bitmap_hash = bitmap_hash;
  e->depth = depth;
  entries_.push_back(std::move(e));
  return entries_.size() - 1;
}

void SeedQueue::update_scores(usize entry_idx, std::span<const u8> trace) {
  const QueueEntry& e = *entries_[entry_idx];
  // fav_factor: lower is better (AFL: exec_us * len).
  const u64 factor =
      std::max<u64>(1, e.exec_ns) * std::max<usize>(1, e.data.size());

  const u32 idx32 = static_cast<u32>(entry_idx);
  for (usize i = 0; i < trace.size(); ++i) {
    if (trace[i] == 0) continue;
    if (top_entry_[i] == kNoEntry) {
      ++top_covered_;
      top_entry_[i] = idx32;
      top_factor_[i] = factor;
      cull_pending_ = true;
    } else if (factor < top_factor_[i]) {
      top_entry_[i] = idx32;
      top_factor_[i] = factor;
      cull_pending_ = true;
    }
  }
}

void SeedQueue::cull() {
  if (!cull_pending_) return;
  cull_pending_ = false;

  for (auto& e : entries_) e->favored = false;
  // Greedy cover in position order, like AFL's temp_v walk: an entry
  // becomes favored if it is the top_rated winner for a position not yet
  // covered by an earlier favored entry. We approximate AFL's bitmap walk
  // by marking winners directly — every top_rated winner is favored. The
  // favored set is slightly larger than AFL's minimal cover but has the
  // same growth behavior.
  for (usize i = 0; i < top_entry_.size(); ++i) {
    if (top_entry_[i] != kNoEntry) entries_[top_entry_[i]]->favored = true;
  }
}

double SeedQueue::perf_score(usize idx, u64 avg_exec_ns) const {
  const QueueEntry& e = *entries_[idx];
  double score = 100.0;

  // Speed adjustment (AFL: 0.1x .. 3x).
  if (avg_exec_ns > 0) {
    const double ratio = static_cast<double>(e.exec_ns) /
                         static_cast<double>(avg_exec_ns);
    if (ratio > 4.0) {
      score *= 0.25;
    } else if (ratio > 2.0) {
      score *= 0.5;
    } else if (ratio < 0.25) {
      score *= 3.0;
    } else if (ratio < 0.5) {
      score *= 2.0;
    }
  }

  // Depth bonus (AFL rewards deeper derivations up to 5x).
  if (e.depth >= 16) {
    score *= 5.0;
  } else if (e.depth >= 8) {
    score *= 3.0;
  } else if (e.depth >= 4) {
    score *= 2.0;
  }

  return std::clamp(score, 10.0, 1600.0);
}

u64 SeedQueue::average_exec_ns() const noexcept {
  if (entries_.empty()) return 0;
  u64 sum = 0;
  for (const auto& e : entries_) sum += e->exec_ns;
  return sum / entries_.size();
}

usize SeedQueue::favored_count() const noexcept {
  usize n = 0;
  for (const auto& e : entries_) {
    if (e->favored) ++n;
  }
  return n;
}

SeedQueue::ExportedState SeedQueue::export_state() const {
  ExportedState out;
  out.entries.reserve(entries_.size());
  for (const auto& e : entries_) out.entries.push_back(e.get());
  out.top_entry = top_entry_;
  out.top_factor = top_factor_;
  out.top_covered = top_covered_;
  return out;
}

bool SeedQueue::import_state(std::vector<QueueEntry> entries,
                             std::span<const u32> top_entry,
                             std::span<const u64> top_factor,
                             usize top_covered) {
  if (top_entry.size() != top_entry_.size() ||
      top_factor.size() != top_factor_.size() ||
      top_covered > top_entry.size()) {
    return false;
  }
  usize covered = 0;
  for (u32 idx : top_entry) {
    if (idx == kNoEntry) continue;
    if (idx >= entries.size()) return false;
    ++covered;
  }
  if (covered != top_covered) return false;

  entries_.clear();
  entries_.reserve(entries.size());
  for (QueueEntry& e : entries) {
    entries_.push_back(std::make_unique<QueueEntry>(std::move(e)));
  }
  std::copy(top_entry.begin(), top_entry.end(), top_entry_.begin());
  std::copy(top_factor.begin(), top_factor.end(), top_factor_.begin());
  top_covered_ = top_covered;
  // Favored flags were persisted per entry, but recompute anyway so the
  // favored set always agrees with the restored top_rated winners.
  cull_pending_ = true;
  return true;
}

}  // namespace bigmap
