// net_drill: driver for the federated network-chaos drill
// (scripts/net_chaos_drill.sh). Modes over one fixed campaign shape —
// 4 worker processes, planted-bug target, deterministic timing — arranged
// either as one local fleet or as two federated coordinator processes
// (2 workers each) joined by a loopback PeerLink:
//
//   net_drill single <dir>          one 4-worker fleet, no network — the
//                                   reference find-union and exec total
//   net_drill pair <dir>            federated pair, clean network
//   net_drill pair-storm <dir>      federated pair under the full network
//                                   storm: seeded frame drops, delays,
//                                   torn-frame short writes, connection
//                                   resets, and a partition — the
//                                   federation union must still match the
//                                   single fleet exactly
//   net_drill pair-partition <dir>  federated pair with a long
//                                   mid-campaign partition-and-heal: both
//                                   sides keep fuzzing on local sync
//                                   during the cut, reconcile on heal
//
// Star (3-node hub) modes over a 6-worker budget, with the virgin-map
// novelty oracle gating every gateway link:
//
//   net_drill single-wide <dir>     one 6-worker fleet, no network — the
//                                   reference for the star modes
//   net_drill star <dir>            hub (2 workers) + 2 spokes (2 workers
//                                   each), clean network; the merged
//                                   find-union must match single-wide
//   net_drill star-storm <dir>      the same star under the network storm
//                                   on the hub's links
//
// Every mode prints sorted found_bug_ids / found_stack_hashes,
// total_execs, and all_completed in the same diff-friendly format as
// fleet_drill; link diagnostics go to stderr. The chaos modes self-check
// that the storm actually engaged (injected faults, reconnects) and exit
// non-zero if the network never hurt.
#include <algorithm>
#include <cstdio>
#include <string>

#include "fuzzer/netfleet/federate.h"
#include "fuzzer/procfleet/coordinator.h"
#include "target/generator.h"

using namespace bigmap;
using namespace bigmap::procfleet;
using namespace bigmap::netfleet;

namespace {

GeneratedTarget make_target() {
  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

// The per-coordinator fleet shape. The single baseline runs it with 4
// workers and base seed 501; the federated halves run 2 workers each with
// base seeds 501 (A) and 503 (B), so the union of campaign seeds across
// the federation is exactly the baseline's set {501..504}.
ProcFleetConfig make_config(const std::string& dir, u32 workers, u64 seed) {
  ProcFleetConfig fc;
  fc.num_workers = workers;
  fc.base.scheme = MapScheme::kTwoLevel;
  fc.base.map.map_size = 1u << 16;
  fc.base.map.huge_pages = false;
  fc.base.max_execs = 10000;
  fc.base.seed = seed;
  fc.base.sync_interval = 1024;
  fc.base.deterministic_timing = true;
  fc.poll_ms = 2;
  fc.stall_deadline_ms = 600;
  fc.max_restarts_per_worker = 10;
  fc.backoff_initial_ms = 5;
  fc.backoff_cap_ms = 50;
  fc.checkpoint_interval = 512;
  fc.persist_dir = dir;
  fc.quarantine_deaths = 0;  // equality drill: no degraded parking
  return fc;
}

// The network storm: sustained frame loss and delay on every gateway, plus
// deterministic torn-frame short writes, abrupt resets, and one partition
// per side. All seeded — the schedule replays identically.
FaultPlan make_net_storm_plan() {
  FaultPlan plan;
  // ~15% of entry frames vanish in flight; ~10% are deferred a pump.
  plan.rates.push_back(
      {FaultSite::kNetDrop, 150000, FaultRate::kAllInstances});
  plan.rates.push_back(
      {FaultSite::kNetDelay, 100000, FaultRate::kAllInstances});
  // Torn frames (write half, then die) early and mid-stream.
  plan.triggers.push_back({FaultSite::kNetShortWrite, 2, 1});
  plan.triggers.push_back({FaultSite::kNetShortWrite, 2, 4});
  // Abrupt RSTs: checked once per connected pump.
  plan.triggers.push_back({FaultSite::kNetConnReset, 2, 40});
  plan.triggers.push_back({FaultSite::kNetConnReset, 2, 200});
  // One short partition in the middle of the storm.
  plan.triggers.push_back({FaultSite::kNetPartition, 2, 120});
  return plan;
}

// The partition drill: a single long cut, no other interference, landing
// mid-campaign so both sides demonstrably keep fuzzing through it.
FaultPlan make_partition_plan() {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNetPartition, 2, 60});
  return plan;
}

void print_union(const std::vector<u32>& bugs_in,
                 const std::vector<u64>& hashes_in, u64 execs,
                 bool completed) {
  std::vector<u32> bugs = bugs_in;
  std::sort(bugs.begin(), bugs.end());
  std::vector<u64> hashes = hashes_in;
  std::sort(hashes.begin(), hashes.end());
  std::printf("bug_ids:");
  for (u32 b : bugs) std::printf(" %u", b);
  std::printf("\nstack_hashes:");
  for (u64 h : hashes) {
    std::printf(" %llx", static_cast<unsigned long long>(h));
  }
  std::printf("\ntotal_execs: %llu\n", static_cast<unsigned long long>(execs));
  std::printf("all_completed: %d\n", completed ? 1 : 0);
  std::fflush(stdout);
}

void print_link_diag(const char* who, const LinkStats& n) {
  std::fprintf(
      stderr,
      "[%s] sent=%llu recv=%llu offered=%llu novelty_filtered=%llu "
      "dups=%llu ooo=%llu rewinds=%llu connects=%llu reconnects=%llu "
      "timeouts=%llu conn_errors=%llu drops=%llu delays=%llu "
      "short_writes=%llu resets=%llu partitions=%llu partition_ms=%llu "
      "lost_to_eviction=%llu bytes_tx=%llu bytes_rx=%llu\n",
      who, static_cast<unsigned long long>(n.records_sent),
      static_cast<unsigned long long>(n.records_received),
      static_cast<unsigned long long>(n.entries_offered),
      static_cast<unsigned long long>(n.novelty_filtered),
      static_cast<unsigned long long>(n.duplicates_dropped),
      static_cast<unsigned long long>(n.out_of_order_dropped),
      static_cast<unsigned long long>(n.rewinds),
      static_cast<unsigned long long>(n.connects),
      static_cast<unsigned long long>(n.reconnects),
      static_cast<unsigned long long>(n.heartbeat_timeouts),
      static_cast<unsigned long long>(n.conn_errors),
      static_cast<unsigned long long>(n.injected_drops),
      static_cast<unsigned long long>(n.injected_delays),
      static_cast<unsigned long long>(n.injected_short_writes),
      static_cast<unsigned long long>(n.injected_resets),
      static_cast<unsigned long long>(n.injected_partitions),
      static_cast<unsigned long long>(n.partition_ms_total),
      static_cast<unsigned long long>(n.lost_to_eviction),
      static_cast<unsigned long long>(n.bytes_sent),
      static_cast<unsigned long long>(n.bytes_received));
}

int run_star(const GeneratedTarget& target, const std::vector<Input>& seeds,
             const std::string& mode, const std::string& dir) {
  // Hub seed 501 (workers 501-502), spokes 503 and 505 (503-506): the
  // union of campaign seeds across the star is exactly the single-wide
  // baseline's set {501..506}, at the same total exec budget.
  std::vector<ProcFleetConfig> nodes;
  nodes.push_back(make_config(dir + "/hub", 2, 501));
  nodes.push_back(make_config(dir + "/s1", 2, 503));
  nodes.push_back(make_config(dir + "/s2", 2, 505));
  for (usize i = 0; i < nodes.size(); ++i) {
    ProcFleetConfig& fc = nodes[i];
    fc.net.node_id = i + 1;
    fc.net.heartbeat_ms = 20;
    fc.net.peer_timeout_ms = 400;
    fc.net.reconnect_initial_ms = 5;
    fc.net.reconnect_cap_ms = 100;
    // Virgin-map novelty gate on every gateway link (hub and spokes): the
    // drill doubles as proof the oracle never costs a find.
    fc.net_virgin_oracle = true;
  }

  if (mode == "star-storm") {
    // The storm rides the hub's coordinator injector (gateway instance 2,
    // shared occurrence counters across its links), plus one spoke with
    // its own schedule so connector-side failures fire too.
    nodes[0].fault_enabled = true;
    nodes[0].fault_seed = 909;
    nodes[0].fault_plan = make_net_storm_plan();
    nodes[0].net.partition_ms = 300;
    nodes[1].fault_enabled = true;
    nodes[1].fault_seed = 910;
    nodes[1].fault_plan = make_net_storm_plan();
    nodes[1].net.partition_ms = 300;
  }

  StarResult sr = run_federated_star(target.program, seeds, nodes);
  if (!sr.ok) {
    std::fprintf(stderr, "net_drill: %s\n", sr.error.c_str());
    return 1;
  }
  u64 oracle_checked = 0, oracle_rejected = 0, records_sent = 0;
  u64 injected = 0, reconnects = 0;
  for (usize i = 0; i < sr.nodes.size(); ++i) {
    const HalfReport& r = sr.nodes[i];
    const std::string who =
        i == 0 ? std::string("hub") : "spoke-" + std::to_string(i);
    print_link_diag(who.c_str(), r.net);
    std::fprintf(stderr,
                 "[%s] oracle checked=%llu accepted=%llu rejected=%llu\n",
                 who.c_str(),
                 static_cast<unsigned long long>(r.oracle.checked),
                 static_cast<unsigned long long>(r.oracle.accepted),
                 static_cast<unsigned long long>(r.oracle.rejected));
    oracle_checked += r.oracle.checked;
    oracle_rejected += r.oracle.rejected;
    records_sent += r.net.records_sent;
    injected += r.net.injected_drops + r.net.injected_delays +
                r.net.injected_short_writes + r.net.injected_resets +
                r.net.injected_partitions;
    reconnects += r.net.reconnects;
  }
  print_union(sr.found_bug_ids, sr.found_stack_hashes, sr.total_execs,
              sr.all_completed);

  if (records_sent == 0) {
    std::fprintf(stderr, "net_drill: no corpus exchange happened\n");
    return 3;
  }
  if (oracle_checked == 0) {
    std::fprintf(stderr, "net_drill: the novelty oracle never engaged\n");
    return 3;
  }
  std::fprintf(stderr, "[star] oracle_reject_ratio=%.3f\n",
               static_cast<double>(oracle_rejected) /
                   static_cast<double>(oracle_checked));
  if (mode == "star-storm") {
    if (injected == 0) {
      std::fprintf(stderr, "net_drill: storm injected no faults\n");
      return 3;
    }
    if (reconnects == 0) {
      std::fprintf(stderr, "net_drill: storm forced no reconnects\n");
      return 3;
    }
  }
  return sr.all_completed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  const std::string dir = argc > 2 ? argv[2] : "";
  const bool known = mode == "single" || mode == "pair" ||
                     mode == "pair-storm" || mode == "pair-partition" ||
                     mode == "single-wide" || mode == "star" ||
                     mode == "star-storm";
  if (!known || dir.empty()) {
    std::fprintf(stderr,
                 "usage: net_drill single <dir>\n"
                 "       net_drill pair <dir>\n"
                 "       net_drill pair-storm <dir>\n"
                 "       net_drill pair-partition <dir>\n"
                 "       net_drill single-wide <dir>\n"
                 "       net_drill star <dir>\n"
                 "       net_drill star-storm <dir>\n");
    return 2;
  }

  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  if (mode == "single" || mode == "single-wide") {
    ProcFleetConfig fc =
        make_config(dir, mode == "single" ? 4 : 6, 501);
    ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
    print_union(r.found_bug_ids, r.found_stack_hashes, r.total_execs,
                r.all_completed());
    return r.all_completed() ? 0 : 1;
  }

  if (mode == "star" || mode == "star-storm") {
    return run_star(target, seeds, mode, dir);
  }

  ProcFleetConfig a = make_config(dir + "/a", 2, 501);
  ProcFleetConfig b = make_config(dir + "/b", 2, 503);
  a.net.node_id = 1;
  b.net.node_id = 2;
  // Fast liveness so injected failures are detected and healed well within
  // the drill's runtime.
  for (ProcFleetConfig* fc : {&a, &b}) {
    fc->net.heartbeat_ms = 20;
    fc->net.peer_timeout_ms = 400;
    fc->net.reconnect_initial_ms = 5;
    fc->net.reconnect_cap_ms = 100;
  }

  if (mode == "pair-storm") {
    const FaultPlan plan = make_net_storm_plan();
    a.fault_enabled = true;
    a.fault_seed = 909;
    a.fault_plan = plan;
    b.fault_enabled = true;
    b.fault_seed = 910;  // decorrelated: the sides fail at different times
    b.fault_plan = plan;
    a.net.partition_ms = 300;
    b.net.partition_ms = 300;
  } else if (mode == "pair-partition") {
    const FaultPlan plan = make_partition_plan();
    a.fault_enabled = true;
    a.fault_seed = 911;
    a.fault_plan = plan;
    // Only A cuts the link; B experiences the partition as a peer timeout
    // and keeps retrying into the void until the heal.
    a.net.partition_ms = 1000;
    // Stretch the campaign so the cut demonstrably lands mid-run with
    // fuzzing continuing on both sides throughout.
    a.base.work_per_block = 400;
    b.base.work_per_block = 400;
  }

  FederatedResult fr = run_federated_pair(target.program, seeds, a, b);
  if (!fr.ok) {
    std::fprintf(stderr, "net_drill: %s\n", fr.error.c_str());
    return 1;
  }
  print_link_diag("half-a", fr.a.net);
  print_link_diag("half-b", fr.b.net);
  print_union(fr.found_bug_ids, fr.found_stack_hashes, fr.total_execs,
              fr.all_completed);

  // Self-checks: the exchange must have happened, and chaos modes must
  // have actually hurt the network (otherwise the drill proves nothing).
  if (fr.a.net.records_sent == 0 && fr.b.net.records_sent == 0) {
    std::fprintf(stderr, "net_drill: no corpus exchange happened\n");
    return 3;
  }
  if (mode == "pair-storm") {
    const u64 injected =
        fr.a.net.injected_drops + fr.a.net.injected_delays +
        fr.a.net.injected_short_writes + fr.a.net.injected_resets +
        fr.a.net.injected_partitions + fr.b.net.injected_drops +
        fr.b.net.injected_delays + fr.b.net.injected_short_writes +
        fr.b.net.injected_resets + fr.b.net.injected_partitions;
    if (injected == 0) {
      std::fprintf(stderr, "net_drill: storm injected no faults\n");
      return 3;
    }
    if (fr.a.net.reconnects + fr.b.net.reconnects == 0) {
      std::fprintf(stderr, "net_drill: storm forced no reconnects\n");
      return 3;
    }
  }
  if (mode == "pair-partition" &&
      fr.a.net.injected_partitions + fr.b.net.injected_partitions == 0) {
    std::fprintf(stderr, "net_drill: no partition was injected\n");
    return 3;
  }
  return fr.all_completed ? 0 : 1;
}
