// fleet_drill: driver for the multi-process chaos drill
// (scripts/fleet_chaos_drill.sh). Modes over one fixed fleet configuration
// (4 worker processes, planted-bug target, deterministic timing):
//
//   fleet_drill baseline <dir>    chaos-free process fleet — the reference
//                                 crash union and exec total
//   fleet_drill storm <dir>       seeded kill/stall storm: SIGKILL-self,
//                                 SIGSTOP-stall (hang-killed), exit mid
//                                 publish, mmap-fail attach, in-campaign
//                                 instance kill — the fleet must converge
//                                 to exactly the baseline output
//   fleet_drill storm-run <dir>   the storm, slowed down so an external
//                                 SIGKILL of the *coordinator* lands
//                                 mid-campaign (prints its pid)
//   fleet_drill resume <dir>      relaunch after the coordinator kill;
//                                 replays the fleet journal and finishes
//
// Every mode prints sorted found_bug_ids / found_stack_hashes and
// total_execs in a diff-friendly format; the drill passes when storm and
// resume outputs match the baseline exactly (find-union semantics and the
// exec budget survive any combination of worker and coordinator deaths).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "fuzzer/procfleet/coordinator.h"
#include "target/generator.h"

using namespace bigmap;
using namespace bigmap::procfleet;

namespace {

GeneratedTarget make_target() {
  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

ProcFleetConfig make_config(const std::string& dir) {
  ProcFleetConfig fc;
  fc.num_workers = 4;
  fc.base.scheme = MapScheme::kTwoLevel;
  fc.base.map.map_size = 1u << 16;
  fc.base.map.huge_pages = false;
  fc.base.max_execs = 10000;
  fc.base.seed = 501;
  fc.base.sync_interval = 1024;
  fc.base.deterministic_timing = true;
  fc.poll_ms = 2;
  fc.stall_deadline_ms = 600;
  fc.max_restarts_per_worker = 10;
  fc.backoff_initial_ms = 5;
  fc.backoff_cap_ms = 50;
  fc.checkpoint_interval = 512;
  fc.persist_dir = dir;
  // Quarantine stays off in the equality drill: parking a worker loses its
  // post-checkpoint finds by design (degraded mode), which would break the
  // exact find-union comparison the drill asserts.
  fc.quarantine_deaths = 0;
  return fc;
}

// The storm: every process-level chaos site fires at least once, plus an
// in-campaign instance kill, spread across different workers. All
// deterministic triggers, so the drill replays identically from the seed.
FaultPlan make_storm_plan() {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kInstanceKill, 0, 800});
  plan.triggers.push_back({FaultSite::kProcKill, 1, 2});
  plan.triggers.push_back({FaultSite::kProcStall, 2, 5});
  plan.triggers.push_back({FaultSite::kProcExitMidPublish, 3, 3});
  // Worker 3's *second* attach (its restart after the mid-publish death)
  // is refused, exercising the shm-failure triage path too.
  plan.triggers.push_back({FaultSite::kMmapFail, 3, 1});
  plan.hang_ms = 20;
  return plan;
}

void print_result(const ProcFleetResult& r) {
  std::vector<u32> bugs = r.found_bug_ids;
  std::sort(bugs.begin(), bugs.end());
  std::vector<u64> hashes = r.found_stack_hashes;
  std::sort(hashes.begin(), hashes.end());

  std::printf("bug_ids:");
  for (u32 b : bugs) std::printf(" %u", b);
  std::printf("\nstack_hashes:");
  for (u64 h : hashes) std::printf(" %llx", static_cast<unsigned long long>(h));
  std::printf("\ntotal_execs: %llu\n",
              static_cast<unsigned long long>(r.total_execs));
  std::printf("all_completed: %d\n", r.all_completed() ? 1 : 0);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  const std::string dir = argc > 2 ? argv[2] : "";
  const bool known = mode == "baseline" || mode == "storm" ||
                     mode == "storm-run" || mode == "resume";
  if (!known || dir.empty()) {
    std::fprintf(stderr,
                 "usage: fleet_drill baseline <fleet-dir>\n"
                 "       fleet_drill storm <fleet-dir>\n"
                 "       fleet_drill storm-run <fleet-dir>\n"
                 "       fleet_drill resume <fleet-dir>\n");
    return 2;
  }

  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  ProcFleetConfig fc = make_config(dir);
  if (mode != "baseline") {
    fc.fault_enabled = true;
    fc.fault_seed = 77;
    fc.fault_plan = make_storm_plan();
    fc.chaos_check_interval = 64;
  }
  if (mode == "resume") fc.resume = true;
  if (mode == "storm-run") {
    // Heavy per-block work stretches the run to many seconds so the drill
    // script's coordinator SIGKILL reliably lands mid-campaign, with
    // several checkpoints and journal events already committed. Exec
    // counts are work-independent (deterministic timing), so the budget
    // comparison still holds.
    fc.base.work_per_block = 2500;
    std::printf("running: pid %d dir %s\n", static_cast<int>(getpid()),
                dir.c_str());
    std::fflush(stdout);
  }

  ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
  std::printf("resumed: %d\n", r.resumed ? 1 : 0);
  print_result(r);
  return r.all_completed() ? 0 : 1;
}
