// corpus_drill: driver for the corpus chaos drill
// (scripts/corpus_chaos_drill.sh). Three modes over one fixed fleet
// configuration (4 instances, planted-bug target, deterministic timing,
// cross-instance sync disabled so every exec stream is a pure function of
// its seed), all sharing one WAL-backed CorpusStore:
//
//   corpus_drill baseline <dir>   fault-free persisted run; the reference
//                                 corpus and crash union
//   corpus_drill run <dir>        fresh persisted run under a fault storm
//                                 (instance kills after the first
//                                 checkpoints, checkpoint I/O failures),
//                                 ending in SIGKILL raised from inside a
//                                 compaction — after the new pack is
//                                 committed but before the WAL reset, the
//                                 nastiest crash point the store has
//   corpus_drill resume <dir>     relaunch after the kill; replays fleet
//                                 journal + corpus WAL and finishes the
//                                 budget
//
// baseline and resume end with the same offline maintenance pass: flush
// pending appends, trim with every snapshot-referenced hash pinned (so
// statecheck --corpus stays clean), compact, and export the canonical
// pack to <dir>/corpus.canonical. The drill passes when the resumed run's
// canonical pack is byte-identical to the baseline's — the corpus store's
// whole point: recovered state is not merely similar, it is the same
// bytes.
//
// Sync stays off because imported entries would splice the instances'
// exec streams together at wall-clock-dependent points; the find-union
// would still converge, but the corpus would not be run-to-run
// byte-stable, and byte equality is exactly what this drill checks.
#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <unordered_set>

#include "corpus/store.h"
#include "fuzzer/supervisor.h"
#include "persist/io.h"
#include "persist/snapshot.h"
#include "target/generator.h"
#include "util/fault.h"

using namespace bigmap;

namespace {

GeneratedTarget make_target() {
  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

SupervisorConfig make_config() {
  SupervisorConfig sc;
  sc.num_instances = 4;
  sc.base.scheme = MapScheme::kTwoLevel;
  sc.base.map.map_size = 1u << 16;
  sc.base.map.huge_pages = false;
  sc.base.max_execs = 10000;
  sc.base.seed = 501;
  // Never reached within the budget: keeps each instance's exec stream
  // independent and deterministic (see file comment).
  sc.base.sync_interval = 1u << 30;
  sc.base.deterministic_timing = true;
  sc.poll_ms = 2;
  sc.stall_deadline_ms = 2000;
  sc.max_restarts_per_instance = 3;
  sc.backoff_initial_ms = 5;
  sc.backoff_cap_ms = 50;
  sc.checkpoint_interval = 512;
  return sc;
}

// The storm deliberately stays inside the class of faults that preserve
// each instance's exec stream: instance kills land after the first
// checkpoint boundary (warm restarts replay the identical stream), and
// checkpoint I/O failures are non-fatal and early (the final retained
// snapshots — the trim pin set — are written long after). Instance 0 gets
// no I/O faults because the fleet manifest/journal shares its fault key.
FaultPlan make_storm_plan() {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kInstanceKill, 1, 800});
  plan.triggers.push_back({FaultSite::kInstanceKill, 3, 1200});
  plan.triggers.push_back({FaultSite::kRenameFail, 2, 1});
  plan.triggers.push_back({FaultSite::kNoSpace, 2, 3});
  plan.triggers.push_back({FaultSite::kShortWrite, 2, 5});
  return plan;
}

// Every content hash referenced by any snapshot under `fleet_dir`. These
// are the entries live queues would resolve on a future resume, so the
// offline trim must never drop them (statecheck --corpus treats a dangling
// snapshot ref as data loss).
std::unordered_set<u64> snapshot_pinned(const std::string& fleet_dir) {
  namespace fs = std::filesystem;
  std::unordered_set<u64> pinned;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(
           fleet_dir, fs::directory_options::skip_permission_denied, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec || !it->is_regular_file(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.rfind("snap-", 0) != 0 || name.size() < 9 ||
        name.compare(name.size() - 4, 4, ".bms") != 0) {
      continue;
    }
    std::vector<u8> bytes;
    std::string err;
    if (!persist::read_file(it->path().string(), &bytes, persist::FaultCtx{},
                            &err)) {
      continue;
    }
    persist::DecodeResult dec = persist::decode_snapshot(bytes);
    if (dec.status != persist::LoadStatus::kOk) continue;
    for (const persist::QueueEntrySnap& e : dec.snapshot->entries) {
      if (e.in_store) pinned.insert(e.content_hash);
    }
  }
  return pinned;
}

// Offline maintenance + canonical export; the printed keys are what the
// drill script diffs between baseline and resume.
int finalize_and_print(corpus::CorpusStore& store, const std::string& dir,
                       const SupervisorResult& r) {
  std::string err;
  store.flush_pending(&err);
  const corpus::TrimReport tr = store.trim(snapshot_pinned(dir));
  if (!store.compact(&err)) {
    std::fprintf(stderr, "compact failed: %s\n", err.c_str());
    return 1;
  }
  if (!store.export_canonical(dir + "/corpus.canonical", &err)) {
    std::fprintf(stderr, "canonical export failed: %s\n", err.c_str());
    return 1;
  }

  std::vector<u32> bugs = r.found_bug_ids;
  std::sort(bugs.begin(), bugs.end());
  std::vector<u64> hashes = r.found_stack_hashes;
  std::sort(hashes.begin(), hashes.end());
  std::printf("resumed: %d\n", r.resumed ? 1 : 0);
  std::printf("bug_ids:");
  for (u32 b : bugs) std::printf(" %u", b);
  std::printf("\nstack_hashes:");
  for (u64 h : hashes) std::printf(" %llx", static_cast<unsigned long long>(h));
  std::printf("\ntotal_execs: %llu\n",
              static_cast<unsigned long long>(r.total_execs));
  std::printf("all_completed: %d\n", r.all_completed() ? 1 : 0);
  std::printf("corpus_entries: %llu\n",
              static_cast<unsigned long long>(store.size()));
  std::printf("corpus_crash_rows: %llu\n",
              static_cast<unsigned long long>(store.crash_row_count()));
  std::printf("corpus_trim: scanned=%llu kept=%llu dropped=%llu rare=%llu\n",
              static_cast<unsigned long long>(tr.scanned),
              static_cast<unsigned long long>(tr.kept),
              static_cast<unsigned long long>(tr.dropped),
              static_cast<unsigned long long>(tr.rare_positions));
  std::printf("corpus_digest: %llx\n",
              static_cast<unsigned long long>(store.corpus_digest()));
  std::fflush(stdout);
  return r.all_completed() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  const std::string dir = argc > 2 ? argv[2] : "";
  if ((mode != "baseline" && mode != "run" && mode != "resume") ||
      dir.empty()) {
    std::fprintf(stderr,
                 "usage: corpus_drill baseline <fleet-dir>\n"
                 "       corpus_drill run <fleet-dir>\n"
                 "       corpus_drill resume <fleet-dir>\n");
    return 2;
  }

  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  SupervisorConfig sc = make_config();
  // The fleet store wipes its directory on a fresh start, so the corpus
  // store lives beside it, not inside it.
  sc.persist_dir = dir + "/fleet";
  sc.resume = mode == "resume";

  corpus::CorpusStore store(dir + "/corpus");
  const corpus::OpenReport orep = store.open(/*fresh=*/mode != "resume");
  if (!orep.ok) {
    std::fprintf(stderr, "store open failed: %s\n", orep.error.c_str());
    return 1;
  }
  sc.base.corpus = &store;
  sc.base.corpus_compact_interval = 1500;

  FaultInjector storm(4242, make_storm_plan());
  std::atomic<u32> renames{0};
  if (mode == "run") {
    sc.fault = &storm;
    // Die inside compaction #6 (mid-campaign for every instance), after
    // the pack rename committed but before the WAL reset — recovery must
    // replay the stale WAL idempotently over the fresh pack. Diagnostics
    // go out first: the script asserts the storm actually engaged.
    store.set_compact_hook([&](corpus::CompactPhase phase) {
      if (phase == corpus::CompactPhase::kAfterPackRename &&
          ++renames == 6) {
        // No store calls here: the compacting thread holds the store lock.
        const FaultStats fstats = storm.stats();
        std::fprintf(
            stderr,
            "compact-kill: renames=%u storm kills=%llu io_faults=%llu\n",
            renames.load(),
            static_cast<unsigned long long>(fstats.injected[static_cast<usize>(
                FaultSite::kInstanceKill)]),
            static_cast<unsigned long long>(
                fstats.injected[static_cast<usize>(FaultSite::kRenameFail)] +
                fstats.injected[static_cast<usize>(FaultSite::kNoSpace)] +
                fstats.injected[static_cast<usize>(FaultSite::kShortWrite)]));
        std::fflush(stderr);
        raise(SIGKILL);
      }
      return true;
    });
    std::printf("running: pid %d dir %s\n", static_cast<int>(getpid()),
                dir.c_str());
    std::fflush(stdout);
  }

  SupervisorResult r = run_supervised_campaign(target.program, seeds, sc);
  if (mode == "run") {
    // The compact hook should have killed us long before the budget ran
    // out; reaching here means the chaos never happened.
    std::fprintf(stderr, "run mode completed without the compact-kill\n");
    return 1;
  }
  return finalize_and_print(store, dir, r);
}
