// failover_drill: driver for the self-healing federation chaos drill
// (scripts/failover_chaos_drill.sh). One fixed campaign shape — 8 workers
// over a planted-bug target, deterministic timing — arranged either as one
// local fleet or as a 4-rank failover federation (2 workers per rank, the
// virgin-map oracle gating every link, delta sync on):
//
//   failover_drill single <dir>          one 8-worker fleet, no network —
//                                        the reference find-union and exec
//                                        total every other stage must match
//   failover_drill star4 <dir>           4-rank federation, clean network,
//                                        no failures: epoch stays 1, delta
//                                        sync carries the oracle state
//   failover_drill failover-kill <dir>   rank 0 (the initial leader) is
//                                        SIGKILLed -- whole process group,
//                                        coordinator and workers --
//                                        mid-campaign; the survivors elect
//                                        rank 1 into epoch 2 and re-home;
//                                        the victim is relaunched (resume +
//                                        probe) and REJOINS the new epoch
//                                        as a spoke, finishing its budget
//   failover_drill failover-stale <dir>  same kill, but the victim comes
//                                        back stale-fatal: it must observe
//                                        the newer epoch and latch fenced
//                                        (never re-entering the
//                                        federation), while its local
//                                        fleet still completes its budget
//   failover-drill failover-storm <dir>  the kill plus a seeded network
//                                        storm (drops, delays, torn
//                                        frames, resets) on the survivors
//                                        while they elect
//
// Every stage prints sorted found_bug_ids / found_stack_hashes,
// total_execs, and all_completed in the same diff-friendly format as
// net_drill; failover diagnostics go to stderr. Chaos stages self-check
// that the failure actually engaged (elections fired, the epoch advanced,
// deltas rebuilt the models, the stale node fenced) and exit non-zero when
// the drill proved nothing.
#include <algorithm>
#include <cstdio>
#include <string>

#include "fuzzer/netfleet/federate.h"
#include "fuzzer/procfleet/coordinator.h"
#include "target/generator.h"

using namespace bigmap;
using namespace bigmap::procfleet;
using namespace bigmap::netfleet;

namespace {

GeneratedTarget make_target() {
  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

// Per-rank fleet shape. The single baseline runs 8 workers from seed 501;
// rank r runs 2 workers from seed 501 + 2r, so the union of campaign
// seeds across the federation is exactly the baseline's set {501..508} at
// the same total exec budget. work_per_block stretches the campaign so
// the kill demonstrably lands mid-run.
ProcFleetConfig make_config(const std::string& dir, u32 workers, u64 seed) {
  ProcFleetConfig fc;
  fc.num_workers = workers;
  fc.base.scheme = MapScheme::kTwoLevel;
  fc.base.map.map_size = 1u << 16;
  fc.base.map.huge_pages = false;
  fc.base.max_execs = 10000;
  fc.base.seed = seed;
  fc.base.sync_interval = 1024;
  fc.base.deterministic_timing = true;
  fc.base.work_per_block = 300;
  fc.poll_ms = 2;
  fc.stall_deadline_ms = 600;
  fc.max_restarts_per_worker = 10;
  fc.backoff_initial_ms = 5;
  fc.backoff_cap_ms = 50;
  fc.checkpoint_interval = 512;
  fc.persist_dir = dir;
  fc.quarantine_deaths = 0;  // equality drill: no degraded parking
  return fc;
}

// The election storm: sustained frame loss and delay plus torn frames and
// abrupt resets — but NO partition. A partition outlasting
// election_timeout_ms is documented to cause a spurious election (the
// spoke cannot distinguish a cut from a dead leader); the storm stage
// proves elections survive a hostile wire, not that contract.
FaultPlan make_storm_plan() {
  FaultPlan plan;
  plan.rates.push_back({FaultSite::kNetDrop, 100000, FaultRate::kAllInstances});
  plan.rates.push_back(
      {FaultSite::kNetDelay, 80000, FaultRate::kAllInstances});
  plan.triggers.push_back({FaultSite::kNetShortWrite, 2, 3});
  plan.triggers.push_back({FaultSite::kNetConnReset, 2, 60});
  return plan;
}

void print_union(const std::vector<u32>& bugs_in,
                 const std::vector<u64>& hashes_in, u64 execs,
                 bool completed) {
  std::vector<u32> bugs = bugs_in;
  std::sort(bugs.begin(), bugs.end());
  std::vector<u64> hashes = hashes_in;
  std::sort(hashes.begin(), hashes.end());
  std::printf("bug_ids:");
  for (u32 b : bugs) std::printf(" %u", b);
  std::printf("\nstack_hashes:");
  for (u64 h : hashes) {
    std::printf(" %llx", static_cast<unsigned long long>(h));
  }
  std::printf("\ntotal_execs: %llu\n", static_cast<unsigned long long>(execs));
  std::printf("all_completed: %d\n", completed ? 1 : 0);
  std::fflush(stdout);
}

void print_failover_diag(usize rank, const HalfReport& r) {
  const FailoverStats& f = r.failover;
  std::fprintf(
      stderr,
      "[rank-%zu] epoch=%llu role=%u leader=%u elections=%llu "
      "promotions=%llu rehomes=%llu rejoins=%llu fenced=%llu "
      "handoff=%llu dups=%llu deltas_shipped=%llu deltas_applied=%llu "
      "net: sent=%llu recv=%llu d_sent=%llu d_recv=%llu resyncs=%llu "
      "resync_skipped=%llu stale_hellos=%llu ahead_seen=%llu "
      "reconnects=%llu oracle: checked=%llu applied_cells=%llu\n",
      rank, static_cast<unsigned long long>(f.epoch), f.role, f.leader_rank,
      static_cast<unsigned long long>(f.elections),
      static_cast<unsigned long long>(f.promotions),
      static_cast<unsigned long long>(f.rehomes),
      static_cast<unsigned long long>(f.rejoins),
      static_cast<unsigned long long>(f.fenced),
      static_cast<unsigned long long>(f.handoff_reoffered),
      static_cast<unsigned long long>(f.dup_suppressed),
      static_cast<unsigned long long>(f.deltas_shipped),
      static_cast<unsigned long long>(f.deltas_applied),
      static_cast<unsigned long long>(r.net.records_sent),
      static_cast<unsigned long long>(r.net.records_received),
      static_cast<unsigned long long>(r.net.deltas_sent),
      static_cast<unsigned long long>(r.net.deltas_received),
      static_cast<unsigned long long>(r.net.resyncs_sent),
      static_cast<unsigned long long>(r.net.resync_skipped),
      static_cast<unsigned long long>(r.net.stale_hellos_dropped),
      static_cast<unsigned long long>(r.net.epoch_ahead_seen),
      static_cast<unsigned long long>(r.net.reconnects),
      static_cast<unsigned long long>(r.oracle.checked),
      static_cast<unsigned long long>(r.oracle.cells_applied));
}

int run_federation(const GeneratedTarget& target,
                   const std::vector<Input>& seeds, const std::string& mode,
                   const std::string& dir) {
  constexpr usize kRanks = 4;
  std::vector<ProcFleetConfig> nodes;
  for (usize i = 0; i < kRanks; ++i) {
    nodes.push_back(
        make_config(dir + "/r" + std::to_string(i), 2, 501 + 2 * i));
  }
  for (ProcFleetConfig& fc : nodes) {
    fc.net_virgin_oracle = true;  // delta sync needs per-peer models
    fc.failover.link.heartbeat_ms = 20;
    fc.failover.link.peer_timeout_ms = 400;
    fc.failover.link.reconnect_initial_ms = 5;
    fc.failover.link.reconnect_cap_ms = 100;
    fc.failover.election_timeout_ms = 600;
    fc.failover.delta_interval_ms = 30;
  }

  FailoverDrillOpts opts;
  if (mode != "star4") {
    opts.kill_rank = 0;  // the initial leader
    opts.kill_after_ms = 900;
    opts.resurrect_after_ms = 600;
    opts.resurrect = mode == "failover-stale"
                         ? FailoverDrillOpts::Resurrect::kStale
                         : FailoverDrillOpts::Resurrect::kRejoin;
  }
  if (mode == "failover-storm") {
    // Seeded chaos on the survivors' gateways while they detect the death
    // and elect; decorrelated seeds so the ranks fail at different times.
    for (usize i = 1; i < kRanks; ++i) {
      nodes[i].fault_enabled = true;
      nodes[i].fault_seed = 920 + i;
      nodes[i].fault_plan = make_storm_plan();
    }
  }

  FailoverStarResult fr =
      run_failover_star(target.program, seeds, nodes, opts);
  if (!fr.ok) {
    std::fprintf(stderr, "failover_drill: %s\n", fr.error.c_str());
    return 1;
  }

  u64 elections = 0, promotions = 0, deltas_applied = 0, records = 0;
  u64 max_epoch = 0, injected = 0;
  for (usize i = 0; i < fr.nodes.size(); ++i) {
    const HalfReport& r = fr.nodes[i];
    print_failover_diag(i, r);
    elections += r.failover.elections;
    promotions += r.failover.promotions;
    deltas_applied += r.failover.deltas_applied;
    records += r.net.records_sent;
    max_epoch = std::max(max_epoch, r.failover.epoch);
    injected += r.net.injected_drops + r.net.injected_delays +
                r.net.injected_short_writes + r.net.injected_resets;
  }
  print_union(fr.found_bug_ids, fr.found_stack_hashes, fr.total_execs,
              fr.all_completed);

  // Self-checks: each stage must prove what it claims.
  if (records == 0) {
    std::fprintf(stderr, "failover_drill: no corpus exchange happened\n");
    return 3;
  }
  if (deltas_applied == 0) {
    std::fprintf(stderr, "failover_drill: delta sync never engaged\n");
    return 3;
  }
  if (mode == "star4") {
    if (elections != 0 || max_epoch != 1) {
      std::fprintf(stderr,
                   "failover_drill: clean run elected (epoch=%llu)\n",
                   static_cast<unsigned long long>(max_epoch));
      return 3;
    }
  } else {
    if (elections == 0 || promotions == 0 || max_epoch < 2) {
      std::fprintf(stderr,
                   "failover_drill: the kill forced no election "
                   "(elections=%llu promotions=%llu epoch=%llu)\n",
                   static_cast<unsigned long long>(elections),
                   static_cast<unsigned long long>(promotions),
                   static_cast<unsigned long long>(max_epoch));
      return 3;
    }
    const FailoverStats& victim = fr.nodes[0].failover;
    if (mode == "failover-stale") {
      // The resurrected stale leader must have latched fenced (role 3),
      // never rejoining — and still completed its local budget.
      if (victim.fenced != 1 || victim.role != 3) {
        std::fprintf(stderr,
                     "failover_drill: stale leader not fenced "
                     "(fenced=%llu role=%u)\n",
                     static_cast<unsigned long long>(victim.fenced),
                     victim.role);
        return 3;
      }
    } else {
      // Rejoin modes: the victim must have re-entered the NEW epoch.
      if (victim.rejoins == 0 || victim.epoch < 2 || victim.fenced != 0) {
        std::fprintf(stderr,
                     "failover_drill: victim never rejoined "
                     "(rejoins=%llu epoch=%llu)\n",
                     static_cast<unsigned long long>(victim.rejoins),
                     static_cast<unsigned long long>(victim.epoch));
        return 3;
      }
    }
    if (mode == "failover-storm" && injected == 0) {
      std::fprintf(stderr, "failover_drill: storm injected no faults\n");
      return 3;
    }
  }
  return fr.all_completed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  const std::string dir = argc > 2 ? argv[2] : "";
  const bool known = mode == "single" || mode == "star4" ||
                     mode == "failover-kill" || mode == "failover-stale" ||
                     mode == "failover-storm";
  if (!known || dir.empty()) {
    std::fprintf(stderr,
                 "usage: failover_drill single <dir>\n"
                 "       failover_drill star4 <dir>\n"
                 "       failover_drill failover-kill <dir>\n"
                 "       failover_drill failover-stale <dir>\n"
                 "       failover_drill failover-storm <dir>\n");
    return 2;
  }

  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  if (mode == "single") {
    ProcFleetConfig fc = make_config(dir, 8, 501);
    ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
    print_union(r.found_bug_ids, r.found_stack_hashes, r.total_execs,
                r.all_completed());
    return r.all_completed() ? 0 : 1;
  }
  return run_federation(target, seeds, mode, dir);
}
