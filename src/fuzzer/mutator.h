// AFL mutation engine: deterministic stages and the havoc/splice stage.
//
// The paper's experiments skip the deterministic stage (standard for short
// runs) and rely on havoc, but both are implemented: deterministic stages
// are used by tests and available to campaigns via configuration.
//
// Havoc applies a random stack of the classic AFL operators: bit flips,
// interesting-value substitution, arithmetic, random bytes, block deletion,
// duplication and overwrite, and dictionary token insertion. splice()
// implements AFL's splicing: crossing the input with another queue entry at
// a random point, then havocing the result (the caller runs havoc on the
// spliced output).
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "fuzzer/queue.h"
#include "util/rng.h"
#include "util/types.h"

namespace bigmap {

// AFL's "interesting" substitution constants.
std::span<const i8> interesting_8() noexcept;
std::span<const i16> interesting_16() noexcept;
std::span<const i32> interesting_32() noexcept;

class Mutator {
 public:
  struct Options {
    usize max_input_size = 1u << 14;
    u32 havoc_stack_pow = 4;  // stack 1..2^pow operations per havoc round
    std::vector<std::vector<u8>> dictionary;
  };

  Mutator(Options opts, u64 seed) : opts_(std::move(opts)), rng_(seed) {}

  // --- havoc stage -----------------------------------------------------------

  // Applies a random stack of havoc operators to `input` in place.
  void havoc(Input& input);

  // AFL splice: returns input[0..a) + other[b..end) for random interior cut
  // points, or std::nullopt when either buffer is too small to splice.
  std::optional<Input> splice(std::span<const u8> input,
                              std::span<const u8> other);

  // --- deterministic stages --------------------------------------------------
  //
  // Each enumerates every variant of `base` for one operator family and
  // invokes `sink(const Input&)` per variant. Returns variants produced.

  template <class Sink>
  usize det_bitflips(const Input& base, u32 width_bits, Sink&& sink);

  // Walking byte flips (XOR 0xFF) over windows of 1/2/4 bytes (AFL's
  // bitflip 8/8, 16/8, 32/8 stages).
  template <class Sink>
  usize det_byteflips(const Input& base, u32 width_bytes, Sink&& sink);

  template <class Sink>
  usize det_arith8(const Input& base, Sink&& sink);

  // 16/32-bit arithmetic, little- and big-endian (AFL's arith 16/8 and
  // 32/8 stages).
  template <class Sink>
  usize det_arith16(const Input& base, Sink&& sink);
  template <class Sink>
  usize det_arith32(const Input& base, Sink&& sink);

  template <class Sink>
  usize det_interesting8(const Input& base, Sink&& sink);

  // 16/32-bit interesting-value substitution, both endiannesses.
  template <class Sink>
  usize det_interesting16(const Input& base, Sink&& sink);
  template <class Sink>
  usize det_interesting32(const Input& base, Sink&& sink);

  // Dictionary overwrite at every position (AFL's user-extras stage).
  template <class Sink>
  usize det_dictionary(const Input& base, Sink&& sink);

  Xoshiro256& rng() noexcept { return rng_; }
  const Xoshiro256& rng() const noexcept { return rng_; }
  const Options& options() const noexcept { return opts_; }

 private:
  void havoc_one(Input& input);

  Options opts_;
  Xoshiro256 rng_;
};

// --- template implementations -------------------------------------------------

template <class Sink>
usize Mutator::det_bitflips(const Input& base, u32 width_bits, Sink&& sink) {
  if (base.empty()) return 0;
  const usize total_bits = base.size() * 8;
  if (total_bits < width_bits) return 0;
  usize produced = 0;
  Input work = base;
  for (usize bit = 0; bit + width_bits <= total_bits; ++bit) {
    for (u32 w = 0; w < width_bits; ++w) {
      work[(bit + w) >> 3] ^= static_cast<u8>(128 >> ((bit + w) & 7));
    }
    sink(const_cast<const Input&>(work));
    ++produced;
    for (u32 w = 0; w < width_bits; ++w) {
      work[(bit + w) >> 3] ^= static_cast<u8>(128 >> ((bit + w) & 7));
    }
  }
  return produced;
}

template <class Sink>
usize Mutator::det_byteflips(const Input& base, u32 width_bytes,
                             Sink&& sink) {
  if (base.size() < width_bytes) return 0;
  usize produced = 0;
  Input work = base;
  for (usize i = 0; i + width_bytes <= base.size(); ++i) {
    for (u32 w = 0; w < width_bytes; ++w) work[i + w] ^= 0xFF;
    sink(const_cast<const Input&>(work));
    ++produced;
    for (u32 w = 0; w < width_bytes; ++w) work[i + w] ^= 0xFF;
  }
  return produced;
}

template <class Sink>
usize Mutator::det_arith8(const Input& base, Sink&& sink) {
  constexpr int kArithMax = 35;  // AFL's ARITH_MAX
  usize produced = 0;
  Input work = base;
  for (usize i = 0; i < base.size(); ++i) {
    const u8 orig = base[i];
    for (int d = 1; d <= kArithMax; ++d) {
      work[i] = static_cast<u8>(orig + d);
      sink(const_cast<const Input&>(work));
      work[i] = static_cast<u8>(orig - d);
      sink(const_cast<const Input&>(work));
      produced += 2;
    }
    work[i] = orig;
  }
  return produced;
}

namespace mutator_detail {

inline u16 bswap16(u16 v) noexcept { return static_cast<u16>((v >> 8) | (v << 8)); }
inline u32 bswap32(u32 v) noexcept { return __builtin_bswap32(v); }

// Word-wide deterministic stage skeleton: loads a word at every position,
// applies `variants(orig, emit)` where emit(word) writes it back (both
// endiannesses are the caller's concern), restores, continues.
template <class Word, class Variants, class Sink>
usize det_word_stage(const Input& base, Variants&& variants, Sink&& sink) {
  if (base.size() < sizeof(Word)) return 0;
  usize produced = 0;
  Input work = base;
  for (usize i = 0; i + sizeof(Word) <= base.size(); ++i) {
    Word orig;
    std::memcpy(&orig, &work[i], sizeof(Word));
    auto emit = [&](Word v) {
      std::memcpy(&work[i], &v, sizeof(Word));
      sink(const_cast<const Input&>(work));
      ++produced;
    };
    variants(orig, emit);
    std::memcpy(&work[i], &orig, sizeof(Word));
  }
  return produced;
}

}  // namespace mutator_detail

template <class Sink>
usize Mutator::det_arith16(const Input& base, Sink&& sink) {
  using mutator_detail::bswap16;
  return mutator_detail::det_word_stage<u16>(
      base,
      [](u16 orig, auto&& emit) {
        for (u16 d = 1; d <= 35; ++d) {
          emit(static_cast<u16>(orig + d));
          emit(static_cast<u16>(orig - d));
          // Big-endian view: operate on the swapped value, store swapped
          // back (AFL's arith 16/8 BE pass).
          emit(bswap16(static_cast<u16>(bswap16(orig) + d)));
          emit(bswap16(static_cast<u16>(bswap16(orig) - d)));
        }
      },
      sink);
}

template <class Sink>
usize Mutator::det_arith32(const Input& base, Sink&& sink) {
  using mutator_detail::bswap32;
  return mutator_detail::det_word_stage<u32>(
      base,
      [](u32 orig, auto&& emit) {
        for (u32 d = 1; d <= 35; ++d) {
          emit(orig + d);
          emit(orig - d);
          emit(bswap32(bswap32(orig) + d));
          emit(bswap32(bswap32(orig) - d));
        }
      },
      sink);
}

template <class Sink>
usize Mutator::det_interesting16(const Input& base, Sink&& sink) {
  using mutator_detail::bswap16;
  return mutator_detail::det_word_stage<u16>(
      base,
      [](u16, auto&& emit) {
        for (i16 v : interesting_16()) {
          emit(static_cast<u16>(v));
          emit(bswap16(static_cast<u16>(v)));
        }
      },
      sink);
}

template <class Sink>
usize Mutator::det_interesting32(const Input& base, Sink&& sink) {
  using mutator_detail::bswap32;
  return mutator_detail::det_word_stage<u32>(
      base,
      [](u32, auto&& emit) {
        for (i32 v : interesting_32()) {
          emit(static_cast<u32>(v));
          emit(bswap32(static_cast<u32>(v)));
        }
      },
      sink);
}

template <class Sink>
usize Mutator::det_dictionary(const Input& base, Sink&& sink) {
  usize produced = 0;
  Input work = base;
  for (const auto& token : opts_.dictionary) {
    if (token.empty() || token.size() > base.size()) continue;
    for (usize i = 0; i + token.size() <= base.size(); ++i) {
      std::memcpy(&work[i], token.data(), token.size());
      sink(const_cast<const Input&>(work));
      ++produced;
      std::memcpy(&work[i], &base[i], token.size());
    }
  }
  return produced;
}

template <class Sink>
usize Mutator::det_interesting8(const Input& base, Sink&& sink) {
  usize produced = 0;
  Input work = base;
  for (usize i = 0; i < base.size(); ++i) {
    const u8 orig = base[i];
    for (i8 v : interesting_8()) {
      work[i] = static_cast<u8>(v);
      sink(const_cast<const Input&>(work));
      ++produced;
    }
    work[i] = orig;
  }
  return produced;
}

}  // namespace bigmap
