// Corpus synchronization hub for parallel fuzzing (§V-D).
//
// Real AFL instances synchronize through an output directory that each
// secondary periodically scans for other fuzzers' queue entries. SyncHub is
// the in-process equivalent: a shared, mutex-protected log of interesting
// inputs tagged with the publishing instance. Each instance keeps a cursor
// and fetches everything new that others published.
//
// Hardened for long real-thread campaigns under supervision:
//  - instance ids are validated (publish/fetch with a bad id throws instead
//    of indexing out of bounds);
//  - oversized inputs are rejected rather than queued;
//  - the retained log is bounded: old records are evicted in eviction
//    epochs, cursors are absolute indices into the lifetime stream, and a
//    laggard whose cursor fell behind the eviction frontier has the gap
//    counted as `missed` backpressure instead of silently re-reading freed
//    slots;
//  - total_published() reports the lifetime accepted count, not live size;
//  - reset_cursor() re-opens the retained window for a restarted instance
//    so it can re-import everything still held (supervisor restart path);
//  - an optional FaultInjector drops publishes deterministically
//    (FaultSite::kPublishDrop) for recovery testing.
//
// The master/secondary distinction of the paper's setup is carried in
// CampaignConfig (the master would run the deterministic stage; all the
// paper's runs skip it for 24h campaigns).
#pragma once

#include <deque>
#include <mutex>
#include <vector>

#include "fuzzer/queue.h"
#include "util/fault.h"
#include "util/types.h"

namespace bigmap {

struct SyncHubOptions {
  u32 num_instances = 1;
  // Retained-log cap; once exceeded the oldest records are evicted
  // (0 = unbounded, the pre-supervision behaviour).
  usize max_records = 1u << 14;
  // Publishes larger than this are rejected (0 = no limit).
  usize max_input_size = 1u << 20;
};

// Backpressure / health accounting, snapshotted under the hub lock.
struct SyncHubStats {
  u64 total_published = 0;    // lifetime accepted publishes
  u64 evicted = 0;            // records dropped by the log bound
  usize live_records = 0;     // currently retained
  u64 rejected_oversize = 0;  // publishes over max_input_size
  u64 dropped_faults = 0;     // publishes lost to injected faults
  u64 fetched = 0;            // records handed out by fetch_new
  // Consumer reads that hit the bounded wait on a reserved-but-uncommitted
  // record and skipped past it. Only the cross-process hub (ShmHub) can
  // ever bump this: a publisher process can die between reserving a slot
  // and committing it, and a reader must not wedge on the dead record. The
  // in-process SyncHub publishes under a mutex that exception unwinding
  // always releases, so it is wedge-free by construction and reports 0.
  u64 reader_timeouts = 0;
  // Per instance: records evicted before the instance fetched them.
  std::vector<u64> missed;
};

// Corpus-synchronization interface the campaign publishes/imports through.
// Two implementations: the in-process SyncHub below (thread fleets) and the
// shared-memory ShmHub (src/fuzzer/procfleet, process fleets). The campaign
// only sees this interface, so the same fuzzing loop runs under both fleet
// runtimes unchanged.
class SyncEndpoint {
 public:
  virtual ~SyncEndpoint() = default;

  virtual u32 num_instances() const noexcept = 0;

  // Publishes an interesting input found by `instance`. Returns true when
  // the record was accepted, false when it was rejected or dropped. Throws
  // std::out_of_range on a bad id.
  virtual bool publish(u32 instance, Input input) = 0;

  // Returns all inputs published by *other* instances since this instance's
  // previous fetch. Throws std::out_of_range on a bad id.
  virtual std::vector<Input> fetch_new(u32 instance) = 0;

  // Rewinds `instance`'s cursor to the eviction frontier so a restarted
  // instance re-imports every record still retained.
  virtual void reset_cursor(u32 instance) = 0;

  // Lifetime count of accepted publishes (monotone).
  virtual u64 total_published() const = 0;

  virtual SyncHubStats stats() const = 0;
};

class SyncHub final : public SyncEndpoint {
 public:
  explicit SyncHub(u32 num_instances)
      : SyncHub(SyncHubOptions{num_instances}) {}
  explicit SyncHub(const SyncHubOptions& options);

  u32 num_instances() const noexcept override {
    return static_cast<u32>(cursors_.size());
  }
  const SyncHubOptions& options() const noexcept { return opts_; }

  // Deterministically drops publishes via FaultSite::kPublishDrop when set.
  void set_fault_injector(FaultInjector* fault) noexcept { fault_ = fault; }

  // Publishes an interesting input found by `instance`. Returns true when
  // the record was accepted, false when it was rejected (oversize) or
  // dropped by fault injection. Throws std::out_of_range on a bad id.
  bool publish(u32 instance, Input input) override;

  // Returns all inputs published by *other* instances since this
  // instance's previous fetch. Records evicted before this instance got to
  // them are counted as missed. Throws std::out_of_range on a bad id.
  std::vector<Input> fetch_new(u32 instance) override;

  // Rewinds `instance`'s cursor to the eviction frontier so a restarted
  // instance re-imports every record still retained (its in-memory queue
  // died with it). Throws std::out_of_range on a bad id.
  void reset_cursor(u32 instance) override;

  // Lifetime count of accepted publishes (monotone; unaffected by
  // eviction).
  u64 total_published() const override;

  SyncHubStats stats() const override;

 private:
  struct Record {
    u32 publisher;
    Input data;
  };

  void check_instance(u32 instance) const;  // caller holds mu_

  const SyncHubOptions opts_;
  FaultInjector* fault_ = nullptr;

  mutable std::mutex mu_;
  std::deque<Record> log_;
  // Absolute index of log_.front() in the lifetime stream; cursors are
  // absolute too, so eviction never aliases old records onto new ones.
  u64 base_ = 0;
  std::vector<u64> cursors_;
  SyncHubStats stats_;
};

}  // namespace bigmap
