// Corpus synchronization hub for parallel fuzzing (§V-D).
//
// Real AFL instances synchronize through an output directory that each
// secondary periodically scans for other fuzzers' queue entries. SyncHub is
// the in-process equivalent: a shared, mutex-protected append-only log of
// interesting inputs tagged with the publishing instance. Each instance
// keeps a cursor and fetches everything new that others published.
//
// The master/secondary distinction of the paper's setup is carried in
// CampaignConfig (the master would run the deterministic stage; all the
// paper's runs skip it for 24h campaigns).
#pragma once

#include <mutex>
#include <vector>

#include "fuzzer/queue.h"
#include "util/types.h"

namespace bigmap {

class SyncHub {
 public:
  explicit SyncHub(u32 num_instances) : cursors_(num_instances, 0) {}

  u32 num_instances() const noexcept {
    return static_cast<u32>(cursors_.size());
  }

  // Publishes an interesting input found by `instance`.
  void publish(u32 instance, Input input) {
    std::lock_guard<std::mutex> lock(mu_);
    log_.push_back({instance, std::move(input)});
  }

  // Returns all inputs published by *other* instances since this
  // instance's previous fetch.
  std::vector<Input> fetch_new(u32 instance) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Input> out;
    usize& cursor = cursors_[instance];
    for (; cursor < log_.size(); ++cursor) {
      if (log_[cursor].publisher != instance) {
        out.push_back(log_[cursor].data);
      }
    }
    return out;
  }

  usize total_published() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_.size();
  }

 private:
  struct Record {
    u32 publisher;
    Input data;
  };

  mutable std::mutex mu_;
  std::vector<Record> log_;
  std::vector<usize> cursors_;
};

}  // namespace bigmap
