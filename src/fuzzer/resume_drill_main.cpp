// resume_drill: driver for the whole-process crash-recovery drill
// (scripts/crash_recovery_drill.sh). Three modes over one fixed fleet
// configuration (4 instances, planted-bug target, deterministic timing):
//
//   resume_drill baseline            fault-free run, no persistence — the
//                                    reference crash union and exec total
//   resume_drill run <dir>           fresh persisted run, slowed down so an
//                                    external SIGKILL lands mid-campaign
//   resume_drill resume <dir>        relaunch after the kill; replays the
//                                    fleet journal and finishes the budget
//
// Every mode prints the sorted found_bug_ids / found_stack_hashes and
// total_execs in a diff-friendly format; the drill passes when the resume
// output matches the baseline exactly (find-union semantics and the exec
// budget both survive the kill).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "fuzzer/supervisor.h"
#include "target/generator.h"

using namespace bigmap;

namespace {

GeneratedTarget make_target() {
  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

SupervisorConfig make_config() {
  SupervisorConfig sc;
  sc.num_instances = 4;
  sc.base.scheme = MapScheme::kTwoLevel;
  sc.base.map.map_size = 1u << 16;
  sc.base.map.huge_pages = false;
  sc.base.max_execs = 10000;
  sc.base.seed = 501;
  sc.base.sync_interval = 1024;
  sc.base.deterministic_timing = true;
  sc.poll_ms = 2;
  sc.stall_deadline_ms = 2000;
  sc.max_restarts_per_instance = 3;
  sc.backoff_initial_ms = 5;
  sc.backoff_cap_ms = 50;
  sc.checkpoint_interval = 512;
  return sc;
}

void print_result(const SupervisorResult& r) {
  std::vector<u32> bugs = r.found_bug_ids;
  std::sort(bugs.begin(), bugs.end());
  std::vector<u64> hashes = r.found_stack_hashes;
  std::sort(hashes.begin(), hashes.end());

  std::printf("bug_ids:");
  for (u32 b : bugs) std::printf(" %u", b);
  std::printf("\nstack_hashes:");
  for (u64 h : hashes) std::printf(" %llx", static_cast<unsigned long long>(h));
  std::printf("\ntotal_execs: %llu\n",
              static_cast<unsigned long long>(r.total_execs));
  std::printf("all_completed: %d\n", r.all_completed() ? 1 : 0);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  const std::string dir = argc > 2 ? argv[2] : "";
  if (mode == "baseline") {
    // no persistence: pure reference run
  } else if ((mode == "run" || mode == "resume") && !dir.empty()) {
    // persisted modes need the fleet directory
  } else {
    std::fprintf(stderr,
                 "usage: resume_drill baseline\n"
                 "       resume_drill run <fleet-dir>\n"
                 "       resume_drill resume <fleet-dir>\n");
    return 2;
  }

  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  SupervisorConfig sc = make_config();
  if (mode != "baseline") sc.persist_dir = dir;
  if (mode == "resume") sc.resume = true;
  if (mode == "run") {
    // Heavy per-block work stretches the run to many seconds so the drill
    // script's SIGKILL reliably lands mid-campaign, with several
    // checkpoints already committed. Exec counts are work-independent
    // (deterministic timing), so the budget comparison still holds.
    sc.base.work_per_block = 600;
    std::printf("running: pid %d dir %s\n", static_cast<int>(getpid()),
                dir.c_str());
    std::fflush(stdout);
  }

  SupervisorResult r = run_supervised_campaign(target.program, seeds, sc);
  std::printf("resumed: %d\n", r.resumed ? 1 : 0);
  print_result(r);
  return r.all_completed() ? 0 : 1;
}
