#include "fuzzer/mutator.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace bigmap {
namespace {

constexpr std::array<i8, 9> kInteresting8 = {-128, -1, 0,  1,  16,
                                             32,   64, 100, 127};
constexpr std::array<i16, 10> kInteresting16 = {
    -32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767};
constexpr std::array<i32, 8> kInteresting32 = {
    INT32_MIN, -100663046, -32769, 32768, 65535, 65536, 100663045, INT32_MAX};

}  // namespace

std::span<const i8> interesting_8() noexcept { return kInteresting8; }
std::span<const i16> interesting_16() noexcept { return kInteresting16; }
std::span<const i32> interesting_32() noexcept { return kInteresting32; }

void Mutator::havoc(Input& input) {
  const u32 stack = 1u << rng_.between(1, opts_.havoc_stack_pow);
  for (u32 s = 0; s < stack; ++s) havoc_one(input);
  if (input.empty()) input.push_back(static_cast<u8>(rng_.below(256)));
}

void Mutator::havoc_one(Input& input) {
  if (input.empty()) {
    input.push_back(static_cast<u8>(rng_.below(256)));
    return;
  }
  const u32 len = static_cast<u32>(input.size());

  switch (rng_.below(15)) {
    case 0: {  // flip a random bit
      const u32 bit = rng_.below(len * 8);
      input[bit >> 3] ^= static_cast<u8>(1u << (bit & 7));
      break;
    }
    case 1: {  // set byte to interesting value
      input[rng_.below(len)] = static_cast<u8>(
          kInteresting8[rng_.below(kInteresting8.size())]);
      break;
    }
    case 2: {  // set 16-bit word to interesting value
      if (len < 2) break;
      const u32 pos = rng_.below(len - 1);
      const i16 v = kInteresting16[rng_.below(kInteresting16.size())];
      std::memcpy(&input[pos], &v, 2);
      break;
    }
    case 3: {  // set 32-bit word to interesting value
      if (len < 4) break;
      const u32 pos = rng_.below(len - 3);
      const i32 v = kInteresting32[rng_.below(kInteresting32.size())];
      std::memcpy(&input[pos], &v, 4);
      break;
    }
    case 4: {  // subtract from byte
      input[rng_.below(len)] -= static_cast<u8>(1 + rng_.below(35));
      break;
    }
    case 5: {  // add to byte
      input[rng_.below(len)] += static_cast<u8>(1 + rng_.below(35));
      break;
    }
    case 6: {  // add/sub to 16-bit word
      if (len < 2) break;
      const u32 pos = rng_.below(len - 1);
      u16 v;
      std::memcpy(&v, &input[pos], 2);
      v = rng_.chance(1, 2) ? static_cast<u16>(v + 1 + rng_.below(35))
                            : static_cast<u16>(v - 1 - rng_.below(35));
      std::memcpy(&input[pos], &v, 2);
      break;
    }
    case 7: {  // randomize byte (xor with non-zero)
      input[rng_.below(len)] ^= static_cast<u8>(1 + rng_.below(255));
      break;
    }
    case 8: {  // delete block
      if (len < 2) break;
      const u32 del_len = 1 + rng_.below(std::min(len - 1, 64u));
      const u32 pos = rng_.below(len - del_len + 1);
      input.erase(input.begin() + pos, input.begin() + pos + del_len);
      break;
    }
    case 9: {  // clone block (insert copy)
      if (input.size() >= opts_.max_input_size) break;
      const u32 clone_len = 1 + rng_.below(std::min(len, 64u));
      const u32 from = rng_.below(len - clone_len + 1);
      const u32 to = rng_.below(len + 1);
      Input block(input.begin() + from, input.begin() + from + clone_len);
      input.insert(input.begin() + to, block.begin(), block.end());
      break;
    }
    case 10: {  // overwrite block with copy of another block
      if (len < 2) break;
      const u32 copy_len = 1 + rng_.below(std::min(len - 1, 64u));
      const u32 from = rng_.below(len - copy_len + 1);
      const u32 to = rng_.below(len - copy_len + 1);
      if (from != to) {
        std::memmove(&input[to], &input[from], copy_len);
      }
      break;
    }
    case 11: {  // overwrite block with constant byte
      const u32 blk_len = 1 + rng_.below(std::min(len, 32u));
      const u32 pos = rng_.below(len - blk_len + 1);
      std::memset(&input[pos], static_cast<int>(rng_.below(256)), blk_len);
      break;
    }
    case 12: {  // dictionary: overwrite with token
      if (opts_.dictionary.empty()) break;
      const auto& tok = opts_.dictionary[rng_.below(
          static_cast<u32>(opts_.dictionary.size()))];
      if (tok.empty() || tok.size() > input.size()) break;
      const u32 pos =
          rng_.below(static_cast<u32>(input.size() - tok.size() + 1));
      std::memcpy(&input[pos], tok.data(), tok.size());
      break;
    }
    case 13: {  // dictionary: insert token
      if (opts_.dictionary.empty() ||
          input.size() >= opts_.max_input_size) {
        break;
      }
      const auto& tok = opts_.dictionary[rng_.below(
          static_cast<u32>(opts_.dictionary.size()))];
      if (tok.empty()) break;
      const u32 pos = rng_.below(len + 1);
      input.insert(input.begin() + pos, tok.begin(), tok.end());
      break;
    }
    case 14: {  // swap two bytes
      if (len < 2) break;
      const u32 a = rng_.below(len);
      const u32 b = rng_.below(len);
      std::swap(input[a], input[b]);
      break;
    }
  }

  if (input.size() > opts_.max_input_size) {
    input.resize(opts_.max_input_size);
  }
}

std::optional<Input> Mutator::splice(std::span<const u8> input,
                                     std::span<const u8> other) {
  if (input.size() < 4 || other.size() < 4) return std::nullopt;
  // AFL picks split points inside the differing region; a uniform interior
  // cut preserves the operator's character without the diff scan.
  const u32 cut_a = 1 + rng_.below(static_cast<u32>(input.size() - 2));
  const u32 cut_b = 1 + rng_.below(static_cast<u32>(other.size() - 2));
  Input out;
  out.reserve(cut_a + (other.size() - cut_b));
  out.insert(out.end(), input.begin(), input.begin() + cut_a);
  out.insert(out.end(), other.begin() + cut_b, other.end());
  if (out.size() > opts_.max_input_size) out.resize(opts_.max_input_size);
  return out;
}

}  // namespace bigmap
