// Seed queue: AFL's corpus with favored-entry culling and perf scoring.
//
// Mirrors AFL's queue mechanics at the level that matters for the paper's
// measurements:
//
//  - top_rated: for every coverage-map position, the "best" (fastest x
//    smallest) entry covering it. Maintained by update_scores(), which — as
//    in AFL — scans the whole trace bitmap for interesting entries. Under
//    the flat scheme that scan covers the full map; under BigMap only the
//    used region (the paper's "rank update" §IV-B). The caller passes the
//    span to scan, so the asymmetry falls out naturally.
//  - cull(): marks the minimal favored set covering all seen positions.
//  - perf_score(): AFL's calculate_score flavor — rewards fast, small,
//    deep entries with more havoc iterations.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "util/types.h"

namespace bigmap {

using Input = std::vector<u8>;

struct QueueEntry {
  Input data;
  u64 exec_ns = 0;     // measured execution time
  u32 bitmap_hash = 0; // hash of the classified trace when added
  u32 depth = 0;       // mutation ancestry depth
  bool favored = false;
  bool was_fuzzed = false;
  u64 times_selected = 0;
};

class SeedQueue {
 public:
  // `map_positions`: size of the coverage space used for top_rated
  // bookkeeping (full map size for AFL, condensed size for BigMap).
  explicit SeedQueue(usize map_positions);

  // Appends an entry; returns its index.
  usize add(Input data, u64 exec_ns, u32 bitmap_hash, u32 depth);

  usize size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  QueueEntry& entry(usize idx) noexcept { return *entries_[idx]; }
  const QueueEntry& entry(usize idx) const noexcept { return *entries_[idx]; }

  // AFL's update_bitmap_score: called for a just-added interesting entry
  // with its classified trace. For every position set in `trace`, the entry
  // competes for top_rated by fav_factor = exec_ns * len. The span length
  // embodies the flat/condensed asymmetry.
  void update_scores(usize entry_idx, std::span<const u8> trace);

  // AFL's cull_queue: recompute the favored set. Cheap relative to
  // update_scores; call before each queue cycle.
  void cull();

  // AFL's calculate_score, condensed: multiplier for havoc iterations.
  // avg_exec_ns is the queue-wide average execution time.
  double perf_score(usize idx, u64 avg_exec_ns) const;

  u64 average_exec_ns() const noexcept;

  usize favored_count() const noexcept;

  // Total queue positions covered by at least one top_rated entry.
  usize top_rated_positions() const noexcept { return top_covered_; }

  // --- persistence ----------------------------------------------------------

  // Snapshot of one entry plus the top_rated arrays, checkpoint-shaped.
  struct ExportedState {
    std::vector<const QueueEntry*> entries;  // borrowed, queue order
    std::span<const u32> top_entry;
    std::span<const u64> top_factor;
    usize top_covered = 0;
  };
  ExportedState export_state() const;

  // Rebuilds the queue from snapshot data. `entries` become the corpus in
  // order; `top_entry`/`top_factor` must match this queue's position count
  // and reference only valid entry indices (or kNoEntry). Returns false
  // (leaving the queue empty) on any inconsistency. Marks culling pending
  // so the favored set is recomputed before the next cycle.
  bool import_state(std::vector<QueueEntry> entries,
                    std::span<const u32> top_entry,
                    std::span<const u64> top_factor, usize top_covered);

  // One slot per coverage position. kNoEntry when never covered.
  static constexpr u32 kNoEntry = 0xFFFFFFFFu;

 private:

  std::vector<std::unique_ptr<QueueEntry>> entries_;
  std::vector<u32> top_entry_;   // per-position winning entry
  std::vector<u64> top_factor_;  // per-position winning fav factor
  usize top_covered_ = 0;
  bool cull_pending_ = false;
};

}  // namespace bigmap
