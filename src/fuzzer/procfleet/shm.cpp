#include "fuzzer/procfleet/shm.h"

#include <sys/mman.h>

#include <cstring>
#include <new>
#include <stdexcept>

#include "fuzzer/procfleet/shm_hub.h"
#include "util/hash.h"

namespace bigmap::procfleet {

namespace {

// The whole point of the segment is address-free lock-free atomics: a
// process can die at any instruction without leaving another process
// blocked on state it cannot repair.
static_assert(std::atomic<u64>::is_always_lock_free);
static_assert(std::atomic<u32>::is_always_lock_free);
static_assert(std::atomic<bool>::is_always_lock_free);

usize round_up(usize n, usize align) {
  return (n + align - 1) / align * align;
}

}  // namespace

ShmSegment::ShmSegment(const ShmGeometry& g) {
  if (g.num_workers == 0 || g.max_records == 0 || g.max_input_size == 0) {
    throw std::invalid_argument("ShmSegment: zero geometry");
  }
  const usize slot_stride =
      round_up(sizeof(ShmSlotHeader) + g.max_input_size, 64);
  const usize worker_blocks_offset = round_up(sizeof(ShmHeader), 64);
  const usize slots_offset = round_up(
      worker_blocks_offset + sizeof(ShmWorkerBlock) * g.num_workers, 64);
  const usize total =
      round_up(slots_offset + slot_stride * g.max_records, 4096);

  void* mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    throw std::runtime_error("ShmSegment: mmap of " + std::to_string(total) +
                             " bytes failed");
  }
  total_bytes_ = total;

  header_ = new (mem) ShmHeader();
  header_->magic = kShmMagic;
  header_->version = kShmVersion;
  header_->total_bytes = total;
  header_->num_workers = g.num_workers;
  header_->max_records = g.max_records;
  header_->max_input_size = g.max_input_size;
  header_->slot_stride = static_cast<u32>(slot_stride);
  header_->worker_blocks_offset = worker_blocks_offset;
  header_->slots_offset = slots_offset;
  header_->layout_fingerprint = compute_fingerprint(*header_);

  u8* base = static_cast<u8*>(mem);
  for (u32 i = 0; i < g.num_workers; ++i) {
    new (base + worker_blocks_offset + sizeof(ShmWorkerBlock) * i)
        ShmWorkerBlock();
  }
  for (u32 i = 0; i < g.max_records; ++i) {
    new (base + slots_offset + slot_stride * i) ShmSlotHeader();
  }
}

ShmSegment::~ShmSegment() {
  if (header_ != nullptr) {
    ::munmap(header_, total_bytes_);
  }
}

ShmWorkerBlock* ShmSegment::worker(u32 id) {
  if (id >= header_->num_workers) {
    throw std::out_of_range("ShmSegment: worker id " + std::to_string(id) +
                            " out of range (" +
                            std::to_string(header_->num_workers) +
                            " workers)");
  }
  return reinterpret_cast<ShmWorkerBlock*>(
      reinterpret_cast<u8*>(header_) + header_->worker_blocks_offset +
      sizeof(ShmWorkerBlock) * id);
}

const ShmWorkerBlock* ShmSegment::worker(u32 id) const {
  return const_cast<ShmSegment*>(this)->worker(id);
}

u8* ShmSegment::slot_base() noexcept {
  return reinterpret_cast<u8*>(header_) + header_->slots_offset;
}

u64 ShmSegment::compute_fingerprint(const ShmHeader& h) noexcept {
  u64 fp = mix64(0xB16A1FEE7ULL ^ h.version);
  fp = mix64(fp ^ h.num_workers);
  fp = mix64(fp ^ h.max_records);
  fp = mix64(fp ^ h.max_input_size);
  fp = mix64(fp ^ h.slot_stride);
  fp = mix64(fp ^ h.worker_blocks_offset);
  fp = mix64(fp ^ h.slots_offset);
  fp = mix64(fp ^ h.total_bytes);
  return fp;
}

bool ShmSegment::validate(u32 expect_workers, FaultInjector* fault,
                          u32 instance, std::string* err) const {
  if (fault != nullptr && fault->fire(FaultSite::kMmapFail, instance)) {
    if (err != nullptr) *err = "injected mmap failure";
    return false;
  }
  if (header_ == nullptr || header_->magic != kShmMagic) {
    if (err != nullptr) *err = "bad shm magic";
    return false;
  }
  if (header_->version != kShmVersion) {
    if (err != nullptr) {
      *err = "shm version mismatch: segment v" +
             std::to_string(header_->version) + ", runtime v" +
             std::to_string(kShmVersion);
    }
    return false;
  }
  if (compute_fingerprint(*header_) != header_->layout_fingerprint) {
    if (err != nullptr) *err = "shm layout fingerprint mismatch";
    return false;
  }
  if (expect_workers != 0 && header_->num_workers != expect_workers) {
    if (err != nullptr) {
      *err = "shm sized for " + std::to_string(header_->num_workers) +
             " workers, fleet expects " + std::to_string(expect_workers);
    }
    return false;
  }
  return true;
}

}  // namespace bigmap::procfleet
