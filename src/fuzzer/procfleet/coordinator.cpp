#include "fuzzer/procfleet/coordinator.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_set>

#include "corpus/novelty.h"
#include "fuzzer/netfleet/failover.h"
#include "fuzzer/netfleet/mesh.h"
#include "fuzzer/netfleet/nethub.h"
#include "fuzzer/procfleet/shm.h"
#include "fuzzer/procfleet/shm_hub.h"
#include "fuzzer/procfleet/worker.h"
#include "persist/federation.h"
#include "persist/fleet.h"
#include "util/syscall.h"
#include "util/timing.h"

namespace bigmap::procfleet {
namespace {

// Per-worker supervision state, coordinator side. All cross-process state
// lives in the worker's ShmWorkerBlock; this is bookkeeping only.
struct Slot {
  enum class Phase { kPending, kRunning, kFinished };

  u32 id = 0;
  Phase phase = Phase::kPending;
  pid_t pid = -1;

  // Exec budget of the worker's (single, always-warm) budget segment;
  // grows when quarantine grants are absorbed.
  u64 goal = 0;
  bool resume_next = false;

  bool hang_kill_sent = false;  // we SIGKILLed it after a heartbeat stall
  bool stop_sent = false;       // cooperative stop requested (wall limit)
  bool wall_stopped = false;
  u64 stop_deadline_ns = 0;     // SIGKILL escalation for ignored stops
  u64 last_progress = 0;
  u64 last_progress_ns = 0;
  u64 next_start_ns = 0;
  // Durable execs when the current attempt launched; a clean-but-short
  // exit that did not move this is a stuck worker, not scheduled work.
  u64 execs_at_launch = 0;

  // Monotone high-water marks of what has been fed to this worker's
  // telemetry sink, so heartbeat samples and end-of-attempt results can
  // both feed it without double counting.
  u64 sink_execs = 0;
  u64 sink_interesting = 0;
  u64 sink_crashes = 0;

  // Timestamps (monotonic ns) of recent abnormal deaths, pruned to the
  // quarantine window.
  std::deque<u64> death_times;

  WorkerHealth health;
};

u64 backoff_ns(const ProcFleetConfig& cfg, u32 restarts_done) {
  double ms = static_cast<double>(cfg.backoff_initial_ms);
  for (u32 i = 1; i < restarts_done; ++i) ms *= cfg.backoff_multiplier;
  ms = std::min(ms, static_cast<double>(cfg.backoff_cap_ms));
  return static_cast<u64>(ms * 1e6);
}

}  // namespace

ProcFleetResult run_process_fleet(const Program& program,
                                  const std::vector<Input>& seeds,
                                  const ProcFleetConfig& config) {
  ProcFleetResult out;
  if (config.num_workers == 0) return out;
  // A federated peer resetting its socket must surface as EPIPE on the
  // gateway's send path (triaged, retried), never as a SIGPIPE that kills
  // the whole coordinator. Harmless for local-only fleets.
  ignore_sigpipe();
  if (config.persist_dir.empty()) {
    throw std::invalid_argument(
        "run_process_fleet: persist_dir is required (crash isolation "
        "without durable state would lose every unsynced find)");
  }
  if (config.net.enabled && !config.mesh_links.empty()) {
    throw std::invalid_argument(
        "run_process_fleet: net.enabled and mesh_links are mutually "
        "exclusive (a coordinator is a spoke or the hub, not both)");
  }
  if (config.failover.enabled &&
      (config.net.enabled || !config.mesh_links.empty())) {
    throw std::invalid_argument(
        "run_process_fleet: failover is mutually exclusive with net / "
        "mesh_links (the FailoverMesh subsumes both roles)");
  }
  if (config.failover.enabled &&
      (config.failover.num_nodes < 2 ||
       config.failover.rank >= config.failover.num_nodes ||
       config.failover.initial_leader >= config.failover.num_nodes ||
       config.failover.initial_epoch == 0 ||
       config.failover.listen_fds.size() != config.failover.num_nodes ||
       config.failover.dial_ports.size() != config.failover.num_nodes)) {
    throw std::invalid_argument(
        "run_process_fleet: malformed failover config (need >= 2 nodes, "
        "rank/leader in range, epoch >= 1, and num_nodes-sized "
        "listen_fds/dial_ports)");
  }
  telemetry::FleetTelemetry* fleet = config.telemetry;
  if (fleet != nullptr && fleet->num_instances() < config.num_workers) {
    throw std::invalid_argument(
        "run_process_fleet: FleetTelemetry has " +
        std::to_string(fleet->num_instances()) + " sinks for " +
        std::to_string(config.num_workers) + " workers");
  }

  // Coordinator-side injector: its journal/checkpoint I/O shares the
  // workers' fault schedule (separate occurrence counters — this is a
  // different process by construction). Workers rebuild their own.
  std::optional<FaultInjector> coord_fault_storage;
  FaultInjector* coord_fault = nullptr;
  if (config.fault_enabled) {
    coord_fault_storage.emplace(config.fault_seed, config.fault_plan);
    coord_fault = &*coord_fault_storage;
    if (fleet != nullptr) coord_fault->set_registry(&fleet->registry());
  }

  persist::FleetFingerprint fp;
  fp.num_instances = config.num_workers;
  fp.base_seed = config.base.seed;
  fp.seed_stride = config.instance_seed_stride;
  fp.max_execs = config.base.max_execs;
  fp.scheme = static_cast<u32>(config.base.scheme);
  fp.metric = static_cast<u32>(config.base.metric);
  fp.map_size = static_cast<u64>(config.base.map.map_size);
  persist::FleetStore store(config.persist_dir, fp,
                            persist::FaultCtx{coord_fault, 0}, config.resume);
  if (!store.ok()) {
    throw std::runtime_error("run_process_fleet: " + store.error());
  }
  out.resumed = store.resumed();
  // Materialize every instance store now: on a fresh open this wipes stale
  // snapshot directories in the coordinator, so workers (which always open
  // their store with fresh = false) can never resurrect a previous fleet's
  // state.
  for (u32 id = 0; id < config.num_workers; ++id) {
    (void)store.instance_store(id);
  }

  // Federation: every remote peer appears behind one extra hub instance
  // (the gateway) so imports flow to workers through ordinary fetch_new
  // and exports are exactly what the gateway's own fetch_new returns. The
  // gateway slot is shared by all links — a star hub still reserves one.
  const bool net_enabled = config.net.enabled || !config.mesh_links.empty() ||
                           config.failover.enabled;
  const u32 gateway_id = config.num_workers;

  ShmGeometry geom;
  geom.num_workers = config.num_workers + (net_enabled ? 1 : 0);
  geom.max_records = config.sync_max_records;
  geom.max_input_size = config.sync_max_input_size;
  ShmSegment segment(geom);
  ShmHubOptions hub_opts;
  hub_opts.read_timeout_us = config.sync_read_timeout_us;
  // Coordinator-side hub view: cursor rewinds, stats, and (when federated)
  // the gateway's publish/fetch traffic.
  ShmHub hub(&segment, hub_opts, nullptr);

  // Applies the shared peer-config defaults: fingerprint from the fleet
  // identity (both sides of a correctly-configured federation derive the
  // same value) and the entry-size clamp.
  auto fill_net_defaults = [&](netfleet::NetPeerConfig net_cfg) {
    if (net_cfg.session_fingerprint == 0) {
      u64 h = 0xb1674a95ull;
      for (u64 v : {static_cast<u64>(fp.num_instances), fp.base_seed,
                    fp.seed_stride, fp.max_execs, static_cast<u64>(fp.scheme),
                    static_cast<u64>(fp.metric), fp.map_size}) {
        h = (h ^ v) * 0x100000001b3ull;
      }
      net_cfg.session_fingerprint = h;
    }
    if (net_cfg.max_entry_size > config.sync_max_input_size) {
      net_cfg.max_entry_size = config.sync_max_input_size;
    }
    return net_cfg;
  };
  // Builds one gateway link from a peer config.
  auto make_link = [&](const netfleet::NetPeerConfig& net_cfg) {
    auto link = std::make_unique<netfleet::PeerLink>(
        fill_net_defaults(net_cfg), coord_fault, gateway_id,
        fleet != nullptr ? &fleet->registry() : nullptr);
    if (!link->ok()) {
      throw std::runtime_error("run_process_fleet: " + link->error());
    }
    return link;
  };
  // One remote model per link: the oracle re-executes each candidate and
  // ships it only when it flips virgin bits the peer has not covered.
  auto make_oracle = [&]() -> std::unique_ptr<corpus::NoveltyOracle> {
    if (!config.net_virgin_oracle) return nullptr;
    corpus::OracleConfig oc;
    oc.scheme = config.base.scheme;
    oc.metric = config.base.metric;
    oc.map = config.base.map;
    oc.seed = config.base.seed;
    oc.step_budget = config.base.step_budget;
    oc.work_per_block = config.base.work_per_block;
    return corpus::make_novelty_oracle(program, oc);
  };

  std::unique_ptr<netfleet::NetHub> nethub;
  std::unique_ptr<netfleet::MeshHub> meshhub;
  std::unique_ptr<netfleet::FailoverMesh> fomesh;
  if (config.failover.enabled) {
    netfleet::FailoverNodeConfig fo = config.failover;
    fo.link = fill_net_defaults(fo.link);
    if (fo.wal_path.empty()) {
      fo.wal_path = persist::federation_wal_path(config.persist_dir);
    }
    netfleet::FailoverMesh::OracleFactory factory;
    if (config.net_virgin_oracle) factory = make_oracle;
    fomesh = std::make_unique<netfleet::FailoverMesh>(
        &hub, gateway_id, std::move(fo), std::move(factory), coord_fault,
        fleet != nullptr ? &fleet->registry() : nullptr);
  } else if (!config.mesh_links.empty()) {
    meshhub = std::make_unique<netfleet::MeshHub>(&hub, gateway_id);
    for (const netfleet::NetPeerConfig& ml : config.mesh_links) {
      meshhub->add_link(make_link(ml), make_oracle());
    }
  } else if (net_enabled) {
    nethub = std::make_unique<netfleet::NetHub>(&hub, gateway_id,
                                                make_link(config.net));
    if (config.net_virgin_oracle) nethub->set_oracle(make_oracle());
  }

  const u64 start_ns = monotonic_ns();
  const u64 stall_ns = static_cast<u64>(config.stall_deadline_ms) * 1000000;
  const u64 window_ns =
      static_cast<u64>(config.quarantine_window_ms) * 1000000;

  std::vector<std::unique_ptr<Slot>> slots;
  slots.reserve(config.num_workers);
  for (u32 id = 0; id < config.num_workers; ++id) {
    auto s = std::make_unique<Slot>();
    s->id = id;
    s->health.id = id;
    s->goal = config.base.max_execs;
    slots.push_back(std::move(s));
  }

  std::unordered_set<u32> bug_union;
  std::unordered_set<u64> stack_union;
  // Exec budget freed by quarantined workers, not yet granted out.
  u64 budget_pool = 0;

  auto bump = [&](const char* name, u64 n = 1) {
    if (fleet != nullptr) {
      fleet->registry().counter(std::string("procfleet.") + name).add(n);
    }
  };

  // Feeds the monotone high-water counters into this worker's sink.
  auto feed_sink = [&](Slot& s, u64 execs, u64 interesting, u64 crashes) {
    if (fleet == nullptr) return;
    telemetry::TelemetrySink& sink = fleet->instance(s.id);
    if (execs > s.sink_execs) {
      sink.execs.add(execs - s.sink_execs);
      s.sink_execs = execs;
    }
    if (interesting > s.sink_interesting) {
      sink.interesting.add(interesting - s.sink_interesting);
      s.sink_interesting = interesting;
    }
    if (crashes > s.sink_crashes) {
      sink.crashes.add(crashes - s.sink_crashes);
      s.sink_crashes = crashes;
    }
  };

  auto journal_event = [&](const Slot& s, u32 final_state) {
    persist::InstanceEvent ev;
    ev.instance = s.id;
    ev.final_state = final_state;
    ev.attempts = s.health.attempts;
    ev.restarts = s.health.restarts;
    ev.stalls = s.health.hang_kills;
    ev.kills = s.health.kills;
    ev.alloc_failures = s.health.oom_kills;
    ev.warm_restarts = s.health.restarts;  // every procfleet restart is warm
    ev.execs = s.health.execs;
    ev.interesting = s.health.interesting;
    ev.crashes_total = s.health.crashes_total;
    // All budget lives in one always-warm segment: base_* stay zero and
    // segment_max_execs is the worker's (possibly granted-up) goal.
    ev.segment_max_execs = s.goal;
    ev.checkpoint_seq = store.instance_store(s.id).newest_seq_on_disk();
    std::string err;
    (void)store.append_event(ev, &err);
  };

  // Durable truth for a worker that did not hand over a clean result: its
  // newest checkpoint. Also unions the snapshot's triage identities.
  auto absorb_snapshot = [&](Slot& s) -> u64 {
    persist::CheckpointStore::LoadOutcome lo =
        store.instance_store(s.id).load_latest();
    if (!lo.snapshot.has_value()) return 0;
    for (u32 b : lo.snapshot->bug_ids) bug_union.insert(b);
    for (u64 h : lo.snapshot->stack_hashes) stack_union.insert(h);
    s.health.interesting = std::max(s.health.interesting,
                                    lo.snapshot->interesting);
    s.health.crashes_total = std::max(s.health.crashes_total,
                                      lo.snapshot->crashes_total);
    return lo.snapshot->execs;
  };

  // Spreads the freed budget pool over every worker that can still absorb
  // it (running, pending, or already completed — a completed worker is
  // reopened and resumes warm against its grown goal). Workers that are
  // failed or quarantined are not eligible.
  auto redistribute_pool = [&]() {
    if (budget_pool == 0) return;
    std::vector<Slot*> eligible;
    for (auto& sp : slots) {
      if (sp->phase != Slot::Phase::kFinished ||
          sp->health.state == WorkerState::kCompleted) {
        if (!sp->wall_stopped) eligible.push_back(sp.get());
      }
    }
    if (eligible.empty()) {
      out.unassigned_budget += budget_pool;
      budget_pool = 0;
      return;
    }
    const u64 share = budget_pool / eligible.size();
    u64 remainder = budget_pool % eligible.size();
    budget_pool = 0;
    for (Slot* s : eligible) {
      u64 grant = share;
      if (remainder > 0) {
        ++grant;
        --remainder;
      }
      if (grant == 0) continue;
      s->goal += grant;
      bump("budget_granted", grant);
      if (s->phase == Slot::Phase::kFinished) {
        // Reopen: the worker already delivered its old goal; it resumes
        // from its final checkpoint and works off the grant.
        s->phase = Slot::Phase::kPending;
        s->resume_next = true;
        s->next_start_ns = monotonic_ns();
        s->hang_kill_sent = false;
      } else if (s->phase == Slot::Phase::kRunning) {
        // Grow the running worker's budget in place through the shared
        // control block: the campaign picks it up at its next execution
        // boundary and keeps going — no exit, no restore round-trip, no
        // ring re-import. If the worker exits before it sees the store,
        // the clean-but-short path relaunches it for free instead.
        segment.worker(s->id)->control.budget_override.store(
            s->goal, std::memory_order_relaxed);
      }
      journal_event(*s, persist::kEventRunning);
    }
  };

  // Whole-process resume: replay the journal into the slots, mirroring the
  // thread supervisor. Quarantined workers stay parked.
  if (store.resumed()) {
    for (auto& sp : slots) {
      Slot& s = *sp;
      const std::optional<persist::InstanceEvent> ev =
          store.last_event(s.id);
      if (!ev.has_value()) {
        // Died mid-first-attempt before any journal event; resume warm
        // from whatever checkpoints exist (cold start inside the worker if
        // none do).
        s.resume_next = true;
        continue;
      }
      s.health.attempts = ev->attempts;
      s.health.restarts = ev->restarts;
      s.health.hang_kills = ev->stalls;
      s.health.kills = ev->kills;
      s.health.oom_kills = ev->alloc_failures;
      s.health.execs = ev->execs;
      s.health.interesting = ev->interesting;
      s.health.crashes_total = ev->crashes_total;
      s.goal = ev->segment_max_execs != 0 ? ev->segment_max_execs
                                          : config.base.max_execs;

      if (ev->final_state == persist::kEventQuarantined) {
        s.health.state = WorkerState::kQuarantined;
        s.phase = Slot::Phase::kFinished;
        ++out.quarantined;
        absorb_snapshot(s);
        feed_sink(s, s.health.execs, s.health.interesting,
                  s.health.crashes_total);
        continue;
      }
      const bool owes_budget = s.goal == 0 || ev->execs < s.goal;
      if (ev->final_state != persist::kEventCompleted && owes_budget) {
        s.resume_next = true;
        continue;
      }
      s.health.state = ev->final_state == persist::kEventCompleted
                           ? WorkerState::kCompleted
                           : WorkerState::kFailed;
      s.phase = Slot::Phase::kFinished;
      s.health.execs = std::max(s.health.execs, absorb_snapshot(s));
      feed_sink(s, s.health.execs, s.health.interesting,
                s.health.crashes_total);
    }
    // Re-derive any pool a quarantine freed that the previous coordinator
    // never managed to grant out (it died between journaling the park and
    // journaling the grants).
    if (config.base.max_execs != 0) {
      const u64 total_budget =
          static_cast<u64>(config.num_workers) * config.base.max_execs;
      u64 assigned = 0;
      for (const auto& sp : slots) {
        // Quarantined workers contribute only their durable execs (that is
        // what freed the pool); failed workers keep their full goal — a
        // retry-exhausted worker's budget is lost, not redistributed, the
        // same as on the live path.
        assigned += sp->health.state == WorkerState::kQuarantined &&
                            sp->phase == Slot::Phase::kFinished
                        ? sp->health.execs
                        : sp->goal;
      }
      if (total_budget > assigned) {
        budget_pool = total_budget - assigned;
        redistribute_pool();
      }
    }
  }

  auto launch = [&](Slot& s) {
    ShmWorkerBlock* blk = segment.worker(s.id);
    blk->control.progress.store(0, std::memory_order_relaxed);
    blk->control.stop.store(false, std::memory_order_relaxed);
    // The launch parameters already carry the current goal; a stale grow
    // signal from the previous incarnation must not linger.
    blk->control.budget_override.store(0, std::memory_order_relaxed);
    blk->state.store(kWorkerIdle, std::memory_order_relaxed);
    blk->result_execs.store(0, std::memory_order_relaxed);
    blk->result_interesting.store(0, std::memory_order_relaxed);
    blk->result_crashes.store(0, std::memory_order_relaxed);
    blk->result_fault_aborted.store(0, std::memory_order_relaxed);

    WorkerParams p;
    p.id = s.id;
    p.expect_workers = geom.num_workers;  // includes the gateway instance
    p.segment = &segment;
    p.program = &program;
    p.seeds = &seeds;
    p.base = config.base;
    p.seed_stride = config.instance_seed_stride;
    p.goal = s.goal;
    p.resume = s.resume_next;
    p.instance_dir = config.persist_dir + "/instance-" +
                     std::to_string(s.id);
    p.checkpoint_interval = config.checkpoint_interval;
    p.keep_checkpoints = config.keep_checkpoints;
    p.fault_enabled = config.fault_enabled;
    p.fault_seed = config.fault_seed;
    p.fault_plan = config.fault_plan;
    p.chaos_check_interval = config.chaos_check_interval;
    p.hub = hub_opts;
    s.resume_next = false;

    const pid_t pid = ::fork();
    if (pid < 0) {
      // Treat a failed fork like any other abnormal attempt: back off and
      // retry through the normal restart machinery.
      s.health.last_error = "fork failed";
      s.next_start_ns = monotonic_ns() + backoff_ns(config, 1);
      return;
    }
    if (pid == 0) {
      // Child: never return into the coordinator. _exit skips atexit and
      // destructors — everything this process owns dies with it.
      ::_exit(worker_main(p));
    }
    s.pid = pid;
    s.phase = Slot::Phase::kRunning;
    s.hang_kill_sent = false;
    s.stop_sent = false;
    s.last_progress = 0;
    s.last_progress_ns = monotonic_ns();
    s.execs_at_launch = s.health.execs;
    ++s.health.attempts;
  };

  auto finish = [&](Slot& s, WorkerState state) {
    s.phase = Slot::Phase::kFinished;
    s.health.state = state;
    u32 final_state = persist::kEventFailed;
    if (state == WorkerState::kCompleted) {
      final_state = persist::kEventCompleted;
    } else if (state == WorkerState::kQuarantined) {
      final_state = persist::kEventQuarantined;
    }
    journal_event(s, final_state);
  };

  // Reaps one dead worker and decides: completed, restart, quarantine, or
  // give up.
  auto handle_exit = [&](Slot& s, int status) {
    const u64 now = monotonic_ns();
    ShmWorkerBlock* blk = segment.worker(s.id);
    const bool done =
        blk->state.load(std::memory_order_acquire) == kWorkerDone;
    if (::getenv("BIGMAP_FLEET_DEBUG") != nullptr) {
      std::fprintf(
          stderr,
          "[coord] w%u exited=%d code=%d signaled=%d sig=%d done=%d "
          "res_execs=%llu health_execs=%llu goal=%llu attempts=%u\n",
          s.id, WIFEXITED(status) ? 1 : 0,
          WIFEXITED(status) ? WEXITSTATUS(status) : -1,
          WIFSIGNALED(status) ? 1 : 0,
          WIFSIGNALED(status) ? WTERMSIG(status) : 0, done ? 1 : 0,
          static_cast<unsigned long long>(
              blk->result_execs.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(s.health.execs),
          static_cast<unsigned long long>(s.goal), s.health.attempts);
    }

    // A worker that reached kWorkerDone published authoritative lifetime
    // counters for its budget segment; absorb them.
    if (done) {
      s.health.execs =
          std::max(s.health.execs,
                   blk->result_execs.load(std::memory_order_relaxed));
      s.health.interesting = std::max(
          s.health.interesting,
          blk->result_interesting.load(std::memory_order_relaxed));
      s.health.crashes_total = std::max(
          s.health.crashes_total,
          blk->result_crashes.load(std::memory_order_relaxed));
      feed_sink(s, s.health.execs, s.health.interesting,
                s.health.crashes_total);
    }

    // Exit-status triage.
    bool clean = false;     // ran to a stop condition of its own
    bool abnormal = false;  // counts toward the quarantine window
    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      switch (code) {
        case kExitOk:
          clean = true;
          break;
        case kExitFaultKill:
          ++s.health.kills;
          abnormal = true;
          bump("injected_kills");
          if (fleet != nullptr) fleet->kills().add();
          break;
        case kExitOom:
          ++s.health.oom_kills;
          abnormal = true;
          s.health.last_error = "std::bad_alloc";
          bump("oom_kills");
          if (fleet != nullptr) fleet->alloc_failures().add();
          break;
        case kExitShmFail:
          ++s.health.shm_failures;
          abnormal = true;
          s.health.last_error = "shm attach/validate failed";
          bump("shm_failures");
          break;
        case kExitMidPublish:
          ++s.health.error_exits;
          abnormal = true;
          s.health.last_error = "died mid-publish";
          bump("mid_publish_exits");
          break;
        default:
          ++s.health.error_exits;
          abnormal = true;
          s.health.last_error =
              "worker exit code " + std::to_string(code);
          bump("error_exits");
          break;
      }
    } else if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      if (s.hang_kill_sent && sig == SIGKILL) {
        // Our own deadline kill coming back around.
        ++s.health.hang_kills;
        abnormal = true;
        s.health.last_error = "hang-killed after heartbeat stall";
        bump("hang_kills");
        if (fleet != nullptr) fleet->stalls().add();
      } else {
        ++s.health.crash_signals;
        abnormal = true;
        s.health.last_signal = sig;
        s.health.last_error = "killed by signal " + std::to_string(sig);
        bump("crash_signals");
        bump(("signal_" + std::to_string(sig)).c_str());
      }
    } else {
      // Stopped/continued are filtered out before we get here; anything
      // else is an error exit.
      ++s.health.error_exits;
      abnormal = true;
      s.health.last_error = "unrecognized wait status";
      bump("error_exits");
    }

    const bool reached_goal =
        s.goal != 0 ? s.health.execs >= s.goal : clean;

    if (s.wall_stopped) {
      finish(s, clean && done && reached_goal ? WorkerState::kCompleted
                                              : WorkerState::kFailed);
      if (s.health.state == WorkerState::kFailed &&
          s.health.last_error.empty()) {
        s.health.last_error = "fleet wall-clock limit";
      }
      return;
    }

    if (clean && done && reached_goal) {
      finish(s, WorkerState::kCompleted);
      return;
    }

    if (clean && done && !reached_goal) {
      if (s.health.execs > s.execs_at_launch) {
        // Finished its old goal while a quarantine grant grew it (or was
        // stopped cooperatively without a wall stop). Continue warm
        // against the current goal; this is scheduled work, not a
        // failure, so it does not charge the retry budget or back off.
        s.resume_next = true;
        journal_event(s, persist::kEventRunning);
        s.next_start_ns = now;
        s.phase = Slot::Phase::kPending;
        hub.reset_cursor(s.id);
        return;
      }
      // Exited cleanly short of its goal without a single new execution:
      // the worker is stuck (e.g. restoring broken durable state in a
      // loop). Fall through to the abnormal path so it burns retry
      // budget, backs off, and eventually fails/quarantines instead of
      // relaunching for free forever.
      abnormal = true;
      s.health.last_error = "clean exit with no progress";
      ++s.health.error_exits;
      bump("no_progress_exits");
    }

    // Abnormal death. Slide the quarantine window.
    if (abnormal && config.quarantine_deaths > 0) {
      s.death_times.push_back(now);
      while (!s.death_times.empty() &&
             now - s.death_times.front() > window_ns) {
        s.death_times.pop_front();
      }
      if (s.death_times.size() >= config.quarantine_deaths) {
        // Park it. Durable progress is whatever its last checkpoint
        // holds; the undone budget goes back to the pool.
        const u64 durable = absorb_snapshot(s);
        s.health.execs = std::max(s.health.execs, durable);
        feed_sink(s, s.health.execs, s.health.interesting,
                  s.health.crashes_total);
        if (s.goal > s.health.execs) {
          budget_pool += s.goal - s.health.execs;
        }
        if (s.health.last_error.empty()) {
          s.health.last_error = "quarantined";
        }
        ++out.quarantined;
        bump("quarantined");
        finish(s, WorkerState::kQuarantined);
        redistribute_pool();
        return;
      }
    }

    if (s.health.restarts >= config.max_restarts_per_worker) {
      if (s.health.last_error.empty()) {
        s.health.last_error = "retry budget exhausted";
      }
      finish(s, WorkerState::kFailed);
      return;
    }

    ++s.health.restarts;
    ++out.total_restarts;
    s.resume_next = true;  // always warm: resume from the last checkpoint
    journal_event(s, persist::kEventRunning);
    const u64 backoff = backoff_ns(config, s.health.restarts);
    bump("restarts");
    if (fleet != nullptr) {
      fleet->restarts().add();
      fleet->instance(s.id).restarts.add();
      fleet->backoff_ms_total().add(backoff / 1000000);
    }
    s.next_start_ns = now + backoff;
    // Rewind the import cursor: the resumed queue may predate records the
    // dead attempt had already fetched, and re-importing is harmless.
    hub.reset_cursor(s.id);
    s.phase = Slot::Phase::kPending;
  };

  bool wall_stop_issued = false;
  u64 next_fleet_stamp_ns = start_ns;
  for (;;) {
    usize unfinished = 0;
    const u64 now = monotonic_ns();

    if (fleet != nullptr && config.fleet_stamp_ms > 0 &&
        now >= next_fleet_stamp_ns) {
      next_fleet_stamp_ns =
          now + static_cast<u64>(config.fleet_stamp_ms) * 1000000;
      fleet->stamp_fleet();
    }

    if (config.max_wall_seconds > 0.0 && !wall_stop_issued &&
        static_cast<double>(now - start_ns) * 1e-9 >
            config.max_wall_seconds) {
      wall_stop_issued = true;
      for (auto& sp : slots) {
        sp->wall_stopped = true;
        if (sp->phase == Slot::Phase::kRunning) {
          sp->stop_sent = true;
          sp->stop_deadline_ns = now + 2 * stall_ns;
          segment.worker(sp->id)->control.stop.store(
              true, std::memory_order_relaxed);
        } else if (sp->phase == Slot::Phase::kPending) {
          if (sp->health.last_error.empty()) {
            sp->health.last_error = "fleet wall-clock limit";
          }
          finish(*sp, WorkerState::kFailed);
        }
      }
    }

    for (auto& sp : slots) {
      Slot& s = *sp;
      switch (s.phase) {
        case Slot::Phase::kPending:
          if (now >= s.next_start_ns) launch(s);
          ++unfinished;
          break;
        case Slot::Phase::kRunning: {
          int status = 0;
          const pid_t r = xwaitpid(s.pid, &status, WNOHANG);
          if (r == s.pid) {
            handle_exit(s, status);
            if (s.phase != Slot::Phase::kFinished) ++unfinished;
            break;
          }
          ++unfinished;
          ShmWorkerBlock* blk = segment.worker(s.id);
          const u64 p = blk->control.progress.load(std::memory_order_relaxed);
          if (p != s.last_progress) {
            s.last_progress = p;
            s.last_progress_ns = now;
            // The heartbeat is the segment-lifetime exec count; feed the
            // sink its monotone delta so process fleets chart like thread
            // fleets. Clamped to the goal: the campaign also ticks the
            // progress word once per checkpoint (so a slow save is not
            // mistaken for a stall), and those ticks must not inflate the
            // exec totals — the end-of-attempt result counters are the
            // authoritative value.
            feed_sink(s, s.goal != 0 ? std::min(p, s.goal) : p,
                      s.sink_interesting, s.sink_crashes);
          } else if (!s.hang_kill_sent && now - s.last_progress_ns > stall_ns) {
            // Heartbeat deadline: SIGKILL works on SIGSTOP'd, swapped-out
            // and livelocked workers alike. Triage happens at the reap.
            s.hang_kill_sent = true;
            ::kill(s.pid, SIGKILL);
          } else if (s.stop_sent && !s.hang_kill_sent &&
                     now >= s.stop_deadline_ns) {
            // Ignored the cooperative wall stop; escalate.
            s.hang_kill_sent = true;
            ::kill(s.pid, SIGKILL);
          }
          break;
        }
        case Slot::Phase::kFinished:
          break;
      }
    }

    if (nethub) nethub->pump(now);
    if (meshhub) meshhub->pump(now);
    if (fomesh) fomesh->pump(now);

    if (unfinished == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(config.poll_ms));
  }

  if (nethub) {
    // Drain the link before tallying: ship the final sync interval's
    // finds, deliver the backlog, say goodbye.
    nethub->shutdown(monotonic_ns());
    out.net = nethub->link_stats();
    out.oracle = nethub->oracle_stats();
  }
  if (meshhub) {
    meshhub->shutdown(monotonic_ns());
    out.net = meshhub->aggregate_link_stats();
    out.oracle = meshhub->aggregate_oracle_stats();
    for (usize i = 0; i < meshhub->link_count(); ++i) {
      out.mesh.push_back(meshhub->link_stats(i));
    }
  }
  if (fomesh) {
    fomesh->shutdown(monotonic_ns());
    out.failover = fomesh->failover_stats();
    out.net = out.failover.net;
    out.oracle = out.failover.oracle;
  }

  out.wall_seconds = static_cast<double>(monotonic_ns() - start_ns) * 1e-9;
  out.workers.reserve(slots.size());
  for (auto& sp : slots) {
    Slot& s = *sp;
    // Durable truth for everyone: the final snapshot carries the triage
    // identities (and, for workers that never handed over a clean result,
    // the exec count that will actually resume).
    const u64 durable = absorb_snapshot(s);
    if (s.health.state != WorkerState::kCompleted) {
      s.health.execs = std::max(s.health.execs, durable);
    }
    s.health.goal = s.goal;
    out.total_execs += s.health.execs;
    out.total_interesting += s.health.interesting;
    out.total_crashes += s.health.crashes_total;
    out.workers.push_back(s.health);
  }
  out.found_bug_ids.assign(bug_union.begin(), bug_union.end());
  std::sort(out.found_bug_ids.begin(), out.found_bug_ids.end());
  out.found_stack_hashes.assign(stack_union.begin(), stack_union.end());
  std::sort(out.found_stack_hashes.begin(), out.found_stack_hashes.end());
  out.aggregate_throughput =
      out.wall_seconds > 0
          ? static_cast<double>(out.total_execs) / out.wall_seconds
          : 0.0;
  out.sync = hub.stats();
  out.persist = store.stats();
  if (fleet != nullptr) {
    out.fleet_total = fleet->stamp_fleet();
  }
  return out;
}

}  // namespace bigmap::procfleet
