// Worker entry for the multi-process fleet: what runs in a forked child.
//
// A worker is one campaign instance in its own address space. It validates
// the inherited shm segment (layout fingerprint), rebuilds its fault
// injector with chaos-site occurrence continuity from its ShmWorkerBlock
// mirror, opens its per-instance CheckpointStore (never fresh — the
// coordinator owns directory lifecycle), and runs run_campaign() over the
// ShmHub with the shared CampaignControl as its heartbeat/stop channel.
// The result counters are published into the worker block, the lifecycle
// state is set to kWorkerDone, and the process _exits with a triage code
// the coordinator decodes:
//
//   code                      meaning                      coordinator class
//   0   kExitOk               ran to its stop condition    clean exit
//   42  kExitOom              std::bad_alloc escaped       OOM
//   43  kExitShmFail          shm attach/validate failed   shm failure
//   44  kExitMidPublish       chaos: died inside a publish error exit
//   45  kExitError            unexpected exception         error exit
//   46  kExitFaultKill        injected kInstanceKill       instance kill
//   (killed by signal)        crash / hang-kill            signal triage
//
// The chaos pump implements the process-level fault sites as an ExecHook:
// every chaos_check_interval executions it consults the seeded injector at
// kProcKill (raise SIGKILL: the wild-write / OOM-killer model), kProcStall
// (raise SIGSTOP: the machine-wedge model — the coordinator's heartbeat
// deadline detects the stall and hang-kills), and kProcExitMidPublish
// (reserve a hub slot, never commit it, _exit: the torn-publish model the
// readers' bounded wait exists for). Each check bumps the shm occurrence
// mirror BEFORE firing, so an occurrence that kills the process is still
// consumed — "the nth occurrence faults" fires exactly once across any
// number of process restarts.
#pragma once

#include <string>
#include <vector>

#include "fuzzer/campaign.h"
#include "fuzzer/procfleet/shm.h"
#include "fuzzer/procfleet/shm_hub.h"
#include "target/program.h"
#include "util/fault.h"
#include "util/types.h"

namespace bigmap::procfleet {

inline constexpr int kExitOk = 0;
inline constexpr int kExitOom = 42;
inline constexpr int kExitShmFail = 43;
inline constexpr int kExitMidPublish = 44;
inline constexpr int kExitError = 45;
inline constexpr int kExitFaultKill = 46;

struct WorkerParams {
  u32 id = 0;
  // Fleet size the worker expects the segment to be laid out for; part of
  // the attach-time validation.
  u32 expect_workers = 0;
  ShmSegment* segment = nullptr;
  const Program* program = nullptr;
  const std::vector<Input>* seeds = nullptr;

  // Campaign template; the worker fills seed/sync/control/persist fields.
  CampaignConfig base;
  u64 seed_stride = 1;

  // This worker's segment exec budget (possibly grown by quarantine
  // grants) and whether to resume from the latest checkpoint.
  u64 goal = 0;
  bool resume = false;

  std::string instance_dir;
  u64 checkpoint_interval = 0;
  u32 keep_checkpoints = 2;

  // Deterministic fault schedule, rebuilt inside the worker process.
  bool fault_enabled = false;
  u64 fault_seed = 0;
  FaultPlan fault_plan;
  // Executions between chaos-site checks.
  u64 chaos_check_interval = 64;

  ShmHubOptions hub;
};

// Runs one worker attempt to completion. Returns the exit code the child
// should _exit with; never returns control to coordinator logic.
int worker_main(const WorkerParams& params);

}  // namespace bigmap::procfleet
