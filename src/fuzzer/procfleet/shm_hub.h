// ShmHub: the cross-process SyncEndpoint over a ShmSegment publish ring.
//
// The in-process SyncHub serializes publishers and readers behind one
// mutex; that is exactly what a *process* fleet cannot afford, because a
// worker SIGKILLed while holding a shared mutex would wedge every other
// worker forever. The shm ring is therefore lock-free and crash-safe:
//
//  - publish reserves an absolute sequence number with one fetch_add on the
//    shared head, marks the slot "writing", copies the payload, and commits
//    with a release store of the slot's sequence state (a per-slot
//    seqlock). A publisher that dies at ANY instruction leaves either a
//    slot nobody sees (not yet marked), a permanently "writing" slot
//    readers skip after a bounded wait, or a committed record — never a
//    held lock;
//  - readers keep an absolute cursor (in their ShmWorkerBlock, so restarts
//    inherit it), validate each slot's sequence state before AND after
//    copying the payload, and treat a mid-copy overwrite as an eviction;
//  - a reserved-but-uncommitted slot — the dead-publisher window — is
//    waited on for read_timeout_us, then skipped and counted in
//    SyncHubStats::reader_timeouts. A dead publisher can therefore never
//    wedge a reader: the wait is bounded by construction;
//  - the ring wraps: records older than max_records are overwritten
//    (eviction); cursors are absolute so a laggard counts the gap as
//    missed backpressure, exactly like the in-process hub.
//
// One ShmHub object is constructed per process over the same inherited
// segment; all cross-process state lives in the segment, the object itself
// holds only pointers and per-process configuration.
#pragma once

#include <atomic>

#include "fuzzer/procfleet/shm.h"
#include "fuzzer/sync.h"

namespace bigmap::procfleet {

// Per-slot seqlock header, followed by `max_input_size` payload bytes at a
// 64-byte stride. state encodes both the generation and the write phase of
// the record occupying the slot: for the record with absolute sequence s,
// state == (s+1)*2 while the publisher is copying ("writing") and
// (s+1)*2 + 1 once committed; 0 is a never-used slot. Monotone per slot, so
// a reader can always classify what it observes: its record, a newer
// generation (evicted), or an in-flight write.
struct ShmSlotHeader {
  std::atomic<u64> state{0};
  u32 publisher = 0;
  u32 size = 0;
};

struct ShmHubOptions {
  // Bounded wait for a reserved-but-uncommitted slot before skipping it.
  u32 read_timeout_us = 2000;
  // Sleep step while waiting (0 = busy spin).
  u32 read_poll_us = 50;
};

class ShmHub final : public SyncEndpoint {
 public:
  // `segment` must outlive the hub. `fault` (nullable) drops publishes at
  // FaultSite::kPublishDrop, keyed by the publishing instance.
  ShmHub(ShmSegment* segment, ShmHubOptions options, FaultInjector* fault);

  u32 num_instances() const noexcept override;

  bool publish(u32 instance, Input input) override;
  std::vector<Input> fetch_new(u32 instance) override;
  void reset_cursor(u32 instance) override;
  u64 total_published() const override;
  SyncHubStats stats() const override;

  // Reserves and marks a slot but never commits it — the publisher "dies"
  // mid-publish. This is the crash window the kProcExitMidPublish chaos
  // site opens right before a worker _exits, exposed directly so tests can
  // drill the reader's bounded-wait skip without forking.
  void publish_partial(u32 instance, const Input& input);

 private:
  ShmSlotHeader* slot_at(u64 seq) const;
  u8* payload_at(ShmSlotHeader* slot) const;
  // Oldest sequence the ring can still hold given `head`.
  u64 oldest(u64 head) const noexcept;
  void check_instance(u32 instance) const;

  // Outcome of one slot read.
  enum class ReadSlot { kOk, kEvicted, kTimedOut, kOwn };
  ReadSlot read_slot(u64 seq, u32 reader, Input* out) const;

  ShmSegment* seg_;
  ShmHeader* hdr_;
  const ShmHubOptions opts_;
  FaultInjector* fault_;
};

}  // namespace bigmap::procfleet
