#include "fuzzer/procfleet/shm_hub.h"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/timing.h"

namespace bigmap::procfleet {

namespace {

inline u64 writing_state(u64 seq) noexcept { return (seq + 1) * 2; }
inline u64 committed_state(u64 seq) noexcept { return (seq + 1) * 2 + 1; }

}  // namespace

ShmHub::ShmHub(ShmSegment* segment, ShmHubOptions options,
               FaultInjector* fault)
    : seg_(segment), hdr_(segment->header()), opts_(options), fault_(fault) {}

u32 ShmHub::num_instances() const noexcept { return hdr_->num_workers; }

void ShmHub::check_instance(u32 instance) const {
  if (instance >= hdr_->num_workers) {
    throw std::out_of_range("ShmHub: instance id " +
                            std::to_string(instance) + " out of range (" +
                            std::to_string(hdr_->num_workers) +
                            " instances)");
  }
}

ShmSlotHeader* ShmHub::slot_at(u64 seq) const {
  const u64 idx = seq % hdr_->max_records;
  return reinterpret_cast<ShmSlotHeader*>(seg_->slot_base() +
                                          idx * hdr_->slot_stride);
}

u8* ShmHub::payload_at(ShmSlotHeader* slot) const {
  return reinterpret_cast<u8*>(slot) + sizeof(ShmSlotHeader);
}

u64 ShmHub::oldest(u64 head) const noexcept {
  return head > hdr_->max_records ? head - hdr_->max_records : 0;
}

bool ShmHub::publish(u32 instance, Input input) {
  check_instance(instance);
  if (fault_ != nullptr && fault_->fire(FaultSite::kPublishDrop, instance)) {
    hdr_->dropped_faults.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (input.size() > hdr_->max_input_size) {
    hdr_->rejected_oversize.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  const u64 seq = hdr_->head.fetch_add(1, std::memory_order_relaxed);
  ShmSlotHeader* slot = slot_at(seq);
  // Seqlock write: mark in-flight, fence, copy, commit with release. A
  // reader that overlaps the copy sees state != committed(seq) on its
  // post-copy validation and discards what it read.
  slot->state.store(writing_state(seq), std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  slot->publisher = instance;
  slot->size = static_cast<u32>(input.size());
  if (!input.empty()) {
    std::memcpy(payload_at(slot), input.data(), input.size());
  }
  slot->state.store(committed_state(seq), std::memory_order_release);
  hdr_->total_published.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShmHub::publish_partial(u32 instance, const Input& input) {
  check_instance(instance);
  const u64 seq = hdr_->head.fetch_add(1, std::memory_order_relaxed);
  ShmSlotHeader* slot = slot_at(seq);
  slot->state.store(writing_state(seq), std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  slot->publisher = instance;
  const usize n =
      std::min<usize>(input.size() / 2, hdr_->max_input_size);
  slot->size = static_cast<u32>(n);
  if (n != 0) std::memcpy(payload_at(slot), input.data(), n);
  // No commit: the record stays in the "writing" state forever, exactly
  // what a publisher SIGKILLed mid-copy leaves behind.
}

ShmHub::ReadSlot ShmHub::read_slot(u64 seq, u32 reader, Input* out) const {
  ShmSlotHeader* slot = slot_at(seq);
  const u64 deadline_ns =
      monotonic_ns() + static_cast<u64>(opts_.read_timeout_us) * 1000;
  for (;;) {
    const u64 st = slot->state.load(std::memory_order_acquire);
    if (st > committed_state(seq)) return ReadSlot::kEvicted;
    if (st == committed_state(seq)) {
      const u32 publisher = slot->publisher;
      const u32 size = slot->size;
      if (size > hdr_->max_input_size) return ReadSlot::kEvicted;
      Input data(payload_at(slot), payload_at(slot) + size);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot->state.load(std::memory_order_relaxed) !=
          committed_state(seq)) {
        // Overwritten mid-copy: the record is gone.
        return ReadSlot::kEvicted;
      }
      if (publisher == reader) return ReadSlot::kOwn;
      *out = std::move(data);
      return ReadSlot::kOk;
    }
    // st <= writing_state(seq): reserved but not committed (the publisher
    // is mid-copy — or died there), or reserved and not even marked yet.
    // Bounded wait, then skip: a dead publisher must never wedge us.
    if (monotonic_ns() >= deadline_ns) return ReadSlot::kTimedOut;
    if (opts_.read_poll_us != 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(opts_.read_poll_us));
    }
  }
}

std::vector<Input> ShmHub::fetch_new(u32 instance) {
  check_instance(instance);
  ShmWorkerBlock* blk = seg_->worker(instance);
  u64 cursor = blk->sync_cursor.load(std::memory_order_relaxed);
  const u64 head = hdr_->head.load(std::memory_order_acquire);
  const u64 old = oldest(head);
  if (cursor < old) {
    blk->sync_missed.fetch_add(old - cursor, std::memory_order_relaxed);
    cursor = old;
  }

  std::vector<Input> out;
  for (; cursor < head; ++cursor) {
    Input data;
    switch (read_slot(cursor, instance, &data)) {
      case ReadSlot::kOk:
        out.push_back(std::move(data));
        hdr_->fetched.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReadSlot::kOwn:
        break;
      case ReadSlot::kEvicted:
        blk->sync_missed.fetch_add(1, std::memory_order_relaxed);
        break;
      case ReadSlot::kTimedOut:
        hdr_->reader_timeouts.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  blk->sync_cursor.store(cursor, std::memory_order_relaxed);
  return out;
}

void ShmHub::reset_cursor(u32 instance) {
  check_instance(instance);
  const u64 head = hdr_->head.load(std::memory_order_acquire);
  seg_->worker(instance)->sync_cursor.store(oldest(head),
                                            std::memory_order_relaxed);
}

u64 ShmHub::total_published() const {
  return hdr_->total_published.load(std::memory_order_relaxed);
}

SyncHubStats ShmHub::stats() const {
  SyncHubStats s;
  const u64 head = hdr_->head.load(std::memory_order_acquire);
  s.total_published = hdr_->total_published.load(std::memory_order_relaxed);
  s.evicted = oldest(head);
  s.live_records = static_cast<usize>(head - oldest(head));
  s.rejected_oversize =
      hdr_->rejected_oversize.load(std::memory_order_relaxed);
  s.dropped_faults = hdr_->dropped_faults.load(std::memory_order_relaxed);
  s.fetched = hdr_->fetched.load(std::memory_order_relaxed);
  s.reader_timeouts = hdr_->reader_timeouts.load(std::memory_order_relaxed);
  s.missed.resize(hdr_->num_workers);
  for (u32 i = 0; i < hdr_->num_workers; ++i) {
    s.missed[i] = seg_->worker(i)->sync_missed.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace bigmap::procfleet
