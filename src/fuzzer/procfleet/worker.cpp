#include "fuzzer/procfleet/worker.h"

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <new>
#include <optional>

#include "persist/checkpoint.h"

namespace bigmap::procfleet {

namespace {

// Publishes the injector's occurrence counts for every site into the shm
// mirror (monotone max — the pump's proc-site pre-bumps may be ahead).
void mirror_occurrences(const FaultInjector& fault, ShmWorkerBlock* blk,
                        u32 id) {
  for (usize i = 0; i < kNumFaultSites; ++i) {
    const u64 n = fault.occurrences(static_cast<FaultSite>(i), id);
    u64 cur = blk->site_occurrences[i].load(std::memory_order_relaxed);
    while (n > cur && !blk->site_occurrences[i].compare_exchange_weak(
                          cur, n, std::memory_order_relaxed)) {
    }
  }
}

// ExecHook that drives the process-level chaos sites. Runs on the worker's
// campaign thread; every `interval` executions it consults the injector at
// each site. The shm occurrence mirror is bumped BEFORE fire() so a check
// that kills the process still consumed its occurrence index — otherwise a
// "kill on the nth occurrence" trigger would re-fire on every restart and
// the worker would crash-loop forever instead of making progress.
class ChaosPump final : public ExecHook {
 public:
  ChaosPump(FaultInjector* fault, ShmHub* hub, ShmWorkerBlock* blk, u32 id,
            u64 interval)
      : fault_(fault),
        hub_(hub),
        blk_(blk),
        id_(id),
        interval_(interval == 0 ? 1 : interval),
        next_(interval == 0 ? 1 : interval) {}

  void on_exec(u64 execs) override {
    if (execs < next_) return;
    next_ = execs + interval_;
    // Refresh the whole mirror before the lethal checks below. This is
    // what makes campaign-internal sites (exec / sync / persist)
    // cumulative across process restarts too — with at most one check
    // interval of lag when the process dies dirty.
    mirror_occurrences(*fault_, blk_, id_);
    if (check(FaultSite::kProcKill)) {
      ::raise(SIGKILL);  // never returns
    }
    if (check(FaultSite::kProcStall)) {
      // Wedge until the coordinator's heartbeat deadline hang-kills us.
      ::raise(SIGSTOP);
    }
    if (check(FaultSite::kProcExitMidPublish)) {
      // Reserve and mark a ring slot, never commit it, die. Readers must
      // bounded-wait past the torn record (sync satellite).
      const Input torn(64, 0xEE);
      hub_->publish_partial(id_, torn);
      ::_exit(kExitMidPublish);
    }
  }

 private:
  bool check(FaultSite site) {
    blk_->site_occurrences[static_cast<usize>(site)].fetch_add(
        1, std::memory_order_relaxed);
    return fault_->fire(site, id_);
  }

  FaultInjector* fault_;
  ShmHub* hub_;
  ShmWorkerBlock* blk_;
  const u32 id_;
  const u64 interval_;
  u64 next_;
};

}  // namespace

int worker_main(const WorkerParams& p) {
  ShmWorkerBlock* blk = p.segment->worker(p.id);
  blk->state.store(kWorkerStarting, std::memory_order_release);

  // Rebuild the deterministic fault schedule in this process, continuing
  // every site's occurrence sequence from the shm mirror — faults this
  // worker's previous incarnations consumed stay consumed.
  std::optional<FaultInjector> fault_storage;
  FaultInjector* fault = nullptr;
  if (p.fault_enabled) {
    fault_storage.emplace(p.fault_seed, p.fault_plan);
    fault = &*fault_storage;
    for (usize i = 0; i < kNumFaultSites; ++i) {
      fault->advance(static_cast<FaultSite>(i), p.id,
                     blk->site_occurrences[i].load(
                         std::memory_order_relaxed));
    }
  }

  // Validate the inherited segment before touching any other offset. The
  // kMmapFail chaos site models the attach itself failing.
  if (fault != nullptr) {
    blk->site_occurrences[static_cast<usize>(FaultSite::kMmapFail)]
        .fetch_add(1, std::memory_order_relaxed);
  }
  std::string err;
  if (!p.segment->validate(p.expect_workers, fault, p.id, &err)) {
    return kExitShmFail;
  }

  int code = kExitError;
  try {
    ShmHub hub(p.segment, p.hub, fault);
    persist::CheckpointStore store(p.instance_dir,
                                   persist::FaultCtx{fault, p.id},
                                   /*fresh=*/false);
    ChaosPump pump(fault, &hub, blk, p.id, p.chaos_check_interval);
    FaultInjector::ScopedThreadBinding bind(fault, p.id);

    CampaignConfig c = p.base;
    c.seed = p.base.seed + static_cast<u64>(p.id) * p.seed_stride;
    c.max_execs = p.goal;
    c.sync = &hub;
    c.sync_id = p.id;
    c.is_master = (p.id == 0);
    c.control = &blk->control;
    c.fault = fault;
    c.exec_hook = fault != nullptr ? &pump : nullptr;
    c.checkpoint = &store;
    c.checkpoint_interval = p.checkpoint_interval;
    c.keep_checkpoints = p.keep_checkpoints;
    c.resume_from_checkpoint = p.resume;
    // Telemetry sinks live in the coordinator's address space; after fork
    // any write here would land in a private COW page. The coordinator
    // derives per-worker telemetry from the shm heartbeat instead.
    c.telemetry = nullptr;
    c.telemetry_restore = false;

    blk->state.store(kWorkerRunning, std::memory_order_release);
    const CampaignResult r = run_campaign(*p.program, *p.seeds, c);
    if (::getenv("BIGMAP_FLEET_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "[worker %u] execs=%llu resumed=%d from=%llu "
                   "interesting=%llu fault_aborted=%d max_execs=%llu\n",
                   p.id, static_cast<unsigned long long>(r.execs),
                   r.resumed ? 1 : 0,
                   static_cast<unsigned long long>(r.resumed_from_execs),
                   static_cast<unsigned long long>(r.interesting),
                   r.fault_aborted ? 1 : 0,
                   static_cast<unsigned long long>(c.max_execs));
    }

    blk->result_execs.store(r.execs, std::memory_order_relaxed);
    blk->result_interesting.store(r.interesting, std::memory_order_relaxed);
    blk->result_crashes.store(r.crashes_total, std::memory_order_relaxed);
    blk->result_fault_aborted.store(r.fault_aborted ? 1 : 0,
                                    std::memory_order_relaxed);
    blk->state.store(kWorkerDone, std::memory_order_release);
    code = r.fault_aborted ? kExitFaultKill : kExitOk;
  } catch (const std::bad_alloc&) {
    code = kExitOom;
  } catch (const std::exception&) {
    code = kExitError;
  }
  // Final mirror sync: an orderly exit (clean, injected kill, even an
  // exception) leaves the consumed fault schedule fully visible to the
  // replacement process. Only a SIGKILL mid-attempt can lose up to one
  // check interval of non-lethal occurrences.
  if (fault != nullptr) mirror_occurrences(*fault, blk, p.id);
  return code;
}

}  // namespace bigmap::procfleet
