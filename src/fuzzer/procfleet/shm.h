// Shared-memory segment backing a multi-process fleet.
//
// The coordinator mmaps one MAP_SHARED | MAP_ANONYMOUS segment before
// forking any worker; every worker inherits the mapping at the same
// address, so the segment is plain shared state with no name, no file, and
// no cleanup beyond munmap. Layout:
//
//   [ShmHeader]            magic/version/geometry + layout fingerprint,
//                          hub ring head and hub-wide stats atomics
//   [ShmWorkerBlock x N]   per-worker control: the heartbeat word the
//                          coordinator's deadline monitor samples, the
//                          cooperative stop flag, the sync cursor, the
//                          chaos-site occurrence mirror that keeps seeded
//                          fault schedules cumulative across process
//                          restarts, and end-of-attempt result counters
//   [ShmSlot x R]          the publish ring (see shm_hub.h)
//
// Validation extends the in-process hub's id/size checks to a
// *cross-process layout fingerprint*: the header carries a hash of the
// format version, every geometry parameter, and every computed offset. A
// worker validates the fingerprint before touching anything else, so a
// worker forked by a differently configured (or differently compiled)
// coordinator refuses the segment instead of scribbling over foreign
// offsets.
//
// Crash safety: everything in the segment is a lock-free std::atomic —
// there is no lock a dying process can leave held. The publish ring uses
// per-slot seqlocks (shm_hub.h) so a worker killed mid-publish leaves a
// record readers detect and skip, never a wedge.
#pragma once

#include <atomic>
#include <string>

#include "fuzzer/campaign.h"
#include "util/fault.h"
#include "util/types.h"

namespace bigmap::procfleet {

inline constexpr u32 kShmMagic = 0x48534D42u;  // "BMSH" little-endian
inline constexpr u32 kShmVersion = 1;

// Worker lifecycle states published through ShmWorkerBlock::state.
inline constexpr u32 kWorkerIdle = 0;       // block not (re)claimed yet
inline constexpr u32 kWorkerStarting = 1;   // forked, before campaign runs
inline constexpr u32 kWorkerRunning = 2;    // campaign in progress
inline constexpr u32 kWorkerDone = 3;       // result counters are final

// Geometry the segment is created with; also the attach-side expectation.
struct ShmGeometry {
  u32 num_workers = 0;
  u32 max_records = 1u << 10;     // publish ring slots
  u32 max_input_size = 1u << 12;  // payload capacity per slot
};

struct ShmHeader {
  u32 magic = 0;
  u32 version = 0;
  u64 total_bytes = 0;
  // Hash over version + geometry + computed offsets; see
  // ShmSegment::compute_fingerprint().
  u64 layout_fingerprint = 0;
  u32 num_workers = 0;
  u32 max_records = 0;
  u32 max_input_size = 0;
  u32 slot_stride = 0;
  u64 worker_blocks_offset = 0;
  u64 slots_offset = 0;

  // --- hub ring state (see shm_hub.h for the protocol) -------------------
  std::atomic<u64> head{0};  // next absolute sequence number to reserve

  // --- hub-wide stats, SyncHubStats shape --------------------------------
  std::atomic<u64> total_published{0};
  std::atomic<u64> rejected_oversize{0};
  std::atomic<u64> dropped_faults{0};
  std::atomic<u64> fetched{0};
  std::atomic<u64> reader_timeouts{0};
};

// Per-worker shared state, padded to its own cache lines so heartbeat
// stores never false-share with a neighbour's.
struct alignas(64) ShmWorkerBlock {
  // Heartbeat/stop channel, sampled by the coordinator's deadline monitor
  // and fed directly to the campaign as its CampaignControl. progress is
  // the per-worker shared-memory heartbeat word.
  CampaignControl control;

  std::atomic<u32> state{kWorkerIdle};
  std::atomic<u32> exit_detail{0};  // worker-reported detail (unused sites)

  // Absolute hub cursor. Lives here (not in worker memory) so a restarted
  // worker continues — or deliberately rewinds — its predecessor's import
  // position.
  std::atomic<u64> sync_cursor{0};
  std::atomic<u64> sync_missed{0};

  // Occurrence counts of every fault site as observed by this worker's
  // injector, published after each campaign-side check. A replacement
  // process advances its fresh injector to these values, making "the nth
  // occurrence faults" cumulative across process restarts.
  std::atomic<u64> site_occurrences[kNumFaultSites];

  // End-of-attempt result counters (valid once state == kWorkerDone).
  // Lifetime totals for the worker's budget segment: a warm-resumed
  // attempt continues its predecessor's counters.
  std::atomic<u64> result_execs{0};
  std::atomic<u64> result_interesting{0};
  std::atomic<u64> result_crashes{0};
  std::atomic<u64> result_fault_aborted{0};
};

// Owns the mapping (coordinator side); workers access it through the
// inherited pointer. Not copyable; unmaps on destruction.
class ShmSegment {
 public:
  // Maps and initializes a fresh segment. Throws std::runtime_error when
  // the mmap fails.
  explicit ShmSegment(const ShmGeometry& geometry);
  ~ShmSegment();
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;

  ShmHeader* header() noexcept { return header_; }
  const ShmHeader* header() const noexcept { return header_; }

  ShmWorkerBlock* worker(u32 id);
  const ShmWorkerBlock* worker(u32 id) const;

  u8* slot_base() noexcept;
  usize total_bytes() const noexcept { return total_bytes_; }

  // Re-derives the layout fingerprint from the header's geometry and
  // compares it (plus magic/version) against what the header claims.
  // Returns false — with a reason in *err — on any mismatch. Workers call
  // this before touching the segment; `fault` lets the kMmapFail chaos
  // site fail the attach deterministically.
  bool validate(u32 expect_workers, FaultInjector* fault, u32 instance,
                std::string* err) const;

  static u64 compute_fingerprint(const ShmHeader& h) noexcept;

 private:
  ShmHeader* header_ = nullptr;
  usize total_bytes_ = 0;
};

}  // namespace bigmap::procfleet
