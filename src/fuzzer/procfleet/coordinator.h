// Multi-process fleet coordinator: crash-isolated campaign workers.
//
// run_process_fleet() is the process-level sibling of the thread
// supervisor (fuzzer/supervisor.h): N campaign instances run in *forked
// worker processes* over a shared-memory segment (procfleet/shm.h), so a
// worker that SIGKILLs itself, wedges, or corrupts its own heap cannot
// take the fleet down — the blast radius of any failure is one process.
//
// The coordinator is a single-threaded event loop:
//
//  - heartbeat monitor: each worker's campaign bumps the CampaignControl
//    progress word in its ShmWorkerBlock; a worker whose word has not
//    moved within stall_deadline_ms is hang-killed (SIGKILL) — this is
//    what catches SIGSTOP'd, swapped-out, or livelocked workers that a
//    cooperative stop flag can never reach;
//  - exit-status triage: waitpid distinguishes clean completion, the
//    worker exit codes (OOM / shm attach failure / error / injected
//    kill / died-mid-publish), coordinator-initiated hang kills, and
//    genuine crash signals — each triaged into its own counter;
//  - restarts: exponential backoff under a per-worker retry budget.
//    Restarts are *warm*: the replacement process resumes from the
//    worker's last checkpoint (PR5), continues the same budget segment,
//    and advances its fresh fault injector to the chaos-site occurrence
//    counts mirrored in shared memory, so seeded fault schedules stay
//    cumulative across process generations;
//  - quarantine: a worker that dies abnormally quarantine_deaths times
//    within quarantine_window_ms is parked instead of restarted. Its
//    durable progress (last checkpoint) is kept, and the undone part of
//    its exec budget is redistributed over the remaining live workers so
//    the fleet still delivers the full configured budget, degraded but
//    exact;
//  - persistence: every lifecycle transition is journaled to the
//    FleetStore (kEventRunning / kEventCompleted / kEventFailed /
//    kEventQuarantined), so killing the *coordinator* and relaunching
//    with resume = true continues the fleet with find-union semantics
//    identical to an uninterrupted run;
//  - telemetry: restart/hang-kill/crash-signal/quarantine counters flow
//    into the FleetTelemetry registry as procfleet.* counters, and
//    per-worker exec heartbeats feed the per-instance sinks, so
//    fuzzer_stats / plot_data emitters see process fleets exactly like
//    thread fleets.
#pragma once

#include <string>
#include <vector>

#include "corpus/novelty.h"
#include "fuzzer/campaign.h"
#include "fuzzer/netfleet/failover.h"
#include "fuzzer/netfleet/link.h"
#include "fuzzer/sync.h"
#include "persist/checkpoint.h"
#include "target/program.h"
#include "telemetry/sink.h"
#include "util/fault.h"
#include "util/types.h"

namespace bigmap::procfleet {

struct ProcFleetConfig {
  u32 num_workers = 4;

  // Template for every worker; per-worker fields (seed, sync, control,
  // persistence, fault wiring) are filled in by the worker itself.
  CampaignConfig base;
  u64 instance_seed_stride = 1;

  // Heartbeat monitor: poll every poll_ms; SIGKILL a worker whose
  // progress word has not moved within stall_deadline_ms.
  u32 poll_ms = 5;
  u32 stall_deadline_ms = 1000;

  // Restart policy (per worker, exponential backoff).
  u32 max_restarts_per_worker = 8;
  u32 backoff_initial_ms = 5;
  double backoff_multiplier = 2.0;
  u32 backoff_cap_ms = 500;

  // Quarantine: park a worker that dies abnormally `quarantine_deaths`
  // times within `quarantine_window_ms` (0 deaths disables quarantine).
  // Parked workers keep their durable progress; their remaining exec
  // budget is redistributed over the surviving workers.
  u32 quarantine_deaths = 0;
  u32 quarantine_window_ms = 10000;

  // Shared publish ring sizing and reader bounded-wait (see shm_hub.h).
  u32 sync_max_records = 1u << 10;
  u32 sync_max_input_size = 1u << 12;
  u32 sync_read_timeout_us = 2000;

  // Deterministic chaos schedule. Unlike the thread supervisor's injected
  // FaultInjector*, the plan is passed by value: every worker process
  // rebuilds its own injector from (fault_seed, fault_plan) and continues
  // the chaos-site occurrence sequence from the shm mirror. The
  // coordinator builds one too, for its own journal I/O faults.
  bool fault_enabled = false;
  u64 fault_seed = 0;
  FaultPlan fault_plan;
  // Executions between chaos-site checks inside each worker.
  u64 chaos_check_interval = 64;

  // Fleet persistence — REQUIRED (run_process_fleet throws on empty):
  // process isolation without durable state would lose every find a dead
  // worker had not synced, and warm restarts are the whole point.
  std::string persist_dir;
  u64 checkpoint_interval = 1024;
  u32 keep_checkpoints = 2;
  bool resume = false;

  // Optional fleet telemetry (>= num_workers sinks; validated). Sinks
  // live in the coordinator: per-worker execs are fed from the shm
  // heartbeat (monotone deltas), fleet counters from the triage loop.
  telemetry::FleetTelemetry* telemetry = nullptr;
  u32 fleet_stamp_ms = 100;

  // Safety net: when > 0 and the fleet exceeds this, every worker gets a
  // cooperative stop, then a SIGKILL grace period.
  double max_wall_seconds = 0.0;

  // Federation (src/fuzzer/netfleet): when net.enabled, the coordinator
  // reserves one extra hub instance as the remote peer's gateway identity
  // and pumps a PeerLink from its event loop — workers never know the
  // difference; remote finds arrive through their ordinary fetch_new.
  netfleet::NetPeerConfig net;

  // Hub role of a star topology: one link per spoke, all sharing the
  // single gateway instance, with spoke-to-spoke relay through the hub
  // (netfleet/mesh.h). Mutually exclusive with net.enabled — a coordinator
  // is either a spoke (one link) or the hub (many).
  std::vector<netfleet::NetPeerConfig> mesh_links;

  // Upgrades every gateway link's novelty gate from content-hash to
  // virgin-map semantics: a per-link corpus::NoveltyOracle re-executes
  // each candidate against a model of that peer's coverage and ships it
  // only when it would flip virgin bits there. Opt-in so oracle-free
  // federation runs stay bit-identical.
  bool net_virgin_oracle = false;

  // Self-healing federation node (netfleet/failover.h): elects a new hub
  // when the current one dies, fences stale epochs, syncs oracle state by
  // delta. Mutually exclusive with net.enabled and mesh_links — the
  // FailoverMesh subsumes both roles and switches between them at
  // runtime. Its wal_path defaults to <persist_dir>/federation.wal; with
  // net_virgin_oracle set its models are built by make_novelty_oracle
  // exactly like the mesh's.
  netfleet::FailoverNodeConfig failover;
};

enum class WorkerState : u8 {
  kCompleted,    // delivered its full exec budget
  kFailed,       // retry budget exhausted / wall-clock stop
  kQuarantined,  // parked after repeated abnormal deaths
};

struct WorkerHealth {
  u32 id = 0;
  WorkerState state = WorkerState::kCompleted;
  u32 attempts = 0;       // processes forked (>= 1)
  u32 restarts = 0;
  u32 hang_kills = 0;     // coordinator SIGKILLs after heartbeat deadline
  u32 crash_signals = 0;  // abnormal signal deaths not initiated by us
  u32 oom_kills = 0;      // kExitOom exits
  u32 shm_failures = 0;   // kExitShmFail exits (attach/validate refused)
  u32 error_exits = 0;    // kExitError + kExitMidPublish exits
  u32 kills = 0;          // injected kInstanceKill (kExitFaultKill exits)
  int last_signal = 0;    // most recent crash signal number
  u64 execs = 0;          // durable lifetime execs (budget segment total)
  u64 interesting = 0;
  u64 crashes_total = 0;
  u64 goal = 0;           // final exec budget (base + quarantine grants)
  std::string last_error;
};

struct ProcFleetResult {
  std::vector<WorkerHealth> workers;

  // Union across every worker's durable state (final snapshots) — the
  // cross-instance crash metric the chaos drill compares.
  std::vector<u32> found_bug_ids;
  std::vector<u64> found_stack_hashes;

  u64 total_execs = 0;
  u64 total_interesting = 0;
  u64 total_crashes = 0;
  u64 total_restarts = 0;
  u32 quarantined = 0;
  // Budget that could not be redistributed because no live worker was
  // left to absorb it (every survivor quarantined/failed).
  u64 unassigned_budget = 0;
  double wall_seconds = 0.0;
  double aggregate_throughput = 0.0;

  SyncHubStats sync;
  persist::PersistStats persist;
  bool resumed = false;

  // Federation link accounting (zeroed when no link was configured). For
  // a star hub this is the sum over every spoke link; `mesh` then carries
  // the per-link breakdown.
  netfleet::LinkStats net;
  std::vector<netfleet::LinkStats> mesh;

  // Gateway novelty-oracle accounting, aggregated over every link (zeroed
  // unless net_virgin_oracle was set).
  corpus::OracleStats oracle;

  // Self-healing federation accounting (zeroed unless failover.enabled;
  // its net/oracle fields are also copied into the two members above).
  netfleet::FailoverStats failover;

  // Final fleet-level telemetry snapshot (zeroed without telemetry).
  telemetry::StatsSnapshot fleet_total;

  bool all_completed() const noexcept {
    for (const WorkerHealth& h : workers) {
      if (h.state != WorkerState::kCompleted) return false;
    }
    return !workers.empty();
  }
};

// Runs `config.num_workers` campaign workers of `config.base` over
// `program`/`seeds` in forked processes. Blocks until every worker
// completes, fails, or is quarantined. Throws std::invalid_argument on a
// malformed config (no persist_dir, zero workers with resume, telemetry
// too small) and std::runtime_error when the fleet store refuses the
// directory.
ProcFleetResult run_process_fleet(const Program& program,
                                  const std::vector<Input>& seeds,
                                  const ProcFleetConfig& config);

}  // namespace bigmap::procfleet
