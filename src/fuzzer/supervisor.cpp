#include "fuzzer/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "persist/fleet.h"
#include "persist/io.h"
#include "util/timing.h"

namespace bigmap {
namespace {

// Per-instance supervision state. The worker thread writes `result` /
// `error` and then sets `done` (release); the supervisor reads them only
// after observing `done` (acquire) and joining, so the handoff is clean.
struct Slot {
  enum class Phase { kPending, kRunning, kFinished };

  u32 id = 0;
  Phase phase = Phase::kPending;
  std::unique_ptr<CampaignControl> control;
  std::thread thread;

  std::atomic<bool> done{false};
  bool has_result = false;
  bool bad_alloc = false;
  CampaignResult result;
  std::string error;

  bool stall_requested = false;
  bool wall_stopped = false;
  u64 last_progress = 0;
  u64 last_progress_ns = 0;
  u64 next_start_ns = 0;

  // Budget-segment accounting. An attempt's lifetime counters are relative
  // to its *segment*: a cold (re)start opens a new segment (base_* absorbs
  // everything charged so far, the segment budget shrinks to what is still
  // owed), while a warm restart resumes the same segment from a checkpoint
  // (the restored counters already continue the segment, so base_* and the
  // budget stay put). health = base + latest attempt's counters, which
  // makes the fleet total exactly N * max_execs no matter how often
  // instances die.
  u64 base_execs = 0;
  u64 base_interesting = 0;
  u64 base_crashes = 0;
  u64 base_faulted_execs = 0;
  u64 base_injected_hangs = 0;
  u64 segment_max_execs = 0;
  bool resume_next = false;     // next attempt restores from checkpoint
  bool prime_telemetry = false;  // next attempt re-primes a fresh sink

  InstanceHealth health;
};

u64 backoff_ns(const SupervisorConfig& cfg, u32 restarts_done) {
  double ms = static_cast<double>(cfg.backoff_initial_ms);
  for (u32 i = 1; i < restarts_done; ++i) ms *= cfg.backoff_multiplier;
  ms = std::min(ms, static_cast<double>(cfg.backoff_cap_ms));
  return static_cast<u64>(ms * 1e6);
}

// Did this attempt run to its configured stop condition (as opposed to
// being cut short by a stop request)? The exec bound is the slot's
// *segment* budget, not the configured total — a cold restart only owes
// what earlier segments have not already consumed.
bool reached_own_bound(const Slot& s, const CampaignConfig& base,
                       const CampaignResult& r) {
  if (s.segment_max_execs != 0 && r.execs >= s.segment_max_execs) {
    return true;
  }
  if (base.max_seconds > 0.0 && r.wall_seconds >= base.max_seconds) {
    return true;
  }
  return false;
}

}  // namespace

SupervisorResult run_supervised_campaign(const Program& program,
                                         const std::vector<Input>& seeds,
                                         const SupervisorConfig& config) {
  SupervisorResult out;
  if (config.num_instances == 0) return out;
  telemetry::FleetTelemetry* fleet = config.telemetry;
  if (fleet != nullptr && fleet->num_instances() < config.num_instances) {
    throw std::invalid_argument(
        "run_supervised_campaign: FleetTelemetry has " +
        std::to_string(fleet->num_instances()) + " sinks for " +
        std::to_string(config.num_instances) + " instances");
  }
  if (fleet != nullptr && config.fault != nullptr) {
    // Fault-injection runs become observable in the same scrape.
    config.fault->set_registry(&fleet->registry());
  }

  // Fleet persistence: open (or resume) the on-disk store before any
  // thread starts so a fingerprint mismatch fails fast.
  std::unique_ptr<persist::FleetStore> fleet_store;
  if (!config.persist_dir.empty()) {
    persist::FleetFingerprint fp;
    fp.num_instances = config.num_instances;
    fp.base_seed = config.base.seed;
    fp.seed_stride = config.instance_seed_stride;
    fp.max_execs = config.base.max_execs;
    fp.scheme = static_cast<u32>(config.base.scheme);
    fp.metric = static_cast<u32>(config.base.metric);
    fp.map_size = static_cast<u64>(config.base.map.map_size);
    fleet_store = std::make_unique<persist::FleetStore>(
        config.persist_dir, fp, persist::FaultCtx{config.fault, 0},
        config.resume);
    if (!fleet_store->ok()) {
      throw std::runtime_error("run_supervised_campaign: " +
                               fleet_store->error());
    }
    out.resumed = fleet_store->resumed();
  }

  SyncHubOptions hub_opts;
  hub_opts.num_instances = config.num_instances;
  hub_opts.max_records = config.sync_max_records;
  hub_opts.max_input_size = config.sync_max_input_size;
  SyncHub hub(hub_opts);
  hub.set_fault_injector(config.fault);

  const u64 start_ns = monotonic_ns();
  const u64 stall_ns = static_cast<u64>(config.stall_deadline_ms) * 1000000;

  std::vector<std::unique_ptr<Slot>> slots;
  slots.reserve(config.num_instances);
  for (u32 id = 0; id < config.num_instances; ++id) {
    auto s = std::make_unique<Slot>();
    s->id = id;
    s->health.id = id;
    s->segment_max_execs = config.base.max_execs;
    slots.push_back(std::move(s));
  }

  std::unordered_set<u32> bug_union;
  std::unordered_set<u64> stack_union;

  // Whole-process resume: replay the journal into the slots. Instances the
  // previous process finished stay finished (their triage identities are
  // recovered from their final snapshot); instances that were still owed
  // budget resume warm from their last checkpoint. An instance with no
  // journal event at all died mid-first-attempt — its checkpoint store may
  // still hold snapshots, so it also resumes warm (falling back to a cold
  // start if nothing usable is on disk).
  if (fleet_store != nullptr && fleet_store->resumed()) {
    for (auto& sp : slots) {
      Slot& s = *sp;
      const std::optional<persist::InstanceEvent> ev =
          fleet_store->last_event(s.id);
      if (!ev.has_value()) {
        s.resume_next = true;
        s.prime_telemetry = true;
        continue;
      }
      s.health.attempts = ev->attempts;
      s.health.restarts = ev->restarts;
      s.health.stalls = ev->stalls;
      s.health.kills = ev->kills;
      s.health.alloc_failures = ev->alloc_failures;
      s.health.warm_restarts = ev->warm_restarts;
      s.health.execs = ev->execs;
      s.health.interesting = ev->interesting;
      s.health.crashes_total = ev->crashes_total;
      s.health.faulted_execs = ev->faulted_execs;
      s.health.injected_hangs = ev->injected_hangs;
      s.base_execs = ev->base_execs;
      s.base_interesting = ev->base_interesting;
      s.base_crashes = ev->base_crashes;
      s.base_faulted_execs = ev->base_faulted_execs;
      s.base_injected_hangs = ev->base_injected_hangs;
      s.segment_max_execs = ev->segment_max_execs != 0
                                ? ev->segment_max_execs
                                : config.base.max_execs;

      // Resumable: still marked running, or failed with budget left (the
      // operator relaunched after fixing whatever killed it — a failure
      // with execs still owed continues, it does not stay buried).
      const bool owes_budget = config.base.max_execs == 0 ||
                               ev->execs < config.base.max_execs;
      if (ev->final_state != persist::kEventCompleted && owes_budget) {
        s.resume_next = true;
        s.prime_telemetry = true;
        // The campaign's telemetry_restore primes the sink with the
        // restored segment's counters; the earlier cold segments are
        // primed here so lifetime totals stay continuous.
        if (fleet != nullptr) {
          telemetry::TelemetrySink& sink = fleet->instance(s.id);
          sink.execs.add(s.base_execs);
          sink.interesting.add(s.base_interesting);
          sink.crashes.add(s.base_crashes);
          sink.faulted_execs.add(s.base_faulted_execs);
          sink.injected_hangs.add(s.base_injected_hangs);
        }
        continue;
      }

      // Finished in the previous process: recover the triage identities
      // from the instance's final snapshot and close the slot without
      // re-journaling.
      s.health.state = ev->final_state == persist::kEventCompleted
                           ? InstanceState::kCompleted
                           : InstanceState::kFailed;
      s.phase = Slot::Phase::kFinished;
      persist::CheckpointStore::LoadOutcome lo =
          fleet_store->instance_store(s.id).load_latest();
      if (lo.snapshot.has_value()) {
        for (u32 b : lo.snapshot->bug_ids) bug_union.insert(b);
        for (u64 h : lo.snapshot->stack_hashes) stack_union.insert(h);
      }
      if (fleet != nullptr) {
        telemetry::TelemetrySink& sink = fleet->instance(s.id);
        sink.execs.add(s.health.execs);
        sink.interesting.add(s.health.interesting);
        sink.crashes.add(s.health.crashes_total);
        sink.faulted_execs.add(s.health.faulted_execs);
        sink.injected_hangs.add(s.health.injected_hangs);
      }
    }
  }

  // Appends this slot's current accounting to the fleet journal. Failures
  // (real or injected) are non-fatal: the run continues, a future resume
  // just sees a slightly staler event.
  auto journal_event = [&](const Slot& s, u32 final_state) {
    if (fleet_store == nullptr) return;
    persist::InstanceEvent ev;
    ev.instance = s.id;
    ev.final_state = final_state;
    ev.attempts = s.health.attempts;
    ev.restarts = s.health.restarts;
    ev.stalls = s.health.stalls;
    ev.kills = s.health.kills;
    ev.alloc_failures = s.health.alloc_failures;
    ev.warm_restarts = s.health.warm_restarts;
    ev.execs = s.health.execs;
    ev.interesting = s.health.interesting;
    ev.crashes_total = s.health.crashes_total;
    ev.faulted_execs = s.health.faulted_execs;
    ev.injected_hangs = s.health.injected_hangs;
    ev.base_execs = s.base_execs;
    ev.base_interesting = s.base_interesting;
    ev.base_crashes = s.base_crashes;
    ev.base_faulted_execs = s.base_faulted_execs;
    ev.base_injected_hangs = s.base_injected_hangs;
    ev.segment_max_execs = s.segment_max_execs;
    // Newest snapshot actually committed so far, so statecheck can detect
    // journal events referencing state that never made it to disk.
    ev.checkpoint_seq =
        fleet_store->instance_store(s.id).newest_seq_on_disk();
    std::string err;
    (void)fleet_store->append_event(ev, &err);
  };

  auto launch = [&](Slot& s) {
    s.control = std::make_unique<CampaignControl>();
    s.done.store(false, std::memory_order_relaxed);
    s.has_result = false;
    s.bad_alloc = false;
    s.error.clear();
    s.stall_requested = false;
    s.last_progress = 0;
    s.last_progress_ns = monotonic_ns();
    ++s.health.attempts;
    s.phase = Slot::Phase::kRunning;

    // Captured by value: the worker must see the slot's persistence
    // decisions as they were at launch, not as the supervisor later
    // mutates them. The one-shot flags are consumed here.
    persist::CheckpointStore* store =
        fleet_store != nullptr ? &fleet_store->instance_store(s.id)
                               : nullptr;
    const bool resume_this = s.resume_next;
    const bool prime = s.prime_telemetry;
    const u64 seg_max = s.segment_max_execs;
    s.resume_next = false;
    s.prime_telemetry = false;

    s.thread = std::thread([&hub, &program, &seeds, &config, &s, store,
                            resume_this, prime, seg_max]() {
      FaultInjector::ScopedThreadBinding bind(config.fault, s.id);
      try {
        CampaignConfig c = config.base;
        c.seed = config.base.seed + s.id * config.instance_seed_stride;
        c.max_execs = seg_max;
        c.sync = &hub;
        c.sync_id = s.id;
        c.is_master = (s.id == 0);
        c.control = s.control.get();
        c.fault = config.fault;
        c.checkpoint = store;
        c.checkpoint_interval = config.checkpoint_interval;
        c.keep_checkpoints = config.keep_checkpoints;
        c.resume_from_checkpoint = resume_this;
        c.telemetry_restore = prime;
        if (config.telemetry != nullptr) {
          c.telemetry = &config.telemetry->instance(s.id);
        }
        s.result = run_campaign(program, seeds, c);
        s.has_result = true;
      } catch (const std::bad_alloc&) {
        s.bad_alloc = true;
        s.error = "std::bad_alloc";
      } catch (const std::exception& e) {
        s.error = e.what();
      }
      s.done.store(true, std::memory_order_release);
    });
  };

  auto absorb_result = [&](Slot& s) {
    // Assign, don't add: the attempt's counters are lifetime totals for
    // the current budget segment (a warm-resumed attempt continues the
    // counters of the attempt it replaced).
    const CampaignResult& r = s.result;
    s.health.execs = s.base_execs + r.execs;
    s.health.interesting = s.base_interesting + r.interesting;
    s.health.crashes_total = s.base_crashes + r.crashes_total;
    s.health.faulted_execs = s.base_faulted_execs + r.faulted_execs;
    s.health.injected_hangs = s.base_injected_hangs + r.injected_hangs;
    for (u32 b : r.found_bug_ids) bug_union.insert(b);
    for (u64 h : r.found_stack_hashes) stack_union.insert(h);
  };

  auto finish = [&](Slot& s, InstanceState state) {
    s.phase = Slot::Phase::kFinished;
    s.health.state = state;
    journal_event(s, state == InstanceState::kCompleted
                         ? persist::kEventCompleted
                         : persist::kEventFailed);
  };

  // Joins a finished worker and decides: completed, restart, or give up.
  auto handle_outcome = [&](Slot& s) {
    s.thread.join();

    bool restart_needed;
    if (s.has_result) {
      absorb_result(s);
      if (s.result.fault_aborted) {
        ++s.health.kills;
        if (fleet != nullptr) fleet->kills().add();
        restart_needed = true;
      } else if (s.stall_requested &&
                 !reached_own_bound(s, config.base, s.result)) {
        restart_needed = true;
      } else {
        restart_needed = false;
      }
      // Budget exactness: whatever cut this attempt short, an instance
      // that has consumed its configured total owes nothing more.
      if (restart_needed && config.base.max_execs != 0 &&
          s.health.execs >= config.base.max_execs) {
        restart_needed = false;
      }
    } else {
      if (s.bad_alloc) {
        ++s.health.alloc_failures;
        if (fleet != nullptr) fleet->alloc_failures().add();
      }
      s.health.last_error = s.error;
      restart_needed = true;
    }

    if (s.wall_stopped) {
      // Safety stop: no replacements; an attempt cut short of its own
      // stop condition is reported as failed, not quietly completed.
      const bool completed = s.has_result && !s.result.fault_aborted &&
                             reached_own_bound(s, config.base, s.result);
      finish(s, completed ? InstanceState::kCompleted
                          : InstanceState::kFailed);
      if (s.health.state == InstanceState::kFailed &&
          s.health.last_error.empty()) {
        s.health.last_error = "supervisor wall-clock limit";
      }
      return;
    }

    if (!restart_needed) {
      finish(s, InstanceState::kCompleted);
      return;
    }
    if (s.health.restarts >= config.max_restarts_per_instance) {
      if (s.health.last_error.empty()) {
        s.health.last_error = "retry budget exhausted";
      }
      finish(s, InstanceState::kFailed);
      return;
    }
    ++s.health.restarts;
    if (fleet_store != nullptr) {
      // Warm restart: the replacement attempt restores the last good
      // checkpoint and keeps working against the same segment budget.
      // (If nothing usable is on disk it cold-starts inside the same
      // segment, which re-runs some execs but keeps the total exact.)
      s.resume_next = true;
      ++s.health.warm_restarts;
    } else if (s.has_result) {
      // Cold restart with a partial result: open a new segment. Charge
      // everything consumed so far to base_* and shrink the replacement's
      // budget to the execs still owed.
      s.base_execs = s.health.execs;
      s.base_interesting = s.health.interesting;
      s.base_crashes = s.health.crashes_total;
      s.base_faulted_execs = s.health.faulted_execs;
      s.base_injected_hangs = s.health.injected_hangs;
      if (config.base.max_execs != 0) {
        s.segment_max_execs = config.base.max_execs - s.health.execs;
      }
    }
    // (No result at all — bad_alloc before the loop started — retries the
    // unchanged segment: nothing was consumed, nothing to rebase.)
    journal_event(s, persist::kEventRunning);
    const u64 backoff = backoff_ns(config, s.health.restarts);
    if (fleet != nullptr) {
      fleet->restarts().add();
      fleet->instance(s.id).restarts.add();
      fleet->backoff_ms_total().add(backoff / 1000000);
    }
    s.next_start_ns = monotonic_ns() + backoff;
    // The restarted instance rebuilds its queue from the seeds; rewinding
    // its cursor lets it re-import everything the hub still retains.
    hub.reset_cursor(s.id);
    s.phase = Slot::Phase::kPending;
  };

  bool wall_stop_issued = false;
  u64 next_fleet_stamp_ns = start_ns;
  for (;;) {
    usize unfinished = 0;
    const u64 now = monotonic_ns();

    if (fleet != nullptr && config.fleet_stamp_ms > 0 &&
        now >= next_fleet_stamp_ns) {
      next_fleet_stamp_ns =
          now + static_cast<u64>(config.fleet_stamp_ms) * 1000000;
      fleet->stamp_fleet();
    }

    if (config.max_wall_seconds > 0.0 && !wall_stop_issued &&
        static_cast<double>(now - start_ns) * 1e-9 >
            config.max_wall_seconds) {
      wall_stop_issued = true;
      for (auto& sp : slots) {
        sp->wall_stopped = true;
        if (sp->phase == Slot::Phase::kRunning && sp->control != nullptr) {
          sp->control->stop.store(true, std::memory_order_relaxed);
        } else if (sp->phase == Slot::Phase::kPending) {
          // Never started (or waiting out a backoff): give up on it.
          if (sp->health.last_error.empty()) {
            sp->health.last_error = "supervisor wall-clock limit";
          }
          finish(*sp, InstanceState::kFailed);
        }
      }
    }

    for (auto& sp : slots) {
      Slot& s = *sp;
      switch (s.phase) {
        case Slot::Phase::kPending:
          if (now >= s.next_start_ns) launch(s);
          ++unfinished;
          break;
        case Slot::Phase::kRunning:
          if (s.done.load(std::memory_order_acquire)) {
            handle_outcome(s);
            if (s.phase != Slot::Phase::kFinished) ++unfinished;
            break;
          }
          ++unfinished;
          {
            const u64 p =
                s.control->progress.load(std::memory_order_relaxed);
            if (p != s.last_progress) {
              s.last_progress = p;
              s.last_progress_ns = now;
            } else if (!s.stall_requested &&
                       now - s.last_progress_ns > stall_ns) {
              // Watchdog: no exec progress within the deadline. Ask the
              // instance to wind down; the restart decision happens when
              // it does.
              s.stall_requested = true;
              ++s.health.stalls;
              if (fleet != nullptr) fleet->stalls().add();
              s.control->stop.store(true, std::memory_order_relaxed);
            }
          }
          break;
        case Slot::Phase::kFinished:
          break;
      }
    }

    if (unfinished == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(config.poll_ms));
  }

  out.wall_seconds = static_cast<double>(monotonic_ns() - start_ns) * 1e-9;
  out.instances.reserve(slots.size());
  for (auto& sp : slots) {
    Slot& s = *sp;
    if (config.fault != nullptr) {
      s.health.faults_injected = config.fault->injected_for(s.id);
      out.faults_injected += s.health.faults_injected;
      if (s.health.state == InstanceState::kCompleted) {
        out.faults_survived += s.health.faults_injected;
      }
    }
    out.total_execs += s.health.execs;
    out.total_interesting += s.health.interesting;
    out.total_crashes += s.health.crashes_total;
    out.total_restarts += s.health.restarts;
    out.instances.push_back(s.health);
  }
  out.found_bug_ids.assign(bug_union.begin(), bug_union.end());
  std::sort(out.found_bug_ids.begin(), out.found_bug_ids.end());
  out.found_stack_hashes.assign(stack_union.begin(), stack_union.end());
  std::sort(out.found_stack_hashes.begin(), out.found_stack_hashes.end());
  out.aggregate_throughput =
      out.wall_seconds > 0
          ? static_cast<double>(out.total_execs) / out.wall_seconds
          : 0.0;
  out.sync = hub.stats();
  if (fleet_store != nullptr) {
    out.persist = fleet_store->stats();
  }
  if (fleet != nullptr) {
    out.fleet_total = fleet->stamp_fleet();
  }
  return out;
}

}  // namespace bigmap
