#include "fuzzer/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "util/timing.h"

namespace bigmap {
namespace {

// Per-instance supervision state. The worker thread writes `result` /
// `error` and then sets `done` (release); the supervisor reads them only
// after observing `done` (acquire) and joining, so the handoff is clean.
struct Slot {
  enum class Phase { kPending, kRunning, kFinished };

  u32 id = 0;
  Phase phase = Phase::kPending;
  std::unique_ptr<CampaignControl> control;
  std::thread thread;

  std::atomic<bool> done{false};
  bool has_result = false;
  bool bad_alloc = false;
  CampaignResult result;
  std::string error;

  bool stall_requested = false;
  bool wall_stopped = false;
  u64 last_progress = 0;
  u64 last_progress_ns = 0;
  u64 next_start_ns = 0;

  InstanceHealth health;
};

u64 backoff_ns(const SupervisorConfig& cfg, u32 restarts_done) {
  double ms = static_cast<double>(cfg.backoff_initial_ms);
  for (u32 i = 1; i < restarts_done; ++i) ms *= cfg.backoff_multiplier;
  ms = std::min(ms, static_cast<double>(cfg.backoff_cap_ms));
  return static_cast<u64>(ms * 1e6);
}

// Did this attempt run to its configured stop condition (as opposed to
// being cut short by a stop request)?
bool reached_own_bound(const CampaignConfig& base, const CampaignResult& r) {
  if (base.max_execs != 0 && r.execs >= base.max_execs) return true;
  if (base.max_seconds > 0.0 && r.wall_seconds >= base.max_seconds) {
    return true;
  }
  return false;
}

}  // namespace

SupervisorResult run_supervised_campaign(const Program& program,
                                         const std::vector<Input>& seeds,
                                         const SupervisorConfig& config) {
  SupervisorResult out;
  if (config.num_instances == 0) return out;
  telemetry::FleetTelemetry* fleet = config.telemetry;
  if (fleet != nullptr && fleet->num_instances() < config.num_instances) {
    throw std::invalid_argument(
        "run_supervised_campaign: FleetTelemetry has " +
        std::to_string(fleet->num_instances()) + " sinks for " +
        std::to_string(config.num_instances) + " instances");
  }
  if (fleet != nullptr && config.fault != nullptr) {
    // Fault-injection runs become observable in the same scrape.
    config.fault->set_registry(&fleet->registry());
  }

  SyncHubOptions hub_opts;
  hub_opts.num_instances = config.num_instances;
  hub_opts.max_records = config.sync_max_records;
  hub_opts.max_input_size = config.sync_max_input_size;
  SyncHub hub(hub_opts);
  hub.set_fault_injector(config.fault);

  const u64 start_ns = monotonic_ns();
  const u64 stall_ns = static_cast<u64>(config.stall_deadline_ms) * 1000000;

  std::vector<std::unique_ptr<Slot>> slots;
  slots.reserve(config.num_instances);
  for (u32 id = 0; id < config.num_instances; ++id) {
    auto s = std::make_unique<Slot>();
    s->id = id;
    s->health.id = id;
    slots.push_back(std::move(s));
  }

  std::unordered_set<u32> bug_union;
  std::unordered_set<u64> stack_union;

  auto launch = [&](Slot& s) {
    s.control = std::make_unique<CampaignControl>();
    s.done.store(false, std::memory_order_relaxed);
    s.has_result = false;
    s.bad_alloc = false;
    s.error.clear();
    s.stall_requested = false;
    s.last_progress = 0;
    s.last_progress_ns = monotonic_ns();
    ++s.health.attempts;
    s.phase = Slot::Phase::kRunning;

    s.thread = std::thread([&hub, &program, &seeds, &config, &s]() {
      FaultInjector::ScopedThreadBinding bind(config.fault, s.id);
      try {
        CampaignConfig c = config.base;
        c.seed = config.base.seed + s.id * config.instance_seed_stride;
        c.sync = &hub;
        c.sync_id = s.id;
        c.is_master = (s.id == 0);
        c.control = s.control.get();
        c.fault = config.fault;
        if (config.telemetry != nullptr) {
          c.telemetry = &config.telemetry->instance(s.id);
        }
        s.result = run_campaign(program, seeds, c);
        s.has_result = true;
      } catch (const std::bad_alloc&) {
        s.bad_alloc = true;
        s.error = "std::bad_alloc";
      } catch (const std::exception& e) {
        s.error = e.what();
      }
      s.done.store(true, std::memory_order_release);
    });
  };

  auto absorb_result = [&](Slot& s) {
    const CampaignResult& r = s.result;
    s.health.execs += r.execs;
    s.health.interesting += r.interesting;
    s.health.crashes_total += r.crashes_total;
    s.health.faulted_execs += r.faulted_execs;
    s.health.injected_hangs += r.injected_hangs;
    for (u32 b : r.found_bug_ids) bug_union.insert(b);
    for (u64 h : r.found_stack_hashes) stack_union.insert(h);
  };

  auto finish = [&](Slot& s, InstanceState state) {
    s.phase = Slot::Phase::kFinished;
    s.health.state = state;
  };

  // Joins a finished worker and decides: completed, restart, or give up.
  auto handle_outcome = [&](Slot& s) {
    s.thread.join();

    bool restart_needed;
    if (s.has_result) {
      absorb_result(s);
      if (s.result.fault_aborted) {
        ++s.health.kills;
        if (fleet != nullptr) fleet->kills().add();
        restart_needed = true;
      } else if (s.stall_requested && !reached_own_bound(config.base,
                                                         s.result)) {
        restart_needed = true;
      } else {
        restart_needed = false;
      }
    } else {
      if (s.bad_alloc) {
        ++s.health.alloc_failures;
        if (fleet != nullptr) fleet->alloc_failures().add();
      }
      s.health.last_error = s.error;
      restart_needed = true;
    }

    if (s.wall_stopped) {
      // Safety stop: no replacements; an attempt cut short of its own
      // stop condition is reported as failed, not quietly completed.
      const bool completed = s.has_result && !s.result.fault_aborted &&
                             reached_own_bound(config.base, s.result);
      finish(s, completed ? InstanceState::kCompleted
                          : InstanceState::kFailed);
      if (s.health.state == InstanceState::kFailed &&
          s.health.last_error.empty()) {
        s.health.last_error = "supervisor wall-clock limit";
      }
      return;
    }

    if (!restart_needed) {
      finish(s, InstanceState::kCompleted);
      return;
    }
    if (s.health.restarts >= config.max_restarts_per_instance) {
      if (s.health.last_error.empty()) {
        s.health.last_error = "retry budget exhausted";
      }
      finish(s, InstanceState::kFailed);
      return;
    }
    ++s.health.restarts;
    const u64 backoff = backoff_ns(config, s.health.restarts);
    if (fleet != nullptr) {
      fleet->restarts().add();
      fleet->instance(s.id).restarts.add();
      fleet->backoff_ms_total().add(backoff / 1000000);
    }
    s.next_start_ns = monotonic_ns() + backoff;
    // The restarted instance rebuilds its queue from the seeds; rewinding
    // its cursor lets it re-import everything the hub still retains.
    hub.reset_cursor(s.id);
    s.phase = Slot::Phase::kPending;
  };

  bool wall_stop_issued = false;
  u64 next_fleet_stamp_ns = start_ns;
  for (;;) {
    usize unfinished = 0;
    const u64 now = monotonic_ns();

    if (fleet != nullptr && config.fleet_stamp_ms > 0 &&
        now >= next_fleet_stamp_ns) {
      next_fleet_stamp_ns =
          now + static_cast<u64>(config.fleet_stamp_ms) * 1000000;
      fleet->stamp_fleet();
    }

    if (config.max_wall_seconds > 0.0 && !wall_stop_issued &&
        static_cast<double>(now - start_ns) * 1e-9 >
            config.max_wall_seconds) {
      wall_stop_issued = true;
      for (auto& sp : slots) {
        sp->wall_stopped = true;
        if (sp->phase == Slot::Phase::kRunning && sp->control != nullptr) {
          sp->control->stop.store(true, std::memory_order_relaxed);
        } else if (sp->phase == Slot::Phase::kPending) {
          // Never started (or waiting out a backoff): give up on it.
          if (sp->health.last_error.empty()) {
            sp->health.last_error = "supervisor wall-clock limit";
          }
          finish(*sp, InstanceState::kFailed);
        }
      }
    }

    for (auto& sp : slots) {
      Slot& s = *sp;
      switch (s.phase) {
        case Slot::Phase::kPending:
          if (now >= s.next_start_ns) launch(s);
          ++unfinished;
          break;
        case Slot::Phase::kRunning:
          if (s.done.load(std::memory_order_acquire)) {
            handle_outcome(s);
            if (s.phase != Slot::Phase::kFinished) ++unfinished;
            break;
          }
          ++unfinished;
          {
            const u64 p =
                s.control->progress.load(std::memory_order_relaxed);
            if (p != s.last_progress) {
              s.last_progress = p;
              s.last_progress_ns = now;
            } else if (!s.stall_requested &&
                       now - s.last_progress_ns > stall_ns) {
              // Watchdog: no exec progress within the deadline. Ask the
              // instance to wind down; the restart decision happens when
              // it does.
              s.stall_requested = true;
              ++s.health.stalls;
              if (fleet != nullptr) fleet->stalls().add();
              s.control->stop.store(true, std::memory_order_relaxed);
            }
          }
          break;
        case Slot::Phase::kFinished:
          break;
      }
    }

    if (unfinished == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(config.poll_ms));
  }

  out.wall_seconds = static_cast<double>(monotonic_ns() - start_ns) * 1e-9;
  out.instances.reserve(slots.size());
  for (auto& sp : slots) {
    Slot& s = *sp;
    if (config.fault != nullptr) {
      s.health.faults_injected = config.fault->injected_for(s.id);
      out.faults_injected += s.health.faults_injected;
      if (s.health.state == InstanceState::kCompleted) {
        out.faults_survived += s.health.faults_injected;
      }
    }
    out.total_execs += s.health.execs;
    out.total_interesting += s.health.interesting;
    out.total_crashes += s.health.crashes_total;
    out.total_restarts += s.health.restarts;
    out.instances.push_back(s.health);
  }
  out.found_bug_ids.assign(bug_union.begin(), bug_union.end());
  std::sort(out.found_bug_ids.begin(), out.found_bug_ids.end());
  out.found_stack_hashes.assign(stack_union.begin(), stack_union.end());
  std::sort(out.found_stack_hashes.begin(), out.found_stack_hashes.end());
  out.aggregate_throughput =
      out.wall_seconds > 0
          ? static_cast<double>(out.total_execs) / out.wall_seconds
          : 0.0;
  out.sync = hub.stats();
  if (fleet != nullptr) {
    out.fleet_total = fleet->stamp_fleet();
  }
  return out;
}

}  // namespace bigmap
