#include "fuzzer/campaign.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>

#include <cstring>

#include "core/flat_map.h"
#include "core/two_level_map.h"
#include "corpus/store.h"
#include "fuzzer/executor.h"
#include "fuzzer/mutator.h"
#include "persist/checkpoint.h"
#include "target/interpreter.h"
#include "util/hash.h"
#include "util/rng.h"

namespace bigmap {
namespace {

template <class Map, class Metric>
class Campaign {
 public:
  Campaign(const Program& prog, const std::vector<Input>& seeds,
           const CampaignConfig& cfg)
      : prog_(prog),
        seeds_(seeds),
        cfg_(cfg),
        ids_(prog.blocks.size(), cfg.map.map_size,
             mix64(cfg.seed ^ 0xB10C1D5ULL)),
        ex_(prog, cfg.map, ids_, cfg.step_budget, cfg.work_per_block),
        queue_(ex_.virgin_positions()),
        mut_({cfg.max_input_size, cfg.havoc_stack_pow, cfg.dictionary},
             mix64(cfg.seed ^ 0x3A7A70Full)),
        rng_(mix64(cfg.seed ^ 0x5C4ED11ULL)) {}

  CampaignResult run() {
    start_ns_ = monotonic_ns();
    res_.benchmark = prog_.name;
    res_.scheme = Map::kScheme;
    res_.map_size = cfg_.map.map_size;

    // A kInstanceKill fault unwinds to here; everything the instance found
    // before dying is still in the triage/queue state, so finalize() turns
    // it into a normal — but partial and flagged — result. The supervisor
    // unions those finds before restarting, so a dying instance never
    // loses them.
    try {
      // Arm the checkpoint cadence before the first execution: with the
      // default (0) a seed exec would checkpoint immediately — *before*
      // that seed reaches the queue — leaving an empty-queue snapshot
      // that restores into a campaign with nothing to fuzz.
      if (cfg_.checkpoint != nullptr && cfg_.checkpoint_interval != 0) {
        next_checkpoint_ = cfg_.checkpoint_interval;
      }
      if (!try_restore()) {
        seed_queue();
        res_.seed_execs = res_.execs;
        res_.seed_seconds =
            static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
      }
      if (cfg_.checkpoint != nullptr && cfg_.checkpoint_interval != 0) {
        // Absolute cadence: thresholds are multiples of the interval in
        // this instance's exec numbering, so an interrupted-and-resumed
        // run re-arms the SAME thresholds the uninterrupted run used.
        // Checkpoint content is then a pure function of the exec stream —
        // which is what lets the corpus chaos drill demand byte equality.
        next_checkpoint_ = (res_.execs / cfg_.checkpoint_interval + 1) *
                           cfg_.checkpoint_interval;
      }
      if (cfg_.corpus != nullptr && cfg_.corpus_compact_interval != 0) {
        next_compact_ = res_.execs + cfg_.corpus_compact_interval;
      }
      main_loop();
    } catch (const InjectedInstanceKill&) {
      res_.fault_aborted = true;
    }
    finalize();
    return std::move(res_);
  }

 private:
  bool exhausted() const noexcept {
    if (cfg_.control != nullptr &&
        cfg_.control->stop.load(std::memory_order_relaxed)) {
      return true;
    }
    u64 budget = cfg_.max_execs;
    if (cfg_.control != nullptr) {
      const u64 grown =
          cfg_.control->budget_override.load(std::memory_order_relaxed);
      if (grown != 0) budget = grown;
    }
    if (budget != 0 && res_.execs >= budget) return true;
    if (cfg_.max_seconds > 0.0) {
      const double elapsed =
          static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
      if (elapsed >= cfg_.max_seconds) return true;
    }
    return false;
  }

  void maybe_sample_series() {
    if (cfg_.series_interval == 0 || res_.execs < next_sample_) return;
    next_sample_ = res_.execs + cfg_.series_interval;
    ScopedOpTimer t(res_.timing, MapOp::kOther);
    res_.coverage_series.emplace_back(res_.execs,
                                      ex_.virgin_queue().count_covered());
  }

  void note_exec() {
    if (cfg_.control != nullptr) {
      cfg_.control->progress.fetch_add(1, std::memory_order_relaxed);
    }
    if (cfg_.telemetry != nullptr) {
      cfg_.telemetry->execs.add();
    }
    if (cfg_.exec_hook != nullptr) {
      cfg_.exec_hook->on_exec(res_.execs);
    }
  }

  // Refreshes the map-state gauges and appends one StatsSnapshot to the
  // sink. Gauge refresh scans the virgin map, so this runs only on the
  // stamp cadence (and at finalize), charged to kOther like the coverage
  // series sampler.
  void stamp_telemetry() {
    telemetry::TelemetrySink& t = *cfg_.telemetry;
    ScopedOpTimer timer(res_.timing, MapOp::kOther);
    t.set_kernel(ex_.map().kernel_name());
    t.queue_depth.set(queue_.size());
    t.covered_positions.set(ex_.virgin_queue().count_covered());
    t.map_positions.set(ex_.virgin_positions());
    if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
      t.used_key.set(ex_.map().used_key());
      t.saturated_updates.set(ex_.map().saturated_updates());
    }
    const MapOpCounts& ops = ex_.map().op_counts();
    t.map_resets.set(ops.resets);
    t.map_classifies.set(ops.classifies);
    t.map_compares.set(ops.compares);
    t.map_hashes.set(ops.hashes);
    t.stamp();
  }

  void maybe_stamp_telemetry() {
    if (cfg_.telemetry == nullptr || cfg_.telemetry_interval == 0 ||
        res_.execs < next_stamp_) {
      return;
    }
    next_stamp_ = res_.execs + cfg_.telemetry_interval;
    stamp_telemetry();
  }

  // --- corpus store ---------------------------------------------------------

  // Sparse coverage positions of the last run's classified trace — the
  // rarity signal the store's trim pass works from. Interesting entries
  // are rare, so the scan cost rides on the same slow path that already
  // walks this span in update_scores.
  std::vector<u32> trace_positions() const {
    std::vector<u32> out;
    const std::span<const u8> trace = ex_.last_trace();
    for (usize i = 0; i < trace.size(); ++i) {
      if (trace[i] != 0) out.push_back(static_cast<u32>(i));
    }
    return out;
  }

  // Appends queue entry `idx` to the corpus store and remembers its
  // content hash so checkpoints can encode the entry as a store ref.
  void record_corpus_entry(usize idx, u64 sched_ns, u32 bitmap_hash,
                           u32 depth, std::span<const u32> positions) {
    u64 hash = 0;
    bool durable = false;
    if (cfg_.corpus->add_entry(queue_.entry(idx).data, sched_ns, bitmap_hash,
                               depth, positions, &hash, &durable)) {
      ++res_.corpus_appends;
    } else {
      ++res_.corpus_dedup_hits;
    }
    if (entry_hash_.size() <= idx) {
      entry_hash_.resize(idx + 1, 0);
    }
    entry_hash_[idx] = hash;
  }

  void maybe_compact_corpus() {
    if (cfg_.corpus == nullptr || cfg_.corpus_compact_interval == 0 ||
        res_.execs < next_compact_) {
      return;
    }
    next_compact_ = res_.execs + cfg_.corpus_compact_interval;
    ScopedOpTimer t(res_.timing, MapOp::kOther);
    // Failure is non-fatal: the WAL keeps accumulating and the next cycle
    // (or offline maintenance) retries.
    std::string err;
    cfg_.corpus->flush_pending(&err);
    cfg_.corpus->compact(&err);
  }

  // --- persistence ----------------------------------------------------------

  // Serializes the full resumable state: identity, lifetime counters, RNG
  // streams, seed queue + top_rated metadata, virgin maps, two-level index
  // state, and crash-triage identities.
  persist::CampaignSnapshot build_snapshot() const {
    persist::CampaignSnapshot s;
    s.scheme = static_cast<u32>(Map::kScheme);
    s.metric = static_cast<u32>(cfg_.metric);
    s.seed = cfg_.seed;
    s.instance_id = cfg_.sync_id;
    s.map_size = cfg_.map.map_size;
    s.virgin_size = ex_.virgin_positions();

    s.execs = res_.execs;
    s.seed_execs = res_.seed_execs;
    s.seed_seconds = res_.seed_seconds;
    s.interesting = res_.interesting;
    s.hangs = res_.hangs;
    s.trim_execs = res_.trim_execs;
    s.trimmed_bytes = res_.trimmed_bytes;
    s.faulted_execs = res_.faulted_execs;
    s.injected_hangs = res_.injected_hangs;
    s.tracing_untraced_execs = res_.tracing_untraced_execs;
    s.tracing_traced_execs = res_.tracing_traced_execs;
    s.tracing_oracle_fires = res_.tracing_oracle_fires;
    s.tracing_reexec_ns = res_.tracing_reexec_ns;
    s.crashes_total = triage_.total();
    s.crashes_afl_unique = triage_.afl_unique();

    s.rng_state = rng_.state();
    s.mutator_rng_state = mut_.rng().state();

    const SeedQueue::ExportedState q = queue_.export_state();
    s.entries.reserve(q.entries.size());
    for (usize i = 0; i < q.entries.size(); ++i) {
      const QueueEntry* e = q.entries[i];
      persist::QueueEntrySnap snap;
      snap.data = e->data;
      snap.exec_ns = e->exec_ns;
      snap.bitmap_hash = e->bitmap_hash;
      snap.depth = e->depth;
      snap.favored = e->favored;
      snap.was_fuzzed = e->was_fuzzed;
      snap.times_selected = e->times_selected;
      // Durable store entries shrink to refs; anything the store has not
      // safely journaled stays inline so the checkpoint remains
      // self-sufficient under injected WAL faults.
      if (cfg_.corpus != nullptr && i < entry_hash_.size() &&
          entry_hash_[i] != 0 && cfg_.corpus->durable(entry_hash_[i])) {
        snap.content_hash = entry_hash_[i];
        snap.stored_len = e->data.size();
        snap.in_store = true;
      }
      s.entries.push_back(std::move(snap));
    }
    s.top_entry.assign(q.top_entry.begin(), q.top_entry.end());
    s.top_factor.assign(q.top_factor.begin(), q.top_factor.end());
    s.top_covered = q.top_covered;

    s.in_cycle = in_cycle_;
    s.cycle_qi = cycle_qi_;
    s.cycle_len = cycle_len_;
    s.cycle_avg_ns = cycle_avg_ns_;

    const auto span_of = [](const VirginMap& v) {
      return std::vector<u8>(v.data(), v.data() + v.size());
    };
    s.virgin_queue = span_of(ex_.virgin_queue());
    s.virgin_crash = span_of(ex_.virgin_crash());
    s.virgin_hang = span_of(ex_.virgin_hang());

    s.has_two_level = Map::kScheme == MapScheme::kTwoLevel;
    ex_.map().export_state(&s.index_bitmap, &s.used_key,
                           &s.saturated_updates);

    s.bug_ids.assign(triage_.bug_ids().begin(), triage_.bug_ids().end());
    s.stack_hashes.assign(triage_.stack_hashes().begin(),
                          triage_.stack_hashes().end());
    return s;
  }

  void write_checkpoint() {
    persist::CheckpointStore& store = *cfg_.checkpoint;
    const persist::PersistStats before = store.stats();
    std::string err;
    if (cfg_.corpus != nullptr) {
      // WAL-append-before-checkpoint ordering: retry failed appends now so
      // as many queue entries as possible become durable refs, and any ref
      // the snapshot writes is guaranteed to resolve on restore.
      cfg_.corpus->flush_pending(&err);
    }
    if (store.save(build_snapshot(), cfg_.keep_checkpoints, &err)) {
      ++res_.checkpoints_written;
    } else {
      ++res_.checkpoint_failures;
    }
    if (cfg_.telemetry != nullptr) {
      const persist::PersistStats after = store.stats();
      cfg_.telemetry->checkpoints_written.add(after.checkpoints_written -
                                              before.checkpoints_written);
      cfg_.telemetry->checkpoint_bytes.add(after.checkpoint_bytes -
                                           before.checkpoint_bytes);
    }
    // A multi-megabyte save on a slow disk freezes the exec heartbeat; tick
    // it so the watchdog doesn't mistake the pause for a stall.
    if (cfg_.control != nullptr) {
      cfg_.control->progress.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Checkpoints are REQUESTED on the absolute exec cadence but COMMITTED
  // only at queue-entry boundaries (flush_due_checkpoint): a snapshot never
  // captures a half-processed trim/deterministic/havoc stage, so restoring
  // one re-enters the mutation stream exactly where it left off. The write
  // slides to the next boundary; the cadence itself does not drift because
  // the next threshold stays a multiple of the interval.
  void maybe_checkpoint() {
    if (cfg_.checkpoint == nullptr || cfg_.checkpoint_interval == 0 ||
        res_.execs < next_checkpoint_) {
      return;
    }
    next_checkpoint_ = (res_.execs / cfg_.checkpoint_interval + 1) *
                       cfg_.checkpoint_interval;
    checkpoint_due_ = true;
  }

  void flush_due_checkpoint() {
    if (!checkpoint_due_) return;
    checkpoint_due_ = false;
    ScopedOpTimer t(res_.timing, MapOp::kOther);
    write_checkpoint();
  }

  // Attempts to restore the latest good snapshot. Returns false — leaving
  // the campaign in its cold-start state — when resume is not requested,
  // no usable snapshot exists, or the snapshot belongs to a different
  // configuration. On success every lifetime counter continues from the
  // snapshot, so the max_execs budget spans the whole resumed lineage.
  bool try_restore() {
    if (cfg_.checkpoint == nullptr || !cfg_.resume_from_checkpoint) {
      return false;
    }
    persist::CheckpointStore& store = *cfg_.checkpoint;
    const persist::PersistStats before = store.stats();
    persist::CheckpointStore::LoadOutcome loaded = store.load_latest();
    if (cfg_.telemetry != nullptr) {
      const persist::PersistStats after = store.stats();
      cfg_.telemetry->recovery_torn_tail.add(after.recovered_torn_tail -
                                             before.recovered_torn_tail);
      cfg_.telemetry->recovery_bad_crc.add(after.recovered_bad_crc -
                                           before.recovered_bad_crc);
      cfg_.telemetry->recovery_version_mismatch.add(
          after.recovered_version_mismatch -
          before.recovered_version_mismatch);
    }
    if (!loaded.snapshot.has_value()) return false;
    persist::CampaignSnapshot& s = *loaded.snapshot;

    // Identity gate: a snapshot only restores into the exact configuration
    // that wrote it.
    if (s.scheme != static_cast<u32>(Map::kScheme) ||
        s.metric != static_cast<u32>(cfg_.metric) || s.seed != cfg_.seed ||
        s.map_size != cfg_.map.map_size ||
        s.virgin_size != ex_.virgin_positions()) {
      return false;
    }
    // A snapshot with no queue entries cannot make progress after restore
    // (the main loop needs something to fuzz); treat it as unusable and
    // cold-start instead.
    if (s.entries.empty()) return false;

    // Resolve store refs to bytes BEFORE touching live state, so a
    // missing/mismatched corpus entry rejects the snapshot cleanly (the
    // checkpoint store then falls back to an older snapshot or a cold
    // start).
    for (persist::QueueEntrySnap& e : s.entries) {
      if (!e.in_store) continue;
      if (cfg_.corpus == nullptr) return false;
      corpus::CorpusEntry ce;
      if (!cfg_.corpus->fetch(e.content_hash, &ce) ||
          ce.data.size() != e.stored_len) {
        return false;
      }
      e.data = std::move(ce.data);
    }

    std::vector<QueueEntry> entries;
    entries.reserve(s.entries.size());
    for (persist::QueueEntrySnap& e : s.entries) {
      QueueEntry q;
      q.data = std::move(e.data);
      q.exec_ns = e.exec_ns;
      q.bitmap_hash = e.bitmap_hash;
      q.depth = e.depth;
      q.favored = e.favored;
      q.was_fuzzed = e.was_fuzzed;
      q.times_selected = e.times_selected;
      entries.push_back(std::move(q));
    }
    if (!queue_.import_state(std::move(entries), s.top_entry, s.top_factor,
                             s.top_covered)) {
      return false;
    }
    if (!ex_.map().import_state(s.index_bitmap, s.used_key,
                                s.saturated_updates)) {
      // The queue was already replaced; rebuild it empty so the cold-start
      // path seeds from scratch instead of fuzzing half-restored state.
      queue_ = SeedQueue(ex_.virgin_positions());
      return false;
    }

    std::memcpy(ex_.mutable_virgin_queue().data(), s.virgin_queue.data(),
                s.virgin_queue.size());
    std::memcpy(ex_.mutable_virgin_crash().data(), s.virgin_crash.data(),
                s.virgin_crash.size());
    std::memcpy(ex_.mutable_virgin_hang().data(), s.virgin_hang.data(),
                s.virgin_hang.size());

    triage_.restore(s.bug_ids, s.stack_hashes, s.crashes_total,
                    s.crashes_afl_unique);
    rng_.set_state(s.rng_state);
    mut_.rng().set_state(s.mutator_rng_state);

    // Cycle cursor: re-enter the main loop exactly where the snapshot was
    // taken. cycle_qi == cycle_len is legal (snapshot from finalize after
    // the budget ran out mid-cycle); anything out of range is damage. A
    // pre-cursor snapshot leaves in_cycle false — cycle-restart semantics.
    if (s.in_cycle &&
        (s.cycle_qi > s.cycle_len || s.cycle_len > queue_.size())) {
      queue_ = SeedQueue(ex_.virgin_positions());
      return false;
    }
    in_cycle_ = s.in_cycle;
    cycle_qi_ = static_cast<usize>(s.cycle_qi);
    cycle_len_ = static_cast<usize>(s.cycle_len);
    cycle_avg_ns_ = s.cycle_avg_ns;

    if (cfg_.corpus != nullptr) {
      // Rebuild the queue-index -> content-hash table. Entries that were
      // inline (their WAL append failed before the crash) are re-offered
      // to the store; dedup makes this a no-op when the bytes survived.
      entry_hash_.assign(s.entries.size(), 0);
      for (usize i = 0; i < s.entries.size(); ++i) {
        const persist::QueueEntrySnap& e = s.entries[i];
        if (e.in_store) {
          entry_hash_[i] = e.content_hash;
        } else {
          u64 hash = 0;
          if (cfg_.corpus->add_entry(queue_.entry(i).data, e.exec_ns,
                                     e.bitmap_hash, e.depth, {}, &hash,
                                     nullptr)) {
            ++res_.corpus_appends;
          } else {
            ++res_.corpus_dedup_hits;
          }
          entry_hash_[i] = hash;
        }
      }
    }

    res_.execs = s.execs;
    res_.seed_execs = s.seed_execs;
    res_.seed_seconds = s.seed_seconds;
    res_.interesting = s.interesting;
    res_.hangs = s.hangs;
    res_.trim_execs = s.trim_execs;
    res_.trimmed_bytes = s.trimmed_bytes;
    res_.faulted_execs = s.faulted_execs;
    res_.injected_hangs = s.injected_hangs;
    res_.tracing_untraced_execs = s.tracing_untraced_execs;
    res_.tracing_traced_execs = s.tracing_traced_execs;
    res_.tracing_oracle_fires = s.tracing_oracle_fires;
    res_.tracing_reexec_ns = s.tracing_reexec_ns;
    res_.resumed = true;
    res_.resumed_from_execs = s.execs;

    if (cfg_.telemetry != nullptr) {
      cfg_.telemetry->checkpoints_loaded.add();
      if (cfg_.telemetry_restore) {
        // Whole-process resume: the sink is fresh, so prime its lifetime
        // counters with the restored totals to keep fleet sums cumulative.
        cfg_.telemetry->execs.add(s.execs);
        cfg_.telemetry->interesting.add(s.interesting);
        cfg_.telemetry->crashes.add(s.crashes_total);
        cfg_.telemetry->hangs.add(s.hangs);
        cfg_.telemetry->trim_execs.add(s.trim_execs);
        cfg_.telemetry->faulted_execs.add(s.faulted_execs);
        cfg_.telemetry->injected_hangs.add(s.injected_hangs);
        cfg_.telemetry->tracing_untraced_execs.add(s.tracing_untraced_execs);
        cfg_.telemetry->tracing_traced_execs.add(s.tracing_traced_execs);
        cfg_.telemetry->tracing_oracle_fires.add(s.tracing_oracle_fires);
        cfg_.telemetry->tracing_reexec_ns.add(s.tracing_reexec_ns);
      }
    }
    if (cfg_.control != nullptr) {
      // Heartbeat continuity: the watchdog's stall detector keys off
      // progress deltas, so jump-start it with the restored exec count.
      cfg_.control->progress.fetch_add(s.execs, std::memory_order_relaxed);
    }
    return true;
  }

  // Consults the fault injector before an execution. Returns false when
  // this execution is aborted (kExecAbort); throws InjectedInstanceKill for
  // kInstanceKill; serves kTransientHang in place, polling the stop flag so
  // a watchdog can always cut the stall short.
  bool fault_gate() {
    if (cfg_.fault == nullptr) return true;
    if (cfg_.fault->fire(FaultSite::kInstanceKill, cfg_.sync_id)) {
      throw InjectedInstanceKill{};
    }
    if (cfg_.fault->fire(FaultSite::kTransientHang, cfg_.sync_id)) {
      ++res_.injected_hangs;
      if (cfg_.telemetry != nullptr) cfg_.telemetry->injected_hangs.add();
      const u64 deadline_ns =
          monotonic_ns() + static_cast<u64>(cfg_.fault->hang_ms()) * 1000000;
      while (monotonic_ns() < deadline_ns) {
        if (cfg_.control != nullptr &&
            cfg_.control->stop.load(std::memory_order_relaxed)) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (cfg_.fault->fire(FaultSite::kExecAbort, cfg_.sync_id)) {
      ++res_.faulted_execs;
      if (cfg_.telemetry != nullptr) cfg_.telemetry->faulted_execs.add();
      return false;
    }
    return true;
  }

  // Runs one input; adds it to the queue when interesting (or when it is a
  // non-crashing seed — AFL keeps all seeds). Returns true if queued.
  //
  // Under TracingMode::kDual a non-seed input first runs UNTRACED: only the
  // inline interest oracle observes the execution, and a boring run (no
  // oracle fire, no crash, no hang) costs neither trace emission nor any
  // whole-map operation. Firing runs — and every crash/hang, which needs
  // the exact virgin_crash/virgin_hang compare — replay through the full
  // traced pipeline. The oracle is exact against the queue virgin map
  // (see Executor::run_untraced), so the traced pipeline observes
  // precisely the interesting/crash/hang executions it would have
  // observed under kAlways; everything downstream (queue, triage, sync,
  // corpus, checkpoints) is therefore stream-identical between the modes,
  // and beyond crash/hang replays a re-execution is only ever paid for an
  // actually-interesting input.
  bool process(Input input, u32 depth, bool is_seed) {
    if (!fault_gate()) return false;
    typename Executor<Map, Metric>::Outcome out;
    if (cfg_.tracing == TracingMode::kDual && !is_seed) {
      const auto fast = ex_.run_untraced(input, res_.timing);
      if (fast.fired) {
        ++res_.tracing_oracle_fires;
        if (cfg_.telemetry != nullptr) {
          cfg_.telemetry->tracing_oracle_fires.add();
        }
      }
      const bool reexec =
          fast.fired || fast.exec.crashed() || fast.exec.hung();
      if (!reexec) {
        // Boring exec: count it and keep going — no map pipeline at all.
        ++res_.execs;
        ++res_.tracing_untraced_execs;
        if (cfg_.telemetry != nullptr) {
          cfg_.telemetry->tracing_untraced_execs.add();
          cfg_.telemetry->exec_ns.record(fast.exec_ns);
        }
        note_exec();
        maybe_sample_series();
        maybe_stamp_telemetry();
        maybe_checkpoint();
        maybe_compact_corpus();
        return false;
      }
      // Traced re-execution. It passes the fault gate again: an aborted
      // re-exec counts in NEITHER tracing counter and not against the
      // budget — and since the untraced run mutated no campaign state,
      // the breakpoint stays armed for the next time this coverage shows
      // up.
      if (!fault_gate()) return false;
      const u64 reexec_start = monotonic_ns();
      out = ex_.run(input, res_.timing);
      const u64 reexec_ns = monotonic_ns() - reexec_start;
      res_.tracing_reexec_ns += reexec_ns;
      ++res_.tracing_traced_execs;
      if (cfg_.telemetry != nullptr) {
        cfg_.telemetry->tracing_traced_execs.add();
        cfg_.telemetry->tracing_reexec_ns.add(reexec_ns);
      }
    } else {
      out = ex_.run(input, res_.timing);
      ++res_.tracing_traced_execs;
      if (cfg_.telemetry != nullptr) {
        cfg_.telemetry->tracing_traced_execs.add();
      }
    }
    ++res_.execs;
    note_exec();
    maybe_sample_series();
    maybe_stamp_telemetry();
    maybe_checkpoint();
    maybe_compact_corpus();
    if (cfg_.telemetry != nullptr) cfg_.telemetry->exec_ns.record(out.exec_ns);

    if (out.exec.crashed()) {
      if (cfg_.telemetry != nullptr) cfg_.telemetry->crashes.add();
      triage_.record(out.exec, out.outcome_new_bits != NewBits::kNone);
      if (cfg_.corpus != nullptr) {
        // Same identity as CrashTriage; res_.execs is this instance's
        // deterministic exec sequence number, which makes re-reports from
        // checkpoint-resume replay no-ops in the store.
        cfg_.corpus->record_crash(
            hash_combine(out.exec.stack_hash, out.exec.faulting_block),
            out.exec.bug_id, cfg_.sync_id, res_.execs, input);
      }
      return false;
    }
    if (out.exec.hung()) {
      ++res_.hangs;
      if (cfg_.telemetry != nullptr) cfg_.telemetry->hangs.add();
      return false;
    }

    const bool fresh = out.interesting();
    if (fresh) {
      ++res_.interesting;
      if (cfg_.telemetry != nullptr) cfg_.telemetry->interesting.add();
    }
    if (!fresh && !is_seed) return false;

    ScopedOpTimer t(res_.timing, MapOp::kOther);
    if (cfg_.sync != nullptr && fresh) {
      if (cfg_.sync->publish(cfg_.sync_id, input) &&
          cfg_.telemetry != nullptr) {
        cfg_.telemetry->sync_published.add();
      }
    }
    const u64 sched_ns = cfg_.deterministic_timing
                             ? out.exec.steps * 100  // pseudo-time
                             : out.exec_ns;
    const usize idx =
        queue_.add(std::move(input), sched_ns, out.hash, depth);
    queue_.update_scores(idx, ex_.last_trace());
    if (cfg_.corpus != nullptr) {
      record_corpus_entry(idx, sched_ns, out.hash, depth, trace_positions());
    }
    return true;
  }

  void seed_queue() {
    for (const Input& s : seeds_) {
      if (exhausted()) break;
      process(s, 0, /*is_seed=*/true);
    }
    // All seeds crashed/hung (or none were given): fall back to dummy
    // inputs so the campaign can start, as afl-fuzz does. Crash-on-zero
    // targets are retried with seeded random bytes.
    Xoshiro256 fallback_rng(mix64(cfg_.seed ^ 0xFA11BACCULL));
    for (int attempt = 0; attempt < 16 && queue_.empty() && !exhausted();
         ++attempt) {
      Input dummy(prog_.nominal_input_size, 0);
      if (attempt > 0) {
        for (auto& b : dummy) b = static_cast<u8>(fallback_rng.next());
      }
      process(std::move(dummy), 0, /*is_seed=*/true);
    }
  }

  // AFL's trim_case: repeatedly remove chunks of the entry as long as the
  // classified-trace hash is preserved. Consumes executions from the
  // budget (AFL counts them too) and exercises the map-hash operation.
  void trim_entry(usize qi) {
    QueueEntry& e = queue_.entry(qi);
    if (e.data.size() < 8 || e.bitmap_hash == 0) return;
    const u32 target_hash = e.bitmap_hash;

    Input data = e.data;
    const usize orig_len = data.size();
    usize remove = std::max<usize>(data.size() / 16, 4);
    const usize min_remove = std::max<usize>(data.size() / 1024, 4);
    bool changed = false;

    while (remove >= min_remove && data.size() > 8 && !exhausted()) {
      usize pos = 0;
      while (pos + remove <= data.size() && !exhausted()) {
        Input candidate;
        candidate.reserve(data.size() - remove);
        candidate.insert(candidate.end(), data.begin(),
                         data.begin() + static_cast<long>(pos));
        candidate.insert(candidate.end(),
                         data.begin() + static_cast<long>(pos + remove),
                         data.end());

        if (!fault_gate()) {
          pos += remove;
          continue;
        }
        auto sr = ex_.run_for_hash(candidate, res_.timing);
        ++res_.execs;
        ++res_.trim_execs;
        ++res_.tracing_traced_execs;  // hash runs use the full map pipeline
        note_exec();
        if (cfg_.telemetry != nullptr) {
          cfg_.telemetry->trim_execs.add();
          cfg_.telemetry->tracing_traced_execs.add();
        }
        maybe_sample_series();
        maybe_stamp_telemetry();
        maybe_checkpoint();
        maybe_compact_corpus();

        if (sr.exec.outcome == ExecResult::Outcome::kOk &&
            sr.hash == target_hash) {
          data = std::move(candidate);
          changed = true;
        } else {
          pos += remove;
        }
      }
      remove /= 2;
    }

    if (changed) {
      res_.trimmed_bytes += orig_len - data.size();
      e.data = std::move(data);
      if (cfg_.corpus != nullptr && qi < entry_hash_.size() &&
          entry_hash_[qi] != 0) {
        // The entry's bytes changed, so its content hash did too: add the
        // trimmed form under its new hash (keeping the original's coverage
        // positions — trimming preserves the classified trace) so store
        // refs keep matching the live queue. The untrimmed original stays
        // until a rarity trim pass subsumes it.
        corpus::CorpusEntry old;
        std::vector<u32> positions;
        if (cfg_.corpus->fetch(entry_hash_[qi], &old)) {
          positions = std::move(old.positions);
        }
        u64 hash = 0;
        if (cfg_.corpus->add_entry(e.data, e.exec_ns, e.bitmap_hash, e.depth,
                                   positions, &hash, nullptr)) {
          ++res_.corpus_appends;
        } else {
          ++res_.corpus_dedup_hits;
        }
        entry_hash_[qi] = hash;
      }
    }
  }

  void deterministic_stage(usize qi) {
    // AFL's deterministic pass: walking bitflips (1/2/4 bits), byte flips
    // (1/2/4 bytes), arithmetic (8/16/32-bit, both endiannesses),
    // interesting values (8/16/32-bit), and dictionary overwrite. Each
    // stage is budget-checked; the order matches afl-fuzz.
    const Input base = queue_.entry(qi).data;  // copy: queue may grow
    const u32 depth = queue_.entry(qi).depth + 1;
    auto sink = [&](const Input& variant) {
      if (exhausted()) return;
      process(variant, depth, false);
    };
    for (u32 bits : {1u, 2u, 4u}) {
      mut_.det_bitflips(base, bits, sink);
      if (exhausted()) return;
    }
    for (u32 bytes : {1u, 2u, 4u}) {
      mut_.det_byteflips(base, bytes, sink);
      if (exhausted()) return;
    }
    mut_.det_arith8(base, sink);
    if (exhausted()) return;
    mut_.det_arith16(base, sink);
    if (exhausted()) return;
    mut_.det_arith32(base, sink);
    if (exhausted()) return;
    mut_.det_interesting8(base, sink);
    if (exhausted()) return;
    mut_.det_interesting16(base, sink);
    if (exhausted()) return;
    mut_.det_interesting32(base, sink);
    if (exhausted()) return;
    mut_.det_dictionary(base, sink);
  }

  void havoc_stage(usize qi, u64 rounds) {
    const u32 depth = queue_.entry(qi).depth + 1;
    for (u64 r = 0; r < rounds && !exhausted(); ++r) {
      Input work;
      const usize qsize = queue_.size();
      if (qsize > 1 && rng_.chance(1, 4)) {
        const auto& other =
            queue_.entry(rng_.below(static_cast<u32>(qsize))).data;
        auto spliced = mut_.splice(queue_.entry(qi).data, other);
        work = spliced ? std::move(*spliced) : queue_.entry(qi).data;
      } else {
        work = queue_.entry(qi).data;
      }
      mut_.havoc(work);
      process(std::move(work), depth, false);
      maybe_sync();
    }
  }

  void maybe_sync() {
    if (cfg_.sync == nullptr || res_.execs < next_sync_) return;
    next_sync_ = res_.execs + cfg_.sync_interval;
    for (Input& imported : cfg_.sync->fetch_new(cfg_.sync_id)) {
      if (exhausted()) break;
      if (cfg_.telemetry != nullptr) cfg_.telemetry->sync_imported.add();
      process(std::move(imported), 0, false);
    }
  }

  void main_loop() {
    next_sync_ = cfg_.sync_interval;
    while (!exhausted() && !queue_.empty()) {
      if (!in_cycle_) {
        queue_.cull();
        cycle_avg_ns_ = queue_.average_exec_ns();
        cycle_len_ = queue_.size();
        cycle_qi_ = 0;
        in_cycle_ = true;
      }
      // else: restored mid-cycle from a checkpoint — the cursor, cycle
      // length, and cycle average were snapshotted at an entry boundary,
      // so re-entering here (without re-culling) continues the exact
      // stream the interrupted run was producing.

      for (; cycle_qi_ < cycle_len_ && !exhausted(); ++cycle_qi_) {
        // Entry boundary: the only place a due checkpoint is committed.
        flush_due_checkpoint();
        QueueEntry& e = queue_.entry(cycle_qi_);

        // AFL's skip logic: favored entries always run; others mostly
        // skipped (more aggressively once already fuzzed).
        if (!e.favored) {
          const u32 skip_pct = e.was_fuzzed ? 95 : 75;
          if (rng_.chance(skip_pct, 100)) continue;
        }
        ++e.times_selected;

        if (cfg_.trim_enabled && !e.was_fuzzed) {
          trim_entry(cycle_qi_);
        }
        if (cfg_.run_deterministic && !e.was_fuzzed &&
            (cfg_.sync == nullptr || cfg_.is_master)) {
          deterministic_stage(cycle_qi_);
        }

        const double score = queue_.perf_score(cycle_qi_, cycle_avg_ns_);
        const u64 rounds = std::max<u64>(
            8, static_cast<u64>(cfg_.havoc_rounds * score / 100.0));
        havoc_stage(cycle_qi_, rounds);
        queue_.entry(cycle_qi_).was_fuzzed = true;
      }
      if (exhausted()) break;
      in_cycle_ = false;
      flush_due_checkpoint();  // cycle boundary counts as one too
    }
  }

  void finalize() {
    // A clean exit commits one final checkpoint so a later whole-process
    // resume sees the instance's complete final state. A fault-killed
    // instance deliberately does NOT get one — a crashing process cannot
    // write; its warm restart must recover from the last periodic
    // checkpoint, which is exactly the path worth drilling.
    if (cfg_.checkpoint != nullptr && !res_.fault_aborted) {
      write_checkpoint();
    }
    // Always leave a final snapshot so the last plot_data row reflects the
    // instance's lifetime totals (fleet sums rely on this).
    if (cfg_.telemetry != nullptr) stamp_telemetry();
    res_.wall_seconds =
        static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
    res_.covered_positions = ex_.virgin_queue().count_covered();
    if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
      res_.used_key = ex_.map().used_key();
      res_.saturated_updates = ex_.map().saturated_updates();
    }
    res_.crashes_total = triage_.total();
    res_.crashes_afl_unique = triage_.afl_unique();
    res_.crashes_crashwalk_unique = triage_.crashwalk_unique();
    res_.crashes_ground_truth = triage_.ground_truth_unique();
    res_.found_bug_ids.assign(triage_.bug_ids().begin(),
                              triage_.bug_ids().end());
    res_.found_stack_hashes.assign(triage_.stack_hashes().begin(),
                                   triage_.stack_hashes().end());
    res_.corpus_size = queue_.size();
    if (cfg_.keep_corpus) {
      res_.corpus.reserve(queue_.size());
      for (usize i = 0; i < queue_.size(); ++i) {
        res_.corpus.push_back(queue_.entry(i).data);
      }
    }
  }

  const Program& prog_;
  const std::vector<Input>& seeds_;
  const CampaignConfig& cfg_;

  BlockIdTable ids_;
  Executor<Map, Metric> ex_;
  SeedQueue queue_;
  Mutator mut_;
  Xoshiro256 rng_;
  CrashTriage triage_;

  CampaignResult res_;
  u64 start_ns_ = 0;
  u64 next_sync_ = 0;
  u64 next_sample_ = 0;
  u64 next_stamp_ = 0;
  u64 next_checkpoint_ = 0;
  u64 next_compact_ = 0;

  // Main-loop cycle cursor (checkpointed; see main_loop). checkpoint_due_
  // carries a cadence hit from wherever it fired to the next entry
  // boundary, where the snapshot is actually committed.
  bool in_cycle_ = false;
  usize cycle_qi_ = 0;
  usize cycle_len_ = 0;
  u64 cycle_avg_ns_ = 0;
  bool checkpoint_due_ = false;

  // Queue index -> corpus content hash (0 = not recorded). Parallel to the
  // queue, which only ever appends.
  std::vector<u64> entry_hash_;
};

template <class Metric>
CampaignResult dispatch_scheme(const Program& prog,
                               const std::vector<Input>& seeds,
                               const CampaignConfig& cfg) {
  if (cfg.scheme == MapScheme::kFlat) {
    return Campaign<FlatCoverageMap, Metric>(prog, seeds, cfg).run();
  }
  return Campaign<TwoLevelCoverageMap, Metric>(prog, seeds, cfg).run();
}

}  // namespace

CampaignResult run_campaign(const Program& program,
                            const std::vector<Input>& seeds,
                            const CampaignConfig& config) {
  // A sync_id past the hub's instance count would index other instances'
  // cursors out of bounds deep in the sync path; reject it up front.
  if (config.sync != nullptr &&
      config.sync_id >= config.sync->num_instances()) {
    throw std::invalid_argument(
        "run_campaign: sync_id " + std::to_string(config.sync_id) +
        " out of range for SyncHub with " +
        std::to_string(config.sync->num_instances()) + " instances");
  }
  switch (config.metric) {
    case MetricKind::kEdge:
      return dispatch_scheme<EdgeMetric>(program, seeds, config);
    case MetricKind::kNGram:
      return dispatch_scheme<NGramMetric<3>>(program, seeds, config);
    case MetricKind::kNGram2:
      return dispatch_scheme<NGramMetric<2>>(program, seeds, config);
    case MetricKind::kNGram4:
      return dispatch_scheme<NGramMetric<4>>(program, seeds, config);
    case MetricKind::kNGram8:
      return dispatch_scheme<NGramMetric<8>>(program, seeds, config);
    case MetricKind::kContext:
      return dispatch_scheme<ContextMetric>(program, seeds, config);
  }
  throw std::invalid_argument("unknown metric kind");
}

u64 measure_corpus_edges(const Program& program,
                         const std::vector<Input>& corpus, u64 step_budget) {
  Interpreter interp(step_budget);
  std::unordered_set<u64> edges;
  for (const Input& input : corpus) {
    u32 prev = 0xFFFFFFFFu;
    interp.run(program, input, [&](u32 block) {
      if (prev != 0xFFFFFFFFu) {
        edges.insert((static_cast<u64>(prev) << 32) | block);
      }
      prev = block;
    });
  }
  return edges.size();
}

}  // namespace bigmap
