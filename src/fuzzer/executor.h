// Executor: runs one test case end-to-end and applies the per-test-case
// map-operation sequence (§II-A2).
//
// Templated on the coverage map (FlatCoverageMap / TwoLevelCoverageMap) and
// the coverage metric (EdgeMetric / NGramMetric / ContextMetric) so the
// per-edge path — interpreter step -> metric key -> map update — inlines
// with zero dispatch. Every stage is attributed to the Figure 3 timing
// category it belongs to:
//
//   reset      ->  MapOp::kReset
//   execute    ->  MapOp::kExecution   (includes inline map updates)
//   classify   ->  MapOp::kClassify
//   compare    ->  MapOp::kCompare
//   hash       ->  MapOp::kHash        (interesting test cases only)
//
// When merged classify+compare is enabled (§IV-E) the fused pass cannot be
// split by measurement; its time is attributed half to kClassify and half
// to kCompare, which benches note in their output.
#pragma once

#include <concepts>
#include <span>
#include <vector>

#include "core/classify.h"
#include "core/map_options.h"
#include "core/virgin.h"
#include "instrumentation/metrics.h"
#include "target/interpreter.h"
#include "target/program.h"
#include "util/timing.h"
#include "util/types.h"

namespace bigmap {

// Metric concept detection: ContextMetric wants call/return notifications.
template <class M>
concept ContextAwareMetric = requires(M m, u32 block) {
  m.on_call(block);
  m.on_return();
};

template <class Map, class Metric>
class Executor {
 public:
  Executor(const Program& prog, const MapOptions& opts,
           const BlockIdTable& ids, u64 step_budget,
           u32 work_per_block = Interpreter::kDefaultWorkPerBlock)
      : prog_(&prog),
        map_(opts),
        metric_(ids),
        virgin_queue_(virgin_positions_of(map_), opts.backing()),
        virgin_crash_(virgin_positions_of(map_), opts.backing()),
        virgin_hang_(virgin_positions_of(map_), opts.backing()),
        interp_(step_budget, work_per_block),
        merged_(opts.merged_classify_compare) {}

  struct Outcome {
    ExecResult exec;
    // vs. the queue virgin map; kNone for crashes/hangs.
    NewBits new_bits = NewBits::kNone;
    // vs. the crash/hang virgin map (AFL's built-in uniqueness signal).
    NewBits outcome_new_bits = NewBits::kNone;
    u32 hash = 0;   // classified-trace hash; computed iff interesting
    u64 exec_ns = 0;
    bool interesting() const noexcept { return new_bits != NewBits::kNone; }
  };

  // Runs one input through the full AFL per-test-case pipeline, charging
  // each stage to `timing`.
  Outcome run(std::span<const u8> input, OpTimeBreakdown& timing) {
    Outcome out;

    {
      ScopedOpTimer t(timing, MapOp::kReset);
      map_.reset();
    }

    {
      const u64 start = monotonic_ns();
      metric_.begin_execution();
      out.exec = interp_.run(*prog_, input, [this](u32 block_index) {
        if constexpr (ContextAwareMetric<Metric>) {
          const Block& b = prog_->blocks[block_index];
          if (b.kind == BlockKind::kCall) {
            metric_.on_call(b.targets[0]);
          } else if (b.kind == BlockKind::kReturn) {
            metric_.on_return();
          }
        }
        map_.update(metric_.visit(block_index));
      });
      out.exec_ns = monotonic_ns() - start;
      timing.add(MapOp::kExecution, out.exec_ns);
    }

    switch (out.exec.outcome) {
      case ExecResult::Outcome::kOk: {
        out.new_bits = classify_and_compare(virgin_queue_, timing);
        if (out.new_bits != NewBits::kNone) {
          ScopedOpTimer t(timing, MapOp::kHash);
          out.hash = map_.hash();
        }
        break;
      }
      case ExecResult::Outcome::kCrash:
        out.outcome_new_bits = classify_and_compare(virgin_crash_, timing);
        break;
      case ExecResult::Outcome::kHang:
        out.outcome_new_bits = classify_and_compare(virgin_hang_, timing);
        break;
    }

    return out;
  }

  // Outcome of an untraced (coverage-guided tracing) run.
  struct UntracedOutcome {
    ExecResult exec;
    // The interest oracle stopped the execution: this input may produce
    // new coverage and must be re-executed with full tracing. The partial
    // ExecResult is meaningless and must be discarded.
    bool fired = false;
    u64 exec_ns = 0;
  };

  // Runs one input with NO trace emission and NO whole-map operations —
  // only the inline interest oracle. The oracle is EXACT against the
  // queue virgin map: it fires if and only if the traced pipeline would
  // report new bits for this input. Two parts compose:
  //
  //  - first-hit check (two-level scheme): the metric key has no
  //    condensed slot yet (slot_of == kUnassigned). A fresh key lands in
  //    a fresh 0xFF virgin byte — guaranteed new bits — and untraced mode
  //    must never mutate the index. On the non-context path this check is
  //    BRANCHLESS: the unassigned sentinel is clamped (one cmov) onto a
  //    spare counter slot just past the virgin positions, the run
  //    completes like any other, and a touched spare slot reads back as
  //    fired. The interpreter loop then needs no per-block stop check at
  //    all (run_until_nostop). Context-aware metrics keep the stopping
  //    oracle: their call/return bookkeeping already branches per block,
  //    so the early stop costs nothing extra there.
  //  - final-count check: otherwise the run completes fully while a
  //    sparse per-position u8 counter mirrors the map's counter (same
  //    256-wrap); afterwards, fired = any touched position with
  //    classify_count(final_count) & virgin — byte-for-byte the test
  //    classify + compare_update would perform. Intermediate counts are
  //    deliberately NOT checked against virgin mid-run: a traced run
  //    clears only its FINAL bucket's bit, so lower-bucket bits stay
  //    virgin indefinitely and checking them over-fires on nearly every
  //    exec; the hot per-block path therefore touches no virgin byte at
  //    all, only the two count arrays.
  //
  // Crashes and hangs complete normally (fired stays false); the caller
  // decides to replay them traced for the exact crash/hang virgin compare.
  // Nothing campaign-lifetime is touched: no index allocation, no virgin
  // update — an aborted re-execution therefore leaves the breakpoint
  // armed and the same input fires again.
  UntracedOutcome run_untraced(std::span<const u8> input,
                               OpTimeBreakdown& timing) {
    UntracedOutcome out;
    // One spare slot past the virgin positions absorbs unassigned
    // two-level keys on the branchless path; flat maps never touch it.
    const u32 spare = static_cast<u32>(virgin_positions());
    if (oracle_counts_.empty()) {
      oracle_counts_.assign(virgin_positions() + 1, 0);
      oracle_touched_.reserve(1024);
    }
    const u64 start = monotonic_ns();
    metric_.begin_execution();
    if constexpr (ContextAwareMetric<Metric>) {
      out.exec = interp_.run_until(
          *prog_, input, &out.fired, [this](u32 block_index) {
            const Block& b = prog_->blocks[block_index];
            if (b.kind == BlockKind::kCall) {
              metric_.on_call(b.targets[0]);
            } else if (b.kind == BlockKind::kReturn) {
              metric_.on_return();
            }
            const u32 key = metric_.visit(block_index);
            u32 pos;
            if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
              pos = map_.slot_of(key);
              if (pos == Map::kUnassigned) return true;
            } else {
              pos = key & static_cast<u32>(map_.map_size() - 1);
            }
            const u8 c = ++oracle_counts_[pos];
            if (c == 1) oracle_touched_.push_back(pos);
            return false;
          });
    } else {
      out.exec = interp_.run_until_nostop(
          *prog_, input, [this, spare](u32 block_index) {
            const u32 key = metric_.visit(block_index);
            u32 pos;
            if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
              pos = map_.slot_of(key);
              // Sentinel clamp compiles to a conditional move — no
              // control-flow branch, no early exit.
              pos = pos == Map::kUnassigned ? spare : pos;
            } else {
              pos = key & static_cast<u32>(map_.map_size() - 1);
              (void)spare;
            }
            const u8 c = ++oracle_counts_[pos];
            if (c == 1) oracle_touched_.push_back(pos);
          });
    }
    // Fused final-count check + sparse counter reset, one pass over the
    // touched positions (LUT classify, like the traced pipeline's
    // classify_counts). Runs on every exit path so the scratch is always
    // clean for the next run. The spare slot appearing in the touched
    // list means an unassigned key executed — a guaranteed-new first hit,
    // detected by membership rather than by count so a 256-wrap back to
    // zero cannot mask it. The touched list can hold a duplicate after a
    // wrap; the extra zero store is harmless.
    {
      const u8* virgin = virgin_queue_.data();
      const auto& lut = count_class_lookup8();
      bool novel = false;
      for (u32 pos : oracle_touched_) {
        if (pos == spare) {
          novel = true;
        } else {
          novel |= (virgin[pos] & lut[oracle_counts_[pos]]) != 0;
        }
        oracle_counts_[pos] = 0;
      }
      oracle_touched_.clear();
      out.fired = out.fired || novel;
    }
    out.exec_ns = monotonic_ns() - start;
    timing.add(MapOp::kExecution, out.exec_ns);
    return out;
  }

  // Outcome of a hash-only run (trimming support).
  struct SilentRun {
    ExecResult exec;
    u32 hash = 0;
  };

  // Runs one input through reset / execute / classify / hash WITHOUT
  // touching any virgin map — AFL's trim_case uses exactly this sequence
  // to test whether a shortened input preserves the execution path.
  SilentRun run_for_hash(std::span<const u8> input,
                         OpTimeBreakdown& timing) {
    SilentRun out;
    {
      ScopedOpTimer t(timing, MapOp::kReset);
      map_.reset();
    }
    {
      ScopedOpTimer t(timing, MapOp::kExecution);
      metric_.begin_execution();
      out.exec = interp_.run(*prog_, input, [this](u32 block_index) {
        if constexpr (ContextAwareMetric<Metric>) {
          const Block& b = prog_->blocks[block_index];
          if (b.kind == BlockKind::kCall) {
            metric_.on_call(b.targets[0]);
          } else if (b.kind == BlockKind::kReturn) {
            metric_.on_return();
          }
        }
        map_.update(metric_.visit(block_index));
      });
    }
    {
      ScopedOpTimer t(timing, MapOp::kClassify);
      map_.classify();
    }
    {
      ScopedOpTimer t(timing, MapOp::kHash);
      out.hash = map_.hash();
    }
    return out;
  }

  // The classified trace of the last run, over the span relevant for the
  // scheme (full map for flat, used region for BigMap) — what AFL's
  // update_bitmap_score walks.
  std::span<const u8> last_trace() const noexcept {
    if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
      return map_.used_region();
    } else {
      return map_.trace();
    }
  }

  // Coverage positions the virgin maps track (== last_trace()'s maximum
  // possible length).
  usize virgin_positions() const noexcept { return virgin_queue_.size(); }

  Map& map() noexcept { return map_; }
  const Map& map() const noexcept { return map_; }
  Metric& metric() noexcept { return metric_; }

  const VirginMap& virgin_queue() const noexcept { return virgin_queue_; }
  const VirginMap& virgin_crash() const noexcept { return virgin_crash_; }
  const VirginMap& virgin_hang() const noexcept { return virgin_hang_; }

  // Mutable access for checkpoint restore: a snapshot overwrites the
  // virgin bytes wholesale to resume accumulated global coverage.
  VirginMap& mutable_virgin_queue() noexcept { return virgin_queue_; }
  VirginMap& mutable_virgin_crash() noexcept { return virgin_crash_; }
  VirginMap& mutable_virgin_hang() noexcept { return virgin_hang_; }

  Interpreter& interpreter() noexcept { return interp_; }

 private:
  static usize virgin_positions_of(const Map& m) noexcept {
    if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
      return m.condensed_size();
    } else {
      return m.map_size();
    }
  }

  NewBits classify_and_compare(VirginMap& virgin, OpTimeBreakdown& timing) {
    if (merged_) {
      const u64 start = monotonic_ns();
      const NewBits nb = map_.classify_and_compare(virgin);
      const u64 ns = monotonic_ns() - start;
      timing.add(MapOp::kClassify, ns / 2);
      timing.add(MapOp::kCompare, ns - ns / 2);
      return nb;
    }
    {
      ScopedOpTimer t(timing, MapOp::kClassify);
      map_.classify();
    }
    ScopedOpTimer t(timing, MapOp::kCompare);
    return map_.compare_update(virgin);
  }

  const Program* prog_;
  Map map_;
  Metric metric_;
  VirginMap virgin_queue_;
  VirginMap virgin_crash_;
  VirginMap virgin_hang_;
  Interpreter interp_;
  bool merged_;
  // Untraced-mode scratch: per-exec u8 hit counts per virgin position
  // (lazily allocated on the first run_untraced) and the positions touched
  // this run, for sparse reset.
  std::vector<u8> oracle_counts_;
  std::vector<u32> oracle_touched_;
};

}  // namespace bigmap
