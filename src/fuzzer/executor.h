// Executor: runs one test case end-to-end and applies the per-test-case
// map-operation sequence (§II-A2).
//
// Templated on the coverage map (FlatCoverageMap / TwoLevelCoverageMap) and
// the coverage metric (EdgeMetric / NGramMetric / ContextMetric) so the
// per-edge path — interpreter step -> metric key -> map update — inlines
// with zero dispatch. Every stage is attributed to the Figure 3 timing
// category it belongs to:
//
//   reset      ->  MapOp::kReset
//   execute    ->  MapOp::kExecution   (includes inline map updates)
//   classify   ->  MapOp::kClassify
//   compare    ->  MapOp::kCompare
//   hash       ->  MapOp::kHash        (interesting test cases only)
//
// When merged classify+compare is enabled (§IV-E) the fused pass cannot be
// split by measurement; its time is attributed half to kClassify and half
// to kCompare, which benches note in their output.
#pragma once

#include <concepts>
#include <span>

#include "core/map_options.h"
#include "core/virgin.h"
#include "instrumentation/metrics.h"
#include "target/interpreter.h"
#include "target/program.h"
#include "util/timing.h"
#include "util/types.h"

namespace bigmap {

// Metric concept detection: ContextMetric wants call/return notifications.
template <class M>
concept ContextAwareMetric = requires(M m, u32 block) {
  m.on_call(block);
  m.on_return();
};

template <class Map, class Metric>
class Executor {
 public:
  Executor(const Program& prog, const MapOptions& opts,
           const BlockIdTable& ids, u64 step_budget,
           u32 work_per_block = Interpreter::kDefaultWorkPerBlock)
      : prog_(&prog),
        map_(opts),
        metric_(ids),
        virgin_queue_(virgin_positions_of(map_), opts.backing()),
        virgin_crash_(virgin_positions_of(map_), opts.backing()),
        virgin_hang_(virgin_positions_of(map_), opts.backing()),
        interp_(step_budget, work_per_block),
        merged_(opts.merged_classify_compare) {}

  struct Outcome {
    ExecResult exec;
    // vs. the queue virgin map; kNone for crashes/hangs.
    NewBits new_bits = NewBits::kNone;
    // vs. the crash/hang virgin map (AFL's built-in uniqueness signal).
    NewBits outcome_new_bits = NewBits::kNone;
    u32 hash = 0;   // classified-trace hash; computed iff interesting
    u64 exec_ns = 0;
    bool interesting() const noexcept { return new_bits != NewBits::kNone; }
  };

  // Runs one input through the full AFL per-test-case pipeline, charging
  // each stage to `timing`.
  Outcome run(std::span<const u8> input, OpTimeBreakdown& timing) {
    Outcome out;

    {
      ScopedOpTimer t(timing, MapOp::kReset);
      map_.reset();
    }

    {
      const u64 start = monotonic_ns();
      metric_.begin_execution();
      out.exec = interp_.run(*prog_, input, [this](u32 block_index) {
        if constexpr (ContextAwareMetric<Metric>) {
          const Block& b = prog_->blocks[block_index];
          if (b.kind == BlockKind::kCall) {
            metric_.on_call(b.targets[0]);
          } else if (b.kind == BlockKind::kReturn) {
            metric_.on_return();
          }
        }
        map_.update(metric_.visit(block_index));
      });
      out.exec_ns = monotonic_ns() - start;
      timing.add(MapOp::kExecution, out.exec_ns);
    }

    switch (out.exec.outcome) {
      case ExecResult::Outcome::kOk: {
        out.new_bits = classify_and_compare(virgin_queue_, timing);
        if (out.new_bits != NewBits::kNone) {
          ScopedOpTimer t(timing, MapOp::kHash);
          out.hash = map_.hash();
        }
        break;
      }
      case ExecResult::Outcome::kCrash:
        out.outcome_new_bits = classify_and_compare(virgin_crash_, timing);
        break;
      case ExecResult::Outcome::kHang:
        out.outcome_new_bits = classify_and_compare(virgin_hang_, timing);
        break;
    }

    return out;
  }

  // Outcome of a hash-only run (trimming support).
  struct SilentRun {
    ExecResult exec;
    u32 hash = 0;
  };

  // Runs one input through reset / execute / classify / hash WITHOUT
  // touching any virgin map — AFL's trim_case uses exactly this sequence
  // to test whether a shortened input preserves the execution path.
  SilentRun run_for_hash(std::span<const u8> input,
                         OpTimeBreakdown& timing) {
    SilentRun out;
    {
      ScopedOpTimer t(timing, MapOp::kReset);
      map_.reset();
    }
    {
      ScopedOpTimer t(timing, MapOp::kExecution);
      metric_.begin_execution();
      out.exec = interp_.run(*prog_, input, [this](u32 block_index) {
        if constexpr (ContextAwareMetric<Metric>) {
          const Block& b = prog_->blocks[block_index];
          if (b.kind == BlockKind::kCall) {
            metric_.on_call(b.targets[0]);
          } else if (b.kind == BlockKind::kReturn) {
            metric_.on_return();
          }
        }
        map_.update(metric_.visit(block_index));
      });
    }
    {
      ScopedOpTimer t(timing, MapOp::kClassify);
      map_.classify();
    }
    {
      ScopedOpTimer t(timing, MapOp::kHash);
      out.hash = map_.hash();
    }
    return out;
  }

  // The classified trace of the last run, over the span relevant for the
  // scheme (full map for flat, used region for BigMap) — what AFL's
  // update_bitmap_score walks.
  std::span<const u8> last_trace() const noexcept {
    if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
      return map_.used_region();
    } else {
      return map_.trace();
    }
  }

  // Coverage positions the virgin maps track (== last_trace()'s maximum
  // possible length).
  usize virgin_positions() const noexcept { return virgin_queue_.size(); }

  Map& map() noexcept { return map_; }
  const Map& map() const noexcept { return map_; }
  Metric& metric() noexcept { return metric_; }

  const VirginMap& virgin_queue() const noexcept { return virgin_queue_; }
  const VirginMap& virgin_crash() const noexcept { return virgin_crash_; }
  const VirginMap& virgin_hang() const noexcept { return virgin_hang_; }

  // Mutable access for checkpoint restore: a snapshot overwrites the
  // virgin bytes wholesale to resume accumulated global coverage.
  VirginMap& mutable_virgin_queue() noexcept { return virgin_queue_; }
  VirginMap& mutable_virgin_crash() noexcept { return virgin_crash_; }
  VirginMap& mutable_virgin_hang() noexcept { return virgin_hang_; }

  Interpreter& interpreter() noexcept { return interp_; }

 private:
  static usize virgin_positions_of(const Map& m) noexcept {
    if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
      return m.condensed_size();
    } else {
      return m.map_size();
    }
  }

  NewBits classify_and_compare(VirginMap& virgin, OpTimeBreakdown& timing) {
    if (merged_) {
      const u64 start = monotonic_ns();
      const NewBits nb = map_.classify_and_compare(virgin);
      const u64 ns = monotonic_ns() - start;
      timing.add(MapOp::kClassify, ns / 2);
      timing.add(MapOp::kCompare, ns - ns / 2);
      return nb;
    }
    {
      ScopedOpTimer t(timing, MapOp::kClassify);
      map_.classify();
    }
    ScopedOpTimer t(timing, MapOp::kCompare);
    return map_.compare_update(virgin);
  }

  const Program* prog_;
  Map map_;
  Metric metric_;
  VirginMap virgin_queue_;
  VirginMap virgin_crash_;
  VirginMap virgin_hang_;
  Interpreter interp_;
  bool merged_;
};

}  // namespace bigmap
