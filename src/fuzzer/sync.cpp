#include "fuzzer/sync.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace bigmap {

SyncHub::SyncHub(const SyncHubOptions& options)
    : opts_(options), cursors_(options.num_instances, 0) {
  stats_.missed.assign(options.num_instances, 0);
}

void SyncHub::check_instance(u32 instance) const {
  if (instance >= cursors_.size()) {
    throw std::out_of_range("SyncHub: instance id " +
                            std::to_string(instance) + " out of range (" +
                            std::to_string(cursors_.size()) + " instances)");
  }
}

bool SyncHub::publish(u32 instance, Input input) {
  // The fault decision is taken outside the hub lock: fire() has its own
  // mutex and the (instance, site) counter keeps the schedule deterministic
  // regardless of publish interleaving.
  const bool dropped =
      fault_ != nullptr && fault_->fire(FaultSite::kPublishDrop, instance);

  std::lock_guard<std::mutex> lock(mu_);
  check_instance(instance);
  if (dropped) {
    ++stats_.dropped_faults;
    return false;
  }
  if (opts_.max_input_size != 0 && input.size() > opts_.max_input_size) {
    ++stats_.rejected_oversize;
    return false;
  }

  log_.push_back({instance, std::move(input)});
  ++stats_.total_published;

  if (opts_.max_records != 0) {
    while (log_.size() > opts_.max_records) {
      log_.pop_front();
      ++base_;
      ++stats_.evicted;
    }
  }
  return true;
}

std::vector<Input> SyncHub::fetch_new(u32 instance) {
  std::lock_guard<std::mutex> lock(mu_);
  check_instance(instance);
  u64& cursor = cursors_[instance];

  // Fell behind the eviction frontier: the gap is gone for good. Account
  // for it as backpressure and resume from the oldest retained record.
  if (cursor < base_) {
    stats_.missed[instance] += base_ - cursor;
    cursor = base_;
  }

  std::vector<Input> out;
  const u64 end = base_ + log_.size();
  for (; cursor < end; ++cursor) {
    const Record& rec = log_[static_cast<usize>(cursor - base_)];
    if (rec.publisher != instance) {
      out.push_back(rec.data);
      ++stats_.fetched;
    }
  }
  return out;
}

void SyncHub::reset_cursor(u32 instance) {
  std::lock_guard<std::mutex> lock(mu_);
  check_instance(instance);
  cursors_[instance] = base_;
}

u64 SyncHub::total_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.total_published;
}

SyncHubStats SyncHub::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SyncHubStats snap = stats_;
  snap.live_records = log_.size();
  return snap;
}

}  // namespace bigmap
