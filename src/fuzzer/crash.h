// Crash collection and deduplication.
//
// Three notions of "unique crash", matching §V-A3:
//
//  - AFL-style: a crash is unique if the crash-virgin map reports new bits.
//    Inherently biased toward larger maps (more positions to be new in);
//    tracked because AFL tracks it, but not used for cross-map-size
//    comparisons.
//  - Crashwalk-style: hash of (call stack, faulting address). Map-size
//    independent; this is what the paper reports.
//  - Ground truth: the planted bug_id. Only a synthetic substrate has this;
//    exposed for validating that the other two dedup schemes behave.
#pragma once

#include <unordered_set>
#include <vector>

#include "target/interpreter.h"
#include "util/hash.h"
#include "util/types.h"

namespace bigmap {

class CrashTriage {
 public:
  // Records a crash; `afl_unique` is whether the crash-virgin comparison
  // reported new bits for this crash's trace.
  void record(const ExecResult& crash, bool afl_unique) {
    ++total_;
    if (afl_unique) ++afl_unique_;
    stack_hashes_.insert(hash_combine(crash.stack_hash,
                                      crash.faulting_block));
    bug_ids_.insert(crash.bug_id);
  }

  u64 total() const noexcept { return total_; }
  u64 afl_unique() const noexcept { return afl_unique_; }
  u64 crashwalk_unique() const noexcept { return stack_hashes_.size(); }
  u64 ground_truth_unique() const noexcept { return bug_ids_.size(); }

  const std::unordered_set<u32>& bug_ids() const noexcept { return bug_ids_; }
  const std::unordered_set<u64>& stack_hashes() const noexcept {
    return stack_hashes_;
  }

  // Checkpoint restore: replaces the triage state wholesale with the
  // identity sets and counters a snapshot carried. The stack hashes are
  // stored post-combination, so they round-trip verbatim.
  void restore(const std::vector<u32>& bug_ids,
               const std::vector<u64>& stack_hashes, u64 total,
               u64 afl_unique) {
    total_ = total;
    afl_unique_ = afl_unique;
    stack_hashes_.clear();
    stack_hashes_.insert(stack_hashes.begin(), stack_hashes.end());
    bug_ids_.clear();
    bug_ids_.insert(bug_ids.begin(), bug_ids.end());
  }

 private:
  u64 total_ = 0;
  u64 afl_unique_ = 0;
  std::unordered_set<u64> stack_hashes_;
  std::unordered_set<u32> bug_ids_;
};

}  // namespace bigmap
