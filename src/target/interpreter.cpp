#include "target/interpreter.h"

namespace bigmap {

void Interpreter::begin_run(usize num_blocks) {
  call_stack_.clear();
  if (loop_epoch_.size() < num_blocks) {
    loop_epoch_.assign(num_blocks, 0);
    loop_count_.assign(num_blocks, 0);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {  // epoch wrapped: do the rare full clear
    std::fill(loop_epoch_.begin(), loop_epoch_.end(), 0);
    epoch_ = 1;
  }
}

u64 Interpreter::hash_call_stack() const noexcept {
  // Crashwalk-style identity: fold the return addresses top-down so the
  // same bug reached through different call paths dedups separately.
  u64 h = 0xcbf29ce484222325ULL;
  for (u32 frame : call_stack_) {
    h = hash_combine(h, frame);
  }
  return h;
}

}  // namespace bigmap
