#include "target/suite.h"

#include <algorithm>

namespace bigmap {

namespace {

// Application harness: default gate mix, paper columns from Table II.
BenchmarkInfo app(const char* name, const char* version, u32 num_seeds,
                  u64 paper_edges, u64 paper_static, double paper_coll,
                  u32 live, u32 dead, u32 bugs, u64 seed) {
  BenchmarkInfo info;
  info.name = name;
  info.version = version;
  info.num_seeds = num_seeds;
  info.paper_discovered_edges = paper_edges;
  info.paper_static_edges = paper_static;
  info.paper_collision_rate = paper_coll;
  info.gen.name = name;
  info.gen.seed = seed;
  info.gen.live_blocks = live;
  info.gen.dead_blocks = dead;
  info.gen.num_bugs = bugs;
  info.gen.bug_min_depth = 1;
  info.gen.bug_max_depth = 3;
  return info;
}

// LLVM-opt pass harness: denser hard/multi-byte gates and more functions,
// matching the bitcode-shaped inputs the paper fuzzed through opt.
BenchmarkInfo llvm_pass(const char* name, u32 num_seeds, u64 paper_edges,
                        u64 paper_static, double paper_coll, u32 live,
                        u32 bugs, u64 seed) {
  BenchmarkInfo info =
      app(name, "LLVM 12.0.0", num_seeds, paper_edges, paper_static,
          paper_coll, live, live / 12, bugs, seed);
  info.gen.frac_wide_cmp = 0.22;
  info.gen.frac_hard_eq = 0.45;
  info.gen.frac_switch = 0.10;
  info.gen.frac_strcmp = 0.04;
  info.gen.frac_loop = 0.10;
  info.gen.frac_call = 0.12;
  info.gen.num_functions = 6;
  return info;
}

std::vector<BenchmarkInfo> make_full_suite() {
  std::vector<BenchmarkInfo> s;
  // Applications (Table II upper half), ascending discovered edges.
  s.push_back(app("zlib", "1.2.11", 64, 778, 1723, 0.59, 1100, 100, 4, 101));
  s.push_back(app("libpng", "1.6.38", 80, 2456, 4786, 1.85, 1900, 200, 6, 102));
  s.push_back(app("proj4", "8.1.1", 44, 6422, 9211, 4.66, 4200, 300, 8, 103));
  s.push_back(
      app("bloaty", "2020-05-25", 90, 8871, 42318, 6.33, 6200, 500, 10, 104));
  s.push_back(
      app("openssl", "3.0.0", 128, 10327, 45989, 7.30, 7400, 600, 10, 105));
  s.push_back(app("php", "8.0.1", 120, 13560, 63522, 9.38, 9000, 700, 12, 106));
  s.push_back(
      app("sqlite3", "3.36.0", 150, 20035, 48338, 13.39, 11500, 900, 12, 107));
  // The 12 LLVM-opt pass harnesses (Table II lower half).
  s.push_back(llvm_pass("adce", 100, 24210, 52400, 15.6, 13500, 14, 201));
  s.push_back(
      llvm_pass("reassociate", 100, 25117, 54400, 16.1, 14000, 14, 202));
  s.push_back(llvm_pass("mem2reg", 100, 26233, 56800, 16.8, 14500, 14, 203));
  s.push_back(llvm_pass("dse", 100, 27904, 60400, 17.6, 15500, 14, 204));
  s.push_back(
      llvm_pass("jump-threading", 100, 30218, 65400, 18.8, 16500, 15, 205));
  s.push_back(llvm_pass("sccp", 100, 32980, 71400, 20.2, 18000, 15, 206));
  s.push_back(llvm_pass("early-cse", 100, 34822, 75400, 21.0, 19000, 16, 207));
  s.push_back(
      llvm_pass("loop-unroll", 100, 40663, 87900, 23.8, 20500, 16, 208));
  s.push_back(llvm_pass("licm", 100, 46104, 99700, 26.2, 23000, 16, 209));
  s.push_back(llvm_pass("gvn", 100, 52377, 113200, 28.9, 25500, 18, 210));
  s.push_back(
      llvm_pass("simplifycfg", 100, 59317, 128200, 31.6, 27500, 18, 211));
  s.push_back(
      llvm_pass("instcombine", 100, 130941, 262144, 57.3, 33000, 20, 212));
  return s;
}

bool is_llvm(const BenchmarkInfo& info) {
  return info.version.rfind("LLVM", 0) == 0;
}

std::vector<BenchmarkInfo> make_composition_suite() {
  std::vector<BenchmarkInfo> s;
  for (const BenchmarkInfo& base : full_table2_suite()) {
    if (!is_llvm(base)) continue;
    BenchmarkInfo comp = base;
    comp.name += "+comp";
    comp.gen.name += "+comp";
    comp.gen.seed ^= 0xc0c0c0c0ULL;
    // Table III workload: saturate the CFG with splittable material so
    // laf-intel + N-gram drives map pressure toward the paper's ~87 %
    // collision regime at 64 kB.
    comp.gen.frac_wide_cmp = 0.50;
    comp.gen.frac_hard_eq = 0.60;
    comp.gen.frac_switch = 0.15;
    comp.gen.frac_strcmp = 0.15;
    comp.paper_discovered_edges = base.paper_discovered_edges * 46 / 10;
    comp.paper_static_edges = base.paper_static_edges * 46 / 10;
    comp.paper_collision_rate =
        std::min(95.0, base.paper_collision_rate * 3.2);
    s.push_back(std::move(comp));
  }
  return s;
}

}  // namespace

const std::vector<BenchmarkInfo>& full_table2_suite() {
  static const std::vector<BenchmarkInfo> suite = make_full_suite();
  return suite;
}

const std::vector<BenchmarkInfo>& llvm_suite() {
  static const std::vector<BenchmarkInfo> suite = [] {
    std::vector<BenchmarkInfo> s;
    for (const BenchmarkInfo& info : full_table2_suite()) {
      if (is_llvm(info)) s.push_back(info);
    }
    return s;
  }();
  return suite;
}

const std::vector<BenchmarkInfo>& composition_suite() {
  static const std::vector<BenchmarkInfo> suite = make_composition_suite();
  return suite;
}

const BenchmarkInfo* find_benchmark(std::string_view name) {
  for (const BenchmarkInfo& info : full_table2_suite()) {
    if (info.name == name) return &info;
  }
  for (const BenchmarkInfo& info : composition_suite()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

GeneratedTarget build_benchmark(const BenchmarkInfo& info) {
  GeneratedTarget target = generate_target(info.gen);
  target.program.validate();
  return target;
}

std::vector<std::vector<u8>> benchmark_seeds(const GeneratedTarget& target,
                                             const BenchmarkInfo& info) {
  return make_seed_corpus(target, info.num_seeds, info.gen.seed ^ 0x5eedULL);
}

}  // namespace bigmap
