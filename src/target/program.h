// Synthetic-target program model.
//
// DESIGN.md §2: the paper fuzzes instrumented real binaries; we replace them
// with control-flow graphs whose blocks compare input bytes against
// constants. AFL's instrumentation reduces a target to a stream of
// (prev_block, cur_block) events hitting the bitmap, and the interpreter in
// interpreter.h produces exactly that stream from these Programs.
//
// A Program is a flat vector of Blocks; block 0 is the entry. Each block's
// kind decides how its successor is chosen from `targets`:
//
//   kExit         no targets; execution ends with Outcome::kOk.
//   kFallthrough  targets = {next}.
//   kBranch       targets = {taken, not_taken}; reads `cmp_width` little-
//                 endian bytes at `input_offset` and compares against
//                 `expected` with `pred`.
//   kSwitch       targets = {case_0, ..., case_{n-1}, default}; matches the
//                 read value against `cases` (cases.size() + 1 == targets).
//   kStrcmp       targets = {equal, not_equal}; byte-wise compares
//                 input[input_offset ...] against `str`.
//   kLoop         targets = {body, exit}; iterates the body
//                 min(input[input_offset], loop_max) times per execution.
//   kCall         targets = {callee_entry, continuation}; pushes the
//                 continuation on the simulated call stack.
//   kReturn       no targets; pops the call stack (empty stack exits kOk).
//   kBug          no targets; planted fault site, terminates with
//                 Outcome::kCrash recording `bug_id` and the call stack.
//
// Programs constructed by hand or by the generator must pass validate()
// before being handed to the interpreter: the validator rejects malformed
// CFGs (out-of-range targets, unreachable blocks, call/return imbalance)
// with std::invalid_argument instead of letting the interpreter walk off
// the graph.
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace bigmap {

enum class BlockKind : u8 {
  kExit = 0,
  kFallthrough,
  kBranch,
  kSwitch,
  kStrcmp,
  kLoop,
  kCall,
  kReturn,
  kBug,
};

enum class CmpPred : u8 { kEq = 0, kNe, kLt, kLe, kGt, kGe };

struct Block {
  BlockKind kind = BlockKind::kExit;
  CmpPred pred = CmpPred::kEq;
  // Width in bytes of the compared value (1, 2, 4 or 8), little-endian.
  // Widths > 1 are the "rare multi-byte gates" that laf-intel splits.
  u8 cmp_width = 1;
  u32 input_offset = 0;
  u64 expected = 0;
  // kLoop: hard cap on iterations regardless of the input byte.
  u32 loop_max = 0;
  // kBug: stable ground-truth identity of the planted fault.
  u32 bug_id = 0;
  std::vector<u32> targets;
  // kSwitch only: case values; targets.size() == cases.size() + 1.
  std::vector<u64> cases;
  // kStrcmp only: the expected byte string.
  std::vector<u8> str;
};

struct Program {
  std::string name = "unnamed";
  std::vector<Block> blocks;
  // Number of planted kBug sites (ground truth for crash triage).
  u32 num_bugs = 0;
  // Input size the target was generated for; the campaign's dummy-seed
  // fallback and the seed corpus use this.
  usize nominal_input_size = 64;

  // Number of distinct (block, successor) pairs — the static edge count a
  // compiler pass (CollAFL, Table II "static edges") would see.
  usize static_edge_count() const noexcept;

  // Structural CFG checks; throws std::invalid_argument describing the
  // first problem found. Checks per-kind target arity, target ranges,
  // switch/strcmp/loop field consistency, reachability of every block from
  // the entry, and call/return balance (no kReturn reachable with an empty
  // simulated call stack).
  void validate() const;
};

}  // namespace bigmap
