// The Table II benchmark suite (paper §V).
//
// Nineteen calibrated generator profiles stand in for the paper's real
// targets: seven application harnesses (zlib … sqlite3) and twelve LLVM-opt
// pass harnesses (adce … simplifycfg), spanning ≈0.7k–131k discoverable
// edges. Each BenchmarkInfo carries the paper's reported numbers (for the
// comparison columns in bench_table2) alongside the GeneratorParams that
// reproduce the profile's scale in our substrate. composition_suite() adds
// the "+comp" variants used by the Table III metric-composition experiment:
// the same harnesses re-generated with a much higher density of multi-byte
// and string gates, the raw material for laf-intel + N-gram.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "target/generator.h"
#include "target/program.h"
#include "util/types.h"

namespace bigmap {

struct BenchmarkInfo {
  std::string name;
  std::string version;
  // Seed-corpus size used by the paper's campaign for this target.
  u32 num_seeds = 0;
  // Paper Table II columns.
  u64 paper_discovered_edges = 0;
  u64 paper_static_edges = 0;
  double paper_collision_rate = 0.0;  // percent, at a 64 kB map
  // Calibrated generator profile reproducing the target's scale.
  GeneratorParams gen;
};

// All 19 Table II profiles, ordered by discovered-edge count (zlib lowest,
// instcombine highest).
const std::vector<BenchmarkInfo>& full_table2_suite();

// The 12 LLVM-opt pass harnesses (the crash-heavy subset used by the
// Figure 8/10 experiments).
const std::vector<BenchmarkInfo>& llvm_suite();

// "+comp" variants of the LLVM harnesses for the Table III composition
// workload (dense multi-byte/string gates; pair with apply_laf_intel and
// NGramMetric).
const std::vector<BenchmarkInfo>& composition_suite();

// Lookup across all suites (including "+comp" names); nullptr if unknown.
const BenchmarkInfo* find_benchmark(std::string_view name);

// Deterministically builds the benchmark's program (validated).
GeneratedTarget build_benchmark(const BenchmarkInfo& info);

// The benchmark's deterministic seed corpus (info.num_seeds inputs).
std::vector<std::vector<u8>> benchmark_seeds(const GeneratedTarget& target,
                                             const BenchmarkInfo& info);

}  // namespace bigmap
