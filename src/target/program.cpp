#include "target/program.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace bigmap {

namespace {

// Expected number of successor targets for each block kind, or -1 when the
// arity is variable (kSwitch).
int expected_targets(BlockKind kind) {
  switch (kind) {
    case BlockKind::kExit:
    case BlockKind::kReturn:
    case BlockKind::kBug:
      return 0;
    case BlockKind::kFallthrough:
      return 1;
    case BlockKind::kBranch:
    case BlockKind::kStrcmp:
    case BlockKind::kLoop:
    case BlockKind::kCall:
      return 2;
    case BlockKind::kSwitch:
      return -1;
  }
  return -1;
}

[[noreturn]] void fail(usize block, const std::string& what) {
  throw std::invalid_argument("Program::validate: block " +
                              std::to_string(block) + ": " + what);
}

}  // namespace

usize Program::static_edge_count() const noexcept {
  std::vector<u64> edges;
  edges.reserve(blocks.size() * 2);
  for (usize b = 0; b < blocks.size(); ++b) {
    for (u32 t : blocks[b].targets) {
      edges.push_back((static_cast<u64>(b) << 32) | t);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges.size();
}

void Program::validate() const {
  if (blocks.empty()) {
    throw std::invalid_argument("Program::validate: program has no blocks");
  }
  const usize n = blocks.size();
  for (usize b = 0; b < n; ++b) {
    const Block& blk = blocks[b];
    const int want = expected_targets(blk.kind);
    if (want >= 0 && blk.targets.size() != static_cast<usize>(want)) {
      fail(b, "expected " + std::to_string(want) + " targets, has " +
                  std::to_string(blk.targets.size()));
    }
    for (u32 t : blk.targets) {
      if (t >= n) fail(b, "target " + std::to_string(t) + " out of range");
    }
    switch (blk.kind) {
      case BlockKind::kBranch:
        if (blk.cmp_width != 1 && blk.cmp_width != 2 && blk.cmp_width != 4 &&
            blk.cmp_width != 8) {
          fail(b, "cmp_width must be 1, 2, 4 or 8");
        }
        break;
      case BlockKind::kSwitch:
        if (blk.cmp_width != 1 && blk.cmp_width != 2 && blk.cmp_width != 4 &&
            blk.cmp_width != 8) {
          fail(b, "cmp_width must be 1, 2, 4 or 8");
        }
        if (blk.cases.empty()) fail(b, "switch has no cases");
        if (blk.targets.size() != blk.cases.size() + 1) {
          fail(b, "switch needs cases.size() + 1 targets (last is default)");
        }
        break;
      case BlockKind::kStrcmp:
        if (blk.str.empty()) fail(b, "strcmp gate has empty string");
        break;
      case BlockKind::kLoop:
        if (blk.loop_max == 0) fail(b, "loop_max must be > 0");
        break;
      default:
        break;
    }
  }

  // Reachability and call/return balance in one pass. States are
  // (block, call_depth) with the depth capped so recursive call chains
  // terminate; a kReturn reachable at depth 0 means some path underflows
  // the simulated call stack.
  constexpr u32 kMaxTrackedDepth = 8;
  std::vector<u8> seen(n * (kMaxTrackedDepth + 1), 0);
  std::vector<u8> reachable(n, 0);
  std::vector<std::pair<u32, u32>> stack;
  auto visit = [&](u32 block, u32 depth) {
    u8& mark = seen[static_cast<usize>(block) * (kMaxTrackedDepth + 1) + depth];
    if (!mark) {
      mark = 1;
      stack.emplace_back(block, depth);
    }
  };
  visit(0, 0);
  while (!stack.empty()) {
    auto [b, depth] = stack.back();
    stack.pop_back();
    reachable[b] = 1;
    const Block& blk = blocks[b];
    switch (blk.kind) {
      case BlockKind::kReturn:
        if (depth == 0) {
          fail(b, "return reachable with empty call stack "
                  "(call/return imbalance)");
        }
        // The continuation was already queued as the call site's successor.
        break;
      case BlockKind::kCall:
        visit(blk.targets[0], std::min(depth + 1, kMaxTrackedDepth));
        visit(blk.targets[1], depth);
        break;
      default:
        for (u32 t : blk.targets) visit(t, depth);
        break;
    }
  }
  for (usize b = 0; b < n; ++b) {
    if (!reachable[b]) fail(b, "unreachable from entry");
  }
}

}  // namespace bigmap
