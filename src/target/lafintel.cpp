#include "target/lafintel.h"

#include <utility>
#include <vector>

namespace bigmap {

namespace {

bool splittable_branch(const Block& b) {
  return b.kind == BlockKind::kBranch && b.cmp_width > 1 &&
         (b.pred == CmpPred::kEq || b.pred == CmpPred::kNe);
}

usize expansion_size(const Block& b) {
  if (splittable_branch(b)) return b.cmp_width;
  if (b.kind == BlockKind::kSwitch) {
    const usize per_case = b.cmp_width > 1 ? b.cmp_width : 1;
    return b.cases.size() * per_case;
  }
  if (b.kind == BlockKind::kStrcmp) return b.str.size();
  return 1;
}

u8 byte_of(u64 v, u32 j) { return static_cast<u8>(v >> (8 * j)); }

// A compared constant with bits above the read width can never match the
// (zero-extended) read value; the cascade must not "match" on the low bytes
// alone.
bool value_fits(u64 v, u32 width) {
  return width >= 8 || (v >> (8 * width)) == 0;
}

Block eq_byte_gate(u32 input_offset, u8 expected, u32 on_match,
                   u32 on_mismatch) {
  Block nb;
  nb.kind = BlockKind::kBranch;
  nb.pred = CmpPred::kEq;
  nb.cmp_width = 1;
  nb.input_offset = input_offset;
  nb.expected = expected;
  nb.targets = {on_match, on_mismatch};
  return nb;
}

}  // namespace

Program apply_laf_intel(const Program& src, LafIntelStats* stats) {
  // Pass 1: each source block's expansion start in the output program.
  std::vector<u32> base(src.blocks.size());
  u32 acc = 0;
  for (usize i = 0; i < src.blocks.size(); ++i) {
    base[i] = acc;
    acc += static_cast<u32>(expansion_size(src.blocks[i]));
  }

  LafIntelStats st;
  st.blocks_before = src.blocks.size();
  st.static_edges_before = src.static_edge_count();

  Program out;
  out.name = src.name + "+laf";
  out.num_bugs = src.num_bugs;
  out.nominal_input_size = src.nominal_input_size;
  out.blocks.reserve(acc);

  auto map = [&](u32 old) { return base[old]; };

  // Pass 2: emit replacements; cross-block edges are remapped through
  // `base`, cascade-internal edges are computed positionally.
  for (usize i = 0; i < src.blocks.size(); ++i) {
    const Block& b = src.blocks[i];
    if (splittable_branch(b)) {
      ++st.split_compares;
      const u32 taken = map(b.targets[0]);
      const u32 fall = map(b.targets[1]);
      const u32 on_mismatch = b.pred == CmpPred::kEq ? fall : taken;
      u32 on_all_eq = b.pred == CmpPred::kEq ? taken : fall;
      if (!value_fits(b.expected, b.cmp_width)) on_all_eq = on_mismatch;
      for (u32 j = 0; j < b.cmp_width; ++j) {
        const u32 next =
            (j + 1 < b.cmp_width) ? base[i] + j + 1 : on_all_eq;
        out.blocks.push_back(
            eq_byte_gate(b.input_offset + j, byte_of(b.expected, j), next,
                         on_mismatch));
      }
    } else if (b.kind == BlockKind::kSwitch) {
      ++st.split_switches;
      const u32 def = map(b.targets.back());
      const u32 w = b.cmp_width > 1 ? b.cmp_width : 1;
      u32 pos = base[i];
      for (usize ci = 0; ci < b.cases.size(); ++ci) {
        const bool last_case = ci + 1 == b.cases.size();
        const u32 after = last_case ? def : pos + w;
        u32 case_target = map(b.targets[ci]);
        if (!value_fits(b.cases[ci], w)) case_target = after;
        for (u32 j = 0; j < w; ++j) {
          const u32 on_match = (j + 1 < w) ? pos + j + 1 : case_target;
          out.blocks.push_back(eq_byte_gate(
              b.input_offset + j, byte_of(b.cases[ci], j), on_match, after));
        }
        pos += w;
      }
    } else if (b.kind == BlockKind::kStrcmp) {
      ++st.split_strgates;
      const u32 equal = map(b.targets[0]);
      const u32 not_equal = map(b.targets[1]);
      for (usize j = 0; j < b.str.size(); ++j) {
        const u32 on_match =
            (j + 1 < b.str.size()) ? base[i] + static_cast<u32>(j) + 1 : equal;
        out.blocks.push_back(
            eq_byte_gate(b.input_offset + static_cast<u32>(j), b.str[j],
                         on_match, not_equal));
      }
    } else {
      Block nb = b;
      for (u32& t : nb.targets) t = map(t);
      out.blocks.push_back(std::move(nb));
    }
  }

  st.blocks_after = out.blocks.size();
  st.static_edges_after = out.static_edge_count();
  if (stats) *stats = st;
  return out;
}

}  // namespace bigmap
