// Seeded synthetic-benchmark generator.
//
// Builds Programs that exercise a fuzzer the way real instrumented targets
// do: a linear "spine" of decision gates (branches, switches, strcmp-style
// string gates, input-bounded loops, calls into shared subroutines), taken
// regions of filler blocks behind each gate, rare multi-byte equality gates
// (FairFuzz-style rare branches; laf-intel's raw material), optional dead
// regions locked behind 8-byte magic compares, and planted kBug fault sites
// reached through short chains of single-byte magic gates.
//
// Everything is derived from GeneratorParams::seed through the repo's
// deterministic RNG: the same params always produce the identical Program,
// token dictionary, and seed corpus.
#pragma once

#include <string>
#include <vector>

#include "target/program.h"
#include "util/types.h"

namespace bigmap {

struct GeneratorParams {
  std::string name = "synthetic";
  u64 seed = 1;
  // Approximate number of blocks reachable with ordinary inputs.
  u32 live_blocks = 256;
  // Block budget for regions behind undiscoverable-without-splitting 8-byte
  // magic gates (what laf-intel unlocks).
  u32 dead_blocks = 0;
  u32 num_bugs = 0;
  // Each bug sits behind a chain of [bug_min_depth, bug_max_depth]
  // single-byte equality gates.
  u32 bug_min_depth = 1;
  u32 bug_max_depth = 2;
  // 0 derives a size from live_blocks.
  u32 input_size = 0;

  // Shape knobs: fractions of decision gates of each flavour.
  double frac_wide_cmp = 0.15;  // 2/4/8-byte compares among branch gates
  double frac_hard_eq = 0.35;   // equality-vs-magic among branch gates
  double frac_switch = 0.08;
  double frac_strcmp = 0.06;
  double frac_loop = 0.10;
  double frac_call = 0.12;
  u32 num_functions = 4;
  // Max filler blocks in a gate's taken region.
  u32 region_blocks = 5;
  // Iteration cap for generated kLoop gates.
  u32 loop_max = 8;
};

struct GeneratedTarget {
  Program program;

  // AFL-dictionary-style tokens: the multi-byte magic constants and strings
  // the program compares against.
  std::vector<std::vector<u8>> tokens;

  // A correct (offset, bytes) assignment for one gate; seeds plant a random
  // subset of these. Bug-chain bytes are deliberately excluded so seed
  // corpora do not crash out of the box.
  struct SeedHint {
    u32 offset = 0;
    std::vector<u8> bytes;
  };
  std::vector<SeedHint> hints;

  // Per-bug (offset, byte) recipes; see crashing_input().
  std::vector<std::vector<SeedHint>> bug_recipes;

  const std::vector<std::vector<u8>>& dictionary() const noexcept {
    return tokens;
  }

  // A zero-filled input with bug `bug_id`'s chain bytes planted — reaches
  // and fires that planted fault deterministically. Ground truth for crash
  // tests and triage experiments.
  std::vector<u8> crashing_input(u32 bug_id) const;
};

GeneratedTarget generate_target(const GeneratorParams& params);

// Deterministic seed corpus: `count` inputs of the program's nominal size,
// random bytes plus a sprinkling of correct gate hints.
std::vector<std::vector<u8>> make_seed_corpus(const GeneratedTarget& target,
                                              usize count, u64 seed);

}  // namespace bigmap
