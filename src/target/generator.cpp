#include "target/generator.h"

#include <algorithm>
#include <utility>

#include "util/rng.h"

namespace bigmap {

namespace {

constexpr u32 kPlaceholder = 0xffffffffu;

// Builds one Program from GeneratorParams. The CFG is a linear spine of
// decision gates; each gate's "continue" edge is deferred and patched to
// the next gate's entry (finally to the exit block), so every gate lies on
// every execution path and regions always rejoin the spine.
class Builder {
 public:
  explicit Builder(const GeneratorParams& params)
      : p_(params), rng_(derive_seed(params)) {}

  GeneratedTarget build() {
    out_.program.name = p_.name;
    input_size_ = p_.input_size ? p_.input_size : derive_input_size();
    out_.program.nominal_input_size = input_size_;

    const u32 live_budget = std::max(p_.live_blocks, 8u);
    const u32 est_gates = std::max(1u, live_budget / 4);
    const u32 bug_spacing =
        p_.num_bugs ? std::max(1u, est_gates / (p_.num_bugs + 1)) : 0;

    dead_remaining_ = p_.dead_blocks;
    while (live_block_count() < live_budget) {
      if (p_.num_bugs && bugs_planted_ < p_.num_bugs &&
          gates_done_ >= (bugs_planted_ + 1) * bug_spacing) {
        emit_bug_chain();
      }
      emit_gate();
      maybe_emit_dead_region();
      ++gates_done_;
    }
    while (bugs_planted_ < p_.num_bugs) emit_bug_chain();

    const u32 exit = add_block(BlockKind::kExit);
    patch_pending(exit);
    build_functions_and_patch_calls();

    out_.program.num_bugs = bugs_planted_;
    return std::move(out_);
  }

 private:
  static u64 derive_seed(const GeneratorParams& params) {
    u64 h = 0xcbf29ce484222325ULL;
    for (char c : params.name) {
      h = (h ^ static_cast<u8>(c)) * 0x100000001b3ULL;
    }
    SplitMix64 sm(h ^ params.seed);
    return sm.next();
  }

  u32 derive_input_size() const {
    const u32 raw = (std::max(p_.live_blocks, 8u) / 6 + 15) & ~15u;
    return std::clamp(raw, 32u, 1024u);
  }

  std::vector<Block>& blocks() { return out_.program.blocks; }

  u32 live_block_count() const {
    return static_cast<u32>(out_.program.blocks.size()) - dead_emitted_;
  }

  u32 add_block(BlockKind kind) {
    blocks().emplace_back();
    blocks().back().kind = kind;
    return static_cast<u32>(blocks().size() - 1);
  }

  // Rotating input-offset cursor: gates read mostly disjoint byte ranges
  // until the cursor wraps, which keeps seed hints composable.
  u32 next_offset(u32 width) {
    if (cursor_ + width > input_size_) cursor_ = 0;
    const u32 off = cursor_;
    cursor_ += width;
    return off;
  }

  void defer(u32 block, u32 slot) { pending_.emplace_back(block, slot); }

  void patch_pending(u32 to) {
    for (auto [b, s] : pending_) blocks()[b].targets[s] = to;
    pending_.clear();
  }

  // Every gate emitter calls this first: all dangling "continue down the
  // spine" edges from the previous gate are wired to the block about to be
  // created, which keeps the spine linear.
  void start_gate() { patch_pending(static_cast<u32>(blocks().size())); }

  u8 nonzero_byte() { return static_cast<u8>(rng_.between(1, 255)); }

  u64 nonzero_value(u32 width) {
    u64 v = 0;
    for (u32 i = 0; i < width; ++i) {
      v |= static_cast<u64>(nonzero_byte()) << (8 * i);
    }
    return v;
  }

  static std::vector<u8> value_bytes(u64 v, u32 width) {
    std::vector<u8> bytes(width);
    for (u32 i = 0; i < width; ++i) bytes[i] = static_cast<u8>(v >> (8 * i));
    return bytes;
  }

  void set_easy_branch(u32 idx) {
    Block& b = blocks()[idx];
    b.kind = BlockKind::kBranch;
    b.cmp_width = 1;
    b.input_offset = next_offset(1);
    b.pred = rng_.chance(1, 2) ? CmpPred::kLt : CmpPred::kGe;
    b.expected = rng_.between(32, 224);
  }

  // Chain of `n` fallthrough blocks; the tail's successor is deferred to
  // the next spine gate. Returns the chain entry.
  u32 make_chain(u32 n) {
    u32 entry = kPlaceholder;
    u32 prev = kPlaceholder;
    for (u32 i = 0; i < std::max(n, 1u); ++i) {
      const u32 blk = add_block(BlockKind::kFallthrough);
      blocks()[blk].targets = {kPlaceholder};
      if (prev == kPlaceholder) {
        entry = blk;
      } else {
        blocks()[prev].targets[0] = blk;
      }
      prev = blk;
    }
    defer(prev, 0);
    return entry;
  }

  // Taken region behind a gate: a filler chain, sometimes split by an easy
  // branch for edge diversity. All tails rejoin the spine.
  u32 make_region(u32 n) {
    n = std::max(n, 1u);
    if (n >= 4 && rng_.chance(1, 2)) {
      const u32 br = add_block(BlockKind::kBranch);
      set_easy_branch(br);
      const u32 left = make_chain((n - 1) / 2);
      const u32 right = make_chain(n - 1 - (n - 1) / 2);
      blocks()[br].targets = {left, right};
      return br;
    }
    return make_chain(n);
  }

  void emit_gate() {
    double r = rng_.unit();
    if ((r -= p_.frac_loop) < 0) return emit_loop_gate();
    if ((r -= p_.frac_switch) < 0) return emit_switch_gate();
    if ((r -= p_.frac_strcmp) < 0) return emit_strcmp_gate();
    if ((r -= p_.frac_call) < 0 && p_.num_functions > 0) {
      return emit_call_gate();
    }
    emit_branch_gate();
  }

  void emit_branch_gate() {
    start_gate();
    const bool wide = rng_.unit() < p_.frac_wide_cmp;
    static constexpr u32 kWidths[3] = {2, 4, 8};
    const u32 width = wide ? kWidths[rng_.below(3)] : 1;
    const bool hard = rng_.unit() < p_.frac_hard_eq;
    const u32 off = next_offset(width);

    const u32 g = add_block(BlockKind::kBranch);
    {
      Block& b = blocks()[g];
      b.cmp_width = static_cast<u8>(width);
      b.input_offset = off;
      if (hard) {
        b.pred = CmpPred::kEq;
        b.expected = nonzero_value(width);
      } else {
        static constexpr CmpPred kEasy[4] = {CmpPred::kLt, CmpPred::kLe,
                                             CmpPred::kGt, CmpPred::kGe};
        b.pred = kEasy[rng_.below(4)];
        b.expected = width == 1 ? rng_.between(32, 224) : nonzero_value(width);
      }
    }
    const u64 expected = blocks()[g].expected;
    if (hard) {
      out_.hints.push_back({off, value_bytes(expected, width)});
      if (width > 1) out_.tokens.push_back(value_bytes(expected, width));
    }
    const u32 region = make_region(rng_.between(1, std::max(p_.region_blocks, 1u)));
    blocks()[g].targets = {region, kPlaceholder};
    defer(g, 1);
  }

  void emit_switch_gate() {
    start_gate();
    const u32 width = rng_.chance(1, 3) ? 2 : 1;
    const u32 off = next_offset(width);
    const u32 ncases = rng_.between(2, 4);
    std::vector<u64> values;
    while (values.size() < ncases) {
      const u64 v = nonzero_value(width);
      if (std::find(values.begin(), values.end(), v) == values.end()) {
        values.push_back(v);
      }
    }

    const u32 g = add_block(BlockKind::kSwitch);
    {
      Block& b = blocks()[g];
      b.cmp_width = static_cast<u8>(width);
      b.input_offset = off;
      b.cases = values;
    }
    std::vector<u32> targets;
    for (u32 i = 0; i < ncases; ++i) {
      targets.push_back(make_chain(rng_.between(1, 2)));
    }
    targets.push_back(kPlaceholder);  // default
    blocks()[g].targets = targets;
    defer(g, ncases);

    out_.hints.push_back({off, value_bytes(values[0], width)});
    if (width > 1) {
      for (u64 v : values) out_.tokens.push_back(value_bytes(v, width));
    }
  }

  void emit_strcmp_gate() {
    start_gate();
    const u32 len = rng_.between(3, 8);
    const u32 off = next_offset(len);
    std::vector<u8> str(len);
    for (auto& c : str) c = nonzero_byte();

    const u32 g = add_block(BlockKind::kStrcmp);
    {
      Block& b = blocks()[g];
      b.input_offset = off;
      b.str = str;
    }
    const u32 region = make_region(rng_.between(1, std::max(p_.region_blocks, 1u)));
    blocks()[g].targets = {region, kPlaceholder};
    defer(g, 1);

    out_.tokens.push_back(str);
    out_.hints.push_back({off, std::move(str)});
  }

  void emit_loop_gate() {
    start_gate();
    const u32 off = next_offset(1);
    const u32 g = add_block(BlockKind::kLoop);
    {
      Block& b = blocks()[g];
      b.input_offset = off;
      b.loop_max = std::max(p_.loop_max, 1u);
    }
    // Loop body: short chain whose tail jumps back to the loop head.
    const u32 body_len = rng_.between(1, 2);
    u32 entry = kPlaceholder;
    u32 prev = kPlaceholder;
    for (u32 i = 0; i < body_len; ++i) {
      const u32 blk = add_block(BlockKind::kFallthrough);
      blocks()[blk].targets = {g};
      if (prev != kPlaceholder) blocks()[prev].targets[0] = blk;
      if (entry == kPlaceholder) entry = blk;
      prev = blk;
    }
    blocks()[g].targets = {entry, kPlaceholder};
    defer(g, 1);
  }

  void emit_call_gate() {
    start_gate();
    const u32 f = call_count_ < p_.num_functions
                      ? call_count_
                      : rng_.below(p_.num_functions);
    ++call_count_;
    const u32 g = add_block(BlockKind::kCall);
    blocks()[g].targets = {kPlaceholder, kPlaceholder};
    call_sites_.emplace_back(g, f);
    defer(g, 1);
  }

  // Regions behind 8-byte magic equality gates. The constants are kept out
  // of both the dictionary and the seed hints: without compare splitting
  // these edges are effectively undiscoverable, which is exactly the
  // laf-intel experiment's setup.
  void maybe_emit_dead_region() {
    if (dead_remaining_ == 0 || !rng_.chance(1, 3)) return;
    start_gate();
    const u32 before = static_cast<u32>(blocks().size());
    const u32 off = next_offset(8);
    const u32 g = add_block(BlockKind::kBranch);
    {
      Block& b = blocks()[g];
      b.cmp_width = 8;
      b.input_offset = off;
      b.pred = CmpPred::kEq;
      b.expected = nonzero_value(8);
    }
    const u32 want = std::min(dead_remaining_, rng_.between(2, p_.region_blocks + 2));
    const u32 region = make_region(want);
    blocks()[g].targets = {region, kPlaceholder};
    defer(g, 1);
    const u32 emitted = static_cast<u32>(blocks().size()) - before;
    dead_emitted_ += emitted;
    dead_remaining_ -= std::min(dead_remaining_, emitted);
  }

  // A planted fault: a chain of single-byte equality gates ending in kBug.
  // Falling off any chain gate continues down the spine, so the bug region
  // never blocks ordinary execution.
  void emit_bug_chain() {
    start_gate();
    const u32 depth = rng_.between(std::max(p_.bug_min_depth, 1u),
                                   std::max(p_.bug_max_depth, p_.bug_min_depth));
    std::vector<GeneratedTarget::SeedHint> recipe;
    u32 prev = kPlaceholder;
    for (u32 j = 0; j < depth; ++j) {
      const u32 off = next_offset(1);
      const u8 magic = nonzero_byte();
      const u32 g = add_block(BlockKind::kBranch);
      {
        Block& b = blocks()[g];
        b.pred = CmpPred::kEq;
        b.cmp_width = 1;
        b.input_offset = off;
        b.expected = magic;
        b.targets = {kPlaceholder, kPlaceholder};
      }
      defer(g, 1);  // chain miss: continue down the spine
      if (prev != kPlaceholder) blocks()[prev].targets[0] = g;
      recipe.push_back({off, {magic}});
      prev = g;
    }
    const u32 bug = add_block(BlockKind::kBug);
    blocks()[bug].bug_id = bugs_planted_;
    blocks()[prev].targets[0] = bug;
    out_.bug_recipes.push_back(std::move(recipe));
    ++bugs_planted_;
  }

  // Functions are emitted once the spine is closed, then every call site is
  // patched to its callee's entry. Only functions actually called are built
  // (an uncalled function would be unreachable and fail validate()).
  void build_functions_and_patch_calls() {
    if (call_sites_.empty()) return;
    u32 max_f = 0;
    for (auto [site, f] : call_sites_) max_f = std::max(max_f, f);
    std::vector<u32> entries(max_f + 1, kPlaceholder);
    for (auto [site, f] : call_sites_) {
      if (entries[f] == kPlaceholder) entries[f] = build_function();
      blocks()[site].targets[0] = entries[f];
    }
  }

  u32 build_function() {
    const u32 entry = add_block(BlockKind::kFallthrough);
    const u32 br = add_block(BlockKind::kBranch);
    set_easy_branch(br);
    const u32 a = add_block(BlockKind::kFallthrough);
    const u32 b = add_block(BlockKind::kFallthrough);
    const u32 ret = add_block(BlockKind::kReturn);
    blocks()[entry].targets = {br};
    blocks()[br].targets = {a, b};
    blocks()[a].targets = {ret};
    blocks()[b].targets = {ret};
    return entry;
  }

  const GeneratorParams& p_;
  Xoshiro256 rng_;
  GeneratedTarget out_;
  u32 input_size_ = 0;
  u32 cursor_ = 0;
  u32 gates_done_ = 0;
  u32 bugs_planted_ = 0;
  u32 dead_remaining_ = 0;
  u32 dead_emitted_ = 0;
  u32 call_count_ = 0;
  std::vector<std::pair<u32, u32>> pending_;     // (block, target slot)
  std::vector<std::pair<u32, u32>> call_sites_;  // (block, function index)
};

}  // namespace

std::vector<u8> GeneratedTarget::crashing_input(u32 bug_id) const {
  std::vector<u8> input(program.nominal_input_size, 0);
  if (bug_id < bug_recipes.size()) {
    for (const SeedHint& hint : bug_recipes[bug_id]) {
      for (usize j = 0; j < hint.bytes.size(); ++j) {
        if (hint.offset + j < input.size()) {
          input[hint.offset + j] = hint.bytes[j];
        }
      }
    }
  }
  return input;
}

GeneratedTarget generate_target(const GeneratorParams& params) {
  return Builder(params).build();
}

std::vector<std::vector<u8>> make_seed_corpus(const GeneratedTarget& target,
                                              usize count, u64 seed) {
  SplitMix64 sm(seed ^ 0x5eedc0deULL);
  Xoshiro256 rng(sm.next());
  std::vector<std::vector<u8>> corpus;
  corpus.reserve(count);
  const usize n = target.program.nominal_input_size;
  for (usize i = 0; i < count; ++i) {
    std::vector<u8> input(n);
    for (auto& b : input) b = static_cast<u8>(rng.next());
    // The first seed is pure noise; later seeds plant a random quarter of
    // the gate hints so the corpus starts with some coverage diversity.
    if (i > 0) {
      for (const auto& hint : target.hints) {
        if (!rng.chance(1, 4)) continue;
        for (usize j = 0; j < hint.bytes.size(); ++j) {
          if (hint.offset + j < input.size()) {
            input[hint.offset + j] = hint.bytes[j];
          }
        }
      }
    }
    corpus.push_back(std::move(input));
  }
  return corpus;
}

}  // namespace bigmap
