// Deterministic CFG interpreter — the execution substrate replacing AFL's
// instrumented targets.
//
// run() walks a Program over an input buffer and invokes the OnBlock
// callback once per executed block (the entry block included); the caller
// (Executor) turns that stream into (prev, cur) edge events exactly as
// afl-clang-fast instrumentation would. Three outcomes are possible:
//
//   kOk     a kExit block was reached (or a kReturn popped an empty stack).
//   kCrash  a planted kBug site was hit; ExecResult records the bug's
//           ground-truth id, the faulting block, and a hash of the simulated
//           call stack so crash triage can dedup Crashwalk-style on the
//           (call stack, faulting block) identity.
//   kHang   the step budget was exhausted — the substitute for AFL's
//           wall-clock timeout detector. Hangs are deterministic: the same
//           program, input, and budget always hang at the same step.
//
// Each block additionally burns `work_per_block` iterations of arithmetic
// into a sink member, modelling the target's own computation so that
// throughput experiments see a realistic exec cost alongside the map
// operations under study.
#pragma once

#include <algorithm>
#include <span>
#include <type_traits>
#include <vector>

#include "target/program.h"
#include "util/hash.h"
#include "util/types.h"

namespace bigmap {

struct ExecResult {
  enum class Outcome : u8 { kOk = 0, kCrash, kHang };

  Outcome outcome = Outcome::kOk;
  // Blocks executed (== trace length delivered to the callback).
  u64 steps = 0;
  // kCrash only: ground-truth id of the planted bug and the block it
  // occupies.
  u32 bug_id = 0;
  u32 faulting_block = 0;
  // kCrash only: hash of the simulated call stack at the fault.
  u64 stack_hash = 0;

  bool crashed() const noexcept { return outcome == Outcome::kCrash; }
  bool hung() const noexcept { return outcome == Outcome::kHang; }
};

class Interpreter {
 public:
  // Synthetic per-block work; chosen so a block costs roughly what a few
  // lines of straight-line target code would.
  static constexpr u32 kDefaultWorkPerBlock = 12;

  explicit Interpreter(u64 step_budget,
                       u32 work_per_block = kDefaultWorkPerBlock) noexcept
      : step_budget_(step_budget), work_per_block_(work_per_block) {}

  u64 step_budget() const noexcept { return step_budget_; }
  void set_step_budget(u64 budget) noexcept { step_budget_ = budget; }
  u32 work_per_block() const noexcept { return work_per_block_; }
  void set_work_per_block(u32 work) noexcept { work_per_block_ = work; }

  // Executes `prog` over `input`, calling on_block(u32 block_index) for
  // every block entered. The program must have passed Program::validate();
  // the interpreter still bounds-checks nothing beyond what the validator
  // guarantees.
  template <typename OnBlock>
  ExecResult run(const Program& prog, std::span<const u8> input,
                 OnBlock&& on_block) {
    // The void wrapper selects run_impl's no-stop-check specialization
    // (and deliberately ignores any value the callback returns).
    return run_impl(prog, input, [&](u32 block) { on_block(block); });
  }

  // Untraced fast path (coverage-guided tracing): like run(), but the
  // per-block callback is an interest oracle — returning true stops the
  // execution immediately and sets *stopped (the caller then re-executes
  // with full tracing). Block ordering, step accounting, and all outcome
  // semantics are identical to run(), so a run the oracle never stops is
  // bit-for-bit the execution a traced run would have performed.
  template <typename Oracle>
  ExecResult run_until(const Program& prog, std::span<const u8> input,
                       bool* stopped, Oracle&& oracle) {
    bool hit = false;
    ExecResult res = run_impl(prog, input, [&](u32 block) {
      hit = oracle(block);
      return hit;
    });
    *stopped = hit;
    return res;
  }

  // Branchless variant of run_until: the oracle observes every block but
  // returns void, so the interpreter loop carries no per-block stop check
  // at all — the same code run() executes. The caller detects "would have
  // stopped" after the run from state the oracle accumulated (e.g. a
  // spare counter slot absorbing first-hit keys). Outcome semantics are
  // exactly run()'s: the execution always completes (or crashes/hangs) as
  // a traced run would.
  template <typename Oracle>
  ExecResult run_until_nostop(const Program& prog, std::span<const u8> input,
                              Oracle&& oracle) {
    return run_impl(prog, input, std::forward<Oracle>(oracle));
  }

 private:
  // Shared execution loop. A bool-returning on_block returns true to stop
  // mid-execution; the result then carries the steps executed so far with
  // outcome kOk (the caller is expected to discard or replay it). A
  // void-returning on_block compiles to a loop with no stop check — the
  // fast shape both run() and run_until_nostop() share.
  template <typename OnBlock>
  ExecResult run_impl(const Program& prog, std::span<const u8> input,
                      OnBlock&& on_block) {
    ExecResult res;
    if (prog.blocks.empty()) return res;
    begin_run(prog.blocks.size());

    u64 work_acc = 0x9e3779b97f4a7c15ULL;
    u32 cur = 0;
    for (;;) {
      if (res.steps >= step_budget_) {
        res.outcome = ExecResult::Outcome::kHang;
        break;
      }
      ++res.steps;
      if constexpr (std::is_void_v<std::invoke_result_t<OnBlock&, u32>>) {
        on_block(cur);
      } else {
        if (on_block(cur)) break;
      }
      for (u32 w = 0; w < work_per_block_; ++w) {
        work_acc = work_acc * 6364136223846793005ULL + cur;
      }

      const Block& b = prog.blocks[cur];
      bool done = false;
      switch (b.kind) {
        case BlockKind::kExit:
          done = true;
          break;
        case BlockKind::kFallthrough:
          cur = b.targets[0];
          break;
        case BlockKind::kBranch: {
          const u64 v = read_value(input, b.input_offset, b.cmp_width);
          cur = b.targets[compare(v, b.expected, b.pred) ? 0 : 1];
          break;
        }
        case BlockKind::kSwitch: {
          const u64 v = read_value(input, b.input_offset, b.cmp_width);
          u32 next = b.targets.back();
          for (usize i = 0; i < b.cases.size(); ++i) {
            if (v == b.cases[i]) {
              next = b.targets[i];
              break;
            }
          }
          cur = next;
          break;
        }
        case BlockKind::kStrcmp: {
          bool equal = true;
          for (usize i = 0; i < b.str.size(); ++i) {
            if (byte_at(input, b.input_offset + i) != b.str[i]) {
              equal = false;
              break;
            }
          }
          cur = b.targets[equal ? 0 : 1];
          break;
        }
        case BlockKind::kLoop: {
          const u32 iters = std::min<u32>(byte_at(input, b.input_offset),
                                          b.loop_max);
          u32& count = loop_counter(cur);
          if (count < iters) {
            ++count;
            cur = b.targets[0];
          } else {
            cur = b.targets[1];
          }
          break;
        }
        case BlockKind::kCall:
          call_stack_.push_back(b.targets[1]);
          cur = b.targets[0];
          break;
        case BlockKind::kReturn:
          if (call_stack_.empty()) {
            done = true;  // graceful: validator rejects this statically
          } else {
            cur = call_stack_.back();
            call_stack_.pop_back();
          }
          break;
        case BlockKind::kBug:
          res.outcome = ExecResult::Outcome::kCrash;
          res.bug_id = b.bug_id;
          res.faulting_block = cur;
          res.stack_hash = hash_call_stack();
          done = true;
          break;
      }
      if (done) break;
    }
    work_sink_ ^= work_acc;
    return res;
  }

 private:
  static u8 byte_at(std::span<const u8> input, usize offset) noexcept {
    return offset < input.size() ? input[offset] : 0;
  }

  // Little-endian read of `width` bytes; bytes past the end of the input
  // read as zero (short inputs simply fail wide compares).
  static u64 read_value(std::span<const u8> input, usize offset,
                        u32 width) noexcept {
    u64 v = 0;
    for (u32 i = 0; i < width; ++i) {
      v |= static_cast<u64>(byte_at(input, offset + i)) << (8 * i);
    }
    return v;
  }

  static bool compare(u64 lhs, u64 rhs, CmpPred pred) noexcept {
    switch (pred) {
      case CmpPred::kEq: return lhs == rhs;
      case CmpPred::kNe: return lhs != rhs;
      case CmpPred::kLt: return lhs < rhs;
      case CmpPred::kLe: return lhs <= rhs;
      case CmpPred::kGt: return lhs > rhs;
      case CmpPred::kGe: return lhs >= rhs;
    }
    return false;
  }

  // Per-run loop-counter reset via the epoch trick: O(1) per run instead of
  // clearing a counter per loop block.
  void begin_run(usize num_blocks);
  u32& loop_counter(u32 block) noexcept {
    if (loop_epoch_[block] != epoch_) {
      loop_epoch_[block] = epoch_;
      loop_count_[block] = 0;
    }
    return loop_count_[block];
  }

  u64 hash_call_stack() const noexcept;

  u64 step_budget_;
  u32 work_per_block_;
  u32 epoch_ = 0;
  std::vector<u32> loop_epoch_;
  std::vector<u32> loop_count_;
  std::vector<u32> call_stack_;
  // Accumulates the synthetic work so the optimizer cannot elide it.
  u64 work_sink_ = 0;
};

}  // namespace bigmap
