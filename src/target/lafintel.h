// laf-intel-style compare splitting (DESIGN.md §2, Table III).
//
// Real laf-intel is an LLVM pass that rewrites multi-byte comparisons into
// single-byte cascades so a coverage-guided fuzzer gets partial-progress
// feedback on magic-value gates. This pass performs the same rewrite on our
// synthetic CFGs:
//
//   - kBranch kEq/kNe with cmp_width > 1  →  per-byte equality cascade
//   - kSwitch                             →  chain of (split) equality gates
//   - kStrcmp                             →  per-byte equality cascade
//
// The transformation is semantics-preserving: for any input, the
// transformed program follows the same macro control flow and produces the
// same outcome (kOk / kCrash with the same bug_id / kHang, step budget
// permitting) — it only multiplies the number of blocks and therefore the
// static and discoverable edges, which is precisely its effect on the map.
#pragma once

#include "target/program.h"
#include "util/types.h"

namespace bigmap {

struct LafIntelStats {
  usize blocks_before = 0;
  usize blocks_after = 0;
  usize static_edges_before = 0;
  usize static_edges_after = 0;
  usize split_compares = 0;  // wide kEq/kNe branches split into cascades
  usize split_switches = 0;  // switches lowered to equality chains
  usize split_strgates = 0;  // strcmp gates expanded byte-wise
};

Program apply_laf_intel(const Program& src, LafIntelStats* stats = nullptr);

}  // namespace bigmap
