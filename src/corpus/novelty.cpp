#include "corpus/novelty.h"

#include <algorithm>

#include "core/flat_map.h"
#include "core/two_level_map.h"
#include "fuzzer/executor.h"
#include "persist/record.h"
#include "util/hash.h"

namespace bigmap::corpus {

std::vector<u8> encode_oracle_delta(const OracleDelta& d) {
  std::vector<u8> out;
  persist::PayloadWriter w(out);
  w.put_u64(d.epoch);
  w.put_u64(d.seq);
  w.put_u8(d.map_kind);
  w.put_u32(static_cast<u32>(d.cells.size()));
  for (const VirginDeltaCell& c : d.cells) {
    w.put_u32(c.pos);
    w.put_u8(c.value);
  }
  return out;
}

bool decode_oracle_delta(std::span<const u8> bytes, OracleDelta* out) {
  persist::PayloadReader r(bytes);
  OracleDelta d;
  u32 count = 0;
  if (!r.get_u64(&d.epoch) || !r.get_u64(&d.seq) || !r.get_u8(&d.map_kind) ||
      !r.get_u32(&count)) {
    return false;
  }
  if (d.map_kind > OracleDelta::kHang) return false;
  d.cells.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    VirginDeltaCell c;
    if (!r.get_u32(&c.pos) || !r.get_u8(&c.value)) return false;
    // Strictly ascending positions: duplicates or disorder mean a buggy
    // (or forged) encoder, not a transport error — CRC framing already
    // rules the latter out.
    if (i > 0 && c.pos <= d.cells.back().pos) return false;
    d.cells.push_back(c);
  }
  if (!r.done()) return false;
  *out = std::move(d);
  return true;
}

namespace {

template <class Map, class Metric>
class OracleImpl final : public NoveltyOracle {
 public:
  OracleImpl(const Program& prog, const OracleConfig& cfg)
      // Same block-id derivation as Campaign: the model sees the exact
      // coverage keys a worker seeded with cfg.seed would.
      : ids_(prog.blocks.size(), cfg.map.map_size,
             mix64(cfg.seed ^ 0xB10C1D5ULL)),
        ex_(prog, cfg.map, ids_, cfg.step_budget, cfg.work_per_block) {}

  bool admit(std::span<const u8> input) override {
    ++stats_.checked;
    OpTimeBreakdown timing;
    const auto out = ex_.run(input, timing);
    const bool novel = out.new_bits != NewBits::kNone ||
                       out.outcome_new_bits != NewBits::kNone;
    if (novel) {
      ++stats_.accepted;
    } else {
      ++stats_.rejected;
    }
    return novel;
  }

  usize covered() const override {
    return ex_.virgin_queue().count_covered();
  }

  std::vector<OracleDelta> export_delta() override {
    return export_impl(/*full=*/false);
  }

  std::vector<OracleDelta> export_full() override {
    return export_impl(/*full=*/true);
  }

  bool apply_delta(const OracleDelta& d) override {
    if (d.map_kind > OracleDelta::kHang) return false;
    const usize n = ex_.map().map_size();
    for (const VirginDeltaCell& c : d.cells) {
      if (c.pos >= n) return false;  // wrong geometry; apply nothing
    }
    VirginMap& v = mutable_virgin_of(d.map_kind);
    for (const VirginDeltaCell& c : d.cells) {
      if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
        // Force a condensed slot for the original position. The scratch
        // count this bumps is reset before any run; the slot assignment
        // itself is the importer's own, which is all admit() depends on.
        ex_.map().update(c.pos);
        const u32 slot = ex_.map().slot_of(c.pos);
        v.data()[slot] &= c.value;
      } else {
        v.data()[c.pos] &= c.value;
      }
    }
    stats_.deltas_applied++;
    stats_.cells_applied += d.cells.size();
    return true;
  }

 private:
  const VirginMap& virgin_of(u8 kind) const {
    switch (kind) {
      case OracleDelta::kCrash: return ex_.virgin_crash();
      case OracleDelta::kHang: return ex_.virgin_hang();
      default: return ex_.virgin_queue();
    }
  }

  VirginMap& mutable_virgin_of(u8 kind) {
    switch (kind) {
      case OracleDelta::kCrash: return ex_.mutable_virgin_crash();
      case OracleDelta::kHang: return ex_.mutable_virgin_hang();
      default: return ex_.mutable_virgin_queue();
    }
  }

  // Current virgin byte for an ORIGINAL map position. Two-level positions
  // without a condensed slot have never been touched: still 0xFF.
  u8 current_virgin(const VirginMap& v, u32 pos) const {
    if constexpr (Map::kScheme == MapScheme::kTwoLevel) {
      const u32 slot = ex_.map().slot_of(pos);
      return slot == Map::kUnassigned ? 0xFF : v.data()[slot];
    } else {
      return v.data()[pos];
    }
  }

  std::vector<OracleDelta> export_impl(bool full) {
    const usize n = ex_.map().map_size();
    if (shadow_[0].empty()) {
      for (auto& s : shadow_) s.assign(n, 0xFF);
    }
    std::vector<OracleDelta> out;
    for (u8 kind = 0; kind <= OracleDelta::kHang; ++kind) {
      std::vector<u8>& shadow = shadow_[kind];
      if (full) std::fill(shadow.begin(), shadow.end(), 0xFF);
      const VirginMap& v = virgin_of(kind);
      OracleDelta d;
      d.map_kind = kind;
      // One O(map_size) scan per export. The dense two-level layout means
      // nearly every probe is a one-branch slot_of miss; the cadence is
      // tens of milliseconds, so this never shows against exec cost.
      for (u32 p = 0; p < n; ++p) {
        const u8 cur = current_virgin(v, p);
        if (cur != shadow[p]) {
          d.cells.push_back({p, cur});
          shadow[p] = cur;
        }
      }
      if (d.cells.empty() && !full) continue;
      d.seq = export_seq_++;
      stats_.deltas_exported++;
      stats_.cells_exported += d.cells.size();
      out.push_back(std::move(d));
    }
    return out;
  }

  BlockIdTable ids_;
  Executor<Map, Metric> ex_;
  // Per-map-kind view of the virgin state as of the last export, keyed by
  // original position (lazily sized on first export).
  std::vector<u8> shadow_[3];
  u64 export_seq_ = 0;
};

template <class Metric>
std::unique_ptr<NoveltyOracle> make_for_scheme(const Program& prog,
                                               const OracleConfig& cfg) {
  if (cfg.scheme == MapScheme::kFlat) {
    return std::make_unique<OracleImpl<FlatCoverageMap, Metric>>(prog, cfg);
  }
  return std::make_unique<OracleImpl<TwoLevelCoverageMap, Metric>>(prog, cfg);
}

}  // namespace

std::unique_ptr<NoveltyOracle> make_novelty_oracle(const Program& program,
                                                   const OracleConfig& cfg) {
  switch (cfg.metric) {
    case MetricKind::kEdge:
      return make_for_scheme<EdgeMetric>(program, cfg);
    case MetricKind::kNGram:
      return make_for_scheme<NGramMetric<3>>(program, cfg);
    case MetricKind::kNGram2:
      return make_for_scheme<NGramMetric<2>>(program, cfg);
    case MetricKind::kNGram4:
      return make_for_scheme<NGramMetric<4>>(program, cfg);
    case MetricKind::kNGram8:
      return make_for_scheme<NGramMetric<8>>(program, cfg);
    case MetricKind::kContext:
      return make_for_scheme<ContextMetric>(program, cfg);
  }
  return make_for_scheme<EdgeMetric>(program, cfg);
}

}  // namespace bigmap::corpus
