#include "corpus/novelty.h"

#include "core/flat_map.h"
#include "core/two_level_map.h"
#include "fuzzer/executor.h"
#include "util/hash.h"

namespace bigmap::corpus {
namespace {

template <class Map, class Metric>
class OracleImpl final : public NoveltyOracle {
 public:
  OracleImpl(const Program& prog, const OracleConfig& cfg)
      // Same block-id derivation as Campaign: the model sees the exact
      // coverage keys a worker seeded with cfg.seed would.
      : ids_(prog.blocks.size(), cfg.map.map_size,
             mix64(cfg.seed ^ 0xB10C1D5ULL)),
        ex_(prog, cfg.map, ids_, cfg.step_budget, cfg.work_per_block) {}

  bool admit(std::span<const u8> input) override {
    ++stats_.checked;
    OpTimeBreakdown timing;
    const auto out = ex_.run(input, timing);
    const bool novel = out.new_bits != NewBits::kNone ||
                       out.outcome_new_bits != NewBits::kNone;
    if (novel) {
      ++stats_.accepted;
    } else {
      ++stats_.rejected;
    }
    return novel;
  }

  usize covered() const override {
    return ex_.virgin_queue().count_covered();
  }

 private:
  BlockIdTable ids_;
  Executor<Map, Metric> ex_;
};

template <class Metric>
std::unique_ptr<NoveltyOracle> make_for_scheme(const Program& prog,
                                               const OracleConfig& cfg) {
  if (cfg.scheme == MapScheme::kFlat) {
    return std::make_unique<OracleImpl<FlatCoverageMap, Metric>>(prog, cfg);
  }
  return std::make_unique<OracleImpl<TwoLevelCoverageMap, Metric>>(prog, cfg);
}

}  // namespace

std::unique_ptr<NoveltyOracle> make_novelty_oracle(const Program& program,
                                                   const OracleConfig& cfg) {
  switch (cfg.metric) {
    case MetricKind::kEdge:
      return make_for_scheme<EdgeMetric>(program, cfg);
    case MetricKind::kNGram:
      return make_for_scheme<NGramMetric<3>>(program, cfg);
    case MetricKind::kNGram2:
      return make_for_scheme<NGramMetric<2>>(program, cfg);
    case MetricKind::kNGram4:
      return make_for_scheme<NGramMetric<4>>(program, cfg);
    case MetricKind::kNGram8:
      return make_for_scheme<NGramMetric<8>>(program, cfg);
    case MetricKind::kContext:
      return make_for_scheme<ContextMetric>(program, cfg);
  }
  return make_for_scheme<EdgeMetric>(program, cfg);
}

}  // namespace bigmap::corpus
