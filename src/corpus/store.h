// Crash-consistent corpus database: the single source of truth for queue
// entries, crash-triage artifacts, and federation exchange.
//
// On disk a store is one directory with two BMSP files (persist/framing.h):
//
//   corpus.pack   immutable, committed via temp + rename. Canonical form:
//                 kCorpusMeta, then live entries sorted by content hash,
//                 then crash rows sorted by stack hash, then kCommit.
//                 Because the encoding is a pure function of the live set,
//                 two stores holding the same corpus produce byte-identical
//                 packs — the property the corpus chaos drill checks.
//   corpus.wal    append-only journal of everything since the last
//                 compaction: new entries, crash events, trim tombstones.
//                 A torn tail is physically truncated on open, exactly like
//                 the fleet journal.
//
// Recovery = load pack, replay WAL. Every WAL record is idempotent under
// replay, which is what makes the two-file commit protocol safe:
//
//   - entries are keyed by fnv1a64(content); re-adding is a dedup hit,
//     and duplicate observations min-merge their metadata under a total
//     order, so the stored row is independent of arrival order
//   - tombstones for absent hashes are no-ops
//   - crash events carry (instance, exec_seq) and are dropped when the
//     row already covers that instance up to exec_seq
//
// so a crash at ANY point of compaction (before the pack rename, or after
// the rename but before the WAL reset) reopens to the same logical state.
//
// Crash triage rows aggregate per (stack_hash): per-instance first/last
// exec and occurrence counts, plus one witness input (from the smallest
// instance id that saw the stack — an order-independent rule, so the row
// is deterministic no matter how instance threads interleave WAL appends).
//
// Trimming (trim()) is the FairFuzz-motivated retention pass: for every
// covered map position keep the cheapest witness (min exec_ns * len), pin
// rare-edge witnesses (positions with a single coverer), and drop entries
// whose whole position set is covered by pinned entries. Callers pass the
// hashes their live queues still reference; those are never dropped.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "persist/io.h"
#include "persist/record.h"
#include "telemetry/registry.h"
#include "util/types.h"

namespace bigmap::corpus {

// One deduplicated corpus input. `positions` is the sparse set of coverage
// map positions the entry touched when first recorded (sorted, unique) —
// the rarity signal trimming works from.
struct CorpusEntry {
  u64 content_hash = 0;
  std::vector<u8> data;
  u64 exec_ns = 0;
  u32 bitmap_hash = 0;
  u32 depth = 0;
  std::vector<u32> positions;
};

// Per-instance slice of one crash-triage row. All three fields are exec
// sequence numbers / counts in that instance's deterministic exec stream.
struct CrashSighting {
  u64 first_exec = 0;
  u64 last_exec = 0;
  u64 count = 0;
};

// One crash-triage index row, keyed by call-stack hash.
struct CrashRow {
  u64 stack_hash = 0;
  u32 bug_id = 0;
  u32 witness_instance = 0;  // valid when has_witness
  bool has_witness = false;
  std::vector<u8> witness;
  std::map<u32, CrashSighting> sightings;  // instance -> stats (ordered)

  u64 occurrences() const noexcept {
    u64 n = 0;
    for (const auto& [id, s] : sightings) n += s.count;
    return n;
  }
};

struct CorpusStats {
  u64 wal_appends = 0;
  u64 wal_bytes = 0;
  u64 wal_append_failures = 0;
  u64 dedup_hits = 0;
  u64 crash_dedup_hits = 0;
  u64 entries_trimmed = 0;
  u64 compactions = 0;
  u64 pack_entries_loaded = 0;
  u64 wal_records_replayed = 0;
  u64 torn_tail_truncations = 0;
};

struct TrimReport {
  u64 scanned = 0;
  u64 dropped = 0;
  u64 kept = 0;
  u64 rare_positions = 0;  // positions with exactly one covering entry
};

// How open() found the two files. `ok` means the store is usable (a torn
// WAL tail that was truncated away still counts as usable).
struct OpenReport {
  bool ok = false;
  persist::LoadStatus pack_status = persist::LoadStatus::kOk;
  persist::LoadStatus wal_status = persist::LoadStatus::kOk;
  u64 entries = 0;
  u64 crash_rows = 0;
  std::string error;
};

// What a read-only fsck() pass found. `ok` mirrors open()'s notion of
// loadable: structural pack damage or undecodable records fail, a torn
// WAL tail is a recoverable warning (reported via torn_tail_bytes).
struct FsckReport {
  bool ok = false;
  bool pack_present = false;
  bool wal_present = false;
  persist::LoadStatus pack_status = persist::LoadStatus::kOk;
  persist::LoadStatus wal_status = persist::LoadStatus::kOk;
  u64 entries = 0;     // live entries after replay (pack + WAL - tombstones)
  u64 crash_rows = 0;
  u64 wal_records = 0;
  u64 torn_tail_bytes = 0;  // WAL bytes past the valid prefix
  u64 generation = 0;
  std::vector<std::string> errors;
  std::vector<u64> live_hashes;  // sorted live content hashes
};

// Compaction phases handed to the crash hook (see set_compact_hook).
enum class CompactPhase : u8 {
  kBeforePackWrite = 0,  // pack bytes built, temp file not yet written
  kAfterPackRename = 1,  // new pack committed, WAL not yet reset
};

class CorpusStore {
 public:
  // `fault` gates every disk touch through the shared persist fault sites
  // (kNoSpace / kShortWrite / kRenameFail / kCorruptRead).
  explicit CorpusStore(std::string dir, persist::FaultCtx fault = {});

  // Loads (or, with `fresh`, wipes and re-creates) the store directory.
  // Must be called before any other method; returns ok=false on a damaged
  // pack (packs are committed atomically, so damage means real corruption,
  // not a crash mid-write).
  OpenReport open(bool fresh);

  // Mirrors store activity into `corpus.*` counters. Call before open().
  void set_registry(telemetry::MetricRegistry* reg);

  // Adds one input. Returns true when the entry is new (false = dedup
  // hit). `durable_out` (optional) reports whether the WAL append reached
  // disk; a failed append leaves the entry in memory and queued for
  // flush_pending(). `hash_out` (optional) receives the content hash.
  bool add_entry(std::span<const u8> data, u64 exec_ns, u32 bitmap_hash,
                 u32 depth, std::span<const u32> positions,
                 u64* hash_out = nullptr, bool* durable_out = nullptr);

  // Records one crash occurrence from `instance`'s exec stream. Events at
  // or before the row's recorded last_exec for that instance are dropped —
  // this makes checkpoint-resume replay idempotent. `witness` is kept only
  // per the smallest-instance rule. Returns true when the event advanced
  // the row.
  bool record_crash(u64 stack_hash, u32 bug_id, u32 instance, u64 exec_seq,
                    std::span<const u8> witness, bool* durable_out = nullptr);

  // Copies the entry for `hash` into *out. False when absent.
  bool fetch(u64 hash, CorpusEntry* out) const;
  bool contains(u64 hash) const;

  // True when the entry is live AND its WAL/pack record reached disk — the
  // gate for encoding a checkpoint queue entry as a store ref.
  bool durable(u64 hash) const;

  // Retries WAL appends that previously failed (injected faults). Returns
  // true when nothing remains pending.
  bool flush_pending(std::string* err);

  // FairFuzz-style retention pass; `pinned` hashes are never dropped.
  // Dropped entries get WAL tombstones and leave the pack at the next
  // compaction.
  TrimReport trim(const std::unordered_set<u64>& pinned);

  // Rewrites the pack from live state (temp + rename), then resets the
  // WAL. Safe against crashes at either phase; see file comment.
  bool compact(std::string* err);

  // Writes the canonical pack encoding of the live state to `path` (temp +
  // rename), with the generation counter pinned to zero. The bytes are a
  // pure function of the live entry/crash sets, so two stores holding the
  // same corpus export byte-identical files however they got there — the
  // corpus chaos drill's comparison artifact.
  bool export_canonical(const std::string& path, std::string* err);

  // Read-only structural check of the directory: CRC framing of both
  // files, per-record payload decode, content-hash verification, commit
  // marker. Unlike open() it never truncates, repairs, or creates
  // anything — the fsck statecheck mode runs this on stores it does not
  // own. Resets this instance's in-memory state; use a dedicated probe
  // instance, not one that is mid-campaign.
  FsckReport fsck();

  // Test/drill hook called at each CompactPhase. Returning false aborts
  // the compaction at that point (simulating a crash); a drill hook may
  // instead raise SIGKILL and never return.
  using CompactHook = std::function<bool(CompactPhase)>;
  void set_compact_hook(CompactHook hook);

  usize size() const;
  usize crash_row_count() const;
  u64 generation() const;
  CorpusStats stats() const;

  // Live content hashes / crash rows in canonical (sorted) order.
  std::vector<u64> entry_hashes() const;
  std::vector<CrashRow> crash_rows() const;

  // Digest of the live corpus (order-independent): fnv1a64 folded over
  // sorted entry hashes. Two stores with equal digests hold the same
  // entry set.
  u64 corpus_digest() const;

  const std::string& dir() const noexcept { return dir_; }
  std::string wal_path() const;
  std::string pack_path() const;

 private:
  bool append_wal_locked(const std::vector<u8>& record, std::string* err);
  bool apply_entry_record(persist::PayloadReader& r, bool from_pack);
  bool apply_crash_record(persist::PayloadReader& r);
  bool apply_tombstone_record(persist::PayloadReader& r);
  std::vector<u8> encode_entry_record(const CorpusEntry& e) const;
  std::vector<u8> encode_crash_event(const CrashRow& row, u32 instance,
                                     u64 exec_seq, bool with_witness) const;
  std::vector<u8> build_pack_locked(u64 generation) const;
  bool replay_file(std::span<const u8> bytes, bool is_pack,
                   persist::LoadStatus* status, usize* valid_bytes,
                   std::string* err);

  std::string dir_;
  persist::FaultCtx fault_;
  mutable std::mutex mu_;

  std::unordered_map<u64, CorpusEntry> entries_;
  std::unordered_map<u64, CrashRow> crashes_;
  std::vector<u64> pending_entries_;  // hashes whose WAL append failed
  struct PendingCrash {
    u64 stack_hash;
    u32 instance;
    u64 exec_seq;
    bool with_witness;
  };
  std::vector<PendingCrash> pending_crashes_;
  u64 generation_ = 0;
  bool opened_ = false;
  CorpusStats stats_{};
  CompactHook compact_hook_;

  telemetry::Counter* c_wal_appends_ = nullptr;
  telemetry::Counter* c_wal_bytes_ = nullptr;
  telemetry::Counter* c_dedup_hits_ = nullptr;
  telemetry::Counter* c_trims_ = nullptr;
  telemetry::Counter* c_compactions_ = nullptr;
  telemetry::Counter* c_crash_rows_ = nullptr;
};

}  // namespace bigmap::corpus
