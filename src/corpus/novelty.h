// NoveltyOracle: virgin-map novelty classification for federation.
//
// The PeerLink's built-in novelty filter is exact but shallow: it drops
// entries whose *content hash* the remote side already announced. Two
// different inputs exercising the same coverage both pass it. The oracle
// is the deeper test the BigMap structure makes cheap: re-execute the
// candidate against a private model of the receiver's virgin maps and ship
// it only when it would actually flip virgin bits there.
//
// A gateway keeps one oracle per peer link as a "remote model": every
// entry shipped to or accepted from that peer is admitted into the model,
// so the model's virgin maps track (a conservative superset of) the
// coverage the peer has seen through this link. admit() returns whether
// the input produced new bits against the model — exactly Executor::run's
// interesting() verdict, which is what the differential test pins.
//
// The oracle is deliberately deterministic: same seed + same admission
// sequence -> same verdicts, so federation drills with the oracle enabled
// still converge to exact find-union equality.
#pragma once

#include <memory>
#include <span>

#include "core/map_options.h"
#include "instrumentation/metrics.h"
#include "target/program.h"
#include "util/types.h"

namespace bigmap::corpus {

// Map/metric geometry the model executor runs with. Must match the fleet
// the oracle stands in for (same seed => same block-id table as a worker
// with that seed).
struct OracleConfig {
  MapScheme scheme = MapScheme::kTwoLevel;
  MetricKind metric = MetricKind::kEdge;
  MapOptions map;
  u64 seed = 1;
  u64 step_budget = 1u << 16;
  u32 work_per_block = 12;
};

struct OracleStats {
  u64 checked = 0;
  u64 accepted = 0;
  u64 rejected = 0;
};

class NoveltyOracle {
 public:
  virtual ~NoveltyOracle() = default;

  // Runs `input` against the model and updates the model's virgin maps.
  // True = the input flipped virgin bits (queue bits for normal runs,
  // crash/hang bits for faulting runs) and is worth shipping.
  virtual bool admit(std::span<const u8> input) = 0;

  // Covered positions of the model's queue virgin map.
  virtual usize covered() const = 0;

  const OracleStats& stats() const noexcept { return stats_; }

 protected:
  OracleStats stats_;
};

// Builds an oracle for the given geometry (dispatching scheme x metric to
// the fully-inlined executor, like run_campaign does).
std::unique_ptr<NoveltyOracle> make_novelty_oracle(const Program& program,
                                                   const OracleConfig& cfg);

}  // namespace bigmap::corpus
