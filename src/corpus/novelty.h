// NoveltyOracle: virgin-map novelty classification for federation.
//
// The PeerLink's built-in novelty filter is exact but shallow: it drops
// entries whose *content hash* the remote side already announced. Two
// different inputs exercising the same coverage both pass it. The oracle
// is the deeper test the BigMap structure makes cheap: re-execute the
// candidate against a private model of the receiver's virgin maps and ship
// it only when it would actually flip virgin bits there.
//
// A gateway keeps one oracle per peer link as a "remote model": every
// entry shipped to or accepted from that peer is admitted into the model,
// so the model's virgin maps track (a conservative superset of) the
// coverage the peer has seen through this link. admit() returns whether
// the input produced new bits against the model — exactly Executor::run's
// interesting() verdict, which is what the differential test pins.
//
// The oracle is deliberately deterministic: same seed + same admission
// sequence -> same verdicts, so federation drills with the oracle enabled
// still converge to exact find-union equality.
//
// Delta sync: a model can also be (re)built WITHOUT executing anything.
// export_delta() emits the virgin-map cells that changed since the last
// export; apply_delta() ANDs them into another oracle's virgin maps. Cells
// are keyed by ORIGINAL map positions (`key & mask`), never by condensed
// slots — slot assignment is execution-order-dependent and therefore
// meaningless across processes, but virgin state over original keys is
// exactly what admit() verdicts depend on. The two-level scheme's dense
// [0, used_key) layout keeps the records tiny: only positions that ever
// received coverage can differ from 0xFF. AND-application is idempotent
// and order-insensitive, so replayed or re-sent deltas are harmless.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/map_options.h"
#include "instrumentation/metrics.h"
#include "target/program.h"
#include "util/types.h"

namespace bigmap::corpus {

// Map/metric geometry the model executor runs with. Must match the fleet
// the oracle stands in for (same seed => same block-id table as a worker
// with that seed).
struct OracleConfig {
  MapScheme scheme = MapScheme::kTwoLevel;
  MetricKind metric = MetricKind::kEdge;
  MapOptions map;
  u64 seed = 1;
  u64 step_budget = 1u << 16;
  u32 work_per_block = 12;
};

struct OracleStats {
  u64 checked = 0;
  u64 accepted = 0;
  u64 rejected = 0;
  u64 deltas_exported = 0;
  u64 cells_exported = 0;
  u64 deltas_applied = 0;
  u64 cells_applied = 0;
};

// One changed virgin cell, keyed by the ORIGINAL map position.
struct VirginDeltaCell {
  u32 pos = 0;
  u8 value = 0;
};

// A batch of virgin-map changes for one of the three virgin maps.
// `epoch` is stamped by the federation layer; `seq` counts exports per
// oracle, so monotonicity violations in drill wreckage are detectable.
struct OracleDelta {
  static constexpr u8 kQueue = 0;
  static constexpr u8 kCrash = 1;
  static constexpr u8 kHang = 2;

  u64 epoch = 0;
  u64 seq = 0;
  u8 map_kind = kQueue;
  std::vector<VirginDeltaCell> cells;  // strictly ascending pos
};

// Wire/disk codec for one delta record (also the payload of the persist
// layer's kVirginDelta record and the netfleet kDelta frame). decode
// validates structure: exact length, strictly ascending unique positions.
std::vector<u8> encode_oracle_delta(const OracleDelta& d);
bool decode_oracle_delta(std::span<const u8> bytes, OracleDelta* out);

class NoveltyOracle {
 public:
  virtual ~NoveltyOracle() = default;

  // Runs `input` against the model and updates the model's virgin maps.
  // True = the input flipped virgin bits (queue bits for normal runs,
  // crash/hang bits for faulting runs) and is worth shipping.
  virtual bool admit(std::span<const u8> input) = 0;

  // Covered positions of the model's queue virgin map.
  virtual usize covered() const = 0;

  // Virgin cells that changed since the last export (per map kind; empty
  // kinds are omitted). Never executes anything.
  virtual std::vector<OracleDelta> export_delta() = 0;

  // Full model state: every cell that differs from virgin 0xFF, for all
  // three map kinds (always emitted, even when empty, so a receiver can
  // distinguish "empty model" from "nothing new"). Resets the export
  // shadow, so the next export_delta() is relative to this snapshot.
  virtual std::vector<OracleDelta> export_full() = 0;

  // ANDs a delta into this model's virgin maps — the zero-execution
  // rebuild path. False when the delta is malformed for this geometry
  // (position out of range / unknown map kind); nothing is applied then.
  virtual bool apply_delta(const OracleDelta& d) = 0;

  const OracleStats& stats() const noexcept { return stats_; }

 protected:
  OracleStats stats_;
};

// Builds an oracle for the given geometry (dispatching scheme x metric to
// the fully-inlined executor, like run_campaign does).
std::unique_ptr<NoveltyOracle> make_novelty_oracle(const Program& program,
                                                   const OracleConfig& cfg);

}  // namespace bigmap::corpus
