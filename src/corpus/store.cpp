#include "corpus/store.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "util/hash.h"

namespace fs = std::filesystem;

namespace bigmap::corpus {
namespace {

using persist::PayloadReader;
using persist::PayloadWriter;
using persist::RecordType;

// Crash payloads carry a leading kind byte so the WAL event layout and the
// pack row layout can share one record type.
constexpr u8 kCrashEvent = 0;
constexpr u8 kCrashRow = 1;

// One framed record with no file header — the unit the WAL appends.
std::vector<u8> frame_record(RecordType type, std::span<const u8> payload) {
  std::vector<u8> out;
  bmsp::put_u32_le(out, static_cast<u32>(type));
  bmsp::put_u32_le(out, static_cast<u32>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  bmsp::put_u32_le(out, bmsp::frame_crc(out.data(), payload.size()));
  return out;
}

std::vector<u8> file_header() {
  std::vector<u8> out;
  bmsp::put_u32_le(out, bmsp::kMagic);
  bmsp::put_u32_le(out, bmsp::kFormatVersion);
  return out;
}

void bump(telemetry::Counter* c, u64 n = 1) {
  if (c != nullptr) c->add(n);
}

// AFL-style favor factor: cheaper-to-run and smaller entries win positions.
u64 fav_factor(const CorpusEntry& e) noexcept {
  const u64 ns = e.exec_ns == 0 ? 1 : e.exec_ns;
  const u64 len = e.data.empty() ? 1 : e.data.size();
  return ns * len;
}

// Total order on the metadata of two entries holding the SAME content.
// Duplicate observations (e.g. two instances discovering one input via
// different mutation chains, so with different depths) merge to the
// minimum under this order, making the stored row — and therefore the
// pack bytes — independent of which instance got there first.
bool entry_meta_less(const CorpusEntry& a, const CorpusEntry& b) noexcept {
  if (a.exec_ns != b.exec_ns) return a.exec_ns < b.exec_ns;
  if (a.depth != b.depth) return a.depth < b.depth;
  if (a.bitmap_hash != b.bitmap_hash) return a.bitmap_hash < b.bitmap_hash;
  return a.positions < b.positions;
}

}  // namespace

CorpusStore::CorpusStore(std::string dir, persist::FaultCtx fault)
    : dir_(std::move(dir)), fault_(fault) {}

std::string CorpusStore::wal_path() const { return dir_ + "/corpus.wal"; }
std::string CorpusStore::pack_path() const { return dir_ + "/corpus.pack"; }

void CorpusStore::set_registry(telemetry::MetricRegistry* reg) {
  if (reg == nullptr) return;
  c_wal_appends_ = &reg->counter("corpus.wal_appends");
  c_wal_bytes_ = &reg->counter("corpus.wal_bytes");
  c_dedup_hits_ = &reg->counter("corpus.dedup_hits");
  c_trims_ = &reg->counter("corpus.trims");
  c_compactions_ = &reg->counter("corpus.compactions");
  c_crash_rows_ = &reg->counter("corpus.crash_rows");
}

void CorpusStore::set_compact_hook(CompactHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  compact_hook_ = std::move(hook);
}

OpenReport CorpusStore::open(bool fresh) {
  std::lock_guard<std::mutex> lock(mu_);
  OpenReport rep;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    rep.error = "create " + dir_ + ": " + ec.message();
    return rep;
  }

  entries_.clear();
  crashes_.clear();
  pending_entries_.clear();
  pending_crashes_.clear();
  generation_ = 0;

  if (fresh) {
    fs::remove(pack_path(), ec);
    fs::remove(wal_path(), ec);
  }

  // Pack first: it is the committed base the WAL layers over. A pack is
  // only ever produced by temp + rename, so anything structurally damaged
  // is real corruption, not a torn write — refuse to guess.
  std::vector<u8> bytes;
  std::string err;
  if (persist::read_file(pack_path(), &bytes, fault_, &err)) {
    persist::LoadStatus st = persist::LoadStatus::kOk;
    usize valid = 0;
    if (!replay_file(bytes, /*is_pack=*/true, &st, &valid, &rep.error)) {
      rep.pack_status = st;
      return rep;
    }
    rep.pack_status = st;
    stats_.pack_entries_loaded = entries_.size();
  }

  // WAL tail. Torn or checksum-damaged tails are truncated away — the
  // valid prefix is the journal.
  bytes.clear();
  if (!persist::read_file(wal_path(), &bytes, fault_, &err) ||
      bytes.empty()) {
    if (!persist::write_file_atomic(wal_path(), file_header(), fault_,
                                    &rep.error)) {
      return rep;
    }
  } else {
    persist::LoadStatus st = persist::LoadStatus::kOk;
    usize valid = 0;
    if (!replay_file(bytes, /*is_pack=*/false, &st, &valid, &rep.error)) {
      rep.wal_status = st;
      return rep;
    }
    rep.wal_status = st;
    if (st == persist::LoadStatus::kTruncatedTail ||
        st == persist::LoadStatus::kBadCrc) {
      fs::resize_file(wal_path(), valid, ec);
      if (ec) {
        rep.error = "truncate " + wal_path() + ": " + ec.message();
        return rep;
      }
      ++stats_.torn_tail_truncations;
    }
  }

  opened_ = true;
  rep.ok = true;
  rep.entries = entries_.size();
  rep.crash_rows = crashes_.size();
  return rep;
}

bool CorpusStore::replay_file(std::span<const u8> bytes, bool is_pack,
                              persist::LoadStatus* status, usize* valid_bytes,
                              std::string* err) {
  persist::ParsedFile parsed = persist::parse_records(bytes);
  *status = parsed.status;
  *valid_bytes = parsed.valid_bytes;
  if (parsed.status == persist::LoadStatus::kBadMagic ||
      parsed.status == persist::LoadStatus::kBadVersion) {
    *err = std::string(is_pack ? "pack: " : "wal: ") +
           persist::load_status_name(parsed.status);
    return false;
  }
  if (is_pack && parsed.status != persist::LoadStatus::kOk) {
    *err = std::string("pack: ") + persist::load_status_name(parsed.status);
    return false;
  }
  bool committed = !is_pack;
  for (const persist::RecordView& rec : parsed.records) {
    PayloadReader r(rec.payload);
    bool record_ok = true;
    switch (rec.type) {
      case RecordType::kCorpusEntry:
        record_ok = apply_entry_record(r, is_pack);
        break;
      case RecordType::kCorpusCrash:
        record_ok = apply_crash_record(r);
        break;
      case RecordType::kCorpusTombstone:
        record_ok = !is_pack && apply_tombstone_record(r);
        break;
      case RecordType::kCorpusMeta: {
        u64 gen = 0, ne = 0, nc = 0;
        record_ok = is_pack && r.get_u64(&gen) && r.get_u64(&ne) &&
                    r.get_u64(&nc) && r.done();
        if (record_ok) generation_ = gen;
        break;
      }
      case RecordType::kCommit: {
        u64 seq = 0;
        record_ok = is_pack && r.get_u64(&seq) && r.done();
        if (record_ok) committed = true;
        break;
      }
      default:
        record_ok = false;
        break;
    }
    if (!record_ok) {
      *err = std::string(is_pack ? "pack: " : "wal: ") + "bad " +
             persist::record_type_name(rec.type) + " record";
      *status = persist::LoadStatus::kBadPayload;
      return false;
    }
    if (!is_pack) ++stats_.wal_records_replayed;
  }
  if (is_pack && !committed) {
    *err = "pack: no commit marker";
    *status = persist::LoadStatus::kNoCommit;
    return false;
  }
  return true;
}

bool CorpusStore::apply_entry_record(PayloadReader& r, bool from_pack) {
  CorpusEntry e;
  u32 npos = 0;
  u64 data_len = 0;
  std::span<const u8> raw;
  if (!r.get_u64(&e.content_hash) || !r.get_u64(&e.exec_ns) ||
      !r.get_u32(&e.bitmap_hash) || !r.get_u32(&e.depth) ||
      !r.get_u32(&npos)) {
    return false;
  }
  e.positions.reserve(npos);
  for (u32 i = 0; i < npos; ++i) {
    u32 p = 0;
    if (!r.get_u32(&p)) return false;
    e.positions.push_back(p);
  }
  if (!r.get_u64(&data_len) || !r.get_bytes(data_len, &raw) || !r.done()) {
    return false;
  }
  e.data.assign(raw.begin(), raw.end());
  if (fnv1a64(e.data) != e.content_hash) return false;
  const u64 h = e.content_hash;
  auto it = entries_.find(h);
  if (it == entries_.end()) {
    entries_.emplace(h, std::move(e));
    return true;
  }
  // A pack lists each live hash exactly once; a duplicate is corruption.
  if (from_pack) return false;
  // Replay is idempotent and order-independent: a WAL entry already
  // present (from the pack, or from a resumed campaign re-finding it)
  // min-merges its metadata, mirroring add_entry's dedup path.
  if (entry_meta_less(e, it->second)) it->second = std::move(e);
  return true;
}

bool CorpusStore::apply_crash_record(PayloadReader& r) {
  u8 kind = 0;
  if (!r.get_u8(&kind)) return false;
  if (kind == kCrashEvent) {
    u64 stack = 0, exec_seq = 0, wlen = 0;
    u32 bug = 0, instance = 0;
    std::span<const u8> wit;
    if (!r.get_u64(&stack) || !r.get_u32(&bug) || !r.get_u32(&instance) ||
        !r.get_u64(&exec_seq) || !r.get_u64(&wlen) ||
        !r.get_bytes(wlen, &wit) || !r.done()) {
      return false;
    }
    CrashRow& row = crashes_[stack];
    row.stack_hash = stack;
    if (row.sightings.empty()) row.bug_id = bug;
    CrashSighting& s = row.sightings[instance];
    if (s.count == 0 || exec_seq > s.last_exec) {
      if (s.count == 0) s.first_exec = exec_seq;
      s.last_exec = exec_seq;
      ++s.count;
    }
    if (wlen > 0 && (!row.has_witness || instance < row.witness_instance)) {
      row.has_witness = true;
      row.witness_instance = instance;
      row.witness.assign(wit.begin(), wit.end());
    }
    return true;
  }
  if (kind == kCrashRow) {
    CrashRow row;
    u8 has_wit = 0;
    u64 wlen = 0;
    u32 nsight = 0;
    std::span<const u8> wit;
    if (!r.get_u64(&row.stack_hash) || !r.get_u32(&row.bug_id) ||
        !r.get_u8(&has_wit) || !r.get_u32(&row.witness_instance) ||
        !r.get_u64(&wlen) || !r.get_bytes(wlen, &wit) ||
        !r.get_u32(&nsight)) {
      return false;
    }
    row.has_witness = has_wit != 0;
    row.witness.assign(wit.begin(), wit.end());
    for (u32 i = 0; i < nsight; ++i) {
      u32 inst = 0;
      CrashSighting s;
      if (!r.get_u32(&inst) || !r.get_u64(&s.first_exec) ||
          !r.get_u64(&s.last_exec) || !r.get_u64(&s.count)) {
        return false;
      }
      row.sightings[inst] = s;
    }
    if (!r.done()) return false;
    const u64 stack = row.stack_hash;
    crashes_[stack] = std::move(row);
    return true;
  }
  return false;
}

bool CorpusStore::apply_tombstone_record(PayloadReader& r) {
  u64 hash = 0;
  if (!r.get_u64(&hash) || !r.done()) return false;
  entries_.erase(hash);  // absent hash: replay no-op
  return true;
}

std::vector<u8> CorpusStore::encode_entry_record(const CorpusEntry& e) const {
  std::vector<u8> payload;
  PayloadWriter w(payload);
  w.put_u64(e.content_hash);
  w.put_u64(e.exec_ns);
  w.put_u32(e.bitmap_hash);
  w.put_u32(e.depth);
  w.put_u32(static_cast<u32>(e.positions.size()));
  for (u32 p : e.positions) w.put_u32(p);
  w.put_u64(e.data.size());
  w.put_bytes(e.data);
  return frame_record(RecordType::kCorpusEntry, payload);
}

std::vector<u8> CorpusStore::encode_crash_event(const CrashRow& row,
                                                u32 instance, u64 exec_seq,
                                                bool with_witness) const {
  std::vector<u8> payload;
  PayloadWriter w(payload);
  w.put_u8(kCrashEvent);
  w.put_u64(row.stack_hash);
  w.put_u32(row.bug_id);
  w.put_u32(instance);
  w.put_u64(exec_seq);
  if (with_witness) {
    w.put_u64(row.witness.size());
    w.put_bytes(row.witness);
  } else {
    w.put_u64(0);
  }
  return frame_record(RecordType::kCorpusCrash, payload);
}

bool CorpusStore::append_wal_locked(const std::vector<u8>& record,
                                    std::string* err) {
  if (!persist::append_file(wal_path(), record, fault_, err)) {
    ++stats_.wal_append_failures;
    return false;
  }
  ++stats_.wal_appends;
  stats_.wal_bytes += record.size();
  bump(c_wal_appends_);
  bump(c_wal_bytes_, record.size());
  return true;
}

bool CorpusStore::add_entry(std::span<const u8> data, u64 exec_ns,
                            u32 bitmap_hash, u32 depth,
                            std::span<const u32> positions, u64* hash_out,
                            bool* durable_out) {
  const u64 hash = fnv1a64(data);
  if (hash_out != nullptr) *hash_out = hash;
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_out != nullptr) *durable_out = true;
  CorpusEntry e;
  e.content_hash = hash;
  e.data.assign(data.begin(), data.end());
  e.exec_ns = exec_ns;
  e.bitmap_hash = bitmap_hash;
  e.depth = depth;
  e.positions.assign(positions.begin(), positions.end());
  std::sort(e.positions.begin(), e.positions.end());
  e.positions.erase(std::unique(e.positions.begin(), e.positions.end()),
                    e.positions.end());
  auto it = entries_.find(hash);
  if (it != entries_.end()) {
    ++stats_.dedup_hits;
    bump(c_dedup_hits_);
    // Min-merge duplicate observations (see entry_meta_less): the winning
    // metadata is WAL-journaled so replay converges to the same row.
    if (entry_meta_less(e, it->second)) {
      const std::vector<u8> record = encode_entry_record(e);
      it->second = std::move(e);
      std::string err;
      if (!append_wal_locked(record, &err)) {
        pending_entries_.push_back(hash);
        if (durable_out != nullptr) *durable_out = false;
      }
    }
    return false;
  }
  const std::vector<u8> record = encode_entry_record(e);
  entries_.emplace(hash, std::move(e));
  std::string err;
  if (!append_wal_locked(record, &err)) {
    pending_entries_.push_back(hash);
    if (durable_out != nullptr) *durable_out = false;
  }
  return true;
}

bool CorpusStore::record_crash(u64 stack_hash, u32 bug_id, u32 instance,
                               u64 exec_seq, std::span<const u8> witness,
                               bool* durable_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_out != nullptr) *durable_out = true;
  CrashRow& row = crashes_[stack_hash];
  const bool new_row = row.sightings.empty() && !row.has_witness;
  row.stack_hash = stack_hash;
  if (new_row) {
    row.bug_id = bug_id;
    bump(c_crash_rows_);
  }
  CrashSighting& s = row.sightings[instance];
  const bool first_for_instance = s.count == 0;
  if (!first_for_instance && exec_seq <= s.last_exec) {
    // Checkpoint-resume replay re-reports crashes the WAL already holds.
    ++stats_.crash_dedup_hits;
    return false;
  }
  if (first_for_instance) s.first_exec = exec_seq;
  s.last_exec = exec_seq;
  ++s.count;
  // Witness rule: smallest instance id wins — order-independent, so the
  // row converges to the same bytes however instance threads interleave.
  const bool with_witness = first_for_instance;
  if (!witness.empty() && (!row.has_witness || instance < row.witness_instance)) {
    row.has_witness = true;
    row.witness_instance = instance;
    row.witness.assign(witness.begin(), witness.end());
  }
  std::vector<u8> record;
  {
    // The event must carry THIS instance's witness bytes, not the row's
    // current winner, so replay reproduces the smallest-instance rule.
    CrashRow tmp;
    tmp.stack_hash = stack_hash;
    tmp.bug_id = bug_id;
    tmp.witness.assign(witness.begin(), witness.end());
    record = encode_crash_event(tmp, instance, exec_seq, with_witness);
  }
  std::string err;
  if (!append_wal_locked(record, &err)) {
    pending_crashes_.push_back(
        PendingCrash{stack_hash, instance, exec_seq, with_witness});
    if (durable_out != nullptr) *durable_out = false;
  }
  return true;
}

bool CorpusStore::fetch(u64 hash, CorpusEntry* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(hash);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

bool CorpusStore::contains(u64 hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(hash) != entries_.end();
}

bool CorpusStore::durable(u64 hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.find(hash) == entries_.end()) return false;
  for (u64 pending : pending_entries_) {
    if (pending == hash) return false;
  }
  return true;
}

bool CorpusStore::flush_pending(std::string* err) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<u64> still_entries;
  for (u64 hash : pending_entries_) {
    auto it = entries_.find(hash);
    if (it == entries_.end()) continue;  // trimmed while pending
    if (!append_wal_locked(encode_entry_record(it->second), err)) {
      still_entries.push_back(hash);
    }
  }
  pending_entries_ = std::move(still_entries);
  std::vector<PendingCrash> still_crashes;
  for (const PendingCrash& p : pending_crashes_) {
    auto it = crashes_.find(p.stack_hash);
    if (it == crashes_.end()) continue;
    CrashRow tmp;
    tmp.stack_hash = p.stack_hash;
    tmp.bug_id = it->second.bug_id;
    if (p.with_witness && it->second.has_witness &&
        it->second.witness_instance == p.instance) {
      tmp.witness = it->second.witness;
    }
    if (!append_wal_locked(
            encode_crash_event(tmp, p.instance, p.exec_seq,
                               !tmp.witness.empty()),
            err)) {
      still_crashes.push_back(p);
    }
  }
  pending_crashes_ = std::move(still_crashes);
  return pending_entries_.empty() && pending_crashes_.empty();
}

TrimReport CorpusStore::trim(const std::unordered_set<u64>& pinned) {
  std::lock_guard<std::mutex> lock(mu_);
  TrimReport rep;
  rep.scanned = entries_.size();

  // Coverage index: position -> entries touching it.
  std::map<u32, std::vector<u64>> by_pos;
  for (const auto& [hash, e] : entries_) {
    for (u32 p : e.positions) by_pos[p].push_back(hash);
  }

  std::unordered_set<u64> keep = pinned;
  for (const auto& [hash, e] : entries_) {
    if (e.positions.empty()) keep.insert(hash);  // no coverage signal: keep
  }
  for (auto& [pos, hashes] : by_pos) {
    if (hashes.size() == 1) ++rep.rare_positions;
    // Winner: cheapest witness for the position (ties broken by hash so
    // the pass is deterministic whatever the map iteration order was).
    u64 best = 0;
    u64 best_factor = ~0ULL;
    std::sort(hashes.begin(), hashes.end());
    for (u64 h : hashes) {
      const u64 f = fav_factor(entries_.at(h));
      if (f < best_factor || (f == best_factor && h < best)) {
        best = h;
        best_factor = f;
      }
    }
    keep.insert(best);
  }

  std::vector<u64> live;
  live.reserve(entries_.size());
  for (const auto& [hash, e] : entries_) live.push_back(hash);
  std::sort(live.begin(), live.end());
  for (u64 hash : live) {
    if (keep.count(hash) != 0) {
      ++rep.kept;
      continue;
    }
    std::vector<u8> payload;
    PayloadWriter w(payload);
    w.put_u64(hash);
    std::string err;
    if (!append_wal_locked(frame_record(RecordType::kCorpusTombstone, payload),
                           &err)) {
      // Without a durable tombstone the entry would resurrect on replay —
      // keep it and let a later pass retry.
      ++rep.kept;
      continue;
    }
    entries_.erase(hash);
    ++rep.dropped;
    ++stats_.entries_trimmed;
    bump(c_trims_);
  }
  return rep;
}

std::vector<u8> CorpusStore::build_pack_locked(u64 generation) const {
  persist::RecordWriter rw;
  rw.append(RecordType::kCorpusMeta, [&](PayloadWriter& w) {
    w.put_u64(generation);
    w.put_u64(entries_.size());
    w.put_u64(crashes_.size());
  });
  std::vector<u64> hashes;
  hashes.reserve(entries_.size());
  for (const auto& [hash, e] : entries_) hashes.push_back(hash);
  std::sort(hashes.begin(), hashes.end());
  for (u64 hash : hashes) {
    const CorpusEntry& e = entries_.at(hash);
    rw.append(RecordType::kCorpusEntry, [&](PayloadWriter& w) {
      w.put_u64(e.content_hash);
      w.put_u64(e.exec_ns);
      w.put_u32(e.bitmap_hash);
      w.put_u32(e.depth);
      w.put_u32(static_cast<u32>(e.positions.size()));
      for (u32 p : e.positions) w.put_u32(p);
      w.put_u64(e.data.size());
      w.put_bytes(e.data);
    });
  }
  std::vector<u64> stacks;
  stacks.reserve(crashes_.size());
  for (const auto& [stack, row] : crashes_) stacks.push_back(stack);
  std::sort(stacks.begin(), stacks.end());
  for (u64 stack : stacks) {
    const CrashRow& row = crashes_.at(stack);
    rw.append(RecordType::kCorpusCrash, [&](PayloadWriter& w) {
      w.put_u8(kCrashRow);
      w.put_u64(row.stack_hash);
      w.put_u32(row.bug_id);
      w.put_u8(row.has_witness ? 1 : 0);
      w.put_u32(row.witness_instance);
      w.put_u64(row.witness.size());
      w.put_bytes(row.witness);
      w.put_u32(static_cast<u32>(row.sightings.size()));
      for (const auto& [inst, s] : row.sightings) {
        w.put_u32(inst);
        w.put_u64(s.first_exec);
        w.put_u64(s.last_exec);
        w.put_u64(s.count);
      }
    });
  }
  rw.append(RecordType::kCommit,
            [&](PayloadWriter& w) { w.put_u64(generation); });
  return rw.finish();
}

bool CorpusStore::compact(std::string* err) {
  std::lock_guard<std::mutex> lock(mu_);
  if (compact_hook_ && !compact_hook_(CompactPhase::kBeforePackWrite)) {
    if (err != nullptr) *err = "compaction aborted before pack write";
    return false;
  }
  const std::vector<u8> pack = build_pack_locked(generation_ + 1);
  if (!persist::write_file_atomic(pack_path(), pack, fault_, err)) {
    return false;
  }
  if (compact_hook_ && !compact_hook_(CompactPhase::kAfterPackRename)) {
    // New pack is committed; the stale WAL replays idempotently, so this
    // abort point is crash-equivalent, not corruption.
    if (err != nullptr) *err = "compaction aborted before wal reset";
    return false;
  }
  if (!persist::write_file_atomic(wal_path(), file_header(), fault_, err)) {
    return false;
  }
  ++generation_;
  ++stats_.compactions;
  bump(c_compactions_);
  pending_entries_.clear();
  pending_crashes_.clear();
  return true;
}

bool CorpusStore::export_canonical(const std::string& path, std::string* err) {
  std::lock_guard<std::mutex> lock(mu_);
  // Generation 0: unlike the live pack, the export must not encode how
  // many compactions happened along the way, only what is live now.
  return persist::write_file_atomic(path, build_pack_locked(0), fault_, err);
}

FsckReport CorpusStore::fsck() {
  std::lock_guard<std::mutex> lock(mu_);
  FsckReport rep;
  entries_.clear();
  crashes_.clear();
  pending_entries_.clear();
  pending_crashes_.clear();
  generation_ = 0;
  opened_ = false;

  std::vector<u8> bytes;
  std::string err;
  if (persist::read_file(pack_path(), &bytes, fault_, &err)) {
    rep.pack_present = true;
    usize valid = 0;
    std::string perr;
    if (!replay_file(bytes, /*is_pack=*/true, &rep.pack_status, &valid,
                     &perr)) {
      rep.errors.push_back(perr);
    }
  }

  bytes.clear();
  const u64 wal_before = stats_.wal_records_replayed;
  if (persist::read_file(wal_path(), &bytes, fault_, &err) &&
      !bytes.empty()) {
    rep.wal_present = true;
    usize valid = 0;
    std::string werr;
    if (!replay_file(bytes, /*is_pack=*/false, &rep.wal_status, &valid,
                     &werr)) {
      rep.errors.push_back(werr);
    } else if (valid < bytes.size()) {
      // Recoverable by design: open() would truncate this tail away.
      rep.torn_tail_bytes = bytes.size() - valid;
    }
  }
  rep.wal_records = stats_.wal_records_replayed - wal_before;

  rep.entries = entries_.size();
  rep.crash_rows = crashes_.size();
  rep.generation = generation_;
  rep.live_hashes.reserve(entries_.size());
  for (const auto& [hash, e] : entries_) rep.live_hashes.push_back(hash);
  std::sort(rep.live_hashes.begin(), rep.live_hashes.end());
  rep.ok = rep.errors.empty();
  return rep;
}

usize CorpusStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

usize CorpusStore::crash_row_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashes_.size();
}

u64 CorpusStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

CorpusStats CorpusStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<u64> CorpusStore::entry_hashes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<u64> out;
  out.reserve(entries_.size());
  for (const auto& [hash, e] : entries_) out.push_back(hash);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CrashRow> CorpusStore::crash_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CrashRow> out;
  out.reserve(crashes_.size());
  for (const auto& [stack, row] : crashes_) out.push_back(row);
  std::sort(out.begin(), out.end(),
            [](const CrashRow& a, const CrashRow& b) {
              return a.stack_hash < b.stack_hash;
            });
  return out;
}

u64 CorpusStore::corpus_digest() const {
  std::vector<u64> hashes = entry_hashes();
  u64 digest = 0xcbf29ce484222325ULL;
  for (u64 h : hashes) digest = hash_combine(digest, h);
  return digest;
}

}  // namespace bigmap::corpus
