// Deterministic fault injection for robustness testing (supervision layer).
//
// Long parallel campaigns die in boring, hard-to-reproduce ways: an exec
// fails, a sync publish is lost, an instance wedges, an allocation fails
// under memory pressure. FaultInjector makes every one of those failure
// modes a first-class, *reproducible* event: all decisions flow from a
// 64-bit seed plus per-(instance, site) occurrence counters, so a fault
// schedule replays identically regardless of thread interleaving — each
// instance observes its own deterministic sequence.
//
// Two trigger mechanisms compose:
//  - explicit triggers: "the nth occurrence of site S on instance I faults"
//    (0-based, cumulative across restarts — a kill trigger therefore fires
//    exactly once, which is what supervisor recovery tests want);
//  - seeded rates: every occurrence faults with probability per_million /
//    1e6, decided by hashing (seed, site, instance, occurrence index).
//
// Deep paths that cannot be plumbed explicitly (PageBuffer in util/alloc)
// consult a thread-local binding installed by the supervisor around each
// campaign attempt.
#pragma once

#include <array>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "telemetry/registry.h"
#include "util/types.h"

namespace bigmap {

enum class FaultSite : u8 {
  kExecAbort = 0,   // one execution fails; the campaign survives
  kPublishDrop,     // a SyncHub publish is silently lost
  kTransientHang,   // the instance makes no progress for hang_ms
  kAllocFail,       // a PageBuffer allocation throws std::bad_alloc
  kInstanceKill,    // the campaign dies mid-run (partial result preserved)
  // Persistence I/O sites (consulted by persist/io): each models one way a
  // checkpoint or journal write/read goes wrong on a real filesystem.
  kShortWrite,      // only a prefix of the bytes reaches disk (torn tail)
  kCorruptRead,     // a read returns bit-flipped data (media corruption)
  kRenameFail,      // the atomic temp->final rename fails (commit lost)
  kNoSpace,         // the write fails up front with ENOSPC
  // Process-level chaos sites (consulted by procfleet workers): each models
  // one way a whole worker process dies or degrades under a real fleet.
  kProcKill,          // the worker SIGKILLs itself (wild write / OOM killer)
  kProcStall,         // the worker SIGSTOPs itself (scheduler wedge / swap)
  kProcExitMidPublish,  // the worker dies inside a shm publish (torn record)
  kMmapFail,          // attaching the shared-memory segment fails
  // Network chaos sites (consulted by netfleet's PeerLink): each models one
  // way a socket between federated coordinators fails *partially* — the
  // first component in the system that can degrade rather than die.
  kNetDrop,        // one outgoing frame vanishes (lossy path / full queue)
  kNetDelay,       // one outgoing frame is delayed (congestion / bufferbloat)
  kNetShortWrite,  // the connection tears mid-frame (peer sees a torn record)
  kNetConnReset,   // the connection is reset abruptly (RST / peer crash)
  kNetPartition,   // the link is cut for a while (switch died / net split)
};
inline constexpr usize kNumFaultSites = 18;

const char* fault_site_name(FaultSite site) noexcept;

// Fires on the `nth` (0-based) occurrence of `site` on `instance`.
// Occurrence counters are cumulative across campaign restarts.
struct FaultTrigger {
  FaultSite site{};
  u32 instance = 0;
  u64 nth = 0;
};

// Fires each occurrence of `site` with probability per_million / 1e6,
// decided deterministically from the injector seed. `instance` filters to
// one instance; kAllInstances applies the rate everywhere.
struct FaultRate {
  static constexpr u32 kAllInstances = 0xFFFFFFFFu;
  FaultSite site{};
  u32 per_million = 0;
  u32 instance = kAllInstances;
};

struct FaultPlan {
  std::vector<FaultTrigger> triggers;
  std::vector<FaultRate> rates;
  // Duration of injected kTransientHang stalls. The hang polls the
  // campaign's stop flag, so a watchdog can always cut it short.
  u32 hang_ms = 50;
};

struct FaultStats {
  std::array<u64, kNumFaultSites> checked{};   // fire() calls per site
  std::array<u64, kNumFaultSites> injected{};  // faults delivered per site
  u64 checked_total() const noexcept;
  u64 injected_total() const noexcept;
};

// Thrown by the campaign when a kInstanceKill fault fires. Deliberately not
// derived from std::exception so generic catch(std::exception&) handlers in
// library code cannot swallow it; the campaign driver catches it by type,
// finalizes the partial result, and marks it fault_aborted.
struct InjectedInstanceKill {};

class FaultInjector {
 public:
  FaultInjector(u64 seed, FaultPlan plan);

  // True when the current occurrence of `site` on `instance` must fault.
  // Thread-safe; advances the (instance, site) occurrence counter.
  bool fire(FaultSite site, u32 instance);

  u32 hang_ms() const noexcept { return plan_.hang_ms; }

  FaultStats stats() const;
  // Faults delivered to one instance, across all sites.
  u64 injected_for(u32 instance) const;

  // Current occurrence count of (site, instance) — how many fire() calls
  // that pair has seen so far.
  u64 occurrences(FaultSite site, u32 instance) const;

  // Pre-advances the (site, instance) occurrence counter to `n` without
  // evaluating triggers or rates (no faults are delivered; nothing is
  // counted as checked). A procfleet worker rebuilds its injector in a
  // fresh process each attempt and advances the chaos-site counters to the
  // values its previous incarnations published in shared memory, so "the
  // nth occurrence faults" stays cumulative across process restarts exactly
  // like it is across thread restarts. Counters never move backwards.
  void advance(FaultSite site, u32 instance, u64 n);

  // Mirrors per-site occurrence counts into `reg` as
  // "fault.<site>.checked" / "fault.<site>.injected" counters, so
  // fault-injection runs are observable in the same scrape as the rest of
  // the fleet telemetry (the supervisor wires this automatically when both
  // a FaultInjector and a FleetTelemetry are configured). Counter handles
  // are resolved once here; fire() then bumps them lock-free relative to
  // the registry. Pass nullptr to detach. `reg` must outlive the injector
  // or the next set_registry call.
  void set_registry(telemetry::MetricRegistry* reg);

  // Binds this injector (and an instance id) to the current thread so that
  // paths without an explicit FaultInjector* — PageBuffer allocation — can
  // consult it. Restores the previous binding on destruction.
  class ScopedThreadBinding {
   public:
    ScopedThreadBinding(FaultInjector* injector, u32 instance) noexcept;
    ~ScopedThreadBinding();
    ScopedThreadBinding(const ScopedThreadBinding&) = delete;
    ScopedThreadBinding& operator=(const ScopedThreadBinding&) = delete;

   private:
    FaultInjector* prev_injector_;
    u32 prev_instance_;
  };

  // Consults the current thread's binding; false when none is installed.
  // Called by PageBuffer before mapping memory.
  static bool fire_alloc() noexcept;

 private:
  static u64 key(FaultSite site, u32 instance) noexcept {
    return (static_cast<u64>(instance) << 8) | static_cast<u64>(site);
  }

  const u64 seed_;
  const FaultPlan plan_;

  mutable std::mutex mu_;
  std::unordered_map<u64, u64> counters_;          // (instance,site) -> n
  std::unordered_map<u64, u64> injected_by_key_;   // (instance,site) -> hits
  FaultStats stats_;
  // Telemetry mirrors (null when no registry attached); written under mu_.
  std::array<telemetry::Counter*, kNumFaultSites> reg_checked_{};
  std::array<telemetry::Counter*, kNumFaultSites> reg_injected_{};
};

}  // namespace bigmap
