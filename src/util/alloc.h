// Page-aligned buffer with optional huge-page backing, plus a non-temporal
// memset.
//
// The paper's §IV-E optimizations include (a) allocating the index and
// coverage bitmaps on huge pages to cut DTLB pressure, and (b) resetting the
// bitmap with non-temporal stores so the (mostly dead) map bytes do not
// evict useful cache lines. Both are implemented here with graceful
// fallbacks so the library runs on any Linux host regardless of hugetlbfs
// configuration.
#pragma once

#include <cstddef>
#include <span>

#include "util/types.h"

namespace bigmap {

// Requested backing for a PageBuffer.
enum class PageBacking {
  kNormal,     // plain anonymous mmap
  kHugeIfAvailable,  // try MAP_HUGETLB, then MADV_HUGEPAGE, then plain
};

// How a PageBuffer actually ended up backed.
enum class PageBackingResult {
  kNormal,
  kExplicitHuge,      // MAP_HUGETLB succeeded
  kTransparentHuge,   // MADV_HUGEPAGE applied (kernel may promote lazily)
};

// RAII wrapper around an anonymous mmap region. Zero-initialized by the
// kernel. Movable, non-copyable.
class PageBuffer {
 public:
  PageBuffer() noexcept = default;

  // Allocates `size` bytes (rounded up to page / huge-page granularity
  // internally; `size()` still reports the requested byte count).
  // Throws std::bad_alloc when the mapping fails outright.
  explicit PageBuffer(usize size,
                      PageBacking backing = PageBacking::kNormal);
  ~PageBuffer();

  PageBuffer(PageBuffer&& other) noexcept;
  PageBuffer& operator=(PageBuffer&& other) noexcept;
  PageBuffer(const PageBuffer&) = delete;
  PageBuffer& operator=(const PageBuffer&) = delete;

  u8* data() noexcept { return data_; }
  const u8* data() const noexcept { return data_; }
  usize size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::span<u8> span() noexcept { return {data_, size_}; }
  std::span<const u8> span() const noexcept { return {data_, size_}; }

  u8& operator[](usize i) noexcept { return data_[i]; }
  const u8& operator[](usize i) const noexcept { return data_[i]; }

  PageBackingResult backing() const noexcept { return backing_; }

 private:
  void release() noexcept;

  u8* data_ = nullptr;
  usize size_ = 0;
  usize mapped_size_ = 0;
  PageBackingResult backing_ = PageBackingResult::kNormal;
};

// memset-to-zero using non-temporal (streaming) stores where the target ISA
// provides them, falling back to plain memset. Non-temporal stores bypass
// the cache hierarchy, so zeroing a large, mostly-unread bitmap does not
// evict the working set (§IV-E).
void memset_zero_nontemporal(u8* dst, usize len) noexcept;

}  // namespace bigmap
