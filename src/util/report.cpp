#include "util/report.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace bigmap {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == ',' || c == '%' || c == 'x' ||
          c == 'e' || c == 'E' || c == 'k' || c == 'M' || c == 'G')) {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(s.front())) ||
         s.front() == '-' || s.front() == '+' || s.front() == '.';
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TableWriter: row width != header width");
  }
  rows_.push_back(std::move(cells));
}

void TableWriter::print(std::ostream& os) const {
  std::vector<usize> widths(header_.size());
  for (usize c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (usize c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c) {
      const usize pad = widths[c] - row[c].size();
      os << (c == 0 ? "" : "  ");
      if (looks_numeric(row[c]) && c != 0) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  print_row(header_);
  usize total = 0;
  for (usize c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TableWriter::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_count(u64 v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  usize lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (usize i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += raw[i];
  }
  return out;
}

std::string fmt_bytes(usize bytes) {
  if (bytes >= (1u << 30) && bytes % (1u << 30) == 0) {
    return std::to_string(bytes >> 30) + "G";
  }
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    return std::to_string(bytes >> 20) + "M";
  }
  if (bytes >= (1u << 10) && bytes % (1u << 10) == 0) {
    return std::to_string(bytes >> 10) + "k";
  }
  return std::to_string(bytes);
}

}  // namespace bigmap
