// Deterministic pseudo-random number generation.
//
// All randomness in the system (block-ID assignment, mutations, benchmark
// generation) flows from explicitly seeded generators so that campaigns,
// tests, and benchmarks are reproducible. We implement SplitMix64 (for
// seeding) and xoshiro256** (the workhorse generator) from their reference
// algorithms; std::mt19937_64 is deliberately avoided on the fuzzing hot
// path because of its large state and slower advance.
#pragma once

#include <array>
#include <limits>

#include "util/types.h"

namespace bigmap {

// SplitMix64: tiny, statistically solid generator used to expand one 64-bit
// seed into the 256-bit state of xoshiro256**.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(u64 seed) noexcept : state_(seed) {}

  constexpr u64 next() noexcept {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

// xoshiro256**: fast all-purpose 64-bit generator (Blackman & Vigna).
// Satisfies UniformRandomBitGenerator so it can drive <random> distributions
// where convenient, but the fuzzer mostly uses the bounded helpers below.
class Xoshiro256 {
 public:
  using result_type = u64;

  explicit Xoshiro256(u64 seed) noexcept { reseed(seed); }

  // Re-derives the full 256-bit state from a 64-bit seed via SplitMix64.
  void reseed(u64 seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<u64>::max();
  }

  u64 operator()() noexcept { return next(); }

  u64 next() noexcept {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound == 0 returns 0. Uses Lemire's
  // multiply-shift reduction; the modulo bias is negligible for fuzzing
  // purposes (bound << 2^64) and matches AFL's own UR() tolerance.
  u32 below(u32 bound) noexcept {
    if (bound == 0) return 0;
    return static_cast<u32>((static_cast<u64>(static_cast<u32>(next())) *
                             bound) >>
                            32);
  }

  // Uniform value in [lo, hi] inclusive.
  u32 between(u32 lo, u32 hi) noexcept { return lo + below(hi - lo + 1); }

  // True with probability num/den.
  bool chance(u32 num, u32 den) noexcept { return below(den) < num; }

  // Uniform double in [0, 1).
  double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Full 256-bit stream position, for checkpoint/restore: a generator
  // restored with set_state() continues the exact sequence the snapshot
  // interrupted instead of replaying or skipping draws.
  std::array<u64, 4> state() const noexcept { return state_; }
  void set_state(const std::array<u64, 4>& s) noexcept { state_ = s; }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

}  // namespace bigmap
