#include "util/hash.h"

#include <array>
#include <cstring>

namespace bigmap {
namespace {

// Slicing-by-8 CRC-32: eight derived tables let the inner loop consume
// 8 bytes per iteration (~5x faster than the classic bytewise loop). The
// trace-bitmap hash runs over the full map for the flat scheme, so its
// speed directly shapes the Figure 3/6 comparisons — a slow hash would
// unfairly penalize the AFL baseline.
struct CrcTables {
  std::array<std::array<u32, 256>, 8> t{};

  constexpr CrcTables() {
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (u32 i = 0; i < 256; ++i) {
      u32 c = t[0][i];
      for (usize slice = 1; slice < 8; ++slice) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[slice][i] = c;
      }
    }
  }
};

constexpr CrcTables kCrc;

}  // namespace

u32 crc32_update(u32 state, std::span<const u8> data) noexcept {
  u32 c = state;
  const u8* p = data.data();
  usize n = data.size();

  while (n >= 8) {
    u64 w;
    std::memcpy(&w, p, 8);
    w ^= c;  // fold current state into the low 4 bytes (little-endian)
    c = kCrc.t[7][w & 0xFF] ^ kCrc.t[6][(w >> 8) & 0xFF] ^
        kCrc.t[5][(w >> 16) & 0xFF] ^ kCrc.t[4][(w >> 24) & 0xFF] ^
        kCrc.t[3][(w >> 32) & 0xFF] ^ kCrc.t[2][(w >> 40) & 0xFF] ^
        kCrc.t[1][(w >> 48) & 0xFF] ^ kCrc.t[0][(w >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = kCrc.t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c;
}

u32 crc32(std::span<const u8> data) noexcept {
  return crc32_finalize(crc32_update(kCrc32Init, data));
}

}  // namespace bigmap
