// Plain-text table and CSV rendering for benchmark harnesses.
//
// Every bench binary prints the rows/series of the paper table or figure it
// regenerates; TableWriter produces aligned monospace tables and CSV output
// so results can be diffed or plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.h"

namespace bigmap {

// Column-aligned text table. Usage:
//   TableWriter t({"Benchmark", "AFL", "BigMap"});
//   t.add_row({"zlib", "4400", "4500"});
//   t.print(std::cout);
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Renders with a header separator and right-aligned numeric-looking cells.
  void print(std::ostream& os) const;

  // Comma-separated rendering (header + rows), suitable for plotting.
  void print_csv(std::ostream& os) const;

  usize num_rows() const noexcept { return rows_.size(); }

  // Structured access for machine-readable reporting (telemetry/bench_report).
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` fractional digits.
std::string fmt_double(double v, int digits = 2);

// Formats a count with thousands separators (1234567 -> "1,234,567").
std::string fmt_count(u64 v);

// Formats a byte size with binary units (65536 -> "64k", 2097152 -> "2M").
std::string fmt_bytes(usize bytes);

}  // namespace bigmap
