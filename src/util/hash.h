// Hash primitives used by the coverage machinery.
//
// - crc32(): table-driven CRC-32 (IEEE 802.3 polynomial, reflected). AFL
//   hashes the classified trace bitmap with CRC-32 to cheaply detect
//   duplicate execution paths; BigMap inherits that but hashes only up to
//   the last non-zero byte (see core/two_level_map.h and paper §IV-D).
// - fnv1a64(): FNV-1a for general-purpose hashing of small buffers.
// - mix64(): a strong 64->64 bit finalizer (SplitMix64 finalizer) used for
//   N-gram and calling-context coverage keys.
#pragma once

#include <span>

#include "util/types.h"

namespace bigmap {

// CRC-32 over a byte span (IEEE polynomial 0xEDB88320, init/final xor
// 0xFFFFFFFF). Implemented with a 256-entry lookup table generated at
// static-init time.
u32 crc32(std::span<const u8> data) noexcept;

// Incremental variant: feed `state` from a previous call (start with
// kCrc32Init) and finalize with crc32_finalize.
inline constexpr u32 kCrc32Init = 0xFFFFFFFFu;
u32 crc32_update(u32 state, std::span<const u8> data) noexcept;
constexpr u32 crc32_finalize(u32 state) noexcept { return state ^ 0xFFFFFFFFu; }

// FNV-1a 64-bit hash of a byte span.
constexpr u64 fnv1a64(std::span<const u8> data) noexcept {
  u64 h = 0xcbf29ce484222325ULL;
  for (u8 b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Strong 64-bit mixing function (SplitMix64 finalizer). Bijective; used to
// turn structured values (block-ID windows, call-stack digests) into
// uniformly distributed coverage keys.
constexpr u64 mix64(u64 x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combine two 64-bit hashes (order-sensitive). Both operands pass through
// the full mixer, so structured small-integer inputs (block indices, stack
// frames) do not produce the systematic collisions a boost-style
// shift-xor combiner has.
constexpr u64 hash_combine(u64 a, u64 b) noexcept {
  return mix64(mix64(a ^ 0x9e3779b97f4a7c15ULL) + b);
}

}  // namespace bigmap
