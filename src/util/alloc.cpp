#include "util/alloc.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <new>
#include <utility>

#include "util/fault.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace bigmap {
namespace {

constexpr usize kHugePageSize = 2u << 20;  // 2 MiB

usize round_up(usize v, usize align) noexcept {
  return (v + align - 1) / align * align;
}

}  // namespace

PageBuffer::PageBuffer(usize size, PageBacking backing) {
  if (size == 0) return;
  // Deterministic allocation-failure injection (supervisor robustness
  // tests); inert unless a FaultInjector is bound to this thread.
  if (FaultInjector::fire_alloc()) throw std::bad_alloc();
  size_ = size;

  if (backing == PageBacking::kHugeIfAvailable && size >= kHugePageSize) {
#ifdef MAP_HUGETLB
    const usize huge_len = round_up(size, kHugePageSize);
    void* p = ::mmap(nullptr, huge_len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
    if (p != MAP_FAILED) {
      data_ = static_cast<u8*>(p);
      mapped_size_ = huge_len;
      backing_ = PageBackingResult::kExplicitHuge;
      return;
    }
#endif
  }

  const usize page = static_cast<usize>(::sysconf(_SC_PAGESIZE));
  const usize len = round_up(size, page);
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();
  data_ = static_cast<u8*>(p);
  mapped_size_ = len;
  backing_ = PageBackingResult::kNormal;

#ifdef MADV_HUGEPAGE
  if (backing == PageBacking::kHugeIfAvailable && size >= kHugePageSize) {
    if (::madvise(data_, mapped_size_, MADV_HUGEPAGE) == 0) {
      backing_ = PageBackingResult::kTransparentHuge;
    }
  }
#endif
}

PageBuffer::~PageBuffer() { release(); }

PageBuffer::PageBuffer(PageBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_size_(std::exchange(other.mapped_size_, 0)),
      backing_(other.backing_) {}

PageBuffer& PageBuffer::operator=(PageBuffer&& other) noexcept {
  if (this != &other) {
    release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_size_ = std::exchange(other.mapped_size_, 0);
    backing_ = other.backing_;
  }
  return *this;
}

void PageBuffer::release() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, mapped_size_);
    data_ = nullptr;
    size_ = 0;
    mapped_size_ = 0;
  }
}

void memset_zero_nontemporal(u8* dst, usize len) noexcept {
#if defined(__SSE2__)
  u8* p = dst;
  u8* const end = dst + len;

  // Head: align to 16 bytes with plain stores.
  while (p < end && (reinterpret_cast<uintptr_t>(p) & 0xF) != 0) *p++ = 0;

  const __m128i zero = _mm_setzero_si128();
  for (; p + 64 <= end; p += 64) {
    _mm_stream_si128(reinterpret_cast<__m128i*>(p + 0), zero);
    _mm_stream_si128(reinterpret_cast<__m128i*>(p + 16), zero);
    _mm_stream_si128(reinterpret_cast<__m128i*>(p + 32), zero);
    _mm_stream_si128(reinterpret_cast<__m128i*>(p + 48), zero);
  }
  for (; p + 16 <= end; p += 16) {
    _mm_stream_si128(reinterpret_cast<__m128i*>(p), zero);
  }
  _mm_sfence();

  // Tail.
  while (p < end) *p++ = 0;
#else
  std::memset(dst, 0, len);
#endif
}

}  // namespace bigmap
