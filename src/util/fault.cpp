#include "util/fault.h"

#include <string>

#include "util/hash.h"

namespace bigmap {
namespace {

thread_local FaultInjector* tl_injector = nullptr;
thread_local u32 tl_instance = 0;

}  // namespace

const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kExecAbort: return "exec-abort";
    case FaultSite::kPublishDrop: return "publish-drop";
    case FaultSite::kTransientHang: return "transient-hang";
    case FaultSite::kAllocFail: return "alloc-fail";
    case FaultSite::kInstanceKill: return "instance-kill";
    case FaultSite::kShortWrite: return "short-write";
    case FaultSite::kCorruptRead: return "corrupt-read";
    case FaultSite::kRenameFail: return "rename-fail";
    case FaultSite::kNoSpace: return "no-space";
    case FaultSite::kProcKill: return "proc-kill";
    case FaultSite::kProcStall: return "proc-stall";
    case FaultSite::kProcExitMidPublish: return "proc-exit-mid-publish";
    case FaultSite::kMmapFail: return "mmap-fail";
    case FaultSite::kNetDrop: return "net-drop";
    case FaultSite::kNetDelay: return "net-delay";
    case FaultSite::kNetShortWrite: return "net-short-write";
    case FaultSite::kNetConnReset: return "net-conn-reset";
    case FaultSite::kNetPartition: return "net-partition";
  }
  return "unknown";
}

u64 FaultStats::checked_total() const noexcept {
  u64 sum = 0;
  for (u64 v : checked) sum += v;
  return sum;
}

u64 FaultStats::injected_total() const noexcept {
  u64 sum = 0;
  for (u64 v : injected) sum += v;
  return sum;
}

FaultInjector::FaultInjector(u64 seed, FaultPlan plan)
    : seed_(seed), plan_(std::move(plan)) {}

bool FaultInjector::fire(FaultSite site, u32 instance) {
  const usize si = static_cast<usize>(site);
  const u64 k = key(site, instance);

  u64 n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = counters_[k]++;
    ++stats_.checked[si];
    if (reg_checked_[si] != nullptr) reg_checked_[si]->add();
  }

  bool hit = false;
  for (const FaultTrigger& t : plan_.triggers) {
    if (t.site == site && t.instance == instance && t.nth == n) {
      hit = true;
      break;
    }
  }
  if (!hit) {
    for (const FaultRate& r : plan_.rates) {
      if (r.site != site || r.per_million == 0) continue;
      if (r.instance != FaultRate::kAllInstances && r.instance != instance) {
        continue;
      }
      // Deterministic per-occurrence coin flip: the decision depends only
      // on (seed, site, instance, occurrence index).
      const u64 h = mix64(seed_ ^ mix64(k) ^ mix64(n ^ 0xFA017ULL));
      if (h % 1000000u < r.per_million) {
        hit = true;
        break;
      }
    }
  }

  if (hit) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.injected[si];
    ++injected_by_key_[k];
    if (reg_injected_[si] != nullptr) reg_injected_[si]->add();
  }
  return hit;
}

void FaultInjector::set_registry(telemetry::MetricRegistry* reg) {
  std::array<telemetry::Counter*, kNumFaultSites> checked{};
  std::array<telemetry::Counter*, kNumFaultSites> injected{};
  if (reg != nullptr) {
    for (usize si = 0; si < kNumFaultSites; ++si) {
      const std::string base =
          std::string("fault.") +
          fault_site_name(static_cast<FaultSite>(si));
      checked[si] = &reg->counter(base + ".checked");
      injected[si] = &reg->counter(base + ".injected");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  reg_checked_ = checked;
  reg_injected_ = injected;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

u64 FaultInjector::occurrences(FaultSite site, u32 instance) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(key(site, instance));
  return it != counters_.end() ? it->second : 0;
}

void FaultInjector::advance(FaultSite site, u32 instance, u64 n) {
  std::lock_guard<std::mutex> lock(mu_);
  u64& counter = counters_[key(site, instance)];
  if (counter < n) counter = n;
}

u64 FaultInjector::injected_for(u32 instance) const {
  std::lock_guard<std::mutex> lock(mu_);
  u64 sum = 0;
  for (usize si = 0; si < kNumFaultSites; ++si) {
    auto it =
        injected_by_key_.find(key(static_cast<FaultSite>(si), instance));
    if (it != injected_by_key_.end()) sum += it->second;
  }
  return sum;
}

FaultInjector::ScopedThreadBinding::ScopedThreadBinding(
    FaultInjector* injector, u32 instance) noexcept
    : prev_injector_(tl_injector), prev_instance_(tl_instance) {
  tl_injector = injector;
  tl_instance = instance;
}

FaultInjector::ScopedThreadBinding::~ScopedThreadBinding() {
  tl_injector = prev_injector_;
  tl_instance = prev_instance_;
}

bool FaultInjector::fire_alloc() noexcept {
  if (tl_injector == nullptr) return false;
  return tl_injector->fire(FaultSite::kAllocFail, tl_instance);
}

}  // namespace bigmap
