// Timing utilities for the per-operation runtime breakdown (paper Figure 3).
//
// The executor attributes wall-clock time to one of the MapOp categories the
// paper reports: target execution, map reset, map classify, map compare,
// map hash, and everything else. OpTimeBreakdown accumulates nanoseconds per
// category; ScopedOpTimer attributes a lexical scope.
#pragma once

#include <array>
#include <chrono>
#include <string_view>

#include "util/types.h"

namespace bigmap {

// Runtime categories matching Figure 3's stacked bars.
enum class MapOp : u8 {
  kExecution = 0,  // running the target (includes inline bitmap update)
  kReset,          // clearing the trace bitmap before a run
  kClassify,       // bucketing hit counts
  kCompare,        // virgin-map comparison (has_new_bits)
  kHash,           // hashing the classified bitmap
  kOther,          // queue management, mutation, bookkeeping
};

inline constexpr usize kNumMapOps = 6;

// Human-readable label for a category ("Execution", "Map Reset", ...).
std::string_view map_op_name(MapOp op) noexcept;

// Monotonic clock reading in nanoseconds.
inline u64 monotonic_ns() noexcept {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Accumulated nanoseconds per MapOp category.
class OpTimeBreakdown {
 public:
  void add(MapOp op, u64 ns) noexcept {
    ns_[static_cast<usize>(op)] += ns;
  }

  u64 ns(MapOp op) const noexcept { return ns_[static_cast<usize>(op)]; }

  double seconds(MapOp op) const noexcept {
    return static_cast<double>(ns(op)) * 1e-9;
  }

  u64 total_ns() const noexcept {
    u64 t = 0;
    for (u64 v : ns_) t += v;
    return t;
  }

  double total_seconds() const noexcept {
    return static_cast<double>(total_ns()) * 1e-9;
  }

  // Fraction of total time spent in `op`; 0 when nothing was recorded.
  double fraction(MapOp op) const noexcept {
    const u64 t = total_ns();
    return t == 0 ? 0.0 : static_cast<double>(ns(op)) / static_cast<double>(t);
  }

  void reset() noexcept { ns_.fill(0); }

  OpTimeBreakdown& operator+=(const OpTimeBreakdown& other) noexcept {
    for (usize i = 0; i < kNumMapOps; ++i) ns_[i] += other.ns_[i];
    return *this;
  }

 private:
  std::array<u64, kNumMapOps> ns_{};
};

// Attributes the lifetime of the object to one category of a breakdown.
class ScopedOpTimer {
 public:
  ScopedOpTimer(OpTimeBreakdown& breakdown, MapOp op) noexcept
      : breakdown_(breakdown), op_(op), start_(monotonic_ns()) {}

  ~ScopedOpTimer() { breakdown_.add(op_, monotonic_ns() - start_); }

  ScopedOpTimer(const ScopedOpTimer&) = delete;
  ScopedOpTimer& operator=(const ScopedOpTimer&) = delete;

 private:
  OpTimeBreakdown& breakdown_;
  MapOp op_;
  u64 start_;
};

}  // namespace bigmap
