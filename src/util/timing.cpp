#include "util/timing.h"

namespace bigmap {

std::string_view map_op_name(MapOp op) noexcept {
  switch (op) {
    case MapOp::kExecution:
      return "Execution";
    case MapOp::kReset:
      return "Map Reset";
    case MapOp::kClassify:
      return "Map Classify";
    case MapOp::kCompare:
      return "Map Compare";
    case MapOp::kHash:
      return "Map Hash";
    case MapOp::kOther:
      return "Others";
  }
  return "Unknown";
}

}  // namespace bigmap
