// EINTR-safe raw syscall wrappers.
//
// Chaos runs are signal-heavy by design: the coordinator SIGKILLs stalled
// workers, drills SIGKILL the coordinator itself, and sanitizer runtimes
// install their own handlers. Any raw ::read/::write/::waitpid in that
// environment can return -1/EINTR without anything being wrong, and a call
// site that treats that as a real fault misreads a routine interruption as
// an I/O error or a lost child. Every raw syscall the fleet runtimes issue
// goes through these wrappers instead, so EINTR is retried at the lowest
// level and never escapes as a spurious failure.
//
// Also home to process-wide signal hygiene: ignore_sigpipe() turns a write
// to a reset network peer into an EPIPE errno (triaged and retried by the
// transport layer) instead of a process-killing SIGPIPE.
#pragma once

#include <errno.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/types.h"

namespace bigmap {

// waitpid that retries EINTR. All other outcomes (including 0 under
// WNOHANG and -1/ECHILD) pass through untouched.
inline pid_t xwaitpid(pid_t pid, int* status, int options) noexcept {
  for (;;) {
    const pid_t r = ::waitpid(pid, status, options);
    if (r >= 0 || errno != EINTR) return r;
  }
}

// read(2) that retries EINTR; may still return a short count (stream
// semantics) or -1 with a real errno.
inline ssize_t xread(int fd, void* buf, usize n) noexcept {
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r >= 0 || errno != EINTR) return r;
  }
}

// write(2) that retries EINTR; may still return a short count.
inline ssize_t xwrite(int fd, const void* buf, usize n) noexcept {
  for (;;) {
    const ssize_t r = ::write(fd, buf, n);
    if (r >= 0 || errno != EINTR) return r;
  }
}

// close(2) retrying EINTR. POSIX leaves the fd state unspecified after
// EINTR; on Linux the descriptor is already gone, so a retry can only hit
// EBADF, which is ignored — either way the fd is released exactly once.
inline int xclose(int fd) noexcept {
  const int r = ::close(fd);
  if (r < 0 && errno == EINTR) return 0;
  return r;
}

// Reads exactly `n` bytes unless EOF or a real error intervenes. Returns
// the number of bytes read (== n on success; < n means EOF; -1 on error).
inline ssize_t read_full(int fd, void* buf, usize n) noexcept {
  u8* p = static_cast<u8*>(buf);
  usize done = 0;
  while (done < n) {
    const ssize_t r = xread(fd, p + done, n - done);
    if (r < 0) return -1;
    if (r == 0) break;  // EOF
    done += static_cast<usize>(r);
  }
  return static_cast<ssize_t>(done);
}

// Writes exactly `n` bytes or fails (-1 with errno from the failing call).
// Short kernel writes are continued, EINTR is retried.
inline ssize_t write_full(int fd, const void* buf, usize n) noexcept {
  const u8* p = static_cast<const u8*>(buf);
  usize done = 0;
  while (done < n) {
    const ssize_t r = xwrite(fd, p + done, n - done);
    if (r < 0) return -1;
    done += static_cast<usize>(r);
  }
  return static_cast<ssize_t>(done);
}

// Ignores SIGPIPE process-wide (idempotent). A peer that resets its end of
// a socket then makes the next send fail with EPIPE — an error the
// transport triages and recovers from — instead of killing the process
// with the default SIGPIPE disposition. Coordinators and net drills call
// this once at startup.
inline void ignore_sigpipe() noexcept {
  struct sigaction sa {};
  sa.sa_handler = SIG_IGN;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGPIPE, &sa, nullptr);
}

}  // namespace bigmap
