// DTLB model for the huge-page rationale (paper §IV-E).
//
// "There are limited numbers of slots on L1/L2 DTLB, and a large bitmap
// can consume many of them, resulting in frequent page-walks caused by
// DTLB misses. Allocating the bitmaps on a huge page reduces these
// overheads."
//
// The model: a two-level DTLB (64-entry 4-way L1, 512-entry 8-way L2 —
// Nehalem-era sizes) translating either 4 KiB or 2 MiB pages. An 8 MB map
// spans 2048 small pages (swamping both levels on scattered access) but
// only 4 huge pages.
#pragma once

#include <vector>

#include "util/types.h"

namespace bigmap {

struct TlbConfig {
  u32 l1_entries = 64;
  u32 l1_ways = 4;
  u32 l2_entries = 512;
  u32 l2_ways = 8;
  usize page_size = 4096;  // 4 KiB or 2 MiB
};

// Where a translation was satisfied.
enum class TlbLevel : u8 { kL1, kL2, kPageWalk };

class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg);

  // Translates `addr`; fills on miss.
  TlbLevel access(u64 addr) noexcept;

  void reset() noexcept;

  u64 accesses() const noexcept { return accesses_; }
  u64 l1_hits() const noexcept { return l1_hits_; }
  u64 l2_hits() const noexcept { return l2_hits_; }
  u64 page_walks() const noexcept { return page_walks_; }
  double walk_rate() const noexcept {
    return accesses_ == 0
               ? 0.0
               : static_cast<double>(page_walks_) / accesses_;
  }

  const TlbConfig& config() const noexcept { return cfg_; }

 private:
  struct Way {
    u64 vpn = ~0ULL;
    u64 lru = 0;
  };

  struct Level {
    Level(u32 entries, u32 ways_count)
        : sets(entries / ways_count), assoc(ways_count),
          ways(entries) {}
    bool access(u64 vpn, u64 tick) noexcept;

    usize sets;
    u32 assoc;
    std::vector<Way> ways;
  };

  TlbConfig cfg_;
  u32 page_shift_;
  Level l1_;
  Level l2_;
  u64 tick_ = 0;
  u64 accesses_ = 0;
  u64 l1_hits_ = 0;
  u64 l2_hits_ = 0;
  u64 page_walks_ = 0;
};

// Result of simulating one scheme's per-execution access stream through
// a TLB with the given page size.
struct TlbSimResult {
  double walk_rate = 0.0;           // fraction of accesses that page-walk
  u64 walks_per_exec = 0;           // absolute page walks per execution
};

// Simulates `execs` fuzzing iterations of the given scheme (same access
// streams as mapsim) through a DTLB with `page_size`-sized pages covering
// the map structures. Isolated from the cache model: the question here is
// translation pressure only.
TlbSimResult simulate_map_tlb_pressure(bool two_level, usize map_size,
                                       usize used_keys, usize edges_per_exec,
                                       usize page_size, u32 execs, u64 seed);

}  // namespace bigmap
