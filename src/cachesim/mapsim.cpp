#include "cachesim/mapsim.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace bigmap {
namespace {

// Disjoint virtual address bases for the simulated data structures.
constexpr u64 kTraceBase = 0x1'0000'0000ULL;   // coverage bitmap
constexpr u64 kIndexBase = 0x2'0000'0000ULL;   // BigMap index bitmap
constexpr u64 kVirginBase = 0x3'0000'0000ULL;  // global/virgin map
constexpr u64 kAppBase = 0x4'0000'0000ULL;     // application working set

class Tracker {
 public:
  Tracker(CacheHierarchy& h, MapOpAccessStats& stats)
      : h_(&h), stats_(&stats) {}

  void access(u64 addr) {
    ++stats_->accesses;
    switch (h_->access(addr)) {
      case HitLevel::kL1:
        ++stats_->l1_hits;
        break;
      case HitLevel::kL2:
        ++stats_->l2_hits;
        break;
      case HitLevel::kL3:
        ++stats_->l3_hits;
        break;
      case HitLevel::kMemory:
        ++stats_->memory;
        break;
    }
  }

 private:
  CacheHierarchy* h_;
  MapOpAccessStats* stats_;
};

}  // namespace

CacheBehaviorReport simulate_map_cache_behavior(const CacheSimParams& p) {
  CacheBehaviorReport rep;
  rep.scheme = p.scheme;
  rep.map_size = p.map_size;
  rep.used_keys = std::min(p.used_keys, p.map_size);

  CacheHierarchy h = CacheHierarchy::xeon_e5645();
  Xoshiro256 rng(p.seed);

  // Distinct coverage keys (random positions in the hash space). The
  // condensed slot of key i under BigMap is simply i (dense first-touch
  // order).
  std::vector<u32> keys;
  {
    std::unordered_set<u32> seen;
    keys.reserve(rep.used_keys);
    while (keys.size() < rep.used_keys) {
      const u32 k = static_cast<u32>(rng.next()) &
                    static_cast<u32>(p.map_size - 1);
      if (seen.insert(k).second) keys.push_back(k);
    }
  }

  rep.ops.resize(6);
  rep.ops[0].op = "update";
  rep.ops[1].op = "reset";
  rep.ops[2].op = "classify";
  rep.ops[3].op = "compare";
  rep.ops[4].op = "hash";
  rep.ops[5].op = "app";
  Tracker update(h, rep.ops[0]);
  Tracker reset(h, rep.ops[1]);
  Tracker classify(h, rep.ops[2]);
  Tracker compare(h, rep.ops[3]);
  Tracker hash(h, rep.ops[4]);
  Tracker app(h, rep.ops[5]);

  const bool two_level = p.scheme == MapScheme::kTwoLevel;
  // Scan extent: whole map for the flat scheme, used region for BigMap.
  const usize scan_bytes = two_level ? rep.used_keys : p.map_size;
  constexpr u32 kWord = 8;  // scans read one u64 per probe

  for (u32 it = 0; it < p.iterations; ++it) {
    // ---- reset ------------------------------------------------------------
    for (usize b = 0; b < scan_bytes; b += kWord) {
      if (!two_level && p.nontemporal_reset) {
        h.access_nontemporal(kTraceBase + b);
        ++rep.ops[1].accesses;  // counted but cache-neutral
      } else {
        reset.access(kTraceBase + b);
      }
    }

    // ---- execution: app working set + inline updates ----------------------
    // The app toucheses its working set with high locality; edge updates
    // interleave. Edge stream: random draws from the key set with a hot
    // subset (loop edges) drawn more often.
    // Loop/common-function edges form a small hot set (the paper's "high
    // temporal locality" for updates).
    const usize hot = std::max<usize>(1, keys.size() / 64);
    for (usize e = 0; e < p.edges_per_exec; ++e) {
      // Application accesses dominate the instruction stream; model two
      // app touches per edge event.
      app.access(kAppBase + (rng.next() % p.app_ws_bytes));
      app.access(kAppBase + (rng.next() % p.app_ws_bytes));

      const bool hot_draw = rng.chance(7, 8);
      const u32 ki = hot_draw
                         ? static_cast<u32>(rng.next() % hot)
                         : static_cast<u32>(rng.next() % keys.size());
      if (two_level) {
        update.access(kIndexBase + static_cast<u64>(keys[ki]) * 4);
        update.access(kTraceBase + ki);  // condensed slot == ki
      } else {
        update.access(kTraceBase + keys[ki]);
      }
    }

    // ---- classify ---------------------------------------------------------
    for (usize b = 0; b < scan_bytes; b += kWord) {
      classify.access(kTraceBase + b);
    }

    // ---- compare (trace + virgin) -----------------------------------------
    for (usize b = 0; b < scan_bytes; b += kWord) {
      compare.access(kTraceBase + b);
      compare.access(kVirginBase + b);
    }

    // ---- hash (interesting iterations only) -------------------------------
    if (p.hash_every != 0 && it % p.hash_every == 0) {
      for (usize b = 0; b < scan_bytes; b += kWord) {
        hash.access(kTraceBase + b);
      }
    }
  }

  // Pollution: map-data occupancy of each level after the last scans.
  const u64 map_lo = kTraceBase;
  const u64 map_hi = kTraceBase + p.map_size;
  auto occupancy = [&](const Cache& c) {
    usize resident = c.resident_lines_in(map_lo, map_hi) +
                     c.resident_lines_in(kVirginBase, kVirginBase +
                                                          p.map_size) +
                     c.resident_lines_in(kIndexBase,
                                         kIndexBase + p.map_size * 4);
    return static_cast<double>(resident) /
           static_cast<double>(c.capacity_lines());
  };
  rep.l1_map_occupancy = occupancy(h.l1());
  rep.l2_map_occupancy = occupancy(h.l2());
  rep.l3_map_occupancy = occupancy(h.l3());

  // Pollution cost on the application: the fraction of its working-set
  // accesses that fall all the way through to DRAM (L1/L2/L3 all evicted
  // by map traffic).
  const auto& app_stats = rep.ops[5];
  rep.app_miss_rate =
      app_stats.accesses == 0
          ? 0.0
          : static_cast<double>(app_stats.memory) /
                static_cast<double>(app_stats.accesses);

  return rep;
}

}  // namespace bigmap
