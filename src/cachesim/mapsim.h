// Map-operation cache-behaviour simulation (reproduces Table I).
//
// Replays the exact memory-access streams the two coverage-map schemes
// generate during a fuzzing iteration — sparse updates, whole-map or
// used-region scans, virgin comparisons — through the modeled Xeon E5645
// hierarchy, together with a synthetic "application working set" standing
// in for the target program's own data. The report quantifies, per map
// operation:
//
//   - hit distribution across L1/L2/L3/memory (temporal+spatial locality)
//   - distinct cache lines touched (footprint)
//   - cache occupancy by map data after the scans, and the miss rate
//     inflicted on the application working set (cache pollution)
#pragma once

#include <string>
#include <vector>

#include "cachesim/cache.h"
#include "core/map_options.h"
#include "util/types.h"

namespace bigmap {

struct MapOpAccessStats {
  std::string op;
  u64 accesses = 0;
  u64 l1_hits = 0;
  u64 l2_hits = 0;
  u64 l3_hits = 0;
  u64 memory = 0;

  double l1_hit_rate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(l1_hits) / accesses;
  }
  double memory_rate() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(memory) / accesses;
  }
};

struct CacheBehaviorReport {
  MapScheme scheme{};
  usize map_size = 0;
  usize used_keys = 0;

  std::vector<MapOpAccessStats> ops;

  // Fraction of each cache level's lines holding map data after the final
  // iteration's scan phase (pollution).
  double l1_map_occupancy = 0.0;
  double l2_map_occupancy = 0.0;
  double l3_map_occupancy = 0.0;

  // Miss rate experienced by the application's own working set across the
  // run — the downstream cost of pollution.
  double app_miss_rate = 0.0;

  const MapOpAccessStats* find(const std::string& op) const noexcept {
    for (const auto& s : ops) {
      if (s.op == op) return &s;
    }
    return nullptr;
  }
};

struct CacheSimParams {
  MapScheme scheme = MapScheme::kFlat;
  usize map_size = 1u << 16;
  usize used_keys = 2000;       // distinct coverage keys the target exercises
  usize edges_per_exec = 4000;  // dynamic edge events per execution
  u32 iterations = 8;           // fuzzing iterations simulated
  u32 hash_every = 4;           // hash op every k-th iteration (interesting)
  usize app_ws_bytes = 24 * 1024;  // target's own working set
  bool nontemporal_reset = false;  // flat scheme: streaming reset (§IV-E)
  u64 seed = 1;
};

// Runs the access-trace simulation on a fresh Xeon E5645 hierarchy.
CacheBehaviorReport simulate_map_cache_behavior(const CacheSimParams& p);

}  // namespace bigmap
