#include "cachesim/cache.h"

#include <bit>
#include <stdexcept>

namespace bigmap {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  if (cfg.line_size == 0 || !std::has_single_bit(cfg.line_size)) {
    throw std::invalid_argument("line_size must be a power of two");
  }
  if (cfg.associativity == 0) {
    throw std::invalid_argument("associativity must be >= 1");
  }
  const usize lines = cfg.size_bytes / cfg.line_size;
  if (lines == 0 || lines % cfg.associativity != 0) {
    throw std::invalid_argument("size/line_size must be a multiple of ways");
  }
  num_sets_ = lines / cfg.associativity;
  line_shift_ = static_cast<u32>(std::countr_zero(
      static_cast<u64>(cfg.line_size)));
  ways_.resize(num_sets_ * cfg.associativity);
}

bool Cache::access(u64 addr) noexcept {
  const u64 line = addr >> line_shift_;
  const usize set = set_of(line);
  Way* base = &ways_[set * cfg_.associativity];
  ++tick_;

  Way* victim = base;
  for (u32 w = 0; w < cfg_.associativity; ++w) {
    if (base[w].tag == line) {
      base[w].lru = tick_;
      ++hits_;
      return true;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }

  ++misses_;
  victim->tag = line;
  victim->lru = tick_;
  return false;
}

bool Cache::contains(u64 addr) const noexcept {
  const u64 line = addr >> line_shift_;
  const usize set = set_of(line);
  const Way* base = &ways_[set * cfg_.associativity];
  for (u32 w = 0; w < cfg_.associativity; ++w) {
    if (base[w].tag == line) return true;
  }
  return false;
}

void Cache::reset() noexcept {
  for (Way& w : ways_) w = Way{};
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

usize Cache::resident_lines_in(u64 lo, u64 hi) const noexcept {
  const u64 line_lo = lo >> line_shift_;
  const u64 line_hi = (hi + cfg_.line_size - 1) >> line_shift_;
  usize n = 0;
  for (const Way& w : ways_) {
    if (w.tag != kInvalid && w.tag >= line_lo && w.tag < line_hi) ++n;
  }
  return n;
}

CacheHierarchy::CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                               const CacheConfig& l3)
    : l1_(l1), l2_(l2), l3_(l3) {}

CacheHierarchy CacheHierarchy::xeon_e5645() {
  return CacheHierarchy({32 * 1024, 8, 64}, {256 * 1024, 8, 64},
                        {12 * 1024 * 1024, 16, 64});
}

HitLevel CacheHierarchy::access(u64 addr) noexcept {
  if (l1_.access(addr)) return HitLevel::kL1;
  if (l2_.access(addr)) return HitLevel::kL2;
  if (l3_.access(addr)) return HitLevel::kL3;
  ++memory_accesses_;
  return HitLevel::kMemory;
}

void CacheHierarchy::reset() noexcept {
  l1_.reset();
  l2_.reset();
  l3_.reset();
  memory_accesses_ = 0;
  nt_stores_ = 0;
}

}  // namespace bigmap
