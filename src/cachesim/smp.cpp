#include "cachesim/smp.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "util/rng.h"

namespace bigmap {
namespace {

// Per-instance state: private L1/L2, its own address space, its own key
// universe and RNG. The shared L3 lives in the Smp simulator.
class Instance {
 public:
  Instance(const SmpParams& p, u32 id)
      : p_(&p),
        base_(static_cast<u64>(id + 1) << 40),
        l1_({32 * 1024, 8, 64}),
        l2_({256 * 1024, 8, 64}),
        rng_(p.seed * 1000003 + id) {
    const usize want = std::min(p.used_keys, p.map_size);
    std::unordered_set<u32> seen;
    keys_.reserve(want);
    while (keys_.size() < want) {
      const u32 k =
          static_cast<u32>(rng_.next()) & static_cast<u32>(p.map_size - 1);
      if (seen.insert(k).second) keys_.push_back(k);
    }
  }

  // Runs one full fuzzing iteration (reset, execute+update, classify,
  // compare, maybe hash), charging access latencies via `charge`.
  template <class Charge>
  void run_exec(u32 exec_index, Charge&& charge) {
    const bool two_level = p_->scheme == MapScheme::kTwoLevel;
    const usize scan = two_level ? keys_.size() : p_->map_size;
    constexpr u64 kTrace = 0x1'0000'0000ULL;
    constexpr u64 kIndex = 0x2'0000'0000ULL;
    constexpr u64 kVirgin = 0x3'0000'0000ULL;
    constexpr u64 kApp = 0x4'0000'0000ULL;

    // reset
    for (usize b = 0; b < scan; b += 8) charge(*this, base_ + kTrace + b);

    // execute: app work + updates
    const usize hot = std::max<usize>(1, keys_.size() / 64);
    for (usize e = 0; e < p_->edges_per_exec; ++e) {
      charge(*this, base_ + kApp + (rng_.next() % p_->app_ws_bytes));
      charge(*this, base_ + kApp + (rng_.next() % p_->app_ws_bytes));
      const u32 ki = rng_.chance(7, 8)
                         ? static_cast<u32>(rng_.next() % hot)
                         : static_cast<u32>(rng_.next() % keys_.size());
      if (two_level) {
        charge(*this, base_ + kIndex + static_cast<u64>(keys_[ki]) * 4);
        charge(*this, base_ + kTrace + ki);
      } else {
        charge(*this, base_ + kTrace + keys_[ki]);
      }
    }

    // classify + compare (+hash)
    for (usize b = 0; b < scan; b += 8) charge(*this, base_ + kTrace + b);
    for (usize b = 0; b < scan; b += 8) {
      charge(*this, base_ + kTrace + b);
      charge(*this, base_ + kVirgin + b);
    }
    if (p_->hash_every != 0 && exec_index % p_->hash_every == 0) {
      for (usize b = 0; b < scan; b += 8) charge(*this, base_ + kTrace + b);
    }
  }

  Cache& l1() noexcept { return l1_; }
  Cache& l2() noexcept { return l2_; }

 private:
  const SmpParams* p_;
  u64 base_;
  Cache l1_, l2_;
  Xoshiro256 rng_;
  std::vector<u32> keys_;
};

}  // namespace

SmpResult simulate_parallel_fuzzing(const SmpParams& params) {
  SmpResult res;
  res.instances = params.instances;

  Cache l3({12 * 1024 * 1024, 16, 64});
  std::vector<std::unique_ptr<Instance>> instances;
  for (u32 i = 0; i < params.instances; ++i) {
    instances.push_back(std::make_unique<Instance>(params, i));
  }

  double cache_ns = 0.0;   // latency excluding DRAM accesses
  u64 mem_accesses = 0;    // accesses that missed all levels
  u64 total_accesses = 0;

  auto charge = [&](Instance& self, u64 addr) {
    ++total_accesses;
    if (self.l1().access(addr)) {
      cache_ns += params.l1_ns;
    } else if (self.l2().access(addr)) {
      cache_ns += params.l2_ns;
    } else if (l3.access(addr)) {
      cache_ns += params.l3_ns;
    } else {
      ++mem_accesses;
    }
  };

  // Interleave instances per execution round: all cores progress at the
  // same rate, which is what concurrent same-binary fuzzers do. Within a
  // round each instance runs one full iteration; the shared L3 sees the
  // union of their footprints.
  for (u32 e = 0; e < params.execs_per_instance; ++e) {
    for (auto& inst : instances) {
      inst->run_exec(e, charge);
    }
  }

  const u64 total_execs =
      static_cast<u64>(params.instances) * params.execs_per_instance;
  const double cache_ns_per_exec =
      cache_ns / static_cast<double>(total_execs);
  const double mem_per_exec =
      static_cast<double>(mem_accesses) / static_cast<double>(total_execs);
  res.mem_bytes_per_exec = mem_per_exec * 64.0;

  // Fixed-point solve for throughput under a shared memory controller:
  // effective DRAM latency grows with utilization (open-queue M/M/1 style:
  // lat = mem_ns / (1 - rho)), and utilization depends on throughput.
  double ns_per_exec = cache_ns_per_exec + mem_per_exec * params.mem_ns;
  double rho = 0.0;
  for (int iter = 0; iter < 50; ++iter) {
    const double agg_bytes_per_sec = params.instances *
                                     (1e9 / ns_per_exec) *
                                     res.mem_bytes_per_exec;
    rho = std::min(0.97, agg_bytes_per_sec / params.mem_bandwidth);
    const double eff_mem_ns = params.mem_ns / (1.0 - rho);
    const double next = cache_ns_per_exec + mem_per_exec * eff_mem_ns;
    if (std::abs(next - ns_per_exec) < 0.01 * ns_per_exec) {
      ns_per_exec = next;
      break;
    }
    ns_per_exec = 0.5 * (ns_per_exec + next);  // damped iteration
  }

  res.mem_utilization = rho;
  res.ns_per_exec = ns_per_exec;
  res.instance_throughput = 1e9 / ns_per_exec;
  res.aggregate_throughput = res.instance_throughput * params.instances;
  res.l3_miss_rate = l3.miss_rate();
  return res;
}

}  // namespace bigmap
