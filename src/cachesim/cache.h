// Set-associative cache model with LRU replacement, and a three-level
// hierarchy mirroring the paper's Xeon E5645 testbed (32 kB L1d / 256 kB
// unified L2 / 12 MB shared L3, 64 B lines).
//
// The simulator exists to reproduce Table I — the locality and
// cache-pollution characterization of each map operation under both
// schemes — independently of the host CPU. It models addresses only (no
// data), which is sufficient for hit/miss accounting.
#pragma once

#include <vector>

#include "util/types.h"

namespace bigmap {

struct CacheConfig {
  usize size_bytes = 32 * 1024;
  u32 associativity = 8;
  u32 line_size = 64;
};

// One cache level: set-associative, LRU, allocate-on-miss (reads and writes
// behave identically for our purposes).
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  // Accesses `addr`; returns true on hit. Misses allocate.
  bool access(u64 addr) noexcept;

  // Probes without allocating or updating LRU state.
  bool contains(u64 addr) const noexcept;

  void reset() noexcept;

  u64 hits() const noexcept { return hits_; }
  u64 misses() const noexcept { return misses_; }
  u64 accesses() const noexcept { return hits_ + misses_; }
  double miss_rate() const noexcept {
    const u64 a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses_) / a;
  }

  // Number of resident lines whose tag matches the address range
  // [lo, hi) — used to quantify how much of the cache a data structure
  // occupies (pollution measurement).
  usize resident_lines_in(u64 lo, u64 hi) const noexcept;

  const CacheConfig& config() const noexcept { return cfg_; }
  usize num_sets() const noexcept { return num_sets_; }
  usize capacity_lines() const noexcept { return num_sets_ * cfg_.associativity; }

 private:
  struct Way {
    u64 tag = kInvalid;
    u64 lru = 0;  // larger == more recently used
  };
  static constexpr u64 kInvalid = ~0ULL;

  // Modulo indexing: real LLCs (e.g. the Xeon's 12 MB L3) have non-power-
  // of-two set counts.
  usize set_of(u64 line) const noexcept { return line % num_sets_; }

  CacheConfig cfg_;
  usize num_sets_;
  u32 line_shift_;
  std::vector<Way> ways_;  // num_sets_ * associativity, set-major
  u64 tick_ = 0;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

// Per-level outcome of one hierarchy access.
enum class HitLevel : u8 { kL1, kL2, kL3, kMemory };

// Three-level hierarchy. Each access probes L1, then L2, then L3; a miss at
// every level counts as a memory access. Fill allocates in all levels
// (inclusive behaviour, like the paper's Nehalem-era testbed).
class CacheHierarchy {
 public:
  CacheHierarchy(const CacheConfig& l1, const CacheConfig& l2,
                 const CacheConfig& l3);

  // Configuration matching the paper's Xeon E5645 (§V-A1).
  static CacheHierarchy xeon_e5645();

  HitLevel access(u64 addr) noexcept;

  // A non-temporal store: bypasses the hierarchy entirely (counted in
  // nt_stores_ only) — models §IV-E's streaming reset.
  void access_nontemporal(u64 /*addr*/) noexcept { ++nt_stores_; }

  void reset() noexcept;

  Cache& l1() noexcept { return l1_; }
  Cache& l2() noexcept { return l2_; }
  Cache& l3() noexcept { return l3_; }
  const Cache& l1() const noexcept { return l1_; }
  const Cache& l2() const noexcept { return l2_; }
  const Cache& l3() const noexcept { return l3_; }

  u64 memory_accesses() const noexcept { return memory_accesses_; }
  u64 nt_stores() const noexcept { return nt_stores_; }

 private:
  Cache l1_, l2_, l3_;
  u64 memory_accesses_ = 0;
  u64 nt_stores_ = 0;
};

}  // namespace bigmap
