// Parallel-fuzzing cache-contention model (Figures 9 and 10).
//
// The paper runs 1-12 concurrent fuzzing instances, one per physical core,
// all sharing a 12 MB L3. Scaling breaks down when the combined working
// sets exceed the shared LLC — much earlier for AFL's whole-map scans than
// for BigMap's used-region scans. This host has a single core, so the
// experiment is reproduced in the simulator (a substitution documented in
// DESIGN.md): n instances with private L1/L2 and a shared L3 interleave
// their per-execution access streams, and a latency model converts hit
// levels into a modeled time per execution.
#pragma once

#include <vector>

#include "cachesim/cache.h"
#include "core/map_options.h"
#include "util/types.h"

namespace bigmap {

struct SmpParams {
  MapScheme scheme = MapScheme::kFlat;
  usize map_size = 2u << 20;
  usize used_keys = 20000;      // distinct coverage keys per instance
  usize edges_per_exec = 4000;  // dynamic edge events per execution
  usize app_ws_bytes = 32 * 1024;
  u32 instances = 1;
  u32 execs_per_instance = 6;  // simulated executions per instance
  u32 hash_every = 8;          // interesting-case hash frequency
  u64 seed = 1;

  // Latency model (ns per access at each hit level). Defaults approximate
  // the Xeon E5645 generation.
  double l1_ns = 1.2;
  double l2_ns = 4.0;
  double l3_ns = 14.0;
  double mem_ns = 80.0;

  // Shared DRAM bandwidth (bytes/s). Whole-map scans from many instances
  // queue on the memory controller; effective memory latency grows with
  // utilization (M/M/1-style), which is what bends AFL's scaling curve
  // past ~4 instances in Figure 9(a).
  double mem_bandwidth = 10e9;
};

struct SmpResult {
  u32 instances = 0;
  // Modeled nanoseconds per execution for one instance under contention.
  double ns_per_exec = 0.0;
  // Executions/second of one instance (each instance owns a core).
  double instance_throughput = 0.0;
  // All instances together.
  double aggregate_throughput = 0.0;
  // Shared-L3 statistics.
  double l3_miss_rate = 0.0;
  // Bytes of DRAM traffic per execution and modeled controller utilization.
  double mem_bytes_per_exec = 0.0;
  double mem_utilization = 0.0;
};

// Simulates `instances` concurrent fuzzing instances and returns the
// modeled throughput. Deterministic in params.seed.
SmpResult simulate_parallel_fuzzing(const SmpParams& params);

}  // namespace bigmap
