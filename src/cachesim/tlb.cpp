#include "cachesim/tlb.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.h"

namespace bigmap {

bool Tlb::Level::access(u64 vpn, u64 tick) noexcept {
  const usize set = vpn % sets;
  Way* base = &ways[set * assoc];
  Way* victim = base;
  for (u32 w = 0; w < assoc; ++w) {
    if (base[w].vpn == vpn) {
      base[w].lru = tick;
      return true;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  victim->vpn = vpn;
  victim->lru = tick;
  return false;
}

Tlb::Tlb(const TlbConfig& cfg)
    : cfg_(cfg),
      page_shift_(static_cast<u32>(
          std::countr_zero(static_cast<u64>(cfg.page_size)))),
      l1_(cfg.l1_entries, cfg.l1_ways),
      l2_(cfg.l2_entries, cfg.l2_ways) {
  if (!std::has_single_bit(cfg.page_size)) {
    throw std::invalid_argument("page_size must be a power of two");
  }
  if (cfg.l1_entries % cfg.l1_ways != 0 ||
      cfg.l2_entries % cfg.l2_ways != 0) {
    throw std::invalid_argument("entries must be a multiple of ways");
  }
}

TlbLevel Tlb::access(u64 addr) noexcept {
  const u64 vpn = addr >> page_shift_;
  ++accesses_;
  ++tick_;
  if (l1_.access(vpn, tick_)) {
    ++l1_hits_;
    return TlbLevel::kL1;
  }
  if (l2_.access(vpn, tick_)) {
    ++l2_hits_;
    return TlbLevel::kL2;
  }
  ++page_walks_;
  return TlbLevel::kPageWalk;
}

void Tlb::reset() noexcept {
  for (auto& w : l1_.ways) w = Way{};
  for (auto& w : l2_.ways) w = Way{};
  tick_ = 0;
  accesses_ = 0;
  l1_hits_ = 0;
  l2_hits_ = 0;
  page_walks_ = 0;
}

TlbSimResult simulate_map_tlb_pressure(bool two_level, usize map_size,
                                       usize used_keys,
                                       usize edges_per_exec,
                                       usize page_size, u32 execs,
                                       u64 seed) {
  TlbConfig cfg;
  cfg.page_size = page_size;
  Tlb tlb(cfg);
  Xoshiro256 rng(seed);

  constexpr u64 kTrace = 0x1'0000'0000ULL;
  constexpr u64 kIndex = 0x2'0000'0000ULL;
  constexpr u64 kVirgin = 0x3'0000'0000ULL;

  used_keys = std::min(used_keys, map_size);
  std::vector<u32> keys;
  {
    std::unordered_set<u32> seen;
    keys.reserve(used_keys);
    while (keys.size() < used_keys) {
      const u32 k =
          static_cast<u32>(rng.next()) & static_cast<u32>(map_size - 1);
      if (seen.insert(k).second) keys.push_back(k);
    }
  }

  const usize scan = two_level ? used_keys : map_size;
  const usize hot = std::max<usize>(1, keys.size() / 64);

  for (u32 e = 0; e < execs; ++e) {
    // reset + classify + compare scans (sequential: one access per page
    // suffices for TLB pressure purposes, but we probe per cache line to
    // mirror the real stride).
    for (usize b = 0; b < scan; b += 64) tlb.access(kTrace + b);
    for (usize i = 0; i < edges_per_exec; ++i) {
      const u32 ki = rng.chance(7, 8)
                         ? static_cast<u32>(rng.next() % hot)
                         : static_cast<u32>(rng.next() % keys.size());
      if (two_level) {
        tlb.access(kIndex + static_cast<u64>(keys[ki]) * 4);
        tlb.access(kTrace + ki);
      } else {
        tlb.access(kTrace + keys[ki]);
      }
    }
    for (usize b = 0; b < scan; b += 64) tlb.access(kTrace + b);
    for (usize b = 0; b < scan; b += 64) {
      tlb.access(kTrace + b);
      tlb.access(kVirgin + b);
    }
  }

  TlbSimResult res;
  res.walk_rate = tlb.walk_rate();
  res.walks_per_exec = tlb.page_walks() / std::max<u64>(1, execs);
  return res;
}

}  // namespace bigmap
