// statecheck: fsck-style validator/dumper for BigMap persistence files.
//
//   statecheck [--dump] <snapshot.bms>...   validate snapshot files
//   statecheck [--dump] --fleet <dir>       validate a fleet directory
//                                           (journal + every instance
//                                           snapshot)
//   statecheck [--dump] --corpus <dir>      fsck a corpus store (WAL +
//                                           pack CRC/payload/content-hash
//                                           integrity, torn tail),
//                                           cross-check every snap-*.bms
//                                           store ref under <dir> against
//                                           the live entry set, and audit
//                                           every federation.wal for epoch
//                                           monotonicity and delta
//                                           well-formedness
//
// --corpus accepts either the store directory itself (corpus.wal /
// corpus.pack) or a fleet directory with a corpus/ subdirectory. The check
// is read-only: a torn WAL tail is reported as a warning (open() truncates
// it by design), structural pack damage and dangling refs are failures.
//
// Exit status 0 when everything checked is valid, 1 otherwise. --dump
// additionally lists every record and the decoded campaign identity, which
// is how a human inspects what a crashed fleet left behind.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "corpus/novelty.h"
#include "corpus/store.h"
#include "persist/federation.h"
#include "persist/fleet.h"
#include "persist/io.h"
#include "persist/record.h"
#include "persist/snapshot.h"

namespace fs = std::filesystem;
using namespace bigmap;
using namespace bigmap::persist;

namespace {

void dump_records(const ParsedFile& parsed) {
  for (const RecordView& rec : parsed.records) {
    std::printf("  record %-16s %zu bytes\n", record_type_name(rec.type),
                rec.payload.size());
  }
}

void dump_snapshot(const CampaignSnapshot& s) {
  std::printf(
      "  scheme=%u metric=%u seed=%llu instance=%u map_size=%llu "
      "virgin_size=%llu seq=%llu\n",
      s.scheme, s.metric, static_cast<unsigned long long>(s.seed),
      s.instance_id, static_cast<unsigned long long>(s.map_size),
      static_cast<unsigned long long>(s.virgin_size),
      static_cast<unsigned long long>(s.checkpoint_seq));
  std::printf(
      "  execs=%llu interesting=%llu crashes=%llu queue_entries=%zu "
      "bug_ids=%zu stack_hashes=%zu used_key=%u\n",
      static_cast<unsigned long long>(s.execs),
      static_cast<unsigned long long>(s.interesting),
      static_cast<unsigned long long>(s.crashes_total), s.entries.size(),
      s.bug_ids.size(), s.stack_hashes.size(), s.used_key);
}

// Returns true when the snapshot file is fully valid.
bool check_snapshot_file(const std::string& path, bool dump) {
  std::vector<u8> bytes;
  std::string err;
  if (!read_file(path, &bytes, FaultCtx{}, &err)) {
    std::printf("%s: MISSING (%s)\n", path.c_str(), err.c_str());
    return false;
  }
  DecodeResult dec = decode_snapshot(bytes);
  if (dec.status != LoadStatus::kOk) {
    std::printf("%s: INVALID (%s)\n", path.c_str(),
                load_status_name(dec.status));
    if (dump) {
      ParsedFile parsed = parse_records(bytes);
      std::printf("  valid prefix: %zu of %zu bytes, %zu record(s)\n",
                  parsed.valid_bytes, bytes.size(), parsed.records.size());
      dump_records(parsed);
    }
    return false;
  }
  std::printf("%s: ok (%zu bytes)\n", path.c_str(), bytes.size());
  if (dump) {
    dump_records(parse_records(bytes));
    dump_snapshot(*dec.snapshot);
  }
  return true;
}

// Journal contents needed for cross-validation against the instance
// directories.
struct JournalSummary {
  bool usable = false;
  FleetFingerprint fp;
  // Newest event per instance id, in journal order.
  std::map<u32, InstanceEvent> last_events;
  u32 bad_event_payloads = 0;
};

bool check_journal(const std::string& path, bool dump, JournalSummary* js) {
  std::vector<u8> bytes;
  std::string err;
  if (!read_file(path, &bytes, FaultCtx{}, &err)) {
    std::printf("%s: MISSING (%s)\n", path.c_str(), err.c_str());
    return false;
  }
  ParsedFile parsed = parse_records(bytes);
  if (parsed.records.empty() ||
      parsed.records.front().type != RecordType::kFleetHeader) {
    std::printf("%s: INVALID (no fleet header)\n", path.c_str());
    return false;
  }
  if (!decode_fleet_fingerprint(parsed.records.front().payload, &js->fp)) {
    std::printf("%s: INVALID (bad fingerprint payload)\n", path.c_str());
    return false;
  }
  bool ok = true;
  for (usize i = 1; i < parsed.records.size(); ++i) {
    if (parsed.records[i].type != RecordType::kFleetEvent) continue;
    InstanceEvent ev;
    if (!decode_instance_event(parsed.records[i].payload, &ev)) {
      ++js->bad_event_payloads;
      ok = false;
      continue;
    }
    js->last_events[ev.instance] = ev;
  }
  js->usable = true;
  if (js->bad_event_payloads > 0) {
    std::printf("%s: INVALID (%u event record(s) failed to decode)\n",
                path.c_str(), js->bad_event_payloads);
  } else if (parsed.status != LoadStatus::kOk) {
    // A torn journal tail is recoverable by design, so report it as a
    // warning, not a failure.
    std::printf("%s: ok with torn tail (%s; valid prefix %zu of %zu "
                "bytes, %zu record(s))\n",
                path.c_str(), load_status_name(parsed.status),
                parsed.valid_bytes, bytes.size(), parsed.records.size());
  } else {
    std::printf("%s: ok (%zu record(s), %zu instance(s))\n", path.c_str(),
                parsed.records.size(), js->last_events.size());
  }
  if (dump) dump_records(parsed);
  return ok;
}

// Parses "snap-<seq>.bms" -> seq.
bool parse_snap_seq(const std::string& name, u64* seq) {
  const std::string prefix = "snap-";
  const std::string suffix = ".bms";
  if (name.size() <= prefix.size() + suffix.size() ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
          0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  u64 value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<u64>(c - '0');
  }
  *seq = value;
  return true;
}

// Cross-validates the journal's view of the world against the instance
// directories. Two distinct error classes beyond structural damage:
//
//  - unknown instance id: an event names an instance the fleet fingerprint
//    says cannot exist (journal corruption or a foreign journal);
//  - dangling checkpoint ref: the newest event for an instance references
//    a checkpoint newer than any snapshot still on disk — resume would
//    silently run with older state than the coordinator believed durable.
//    (References *older* than the newest snapshot are fine: rotation
//    prunes old snapshots by design.)
bool cross_validate(const std::string& dir, const JournalSummary& js) {
  bool ok = true;
  std::error_code ec;
  for (const auto& [id, ev] : js.last_events) {
    if (id >= js.fp.num_instances) {
      std::printf(
          "%s: UNKNOWN INSTANCE ID (journal event for instance %u, "
          "fleet has %u)\n",
          dir.c_str(), id, js.fp.num_instances);
      ok = false;
      continue;
    }
    if (ev.checkpoint_seq == 0) continue;  // no checkpoint referenced
    const std::string inst_dir = dir + "/instance-" + std::to_string(id);
    u64 newest = 0;
    for (const auto& f : fs::directory_iterator(inst_dir, ec)) {
      u64 seq;
      if (f.is_regular_file(ec) &&
          parse_snap_seq(f.path().filename().string(), &seq)) {
        newest = std::max(newest, seq);
      }
    }
    if (newest < ev.checkpoint_seq) {
      std::printf(
          "%s: DANGLING CHECKPOINT REF (journal says instance %u had "
          "snapshot seq %llu, newest on disk is %llu)\n",
          inst_dir.c_str(), id,
          static_cast<unsigned long long>(ev.checkpoint_seq),
          static_cast<unsigned long long>(newest));
      ok = false;
    }
  }
  return ok;
}

// Fsck of one federation WAL (failover journal). Two record families are
// meaningful; anything else in the file is foreign and reported:
//
//  - kFederationEpoch: epoch transitions must decode and the epoch stamps
//    must be monotone nondecreasing in journal order — a regression means
//    the node re-entered an older epoch, i.e. split brain made it to disk;
//  - kVirginDelta: each payload must be a structurally valid oracle delta
//    (corpus::decode_oracle_delta enforces exact length and strictly
//    ascending unique cell positions) and the delta epoch stamps must be
//    monotone nondecreasing too (deltas journaled for an older epoch after
//    a newer one were shipped across a fence).
//
// A torn tail is a warning (appends race SIGKILL in drills by design).
bool check_federation_wal(const std::string& path, bool dump) {
  std::vector<u8> bytes;
  std::string err;
  if (!read_file(path, &bytes, FaultCtx{}, &err)) {
    std::printf("%s: MISSING (%s)\n", path.c_str(), err.c_str());
    return false;
  }
  ParsedFile parsed = parse_records(bytes);
  bool ok = true;
  u64 epochs = 0, deltas = 0, foreign = 0;
  u64 last_epoch = 0, last_delta_epoch = 0;
  bool have_epoch = false, have_delta = false;
  for (const RecordView& rec : parsed.records) {
    if (rec.type == RecordType::kFederationEpoch) {
      FederationEpochRecord fe;
      if (!parse_federation_epoch(rec.payload, &fe)) {
        std::printf("%s: INVALID (epoch record %llu failed to decode)\n",
                    path.c_str(), static_cast<unsigned long long>(epochs));
        ok = false;
        continue;
      }
      ++epochs;
      if (have_epoch && fe.epoch < last_epoch) {
        std::printf(
            "%s: EPOCH REGRESSION (transition to epoch %llu after %llu — "
            "split brain reached the journal)\n",
            path.c_str(), static_cast<unsigned long long>(fe.epoch),
            static_cast<unsigned long long>(last_epoch));
        ok = false;
      }
      last_epoch = fe.epoch;
      have_epoch = true;
      if (dump) {
        std::printf("  epoch %-8llu leader=%u rank=%u reason=%s\n",
                    static_cast<unsigned long long>(fe.epoch), fe.leader,
                    fe.rank,
                    epoch_reason_name(static_cast<EpochReason>(fe.reason)));
      }
    } else if (rec.type == RecordType::kVirginDelta) {
      corpus::OracleDelta d;
      if (!corpus::decode_oracle_delta(rec.payload, &d)) {
        std::printf("%s: INVALID (malformed oracle delta record %llu)\n",
                    path.c_str(), static_cast<unsigned long long>(deltas));
        ok = false;
        continue;
      }
      ++deltas;
      if (have_delta && d.epoch < last_delta_epoch) {
        std::printf(
            "%s: DELTA EPOCH REGRESSION (delta stamped epoch %llu after "
            "%llu — a delta crossed an epoch fence)\n",
            path.c_str(), static_cast<unsigned long long>(d.epoch),
            static_cast<unsigned long long>(last_delta_epoch));
        ok = false;
      }
      last_delta_epoch = d.epoch;
      have_delta = true;
      if (dump) {
        std::printf("  delta epoch=%llu seq=%llu map=%u cells=%zu\n",
                    static_cast<unsigned long long>(d.epoch),
                    static_cast<unsigned long long>(d.seq), d.map_kind,
                    d.cells.size());
      }
    } else {
      ++foreign;
      std::printf("%s: FOREIGN RECORD (%s does not belong in a federation "
                  "WAL)\n",
                  path.c_str(), record_type_name(rec.type));
      ok = false;
    }
  }
  if (ok) {
    if (parsed.status != LoadStatus::kOk) {
      std::printf(
          "%s: ok with torn tail (%s; valid prefix %zu of %zu bytes)\n",
          path.c_str(), load_status_name(parsed.status), parsed.valid_bytes,
          bytes.size());
    } else {
      std::printf("%s: ok (%llu epoch transition(s), %llu delta(s))\n",
                  path.c_str(), static_cast<unsigned long long>(epochs),
                  static_cast<unsigned long long>(deltas));
    }
  }
  return ok;
}

// Fsck of a corpus store plus ref cross-validation: every kQueueEntryRef
// in every snapshot under `root` must resolve to a live store entry —
// a dangling ref means a resumed campaign would lose that queue entry.
bool check_corpus_dir(const std::string& root, bool dump) {
  std::error_code ec;
  std::string store_dir = root;
  if (!fs::exists(root + "/corpus.wal", ec) &&
      !fs::exists(root + "/corpus.pack", ec) &&
      fs::is_directory(root + "/corpus", ec)) {
    store_dir = root + "/corpus";
  }
  if (!fs::is_directory(store_dir, ec)) {
    std::printf("%s: MISSING (not a directory)\n", store_dir.c_str());
    return false;
  }

  corpus::CorpusStore probe(store_dir);
  const corpus::FsckReport rep = probe.fsck();
  bool ok = rep.ok;
  for (const std::string& e : rep.errors) {
    std::printf("%s: INVALID (%s)\n", store_dir.c_str(), e.c_str());
  }
  if (rep.ok) {
    if (rep.torn_tail_bytes > 0) {
      std::printf(
          "%s: ok with torn tail (%llu trailing byte(s) past the valid "
          "WAL prefix)\n",
          store_dir.c_str(),
          static_cast<unsigned long long>(rep.torn_tail_bytes));
    } else {
      std::printf("%s: ok\n", store_dir.c_str());
    }
    std::printf(
        "  pack=%s wal=%s generation=%llu entries=%llu crash_rows=%llu "
        "wal_records=%llu\n",
        rep.pack_present ? "present" : "absent",
        rep.wal_present ? "present" : "absent",
        static_cast<unsigned long long>(rep.generation),
        static_cast<unsigned long long>(rep.entries),
        static_cast<unsigned long long>(rep.crash_rows),
        static_cast<unsigned long long>(rep.wal_records));
  }
  if (dump) {
    for (const char* name : {"corpus.pack", "corpus.wal"}) {
      const std::string path = store_dir + "/" + name;
      std::vector<u8> bytes;
      std::string err;
      if (!read_file(path, &bytes, FaultCtx{}, &err)) continue;
      std::printf("  %s:\n", name);
      dump_records(parse_records(bytes));
    }
  }
  if (!rep.ok) return false;

  // Snapshot store refs: any snap-*.bms anywhere under `root` that
  // references a content hash the store no longer holds is a resume-time
  // data loss. Skipped when the store itself is damaged (refs against a
  // partial live set would be noise).
  u64 refs = 0, dangling = 0;
  std::vector<std::string> fed_wals;
  for (auto it = fs::recursive_directory_iterator(
           root, fs::directory_options::skip_permission_denied, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    u64 seq;
    if (ec || !it->is_regular_file(ec)) continue;
    if (it->path().filename().string() == kFederationWalName) {
      fed_wals.push_back(it->path().string());
      continue;
    }
    if (!parse_snap_seq(it->path().filename().string(), &seq)) {
      continue;
    }
    std::vector<u8> bytes;
    std::string err;
    if (!read_file(it->path().string(), &bytes, FaultCtx{}, &err)) continue;
    DecodeResult dec = decode_snapshot(bytes);
    if (dec.status != LoadStatus::kOk) continue;  // reported by --fleet
    for (const QueueEntrySnap& e : dec.snapshot->entries) {
      if (!e.in_store) continue;
      ++refs;
      if (!std::binary_search(rep.live_hashes.begin(),
                              rep.live_hashes.end(), e.content_hash)) {
        std::printf(
            "%s: DANGLING STORE REF (queue entry %016llx not in %s)\n",
            it->path().c_str(),
            static_cast<unsigned long long>(e.content_hash),
            store_dir.c_str());
        ++dangling;
        ok = false;
      }
    }
  }
  std::printf("  %llu store ref(s) across snapshots, %llu dangling\n",
              static_cast<unsigned long long>(refs),
              static_cast<unsigned long long>(dangling));

  // Federation WALs left by failover drills ride along in the same tree;
  // audit each one (epoch monotonicity, delta well-formedness).
  std::sort(fed_wals.begin(), fed_wals.end());
  for (const std::string& wal : fed_wals) {
    ok = check_federation_wal(wal, dump) && ok;
  }
  return ok;
}

bool check_fleet_dir(const std::string& dir, bool dump) {
  JournalSummary js;
  bool ok = check_journal(dir + "/fleet.journal", dump, &js);
  std::error_code ec;
  std::vector<std::string> snaps;
  for (const auto& inst : fs::directory_iterator(dir, ec)) {
    if (!inst.is_directory(ec)) continue;
    for (const auto& f : fs::directory_iterator(inst.path(), ec)) {
      if (f.path().extension() == ".bms") {
        snaps.push_back(f.path().string());
      }
    }
  }
  std::sort(snaps.begin(), snaps.end());
  for (const std::string& path : snaps) {
    ok = check_snapshot_file(path, dump) && ok;
  }
  if (js.usable) ok = cross_validate(dir, js) && ok;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool dump = false;
  std::string fleet_dir;
  std::string corpus_dir;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strcmp(argv[i], "--fleet") == 0 && i + 1 < argc) {
      fleet_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--corpus") == 0 && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (fleet_dir.empty() && corpus_dir.empty() && files.empty()) {
    std::fprintf(stderr,
                 "usage: statecheck [--dump] <snapshot.bms>...\n"
                 "       statecheck [--dump] --fleet <dir>\n"
                 "       statecheck [--dump] --corpus <dir>\n");
    return 2;
  }

  bool ok = true;
  if (!fleet_dir.empty()) ok = check_fleet_dir(fleet_dir, dump) && ok;
  if (!corpus_dir.empty()) ok = check_corpus_dir(corpus_dir, dump) && ok;
  for (const std::string& path : files) {
    ok = check_snapshot_file(path, dump) && ok;
  }
  return ok ? 0 : 1;
}
