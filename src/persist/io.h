// Fault-injectable file I/O for the persistence layer.
//
// Every byte the checkpoint/journal code moves to or from disk goes through
// these helpers, which consult a FaultInjector at four sites modelling the
// ways real filesystems betray a fuzzing service:
//
//   kNoSpace      write fails before any byte lands (ENOSPC)
//   kShortWrite   only a prefix reaches disk, then "the process dies" —
//                 the torn file stays on disk and the call reports failure
//   kRenameFail   the temp file is fully written but the atomic
//                 temp -> final rename is lost (commit never happens)
//   kCorruptRead  a read succeeds but returns bit-flipped data
//
// The commit protocol for whole files is write-temp + rename: the final
// path either holds the complete previous version or the complete new one,
// never a mix. Journals append in place instead — a torn append is exactly
// the truncated tail parse_records() recovers from.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/fault.h"
#include "util/types.h"

namespace bigmap::persist {

// Injector + instance id, threaded through every I/O call. A null injector
// means "real I/O only".
struct FaultCtx {
  FaultInjector* injector = nullptr;
  u32 instance = 0;

  bool fire(FaultSite site) const {
    return injector != nullptr && injector->fire(site, instance);
  }
};

// Writes `bytes` to `path` via a sibling temp file and an atomic rename.
// On failure (real or injected) returns false and sets *err; the final
// path is never left torn (an injected short write tears the *temp* file
// and, to model a crash immediately after a rename of partially-flushed
// data, promotes it — callers recover via per-record CRCs).
bool write_file_atomic(const std::string& path, std::span<const u8> bytes,
                       const FaultCtx& fault, std::string* err);

// Appends `bytes` to `path`, creating it if absent. An injected short
// write appends only a prefix and reports failure.
bool append_file(const std::string& path, std::span<const u8> bytes,
                 const FaultCtx& fault, std::string* err);

// Reads the whole file. Returns false if the file is missing/unreadable.
// An injected corrupt read flips one deterministic byte of the content.
bool read_file(const std::string& path, std::vector<u8>* out,
               const FaultCtx& fault, std::string* err);

}  // namespace bigmap::persist
