// Shared BMSP framing: the one definition of the record framing used both
// on disk (persist/record.cpp: snapshots, journals, the corpus store) and
// on the wire (fuzzer/netfleet/wire.cpp: PeerLink frames).
//
//   stream := [u32 magic "BMSP"][u32 format_version] frame*
//   frame  := [u32 type][u32 payload_len][payload][u32 crc]
//
// All integers are little-endian; the CRC-32 (IEEE) covers type +
// payload_len + payload. Both consumers previously carried private copies
// of these constants and byte helpers — keeping them here means the disk
// and wire formats cannot drift apart.
#pragma once

#include <span>
#include <vector>

#include "util/hash.h"
#include "util/types.h"

namespace bigmap::bmsp {

inline constexpr u32 kMagic = 0x50534D42u;  // "BMSP" little-endian
inline constexpr u32 kFormatVersion = 1;
inline constexpr usize kFileHeaderSize = 8;    // magic + format_version
inline constexpr usize kRecordHeaderSize = 8;  // type + payload_len
inline constexpr usize kRecordTrailerSize = 4;  // crc

inline u32 read_u32_le(const u8* p) noexcept {
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

inline void put_u32_le(std::vector<u8>& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}

// CRC over one framed record starting at `frame` (header + payload, no
// trailer) — the value stored in, and checked against, the trailer.
inline u32 frame_crc(const u8* frame, usize payload_len) noexcept {
  return crc32({frame, kRecordHeaderSize + payload_len});
}

}  // namespace bigmap::bmsp
