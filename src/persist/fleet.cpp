#include "persist/fleet.h"

#include <filesystem>

#include "util/hash.h"

namespace bigmap::persist {

namespace fs = std::filesystem;

namespace {

// One record (header + payload + CRC) with no file header, for appending
// to an already initialized journal.
template <class Fill>
std::vector<u8> encode_bare_record(RecordType type, Fill&& fill) {
  std::vector<u8> buf;
  PayloadWriter w(buf);
  w.put_u32(static_cast<u32>(type));
  w.put_u32(0);
  const usize payload_start = buf.size();
  fill(w);
  const u32 len = static_cast<u32>(buf.size() - payload_start);
  buf[4] = static_cast<u8>(len);
  buf[5] = static_cast<u8>(len >> 8);
  buf[6] = static_cast<u8>(len >> 16);
  buf[7] = static_cast<u8>(len >> 24);
  const u32 crc = crc32({buf.data(), buf.size()});
  w.put_u32(crc);
  return buf;
}

void put_fingerprint(PayloadWriter& w, const FleetFingerprint& fp) {
  w.put_u32(fp.num_instances);
  w.put_u64(fp.base_seed);
  w.put_u64(fp.seed_stride);
  w.put_u64(fp.max_execs);
  w.put_u32(fp.scheme);
  w.put_u32(fp.metric);
  w.put_u64(fp.map_size);
}

bool get_fingerprint(PayloadReader& r, FleetFingerprint* fp) {
  return r.get_u32(&fp->num_instances) && r.get_u64(&fp->base_seed) &&
         r.get_u64(&fp->seed_stride) && r.get_u64(&fp->max_execs) &&
         r.get_u32(&fp->scheme) && r.get_u32(&fp->metric) &&
         r.get_u64(&fp->map_size);
}

void put_event(PayloadWriter& w, const InstanceEvent& ev) {
  w.put_u32(ev.instance);
  w.put_u32(ev.final_state);
  w.put_u32(ev.attempts);
  w.put_u32(ev.restarts);
  w.put_u32(ev.stalls);
  w.put_u32(ev.kills);
  w.put_u32(ev.alloc_failures);
  w.put_u32(ev.warm_restarts);
  w.put_u64(ev.execs);
  w.put_u64(ev.interesting);
  w.put_u64(ev.crashes_total);
  w.put_u64(ev.faulted_execs);
  w.put_u64(ev.injected_hangs);
  w.put_u64(ev.base_execs);
  w.put_u64(ev.base_interesting);
  w.put_u64(ev.base_crashes);
  w.put_u64(ev.base_faulted_execs);
  w.put_u64(ev.base_injected_hangs);
  w.put_u64(ev.segment_max_execs);
  w.put_u64(ev.checkpoint_seq);
}

bool get_event(PayloadReader& r, InstanceEvent* ev) {
  if (!(r.get_u32(&ev->instance) && r.get_u32(&ev->final_state) &&
        r.get_u32(&ev->attempts) && r.get_u32(&ev->restarts) &&
        r.get_u32(&ev->stalls) && r.get_u32(&ev->kills) &&
        r.get_u32(&ev->alloc_failures) && r.get_u32(&ev->warm_restarts) &&
        r.get_u64(&ev->execs) && r.get_u64(&ev->interesting) &&
        r.get_u64(&ev->crashes_total) && r.get_u64(&ev->faulted_execs) &&
        r.get_u64(&ev->injected_hangs) &&
        r.get_u64(&ev->base_execs) && r.get_u64(&ev->base_interesting) &&
        r.get_u64(&ev->base_crashes) &&
        r.get_u64(&ev->base_faulted_execs) &&
        r.get_u64(&ev->base_injected_hangs) &&
        r.get_u64(&ev->segment_max_execs))) {
    return false;
  }
  // Journals written before the checkpoint_seq field lack it; 0 = unknown.
  if (!r.get_u64(&ev->checkpoint_seq)) ev->checkpoint_seq = 0;
  return true;
}

}  // namespace

bool decode_fleet_fingerprint(std::span<const u8> payload,
                              FleetFingerprint* fp) {
  PayloadReader r(payload);
  return get_fingerprint(r, fp);
}

bool decode_instance_event(std::span<const u8> payload, InstanceEvent* ev) {
  PayloadReader r(payload);
  return get_event(r, ev);
}

FleetStore::FleetStore(std::string dir, FleetFingerprint fp, FaultCtx fault,
                       bool resume)
    : dir_(std::move(dir)), fp_(fp), fault_(fault) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (resume) {
    open_resume();
  } else {
    open_fresh();
  }
}

void FleetStore::open_fresh() {
  // Wipe everything a previous fleet left behind, then lay down the
  // journal header + fingerprint as one atomic commit.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    fs::remove_all(entry.path(), ec);
  }
  fresh_stores_ = true;

  RecordWriter rw;
  rw.append(RecordType::kFleetHeader,
            [&](PayloadWriter& w) { put_fingerprint(w, fp_); });
  std::string err;
  if (!write_file_atomic(journal_path(), rw.finish(), fault_, &err)) {
    error_ = "fleet journal init: " + err;
  }
}

void FleetStore::open_resume() {
  fresh_stores_ = false;
  std::vector<u8> bytes;
  std::string err;
  if (!read_file(journal_path(), &bytes, fault_, &err)) {
    // Nothing to resume from: degrade to a cold start with a fresh
    // journal. The per-instance directories may still hold snapshots, but
    // without budget accounting they cannot be trusted — wipe them too.
    ++journal_cold_starts_;
    open_fresh();
    return;
  }

  ParsedFile parsed = parse_records(bytes);
  if (parsed.status == LoadStatus::kBadMagic ||
      parsed.status == LoadStatus::kBadVersion) {
    error_ = std::string("fleet journal: ") +
             load_status_name(parsed.status);
    return;
  }
  if (parsed.status != LoadStatus::kOk) {
    // Torn or corrupt tail: keep the valid prefix, drop the rest. Truncate
    // the file so future appends continue from a clean boundary.
    ++journal_tail_dropped_;
    std::error_code ec;
    fs::resize_file(journal_path(), parsed.valid_bytes, ec);
  }

  if (parsed.records.empty() ||
      parsed.records.front().type != RecordType::kFleetHeader) {
    ++journal_cold_starts_;
    open_fresh();
    return;
  }

  FleetFingerprint on_disk;
  {
    PayloadReader r(parsed.records.front().payload);
    if (!get_fingerprint(r, &on_disk)) {
      error_ = "fleet journal: bad fingerprint payload";
      return;
    }
  }
  if (!(on_disk == fp_)) {
    error_ =
        "fleet journal: configuration fingerprint mismatch (directory "
        "belongs to a differently configured fleet)";
    return;
  }

  for (usize i = 1; i < parsed.records.size(); ++i) {
    if (parsed.records[i].type != RecordType::kFleetEvent) continue;
    InstanceEvent ev;
    PayloadReader r(parsed.records[i].payload);
    if (!get_event(r, &ev)) continue;
    last_events_[ev.instance] = ev;
    ++journal_events_;
  }
  resumed_ = true;
}

std::optional<InstanceEvent> FleetStore::last_event(u32 instance) const {
  const auto it = last_events_.find(instance);
  if (it == last_events_.end()) return std::nullopt;
  return it->second;
}

bool FleetStore::append_event(const InstanceEvent& ev, std::string* err) {
  const std::vector<u8> rec = encode_bare_record(
      RecordType::kFleetEvent, [&](PayloadWriter& w) { put_event(w, ev); });
  return append_file(journal_path(), rec, fault_, err);
}

CheckpointStore& FleetStore::instance_store(u32 instance) {
  auto it = stores_.find(instance);
  if (it == stores_.end()) {
    FaultCtx bound = fault_;
    bound.instance = instance;
    it = stores_
             .emplace(instance, std::make_unique<CheckpointStore>(
                                    dir_ + "/instance-" +
                                        std::to_string(instance),
                                    bound, fresh_stores_))
             .first;
  }
  return *it->second;
}

PersistStats FleetStore::stats() const {
  PersistStats s;
  s.journal_events = journal_events_;
  s.journal_tail_dropped = journal_tail_dropped_;
  s.cold_starts = journal_cold_starts_;
  for (const auto& [id, store] : stores_) {
    s.add(store->stats());
  }
  return s;
}

}  // namespace bigmap::persist
