#include "persist/checkpoint.h"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <system_error>

namespace bigmap::persist {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSnapPrefix = "snap-";
constexpr const char* kSnapSuffix = ".bms";

// Parses "snap-<seq>.bms" -> seq; returns false for anything else.
bool parse_snap_name(const std::string& name, u64* seq) {
  const std::string_view v(name);
  const std::string_view prefix(kSnapPrefix);
  const std::string_view suffix(kSnapSuffix);
  if (v.size() <= prefix.size() + suffix.size() ||
      v.substr(0, prefix.size()) != prefix ||
      v.substr(v.size() - suffix.size()) != suffix) {
    return false;
  }
  const std::string_view digits =
      v.substr(prefix.size(), v.size() - prefix.size() - suffix.size());
  u64 value = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) return false;
  *seq = value;
  return true;
}

// All snapshot sequence numbers present in `dir`, ascending.
std::vector<u64> list_snaps(const std::string& dir) {
  std::vector<u64> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    u64 seq;
    if (entry.is_regular_file(ec) &&
        parse_snap_name(entry.path().filename().string(), &seq)) {
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace

void PersistStats::add(const PersistStats& o) noexcept {
  checkpoints_written += o.checkpoints_written;
  checkpoint_bytes += o.checkpoint_bytes;
  save_failures += o.save_failures;
  checkpoints_loaded += o.checkpoints_loaded;
  recovered_torn_tail += o.recovered_torn_tail;
  recovered_bad_crc += o.recovered_bad_crc;
  recovered_version_mismatch += o.recovered_version_mismatch;
  recovered_other += o.recovered_other;
  fallbacks += o.fallbacks;
  cold_starts += o.cold_starts;
  journal_events += o.journal_events;
  journal_tail_dropped += o.journal_tail_dropped;
}

CheckpointStore::CheckpointStore(std::string dir, FaultCtx fault, bool fresh)
    : dir_(std::move(dir)), fault_(fault) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (fresh) {
    for (u64 seq : list_snaps(dir_)) {
      fs::remove(snap_path(seq), ec);
    }
    return;
  }
  // Resume: never reuse a sequence number that may already exist on disk,
  // even as a damaged file — save() must not overwrite evidence.
  const std::vector<u64> seqs = list_snaps(dir_);
  if (!seqs.empty()) {
    next_seq_.store(seqs.back() + 1, std::memory_order_relaxed);
  }
}

u64 CheckpointStore::newest_seq_on_disk() const {
  const std::vector<u64> seqs = list_snaps(dir_);
  return seqs.empty() ? 0 : seqs.back();
}

std::string CheckpointStore::snap_path(u64 seq) const {
  return dir_ + "/" + kSnapPrefix + std::to_string(seq) + kSnapSuffix;
}

bool CheckpointStore::save(const CampaignSnapshot& s, u32 keep,
                           std::string* err) {
  const u64 seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  CampaignSnapshot stamped = s;
  stamped.checkpoint_seq = seq;
  const std::vector<u8> bytes = encode_snapshot(stamped);
  if (!write_file_atomic(snap_path(seq), bytes, fault_, err)) {
    save_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);

  // Prune oldest snapshots beyond the retention window. Failures here are
  // ignorable: extra old snapshots cost disk, not correctness.
  std::vector<u64> seqs = list_snaps(dir_);
  if (keep > 0 && seqs.size() > keep) {
    std::error_code ec;
    for (usize i = 0; i + keep < seqs.size(); ++i) {
      fs::remove(snap_path(seqs[i]), ec);
    }
  }
  return true;
}

void CheckpointStore::classify_failure(LoadStatus s) noexcept {
  switch (s) {
    case LoadStatus::kTruncatedTail:
    case LoadStatus::kNoCommit:
      recovered_torn_tail_.fetch_add(1, std::memory_order_relaxed);
      break;
    case LoadStatus::kBadCrc:
      recovered_bad_crc_.fetch_add(1, std::memory_order_relaxed);
      break;
    case LoadStatus::kBadMagic:
    case LoadStatus::kBadVersion:
      recovered_version_mismatch_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      recovered_other_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

CheckpointStore::LoadOutcome CheckpointStore::load_latest() {
  LoadOutcome out;
  const std::vector<u64> seqs = list_snaps(dir_);
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    std::vector<u8> bytes;
    std::string err;
    if (!read_file(snap_path(*it), &bytes, fault_, &err)) {
      out.last_failure = LoadStatus::kMissing;
      classify_failure(LoadStatus::kMissing);
      ++out.snapshots_skipped;
      continue;
    }
    DecodeResult dec = decode_snapshot(bytes);
    if (dec.status != LoadStatus::kOk) {
      out.last_failure = dec.status;
      classify_failure(dec.status);
      ++out.snapshots_skipped;
      continue;
    }
    out.snapshot = std::move(dec.snapshot);
    checkpoints_loaded_.fetch_add(1, std::memory_order_relaxed);
    if (out.snapshots_skipped > 0) {
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
    return out;
  }
  cold_starts_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

PersistStats CheckpointStore::stats() const noexcept {
  PersistStats s;
  s.checkpoints_written = checkpoints_written_.load(std::memory_order_relaxed);
  s.checkpoint_bytes = checkpoint_bytes_.load(std::memory_order_relaxed);
  s.save_failures = save_failures_.load(std::memory_order_relaxed);
  s.checkpoints_loaded = checkpoints_loaded_.load(std::memory_order_relaxed);
  s.recovered_torn_tail =
      recovered_torn_tail_.load(std::memory_order_relaxed);
  s.recovered_bad_crc = recovered_bad_crc_.load(std::memory_order_relaxed);
  s.recovered_version_mismatch =
      recovered_version_mismatch_.load(std::memory_order_relaxed);
  s.recovered_other = recovered_other_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  s.cold_starts = cold_starts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bigmap::persist
