#include "persist/io.h"

#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>

#include <filesystem>

#include "util/syscall.h"

namespace bigmap::persist {
namespace {

// fd-based file I/O through util/syscall.h: chaos runs are signal-heavy
// (coordinator SIGKILLs, drill kills, sanitizer handlers), and an
// fstream's failbit cannot distinguish a routine EINTR from real damage.
// The raw descriptor path retries EINTR at the lowest level and reports
// the actual errno.

struct Fd {
  int fd = -1;
  explicit Fd(int f) : fd(f) {}
  ~Fd() {
    if (fd >= 0) xclose(fd);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
};

bool write_all_to(const std::string& path, int flags,
                  std::span<const u8> bytes, std::string* io_err) {
  Fd f(::open(path.c_str(), flags, 0644));
  if (f.fd < 0) {
    if (io_err != nullptr) {
      *io_err = "open " + path + ": " + ::strerror(errno);
    }
    return false;
  }
  if (write_full(f.fd, bytes.data(), bytes.size()) < 0) {
    if (io_err != nullptr) {
      *io_err = "write " + path + ": " + ::strerror(errno);
    }
    return false;
  }
  return true;
}

}  // namespace

bool write_file_atomic(const std::string& path, std::span<const u8> bytes,
                       const FaultCtx& fault, std::string* err) {
  if (fault.fire(FaultSite::kNoSpace)) {
    if (err != nullptr) *err = "write " + path + ": no space (injected)";
    return false;
  }

  const std::string tmp = path + ".tmp";
  const bool short_write = fault.fire(FaultSite::kShortWrite);
  const std::span<const u8> to_write =
      short_write ? bytes.first(bytes.size() / 2) : bytes;
  std::string io_err;
  if (!write_all_to(tmp, O_WRONLY | O_CREAT | O_TRUNC, to_write, &io_err)) {
    if (err != nullptr) *err = io_err;
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return false;
  }

  if (short_write) {
    // Model a crash after the torn temp file was already renamed into
    // place (journal-style tear): promote it so load paths must recover
    // from a truncated tail, then report the commit as failed.
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (err != nullptr) *err = "write " + path + ": short write (injected)";
    return false;
  }

  if (fault.fire(FaultSite::kRenameFail)) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    if (err != nullptr) {
      *err = "rename " + tmp + " -> " + path + " failed (injected)";
    }
    return false;
  }

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (err != nullptr) {
      *err = "rename " + tmp + " -> " + path + ": " + ec.message();
    }
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

bool append_file(const std::string& path, std::span<const u8> bytes,
                 const FaultCtx& fault, std::string* err) {
  if (fault.fire(FaultSite::kNoSpace)) {
    if (err != nullptr) *err = "append " + path + ": no space (injected)";
    return false;
  }
  const bool short_write = fault.fire(FaultSite::kShortWrite);
  const std::span<const u8> to_write =
      short_write ? bytes.first(bytes.size() / 2) : bytes;

  std::string io_err;
  if (!write_all_to(path, O_WRONLY | O_CREAT | O_APPEND, to_write,
                    &io_err)) {
    if (err != nullptr) *err = io_err;
    return false;
  }
  if (short_write) {
    if (err != nullptr) *err = "append " + path + ": short write (injected)";
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::vector<u8>* out,
               const FaultCtx& fault, std::string* err) {
  Fd f(::open(path.c_str(), O_RDONLY));
  if (f.fd < 0) {
    if (err != nullptr) *err = "read " + path + ": cannot open";
    return false;
  }
  struct stat st;
  if (::fstat(f.fd, &st) != 0) {
    if (err != nullptr) {
      *err = "read " + path + ": " + ::strerror(errno);
    }
    return false;
  }
  out->resize(static_cast<usize>(st.st_size));
  if (!out->empty()) {
    const ssize_t r = read_full(f.fd, out->data(), out->size());
    if (r < 0) {
      if (err != nullptr) {
        *err = "read " + path + ": " + ::strerror(errno);
      }
      return false;
    }
    // A file shrinking between fstat and read would be a caller bug (these
    // files are immutable once renamed into place); surface it as damage
    // rather than returning silently short data.
    if (static_cast<usize>(r) != out->size()) {
      if (err != nullptr) *err = "read " + path + ": truncated mid-read";
      return false;
    }
  }
  if (!out->empty() && fault.fire(FaultSite::kCorruptRead)) {
    // Deterministic single-byte flip in the middle of the file: past the
    // header, inside some record's payload or checksum.
    (*out)[out->size() / 2] ^= 0xA5;
  }
  return true;
}

}  // namespace bigmap::persist
