#include "persist/io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace bigmap::persist {
namespace {

bool write_span(std::ofstream& f, std::span<const u8> bytes) {
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(f);
}

}  // namespace

bool write_file_atomic(const std::string& path, std::span<const u8> bytes,
                       const FaultCtx& fault, std::string* err) {
  if (fault.fire(FaultSite::kNoSpace)) {
    if (err != nullptr) *err = "write " + path + ": no space (injected)";
    return false;
  }

  const std::string tmp = path + ".tmp";
  const bool short_write = fault.fire(FaultSite::kShortWrite);
  const std::span<const u8> to_write =
      short_write ? bytes.first(bytes.size() / 2) : bytes;
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f || !write_span(f, to_write)) {
      if (err != nullptr) *err = "write " + path + ".tmp failed";
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }

  if (short_write) {
    // Model a crash after the torn temp file was already renamed into
    // place (journal-style tear): promote it so load paths must recover
    // from a truncated tail, then report the commit as failed.
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (err != nullptr) *err = "write " + path + ": short write (injected)";
    return false;
  }

  if (fault.fire(FaultSite::kRenameFail)) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    if (err != nullptr) {
      *err = "rename " + tmp + " -> " + path + " failed (injected)";
    }
    return false;
  }

  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (err != nullptr) {
      *err = "rename " + tmp + " -> " + path + ": " + ec.message();
    }
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

bool append_file(const std::string& path, std::span<const u8> bytes,
                 const FaultCtx& fault, std::string* err) {
  if (fault.fire(FaultSite::kNoSpace)) {
    if (err != nullptr) *err = "append " + path + ": no space (injected)";
    return false;
  }
  const bool short_write = fault.fire(FaultSite::kShortWrite);
  const std::span<const u8> to_write =
      short_write ? bytes.first(bytes.size() / 2) : bytes;

  std::ofstream f(path, std::ios::binary | std::ios::app);
  if (!f || !write_span(f, to_write)) {
    if (err != nullptr) *err = "append " + path + " failed";
    return false;
  }
  if (short_write) {
    if (err != nullptr) *err = "append " + path + ": short write (injected)";
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::vector<u8>* out,
               const FaultCtx& fault, std::string* err) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) {
    if (err != nullptr) *err = "read " + path + ": cannot open";
    return false;
  }
  const std::streamsize size = f.tellg();
  f.seekg(0);
  out->resize(static_cast<usize>(size));
  if (size > 0 &&
      !f.read(reinterpret_cast<char*>(out->data()), size)) {
    if (err != nullptr) *err = "read " + path + " failed";
    return false;
  }
  if (!out->empty() && fault.fire(FaultSite::kCorruptRead)) {
    // Deterministic single-byte flip in the middle of the file: past the
    // header, inside some record's payload or checksum.
    (*out)[out->size() / 2] ^= 0xA5;
  }
  return true;
}

}  // namespace bigmap::persist
