// Crash-consistent on-disk record format for campaign persistence.
//
// Every persisted file — per-instance checkpoint snapshots and the fleet
// journal — is a sequence of self-checking records behind a fixed file
// header, in the style of CalicoDB/RocksDB WALs:
//
//   file   := [u32 magic "BMSP"][u32 format_version] record*
//   record := [u32 type][u32 payload_len][payload][u32 crc]
//
// All integers are little-endian. The CRC-32 (IEEE, the same crc32() the
// coverage maps use) covers type, payload_len, and the payload, so a torn
// or bit-flipped record can never be mistaken for a valid one. Readers
// stop at the first incomplete or corrupt record and report how far the
// valid prefix reached — the "truncated tail" recovery rule: everything
// before the damage is usable, everything after is discarded.
//
// Snapshot files additionally end with a kCommit record; a snapshot whose
// valid prefix lacks the commit marker was torn mid-write and is rejected
// as a whole (checkpoint.h then falls back to the previous snapshot).
// Journals have no commit marker: each record is an independent event and
// a torn tail simply drops the last partial event.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "persist/framing.h"
#include "util/types.h"

namespace bigmap::persist {

// The framing itself (magic, version, header/trailer sizes, byte helpers)
// lives in persist/framing.h and is shared with the netfleet wire format.
inline constexpr u32 kMagic = bmsp::kMagic;
inline constexpr u32 kFormatVersion = bmsp::kFormatVersion;
inline constexpr usize kFileHeaderSize = bmsp::kFileHeaderSize;
inline constexpr usize kRecordHeaderSize = bmsp::kRecordHeaderSize;
inline constexpr usize kRecordTrailerSize = bmsp::kRecordTrailerSize;

// Record types (v1). Values are part of the on-disk format — append only.
enum class RecordType : u32 {
  kCampaignHeader = 1,  // scheme/metric/seed/map geometry/sequence number
  kCounters = 2,        // resumable CampaignResult counters
  kRngState = 3,        // campaign + mutator xoshiro256 streams
  kQueueMeta = 4,       // entry count, top_rated geometry
  kQueueEntry = 5,      // one SeedQueue entry (repeated)
  kTopRated = 6,        // per-position top_entry/top_factor arrays
  kVirginMap = 7,       // one virgin map (queue/crash/hang; repeated)
  kMapState = 8,        // two-level index bitmap + used_key/saturated
  kTriage = 9,          // found bug ids + crashwalk stack hashes
  kCommit = 10,         // snapshot completeness marker (always last)
  kFleetHeader = 11,    // fleet journal: config fingerprint
  kFleetEvent = 12,     // fleet journal: one instance lifecycle event
  kCorpusEntry = 13,    // corpus store: one deduplicated input (WAL + pack)
  kCorpusCrash = 14,    // corpus store: one crash-triage index row
  kCorpusTombstone = 15,  // corpus store WAL: entry dropped by trimming
  kCorpusMeta = 16,     // corpus pack: live entry/crash counts
  kQueueEntryRef = 17,  // snapshot: queue entry by corpus content hash
  kCycleCursor = 18,    // snapshot: main-loop cycle cursor (stream-exact resume)
  kTracingState = 19,   // snapshot: coverage-guided tracing lifetime counters
  kFederationEpoch = 20,  // federation WAL: epoch transition (election/rejoin)
  kVirginDelta = 21,    // federation WAL: one oracle virgin-map delta record
};

const char* record_type_name(RecordType t) noexcept;

// Why a load (of a whole file or of one snapshot) did not produce a clean
// result. Ordered so "worse" causes don't shadow "clean" ones in tests.
enum class LoadStatus : u8 {
  kOk = 0,
  kMissing,          // file does not exist / cannot be read
  kBadMagic,         // not a BMSP file
  kBadVersion,       // format_version from a different (future) layout
  kTruncatedTail,    // valid prefix, then an incomplete record
  kBadCrc,           // valid prefix, then a checksum mismatch
  kNoCommit,         // snapshot parsed but the commit marker is absent
  kBadPayload,       // a record's payload failed structural decoding
  kMismatch,         // decoded fine but belongs to a different campaign
};

const char* load_status_name(LoadStatus s) noexcept;

// --- encoding ---------------------------------------------------------------

// Append-only little-endian payload builder.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::vector<u8>& out) : out_(out) {}

  void put_u8(u8 v) { out_.push_back(v); }
  void put_u32(u32 v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_u64(u64 v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<u8>(v >> (8 * i)));
  }
  void put_f64(double v);
  void put_bytes(std::span<const u8> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }

 private:
  std::vector<u8>& out_;
};

// Bounds-checked little-endian payload reader. Every getter returns false
// (and leaves the output untouched) past the end — decoding never reads out
// of bounds, whatever the payload contains.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const u8> data) : data_(data) {}

  bool get_u8(u8* v);
  bool get_u32(u32* v);
  bool get_u64(u64* v);
  bool get_f64(double* v);
  bool get_bytes(usize n, std::span<const u8>* out);
  bool done() const noexcept { return pos_ == data_.size(); }
  usize remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const u8> data_;
  usize pos_ = 0;
};

// Serializes records into one contiguous buffer, starting with the file
// header. finish() returns the buffer; the writer is then exhausted.
class RecordWriter {
 public:
  RecordWriter();

  // Appends one record; `fill` receives a PayloadWriter positioned at the
  // record's payload.
  template <class Fill>
  void append(RecordType type, Fill&& fill) {
    begin_record(type);
    PayloadWriter w(buf_);
    fill(w);
    end_record();
  }

  std::vector<u8> finish() { return std::move(buf_); }

 private:
  void begin_record(RecordType type);
  void end_record();

  std::vector<u8> buf_;
  usize payload_start_ = 0;  // offset of current record's payload
  usize header_start_ = 0;   // offset of current record's type field
};

struct RecordView {
  RecordType type{};
  std::span<const u8> payload;
};

// Parses the valid prefix of a record file. `records` holds every record
// up to the first damage; `status` explains why parsing stopped (kOk when
// the whole buffer was consumed cleanly). `valid_bytes` is the offset the
// valid prefix reaches — a journal can be safely truncated to it.
struct ParsedFile {
  LoadStatus status = LoadStatus::kOk;
  std::vector<RecordView> records;
  usize valid_bytes = 0;
};

ParsedFile parse_records(std::span<const u8> file);

}  // namespace bigmap::persist
