#include "persist/snapshot.h"

#include <cstring>

namespace bigmap::persist {
namespace {

// Virgin-map subtype tags inside kVirginMap records.
enum class VirginKind : u8 { kQueue = 0, kCrash = 1, kHang = 2 };

void put_u32_vec(PayloadWriter& w, const std::vector<u32>& v) {
  w.put_u64(v.size());
  for (u32 x : v) w.put_u32(x);
}

void put_u64_vec(PayloadWriter& w, const std::vector<u64>& v) {
  w.put_u64(v.size());
  for (u64 x : v) w.put_u64(x);
}

bool get_u32_vec(PayloadReader& r, std::vector<u32>* out) {
  u64 n;
  if (!r.get_u64(&n) || n * 4 > r.remaining()) return false;
  out->resize(static_cast<usize>(n));
  for (u32& x : *out) {
    if (!r.get_u32(&x)) return false;
  }
  return true;
}

bool get_u64_vec(PayloadReader& r, std::vector<u64>* out) {
  u64 n;
  if (!r.get_u64(&n) || n * 8 > r.remaining()) return false;
  out->resize(static_cast<usize>(n));
  for (u64& x : *out) {
    if (!r.get_u64(&x)) return false;
  }
  return true;
}

bool get_byte_vec(PayloadReader& r, std::vector<u8>* out) {
  u64 n;
  if (!r.get_u64(&n) || n > r.remaining()) return false;
  std::span<const u8> bytes;
  if (!r.get_bytes(static_cast<usize>(n), &bytes)) return false;
  out->assign(bytes.begin(), bytes.end());
  return true;
}

}  // namespace

std::vector<u8> encode_snapshot(const CampaignSnapshot& s) {
  RecordWriter rw;

  rw.append(RecordType::kCampaignHeader, [&](PayloadWriter& w) {
    w.put_u32(s.scheme);
    w.put_u32(s.metric);
    w.put_u64(s.seed);
    w.put_u32(s.instance_id);
    w.put_u64(s.map_size);
    w.put_u64(s.virgin_size);
    w.put_u64(s.checkpoint_seq);
  });

  rw.append(RecordType::kCounters, [&](PayloadWriter& w) {
    w.put_u64(s.execs);
    w.put_u64(s.seed_execs);
    w.put_f64(s.seed_seconds);
    w.put_u64(s.interesting);
    w.put_u64(s.hangs);
    w.put_u64(s.trim_execs);
    w.put_u64(s.trimmed_bytes);
    w.put_u64(s.faulted_execs);
    w.put_u64(s.injected_hangs);
    w.put_u64(s.crashes_total);
    w.put_u64(s.crashes_afl_unique);
  });

  // Additive (like kCycleCursor): readers that predate the record skip it,
  // snapshots that lack it decode with zeroed tracing counters.
  rw.append(RecordType::kTracingState, [&](PayloadWriter& w) {
    w.put_u64(s.tracing_untraced_execs);
    w.put_u64(s.tracing_traced_execs);
    w.put_u64(s.tracing_oracle_fires);
    w.put_u64(s.tracing_reexec_ns);
  });

  rw.append(RecordType::kRngState, [&](PayloadWriter& w) {
    for (u64 v : s.rng_state) w.put_u64(v);
    for (u64 v : s.mutator_rng_state) w.put_u64(v);
  });

  rw.append(RecordType::kQueueMeta, [&](PayloadWriter& w) {
    w.put_u64(s.entries.size());
    w.put_u64(s.top_entry.size());
    w.put_u64(s.top_covered);
  });

  rw.append(RecordType::kCycleCursor, [&](PayloadWriter& w) {
    w.put_u8(s.in_cycle ? 1 : 0);
    w.put_u64(s.cycle_qi);
    w.put_u64(s.cycle_len);
    w.put_u64(s.cycle_avg_ns);
  });

  for (const QueueEntrySnap& e : s.entries) {
    if (e.in_store) {
      rw.append(RecordType::kQueueEntryRef, [&](PayloadWriter& w) {
        w.put_u64(e.content_hash);
        w.put_u64(e.stored_len);
        w.put_u64(e.exec_ns);
        w.put_u32(e.bitmap_hash);
        w.put_u32(e.depth);
        w.put_u8(e.favored ? 1 : 0);
        w.put_u8(e.was_fuzzed ? 1 : 0);
        w.put_u64(e.times_selected);
      });
      continue;
    }
    rw.append(RecordType::kQueueEntry, [&](PayloadWriter& w) {
      w.put_u64(e.data.size());
      w.put_bytes(e.data);
      w.put_u64(e.exec_ns);
      w.put_u32(e.bitmap_hash);
      w.put_u32(e.depth);
      w.put_u8(e.favored ? 1 : 0);
      w.put_u8(e.was_fuzzed ? 1 : 0);
      w.put_u64(e.times_selected);
    });
  }

  rw.append(RecordType::kTopRated, [&](PayloadWriter& w) {
    put_u32_vec(w, s.top_entry);
    put_u64_vec(w, s.top_factor);
  });

  const std::vector<u8>* virgins[3] = {&s.virgin_queue, &s.virgin_crash,
                                       &s.virgin_hang};
  for (u8 kind = 0; kind < 3; ++kind) {
    rw.append(RecordType::kVirginMap, [&](PayloadWriter& w) {
      w.put_u8(kind);
      w.put_u64(virgins[kind]->size());
      w.put_bytes(*virgins[kind]);
    });
  }

  rw.append(RecordType::kMapState, [&](PayloadWriter& w) {
    w.put_u8(s.has_two_level ? 1 : 0);
    if (s.has_two_level) {
      w.put_u32(s.used_key);
      w.put_u64(s.saturated_updates);
      put_u32_vec(w, s.index_bitmap);
    }
  });

  rw.append(RecordType::kTriage, [&](PayloadWriter& w) {
    put_u32_vec(w, s.bug_ids);
    put_u64_vec(w, s.stack_hashes);
  });

  rw.append(RecordType::kCommit, [&](PayloadWriter& w) {
    w.put_u64(s.checkpoint_seq);
  });

  return rw.finish();
}

DecodeResult decode_snapshot(std::span<const u8> file) {
  DecodeResult out;
  ParsedFile parsed = parse_records(file);
  if (parsed.status != LoadStatus::kOk) {
    out.status = parsed.status;
    return out;
  }
  if (parsed.records.empty() ||
      parsed.records.back().type != RecordType::kCommit) {
    out.status = LoadStatus::kNoCommit;
    return out;
  }

  CampaignSnapshot s;
  bool saw_header = false;
  u64 declared_entries = 0;
  auto fail = [&] {
    out.status = LoadStatus::kBadPayload;
    return out;
  };

  for (const RecordView& rec : parsed.records) {
    PayloadReader r(rec.payload);
    switch (rec.type) {
      case RecordType::kCampaignHeader: {
        if (!r.get_u32(&s.scheme) || !r.get_u32(&s.metric) ||
            !r.get_u64(&s.seed) || !r.get_u32(&s.instance_id) ||
            !r.get_u64(&s.map_size) || !r.get_u64(&s.virgin_size) ||
            !r.get_u64(&s.checkpoint_seq)) {
          return fail();
        }
        saw_header = true;
        break;
      }
      case RecordType::kCounters: {
        if (!r.get_u64(&s.execs) || !r.get_u64(&s.seed_execs) ||
            !r.get_f64(&s.seed_seconds) || !r.get_u64(&s.interesting) ||
            !r.get_u64(&s.hangs) || !r.get_u64(&s.trim_execs) ||
            !r.get_u64(&s.trimmed_bytes) || !r.get_u64(&s.faulted_execs) ||
            !r.get_u64(&s.injected_hangs) || !r.get_u64(&s.crashes_total) ||
            !r.get_u64(&s.crashes_afl_unique)) {
          return fail();
        }
        break;
      }
      case RecordType::kTracingState: {
        if (!r.get_u64(&s.tracing_untraced_execs) ||
            !r.get_u64(&s.tracing_traced_execs) ||
            !r.get_u64(&s.tracing_oracle_fires) ||
            !r.get_u64(&s.tracing_reexec_ns)) {
          return fail();
        }
        break;
      }
      case RecordType::kRngState: {
        for (u64& v : s.rng_state) {
          if (!r.get_u64(&v)) return fail();
        }
        for (u64& v : s.mutator_rng_state) {
          if (!r.get_u64(&v)) return fail();
        }
        break;
      }
      case RecordType::kQueueMeta: {
        u64 positions;
        if (!r.get_u64(&declared_entries) || !r.get_u64(&positions) ||
            !r.get_u64(&s.top_covered)) {
          return fail();
        }
        s.entries.reserve(static_cast<usize>(declared_entries));
        break;
      }
      case RecordType::kQueueEntry: {
        QueueEntrySnap e;
        u64 len;
        if (!r.get_u64(&len) || len > r.remaining()) return fail();
        std::span<const u8> bytes;
        if (!r.get_bytes(static_cast<usize>(len), &bytes)) return fail();
        e.data.assign(bytes.begin(), bytes.end());
        u8 fav, fuzzed;
        if (!r.get_u64(&e.exec_ns) || !r.get_u32(&e.bitmap_hash) ||
            !r.get_u32(&e.depth) || !r.get_u8(&fav) || !r.get_u8(&fuzzed) ||
            !r.get_u64(&e.times_selected)) {
          return fail();
        }
        e.favored = fav != 0;
        e.was_fuzzed = fuzzed != 0;
        s.entries.push_back(std::move(e));
        break;
      }
      case RecordType::kQueueEntryRef: {
        QueueEntrySnap e;
        u8 fav, fuzzed;
        if (!r.get_u64(&e.content_hash) || !r.get_u64(&e.stored_len) ||
            !r.get_u64(&e.exec_ns) || !r.get_u32(&e.bitmap_hash) ||
            !r.get_u32(&e.depth) || !r.get_u8(&fav) || !r.get_u8(&fuzzed) ||
            !r.get_u64(&e.times_selected)) {
          return fail();
        }
        e.in_store = true;
        e.favored = fav != 0;
        e.was_fuzzed = fuzzed != 0;
        s.entries.push_back(std::move(e));
        break;
      }
      case RecordType::kCycleCursor: {
        u8 in_cycle;
        if (!r.get_u8(&in_cycle) || !r.get_u64(&s.cycle_qi) ||
            !r.get_u64(&s.cycle_len) || !r.get_u64(&s.cycle_avg_ns)) {
          return fail();
        }
        s.in_cycle = in_cycle != 0;
        break;
      }
      case RecordType::kTopRated: {
        if (!get_u32_vec(r, &s.top_entry) ||
            !get_u64_vec(r, &s.top_factor)) {
          return fail();
        }
        break;
      }
      case RecordType::kVirginMap: {
        u8 kind;
        if (!r.get_u8(&kind) || kind > 2) return fail();
        std::vector<u8>* dst = kind == 0   ? &s.virgin_queue
                               : kind == 1 ? &s.virgin_crash
                                           : &s.virgin_hang;
        if (!get_byte_vec(r, dst)) return fail();
        break;
      }
      case RecordType::kMapState: {
        u8 two;
        if (!r.get_u8(&two)) return fail();
        s.has_two_level = two != 0;
        if (s.has_two_level) {
          if (!r.get_u32(&s.used_key) || !r.get_u64(&s.saturated_updates) ||
              !get_u32_vec(r, &s.index_bitmap)) {
            return fail();
          }
        }
        break;
      }
      case RecordType::kTriage: {
        if (!get_u32_vec(r, &s.bug_ids) ||
            !get_u64_vec(r, &s.stack_hashes)) {
          return fail();
        }
        break;
      }
      case RecordType::kCommit: {
        u64 seq;
        if (!r.get_u64(&seq) || (saw_header && seq != s.checkpoint_seq)) {
          return fail();
        }
        break;
      }
      case RecordType::kFleetHeader:
      case RecordType::kFleetEvent:
      case RecordType::kCorpusEntry:
      case RecordType::kCorpusCrash:
      case RecordType::kCorpusTombstone:
      case RecordType::kCorpusMeta:
      case RecordType::kFederationEpoch:
      case RecordType::kVirginDelta:
        // Journal / corpus-store / federation-WAL records inside a
        // snapshot file: wrong file kind.
        return fail();
    }
  }

  // Structural cross-checks: the snapshot must be internally consistent
  // before any of it is copied into live campaign state.
  if (!saw_header || s.entries.size() != declared_entries ||
      s.top_entry.size() != s.top_factor.size() ||
      s.virgin_queue.size() != s.virgin_size ||
      s.virgin_crash.size() != s.virgin_size ||
      s.virgin_hang.size() != s.virgin_size ||
      s.top_covered > s.top_entry.size() ||
      (s.has_two_level && (s.index_bitmap.size() != s.map_size ||
                           s.used_key > s.virgin_size))) {
    out.status = LoadStatus::kBadPayload;
    return out;
  }

  out.snapshot = std::move(s);
  return out;
}

}  // namespace bigmap::persist
