// Federation WAL records: the epoch-transition journal the self-healing
// federation tier (fuzzer/netfleet/failover.h) appends alongside the fleet
// state, and statecheck audits after chaos drills.
//
// The WAL is a plain BMSP record journal (file header + CRC-framed
// records, torn tails recovered by parse_records):
//
//   kFederationEpoch  one epoch transition: who leads, why, as seen by the
//                     journaling node. Epochs must be monotone within a
//                     file — a regression means split brain.
//   kVirginDelta      one oracle virgin-map delta record (payload encoded
//                     by corpus::encode_oracle_delta), journaled when
//                     shipped or applied so drill wreckage shows exactly
//                     what state crossed the wire. Epoch stamps must be
//                     monotone too.
#pragma once

#include <span>
#include <string>

#include "persist/record.h"
#include "util/types.h"

namespace bigmap::persist {

// Why an epoch transition was journaled.
enum class EpochReason : u8 {
  kInit = 0,     // node start (first epoch this node participates in)
  kElected = 1,  // leader death detected; deterministic successor chosen
  kRejoin = 2,   // observed a newer epoch and re-homed into it
  kFenced = 3,   // observed a newer epoch and latched stale-fatal
  kResumed = 4,  // probe found no newer epoch; resumed prior leadership
};

const char* epoch_reason_name(EpochReason r) noexcept;

struct FederationEpochRecord {
  u64 epoch = 0;
  u32 leader = 0;  // rank leading this epoch (from this node's view)
  u32 rank = 0;    // the journaling node
  u8 reason = static_cast<u8>(EpochReason::kInit);
};

inline void put_federation_epoch(PayloadWriter& w,
                                 const FederationEpochRecord& rec) {
  w.put_u64(rec.epoch);
  w.put_u32(rec.leader);
  w.put_u32(rec.rank);
  w.put_u8(rec.reason);
}

inline bool parse_federation_epoch(std::span<const u8> payload,
                                   FederationEpochRecord* out) {
  PayloadReader r(payload);
  FederationEpochRecord rec;
  if (!r.get_u64(&rec.epoch) || !r.get_u32(&rec.leader) ||
      !r.get_u32(&rec.rank) || !r.get_u8(&rec.reason) || !r.done()) {
    return false;
  }
  if (rec.reason > static_cast<u8>(EpochReason::kResumed)) return false;
  *out = rec;
  return true;
}

inline const char* epoch_reason_name(EpochReason r) noexcept {
  switch (r) {
    case EpochReason::kInit: return "init";
    case EpochReason::kElected: return "elected";
    case EpochReason::kRejoin: return "rejoin";
    case EpochReason::kFenced: return "fenced";
    case EpochReason::kResumed: return "resumed";
  }
  return "unknown";
}

// Conventional WAL filename inside a node's persist directory.
inline const char* kFederationWalName = "federation.wal";

inline std::string federation_wal_path(const std::string& dir) {
  return dir + "/" + kFederationWalName;
}

}  // namespace bigmap::persist
