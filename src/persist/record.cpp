#include "persist/record.h"

#include <bit>
#include <cstring>

#include "util/hash.h"

namespace bigmap::persist {

using bmsp::read_u32_le;

const char* record_type_name(RecordType t) noexcept {
  switch (t) {
    case RecordType::kCampaignHeader: return "campaign-header";
    case RecordType::kCounters: return "counters";
    case RecordType::kRngState: return "rng-state";
    case RecordType::kQueueMeta: return "queue-meta";
    case RecordType::kQueueEntry: return "queue-entry";
    case RecordType::kTopRated: return "top-rated";
    case RecordType::kVirginMap: return "virgin-map";
    case RecordType::kMapState: return "map-state";
    case RecordType::kTriage: return "triage";
    case RecordType::kCommit: return "commit";
    case RecordType::kFleetHeader: return "fleet-header";
    case RecordType::kFleetEvent: return "fleet-event";
    case RecordType::kCorpusEntry: return "corpus-entry";
    case RecordType::kCorpusCrash: return "corpus-crash";
    case RecordType::kCorpusTombstone: return "corpus-tombstone";
    case RecordType::kCorpusMeta: return "corpus-meta";
    case RecordType::kQueueEntryRef: return "queue-entry-ref";
    case RecordType::kCycleCursor: return "cycle-cursor";
    case RecordType::kTracingState: return "tracing-state";
    case RecordType::kFederationEpoch: return "federation-epoch";
    case RecordType::kVirginDelta: return "virgin-delta";
  }
  return "unknown";
}

const char* load_status_name(LoadStatus s) noexcept {
  switch (s) {
    case LoadStatus::kOk: return "ok";
    case LoadStatus::kMissing: return "missing";
    case LoadStatus::kBadMagic: return "bad-magic";
    case LoadStatus::kBadVersion: return "bad-version";
    case LoadStatus::kTruncatedTail: return "truncated-tail";
    case LoadStatus::kBadCrc: return "bad-crc";
    case LoadStatus::kNoCommit: return "no-commit";
    case LoadStatus::kBadPayload: return "bad-payload";
    case LoadStatus::kMismatch: return "mismatch";
  }
  return "unknown";
}

void PayloadWriter::put_f64(double v) {
  u64 bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

bool PayloadReader::get_u8(u8* v) {
  if (pos_ + 1 > data_.size()) return false;
  *v = data_[pos_++];
  return true;
}

bool PayloadReader::get_u32(u32* v) {
  if (pos_ + 4 > data_.size()) return false;
  *v = read_u32_le(data_.data() + pos_);
  pos_ += 4;
  return true;
}

bool PayloadReader::get_u64(u64* v) {
  if (pos_ + 8 > data_.size()) return false;
  const u8* p = data_.data() + pos_;
  *v = static_cast<u64>(read_u32_le(p)) |
       (static_cast<u64>(read_u32_le(p + 4)) << 32);
  pos_ += 8;
  return true;
}

bool PayloadReader::get_f64(double* v) {
  u64 bits;
  if (!get_u64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

bool PayloadReader::get_bytes(usize n, std::span<const u8>* out) {
  if (pos_ + n > data_.size() || pos_ + n < pos_) return false;
  *out = data_.subspan(pos_, n);
  pos_ += n;
  return true;
}

RecordWriter::RecordWriter() {
  PayloadWriter w(buf_);
  w.put_u32(kMagic);
  w.put_u32(kFormatVersion);
}

void RecordWriter::begin_record(RecordType type) {
  header_start_ = buf_.size();
  PayloadWriter w(buf_);
  w.put_u32(static_cast<u32>(type));
  w.put_u32(0);  // payload_len backpatched in end_record
  payload_start_ = buf_.size();
}

void RecordWriter::end_record() {
  const usize len = buf_.size() - payload_start_;
  const u32 len32 = static_cast<u32>(len);
  buf_[header_start_ + 4] = static_cast<u8>(len32);
  buf_[header_start_ + 5] = static_cast<u8>(len32 >> 8);
  buf_[header_start_ + 6] = static_cast<u8>(len32 >> 16);
  buf_[header_start_ + 7] = static_cast<u8>(len32 >> 24);
  // CRC covers type + payload_len + payload.
  const u32 crc = bmsp::frame_crc(buf_.data() + header_start_, len);
  PayloadWriter w(buf_);
  w.put_u32(crc);
}

ParsedFile parse_records(std::span<const u8> file) {
  ParsedFile out;
  if (file.size() < kFileHeaderSize) {
    out.status = LoadStatus::kBadMagic;
    return out;
  }
  if (read_u32_le(file.data()) != kMagic) {
    out.status = LoadStatus::kBadMagic;
    return out;
  }
  if (read_u32_le(file.data() + 4) != kFormatVersion) {
    out.status = LoadStatus::kBadVersion;
    return out;
  }
  usize pos = kFileHeaderSize;
  out.valid_bytes = pos;
  while (pos < file.size()) {
    if (pos + kRecordHeaderSize > file.size()) {
      out.status = LoadStatus::kTruncatedTail;
      return out;
    }
    const u32 type = read_u32_le(file.data() + pos);
    const u32 len = read_u32_le(file.data() + pos + 4);
    // A length that runs past the buffer is indistinguishable from a torn
    // write of a longer record.
    const usize total = kRecordHeaderSize + static_cast<usize>(len) +
                        kRecordTrailerSize;
    if (len > file.size() || pos + total > file.size()) {
      out.status = LoadStatus::kTruncatedTail;
      return out;
    }
    const u32 stored_crc =
        read_u32_le(file.data() + pos + kRecordHeaderSize + len);
    const u32 actual_crc = bmsp::frame_crc(file.data() + pos, len);
    if (stored_crc != actual_crc) {
      out.status = LoadStatus::kBadCrc;
      return out;
    }
    out.records.push_back(RecordView{
        static_cast<RecordType>(type),
        file.subspan(pos + kRecordHeaderSize, len)});
    pos += total;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace bigmap::persist
