// FleetStore: fleet-level persistence for the supervisor.
//
// Directory layout:
//
//   <dir>/fleet.journal    append-only event log (record format, no commit
//                          marker: each event is independently committed)
//   <dir>/instance-<i>/    per-instance CheckpointStore (snap-<seq>.bms)
//
// The journal starts with a kFleetHeader fingerprint of the supervisor
// configuration; resuming against a directory written by a differently
// shaped fleet is refused rather than silently merged. Each instance
// lifecycle transition (attempt finished, restart scheduled, instance
// completed/failed) appends one kFleetEvent record carrying that
// instance's health counters, so a SIGKILL'd process can rebuild exactly
// which instances still owe execs. A torn tail — the process died
// mid-append — drops only the final partial event.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "persist/checkpoint.h"
#include "persist/io.h"
#include "persist/record.h"
#include "util/types.h"

namespace bigmap::persist {

// Configuration identity a resume must match. All fields are compared.
struct FleetFingerprint {
  u32 num_instances = 0;
  u64 base_seed = 0;
  u64 seed_stride = 0;
  u64 max_execs = 0;
  u32 scheme = 0;
  u32 metric = 0;
  u64 map_size = 0;

  bool operator==(const FleetFingerprint&) const = default;
};

// One instance lifecycle event. `final_state` mirrors the supervisor's
// view: 0 = still owed budget (restarting), 1 = completed, 2 = failed,
// 3 = quarantined (parked by the procfleet coordinator; its remaining
// budget was redistributed and nothing will resume it).
//
// The base_* fields carry the supervisor's budget-segment accounting:
// counters charged to earlier cold segments of this instance (a resumed
// attempt's lifetime counters are relative to its own segment, so health =
// base + segment). segment_max_execs is the exec budget of the segment in
// flight; a resuming process must continue that budget, not restart it.
struct InstanceEvent {
  u32 instance = 0;
  u32 final_state = 0;
  u32 attempts = 0;
  u32 restarts = 0;
  u32 stalls = 0;
  u32 kills = 0;
  u32 alloc_failures = 0;
  u32 warm_restarts = 0;
  u64 execs = 0;
  u64 interesting = 0;
  u64 crashes_total = 0;
  u64 faulted_execs = 0;
  u64 injected_hangs = 0;
  u64 base_execs = 0;
  u64 base_interesting = 0;
  u64 base_crashes = 0;
  u64 base_faulted_execs = 0;
  u64 base_injected_hangs = 0;
  u64 segment_max_execs = 0;
  // Sequence number of the newest snapshot the instance's checkpoint store
  // had committed when this event was journaled (0 = none yet). statecheck
  // cross-validates it: the instance directory must still hold a snapshot
  // at least this new, otherwise the journal references state that no
  // longer exists (a dangling checkpoint reference).
  u64 checkpoint_seq = 0;
};

inline constexpr u32 kEventRunning = 0;
inline constexpr u32 kEventCompleted = 1;
inline constexpr u32 kEventFailed = 2;
inline constexpr u32 kEventQuarantined = 3;

// Raw payload decoders for journal records, shared by FleetStore's replay
// and the statecheck CLI (which inspects journals without opening a store,
// so it can validate directories whose fingerprint it does not know).
bool decode_fleet_fingerprint(std::span<const u8> payload,
                              FleetFingerprint* fp);
bool decode_instance_event(std::span<const u8> payload, InstanceEvent* ev);

class FleetStore {
 public:
  // Fresh open wipes the directory and writes a new journal header.
  // Resume open replays the existing journal (tolerating a torn tail) and
  // verifies the fingerprint; a missing or unreadable journal degrades to
  // a cold start, but a fingerprint from a different fleet shape is an
  // error (ok() == false) — resuming it would corrupt budget accounting.
  FleetStore(std::string dir, FleetFingerprint fp, FaultCtx fault,
             bool resume);

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }

  // True when resume was requested and a usable journal was replayed.
  bool resumed() const noexcept { return resumed_; }

  // Latest replayed event for `instance`, if the journal had any.
  std::optional<InstanceEvent> last_event(u32 instance) const;

  // Appends one event record. Failures (real or injected) are reported but
  // non-fatal: the run continues, the journal just loses granularity.
  bool append_event(const InstanceEvent& ev, std::string* err);

  // Per-instance checkpoint store, created on first use. Fresh fleets get
  // fresh stores; resumed fleets keep snapshots on disk.
  CheckpointStore& instance_store(u32 instance);

  // Journal-level stats plus the stats of every instance store created so
  // far.
  PersistStats stats() const;

  const std::string& dir() const noexcept { return dir_; }

 private:
  std::string journal_path() const { return dir_ + "/fleet.journal"; }
  void open_fresh();
  void open_resume();

  std::string dir_;
  FleetFingerprint fp_;
  FaultCtx fault_;
  bool fresh_stores_ = true;
  bool resumed_ = false;
  std::string error_;
  std::map<u32, InstanceEvent> last_events_;
  std::map<u32, std::unique_ptr<CheckpointStore>> stores_;

  u64 journal_events_ = 0;
  u64 journal_tail_dropped_ = 0;
  u64 journal_cold_starts_ = 0;
};

}  // namespace bigmap::persist
