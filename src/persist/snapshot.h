// CampaignSnapshot: the full resumable state of one campaign instance,
// plus its versioned record encoding.
//
// A snapshot captures everything a warm restart needs to continue a
// campaign exactly where it stopped instead of re-running from scratch:
// the seed queue with its top_rated/favored scheduling metadata, all three
// virgin maps, the BigMap index bitmap + used_key bump allocator, both RNG
// stream positions, the crash-triage identity sets, and the lifetime
// result counters the exec budget is charged against. The struct is plain
// data so tests can build arbitrary states and round-trip them.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "persist/record.h"
#include "util/types.h"

namespace bigmap::persist {

struct QueueEntrySnap {
  std::vector<u8> data;
  u64 exec_ns = 0;
  u32 bitmap_hash = 0;
  u32 depth = 0;
  bool favored = false;
  bool was_fuzzed = false;
  u64 times_selected = 0;
  // Corpus-store reference. When `in_store` the entry is encoded as a
  // kQueueEntryRef record — content hash + metadata, no bytes — and the
  // restore path resolves the bytes through the campaign's CorpusStore.
  // `stored_len` is the expected byte count, cross-checked on resolve.
  // Entries whose WAL append failed (injected I/O faults) fall back to the
  // inline kQueueEntry form so a checkpoint is always self-sufficient.
  u64 content_hash = 0;
  u64 stored_len = 0;
  bool in_store = false;
};

struct CampaignSnapshot {
  // --- identity: a snapshot only restores into the same configuration ----
  u32 scheme = 0;  // MapScheme as u32
  u32 metric = 0;  // MetricKind as u32
  u64 seed = 0;
  u32 instance_id = 0;
  u64 map_size = 0;
  u64 virgin_size = 0;  // condensed size for BigMap, map_size for flat
  u64 checkpoint_seq = 0;

  // --- resumable result counters -----------------------------------------
  u64 execs = 0;
  u64 seed_execs = 0;
  double seed_seconds = 0.0;
  u64 interesting = 0;
  u64 hangs = 0;
  u64 trim_execs = 0;
  u64 trimmed_bytes = 0;
  u64 faulted_execs = 0;
  u64 injected_hangs = 0;
  u64 crashes_total = 0;
  u64 crashes_afl_unique = 0;

  // Coverage-guided tracing counters (kTracingState record, additive like
  // kCycleCursor: a snapshot without the record restores these as zero —
  // only lifetime accounting is affected, never correctness, because the
  // oracle's breakpoint set is derived from the virgin maps + index bitmap
  // above, which are already snapshotted).
  u64 tracing_untraced_execs = 0;
  u64 tracing_traced_execs = 0;
  u64 tracing_oracle_fires = 0;
  u64 tracing_reexec_ns = 0;

  // --- RNG stream positions ----------------------------------------------
  std::array<u64, 4> rng_state{};
  std::array<u64, 4> mutator_rng_state{};

  // --- seed queue ----------------------------------------------------------
  std::vector<QueueEntrySnap> entries;
  std::vector<u32> top_entry;   // per-position winner (kNoEntry when none)
  std::vector<u64> top_factor;  // per-position winning fav factor
  u64 top_covered = 0;

  // --- main-loop cycle cursor ----------------------------------------------
  // Checkpoints are committed only at queue-entry boundaries, so restoring
  // this cursor re-enters the cycle exactly where the snapshot left off and
  // the post-resume mutation stream is byte-identical to an uninterrupted
  // run (the corpus chaos drill depends on this). A snapshot without the
  // cursor record restores to a cycle restart — the old, stream-inexact
  // behavior.
  bool in_cycle = false;  // true: resume at entry cycle_qi of the open cycle
  u64 cycle_qi = 0;       // next entry index within the cycle
  u64 cycle_len = 0;      // queue length captured at cycle start
  u64 cycle_avg_ns = 0;   // average exec_ns captured at cycle start

  // --- coverage state ------------------------------------------------------
  std::vector<u8> virgin_queue;
  std::vector<u8> virgin_crash;
  std::vector<u8> virgin_hang;
  bool has_two_level = false;
  std::vector<u32> index_bitmap;
  u32 used_key = 0;
  u64 saturated_updates = 0;

  // --- crash triage identities --------------------------------------------
  std::vector<u32> bug_ids;
  std::vector<u64> stack_hashes;
};

// Serializes the snapshot into the v1 record format (file header, records,
// trailing commit marker).
std::vector<u8> encode_snapshot(const CampaignSnapshot& s);

// Decodes a snapshot file. Any damage — bad magic/version, torn tail, CRC
// mismatch, structurally invalid payload, missing commit — yields a status
// other than kOk and no snapshot. Never reads out of bounds.
struct DecodeResult {
  LoadStatus status = LoadStatus::kOk;
  std::optional<CampaignSnapshot> snapshot;
};

DecodeResult decode_snapshot(std::span<const u8> file);

}  // namespace bigmap::persist
