// CampaignSnapshot: the full resumable state of one campaign instance,
// plus its versioned record encoding.
//
// A snapshot captures everything a warm restart needs to continue a
// campaign exactly where it stopped instead of re-running from scratch:
// the seed queue with its top_rated/favored scheduling metadata, all three
// virgin maps, the BigMap index bitmap + used_key bump allocator, both RNG
// stream positions, the crash-triage identity sets, and the lifetime
// result counters the exec budget is charged against. The struct is plain
// data so tests can build arbitrary states and round-trip them.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "persist/record.h"
#include "util/types.h"

namespace bigmap::persist {

struct QueueEntrySnap {
  std::vector<u8> data;
  u64 exec_ns = 0;
  u32 bitmap_hash = 0;
  u32 depth = 0;
  bool favored = false;
  bool was_fuzzed = false;
  u64 times_selected = 0;
};

struct CampaignSnapshot {
  // --- identity: a snapshot only restores into the same configuration ----
  u32 scheme = 0;  // MapScheme as u32
  u32 metric = 0;  // MetricKind as u32
  u64 seed = 0;
  u32 instance_id = 0;
  u64 map_size = 0;
  u64 virgin_size = 0;  // condensed size for BigMap, map_size for flat
  u64 checkpoint_seq = 0;

  // --- resumable result counters -----------------------------------------
  u64 execs = 0;
  u64 seed_execs = 0;
  double seed_seconds = 0.0;
  u64 interesting = 0;
  u64 hangs = 0;
  u64 trim_execs = 0;
  u64 trimmed_bytes = 0;
  u64 faulted_execs = 0;
  u64 injected_hangs = 0;
  u64 crashes_total = 0;
  u64 crashes_afl_unique = 0;

  // --- RNG stream positions ----------------------------------------------
  std::array<u64, 4> rng_state{};
  std::array<u64, 4> mutator_rng_state{};

  // --- seed queue ----------------------------------------------------------
  std::vector<QueueEntrySnap> entries;
  std::vector<u32> top_entry;   // per-position winner (kNoEntry when none)
  std::vector<u64> top_factor;  // per-position winning fav factor
  u64 top_covered = 0;

  // --- coverage state ------------------------------------------------------
  std::vector<u8> virgin_queue;
  std::vector<u8> virgin_crash;
  std::vector<u8> virgin_hang;
  bool has_two_level = false;
  std::vector<u32> index_bitmap;
  u32 used_key = 0;
  u64 saturated_updates = 0;

  // --- crash triage identities --------------------------------------------
  std::vector<u32> bug_ids;
  std::vector<u64> stack_hashes;
};

// Serializes the snapshot into the v1 record format (file header, records,
// trailing commit marker).
std::vector<u8> encode_snapshot(const CampaignSnapshot& s);

// Decodes a snapshot file. Any damage — bad magic/version, torn tail, CRC
// mismatch, structurally invalid payload, missing commit — yields a status
// other than kOk and no snapshot. Never reads out of bounds.
struct DecodeResult {
  LoadStatus status = LoadStatus::kOk;
  std::optional<CampaignSnapshot> snapshot;
};

DecodeResult decode_snapshot(std::span<const u8> file);

}  // namespace bigmap::persist
