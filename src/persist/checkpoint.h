// CheckpointStore: rotating, crash-consistent snapshot storage for one
// campaign instance.
//
// Layout: <dir>/snap-<seq>.bms, atomically committed (temp + rename) and
// rotated so the newest `keep` snapshots survive. Loading walks snapshots
// newest-first and returns the first one that decodes cleanly — a torn
// tail, bad checksum, stale/foreign version, or structurally bad payload
// causes a fall-back to the previous good snapshot, and exhausting them
// all is a cold start. Every recovery decision is counted so drills can
// assert the exact path taken.
//
// Thread ownership: a store belongs to one campaign attempt at a time (the
// supervisor hands it to the instance thread); stats are atomics so the
// supervisor may aggregate them after joining.
#pragma once

#include <atomic>
#include <optional>
#include <string>

#include "persist/io.h"
#include "persist/snapshot.h"
#include "util/types.h"

namespace bigmap::persist {

// Plain-value persistence accounting, aggregatable across stores. Also the
// shape SupervisorResult reports.
struct PersistStats {
  u64 checkpoints_written = 0;
  u64 checkpoint_bytes = 0;
  u64 save_failures = 0;
  u64 checkpoints_loaded = 0;
  u64 recovered_torn_tail = 0;       // fell past a torn snapshot
  u64 recovered_bad_crc = 0;         // fell past a checksum mismatch
  u64 recovered_version_mismatch = 0;  // fell past a foreign/stale format
  u64 recovered_other = 0;           // missing file / bad payload / mismatch
  u64 fallbacks = 0;                 // loads served by a non-newest snapshot
  u64 cold_starts = 0;               // loads with no usable snapshot
  u64 journal_events = 0;            // fleet journal records replayed
  u64 journal_tail_dropped = 0;      // torn journal tails discarded

  void add(const PersistStats& o) noexcept;
  u64 recoveries_total() const noexcept {
    return recovered_torn_tail + recovered_bad_crc +
           recovered_version_mismatch + recovered_other;
  }
};

class CheckpointStore {
 public:
  // Creates `dir` if needed. `fresh` wipes any snapshots already there
  // (new campaign); resume paths pass fresh = false.
  CheckpointStore(std::string dir, FaultCtx fault, bool fresh);

  const std::string& dir() const noexcept { return dir_; }

  // Encodes and atomically commits `s` as the next snapshot, then prunes
  // old ones down to `keep`. Returns false (with *err) on real or injected
  // I/O failure; previously committed snapshots are never damaged by a
  // failed save.
  bool save(const CampaignSnapshot& s, u32 keep, std::string* err);

  struct LoadOutcome {
    std::optional<CampaignSnapshot> snapshot;  // empty == cold start
    LoadStatus last_failure = LoadStatus::kOk;
    u32 snapshots_skipped = 0;  // damaged snapshots walked past
  };

  // Loads the newest snapshot that decodes cleanly, recording recovery
  // causes in stats(). Missing directory or no usable snapshot is a cold
  // start, not an error.
  LoadOutcome load_latest();

  // Next sequence number save() will use (monotone across a resumed
  // process: initialized past the newest file present on disk).
  u64 next_seq() const noexcept {
    return next_seq_.load(std::memory_order_relaxed);
  }

  // Newest snapshot sequence currently on disk (0 when none). Re-scans the
  // directory every call: in a process fleet the *workers* write snapshots
  // into this store's directory from their own processes, so in-memory
  // counters here can be stale — and next_seq()-1 may name a save that
  // failed. This is the authoritative value for journal checkpoint refs.
  u64 newest_seq_on_disk() const;

  PersistStats stats() const noexcept;

  // Adjusts the fault context (the supervisor binds the instance id).
  void set_fault(FaultCtx fault) noexcept { fault_ = fault; }

 private:
  std::string snap_path(u64 seq) const;
  void classify_failure(LoadStatus s) noexcept;

  std::string dir_;
  FaultCtx fault_;
  std::atomic<u64> next_seq_{1};

  std::atomic<u64> checkpoints_written_{0};
  std::atomic<u64> checkpoint_bytes_{0};
  std::atomic<u64> save_failures_{0};
  std::atomic<u64> checkpoints_loaded_{0};
  std::atomic<u64> recovered_torn_tail_{0};
  std::atomic<u64> recovered_bad_crc_{0};
  std::atomic<u64> recovered_version_mismatch_{0};
  std::atomic<u64> recovered_other_{0};
  std::atomic<u64> fallbacks_{0};
  std::atomic<u64> cold_starts_{0};
};

}  // namespace bigmap::persist
