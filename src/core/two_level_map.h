// TwoLevelCoverageMap: BigMap's condensed two-level coverage bitmap — the
// paper's core contribution (§IV).
//
// Layout:
//   index_bitmap    map_size entries; maps a coverage key to its condensed
//                   slot. kUnassigned (-1) until the key is first seen.
//   coverage_bitmap condensed hit counts, densely packed from slot 0.
//   used_key        bump allocator: the next free condensed slot.
//
// Update (Listing 2):
//   if (index_bitmap[E] == -1) index_bitmap[E] = used_key++;
//   coverage_bitmap[index_bitmap[E]]++;
//
// Because the index assignment is stable for the whole campaign, every other
// map operation (reset / classify / compare / hash) needs to touch only the
// [0, used_key) prefix of the coverage bitmap — cost proportional to edges
// *discovered*, not to map size. The index bitmap is touched only by update
// and is never reset (§IV-B).
//
// Hash rule (§IV-D): hashing always runs up to the *last non-zero* byte, not
// up to used_key, so a path executed before and after unrelated used_key
// growth produces the same hash.
#pragma once

#include <span>
#include <vector>

#include "core/kernels/kernels.h"
#include "core/map_options.h"
#include "core/virgin.h"
#include "util/alloc.h"
#include "util/types.h"

namespace bigmap {

class TwoLevelCoverageMap {
 public:
  explicit TwoLevelCoverageMap(const MapOptions& opt);

  static constexpr MapScheme kScheme = MapScheme::kTwoLevel;
  static constexpr u32 kUnassigned = 0xFFFFFFFFu;

  usize map_size() const noexcept { return index_size_; }

  // Number of condensed coverage slots (defaults to map_size).
  usize condensed_size() const noexcept { return coverage_.size(); }

  // --- hot path -------------------------------------------------------------

  // Records one hit of coverage key `key` (Listing 2, lines 3-6). The
  // first-touch branch is almost always not-taken and thus well predicted.
  void update(u32 key) noexcept {
    u32* slot = index_data_ + (key & mask_);
    u32 k = *slot;
    if (k == kUnassigned) [[unlikely]] {
      k = allocate_slot(slot);
    }
    ++coverage_[k];
  }

  // --- per-test-case map operations ------------------------------------------

  // Clears [0, used_key) of the coverage bitmap. The index bitmap is
  // deliberately left intact.
  void reset() noexcept;

  // Buckets hit counts over [0, used_key).
  void classify() noexcept;

  // Classified-trace vs. virgin comparison over [0, used_key); virgin bytes
  // beyond used_key are still 0xFF so the prefix comparison is exact.
  // `virgin.size()` must equal condensed_size().
  NewBits compare_update(VirginMap& virgin) noexcept;

  // classify() + compare_update(), fused when enabled (§IV-E).
  NewBits classify_and_compare(VirginMap& virgin) noexcept;

  // CRC-32 up to (and including) the last non-zero byte (§IV-D).
  u32 hash() const noexcept;

  // --- introspection ----------------------------------------------------------

  // Next free condensed slot == number of distinct keys seen so far.
  u32 used_key() const noexcept { return used_key_; }

  // Condensed slot of `key`, or kUnassigned if never seen.
  u32 slot_of(u32 key) const noexcept { return index_data_[key & mask_]; }

  // The used prefix of the coverage bitmap.
  std::span<const u8> used_region() const noexcept {
    return {coverage_.data(), used_key_};
  }
  std::span<u8> mutable_used_region() noexcept {
    return {coverage_.data(), used_key_};
  }

  std::span<const u8> full_coverage() const noexcept {
    return coverage_.span();
  }

  // Bytes iterated by each whole-map scan (== used_key for this scheme).
  usize scan_cost_bytes() const noexcept { return used_key_; }

  usize count_nonzero() const noexcept;

  // Number of updates that could not get a fresh slot because the condensed
  // bitmap was full (they alias the final slot). Always 0 when
  // condensed_size == map_size.
  u64 saturated_updates() const noexcept { return saturated_; }

  // Lifetime whole-map scan counts (telemetry; see MapOpCounts).
  const MapOpCounts& op_counts() const noexcept { return ops_; }

  // Name of the kernel this map's whole-map operations dispatch to.
  const char* kernel_name() const noexcept { return kernel_->name; }

  PageBackingResult coverage_backing() const noexcept {
    return coverage_.backing();
  }
  PageBackingResult index_backing() const noexcept {
    return index_.backing();
  }

  // --- persistence ------------------------------------------------------------

  // Copies the campaign-lifetime map state (the stable index assignment and
  // the bump allocator) into `index`/`used_key`/`saturated` for
  // checkpointing. The coverage bitmap is per-exec scratch and is not part
  // of the persistent state.
  void export_state(std::vector<u32>* index, u32* used_key,
                    u64* saturated) const;

  // Restores state captured by export_state into a freshly constructed map
  // of the same geometry. Returns false (leaving the map untouched) when
  // the state is inconsistent: wrong index size, used_key beyond the
  // condensed bitmap, or an index entry pointing at an unallocated slot.
  bool import_state(std::span<const u32> index, u32 used_key, u64 saturated);

 private:
  // Cold path of update(): assigns the next condensed slot to *slot.
  u32 allocate_slot(u32* slot) noexcept;

  PageBuffer index_;      // map_size u32 entries, init 0xFFFFFFFF
  PageBuffer coverage_;   // condensed hit counts
  const kernels::KernelOps* kernel_;
  u32* index_data_;       // == reinterpret_cast<u32*>(index_.data())
  usize index_size_;      // entries in index_
  u32 mask_;
  u32 used_key_ = 0;
  u64 saturated_ = 0;
  bool merged_classify_compare_;
  mutable MapOpCounts ops_;  // mutable: hash() is const
};

}  // namespace bigmap
