// Whole-map kernel suite: runtime-dispatched implementations of the five
// whole-map operations (reset / classify / compare_update / fused
// classify_compare / hash+count) at four ISA levels.
//
// BigMap's point (§IV) is that these operations scale with used_key, not
// map size — the kernel layer removes the remaining constant factor. Every
// kernel variant is provably byte-identical to the scalar reference
// (tests/core/kernel_diff_test.cpp runs the differential suite over every
// compiled variant), so selection is purely a performance decision:
//
//   scalar  byte-at-a-time reference; the semantics oracle
//   swar    u64 word-at-a-time with the 16-bit classify LUT and zero-word
//           skip (AFL's trick; builds on core/classify + core/virgin)
//   sse2    16-byte vectors, compiled whenever the target has SSE2
//   avx2    32-byte vectors with pshufb nibble-LUT classify; compiled when
//           the compiler supports -mavx2, registered only when the CPU
//           reports AVX2 at startup
//
// Selection happens once per process (BIGMAP_KERNEL=scalar|swar|sse2|avx2
// env override, else best runtime-supported) and once per map
// (MapOptions::kernel overrides the process default). The maps resolve a
// KernelOps pointer at construction and call through it; per-edge update()
// never goes through the registry.
#pragma once

#include <span>
#include <string_view>

#include "core/virgin.h"
#include "util/types.h"

namespace bigmap::kernels {

// One kernel variant: a name plus the whole-map operation entry points.
// All functions tolerate arbitrary (unaligned, odd) lengths; tails are
// handled inside each kernel so callers never pre-align.
struct KernelOps {
  const char* name;

  // Zeroes [mem, mem+len) with plain (cache-allocating) stores. Callers
  // that want the §IV-E non-temporal reset use memset_zero_nontemporal.
  void (*reset)(u8* mem, usize len) noexcept;

  // Buckets every hit count in place (AFL classification, core/classify.h).
  void (*classify)(u8* mem, usize len) noexcept;

  // Classified-trace vs. virgin comparison; clears matched virgin bits and
  // reports the most interesting byte seen. Zero trace words/vectors are
  // skipped without touching the virgin map.
  NewBits (*compare_update)(const u8* trace, u8* virgin,
                            usize len) noexcept;

  // classify + compare_update fused into one pass over the trace (§IV-E).
  NewBits (*classify_compare)(u8* trace, u8* virgin, usize len) noexcept;

  // CRC-32 over [mem, mem+len) (same value as util/hash.h crc32()).
  u32 (*hash)(const u8* mem, usize len) noexcept;

  // Number of bytes in [mem, mem+len) that differ from `value`. value=0
  // gives count_nonzero; value=0xFF gives the virgin-map covered count.
  usize (*count_ne)(const u8* mem, usize len, u8 value) noexcept;

  // One past the index of the last non-zero byte (0 when all zero) — the
  // §IV-D "hash up to the last non-zero byte" scan, run backwards.
  usize (*find_used_end)(const u8* mem, usize len) noexcept;
};

// The byte-at-a-time reference kernel (always available).
const KernelOps& scalar_kernel() noexcept;

// Every kernel compiled into this binary, ordered worst-to-best
// (scalar, swar[, sse2][, avx2]). Entries may still be unusable on the
// running CPU; see runtime_kernels().
std::span<const KernelOps* const> compiled_kernels() noexcept;

// The compiled kernels this CPU can actually execute, same ordering.
// Always contains at least scalar and swar.
std::span<const KernelOps* const> runtime_kernels() noexcept;

// Looks up a runtime-usable kernel by name; nullptr when the name is
// unknown, not compiled in, or not supported by this CPU.
const KernelOps* find_kernel(std::string_view name) noexcept;

// The process-wide default, selected once on first use: the BIGMAP_KERNEL
// environment override when set and usable (a warning is printed and the
// override ignored otherwise), else the best runtime kernel.
const KernelOps& active_kernel() noexcept;

// Per-map resolution: empty name -> active_kernel(); otherwise the named
// kernel. Throws std::invalid_argument when the name is unknown or
// unusable on this CPU (so a bad MapOptions::kernel fails loudly at map
// construction, not silently mid-campaign).
const KernelOps& resolve_kernel(std::string_view name);

}  // namespace bigmap::kernels
