// SSE2 kernel: 16-byte-vector whole-map operations.
//
// Compiled only when the target baseline already includes SSE2 (always
// true on x86-64), so no extra compile flags and no runtime CPU check are
// needed. SSE2 lacks pshufb, so classification uses a masked-add
// formulation instead of a nibble LUT: the AFL buckets for counts >= 4 are
// exactly 8*[b>=4] + 8*[b>=8] + 16*[b>=16] + 32*[b>=32] + 64*[b>=128]
// (nested unsigned range masks), with b in {0,1,2} passing through and
// b==3 mapping to 4. Unsigned b>=k is max_epu8(b,k)==b.
//
// All loads/stores are unaligned; tails (< 16 bytes) run through the
// shared bytewise helpers, which are byte-for-byte the scalar reference.
#include "core/kernels/kernel_internal.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include "util/hash.h"

namespace bigmap::kernels {
namespace {

inline __m128i ge_mask(__m128i b, __m128i k) noexcept {
  return _mm_cmpeq_epi8(_mm_max_epu8(b, k), b);
}

inline __m128i classify_vec(__m128i b) noexcept {
  const __m128i le2 = _mm_cmpeq_epi8(_mm_max_epu8(b, _mm_set1_epi8(2)),
                                     _mm_set1_epi8(2));
  const __m128i eq3 = _mm_cmpeq_epi8(b, _mm_set1_epi8(3));
  const __m128i ge4 = ge_mask(b, _mm_set1_epi8(4));
  const __m128i ge8 = ge_mask(b, _mm_set1_epi8(8));
  const __m128i ge16 = ge_mask(b, _mm_set1_epi8(16));
  const __m128i ge32 = ge_mask(b, _mm_set1_epi8(32));
  const __m128i ge128 = ge_mask(b, _mm_set1_epi8(static_cast<char>(128)));

  __m128i r = _mm_and_si128(b, le2);
  r = _mm_add_epi8(r, _mm_and_si128(eq3, _mm_set1_epi8(4)));
  r = _mm_add_epi8(r, _mm_and_si128(ge4, _mm_set1_epi8(8)));
  r = _mm_add_epi8(r, _mm_and_si128(ge8, _mm_set1_epi8(8)));
  r = _mm_add_epi8(r, _mm_and_si128(ge16, _mm_set1_epi8(16)));
  r = _mm_add_epi8(r, _mm_and_si128(ge32, _mm_set1_epi8(32)));
  r = _mm_add_epi8(r, _mm_and_si128(ge128, _mm_set1_epi8(64)));
  return r;
}

inline bool all_zero(__m128i v) noexcept {
  return _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_setzero_si128())) == 0xFFFF;
}

void k_reset(u8* mem, usize len) noexcept {
  const __m128i zero = _mm_setzero_si128();
  usize i = 0;
  for (; i + 16 <= len; i += 16) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mem + i), zero);
  }
  for (; i < len; ++i) mem[i] = 0;
}

void k_classify(u8* mem, usize len) noexcept {
  usize i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i t =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mem + i));
    if (all_zero(t)) continue;  // zero-vector skip: no classify, no store
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mem + i), classify_vec(t));
  }
  detail::tail_classify(mem + i, len - i);
}

// Shared comparison core. When CLASSIFY is set the trace chunk is bucketed
// and stored back first (the §IV-E fused pass).
template <bool CLASSIFY>
NewBits compare_core(u8* trace, u8* virgin, usize len) noexcept {
  const __m128i ff = _mm_set1_epi8(static_cast<char>(0xFF));
  __m128i acc_hit = _mm_setzero_si128();    // OR of t & v: any hit bits
  __m128i acc_tuple = _mm_setzero_si128();  // 0xFF bytes where v was 0xFF

  usize i = 0;
  for (; i + 16 <= len; i += 16) {
    __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(trace + i));
    if (all_zero(t)) continue;  // zero-skip fast path: virgin untouched
    if constexpr (CLASSIFY) {
      t = classify_vec(t);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(trace + i), t);
    }
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(virgin + i));
    const __m128i tv = _mm_and_si128(t, v);
    if (all_zero(tv)) continue;  // hits nothing still virgin
    const __m128i no_hit = _mm_cmpeq_epi8(tv, _mm_setzero_si128());
    acc_hit = _mm_or_si128(acc_hit, tv);
    acc_tuple = _mm_or_si128(
        acc_tuple, _mm_andnot_si128(no_hit, _mm_cmpeq_epi8(v, ff)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(virgin + i),
                     _mm_andnot_si128(t, v));
  }

  NewBits result = NewBits::kNone;
  if (_mm_movemask_epi8(acc_tuple) != 0) {
    result = NewBits::kNewTuple;
  } else if (!all_zero(acc_hit)) {
    result = NewBits::kNewCounts;
  }
  if constexpr (CLASSIFY) {
    detail::tail_classify_compare(trace + i, virgin + i, len - i, result);
  } else {
    detail::tail_compare(trace + i, virgin + i, len - i, result);
  }
  return result;
}

NewBits k_compare(const u8* trace, u8* virgin, usize len) noexcept {
  return compare_core<false>(const_cast<u8*>(trace), virgin, len);
}

NewBits k_classify_compare(u8* trace, u8* virgin, usize len) noexcept {
  return compare_core<true>(trace, virgin, len);
}

u32 k_hash(const u8* mem, usize len) noexcept { return crc32({mem, len}); }

usize k_count_ne(const u8* mem, usize len, u8 value) noexcept {
  const __m128i splat = _mm_set1_epi8(static_cast<char>(value));
  usize ne = 0;
  usize i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mem + i));
    const int eq = _mm_movemask_epi8(_mm_cmpeq_epi8(b, splat));
    ne += 16 - static_cast<usize>(__builtin_popcount(eq));
  }
  for (; i < len; ++i) {
    if (mem[i] != value) ++ne;
  }
  return ne;
}

usize k_find_used_end(const u8* mem, usize len) noexcept {
  usize end = len;
  while (end > 0 && (end & 15) != 0) {
    if (mem[end - 1] != 0) return end;
    --end;
  }
  while (end >= 16) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mem + end - 16));
    const u32 nz =
        0xFFFFu & ~static_cast<u32>(
                      _mm_movemask_epi8(_mm_cmpeq_epi8(b, _mm_setzero_si128())));
    if (nz != 0) {
      const int hi = 31 - __builtin_clz(nz);
      return end - 16 + static_cast<usize>(hi) + 1;
    }
    end -= 16;
  }
  return 0;
}

constexpr KernelOps kSse2Kernel = {
    "sse2",    k_reset,    k_classify,
    k_compare, k_classify_compare,
    k_hash,    k_count_ne, k_find_used_end,
};

}  // namespace

const KernelOps* sse2_kernel_ops() noexcept { return &kSse2Kernel; }

}  // namespace bigmap::kernels

#else  // !defined(__SSE2__)

namespace bigmap::kernels {
const KernelOps* sse2_kernel_ops() noexcept { return nullptr; }
}  // namespace bigmap::kernels

#endif
