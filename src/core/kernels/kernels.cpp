#include "core/kernels/kernels.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/classify.h"
#include "core/kernels/kernel_internal.h"
#include "util/hash.h"

namespace bigmap::kernels {
namespace detail {

// --- shared bytewise tails (== the scalar reference, byte for byte) ------

void tail_classify(u8* mem, usize len) noexcept {
  const auto& lut = count_class_lookup8();
  for (usize i = 0; i < len; ++i) mem[i] = lut[mem[i]];
}

void tail_compare(const u8* trace, u8* virgin, usize len,
                  NewBits& result) noexcept {
  for (usize i = 0; i < len; ++i) {
    const u8 t = trace[i];
    if (t != 0 && (t & virgin[i]) != 0) {
      if (result != NewBits::kNewTuple) {
        result = (virgin[i] == 0xFF) ? NewBits::kNewTuple
                                     : std::max(result, NewBits::kNewCounts);
      }
      virgin[i] = static_cast<u8>(virgin[i] & ~t);
    }
  }
}

void tail_classify_compare(u8* trace, u8* virgin, usize len,
                           NewBits& result) noexcept {
  const auto& lut = count_class_lookup8();
  for (usize i = 0; i < len; ++i) {
    if (trace[i] == 0) continue;
    trace[i] = lut[trace[i]];
    const u8 t = trace[i];
    if ((t & virgin[i]) != 0) {
      if (result != NewBits::kNewTuple) {
        result = (virgin[i] == 0xFF) ? NewBits::kNewTuple
                                     : std::max(result, NewBits::kNewCounts);
      }
      virgin[i] = static_cast<u8>(virgin[i] & ~t);
    }
  }
}

}  // namespace detail

namespace {

// --- scalar kernel: the byte-at-a-time semantics oracle ------------------

void sc_reset(u8* mem, usize len) noexcept {
  for (usize i = 0; i < len; ++i) mem[i] = 0;
}

void sc_classify(u8* mem, usize len) noexcept {
  detail::tail_classify(mem, len);
}

NewBits sc_compare(const u8* trace, u8* virgin, usize len) noexcept {
  NewBits result = NewBits::kNone;
  detail::tail_compare(trace, virgin, len, result);
  return result;
}

NewBits sc_classify_compare(u8* trace, u8* virgin, usize len) noexcept {
  NewBits result = NewBits::kNone;
  detail::tail_classify_compare(trace, virgin, len, result);
  return result;
}

// Bytewise CRC-32 via the incremental API: deliberately independent of the
// slicing-by-8 fast path, so the differential suite cross-checks the fast
// hashes against a genuinely different evaluation order.
u32 sc_hash(const u8* mem, usize len) noexcept {
  u32 state = kCrc32Init;
  for (usize i = 0; i < len; ++i) {
    state = crc32_update(state, {mem + i, 1});
  }
  return crc32_finalize(state);
}

usize sc_count_ne(const u8* mem, usize len, u8 value) noexcept {
  usize n = 0;
  for (usize i = 0; i < len; ++i) {
    if (mem[i] != value) ++n;
  }
  return n;
}

usize sc_find_used_end(const u8* mem, usize len) noexcept {
  usize end = len;
  while (end > 0 && mem[end - 1] == 0) --end;
  return end;
}

constexpr KernelOps kScalarKernel = {
    "scalar",        sc_reset,    sc_classify,
    sc_compare,      sc_classify_compare,
    sc_hash,         sc_count_ne, sc_find_used_end,
};

// --- swar kernel: u64 word-at-a-time (AFL's LUT16 + zero-word skip) ------

inline u64 load64(const u8* p) noexcept {
  u64 v;
  __builtin_memcpy(&v, p, 8);
  return v;
}

inline void store64(u8* p, u64 v) noexcept { __builtin_memcpy(p, &v, 8); }

void sw_reset(u8* mem, usize len) noexcept {
  usize i = 0;
  for (; i + 8 <= len; i += 8) store64(mem + i, 0);
  for (; i < len; ++i) mem[i] = 0;
}

void sw_classify(u8* mem, usize len) noexcept {
  const usize aligned = len & ~static_cast<usize>(7);
  classify_counts(mem, aligned);
  detail::tail_classify(mem + aligned, len - aligned);
}

NewBits sw_compare(const u8* trace, u8* virgin, usize len) noexcept {
  return compare_and_update_virgin(trace, virgin, len);
}

NewBits sw_classify_compare(u8* trace, u8* virgin, usize len) noexcept {
  return classify_compare_update(trace, virgin, len);
}

u32 sw_hash(const u8* mem, usize len) noexcept {
  // crc32() is already slicing-by-8 — the SWAR formulation of CRC.
  return crc32({mem, len});
}

// Exact SWAR zero-byte count (no carry-propagation false positives):
// bit 7 of each byte of `y` ends up set iff that byte of `x` is zero.
inline int zero_bytes64(u64 x) noexcept {
  const u64 k7f = 0x7F7F7F7F7F7F7F7FULL;
  const u64 y = ~((((x & k7f) + k7f) | x) | k7f);
  return __builtin_popcountll(y);
}

usize sw_count_ne(const u8* mem, usize len, u8 value) noexcept {
  const u64 splat = 0x0101010101010101ULL * value;
  usize ne = 0;
  usize i = 0;
  for (; i + 8 <= len; i += 8) {
    ne += 8 - static_cast<usize>(zero_bytes64(load64(mem + i) ^ splat));
  }
  for (; i < len; ++i) {
    if (mem[i] != value) ++ne;
  }
  return ne;
}

usize sw_find_used_end(const u8* mem, usize len) noexcept {
  usize end = len;
  // Bytewise until the remaining prefix is word-aligned in length.
  while (end > 0 && (end & 7) != 0) {
    if (mem[end - 1] != 0) return end;
    --end;
  }
  while (end >= 8) {
    const u64 w = load64(mem + end - 8);
    if (w != 0) {
      // Highest non-zero byte of the little-endian word.
      const int hi_bit = 63 - __builtin_clzll(w);
      return end - 8 + static_cast<usize>(hi_bit / 8) + 1;
    }
    end -= 8;
  }
  return 0;
}

constexpr KernelOps kSwarKernel = {
    "swar",     sw_reset,    sw_classify,
    sw_compare, sw_classify_compare,
    sw_hash,    sw_count_ne, sw_find_used_end,
};

// --- registry ------------------------------------------------------------

std::vector<const KernelOps*> build_compiled() {
  std::vector<const KernelOps*> v{&kScalarKernel, &kSwarKernel};
  if (const KernelOps* k = sse2_kernel_ops()) v.push_back(k);
  if (const KernelOps* k = avx2_kernel_ops()) v.push_back(k);
  return v;
}

std::vector<const KernelOps*> build_runtime() {
  std::vector<const KernelOps*> v;
  for (const KernelOps* k : compiled_kernels()) {
    if (cpu_supports(*k)) v.push_back(k);
  }
  return v;
}

}  // namespace

bool cpu_supports(const KernelOps& k) noexcept {
  // scalar/swar/sse2 kernels are only compiled when the baseline target
  // already guarantees their ISA; AVX2 needs a runtime check because the
  // TU is compiled with -mavx2 above the baseline.
  if (k.name == std::string_view("avx2")) {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }
  return true;
}

const KernelOps& scalar_kernel() noexcept { return kScalarKernel; }

std::span<const KernelOps* const> compiled_kernels() noexcept {
  static const std::vector<const KernelOps*> v = build_compiled();
  return {v.data(), v.size()};
}

std::span<const KernelOps* const> runtime_kernels() noexcept {
  static const std::vector<const KernelOps*> v = build_runtime();
  return {v.data(), v.size()};
}

const KernelOps* find_kernel(std::string_view name) noexcept {
  for (const KernelOps* k : runtime_kernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

const KernelOps& active_kernel() noexcept {
  static const KernelOps* const selected = [] {
    const char* env = std::getenv("BIGMAP_KERNEL");
    if (env != nullptr && *env != '\0') {
      if (const KernelOps* k = find_kernel(env)) return k;
      std::fprintf(stderr,
                   "bigmap: BIGMAP_KERNEL='%s' is unknown or unsupported on "
                   "this CPU; falling back to best available\n",
                   env);
    }
    return runtime_kernels().back();  // ordered worst-to-best
  }();
  return *selected;
}

const KernelOps& resolve_kernel(std::string_view name) {
  if (name.empty()) return active_kernel();
  if (const KernelOps* k = find_kernel(name)) return *k;
  throw std::invalid_argument(
      "unknown or unsupported map kernel: " + std::string(name) +
      " (valid: scalar|swar|sse2|avx2, subject to CPU support)");
}

}  // namespace bigmap::kernels
