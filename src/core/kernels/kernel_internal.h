// Internal glue between the kernel registry (kernels.cpp) and the
// per-ISA translation units. Each ISA TU is compiled with its own
// -m<isa> flag and exposes exactly one symbol: a KernelOps pointer that
// is null when the TU was built without that ISA (non-x86 target, or a
// compiler lacking the flag). The registry also needs the shared
// bytewise tail helpers so every kernel's tail path is literally the
// same code as the scalar reference.
#pragma once

#include "core/kernels/kernels.h"

namespace bigmap::kernels {

// Defined in kernel_sse2.cpp / kernel_avx2.cpp; nullptr when the ISA was
// not compiled in.
const KernelOps* sse2_kernel_ops() noexcept;
const KernelOps* avx2_kernel_ops() noexcept;

// True when the running CPU can execute the given compiled kernel.
bool cpu_supports(const KernelOps& k) noexcept;

namespace detail {

// Bytewise tail helpers shared by every vector kernel: identical to the
// scalar reference so tails can never diverge from it.

void tail_classify(u8* mem, usize len) noexcept;

// Merges the tail verdict into `result` and clears hit virgin bits.
void tail_compare(const u8* trace, u8* virgin, usize len,
                  NewBits& result) noexcept;

void tail_classify_compare(u8* trace, u8* virgin, usize len,
                           NewBits& result) noexcept;

}  // namespace detail
}  // namespace bigmap::kernels
