// AVX2 kernel: 32-byte-vector whole-map operations.
//
// This TU is compiled with -mavx2 (CMake adds the flag only when the
// compiler supports it), so it must never be entered on a CPU without
// AVX2 — the registry checks __builtin_cpu_supports("avx2") before
// exposing it (kernels.cpp cpu_supports()).
//
// Classification uses the pshufb nibble-LUT trick: for a hit count b, the
// AFL bucket depends only on the high nibble when it is non-zero
// (16-31 -> 32, 32-127 -> 64, 128-255 -> 128) and only on the low nibble
// otherwise (0,1,2,4,8,8,8,8 then 16 for 8-15), so two 16-entry shuffles
// and a blend classify 32 bytes at once.
//
// All loads/stores are unaligned; tails (< 32 bytes) run through the
// shared bytewise helpers, which are byte-for-byte the scalar reference.
#include "core/kernels/kernel_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "util/hash.h"

namespace bigmap::kernels {
namespace {

inline __m256i classify_vec(__m256i b) noexcept {
  const __m256i lo_lut = _mm256_setr_epi8(
      0, 1, 2, 4, 8, 8, 8, 8, 16, 16, 16, 16, 16, 16, 16, 16,  //
      0, 1, 2, 4, 8, 8, 8, 8, 16, 16, 16, 16, 16, 16, 16, 16);
  const __m256i hi_lut = _mm256_setr_epi8(
      0, 32, 64, 64, 64, 64, 64, 64, -128, -128, -128, -128, -128, -128,
      -128, -128,  //
      0, 32, 64, 64, 64, 64, 64, 64, -128, -128, -128, -128, -128, -128,
      -128, -128);
  const __m256i nib = _mm256_set1_epi8(0x0F);

  const __m256i lo = _mm256_and_si256(b, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(b, 4), nib);
  const __m256i hi_zero = _mm256_cmpeq_epi8(hi, _mm256_setzero_si256());
  return _mm256_blendv_epi8(_mm256_shuffle_epi8(hi_lut, hi),
                            _mm256_shuffle_epi8(lo_lut, lo), hi_zero);
}

void k_reset(u8* mem, usize len) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  usize i = 0;
  for (; i + 32 <= len; i += 32) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mem + i), zero);
  }
  for (; i < len; ++i) mem[i] = 0;
}

void k_classify(u8* mem, usize len) noexcept {
  usize i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mem + i));
    if (_mm256_testz_si256(t, t)) continue;  // zero-vector skip
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mem + i),
                        classify_vec(t));
  }
  detail::tail_classify(mem + i, len - i);
}

// Shared comparison core. When CLASSIFY is set the trace chunk is bucketed
// and stored back first (the §IV-E fused pass).
template <bool CLASSIFY>
NewBits compare_core(u8* trace, u8* virgin, usize len) noexcept {
  const __m256i ff = _mm256_set1_epi8(static_cast<char>(0xFF));
  __m256i acc_hit = _mm256_setzero_si256();    // OR of t & v
  __m256i acc_tuple = _mm256_setzero_si256();  // 0xFF where hit && v == 0xFF

  usize i = 0;
  for (; i + 32 <= len; i += 32) {
    __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(trace + i));
    if (_mm256_testz_si256(t, t)) continue;  // zero-skip: virgin untouched
    if constexpr (CLASSIFY) {
      t = classify_vec(t);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(trace + i), t);
    }
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(virgin + i));
    const __m256i tv = _mm256_and_si256(t, v);
    if (_mm256_testz_si256(tv, tv)) continue;  // hits nothing still virgin
    const __m256i no_hit = _mm256_cmpeq_epi8(tv, _mm256_setzero_si256());
    acc_hit = _mm256_or_si256(acc_hit, tv);
    acc_tuple = _mm256_or_si256(
        acc_tuple, _mm256_andnot_si256(no_hit, _mm256_cmpeq_epi8(v, ff)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(virgin + i),
                        _mm256_andnot_si256(t, v));
  }

  NewBits result = NewBits::kNone;
  if (_mm256_movemask_epi8(acc_tuple) != 0) {
    result = NewBits::kNewTuple;
  } else if (!_mm256_testz_si256(acc_hit, acc_hit)) {
    result = NewBits::kNewCounts;
  }
  if constexpr (CLASSIFY) {
    detail::tail_classify_compare(trace + i, virgin + i, len - i, result);
  } else {
    detail::tail_compare(trace + i, virgin + i, len - i, result);
  }
  return result;
}

NewBits k_compare(const u8* trace, u8* virgin, usize len) noexcept {
  return compare_core<false>(const_cast<u8*>(trace), virgin, len);
}

NewBits k_classify_compare(u8* trace, u8* virgin, usize len) noexcept {
  return compare_core<true>(trace, virgin, len);
}

u32 k_hash(const u8* mem, usize len) noexcept { return crc32({mem, len}); }

usize k_count_ne(const u8* mem, usize len, u8 value) noexcept {
  const __m256i splat = _mm256_set1_epi8(static_cast<char>(value));
  usize ne = 0;
  usize i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mem + i));
    const u32 eq =
        static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(b, splat)));
    ne += 32 - static_cast<usize>(__builtin_popcount(eq));
  }
  for (; i < len; ++i) {
    if (mem[i] != value) ++ne;
  }
  return ne;
}

usize k_find_used_end(const u8* mem, usize len) noexcept {
  usize end = len;
  while (end > 0 && (end & 31) != 0) {
    if (mem[end - 1] != 0) return end;
    --end;
  }
  while (end >= 32) {
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mem + end - 32));
    const u32 nz = ~static_cast<u32>(_mm256_movemask_epi8(
        _mm256_cmpeq_epi8(b, _mm256_setzero_si256())));
    if (nz != 0) {
      const int hi = 31 - __builtin_clz(nz);
      return end - 32 + static_cast<usize>(hi) + 1;
    }
    end -= 32;
  }
  return 0;
}

constexpr KernelOps kAvx2Kernel = {
    "avx2",    k_reset,    k_classify,
    k_compare, k_classify_compare,
    k_hash,    k_count_ne, k_find_used_end,
};

}  // namespace

const KernelOps* avx2_kernel_ops() noexcept { return &kAvx2Kernel; }

}  // namespace bigmap::kernels

#else  // !defined(__AVX2__)

namespace bigmap::kernels {
const KernelOps* avx2_kernel_ops() noexcept { return nullptr; }
}  // namespace bigmap::kernels

#endif
