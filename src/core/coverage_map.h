// CoverageMapVariant: runtime selection between the two map schemes.
//
// Hot loops (per-edge update) stay fully inlined inside the concrete map
// classes; this wrapper dispatches once per *operation*, never per edge.
// Code that is itself templated on the map type (the executor) should use
// the concrete classes directly; the variant exists for configuration-driven
// call sites (benches, examples) that pick the scheme at runtime.
#pragma once

#include <variant>

#include "core/flat_map.h"
#include "core/map_options.h"
#include "core/two_level_map.h"

namespace bigmap {

class CoverageMapVariant {
 public:
  CoverageMapVariant(MapScheme scheme, const MapOptions& opt)
      : map_(make(scheme, opt)) {}

  MapScheme scheme() const noexcept {
    return std::holds_alternative<FlatCoverageMap>(map_) ? MapScheme::kFlat
                                                         : MapScheme::kTwoLevel;
  }

  usize map_size() const noexcept {
    return std::visit([](const auto& m) { return m.map_size(); }, map_);
  }

  // Size a virgin map must have to be comparable against this map's trace:
  // the full map for the flat scheme, the condensed bitmap for BigMap.
  usize virgin_size() const noexcept {
    if (const auto* two = std::get_if<TwoLevelCoverageMap>(&map_)) {
      return two->condensed_size();
    }
    return std::get<FlatCoverageMap>(map_).map_size();
  }

  void update(u32 key) noexcept {
    std::visit([key](auto& m) { m.update(key); }, map_);
  }

  void reset() noexcept {
    std::visit([](auto& m) { m.reset(); }, map_);
  }

  void classify() noexcept {
    std::visit([](auto& m) { m.classify(); }, map_);
  }

  NewBits compare_update(VirginMap& virgin) noexcept {
    return std::visit([&](auto& m) { return m.compare_update(virgin); },
                      map_);
  }

  NewBits classify_and_compare(VirginMap& virgin) noexcept {
    return std::visit(
        [&](auto& m) { return m.classify_and_compare(virgin); }, map_);
  }

  u32 hash() const noexcept {
    return std::visit([](const auto& m) { return m.hash(); }, map_);
  }

  usize scan_cost_bytes() const noexcept {
    return std::visit([](const auto& m) { return m.scan_cost_bytes(); },
                      map_);
  }

  usize count_nonzero() const noexcept {
    return std::visit([](const auto& m) { return m.count_nonzero(); }, map_);
  }

  MapOpCounts op_counts() const noexcept {
    return std::visit(
        [](const auto& m) -> MapOpCounts { return m.op_counts(); }, map_);
  }

  const char* kernel_name() const noexcept {
    return std::visit([](const auto& m) { return m.kernel_name(); }, map_);
  }

  // Persistence passthrough (see the concrete maps for semantics).
  void export_state(std::vector<u32>* index, u32* used_key,
                    u64* saturated) const {
    std::visit(
        [&](const auto& m) { m.export_state(index, used_key, saturated); },
        map_);
  }
  bool import_state(std::span<const u32> index, u32 used_key,
                    u64 saturated) {
    return std::visit(
        [&](auto& m) { return m.import_state(index, used_key, saturated); },
        map_);
  }

  // Concrete access for scheme-specific introspection.
  FlatCoverageMap* as_flat() noexcept {
    return std::get_if<FlatCoverageMap>(&map_);
  }
  TwoLevelCoverageMap* as_two_level() noexcept {
    return std::get_if<TwoLevelCoverageMap>(&map_);
  }
  const TwoLevelCoverageMap* as_two_level() const noexcept {
    return std::get_if<TwoLevelCoverageMap>(&map_);
  }

 private:
  using Variant = std::variant<FlatCoverageMap, TwoLevelCoverageMap>;

  static Variant make(MapScheme scheme, const MapOptions& opt) {
    if (scheme == MapScheme::kFlat) {
      return Variant(std::in_place_type<FlatCoverageMap>, opt);
    }
    return Variant(std::in_place_type<TwoLevelCoverageMap>, opt);
  }

  Variant map_;
};

}  // namespace bigmap
