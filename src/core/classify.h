// AFL-style hit-count classification ("bucketing").
//
// Raw edge hit counts are mapped into power-of-two-ish buckets before the
// trace bitmap is compared against the global (virgin) map:
//
//   raw count : 0  1  2  3  4-7  8-15  16-31  32-127  128-255
//   bucket    : 0  1  2  4   8    16     32      64       128
//
// Hits that move between buckets count as interesting control-flow changes;
// movement within a bucket is ignored. Bucketing also absorbs some noise
// from accidental hash collisions (paper §II-A).
//
// classify_counts() uses AFL's 16-bit lookup-table trick: the 64 kB LUT maps
// two bytes per probe and the loop skips zero words entirely, which is the
// dominant case on a sparse bitmap.
#pragma once

#include <array>
#include <span>

#include "util/types.h"

namespace bigmap {

// Bucket for a single raw hit count.
constexpr u8 classify_count(u8 raw) noexcept {
  if (raw == 0) return 0;
  if (raw == 1) return 1;
  if (raw == 2) return 2;
  if (raw == 3) return 4;
  if (raw <= 7) return 8;
  if (raw <= 15) return 16;
  if (raw <= 31) return 32;
  if (raw <= 127) return 64;
  return 128;
}

// 256-entry byte-level lookup table (kCountClass8[raw] == classify_count(raw)).
const std::array<u8, 256>& count_class_lookup8() noexcept;

// 65536-entry table classifying two adjacent bytes at once.
const std::array<u16, 65536>& count_class_lookup16() noexcept;

// Classifies `mem` in place, one 64-bit word at a time. len must be a
// multiple of 8 (checked in debug builds).
void classify_counts(u8* mem, usize len) noexcept;

// Classifies an arbitrary (unaligned / odd-length) span byte-by-byte.
// Used for the tail of BigMap's used region.
void classify_counts_bytewise(u8* mem, usize len) noexcept;

// True if every byte of the span is a valid bucket value.
bool is_classified(std::span<const u8> mem) noexcept;

}  // namespace bigmap
