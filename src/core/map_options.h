// Construction options shared by both coverage-map schemes.
#pragma once

#include <string>

#include "util/alloc.h"
#include "util/types.h"

namespace bigmap {

// Which coverage-map data structure a fuzzing session uses.
enum class MapScheme : u8 {
  kFlat,      // AFL's single-level bitmap
  kTwoLevel,  // BigMap's condensed two-level bitmap
};

inline const char* map_scheme_name(MapScheme s) noexcept {
  return s == MapScheme::kFlat ? "AFL" : "BigMap";
}

// Options controlling map construction and the §IV-E optimizations. The
// optimizations default to on for both schemes, matching the paper's
// experimental setup ("Optimizations mentioned in Section IV-E applied to
// both AFL and BigMap").
struct MapOptions {
  // Hash-space size in entries (== bytes for the flat scheme). Must be a
  // power of two and a multiple of 8.
  usize map_size = 1u << 16;

  // Back the bitmaps with huge pages when the OS allows it (§IV-E).
  bool huge_pages = true;

  // Reset the flat map with non-temporal stores (§IV-E; a no-op benefit for
  // the two-level scheme, which only clears its used region).
  bool nontemporal_reset = true;

  // Fuse the classify and compare passes (§IV-E).
  bool merged_classify_compare = true;

  // Two-level scheme only: number of slots in the condensed coverage
  // bitmap. 0 means "same as map_size" (the paper's configuration).
  usize condensed_size = 0;

  // Whole-map kernel variant ("scalar", "swar", "sse2", "avx2"). Empty
  // selects the process default: the BIGMAP_KERNEL environment override
  // when set and usable, else the best kernel this CPU supports. An
  // unknown or unsupported name makes map construction throw (see
  // core/kernels/kernels.h).
  std::string kernel;

  PageBacking backing() const noexcept {
    return huge_pages ? PageBacking::kHugeIfAvailable : PageBacking::kNormal;
  }
};

// Validates the power-of-two/multiple-of-8 constraints; throws
// std::invalid_argument on violation.
void validate_map_options(const MapOptions& opt);

// Lifetime whole-map operation counts, one per op *call* (a merged
// classify+compare pass counts one of each). update() is deliberately not
// counted per edge so the Listing 1/2 hot path stays untouched; telemetry
// snapshots read these to attribute scan work (the Figure 3 cost centers).
struct MapOpCounts {
  u64 resets = 0;
  u64 classifies = 0;
  u64 compares = 0;
  u64 hashes = 0;
};

}  // namespace bigmap
