#include "core/classify.h"

#include <cassert>
#include <cstring>
#include <memory>

namespace bigmap {
namespace {

std::array<u8, 256> make_lookup8() noexcept {
  std::array<u8, 256> lut{};
  for (u32 i = 0; i < 256; ++i) lut[i] = classify_count(static_cast<u8>(i));
  return lut;
}

std::unique_ptr<std::array<u16, 65536>> make_lookup16() {
  auto lut = std::make_unique<std::array<u16, 65536>>();
  const auto& l8 = count_class_lookup8();
  for (u32 hi = 0; hi < 256; ++hi) {
    for (u32 lo = 0; lo < 256; ++lo) {
      (*lut)[(hi << 8) | lo] =
          static_cast<u16>((static_cast<u16>(l8[hi]) << 8) | l8[lo]);
    }
  }
  return lut;
}

}  // namespace

const std::array<u8, 256>& count_class_lookup8() noexcept {
  static const std::array<u8, 256> lut = make_lookup8();
  return lut;
}

const std::array<u16, 65536>& count_class_lookup16() noexcept {
  static const std::unique_ptr<std::array<u16, 65536>> lut = make_lookup16();
  return *lut;
}

void classify_counts(u8* mem, usize len) noexcept {
  assert(len % 8 == 0);

  const auto& lut = count_class_lookup16();
  const usize words = len / 8;

  for (usize w = 0; w < words; ++w) {
    // Word-at-a-time via memcpy'd locals (no aliasing UB; compiles to
    // plain 8-byte load/store). Zero words — the dominant case on a sparse
    // bitmap — are skipped entirely.
    u64 t;
    std::memcpy(&t, mem + w * 8, 8);
    if (t != 0) {
      const u64 c = static_cast<u64>(lut[t & 0xFFFF]) |
                    (static_cast<u64>(lut[(t >> 16) & 0xFFFF]) << 16) |
                    (static_cast<u64>(lut[(t >> 32) & 0xFFFF]) << 32) |
                    (static_cast<u64>(lut[(t >> 48) & 0xFFFF]) << 48);
      std::memcpy(mem + w * 8, &c, 8);
    }
  }
}

void classify_counts_bytewise(u8* mem, usize len) noexcept {
  const auto& lut = count_class_lookup8();
  for (usize i = 0; i < len; ++i) mem[i] = lut[mem[i]];
}

bool is_classified(std::span<const u8> mem) noexcept {
  for (u8 b : mem) {
    switch (b) {
      case 0:
      case 1:
      case 2:
      case 4:
      case 8:
      case 16:
      case 32:
      case 64:
      case 128:
        break;
      default:
        return false;
    }
  }
  return true;
}

}  // namespace bigmap
