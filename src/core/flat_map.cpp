#include "core/flat_map.h"

#include <bit>
#include <stdexcept>

#include "core/kernels/kernels.h"

namespace bigmap {

void validate_map_options(const MapOptions& opt) {
  if (opt.map_size < 8 || !std::has_single_bit(opt.map_size)) {
    throw std::invalid_argument(
        "MapOptions::map_size must be a power of two >= 8");
  }
  if (opt.condensed_size != 0 && opt.condensed_size % 8 != 0) {
    throw std::invalid_argument(
        "MapOptions::condensed_size must be a multiple of 8");
  }
  // Fails loudly on an unknown/unsupported kernel name.
  kernels::resolve_kernel(opt.kernel);
}

FlatCoverageMap::FlatCoverageMap(const MapOptions& opt)
    : trace_((validate_map_options(opt), opt.map_size), opt.backing()),
      kernel_(&kernels::resolve_kernel(opt.kernel)),
      mask_(static_cast<u32>(opt.map_size - 1)),
      nontemporal_reset_(opt.nontemporal_reset),
      merged_classify_compare_(opt.merged_classify_compare) {}

void FlatCoverageMap::reset() noexcept {
  ++ops_.resets;
  if (nontemporal_reset_) {
    memset_zero_nontemporal(trace_.data(), trace_.size());
  } else {
    kernel_->reset(trace_.data(), trace_.size());
  }
}

void FlatCoverageMap::classify() noexcept {
  ++ops_.classifies;
  kernel_->classify(trace_.data(), trace_.size());
}

NewBits FlatCoverageMap::compare_update(VirginMap& virgin) noexcept {
  ++ops_.compares;
  return kernel_->compare_update(trace_.data(), virgin.data(),
                                 trace_.size());
}

NewBits FlatCoverageMap::classify_and_compare(VirginMap& virgin) noexcept {
  if (merged_classify_compare_) {
    ++ops_.classifies;
    ++ops_.compares;
    return kernel_->classify_compare(trace_.data(), virgin.data(),
                                     trace_.size());
  }
  classify();
  return compare_update(virgin);
}

u32 FlatCoverageMap::hash() const noexcept {
  ++ops_.hashes;
  return kernel_->hash(trace_.data(), trace_.size());
}

usize FlatCoverageMap::count_nonzero() const noexcept {
  return kernel_->count_ne(trace_.data(), trace_.size(), 0);
}

}  // namespace bigmap
