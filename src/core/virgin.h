// Virgin (global-coverage) maps and the has_new_bits comparison.
//
// AFL keeps a "virgin" map per outcome class (queue / crash / hang) whose
// bytes start at 0xFF. After classifying a trace, has_new_bits() checks
// whether the trace sets any bit still virgin. The return value
// distinguishes a brand-new tuple (an edge never seen before) from a new
// hit-count bucket for a known edge; AFL treats both as interesting but
// favors new tuples. The comparison also *clears* the matched virgin bits,
// which is how global coverage accumulates.
//
// BigMap uses the identical comparison, but over condensed keys and only on
// the [0, used_key) prefix; virgin bytes beyond used_key remain 0xFF, so the
// prefix comparison is exact (paper §IV-B).
#pragma once

#include <span>

#include "util/alloc.h"
#include "util/types.h"

namespace bigmap {

// Result of a trace-vs-virgin comparison, ordered by interestingness.
enum class NewBits : u8 {
  kNone = 0,       // nothing new
  kNewCounts = 1,  // a known edge moved to a new hit-count bucket
  kNewTuple = 2,   // a never-seen edge appeared
};

// A virgin map: bytes initialized to 0xFF, cleared as coverage accumulates.
class VirginMap {
 public:
  explicit VirginMap(usize size, PageBacking backing = PageBacking::kNormal);

  usize size() const noexcept { return buf_.size(); }
  u8* data() noexcept { return buf_.data(); }
  const u8* data() const noexcept { return buf_.data(); }
  std::span<const u8> span() const noexcept { return buf_.span(); }

  // Number of map positions with at least one cleared bit, i.e. positions
  // covered so far (AFL's count_non_255_bytes, used for coverage stats).
  usize count_covered() const noexcept;

  // Restores every byte to 0xFF.
  void reset() noexcept;

 private:
  PageBuffer buf_;
};

// Compares a *classified* trace against `virgin` over [0, len) and clears
// the virgin bits the trace hits. Word-at-a-time with a byte fixup pass on
// hit words, mirroring AFL's has_new_bits(). `trace` and `virgin` must be
// 8-byte aligned; len need not be a multiple of 8 (tail handled bytewise).
NewBits compare_and_update_virgin(const u8* trace, u8* virgin,
                                  usize len) noexcept;

// §IV-E optimization: classify and compare fused into one pass over the
// trace (halves the traffic of the classify+compare pair). Classifies
// `trace` in place and updates `virgin` exactly like the two-step sequence.
NewBits classify_compare_update(u8* trace, u8* virgin, usize len) noexcept;

}  // namespace bigmap
