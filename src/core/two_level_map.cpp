#include "core/two_level_map.h"

#include <cstring>

#include "core/kernels/kernels.h"

namespace bigmap {

TwoLevelCoverageMap::TwoLevelCoverageMap(const MapOptions& opt)
    : index_((validate_map_options(opt), opt.map_size * sizeof(u32)),
             opt.backing()),
      coverage_(opt.condensed_size == 0 ? opt.map_size : opt.condensed_size,
                opt.backing()),
      kernel_(&kernels::resolve_kernel(opt.kernel)),
      index_data_(reinterpret_cast<u32*>(index_.data())),
      index_size_(opt.map_size),
      mask_(static_cast<u32>(opt.map_size - 1)),
      merged_classify_compare_(opt.merged_classify_compare) {
  // The one-time full-map initialization (§IV-B): index entries to -1,
  // coverage to zero (the kernel already zeroes fresh anonymous pages, but
  // we touch the map anyway to fault it in deterministically, exactly like
  // the paper's single full-map pass).
  std::memset(index_.data(), 0xFF, index_.size());
  std::memset(coverage_.data(), 0, coverage_.size());
}

u32 TwoLevelCoverageMap::allocate_slot(u32* slot) noexcept {
  u32 k;
  if (used_key_ < coverage_.size()) {
    k = used_key_++;
  } else {
    // Condensed bitmap exhausted: alias the final slot. With the default
    // condensed_size == map_size this is unreachable (there are at most
    // map_size distinct keys).
    k = static_cast<u32>(coverage_.size() - 1);
    ++saturated_;
  }
  *slot = k;
  return k;
}

void TwoLevelCoverageMap::reset() noexcept {
  ++ops_.resets;
  kernel_->reset(coverage_.data(), used_key_);
}

void TwoLevelCoverageMap::classify() noexcept {
  ++ops_.classifies;
  kernel_->classify(coverage_.data(), used_key_);
}

NewBits TwoLevelCoverageMap::compare_update(VirginMap& virgin) noexcept {
  ++ops_.compares;
  return kernel_->compare_update(coverage_.data(), virgin.data(),
                                 used_key_);
}

NewBits TwoLevelCoverageMap::classify_and_compare(VirginMap& virgin) noexcept {
  if (merged_classify_compare_) {
    ++ops_.classifies;
    ++ops_.compares;
    return kernel_->classify_compare(coverage_.data(), virgin.data(),
                                     used_key_);
  }
  classify();
  return compare_update(virgin);
}

u32 TwoLevelCoverageMap::hash() const noexcept {
  ++ops_.hashes;
  // §IV-D: hash up to the last non-zero byte so the hash of a path is
  // independent of used_key growth caused by other paths.
  const usize end = kernel_->find_used_end(coverage_.data(), used_key_);
  return kernel_->hash(coverage_.data(), end);
}

usize TwoLevelCoverageMap::count_nonzero() const noexcept {
  return kernel_->count_ne(coverage_.data(), used_key_, 0);
}

void TwoLevelCoverageMap::export_state(std::vector<u32>* index, u32* used_key,
                                       u64* saturated) const {
  index->assign(index_data_, index_data_ + index_size_);
  *used_key = used_key_;
  *saturated = saturated_;
}

bool TwoLevelCoverageMap::import_state(std::span<const u32> index,
                                       u32 used_key, u64 saturated) {
  if (index.size() != index_size_ || used_key > coverage_.size()) {
    return false;
  }
  // Every assigned entry must point below the allocator's high-water mark
  // (or at the aliasing slot when the bitmap saturated). A snapshot that
  // violates this would let update() write past used_key and corrupt the
  // prefix invariant every whole-map operation depends on.
  const u32 limit = saturated > 0 ? static_cast<u32>(coverage_.size())
                                  : used_key;
  for (u32 entry : index) {
    if (entry != kUnassigned && entry >= limit) return false;
  }
  std::memcpy(index_data_, index.data(), index.size() * sizeof(u32));
  used_key_ = used_key;
  saturated_ = saturated;
  kernel_->reset(coverage_.data(), used_key_);
  return true;
}

}  // namespace bigmap
