// FlatCoverageMap: AFL's single-level coverage bitmap.
//
// This is the baseline the paper measures against. Every map operation
// except update touches the *full* bitmap regardless of how much of it is
// used, which is exactly the cost BigMap removes:
//
//   update    trace_bits[E]++              (sparse, random positions)
//   reset     memset(trace_bits, 0, size)  (full map)
//   classify  bucket every byte            (full map)
//   compare   has_new_bits vs. virgin      (full map)
//   hash      crc32(trace_bits, size)      (full map)
#pragma once

#include <span>
#include <vector>

#include "core/kernels/kernels.h"
#include "core/map_options.h"
#include "core/virgin.h"
#include "util/alloc.h"
#include "util/types.h"

namespace bigmap {

class FlatCoverageMap {
 public:
  explicit FlatCoverageMap(const MapOptions& opt);

  static constexpr MapScheme kScheme = MapScheme::kFlat;

  usize map_size() const noexcept { return trace_.size(); }

  // --- hot path -----------------------------------------------------------

  // Records one hit of coverage key `key` (Listing 1, line 3). Keys are
  // reduced modulo the (power-of-two) map size.
  void update(u32 key) noexcept { ++trace_[key & mask_]; }

  // --- per-test-case map operations ----------------------------------------

  // Clears the trace bitmap. Full-map memset (non-temporal when enabled).
  void reset() noexcept;

  // Buckets every hit count in place. Full-map pass.
  void classify() noexcept;

  // Classified-trace vs. virgin comparison; clears matched virgin bits.
  // Full-map pass. `virgin.size()` must equal map_size().
  NewBits compare_update(VirginMap& virgin) noexcept;

  // classify() + compare_update() — fused into one pass when
  // merged_classify_compare is enabled (§IV-E), sequential otherwise.
  NewBits classify_and_compare(VirginMap& virgin) noexcept;

  // CRC-32 of the full trace bitmap (AFL's hash32 over MAP_SIZE).
  u32 hash() const noexcept;

  // --- introspection --------------------------------------------------------

  std::span<const u8> trace() const noexcept { return trace_.span(); }
  std::span<u8> mutable_trace() noexcept { return trace_.span(); }

  // Bytes iterated by each whole-map scan (== map_size for this scheme).
  usize scan_cost_bytes() const noexcept { return trace_.size(); }

  // Number of distinct map positions currently non-zero.
  usize count_nonzero() const noexcept;

  // Lifetime whole-map scan counts (telemetry; see MapOpCounts).
  const MapOpCounts& op_counts() const noexcept { return ops_; }

  // Name of the kernel this map's whole-map operations dispatch to.
  const char* kernel_name() const noexcept { return kernel_->name; }

  PageBackingResult backing() const noexcept { return trace_.backing(); }

  // --- persistence ----------------------------------------------------------

  // Symmetric with TwoLevelCoverageMap's hooks so map-generic persistence
  // code compiles for both schemes. The flat map has no campaign-lifetime
  // state of its own (the trace is per-exec scratch; global coverage lives
  // in the virgin maps), so the export is empty and the import only
  // validates that the snapshot agrees.
  void export_state(std::vector<u32>* index, u32* used_key,
                    u64* saturated) const {
    index->clear();
    *used_key = 0;
    *saturated = 0;
  }
  bool import_state(std::span<const u32> index, u32 used_key,
                    u64 saturated) {
    (void)saturated;
    return index.empty() && used_key == 0;
  }

 private:
  PageBuffer trace_;
  const kernels::KernelOps* kernel_;
  u32 mask_;
  bool nontemporal_reset_;
  bool merged_classify_compare_;
  mutable MapOpCounts ops_;  // mutable: hash() is const
};

}  // namespace bigmap
