#include "core/virgin.h"

#include <cstring>

#include "core/classify.h"
#include "core/kernels/kernels.h"

namespace bigmap {

VirginMap::VirginMap(usize size, PageBacking backing) : buf_(size, backing) {
  reset();
}

void VirginMap::reset() noexcept {
  std::memset(buf_.data(), 0xFF, buf_.size());
}

usize VirginMap::count_covered() const noexcept {
  // Bytes that lost at least one bit since reset. Dispatched through the
  // process-default kernel: the count is kernel-independent (pinned by the
  // differential suite), so per-map kernel plumbing isn't warranted here.
  return kernels::active_kernel().count_ne(buf_.data(), buf_.size(), 0xFF);
}

namespace {

// All word-level access goes through memcpy'd locals: the byte buffers are
// only ever touched as bytes, so there is no strict-aliasing UB and the
// compiler still emits single 8-byte loads/stores.

inline u64 load64(const u8* p) noexcept {
  u64 v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void store64(u8* p, u64 v) noexcept { std::memcpy(p, &v, 8); }

// Byte-level inspection of a (classified trace word, virgin word) pair with
// (t & v) != 0: did any byte hit a fully-virgin (0xFF) slot?
inline NewBits inspect_hit_word(u64 t, u64 v) noexcept {
  NewBits result = NewBits::kNone;
  for (int i = 0; i < 8; ++i) {
    const u8 tb = static_cast<u8>(t >> (8 * i));
    const u8 vb = static_cast<u8>(v >> (8 * i));
    if ((tb & vb) != 0) {
      if (vb == 0xFF) return NewBits::kNewTuple;
      result = NewBits::kNewCounts;
    }
  }
  return result;
}

// Classifies one 8-byte word via the 16-bit LUT.
inline u64 classify_word(u64 t) noexcept {
  const auto& lut = count_class_lookup16();
  return static_cast<u64>(lut[t & 0xFFFF]) |
         (static_cast<u64>(lut[(t >> 16) & 0xFFFF]) << 16) |
         (static_cast<u64>(lut[(t >> 32) & 0xFFFF]) << 32) |
         (static_cast<u64>(lut[(t >> 48) & 0xFFFF]) << 48);
}

}  // namespace

NewBits compare_and_update_virgin(const u8* trace, u8* virgin,
                                  usize len) noexcept {
  NewBits result = NewBits::kNone;
  const usize words = len / 8;

  for (usize w = 0; w < words; ++w) {
    const u64 t = load64(trace + w * 8);
    if (t == 0) continue;
    const u64 v = load64(virgin + w * 8);
    if ((t & v) != 0) [[unlikely]] {
      if (result != NewBits::kNewTuple) {
        result = std::max(result, inspect_hit_word(t, v));
      }
      store64(virgin + w * 8, v & ~t);
    }
  }

  // Tail bytes (BigMap's used region is not always word-multiple).
  for (usize i = words * 8; i < len; ++i) {
    const u8 t = trace[i];
    if (t != 0 && (t & virgin[i]) != 0) {
      if (result != NewBits::kNewTuple) {
        result = (virgin[i] == 0xFF) ? NewBits::kNewTuple
                                     : std::max(result, NewBits::kNewCounts);
      }
      virgin[i] = static_cast<u8>(virgin[i] & ~t);
    }
  }

  return result;
}

NewBits classify_compare_update(u8* trace, u8* virgin, usize len) noexcept {
  NewBits result = NewBits::kNone;
  const auto& lut8 = count_class_lookup8();
  const usize words = len / 8;

  for (usize w = 0; w < words; ++w) {
    const u64 raw = load64(trace + w * 8);
    if (raw == 0) continue;

    const u64 t = classify_word(raw);
    store64(trace + w * 8, t);

    const u64 v = load64(virgin + w * 8);
    if ((t & v) != 0) {
      if (result != NewBits::kNewTuple) {
        result = std::max(result, inspect_hit_word(t, v));
      }
      store64(virgin + w * 8, v & ~t);
    }
  }

  for (usize i = words * 8; i < len; ++i) {
    if (trace[i] != 0) {
      trace[i] = lut8[trace[i]];
      const u8 t = trace[i];
      if ((t & virgin[i]) != 0) {
        if (result != NewBits::kNewTuple) {
          result = (virgin[i] == 0xFF)
                       ? NewBits::kNewTuple
                       : std::max(result, NewBits::kNewCounts);
        }
        virgin[i] = static_cast<u8>(virgin[i] & ~t);
      }
    }
  }

  return result;
}

}  // namespace bigmap
