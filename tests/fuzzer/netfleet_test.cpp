// Tests for the federation tier: wire codec, PeerLink session machine
// (novelty filter, session resume, go-back-N recovery, fault injection,
// fingerprint refusal), the NetHub gateway, and the half-report
// serialization the federated-pair harness speaks over its child pipes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fuzzer/netfleet/federate.h"
#include "fuzzer/netfleet/link.h"
#include "fuzzer/netfleet/nethub.h"
#include "fuzzer/netfleet/wire.h"
#include "fuzzer/sync.h"
#include "util/fault.h"

namespace bigmap::netfleet {
namespace {

constexpr u64 kMs = 1'000'000ull;

// ---------------------------------------------------------------- wire --

std::vector<u8> stream_with(const std::vector<Frame>& frames) {
  std::vector<u8> bytes;
  append_preamble(bytes);
  for (const Frame& f : frames) append_frame(bytes, f.type, f.payload);
  return bytes;
}

TEST(WireTest, RoundTripsEveryMessageType) {
  std::vector<u8> bytes;
  append_preamble(bytes);
  HelloMsg hello;
  hello.fingerprint = 0xDEADBEEFu;
  hello.node_id = 7;
  hello.recv_cursor = 42;
  append_hello(bytes, hello);
  append_entry(bytes, 9, Input{1, 2, 3});
  append_cursor(bytes, NetMsg::kHeartbeat, 13);
  append_cursor(bytes, NetMsg::kBye, 14);

  FrameDecoder dec;
  dec.feed(bytes);

  auto f1 = dec.next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, NetMsg::kHello);
  HelloMsg h;
  ASSERT_TRUE(parse_hello(f1->payload, &h));
  EXPECT_EQ(h.proto_version, kProtocolVersion);
  EXPECT_EQ(h.fingerprint, 0xDEADBEEFu);
  EXPECT_EQ(h.node_id, 7u);
  EXPECT_EQ(h.recv_cursor, 42u);

  auto f2 = dec.next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, NetMsg::kEntry);
  u64 seq = 0;
  Input data;
  ASSERT_TRUE(parse_entry(f2->payload, &seq, &data));
  EXPECT_EQ(seq, 9u);
  EXPECT_EQ(data, (Input{1, 2, 3}));

  auto f3 = dec.next();
  ASSERT_TRUE(f3.has_value());
  u64 cursor = 0;
  ASSERT_TRUE(parse_cursor(f3->payload, &cursor));
  EXPECT_EQ(cursor, 13u);

  auto f4 = dec.next();
  ASSERT_TRUE(f4.has_value());
  EXPECT_EQ(f4->type, NetMsg::kBye);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.broken());
}

TEST(WireTest, DecoderHandlesArbitrarySplitPoints) {
  std::vector<u8> bytes = stream_with({{NetMsg::kEntry, {}}});
  append_entry(bytes, 1, Input{7, 8});

  // Feed one byte at a time; frames must pop out exactly when complete.
  FrameDecoder dec;
  usize frames = 0;
  for (u8 b : bytes) {
    dec.feed({&b, 1});
    while (dec.next().has_value()) ++frames;
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_FALSE(dec.broken());
}

TEST(WireTest, CorruptedFrameBreaksStreamStickily) {
  std::vector<u8> bytes;
  append_preamble(bytes);
  append_entry(bytes, 0, Input{1, 2, 3, 4});
  bytes[bytes.size() - 6] ^= 0x40;  // flip a payload bit under the CRC

  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.broken());
  EXPECT_NE(dec.error().find("crc"), std::string::npos);

  // Sticky: more (valid) bytes cannot resurrect a torn stream.
  std::vector<u8> more;
  append_entry(more, 1, Input{5});
  dec.feed(more);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.broken());
}

TEST(WireTest, BadPreambleAndOversizeLengthAreRejected) {
  FrameDecoder dec;
  std::vector<u8> junk(8, 0x5A);
  dec.feed(junk);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.broken());

  FrameDecoder small(/*max_payload=*/8);
  std::vector<u8> bytes;
  append_preamble(bytes);
  append_entry(bytes, 0, Input(64, 1));  // payload > 8
  small.feed(bytes);
  EXPECT_FALSE(small.next().has_value());
  EXPECT_TRUE(small.broken());
}

// ---------------------------------------------------------------- link --

struct LinkPair {
  std::unique_ptr<PeerLink> a;  // listener
  std::unique_ptr<PeerLink> b;  // connector
  u64 now = 1 * kMs;

  explicit LinkPair(FaultInjector* fault_a = nullptr,
                    FaultInjector* fault_b = nullptr, u64 fp = 99,
                    u64 fp_b = 0) {
    NetPeerConfig ca;
    ca.enabled = true;
    ca.listener = true;
    ca.port = 0;  // ephemeral
    ca.session_fingerprint = fp;
    ca.heartbeat_ms = 5;
    ca.peer_timeout_ms = 500;
    ca.reconnect_initial_ms = 1;
    ca.reconnect_cap_ms = 5;
    a = std::make_unique<PeerLink>(ca, fault_a, 0, nullptr);
    EXPECT_TRUE(a->ok()) << a->error();

    NetPeerConfig cb = ca;
    cb.listener = false;
    cb.port = a->listen_port();
    cb.session_fingerprint = fp_b != 0 ? fp_b : fp;
    b = std::make_unique<PeerLink>(cb, fault_b, 0, nullptr);
    EXPECT_TRUE(b->ok()) << b->error();
  }

  // Pumps both sides `rounds` times, advancing fake time by step_ms.
  void pump(int rounds, u64 step_ms = 6) {
    for (int i = 0; i < rounds; ++i) {
      a->pump(now);
      b->pump(now);
      now += step_ms * kMs;
    }
  }
};

TEST(PeerLinkTest, ExchangesEntriesBothWays) {
  LinkPair p;
  p.pump(4);
  ASSERT_TRUE(p.a->connected());
  ASSERT_TRUE(p.b->connected());

  EXPECT_TRUE(p.a->offer(Input{1, 2}));
  EXPECT_TRUE(p.b->offer(Input{3, 4}));
  p.pump(4);

  auto at_b = p.b->take_received();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0], (Input{1, 2}));
  auto at_a = p.a->take_received();
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0], (Input{3, 4}));
}

TEST(PeerLinkTest, NoveltyFilterSuppressesKnownContent) {
  LinkPair p;
  p.pump(4);

  EXPECT_TRUE(p.a->offer(Input{9, 9}));
  EXPECT_FALSE(p.a->offer(Input{9, 9}));  // sent before: filtered
  p.pump(4);
  ASSERT_EQ(p.b->take_received().size(), 1u);

  // Content that arrived FROM the peer is also known to it — offering it
  // back is filtered, which is what kills the echo loop at the gateway.
  EXPECT_FALSE(p.b->offer(Input{9, 9}));
  EXPECT_EQ(p.a->stats().novelty_filtered, 1u);
  EXPECT_EQ(p.b->stats().novelty_filtered, 1u);
}

TEST(PeerLinkTest, DroppedFramesAreRecoveredByRewind) {
  // Drop the first two entry frames A sends; heartbeat-driven go-back-N
  // must redeliver them in order with no duplicates accepted.
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNetDrop, 0, 0});
  plan.triggers.push_back({FaultSite::kNetDrop, 0, 1});
  FaultInjector inj(5, plan);
  LinkPair p(&inj, nullptr);
  p.pump(4);

  EXPECT_TRUE(p.a->offer(Input{1}));
  EXPECT_TRUE(p.a->offer(Input{2}));
  EXPECT_TRUE(p.a->offer(Input{3}));
  p.pump(20);

  auto got = p.b->take_received();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (Input{1}));
  EXPECT_EQ(got[1], (Input{2}));
  EXPECT_EQ(got[2], (Input{3}));
  EXPECT_EQ(p.a->stats().injected_drops, 2u);
  EXPECT_GE(p.a->stats().rewinds, 1u);
  EXPECT_EQ(p.b->stats().records_received, 3u);
}

TEST(PeerLinkTest, ConnResetHealsWithSessionResume) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNetConnReset, 0, 6});
  FaultInjector inj(6, plan);
  LinkPair p(&inj, nullptr);
  p.pump(4);

  for (u8 i = 0; i < 20; ++i) {
    EXPECT_TRUE(p.a->offer(Input{i, 0x55}));
    p.pump(2);
  }
  p.pump(20);

  std::vector<Input> got = p.b->take_received();
  ASSERT_EQ(got.size(), 20u);
  for (u8 i = 0; i < 20; ++i) EXPECT_EQ(got[i], (Input{i, 0x55}));
  EXPECT_EQ(p.a->stats().injected_resets, 1u);
  // Both sides survived at least one reconnect.
  EXPECT_GE(p.a->stats().connects + p.b->stats().connects, 3u);
}

TEST(PeerLinkTest, ShortWriteTearsFrameButNeverDuplicatesAccepts) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNetShortWrite, 0, 1});
  FaultInjector inj(7, plan);
  LinkPair p(&inj, nullptr);
  p.pump(4);

  for (u8 i = 0; i < 10; ++i) EXPECT_TRUE(p.a->offer(Input{i, 0xCC}));
  p.pump(30);

  std::vector<Input> got = p.b->take_received();
  ASSERT_EQ(got.size(), 10u);
  for (u8 i = 0; i < 10; ++i) EXPECT_EQ(got[i], (Input{i, 0xCC}));
  EXPECT_EQ(p.a->stats().injected_short_writes, 1u);
  // Exactly-once: every accepted sequence is new; replays were dropped as
  // duplicates, not re-accepted.
  EXPECT_EQ(p.b->stats().records_received, 10u);
}

TEST(PeerLinkTest, PartitionPausesThenReconciles) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNetPartition, 0, 4});
  FaultInjector inj(8, plan);
  LinkPair p(&inj, nullptr);
  p.a->offer(Input{1});
  p.pump(8);  // connect, deliver, then hit the partition trigger
  ASSERT_EQ(p.a->stats().injected_partitions, 1u);
  EXPECT_TRUE(p.a->stats().partitioned);

  // During the cut, offers keep accumulating locally (graceful
  // degradation: fuzzing continues on local sync).
  for (u8 i = 0; i < 5; ++i) EXPECT_TRUE(p.a->offer(Input{i, 0x77}));
  p.pump(10);

  // Past partition_ms (default 500ms; pump steps 6ms), the link heals and
  // the backlog replays through the resume path.
  p.pump(100);
  std::vector<Input> got = p.b->take_received();
  EXPECT_EQ(got.size(), 6u);
  EXPECT_FALSE(p.a->stats().partitioned);
  EXPECT_EQ(p.a->stats().partition_ms_total, 500u);
}

TEST(PeerLinkTest, FingerprintMismatchIsFatalNotRetried) {
  LinkPair p(nullptr, nullptr, /*fp=*/111, /*fp_b=*/222);
  p.pump(10);
  // At least one side must have refused and latched the failure.
  const bool a_dead = !p.a->ok() || p.a->stats().gave_up;
  const bool b_dead = !p.b->ok() || p.b->stats().gave_up;
  EXPECT_TRUE(a_dead || b_dead);
  EXPECT_GE(p.a->stats().hello_rejected + p.b->stats().hello_rejected, 1u);
}

TEST(PeerLinkTest, PeerSilenceTriggersTimeoutAndReconnectBudget) {
  NetPeerConfig cb;
  cb.enabled = true;
  cb.listener = false;
  cb.host = "127.0.0.1";
  cb.port = 1;  // nothing listens on port 1
  cb.session_fingerprint = 1;
  cb.reconnect_initial_ms = 1;
  cb.reconnect_cap_ms = 2;
  cb.max_reconnects = 3;
  PeerLink lone(cb, nullptr, 0, nullptr);
  ASSERT_TRUE(lone.ok());
  u64 now = 1 * kMs;
  for (int i = 0; i < 50; ++i) {
    lone.pump(now);
    now += 5 * kMs;
  }
  // The retry budget is exhausted and the link degrades gracefully
  // (dead, not crashed, offers still absorbed locally).
  EXPECT_TRUE(lone.stats().gave_up);
  EXPECT_TRUE(lone.offer(Input{1}));
  EXPECT_LE(lone.stats().connects, 3u);
}

TEST(PeerLinkTest, OversizeEntriesAreRejectedAtOffer) {
  NetPeerConfig ca;
  ca.enabled = true;
  ca.listener = true;
  ca.port = 0;
  ca.max_entry_size = 4;
  PeerLink link(ca, nullptr, 0, nullptr);
  ASSERT_TRUE(link.ok());
  EXPECT_TRUE(link.offer(Input{1, 2, 3, 4}));
  EXPECT_FALSE(link.offer(Input{1, 2, 3, 4, 5}));
  EXPECT_EQ(link.stats().entries_offered, 1u);
}

// -------------------------------------------------------------- nethub --

TEST(NetHubTest, GatewayBridgesTwoLocalHubsWithoutEcho) {
  // Two 1-worker fleets, each with a gateway instance (id 1), federated.
  SyncHub hub_a(2);
  SyncHub hub_b(2);

  NetPeerConfig ca;
  ca.enabled = true;
  ca.listener = true;
  ca.port = 0;
  ca.session_fingerprint = 5;
  ca.heartbeat_ms = 5;
  auto link_a = std::make_unique<PeerLink>(ca, nullptr, 1, nullptr);
  ASSERT_TRUE(link_a->ok()) << link_a->error();
  NetPeerConfig cb = ca;
  cb.listener = false;
  cb.port = link_a->listen_port();
  auto link_b = std::make_unique<PeerLink>(cb, nullptr, 1, nullptr);
  ASSERT_TRUE(link_b->ok()) << link_b->error();

  NetHub net_a(&hub_a, 1, std::move(link_a));
  NetHub net_b(&hub_b, 1, std::move(link_b));

  // Worker 0 on side A finds something.
  EXPECT_TRUE(net_a.publish(0, Input{0xAB, 0xCD}));
  u64 now = 1 * kMs;
  for (int i = 0; i < 8; ++i) {
    net_a.pump(now);
    net_b.pump(now);
    now += 6 * kMs;
  }

  // Side B's worker imports it through its ordinary fetch.
  auto got = net_b.fetch_new(0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Input{0xAB, 0xCD}));

  // No echo: nothing ever comes back to side A.
  for (int i = 0; i < 8; ++i) {
    net_a.pump(now);
    net_b.pump(now);
    now += 6 * kMs;
  }
  EXPECT_TRUE(net_a.fetch_new(0).empty());
  EXPECT_EQ(net_a.link_stats().records_received, 0u);
  EXPECT_EQ(net_b.link_stats().records_sent, 0u);

  net_a.shutdown(now);
  net_b.shutdown(now);
}

// ------------------------------------------------------------ federate --

TEST(FederateTest, HalfReportRoundTrips) {
  procfleet::ProcFleetResult r;
  r.found_bug_ids = {3, 1, 7};
  r.found_stack_hashes = {0xAAAA, 0xBBBB};
  r.total_execs = 12345;
  r.total_interesting = 67;
  r.total_crashes = 8;
  r.net.records_sent = 11;
  r.net.records_received = 22;
  r.net.novelty_filtered = 33;
  r.net.reconnects = 2;
  r.net.partition_ms_total = 500;
  r.net.lost_to_eviction = 1;

  HalfReport h;
  ASSERT_TRUE(decode_half_report(encode_half_report(r, true, ""), &h));
  EXPECT_TRUE(h.ok);
  EXPECT_EQ(h.bug_ids, (std::vector<u32>{3, 1, 7}));
  EXPECT_EQ(h.stack_hashes, (std::vector<u64>{0xAAAA, 0xBBBB}));
  EXPECT_EQ(h.total_execs, 12345u);
  EXPECT_EQ(h.total_interesting, 67u);
  EXPECT_EQ(h.total_crashes, 8u);
  EXPECT_FALSE(h.all_completed);  // empty worker list
  EXPECT_EQ(h.net.records_sent, 11u);
  EXPECT_EQ(h.net.records_received, 22u);
  EXPECT_EQ(h.net.novelty_filtered, 33u);
  EXPECT_EQ(h.net.reconnects, 2u);
  EXPECT_EQ(h.net.partition_ms_total, 500u);
  EXPECT_EQ(h.net.lost_to_eviction, 1u);
}

TEST(FederateTest, FailureReportCarriesError) {
  HalfReport h;
  ASSERT_TRUE(decode_half_report(
      encode_half_report(procfleet::ProcFleetResult{}, false,
                         "segment attach refused"),
      &h));
  EXPECT_FALSE(h.ok);
  EXPECT_EQ(h.error, "segment attach refused");

  HalfReport none;
  EXPECT_FALSE(decode_half_report("", &none));
  EXPECT_FALSE(decode_half_report("garbage text\n", &none));
}

}  // namespace
}  // namespace bigmap::netfleet
