// Tests for the federation tier: wire codec, PeerLink session machine
// (novelty filter, session resume, go-back-N recovery, fault injection,
// fingerprint refusal, epoch fencing, eviction resync), the NetHub
// gateway, the FailoverMesh election machine, and the half-report
// serialization the federated-pair harness speaks over its child pipes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "fuzzer/netfleet/failover.h"
#include "fuzzer/netfleet/federate.h"
#include "fuzzer/netfleet/link.h"
#include "fuzzer/netfleet/nethub.h"
#include "fuzzer/netfleet/transport.h"
#include "fuzzer/netfleet/wire.h"
#include "fuzzer/sync.h"
#include "util/fault.h"

namespace bigmap::netfleet {
namespace {

constexpr u64 kMs = 1'000'000ull;

// ---------------------------------------------------------------- wire --

std::vector<u8> stream_with(const std::vector<Frame>& frames) {
  std::vector<u8> bytes;
  append_preamble(bytes);
  for (const Frame& f : frames) append_frame(bytes, f.type, f.payload);
  return bytes;
}

TEST(WireTest, RoundTripsEveryMessageType) {
  std::vector<u8> bytes;
  append_preamble(bytes);
  HelloMsg hello;
  hello.fingerprint = 0xDEADBEEFu;
  hello.node_id = 7;
  hello.recv_cursor = 42;
  hello.epoch = 3;
  hello.rank = 2;
  hello.log_base = 17;
  append_hello(bytes, hello);
  append_entry(bytes, 9, Input{1, 2, 3});
  append_delta(bytes, 10, Input{0xD0, 0xD1});
  append_cursor(bytes, NetMsg::kHeartbeat, 13);
  append_cursor(bytes, NetMsg::kResync, 21);
  append_cursor(bytes, NetMsg::kBye, 14);

  FrameDecoder dec;
  dec.feed(bytes);

  auto f1 = dec.next();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, NetMsg::kHello);
  HelloMsg h;
  ASSERT_TRUE(parse_hello(f1->payload, &h));
  EXPECT_EQ(h.proto_version, kProtocolVersion);
  EXPECT_EQ(h.fingerprint, 0xDEADBEEFu);
  EXPECT_EQ(h.node_id, 7u);
  EXPECT_EQ(h.recv_cursor, 42u);
  EXPECT_EQ(h.epoch, 3u);
  EXPECT_EQ(h.rank, 2u);
  EXPECT_EQ(h.log_base, 17u);

  auto f2 = dec.next();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, NetMsg::kEntry);
  u64 seq = 0;
  Input data;
  ASSERT_TRUE(parse_entry(f2->payload, &seq, &data));
  EXPECT_EQ(seq, 9u);
  EXPECT_EQ(data, (Input{1, 2, 3}));

  auto fd = dec.next();
  ASSERT_TRUE(fd.has_value());
  EXPECT_EQ(fd->type, NetMsg::kDelta);
  ASSERT_TRUE(parse_delta(fd->payload, &seq, &data));
  EXPECT_EQ(seq, 10u);
  EXPECT_EQ(data, (Input{0xD0, 0xD1}));

  auto f3 = dec.next();
  ASSERT_TRUE(f3.has_value());
  u64 cursor = 0;
  ASSERT_TRUE(parse_cursor(f3->payload, &cursor));
  EXPECT_EQ(cursor, 13u);

  auto fr = dec.next();
  ASSERT_TRUE(fr.has_value());
  EXPECT_EQ(fr->type, NetMsg::kResync);
  ASSERT_TRUE(parse_cursor(fr->payload, &cursor));
  EXPECT_EQ(cursor, 21u);

  auto f4 = dec.next();
  ASSERT_TRUE(f4.has_value());
  EXPECT_EQ(f4->type, NetMsg::kBye);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_FALSE(dec.broken());
}

TEST(WireTest, DecoderHandlesArbitrarySplitPoints) {
  std::vector<u8> bytes = stream_with({{NetMsg::kEntry, {}}});
  append_entry(bytes, 1, Input{7, 8});

  // Feed one byte at a time; frames must pop out exactly when complete.
  FrameDecoder dec;
  usize frames = 0;
  for (u8 b : bytes) {
    dec.feed({&b, 1});
    while (dec.next().has_value()) ++frames;
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_FALSE(dec.broken());
}

TEST(WireTest, CorruptedFrameBreaksStreamStickily) {
  std::vector<u8> bytes;
  append_preamble(bytes);
  append_entry(bytes, 0, Input{1, 2, 3, 4});
  bytes[bytes.size() - 6] ^= 0x40;  // flip a payload bit under the CRC

  FrameDecoder dec;
  dec.feed(bytes);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.broken());
  EXPECT_NE(dec.error().find("crc"), std::string::npos);

  // Sticky: more (valid) bytes cannot resurrect a torn stream.
  std::vector<u8> more;
  append_entry(more, 1, Input{5});
  dec.feed(more);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.broken());
}

TEST(WireTest, BadPreambleAndOversizeLengthAreRejected) {
  FrameDecoder dec;
  std::vector<u8> junk(8, 0x5A);
  dec.feed(junk);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.broken());

  FrameDecoder small(/*max_payload=*/8);
  std::vector<u8> bytes;
  append_preamble(bytes);
  append_entry(bytes, 0, Input(64, 1));  // payload > 8
  small.feed(bytes);
  EXPECT_FALSE(small.next().has_value());
  EXPECT_TRUE(small.broken());
}

// ---------------------------------------------------------------- link --

struct LinkPair {
  std::unique_ptr<PeerLink> a;  // listener
  std::unique_ptr<PeerLink> b;  // connector
  u64 now = 1 * kMs;

  explicit LinkPair(FaultInjector* fault_a = nullptr,
                    FaultInjector* fault_b = nullptr, u64 fp = 99,
                    u64 fp_b = 0) {
    NetPeerConfig ca;
    ca.enabled = true;
    ca.listener = true;
    ca.port = 0;  // ephemeral
    ca.session_fingerprint = fp;
    ca.heartbeat_ms = 5;
    ca.peer_timeout_ms = 500;
    ca.reconnect_initial_ms = 1;
    ca.reconnect_cap_ms = 5;
    a = std::make_unique<PeerLink>(ca, fault_a, 0, nullptr);
    EXPECT_TRUE(a->ok()) << a->error();

    NetPeerConfig cb = ca;
    cb.listener = false;
    cb.port = a->listen_port();
    cb.session_fingerprint = fp_b != 0 ? fp_b : fp;
    b = std::make_unique<PeerLink>(cb, fault_b, 0, nullptr);
    EXPECT_TRUE(b->ok()) << b->error();
  }

  // Pumps both sides `rounds` times, advancing fake time by step_ms.
  void pump(int rounds, u64 step_ms = 6) {
    for (int i = 0; i < rounds; ++i) {
      a->pump(now);
      b->pump(now);
      now += step_ms * kMs;
    }
  }
};

TEST(PeerLinkTest, ExchangesEntriesBothWays) {
  LinkPair p;
  p.pump(4);
  ASSERT_TRUE(p.a->connected());
  ASSERT_TRUE(p.b->connected());

  EXPECT_TRUE(p.a->offer(Input{1, 2}));
  EXPECT_TRUE(p.b->offer(Input{3, 4}));
  p.pump(4);

  auto at_b = p.b->take_received();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0], (Input{1, 2}));
  auto at_a = p.a->take_received();
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0], (Input{3, 4}));
}

TEST(PeerLinkTest, NoveltyFilterSuppressesKnownContent) {
  LinkPair p;
  p.pump(4);

  EXPECT_TRUE(p.a->offer(Input{9, 9}));
  EXPECT_FALSE(p.a->offer(Input{9, 9}));  // sent before: filtered
  p.pump(4);
  ASSERT_EQ(p.b->take_received().size(), 1u);

  // Content that arrived FROM the peer is also known to it — offering it
  // back is filtered, which is what kills the echo loop at the gateway.
  EXPECT_FALSE(p.b->offer(Input{9, 9}));
  EXPECT_EQ(p.a->stats().novelty_filtered, 1u);
  EXPECT_EQ(p.b->stats().novelty_filtered, 1u);
}

TEST(PeerLinkTest, DroppedFramesAreRecoveredByRewind) {
  // Drop the first two entry frames A sends; heartbeat-driven go-back-N
  // must redeliver them in order with no duplicates accepted.
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNetDrop, 0, 0});
  plan.triggers.push_back({FaultSite::kNetDrop, 0, 1});
  FaultInjector inj(5, plan);
  LinkPair p(&inj, nullptr);
  p.pump(4);

  EXPECT_TRUE(p.a->offer(Input{1}));
  EXPECT_TRUE(p.a->offer(Input{2}));
  EXPECT_TRUE(p.a->offer(Input{3}));
  p.pump(20);

  auto got = p.b->take_received();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (Input{1}));
  EXPECT_EQ(got[1], (Input{2}));
  EXPECT_EQ(got[2], (Input{3}));
  EXPECT_EQ(p.a->stats().injected_drops, 2u);
  EXPECT_GE(p.a->stats().rewinds, 1u);
  EXPECT_EQ(p.b->stats().records_received, 3u);
}

TEST(PeerLinkTest, ConnResetHealsWithSessionResume) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNetConnReset, 0, 6});
  FaultInjector inj(6, plan);
  LinkPair p(&inj, nullptr);
  p.pump(4);

  for (u8 i = 0; i < 20; ++i) {
    EXPECT_TRUE(p.a->offer(Input{i, 0x55}));
    p.pump(2);
  }
  p.pump(20);

  std::vector<Input> got = p.b->take_received();
  ASSERT_EQ(got.size(), 20u);
  for (u8 i = 0; i < 20; ++i) EXPECT_EQ(got[i], (Input{i, 0x55}));
  EXPECT_EQ(p.a->stats().injected_resets, 1u);
  // Both sides survived at least one reconnect.
  EXPECT_GE(p.a->stats().connects + p.b->stats().connects, 3u);
}

TEST(PeerLinkTest, ShortWriteTearsFrameButNeverDuplicatesAccepts) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNetShortWrite, 0, 1});
  FaultInjector inj(7, plan);
  LinkPair p(&inj, nullptr);
  p.pump(4);

  for (u8 i = 0; i < 10; ++i) EXPECT_TRUE(p.a->offer(Input{i, 0xCC}));
  p.pump(30);

  std::vector<Input> got = p.b->take_received();
  ASSERT_EQ(got.size(), 10u);
  for (u8 i = 0; i < 10; ++i) EXPECT_EQ(got[i], (Input{i, 0xCC}));
  EXPECT_EQ(p.a->stats().injected_short_writes, 1u);
  // Exactly-once: every accepted sequence is new; replays were dropped as
  // duplicates, not re-accepted.
  EXPECT_EQ(p.b->stats().records_received, 10u);
}

TEST(PeerLinkTest, PartitionPausesThenReconciles) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kNetPartition, 0, 4});
  FaultInjector inj(8, plan);
  LinkPair p(&inj, nullptr);
  p.a->offer(Input{1});
  p.pump(8);  // connect, deliver, then hit the partition trigger
  ASSERT_EQ(p.a->stats().injected_partitions, 1u);
  EXPECT_TRUE(p.a->stats().partitioned);

  // During the cut, offers keep accumulating locally (graceful
  // degradation: fuzzing continues on local sync).
  for (u8 i = 0; i < 5; ++i) EXPECT_TRUE(p.a->offer(Input{i, 0x77}));
  p.pump(10);

  // Past partition_ms (default 500ms; pump steps 6ms), the link heals and
  // the backlog replays through the resume path.
  p.pump(100);
  std::vector<Input> got = p.b->take_received();
  EXPECT_EQ(got.size(), 6u);
  EXPECT_FALSE(p.a->stats().partitioned);
  EXPECT_EQ(p.a->stats().partition_ms_total, 500u);
}

TEST(PeerLinkTest, FingerprintMismatchIsFatalNotRetried) {
  LinkPair p(nullptr, nullptr, /*fp=*/111, /*fp_b=*/222);
  p.pump(10);
  // At least one side must have refused and latched the failure.
  const bool a_dead = !p.a->ok() || p.a->stats().gave_up;
  const bool b_dead = !p.b->ok() || p.b->stats().gave_up;
  EXPECT_TRUE(a_dead || b_dead);
  EXPECT_GE(p.a->stats().hello_rejected + p.b->stats().hello_rejected, 1u);
}

TEST(PeerLinkTest, PeerSilenceTriggersTimeoutAndReconnectBudget) {
  NetPeerConfig cb;
  cb.enabled = true;
  cb.listener = false;
  cb.host = "127.0.0.1";
  cb.port = 1;  // nothing listens on port 1
  cb.session_fingerprint = 1;
  cb.reconnect_initial_ms = 1;
  cb.reconnect_cap_ms = 2;
  cb.max_reconnects = 3;
  PeerLink lone(cb, nullptr, 0, nullptr);
  ASSERT_TRUE(lone.ok());
  u64 now = 1 * kMs;
  for (int i = 0; i < 50; ++i) {
    lone.pump(now);
    now += 5 * kMs;
  }
  // The retry budget is exhausted and the link degrades gracefully
  // (dead, not crashed, offers still absorbed locally).
  EXPECT_TRUE(lone.stats().gave_up);
  EXPECT_TRUE(lone.offer(Input{1}));
  EXPECT_LE(lone.stats().connects, 3u);
}

TEST(PeerLinkTest, DeltaRecordsShareReplayLogWithEntries) {
  LinkPair p;
  p.pump(4);
  ASSERT_TRUE(p.a->connected());

  EXPECT_TRUE(p.a->offer(Input{1}));
  EXPECT_TRUE(p.a->offer_delta(Input{0xD0, 0xD0}));
  EXPECT_TRUE(p.a->offer(Input{2}));
  // Deltas are state, not corpus: the novelty filter does not apply, so
  // re-shipping identical bytes is allowed.
  EXPECT_TRUE(p.a->offer_delta(Input{0xD0, 0xD0}));
  p.pump(6);

  auto entries = p.b->take_received();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], (Input{1}));
  EXPECT_EQ(entries[1], (Input{2}));
  auto deltas = p.b->take_received_deltas();
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0], (Input{0xD0, 0xD0}));
  // One shared sequence space: all four records accepted in order.
  EXPECT_EQ(p.a->stats().deltas_sent, 2u);
  EXPECT_EQ(p.b->stats().deltas_received, 2u);
  EXPECT_EQ(p.b->stats().records_received, 4u);
  EXPECT_EQ(p.b->stats().recv_cursor, 4u);
}

TEST(PeerLinkTest, StaleHelloIsFencedYetTeachesTheNewerEpoch) {
  // Epoch 2 listener vs. epoch 1 dialer: the stale side must never
  // exchange records — but it MUST learn the newer epoch from the
  // listener's own hello. (Regression: fencing used to drop the whole
  // connection, clearing the unflushed hello with it, so a resurrected
  // stale hub probed forever without ever observing the new epoch.)
  NetPeerConfig ca;
  ca.enabled = true;
  ca.listener = true;
  ca.port = 0;
  ca.session_fingerprint = 44;
  ca.heartbeat_ms = 5;
  ca.peer_timeout_ms = 100;
  ca.reconnect_initial_ms = 1;
  ca.reconnect_cap_ms = 5;
  ca.epoch = 2;
  ca.rank = 1;
  PeerLink fresh(ca, nullptr, 0, nullptr);
  ASSERT_TRUE(fresh.ok()) << fresh.error();

  NetPeerConfig cb = ca;
  cb.listener = false;
  cb.port = fresh.listen_port();
  cb.epoch = 1;
  cb.rank = 0;
  PeerLink stale(cb, nullptr, 0, nullptr);
  ASSERT_TRUE(stale.ok()) << stale.error();

  (void)stale.offer(Input{0x5A});
  u64 now = 1 * kMs;
  for (int i = 0; i < 40; ++i) {
    fresh.pump(now);
    stale.pump(now);
    now += 6 * kMs;
  }

  EXPECT_GE(fresh.stats().stale_hellos_dropped, 1u);
  EXPECT_FALSE(fresh.connected());
  EXPECT_TRUE(fresh.take_received().empty());
  EXPECT_EQ(fresh.stats().records_received, 0u);
  // The stale side observed the fresh epoch — the signal its owner needs
  // to rejoin or fence itself.
  EXPECT_GE(stale.stats().epoch_ahead_seen, 1u);
  EXPECT_EQ(stale.observed_epoch(), 2u);
  EXPECT_EQ(stale.observed_rank(), 1u);
}

TEST(PeerLinkTest, CursorRewindPastEvictionForcesFullResync) {
  // A peer resuming from a cursor the bounded replay log has already
  // evicted must be routed through the documented full-resync path:
  // the gap is counted lost, a kResync fast-forwards the receiver, and
  // the exchange resumes — never a silent gap, never a stall.
  NetPeerConfig ca;
  ca.enabled = true;
  ca.listener = true;
  ca.port = 0;
  ca.session_fingerprint = 55;
  ca.heartbeat_ms = 5;
  ca.peer_timeout_ms = 200;
  ca.reconnect_initial_ms = 1;
  ca.reconnect_cap_ms = 5;
  ca.send_log_max = 4;
  PeerLink a(ca, nullptr, 0, nullptr);
  ASSERT_TRUE(a.ok()) << a.error();

  NetPeerConfig cb = ca;
  cb.listener = false;
  cb.port = a.listen_port();
  u64 now = 1 * kMs;
  auto pump_both = [&](PeerLink& b, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      a.pump(now);
      b.pump(now);
      now += 6 * kMs;
    }
  };

  {
    PeerLink b(cb, nullptr, 0, nullptr);
    ASSERT_TRUE(b.ok()) << b.error();
    pump_both(b, 4);
    ASSERT_TRUE(a.connected());
    for (u8 i = 0; i < 3; ++i) EXPECT_TRUE(a.offer(Input{i, 0xE0}));
    pump_both(b, 6);
    EXPECT_EQ(b.take_received().size(), 3u);

    // The peer goes silent (no pumps, no acks) while the campaign keeps
    // finding. Acked records trim the log, so eviction needs a
    // transmitted-but-UNACKED backlog: interleave offers with sender
    // pumps so send_pos_ runs ahead, then let the bound bite.
    for (u8 i = 0; i < 10; ++i) {
      EXPECT_TRUE(a.offer(Input{i, 0xE1}));
      a.pump(now);
      now += 3 * kMs;  // below the heartbeat timeout
    }
    EXPECT_GT(a.stats().log_evicted, 0u);
  }  // b dies without a goodbye; its cursor state dies with it

  // A replacement session resumes from cursor 0 — far behind log_base.
  PeerLink b2(cb, nullptr, 0, nullptr);
  ASSERT_TRUE(b2.ok()) << b2.error();
  pump_both(b2, 30);
  EXPECT_TRUE(a.offer(Input{0xFF, 0xE2}));  // exchange must have resumed
  pump_both(b2, 10);

  const LinkStats sa = a.stats();
  const LinkStats sb = b2.stats();
  EXPECT_GT(sa.lost_to_eviction, 0u);
  EXPECT_GE(sa.resyncs_sent, 1u);
  EXPECT_EQ(sb.resync_skipped, sa.lost_to_eviction);
  // No silent gap: every sequence a ever assigned is accounted for as
  // either lost-to-eviction or accepted by the resumed receiver.
  const std::vector<Input> got = b2.take_received();
  EXPECT_EQ(sa.lost_to_eviction + got.size(), sa.send_next);
  EXPECT_EQ(sb.recv_cursor, sa.send_next);
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.back(), (Input{0xFF, 0xE2}));
}

TEST(PeerLinkTest, OversizeEntriesAreRejectedAtOffer) {
  NetPeerConfig ca;
  ca.enabled = true;
  ca.listener = true;
  ca.port = 0;
  ca.max_entry_size = 4;
  PeerLink link(ca, nullptr, 0, nullptr);
  ASSERT_TRUE(link.ok());
  EXPECT_TRUE(link.offer(Input{1, 2, 3, 4}));
  EXPECT_FALSE(link.offer(Input{1, 2, 3, 4, 5}));
  EXPECT_EQ(link.stats().entries_offered, 1u);
}

// -------------------------------------------------------------- nethub --

TEST(NetHubTest, GatewayBridgesTwoLocalHubsWithoutEcho) {
  // Two 1-worker fleets, each with a gateway instance (id 1), federated.
  SyncHub hub_a(2);
  SyncHub hub_b(2);

  NetPeerConfig ca;
  ca.enabled = true;
  ca.listener = true;
  ca.port = 0;
  ca.session_fingerprint = 5;
  ca.heartbeat_ms = 5;
  auto link_a = std::make_unique<PeerLink>(ca, nullptr, 1, nullptr);
  ASSERT_TRUE(link_a->ok()) << link_a->error();
  NetPeerConfig cb = ca;
  cb.listener = false;
  cb.port = link_a->listen_port();
  auto link_b = std::make_unique<PeerLink>(cb, nullptr, 1, nullptr);
  ASSERT_TRUE(link_b->ok()) << link_b->error();

  NetHub net_a(&hub_a, 1, std::move(link_a));
  NetHub net_b(&hub_b, 1, std::move(link_b));

  // Worker 0 on side A finds something.
  EXPECT_TRUE(net_a.publish(0, Input{0xAB, 0xCD}));
  u64 now = 1 * kMs;
  for (int i = 0; i < 8; ++i) {
    net_a.pump(now);
    net_b.pump(now);
    now += 6 * kMs;
  }

  // Side B's worker imports it through its ordinary fetch.
  auto got = net_b.fetch_new(0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Input{0xAB, 0xCD}));

  // No echo: nothing ever comes back to side A.
  for (int i = 0; i < 8; ++i) {
    net_a.pump(now);
    net_b.pump(now);
    now += 6 * kMs;
  }
  EXPECT_TRUE(net_a.fetch_new(0).empty());
  EXPECT_EQ(net_a.link_stats().records_received, 0u);
  EXPECT_EQ(net_b.link_stats().records_sent, 0u);

  net_a.shutdown(now);
  net_b.shutdown(now);
}

// ------------------------------------------------------------ failover --

// Three FailoverMesh nodes wired over a real pre-bound listener matrix,
// driven by fake time from one thread — the in-process twin of the forked
// failover drill, small enough for the sanitizer jobs.
struct FailoverRing {
  static constexpr u32 kN = 3;
  std::vector<std::unique_ptr<SyncHub>> hubs;
  std::vector<std::unique_ptr<FailoverMesh>> meshes;
  int fds[kN][kN];
  u16 ports[kN][kN];
  u64 now = 1 * kMs;

  FailoverRing() {
    for (u32 h = 0; h < kN; ++h) {
      for (u32 s = 0; s < kN; ++s) {
        fds[h][s] = -1;
        ports[h][s] = 0;
        if (h == s) continue;
        std::string err;
        fds[h][s] = tcp_listen("127.0.0.1", &ports[h][s], &err);
        EXPECT_GE(fds[h][s], 0) << err;
      }
    }
    for (u32 i = 0; i < kN; ++i) {
      hubs.push_back(std::make_unique<SyncHub>(2));
      meshes.push_back(make_mesh(i, /*resume_probe=*/false,
                                 /*stale_fatal=*/false,
                                 /*initial_epoch=*/1));
    }
  }

  ~FailoverRing() {
    meshes.clear();
    for (u32 h = 0; h < kN; ++h) {
      for (u32 s = 0; s < kN; ++s) {
        if (fds[h][s] >= 0) ::close(fds[h][s]);
      }
    }
  }

  std::unique_ptr<FailoverMesh> make_mesh(u32 rank, bool resume_probe,
                                          bool stale_fatal, u64 epoch) {
    FailoverNodeConfig fc;
    fc.enabled = true;
    fc.rank = rank;
    fc.num_nodes = kN;
    fc.initial_leader = 0;
    fc.initial_epoch = epoch;
    fc.listen_fds.assign(kN, -1);
    fc.dial_ports.assign(kN, 0);
    for (u32 j = 0; j < kN; ++j) {
      if (j == rank) continue;
      fc.listen_fds[j] = fds[rank][j];
      fc.dial_ports[j] = ports[j][rank];
    }
    fc.link.session_fingerprint = 77;
    fc.link.node_id = rank;
    fc.link.heartbeat_ms = 5;
    fc.link.peer_timeout_ms = 60;
    fc.link.reconnect_initial_ms = 1;
    fc.link.reconnect_cap_ms = 5;
    fc.election_timeout_ms = 120;
    fc.delta_interval_ms = 0;
    fc.resume_probe = resume_probe;
    fc.stale_fatal = stale_fatal;
    fc.probe_timeout_ms = 240;
    return std::make_unique<FailoverMesh>(hubs[rank].get(), 1, fc,
                                          nullptr, nullptr, nullptr);
  }

  // Pumps every live mesh `rounds` times at 6ms fake steps.
  void pump(int rounds) {
    for (int i = 0; i < rounds; ++i) {
      for (auto& m : meshes) {
        if (m != nullptr) m->pump(now);
      }
      now += 6 * kMs;
    }
  }
};

TEST(FailoverTest, ElectsSuccessorRehomesAndFencesStaleNode) {
  FailoverRing ring;
  ring.pump(8);
  EXPECT_EQ(ring.meshes[0]->failover_stats().role, 0u);  // founding leader
  EXPECT_EQ(ring.meshes[1]->failover_stats().role, 1u);
  EXPECT_EQ(ring.meshes[2]->failover_stats().role, 1u);

  // Epoch-1 exchange: a find on node 1 reaches node 0 and node 2.
  EXPECT_TRUE(ring.meshes[1]->publish(0, Input{0xAA, 0xBB}));
  ring.pump(10);
  auto at0 = ring.meshes[0]->fetch_new(0);
  auto at2 = ring.meshes[2]->fetch_new(0);
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(at0[0], (Input{0xAA, 0xBB}));
  ASSERT_EQ(at2.size(), 1u);

  // Kill the leader. Its listener sockets stay bound (the parent-held
  // matrix), so spokes see connects that never hello — exactly the
  // silence the election timeout is specified against.
  ring.meshes[0].reset();
  ring.pump(60);  // > election_timeout at 6ms steps

  const FailoverStats s1 = ring.meshes[1]->failover_stats();
  const FailoverStats s2 = ring.meshes[2]->failover_stats();
  EXPECT_EQ(s1.epoch, 2u);
  EXPECT_EQ(s1.role, 0u);  // succ(0) == 1 promoted itself
  EXPECT_EQ(s1.leader_rank, 1u);
  EXPECT_EQ(s1.elections, 1u);
  EXPECT_EQ(s1.promotions, 1u);
  EXPECT_EQ(s2.epoch, 2u);
  EXPECT_EQ(s2.role, 1u);  // re-homed spoke
  EXPECT_EQ(s2.leader_rank, 1u);
  EXPECT_EQ(s2.elections, 1u);
  EXPECT_GE(s2.rehomes, 1u);

  // Exchange works in the new epoch.
  EXPECT_TRUE(ring.meshes[2]->publish(0, Input{0xCC, 0xDD}));
  ring.pump(10);
  auto at1 = ring.meshes[1]->fetch_new(0);
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(at1[0], (Input{0xCC, 0xDD}));

  // Resurrect rank 0 as a stale-fatal prober at its journaled epoch 1:
  // it must observe epoch 2 from the new leader and latch fenced — the
  // split-brain rejection — while the leader fences its hello out.
  ring.meshes[0] = ring.make_mesh(0, /*resume_probe=*/true,
                                  /*stale_fatal=*/true, /*epoch=*/1);
  ring.pump(30);
  const FailoverStats s0 = ring.meshes[0]->failover_stats();
  EXPECT_EQ(s0.fenced, 1u);
  EXPECT_EQ(s0.role, 3u);
  EXPECT_GE(s0.net.epoch_ahead_seen, 1u);
  EXPECT_GE(ring.meshes[1]->failover_stats().net.stale_hellos_dropped, 1u);
  // Fenced means out: node 0 exchanges nothing ever again.
  EXPECT_TRUE(ring.meshes[0]->fetch_new(0).empty());
}

TEST(FailoverTest, ResumeProbeFindsUnchangedLeaderAndRejoinsQuietly) {
  FailoverRing ring;
  ring.pump(8);
  // Node 2 restarts while the epoch-1 leader is alive and well: the probe
  // must resolve to the journaled topology without an election.
  ring.meshes[2] = ring.make_mesh(2, /*resume_probe=*/true,
                                  /*stale_fatal=*/false, /*epoch=*/1);
  ring.pump(20);
  const FailoverStats s2 = ring.meshes[2]->failover_stats();
  EXPECT_EQ(s2.epoch, 1u);
  EXPECT_EQ(s2.role, 1u);
  EXPECT_EQ(s2.leader_rank, 0u);
  EXPECT_EQ(s2.elections, 0u);
  EXPECT_EQ(s2.fenced, 0u);

  EXPECT_TRUE(ring.meshes[2]->publish(0, Input{0x11, 0x22}));
  ring.pump(10);
  auto at0 = ring.meshes[0]->fetch_new(0);
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(at0[0], (Input{0x11, 0x22}));
}

// ------------------------------------------------------------ federate --

TEST(FederateTest, HalfReportRoundTrips) {
  procfleet::ProcFleetResult r;
  r.found_bug_ids = {3, 1, 7};
  r.found_stack_hashes = {0xAAAA, 0xBBBB};
  r.total_execs = 12345;
  r.total_interesting = 67;
  r.total_crashes = 8;
  r.net.records_sent = 11;
  r.net.records_received = 22;
  r.net.novelty_filtered = 33;
  r.net.reconnects = 2;
  r.net.partition_ms_total = 500;
  r.net.lost_to_eviction = 1;
  r.net.deltas_sent = 5;
  r.net.deltas_received = 4;
  r.net.resyncs_sent = 1;
  r.net.resync_skipped = 9;
  r.net.stale_hellos_dropped = 3;
  r.net.epoch_ahead_seen = 2;
  r.oracle.deltas_exported = 6;
  r.oracle.cells_exported = 60;
  r.oracle.deltas_applied = 7;
  r.oracle.cells_applied = 70;
  r.failover.epoch = 4;
  r.failover.role = 1;
  r.failover.leader_rank = 2;
  r.failover.elections = 1;
  r.failover.promotions = 1;
  r.failover.rehomes = 2;
  r.failover.rejoins = 1;
  r.failover.fenced = 1;
  r.failover.handoff_reoffered = 8;
  r.failover.dup_suppressed = 12;
  r.failover.deltas_shipped = 13;
  r.failover.deltas_applied = 14;

  HalfReport h;
  ASSERT_TRUE(decode_half_report(encode_half_report(r, true, ""), &h));
  EXPECT_TRUE(h.ok);
  EXPECT_EQ(h.bug_ids, (std::vector<u32>{3, 1, 7}));
  EXPECT_EQ(h.stack_hashes, (std::vector<u64>{0xAAAA, 0xBBBB}));
  EXPECT_EQ(h.total_execs, 12345u);
  EXPECT_EQ(h.total_interesting, 67u);
  EXPECT_EQ(h.total_crashes, 8u);
  EXPECT_FALSE(h.all_completed);  // empty worker list
  EXPECT_EQ(h.net.records_sent, 11u);
  EXPECT_EQ(h.net.records_received, 22u);
  EXPECT_EQ(h.net.novelty_filtered, 33u);
  EXPECT_EQ(h.net.reconnects, 2u);
  EXPECT_EQ(h.net.partition_ms_total, 500u);
  EXPECT_EQ(h.net.lost_to_eviction, 1u);
  EXPECT_EQ(h.net.deltas_sent, 5u);
  EXPECT_EQ(h.net.deltas_received, 4u);
  EXPECT_EQ(h.net.resyncs_sent, 1u);
  EXPECT_EQ(h.net.resync_skipped, 9u);
  EXPECT_EQ(h.net.stale_hellos_dropped, 3u);
  EXPECT_EQ(h.net.epoch_ahead_seen, 2u);
  EXPECT_EQ(h.oracle.deltas_exported, 6u);
  EXPECT_EQ(h.oracle.cells_exported, 60u);
  EXPECT_EQ(h.oracle.deltas_applied, 7u);
  EXPECT_EQ(h.oracle.cells_applied, 70u);
  EXPECT_EQ(h.failover.epoch, 4u);
  EXPECT_EQ(h.failover.role, 1u);
  EXPECT_EQ(h.failover.leader_rank, 2u);
  EXPECT_EQ(h.failover.elections, 1u);
  EXPECT_EQ(h.failover.promotions, 1u);
  EXPECT_EQ(h.failover.rehomes, 2u);
  EXPECT_EQ(h.failover.rejoins, 1u);
  EXPECT_EQ(h.failover.fenced, 1u);
  EXPECT_EQ(h.failover.handoff_reoffered, 8u);
  EXPECT_EQ(h.failover.dup_suppressed, 12u);
  EXPECT_EQ(h.failover.deltas_shipped, 13u);
  EXPECT_EQ(h.failover.deltas_applied, 14u);
}

TEST(FederateTest, FailureReportCarriesError) {
  HalfReport h;
  ASSERT_TRUE(decode_half_report(
      encode_half_report(procfleet::ProcFleetResult{}, false,
                         "segment attach refused"),
      &h));
  EXPECT_FALSE(h.ok);
  EXPECT_EQ(h.error, "segment attach refused");

  HalfReport none;
  EXPECT_FALSE(decode_half_report("", &none));
  EXPECT_FALSE(decode_half_report("garbage text\n", &none));
}

}  // namespace
}  // namespace bigmap::netfleet
