// Tests for the parallel corpus-sync hub and parallel campaigns.
#include "fuzzer/sync.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "fuzzer/campaign.h"
#include "fuzzer/procfleet/shm.h"
#include "fuzzer/procfleet/shm_hub.h"
#include "target/generator.h"
#include "util/syscall.h"

namespace bigmap {
namespace {

TEST(SyncHubTest, FetchSkipsOwnPublications) {
  SyncHub hub(2);
  hub.publish(0, Input{1, 2, 3});
  EXPECT_TRUE(hub.fetch_new(0).empty());
  auto got = hub.fetch_new(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Input{1, 2, 3}));
}

TEST(SyncHubTest, CursorAdvances) {
  SyncHub hub(2);
  hub.publish(0, Input{1});
  EXPECT_EQ(hub.fetch_new(1).size(), 1u);
  EXPECT_TRUE(hub.fetch_new(1).empty());  // nothing new since last fetch
  hub.publish(0, Input{2});
  auto got = hub.fetch_new(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Input{2}));
}

TEST(SyncHubTest, MultipleInstancesInterleave) {
  SyncHub hub(3);
  hub.publish(0, Input{10});
  hub.publish(1, Input{11});
  hub.publish(2, Input{12});
  auto got0 = hub.fetch_new(0);
  ASSERT_EQ(got0.size(), 2u);
  EXPECT_EQ(got0[0], (Input{11}));
  EXPECT_EQ(got0[1], (Input{12}));
  EXPECT_EQ(hub.total_published(), 3u);
}

TEST(SyncHubTest, ThreadSafetyUnderContention) {
  constexpr u32 kInstances = 8;
  constexpr int kPerThread = 500;
  SyncHub hub(kInstances);
  std::vector<std::thread> threads;
  std::vector<usize> received(kInstances, 0);

  for (u32 id = 0; id < kInstances; ++id) {
    threads.emplace_back([&hub, &received, id]() {
      for (int i = 0; i < kPerThread; ++i) {
        hub.publish(id, Input{static_cast<u8>(id), static_cast<u8>(i)});
        received[id] += hub.fetch_new(id).size();
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(hub.total_published(), kInstances * kPerThread);
  // Drain: every instance must end up seeing everyone else's inputs.
  for (u32 id = 0; id < kInstances; ++id) {
    received[id] += hub.fetch_new(id).size();
    EXPECT_EQ(received[id], (kInstances - 1) * kPerThread) << id;
  }
}

TEST(SyncHubTest, BadInstanceIdsAreRejectedExplicitly) {
  SyncHub hub(2);
  EXPECT_THROW(hub.publish(2, Input{1}), std::out_of_range);
  EXPECT_THROW(hub.fetch_new(7), std::out_of_range);
  EXPECT_THROW(hub.reset_cursor(2), std::out_of_range);
  EXPECT_EQ(hub.total_published(), 0u);
}

TEST(SyncHubTest, CampaignRejectsBadSyncIdAtStart) {
  GeneratorParams gp;
  gp.seed = 5;
  gp.live_blocks = 64;
  auto target = generate_target(gp);
  auto seeds = make_seed_corpus(target, 2, 1);

  SyncHub hub(2);
  CampaignConfig c;
  c.map.huge_pages = false;
  c.max_execs = 100;
  c.sync = &hub;
  c.sync_id = 2;  // hub only has instances 0 and 1
  EXPECT_THROW(run_campaign(target.program, seeds, c),
               std::invalid_argument);
}

TEST(SyncHubTest, BoundedLogEvictsButKeepsLifetimeCount) {
  SyncHubOptions opts;
  opts.num_instances = 2;
  opts.max_records = 4;
  SyncHub hub(opts);

  for (u8 i = 0; i < 10; ++i) {
    EXPECT_TRUE(hub.publish(0, Input{i}));
  }
  EXPECT_EQ(hub.total_published(), 10u);  // lifetime, not live size

  auto got = hub.fetch_new(1);  // only the retained tail survives
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], (Input{6}));
  EXPECT_EQ(got[3], (Input{9}));

  const SyncHubStats s = hub.stats();
  EXPECT_EQ(s.evicted, 6u);
  EXPECT_EQ(s.live_records, 4u);
  ASSERT_EQ(s.missed.size(), 2u);
  EXPECT_EQ(s.missed[1], 6u);  // the gap is accounted, not silently lost
}

TEST(SyncHubTest, OversizedPublishesAreRejected) {
  SyncHubOptions opts;
  opts.num_instances = 2;
  opts.max_input_size = 4;
  SyncHub hub(opts);

  EXPECT_TRUE(hub.publish(0, Input{1, 2, 3, 4}));
  EXPECT_FALSE(hub.publish(0, Input{1, 2, 3, 4, 5}));
  EXPECT_EQ(hub.total_published(), 1u);
  EXPECT_EQ(hub.stats().rejected_oversize, 1u);
}

TEST(SyncHubTest, ResetCursorReimportsRetainedRecords) {
  SyncHub hub(2);
  hub.publish(0, Input{1});
  hub.publish(0, Input{2});
  EXPECT_EQ(hub.fetch_new(1).size(), 2u);
  EXPECT_TRUE(hub.fetch_new(1).empty());

  hub.reset_cursor(1);  // what the supervisor does on instance restart
  auto again = hub.fetch_new(1);
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[0], (Input{1}));
}

TEST(SyncHubTest, InjectedPublishDropsAreDeterministic) {
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kPublishDrop, /*instance=*/0,
                           /*nth=*/0});
  FaultInjector inj(3, plan);

  SyncHub hub(2);
  hub.set_fault_injector(&inj);
  EXPECT_FALSE(hub.publish(0, Input{1}));  // dropped
  EXPECT_TRUE(hub.publish(0, Input{2}));   // next occurrence passes
  EXPECT_EQ(hub.total_published(), 1u);
  EXPECT_EQ(hub.stats().dropped_faults, 1u);
}

// The cross-process hub's consumer reads are bounded-wait: a publisher
// that died between reserving a ring slot and committing it (SIGKILL
// mid-publish) must not wedge any reader. The reader waits out the
// timeout, counts a reader_timeout, skips the torn record, and still
// delivers every committed record around it.
TEST(ShmHubTest, DeadPublisherCannotWedgeReaders) {
  procfleet::ShmGeometry geom;
  geom.num_workers = 2;
  geom.max_records = 8;
  geom.max_input_size = 64;
  procfleet::ShmSegment seg(geom);
  procfleet::ShmHubOptions opts;
  opts.read_timeout_us = 1000;
  opts.read_poll_us = 50;
  procfleet::ShmHub hub(&seg, opts, nullptr);

  EXPECT_TRUE(hub.publish(0, Input{1}));
  hub.publish_partial(0, Input(16, 0xEE));  // reserved, never committed
  EXPECT_TRUE(hub.publish(0, Input{2}));

  auto got = hub.fetch_new(1);  // must return despite the torn record
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Input{1}));
  EXPECT_EQ(got[1], (Input{2}));

  const SyncHubStats s = hub.stats();
  EXPECT_EQ(s.reader_timeouts, 1u);
  EXPECT_EQ(s.fetched, 2u);

  // The cursor moved past the torn slot: the next fetch re-waits nothing.
  EXPECT_TRUE(hub.fetch_new(1).empty());
  EXPECT_EQ(hub.stats().reader_timeouts, 1u);
}

// The real thing, not the in-process publish_partial() simulation: a
// *forked* publisher process is SIGKILLed between reserving a ring slot
// and committing it. The parent's reader must wait out the bounded
// timeout, account exactly one reader_timeout, skip the dead record, and
// still deliver every record committed before and after the death.
TEST(ShmHubTest, ForkedPublisherKilledMidPublishIsSkipped) {
  procfleet::ShmGeometry geom;
  geom.num_workers = 2;
  geom.max_records = 8;
  geom.max_input_size = 64;
  procfleet::ShmSegment seg(geom);
  procfleet::ShmHubOptions opts;
  opts.read_timeout_us = 1000;
  opts.read_poll_us = 50;
  procfleet::ShmHub hub(&seg, opts, nullptr);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: its own hub object over the inherited MAP_SHARED segment.
    procfleet::ShmHub child_hub(&seg, opts, nullptr);
    child_hub.publish(0, Input{1});
    child_hub.publish_partial(0, Input(16, 0xEE));
    ::raise(SIGKILL);  // die inside the publish window
    ::_exit(99);       // unreachable
  }
  int status = 0;
  ASSERT_EQ(xwaitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The fleet keeps publishing around the corpse.
  EXPECT_TRUE(hub.publish(0, Input{2}));

  auto got = hub.fetch_new(1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Input{1}));
  EXPECT_EQ(got[1], (Input{2}));

  const SyncHubStats s = hub.stats();
  EXPECT_EQ(s.reader_timeouts, 1u);
  EXPECT_EQ(s.fetched, 2u);
  // The cursor moved past the dead slot: no re-wait on the next fetch.
  EXPECT_TRUE(hub.fetch_new(1).empty());
  EXPECT_EQ(hub.stats().reader_timeouts, 1u);
}

// Several torn slots in one retained window: each is waited out and
// accounted exactly once, committed records interleaved between them all
// arrive, and a second reader pays its own (equally bounded) waits —
// reader_timeouts accounts per skip, not per slot globally.
TEST(ShmHubTest, MultipleTornSlotsEachAccountedOnce) {
  procfleet::ShmGeometry geom;
  geom.num_workers = 3;
  geom.max_records = 16;
  geom.max_input_size = 64;
  procfleet::ShmSegment seg(geom);
  procfleet::ShmHubOptions opts;
  opts.read_timeout_us = 500;
  opts.read_poll_us = 50;
  procfleet::ShmHub hub(&seg, opts, nullptr);

  EXPECT_TRUE(hub.publish(0, Input{1}));
  hub.publish_partial(0, Input(8, 0xAA));
  EXPECT_TRUE(hub.publish(0, Input{2}));
  hub.publish_partial(0, Input(8, 0xBB));
  EXPECT_TRUE(hub.publish(0, Input{3}));

  auto got = hub.fetch_new(1);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (Input{1}));
  EXPECT_EQ(got[1], (Input{2}));
  EXPECT_EQ(got[2], (Input{3}));
  EXPECT_EQ(hub.stats().reader_timeouts, 2u);

  // A second reader crossing the same window pays its own two skips.
  auto got2 = hub.fetch_new(2);
  ASSERT_EQ(got2.size(), 3u);
  EXPECT_EQ(hub.stats().reader_timeouts, 4u);

  // Nobody re-waits on a slot already skipped.
  EXPECT_TRUE(hub.fetch_new(1).empty());
  EXPECT_TRUE(hub.fetch_new(2).empty());
  EXPECT_EQ(hub.stats().reader_timeouts, 4u);
}

// The in-process hub can never time out (publishes happen under a mutex),
// so its stats must report the wedge-free invariant explicitly.
TEST(ShmHubTest, InProcessHubReportsZeroReaderTimeouts) {
  SyncHub hub(2);
  hub.publish(0, Input{1});
  EXPECT_EQ(hub.fetch_new(1).size(), 1u);
  EXPECT_EQ(hub.stats().reader_timeouts, 0u);
}

TEST(SyncHubTest, ConcurrentPublishFetchWithEviction) {
  constexpr u32 kInstances = 8;
  constexpr int kPerThread = 500;
  SyncHubOptions opts;
  opts.num_instances = kInstances;
  opts.max_records = 256;
  SyncHub hub(opts);

  std::vector<std::thread> threads;
  for (u32 id = 0; id < kInstances; ++id) {
    threads.emplace_back([&hub, id]() {
      for (int i = 0; i < kPerThread; ++i) {
        hub.publish(id, Input{static_cast<u8>(id), static_cast<u8>(i)});
        hub.fetch_new(id);
        if (i % 100 == 0) hub.reset_cursor(id);
      }
    });
  }
  for (auto& t : threads) t.join();

  const SyncHubStats s = hub.stats();
  EXPECT_EQ(s.total_published, u64{kInstances} * kPerThread);
  EXPECT_EQ(s.live_records, 256u);
  EXPECT_EQ(s.evicted, u64{kInstances} * kPerThread - 256u);
}

TEST(ParallelCampaignTest, InstancesShareFindings) {
  GeneratorParams gp;
  gp.seed = 21;
  gp.live_blocks = 300;
  auto target = generate_target(gp);
  auto seeds = make_seed_corpus(target, 4, 1);

  SyncHub hub(2);
  CampaignResult results[2];
  std::vector<std::thread> threads;
  for (u32 id = 0; id < 2; ++id) {
    threads.emplace_back([&, id]() {
      CampaignConfig c;
      c.scheme = MapScheme::kTwoLevel;
      c.map.map_size = 1u << 16;
      c.map.huge_pages = false;
      c.max_execs = 15000;
      c.seed = 1000 + id;
      c.sync = &hub;
      c.sync_id = id;
      c.sync_interval = 1024;
      c.is_master = (id == 0);
      results[id] = run_campaign(target.program, seeds, c);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(hub.total_published(), 0u);
  for (const auto& r : results) {
    EXPECT_EQ(r.execs, 15000u);
    EXPECT_GT(r.covered_positions, 0u);
  }
}

}  // namespace
}  // namespace bigmap
