// Tests for the parallel corpus-sync hub and parallel campaigns.
#include "fuzzer/sync.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fuzzer/campaign.h"
#include "target/generator.h"

namespace bigmap {
namespace {

TEST(SyncHubTest, FetchSkipsOwnPublications) {
  SyncHub hub(2);
  hub.publish(0, Input{1, 2, 3});
  EXPECT_TRUE(hub.fetch_new(0).empty());
  auto got = hub.fetch_new(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Input{1, 2, 3}));
}

TEST(SyncHubTest, CursorAdvances) {
  SyncHub hub(2);
  hub.publish(0, Input{1});
  EXPECT_EQ(hub.fetch_new(1).size(), 1u);
  EXPECT_TRUE(hub.fetch_new(1).empty());  // nothing new since last fetch
  hub.publish(0, Input{2});
  auto got = hub.fetch_new(1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Input{2}));
}

TEST(SyncHubTest, MultipleInstancesInterleave) {
  SyncHub hub(3);
  hub.publish(0, Input{10});
  hub.publish(1, Input{11});
  hub.publish(2, Input{12});
  auto got0 = hub.fetch_new(0);
  ASSERT_EQ(got0.size(), 2u);
  EXPECT_EQ(got0[0], (Input{11}));
  EXPECT_EQ(got0[1], (Input{12}));
  EXPECT_EQ(hub.total_published(), 3u);
}

TEST(SyncHubTest, ThreadSafetyUnderContention) {
  constexpr u32 kInstances = 8;
  constexpr int kPerThread = 500;
  SyncHub hub(kInstances);
  std::vector<std::thread> threads;
  std::vector<usize> received(kInstances, 0);

  for (u32 id = 0; id < kInstances; ++id) {
    threads.emplace_back([&hub, &received, id]() {
      for (int i = 0; i < kPerThread; ++i) {
        hub.publish(id, Input{static_cast<u8>(id), static_cast<u8>(i)});
        received[id] += hub.fetch_new(id).size();
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(hub.total_published(), kInstances * kPerThread);
  // Drain: every instance must end up seeing everyone else's inputs.
  for (u32 id = 0; id < kInstances; ++id) {
    received[id] += hub.fetch_new(id).size();
    EXPECT_EQ(received[id], (kInstances - 1) * kPerThread) << id;
  }
}

TEST(ParallelCampaignTest, InstancesShareFindings) {
  GeneratorParams gp;
  gp.seed = 21;
  gp.live_blocks = 300;
  auto target = generate_target(gp);
  auto seeds = make_seed_corpus(target, 4, 1);

  SyncHub hub(2);
  CampaignResult results[2];
  std::vector<std::thread> threads;
  for (u32 id = 0; id < 2; ++id) {
    threads.emplace_back([&, id]() {
      CampaignConfig c;
      c.scheme = MapScheme::kTwoLevel;
      c.map.map_size = 1u << 16;
      c.map.huge_pages = false;
      c.max_execs = 15000;
      c.seed = 1000 + id;
      c.sync = &hub;
      c.sync_id = id;
      c.sync_interval = 1024;
      c.is_master = (id == 0);
      results[id] = run_campaign(target.program, seeds, c);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_GT(hub.total_published(), 0u);
  for (const auto& r : results) {
    EXPECT_EQ(r.execs, 15000u);
    EXPECT_GT(r.covered_positions, 0u);
  }
}

}  // namespace
}  // namespace bigmap
