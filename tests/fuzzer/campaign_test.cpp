// Tests for the campaign driver: full fuzzing loops on synthetic targets.
#include "fuzzer/campaign.h"

#include <gtest/gtest.h>

#include "target/generator.h"

namespace bigmap {
namespace {

GeneratedTarget small_target(u32 bugs = 4) {
  GeneratorParams p;
  p.name = "campaign-target";
  p.seed = 5;
  p.live_blocks = 300;
  p.num_bugs = bugs;
  p.bug_min_depth = 1;
  p.bug_max_depth = 2;
  return generate_target(p);
}

// Bug-dense variant for crash-discovery assertions: depth-1 chains only,
// so finds are a hit-rate question rather than a feedback question.
GeneratedTarget crashy_target() {
  GeneratorParams p;
  p.name = "crashy-target";
  p.seed = 5;
  p.live_blocks = 300;
  p.num_bugs = 16;
  p.bug_min_depth = 1;
  p.bug_max_depth = 1;
  return generate_target(p);
}

CampaignConfig base_config(MapScheme scheme, u64 execs = 20000) {
  CampaignConfig c;
  c.scheme = scheme;
  c.map.map_size = 1u << 16;
  c.map.huge_pages = false;
  c.max_execs = execs;
  c.seed = 99;
  return c;
}

TEST(CampaignTest, RunsToExecBudget) {
  auto t = small_target();
  auto seeds = make_seed_corpus(t, 5, 1);
  auto res = run_campaign(t.program, seeds, base_config(MapScheme::kFlat));
  EXPECT_EQ(res.execs, 20000u);
  EXPECT_GT(res.wall_seconds, 0.0);
  EXPECT_GT(res.throughput(), 0.0);
  EXPECT_GE(res.corpus_size, seeds.size());
  EXPECT_GT(res.interesting, 0u);
  EXPECT_GT(res.covered_positions, 0u);
}

TEST(CampaignTest, TwoLevelTracksUsedKey) {
  auto t = small_target();
  auto seeds = make_seed_corpus(t, 5, 1);
  auto res =
      run_campaign(t.program, seeds, base_config(MapScheme::kTwoLevel));
  EXPECT_GT(res.used_key, 0u);
  EXPECT_LT(res.used_key, 1u << 16);
  // Covered positions live inside the used region.
  EXPECT_LE(res.covered_positions, res.used_key);
}

TEST(CampaignTest, FlatReportsNoUsedKey) {
  auto t = small_target();
  auto seeds = make_seed_corpus(t, 3, 1);
  auto res = run_campaign(t.program, seeds, base_config(MapScheme::kFlat));
  EXPECT_EQ(res.used_key, 0u);
}

TEST(CampaignTest, FindsShallowBugs) {
  auto t = crashy_target();
  auto seeds = make_seed_corpus(t, 5, 1);
  CampaignConfig c = base_config(MapScheme::kTwoLevel, 80000);
  c.dictionary = t.dictionary();
  auto res = run_campaign(t.program, seeds, c);
  EXPECT_GT(res.crashes_total, 0u);
  EXPECT_GT(res.crashes_ground_truth, 0u);
  EXPECT_LE(res.crashes_ground_truth, t.program.num_bugs);
  // Crashwalk dedup can only refine (>=) the ground-truth count per site
  // reached through multiple stacks, and AFL-unique is its own measure.
  EXPECT_GE(res.crashes_crashwalk_unique, res.crashes_ground_truth);
  EXPECT_LE(res.crashes_crashwalk_unique, res.crashes_total);
}

TEST(CampaignTest, CoverageGrowsBeyondSeeds) {
  auto t = small_target(0);
  auto seeds = make_seed_corpus(t, 3, 1);

  CampaignConfig tiny = base_config(MapScheme::kTwoLevel, 100);
  auto early = run_campaign(t.program, seeds, tiny);
  CampaignConfig longer = base_config(MapScheme::kTwoLevel, 50000);
  auto late = run_campaign(t.program, seeds, longer);
  EXPECT_GT(late.covered_positions, early.covered_positions);
}

TEST(CampaignTest, DeterministicGivenSeed) {
  auto t = small_target();
  auto seeds = make_seed_corpus(t, 4, 2);
  CampaignConfig c = base_config(MapScheme::kTwoLevel, 5000);
  c.deterministic_timing = true;  // schedule on step counts, not wall time
  auto r1 = run_campaign(t.program, seeds, c);
  auto r2 = run_campaign(t.program, seeds, c);
  EXPECT_EQ(r1.execs, r2.execs);
  EXPECT_EQ(r1.interesting, r2.interesting);
  EXPECT_EQ(r1.covered_positions, r2.covered_positions);
  EXPECT_EQ(r1.used_key, r2.used_key);
  EXPECT_EQ(r1.crashes_ground_truth, r2.crashes_ground_truth);
  EXPECT_EQ(r1.corpus_size, r2.corpus_size);
}

TEST(CampaignTest, SchemesReachSimilarCoverage) {
  // The control experiment behind the whole paper: with the same budget in
  // *executions* (not wall clock), flat and two-level schemes explore
  // equivalently — the map scheme changes cost, not feedback.
  auto t = small_target(0);
  auto seeds = make_seed_corpus(t, 5, 3);
  auto flat =
      run_campaign(t.program, seeds, base_config(MapScheme::kFlat, 30000));
  auto two = run_campaign(t.program, seeds,
                          base_config(MapScheme::kTwoLevel, 30000));
  const double ratio = static_cast<double>(flat.covered_positions) /
                       static_cast<double>(two.covered_positions);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(CampaignTest, KeepCorpusReturnsInputs) {
  auto t = small_target();
  auto seeds = make_seed_corpus(t, 3, 1);
  CampaignConfig c = base_config(MapScheme::kTwoLevel, 5000);
  c.keep_corpus = true;
  auto res = run_campaign(t.program, seeds, c);
  EXPECT_EQ(res.corpus.size(), res.corpus_size);
  EXPECT_FALSE(res.corpus.empty());
}

TEST(CampaignTest, WallClockBudgetStops) {
  auto t = small_target();
  auto seeds = make_seed_corpus(t, 3, 1);
  CampaignConfig c = base_config(MapScheme::kTwoLevel, 0);
  c.max_seconds = 0.2;
  auto res = run_campaign(t.program, seeds, c);
  EXPECT_GT(res.execs, 0u);
  EXPECT_LT(res.wall_seconds, 2.0);
}

TEST(CampaignTest, EmptySeedsFallBackToDummy) {
  auto t = small_target();
  auto res = run_campaign(t.program, {},
                          base_config(MapScheme::kTwoLevel, 3000));
  EXPECT_EQ(res.execs, 3000u);
  EXPECT_GE(res.corpus_size, 1u);
}

TEST(CampaignTest, DeterministicStageRuns) {
  auto t = small_target();
  auto seeds = make_seed_corpus(t, 1, 1);
  CampaignConfig c = base_config(MapScheme::kTwoLevel, 3000);
  c.run_deterministic = true;
  auto res = run_campaign(t.program, seeds, c);
  EXPECT_EQ(res.execs, 3000u);
}

TEST(CampaignTest, NGramMetricCampaignWorks) {
  auto t = small_target();
  auto seeds = make_seed_corpus(t, 3, 1);
  CampaignConfig c = base_config(MapScheme::kTwoLevel, 10000);
  c.metric = MetricKind::kNGram;
  auto res = run_campaign(t.program, seeds, c);
  EXPECT_GT(res.covered_positions, 0u);

  // N-gram exerts more map pressure than edge coverage on the same target.
  CampaignConfig ce = base_config(MapScheme::kTwoLevel, 10000);
  auto res_edge = run_campaign(t.program, seeds, ce);
  EXPECT_GT(res.used_key, res_edge.used_key);
}

TEST(CampaignTest, ContextMetricCampaignWorks) {
  auto t = small_target();
  auto seeds = make_seed_corpus(t, 3, 1);
  CampaignConfig c = base_config(MapScheme::kTwoLevel, 10000);
  c.metric = MetricKind::kContext;
  auto res = run_campaign(t.program, seeds, c);
  EXPECT_GT(res.covered_positions, 0u);
}

TEST(MeasureCorpusEdgesTest, CountsDistinctDirectedEdges) {
  // Straight-line program: 0 -> 1 -> 2(exit): 2 edges.
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kFallthrough;
  p.blocks[0].targets = {1};
  p.blocks[1].kind = BlockKind::kFallthrough;
  p.blocks[1].targets = {2};
  p.blocks[2].kind = BlockKind::kExit;
  p.validate();

  EXPECT_EQ(measure_corpus_edges(p, {Input{0}}), 2u);
  // Duplicate corpus entries add nothing.
  EXPECT_EQ(measure_corpus_edges(p, {Input{0}, Input{0}}), 2u);
}

TEST(MeasureCorpusEdgesTest, EmptyCorpusIsZero) {
  Program p;
  p.blocks.resize(1);
  p.blocks[0].kind = BlockKind::kExit;
  p.validate();
  EXPECT_EQ(measure_corpus_edges(p, {}), 0u);
}

}  // namespace
}  // namespace bigmap
