// Tests for the fault-tolerant multi-threaded campaign supervisor.
//
// The key property (ISSUE acceptance): under a deterministic fault
// schedule that kills/stalls instances mid-run, the supervisor restarts
// them and the unioned found_bug_ids / found_stack_hashes equal the
// fault-free run's on the same seed. The target is sized so every instance
// saturates the (small) planted-bug set well within its budget, which
// makes the union comparison robust to sync-import interleaving.
#include "fuzzer/supervisor.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "target/generator.h"

namespace bigmap {
namespace {

GeneratedTarget make_target() {
  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

SupervisorConfig make_config() {
  SupervisorConfig sc;
  sc.num_instances = 4;
  sc.base.scheme = MapScheme::kTwoLevel;
  sc.base.map.map_size = 1u << 16;
  sc.base.map.huge_pages = false;
  sc.base.max_execs = 10000;
  sc.base.seed = 501;
  sc.base.sync_interval = 1024;
  sc.base.deterministic_timing = true;
  sc.poll_ms = 2;
  sc.stall_deadline_ms = 400;
  sc.max_restarts_per_instance = 3;
  sc.backoff_initial_ms = 5;
  sc.backoff_cap_ms = 50;
  return sc;
}

TEST(SupervisorTest, FaultFreeRunCompletesAllInstances) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  SupervisorConfig sc = make_config();

  auto r = run_supervised_campaign(target.program, seeds, sc);
  ASSERT_EQ(r.instances.size(), 4u);
  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.total_restarts, 0u);
  EXPECT_EQ(r.total_execs, 4u * sc.base.max_execs);
  EXPECT_GT(r.aggregate_throughput, 0.0);
  for (const InstanceHealth& h : r.instances) {
    EXPECT_EQ(h.attempts, 1u) << h.id;
    EXPECT_EQ(h.state, InstanceState::kCompleted) << h.id;
    EXPECT_EQ(h.execs, sc.base.max_execs) << h.id;
  }
  // Budget is sized to saturate the planted-bug set (3 bugs).
  EXPECT_EQ(r.found_bug_ids.size(), 3u);
  EXPECT_GE(r.found_stack_hashes.size(), 3u);
  EXPECT_GT(r.sync.total_published, 0u);
}

// ISSUE acceptance: kill one instance and stall another mid-run; the
// supervisor must restart both and the crash union must match the
// fault-free run on the same seeds.
TEST(SupervisorTest, KilledAndStalledInstancesRecoverWithoutLosingFinds) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  SupervisorConfig baseline_cfg = make_config();
  auto baseline = run_supervised_campaign(target.program, seeds,
                                          baseline_cfg);
  ASSERT_TRUE(baseline.all_completed());
  ASSERT_EQ(baseline.found_bug_ids.size(), 3u);

  FaultPlan plan;
  // Instance 1 dies outright at its 2000th execution attempt; instance 2
  // wedges for far longer than the watchdog deadline at its 2500th.
  plan.triggers.push_back({FaultSite::kInstanceKill, 1, 2000});
  plan.triggers.push_back({FaultSite::kTransientHang, 2, 2500});
  plan.hang_ms = 5000;
  FaultInjector inj(77, plan);

  SupervisorConfig sc = make_config();
  sc.stall_deadline_ms = 150;
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_TRUE(r.all_completed());
  EXPECT_GE(r.instances[1].kills, 1u);
  EXPECT_GE(r.instances[1].restarts, 1u);
  EXPECT_GE(r.instances[2].stalls, 1u);
  EXPECT_GE(r.instances[2].restarts, 1u);
  EXPECT_GE(r.total_restarts, 2u);
  // A cold restart opens a new budget segment charged with everything the
  // dead attempt consumed, so a flapping instance cannot exceed the
  // fleet's configured total: the faulted run's exec count is exactly the
  // fault-free one's.
  EXPECT_EQ(r.total_execs, baseline.total_execs);

  EXPECT_EQ(r.found_bug_ids, baseline.found_bug_ids);
  EXPECT_EQ(r.found_stack_hashes, baseline.found_stack_hashes);

  EXPECT_GE(r.faults_injected, 2u);
  EXPECT_EQ(r.faults_survived, r.faults_injected);
}

// RAII temp directory for persistence tests.
struct TempDir {
  explicit TempDir(const char* tag) {
    path = (std::filesystem::temp_directory_path() /
            (std::string("bigmap_sup_") + tag + "_" +
             std::to_string(static_cast<unsigned>(::getpid()))))
               .string();
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// Satellite: warm restarts. Same kill/stall schedule as above, but with a
// persist directory the replacement attempts resume from checkpoints. The
// find union and the exec total must still match the fault-free run.
TEST(SupervisorTest, WarmRestartsRecoverFindsAtEqualBudget) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  SupervisorConfig baseline_cfg = make_config();
  auto baseline = run_supervised_campaign(target.program, seeds,
                                          baseline_cfg);
  ASSERT_TRUE(baseline.all_completed());
  ASSERT_EQ(baseline.found_bug_ids.size(), 3u);

  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kInstanceKill, 1, 2000});
  plan.triggers.push_back({FaultSite::kTransientHang, 2, 2500});
  plan.hang_ms = 5000;
  FaultInjector inj(77, plan);

  TempDir dir("warm");
  SupervisorConfig sc = make_config();
  // Long enough that sanitizer-slowed execs and checkpoint writes don't
  // read as stalls, short enough to catch the injected 5 s hang quickly.
  sc.stall_deadline_ms = 1000;
  sc.fault = &inj;
  sc.persist_dir = dir.path;
  sc.checkpoint_interval = 512;  // checkpoints exist before the faults fire
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_TRUE(r.all_completed());
  EXPECT_FALSE(r.resumed);
  EXPECT_GE(r.total_restarts, 2u);
  u32 warm = 0;
  for (const InstanceHealth& h : r.instances) warm += h.warm_restarts;
  EXPECT_GE(warm, 2u);
  // Warm restarts keep the segment budget, so totals stay exact.
  EXPECT_EQ(r.total_execs, baseline.total_execs);
  // Warm finds must cover the cold run's finds at equal budget.
  EXPECT_EQ(r.found_bug_ids, baseline.found_bug_ids);
  EXPECT_EQ(r.found_stack_hashes, baseline.found_stack_hashes);

  EXPECT_GT(r.persist.checkpoints_written, 0u);
  EXPECT_GE(r.persist.checkpoints_loaded, 1u);
  EXPECT_GT(r.persist.checkpoint_bytes, 0u);
}

// ISSUE acceptance: whole-process resume. A first supervised run loses two
// instances mid-campaign with no retries left (stand-in for a SIGKILL'd
// process: the journal holds their partial accounting, the stores their
// checkpoints). A second run over the same directory with resume = true
// must finish only the interrupted instances and end with the same find
// union and exec total as an uninterrupted run.
TEST(SupervisorTest, WholeProcessResumeMatchesUninterruptedRun) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  SupervisorConfig baseline_cfg = make_config();
  auto baseline = run_supervised_campaign(target.program, seeds,
                                          baseline_cfg);
  ASSERT_TRUE(baseline.all_completed());
  ASSERT_EQ(baseline.found_bug_ids.size(), 3u);

  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kInstanceKill, 1, 2000});
  plan.triggers.push_back({FaultSite::kInstanceKill, 2, 2500});
  FaultInjector inj(77, plan);

  TempDir dir("resume");
  SupervisorConfig sc = make_config();
  sc.fault = &inj;
  sc.max_restarts_per_instance = 0;  // die in place, like a dead process
  // With no retries a spurious stall is fatal, so keep the watchdog
  // deadline above sanitizer-slowed exec + checkpoint-write pauses.
  sc.stall_deadline_ms = 2000;
  sc.persist_dir = dir.path;
  sc.checkpoint_interval = 512;
  auto interrupted = run_supervised_campaign(target.program, seeds, sc);
  EXPECT_FALSE(interrupted.all_completed());
  EXPECT_EQ(interrupted.instances[1].state, InstanceState::kFailed);
  EXPECT_EQ(interrupted.instances[2].state, InstanceState::kFailed);

  SupervisorConfig rc = make_config();
  rc.stall_deadline_ms = 2000;
  rc.persist_dir = dir.path;
  rc.resume = true;
  auto resumed = run_supervised_campaign(target.program, seeds, rc);

  EXPECT_TRUE(resumed.resumed);
  EXPECT_TRUE(resumed.all_completed());
  // Only the interrupted instances ran again; completed ones were replayed
  // from the journal without a new attempt.
  EXPECT_EQ(resumed.instances[0].attempts, 1u);
  EXPECT_EQ(resumed.instances[3].attempts, 1u);
  EXPECT_GE(resumed.instances[1].attempts, 2u);
  EXPECT_GE(resumed.instances[2].attempts, 2u);
  // Find-union semantics identical to an uninterrupted run, at the same
  // total budget.
  EXPECT_EQ(resumed.total_execs, baseline.total_execs);
  EXPECT_EQ(resumed.found_bug_ids, baseline.found_bug_ids);
  EXPECT_EQ(resumed.found_stack_hashes, baseline.found_stack_hashes);
  EXPECT_GE(resumed.persist.checkpoints_loaded, 1u);
  EXPECT_GE(resumed.persist.journal_events, 1u);
}

// Resuming against a directory written by a differently configured fleet
// must be refused, not silently merged.
TEST(SupervisorTest, ResumeWithMismatchedFingerprintThrows) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  TempDir dir("fingerprint");
  SupervisorConfig sc = make_config();
  sc.persist_dir = dir.path;
  (void)run_supervised_campaign(target.program, seeds, sc);

  SupervisorConfig other = make_config();
  other.persist_dir = dir.path;
  other.resume = true;
  other.base.seed = sc.base.seed + 1;  // different fleet identity
  EXPECT_THROW(run_supervised_campaign(target.program, seeds, other),
               std::runtime_error);
}

TEST(SupervisorTest, AllocationFailureIsRetried) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  // First PageBuffer allocation of instance 0's first attempt fails.
  plan.triggers.push_back({FaultSite::kAllocFail, 0, 0});
  FaultInjector inj(11, plan);

  SupervisorConfig sc = make_config();
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.instances[0].alloc_failures, 1u);
  EXPECT_EQ(r.instances[0].attempts, 2u);
  EXPECT_EQ(r.instances[0].last_error, "std::bad_alloc");
  EXPECT_EQ(r.instances[0].execs, sc.base.max_execs);
}

TEST(SupervisorTest, RetryBudgetExhaustionMarksInstanceFailed) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  // Kill instance 0 on every attempt: the occurrence counter is cumulative
  // across restarts, so spaced triggers land one per attempt.
  plan.triggers.push_back({FaultSite::kInstanceKill, 0, 100});
  plan.triggers.push_back({FaultSite::kInstanceKill, 0, 3000});
  plan.triggers.push_back({FaultSite::kInstanceKill, 0, 6000});
  FaultInjector inj(13, plan);

  SupervisorConfig sc = make_config();
  sc.num_instances = 2;
  sc.max_restarts_per_instance = 1;
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_FALSE(r.all_completed());
  EXPECT_EQ(r.instances[0].state, InstanceState::kFailed);
  EXPECT_EQ(r.instances[0].attempts, 2u);
  EXPECT_EQ(r.instances[0].kills, 2u);
  EXPECT_EQ(r.instances[0].last_error, "retry budget exhausted");
  EXPECT_EQ(r.instances[1].state, InstanceState::kCompleted);
  // Partial finds from the doomed instance's attempts are still unioned.
  EXPECT_GT(r.total_execs, 0u);
  EXPECT_EQ(r.found_bug_ids.size(), 3u);
}

TEST(SupervisorTest, ExecAbortFaultsAreSurvivedInPlace) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  plan.rates.push_back(
      {FaultSite::kExecAbort, /*per_million=*/20000});  // 2% of execs
  FaultInjector inj(29, plan);

  SupervisorConfig sc = make_config();
  sc.num_instances = 2;
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.total_restarts, 0u);
  u64 aborted = 0;
  for (const InstanceHealth& h : r.instances) aborted += h.faulted_execs;
  EXPECT_GT(aborted, 0u);
  EXPECT_EQ(r.faults_survived, r.faults_injected);
}

TEST(SupervisorTest, PublishDropsAreAccounted) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  plan.rates.push_back(
      {FaultSite::kPublishDrop, /*per_million=*/500000});  // 50%
  FaultInjector inj(31, plan);

  SupervisorConfig sc = make_config();
  sc.num_instances = 2;
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_TRUE(r.all_completed());
  EXPECT_GT(r.sync.dropped_faults, 0u);
  // Dropped publishes never cost the publisher its own triage record, so
  // the bug union is still intact.
  EXPECT_EQ(r.found_bug_ids.size(), 3u);
}

TEST(SupervisorTest, WallClockSafetyStopTerminatesRun) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  SupervisorConfig sc = make_config();
  sc.num_instances = 2;
  sc.base.max_execs = 0;           // unbounded instances...
  sc.base.max_seconds = 60.0;      // ...that would run for a minute
  sc.max_wall_seconds = 0.3;       // ...cut off by the supervisor
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_LT(r.wall_seconds, 10.0);
  ASSERT_EQ(r.instances.size(), 2u);
  for (const InstanceHealth& h : r.instances) {
    EXPECT_EQ(h.state, InstanceState::kFailed) << h.id;
    EXPECT_EQ(h.last_error, "supervisor wall-clock limit") << h.id;
  }
  EXPECT_GT(r.total_execs, 0u);
}

}  // namespace
}  // namespace bigmap
