// Tests for the fault-tolerant multi-threaded campaign supervisor.
//
// The key property (ISSUE acceptance): under a deterministic fault
// schedule that kills/stalls instances mid-run, the supervisor restarts
// them and the unioned found_bug_ids / found_stack_hashes equal the
// fault-free run's on the same seed. The target is sized so every instance
// saturates the (small) planted-bug set well within its budget, which
// makes the union comparison robust to sync-import interleaving.
#include "fuzzer/supervisor.h"

#include <gtest/gtest.h>

#include "target/generator.h"

namespace bigmap {
namespace {

GeneratedTarget make_target() {
  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

SupervisorConfig make_config() {
  SupervisorConfig sc;
  sc.num_instances = 4;
  sc.base.scheme = MapScheme::kTwoLevel;
  sc.base.map.map_size = 1u << 16;
  sc.base.map.huge_pages = false;
  sc.base.max_execs = 10000;
  sc.base.seed = 501;
  sc.base.sync_interval = 1024;
  sc.base.deterministic_timing = true;
  sc.poll_ms = 2;
  sc.stall_deadline_ms = 400;
  sc.max_restarts_per_instance = 3;
  sc.backoff_initial_ms = 5;
  sc.backoff_cap_ms = 50;
  return sc;
}

TEST(SupervisorTest, FaultFreeRunCompletesAllInstances) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  SupervisorConfig sc = make_config();

  auto r = run_supervised_campaign(target.program, seeds, sc);
  ASSERT_EQ(r.instances.size(), 4u);
  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.total_restarts, 0u);
  EXPECT_EQ(r.total_execs, 4u * sc.base.max_execs);
  EXPECT_GT(r.aggregate_throughput, 0.0);
  for (const InstanceHealth& h : r.instances) {
    EXPECT_EQ(h.attempts, 1u) << h.id;
    EXPECT_EQ(h.state, InstanceState::kCompleted) << h.id;
    EXPECT_EQ(h.execs, sc.base.max_execs) << h.id;
  }
  // Budget is sized to saturate the planted-bug set (3 bugs).
  EXPECT_EQ(r.found_bug_ids.size(), 3u);
  EXPECT_GE(r.found_stack_hashes.size(), 3u);
  EXPECT_GT(r.sync.total_published, 0u);
}

// ISSUE acceptance: kill one instance and stall another mid-run; the
// supervisor must restart both and the crash union must match the
// fault-free run on the same seeds.
TEST(SupervisorTest, KilledAndStalledInstancesRecoverWithoutLosingFinds) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  SupervisorConfig baseline_cfg = make_config();
  auto baseline = run_supervised_campaign(target.program, seeds,
                                          baseline_cfg);
  ASSERT_TRUE(baseline.all_completed());
  ASSERT_EQ(baseline.found_bug_ids.size(), 3u);

  FaultPlan plan;
  // Instance 1 dies outright at its 2000th execution attempt; instance 2
  // wedges for far longer than the watchdog deadline at its 2500th.
  plan.triggers.push_back({FaultSite::kInstanceKill, 1, 2000});
  plan.triggers.push_back({FaultSite::kTransientHang, 2, 2500});
  plan.hang_ms = 5000;
  FaultInjector inj(77, plan);

  SupervisorConfig sc = make_config();
  sc.stall_deadline_ms = 150;
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_TRUE(r.all_completed());
  EXPECT_GE(r.instances[1].kills, 1u);
  EXPECT_GE(r.instances[1].restarts, 1u);
  EXPECT_GE(r.instances[2].stalls, 1u);
  EXPECT_GE(r.instances[2].restarts, 1u);
  EXPECT_GE(r.total_restarts, 2u);
  // Restarted instances re-ran with a fresh budget, so the faulted run
  // executed strictly more than the fault-free one.
  EXPECT_GT(r.total_execs, baseline.total_execs);

  EXPECT_EQ(r.found_bug_ids, baseline.found_bug_ids);
  EXPECT_EQ(r.found_stack_hashes, baseline.found_stack_hashes);

  EXPECT_GE(r.faults_injected, 2u);
  EXPECT_EQ(r.faults_survived, r.faults_injected);
}

TEST(SupervisorTest, AllocationFailureIsRetried) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  // First PageBuffer allocation of instance 0's first attempt fails.
  plan.triggers.push_back({FaultSite::kAllocFail, 0, 0});
  FaultInjector inj(11, plan);

  SupervisorConfig sc = make_config();
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.instances[0].alloc_failures, 1u);
  EXPECT_EQ(r.instances[0].attempts, 2u);
  EXPECT_EQ(r.instances[0].last_error, "std::bad_alloc");
  EXPECT_EQ(r.instances[0].execs, sc.base.max_execs);
}

TEST(SupervisorTest, RetryBudgetExhaustionMarksInstanceFailed) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  // Kill instance 0 on every attempt: the occurrence counter is cumulative
  // across restarts, so spaced triggers land one per attempt.
  plan.triggers.push_back({FaultSite::kInstanceKill, 0, 100});
  plan.triggers.push_back({FaultSite::kInstanceKill, 0, 3000});
  plan.triggers.push_back({FaultSite::kInstanceKill, 0, 6000});
  FaultInjector inj(13, plan);

  SupervisorConfig sc = make_config();
  sc.num_instances = 2;
  sc.max_restarts_per_instance = 1;
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_FALSE(r.all_completed());
  EXPECT_EQ(r.instances[0].state, InstanceState::kFailed);
  EXPECT_EQ(r.instances[0].attempts, 2u);
  EXPECT_EQ(r.instances[0].kills, 2u);
  EXPECT_EQ(r.instances[0].last_error, "retry budget exhausted");
  EXPECT_EQ(r.instances[1].state, InstanceState::kCompleted);
  // Partial finds from the doomed instance's attempts are still unioned.
  EXPECT_GT(r.total_execs, 0u);
  EXPECT_EQ(r.found_bug_ids.size(), 3u);
}

TEST(SupervisorTest, ExecAbortFaultsAreSurvivedInPlace) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  plan.rates.push_back(
      {FaultSite::kExecAbort, /*per_million=*/20000});  // 2% of execs
  FaultInjector inj(29, plan);

  SupervisorConfig sc = make_config();
  sc.num_instances = 2;
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.total_restarts, 0u);
  u64 aborted = 0;
  for (const InstanceHealth& h : r.instances) aborted += h.faulted_execs;
  EXPECT_GT(aborted, 0u);
  EXPECT_EQ(r.faults_survived, r.faults_injected);
}

TEST(SupervisorTest, PublishDropsAreAccounted) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  plan.rates.push_back(
      {FaultSite::kPublishDrop, /*per_million=*/500000});  // 50%
  FaultInjector inj(31, plan);

  SupervisorConfig sc = make_config();
  sc.num_instances = 2;
  sc.fault = &inj;
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_TRUE(r.all_completed());
  EXPECT_GT(r.sync.dropped_faults, 0u);
  // Dropped publishes never cost the publisher its own triage record, so
  // the bug union is still intact.
  EXPECT_EQ(r.found_bug_ids.size(), 3u);
}

TEST(SupervisorTest, WallClockSafetyStopTerminatesRun) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  SupervisorConfig sc = make_config();
  sc.num_instances = 2;
  sc.base.max_execs = 0;           // unbounded instances...
  sc.base.max_seconds = 60.0;      // ...that would run for a minute
  sc.max_wall_seconds = 0.3;       // ...cut off by the supervisor
  auto r = run_supervised_campaign(target.program, seeds, sc);

  EXPECT_LT(r.wall_seconds, 10.0);
  ASSERT_EQ(r.instances.size(), 2u);
  for (const InstanceHealth& h : r.instances) {
    EXPECT_EQ(h.state, InstanceState::kFailed) << h.id;
    EXPECT_EQ(h.last_error, "supervisor wall-clock limit") << h.id;
  }
  EXPECT_GT(r.total_execs, 0u);
}

}  // namespace
}  // namespace bigmap
