// Robustness of the execution substrate inside the fuzzing loop:
//  - hang path end-to-end: step-budget exhaustion -> kHang -> virgin_hang_
//    routing in Executor::run -> CampaignResult::hangs, and
//  - graceful degradation when the condensed coverage bitmap saturates
//    (deliberately tiny condensed_size): new keys alias into the overflow
//    slot, saturated_updates() counts them, and the campaign keeps running.
#include <vector>

#include <gtest/gtest.h>

#include "core/two_level_map.h"
#include "fuzzer/campaign.h"
#include "fuzzer/executor.h"
#include "instrumentation/metrics.h"
#include "target/generator.h"
#include "target/program.h"
#include "util/timing.h"

namespace bigmap {
namespace {

// A loop whose iteration count is input[0]: byte values above the step
// budget reliably exhaust it.
Program hang_prone_program() {
  Program p;
  p.name = "hang-prone";
  p.nominal_input_size = 16;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kLoop;
  p.blocks[0].loop_max = 255;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kFallthrough;
  p.blocks[1].targets = {0};
  p.blocks[2].kind = BlockKind::kExit;
  p.validate();
  return p;
}

TEST(RobustnessTest, HangRoutesToHangVirginInExecutor) {
  const Program p = hang_prone_program();
  MapOptions opts;
  opts.map_size = 1u << 12;
  const BlockIdTable ids(p.blocks.size(), opts.map_size, 1);
  Executor<TwoLevelCoverageMap, EdgeMetric> ex(p, opts, ids,
                                               /*step_budget=*/16);
  OpTimeBreakdown timing;

  const std::vector<u8> hangy(16, 0xFF);
  const auto out = ex.run(hangy, timing);
  EXPECT_EQ(out.exec.outcome, ExecResult::Outcome::kHang);
  EXPECT_EQ(out.exec.steps, 16u);
  // The hang's trace lands in virgin_hang_, not the queue/crash maps.
  EXPECT_NE(out.outcome_new_bits, NewBits::kNone);
  EXPECT_GT(ex.virgin_hang().count_covered(), 0u);
  EXPECT_EQ(ex.virgin_queue().count_covered(), 0u);
  EXPECT_EQ(ex.virgin_crash().count_covered(), 0u);

  // The identical hang is no longer new.
  const auto again = ex.run(hangy, timing);
  EXPECT_EQ(again.exec.outcome, ExecResult::Outcome::kHang);
  EXPECT_EQ(again.outcome_new_bits, NewBits::kNone);

  // A clean input still goes down the ordinary queue path.
  const std::vector<u8> ok(16, 0);
  const auto clean = ex.run(ok, timing);
  EXPECT_EQ(clean.exec.outcome, ExecResult::Outcome::kOk);
  EXPECT_TRUE(clean.interesting());
  EXPECT_GT(ex.virgin_queue().count_covered(), 0u);
}

TEST(RobustnessTest, CampaignCountsHangsEndToEnd) {
  const Program p = hang_prone_program();
  CampaignConfig cfg;
  cfg.scheme = MapScheme::kTwoLevel;
  cfg.map.map_size = 1u << 12;
  cfg.step_budget = 64;  // bytes >= 32 at offset 0 hang
  cfg.max_execs = 4000;
  cfg.deterministic_timing = true;
  cfg.seed = 3;
  const std::vector<Input> seeds = {Input(16, 0)};

  const CampaignResult res = run_campaign(p, seeds, cfg);
  EXPECT_GE(res.execs, cfg.max_execs);
  EXPECT_GT(res.hangs, 0u);
  EXPECT_EQ(res.crashes_total, 0u);

  // Hang detection is a deterministic step count, not wall clock: the same
  // campaign reproduces the same hang tally.
  const CampaignResult rerun = run_campaign(p, seeds, cfg);
  EXPECT_EQ(res.hangs, rerun.hangs);
}

GeneratorParams saturation_params() {
  GeneratorParams gp;
  gp.name = "saturation";
  gp.seed = 5;
  gp.live_blocks = 300;
  return gp;
}

TEST(RobustnessTest, TinyCondensedMapCountsSaturatedUpdates) {
  const GeneratedTarget target = generate_target(saturation_params());
  MapOptions opts;
  opts.map_size = 1u << 16;
  opts.condensed_size = 64;  // far fewer slots than discoverable keys
  const BlockIdTable ids(target.program.blocks.size(), opts.map_size, 7);
  Executor<TwoLevelCoverageMap, EdgeMetric> ex(target.program, opts, ids,
                                               1u << 16);
  OpTimeBreakdown timing;
  for (const auto& input : make_seed_corpus(target, 20, 11)) {
    ex.run(input, timing);
  }
  // Every slot allocated, and the overflow keys were counted, not dropped.
  EXPECT_EQ(ex.map().used_key(), 64u);
  EXPECT_GT(ex.map().saturated_updates(), 0u);
  EXPECT_LE(ex.virgin_queue().count_covered(), 64u);
}

TEST(RobustnessTest, CampaignKeepsRunningUnderMapSaturation) {
  GeneratorParams gp = saturation_params();
  gp.num_bugs = 2;
  const GeneratedTarget target = generate_target(gp);

  CampaignConfig cfg;
  cfg.scheme = MapScheme::kTwoLevel;
  cfg.map.map_size = 1u << 16;
  cfg.map.condensed_size = 64;
  cfg.max_execs = 6000;
  cfg.deterministic_timing = true;
  cfg.seed = 9;
  cfg.dictionary = target.dictionary();

  const CampaignResult res =
      run_campaign(target.program, make_seed_corpus(target, 8, 3), cfg);
  // The campaign ran to its budget and degraded gracefully: coverage is
  // capped by the condensed capacity, aliased keys were counted, and the
  // loop never produced out-of-range state.
  EXPECT_GE(res.execs, cfg.max_execs);
  EXPECT_EQ(res.used_key, 64u);
  EXPECT_GT(res.saturated_updates, 0u);
  EXPECT_GT(res.covered_positions, 0u);
  EXPECT_LE(res.covered_positions, 64u);
}

}  // namespace
}  // namespace bigmap
