// Tests for the extended deterministic mutation stages.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "fuzzer/mutator.h"

namespace bigmap {
namespace {

Mutator make() { return Mutator({.max_input_size = 1024}, 1); }

TEST(DetByteflipTest, SingleByteWindowFlipsEveryByte) {
  Mutator m = make();
  const Input base{0x00, 0x11, 0x22};
  std::set<Input> variants;
  const usize n = m.det_byteflips(base, 1, [&](const Input& v) {
    variants.insert(v);
  });
  EXPECT_EQ(n, 3u);
  EXPECT_TRUE(variants.count(Input{0xFF, 0x11, 0x22}));
  EXPECT_TRUE(variants.count(Input{0x00, 0xEE, 0x22}));
  EXPECT_TRUE(variants.count(Input{0x00, 0x11, 0xDD}));
}

TEST(DetByteflipTest, WiderWindows) {
  Mutator m = make();
  const Input base(8, 0x00);
  EXPECT_EQ(m.det_byteflips(base, 2, [](const Input&) {}), 7u);
  EXPECT_EQ(m.det_byteflips(base, 4, [](const Input&) {}), 5u);
  EXPECT_EQ(m.det_byteflips(Input{1}, 2, [](const Input&) {}), 0u);
}

TEST(DetArith16Test, ProducesBothEndiannesses) {
  Mutator m = make();
  const Input base{0x00, 0x01};  // LE value 0x0100, BE view 0x0001
  std::set<Input> variants;
  const usize n =
      m.det_arith16(base, [&](const Input& v) { variants.insert(v); });
  EXPECT_EQ(n, 35u * 4);  // +/-d in LE and BE per position (1 position)
  // LE +1: 0x0101 -> bytes {01, 01}.
  EXPECT_TRUE(variants.count(Input{0x01, 0x01}));
  // BE +1: swap(0x0001 + 1 = 0x0002) -> bytes {00, 02}... stored swapped:
  // bswap16(0x0002) = 0x0200 -> LE bytes {00, 02}.
  EXPECT_TRUE(variants.count(Input{0x00, 0x02}));
}

TEST(DetArith32Test, CountAndRestore) {
  Mutator m = make();
  const Input base{1, 2, 3, 4, 5};
  usize count = 0;
  Input last_seen;
  const usize n = m.det_arith32(base, [&](const Input& v) {
    ++count;
    last_seen = v;
    EXPECT_EQ(v.size(), base.size());
  });
  EXPECT_EQ(n, count);
  EXPECT_EQ(n, 2u * 35u * 4);  // 2 positions x 35 deltas x (LE/BE +/-)
}

TEST(DetInteresting16Test, ContainsCanonicalValues) {
  Mutator m = make();
  const Input base{0xAA, 0xBB};
  std::set<Input> variants;
  m.det_interesting16(base, [&](const Input& v) { variants.insert(v); });
  // LE 0x7FFF (32767) -> {FF, 7F}; BE form -> {7F, FF}.
  EXPECT_TRUE(variants.count(Input{0xFF, 0x7F}));
  EXPECT_TRUE(variants.count(Input{0x7F, 0xFF}));
}

TEST(DetInteresting32Test, ProducesExpectedCount) {
  Mutator m = make();
  const Input base(6, 0);
  usize n = m.det_interesting32(base, [](const Input&) {});
  EXPECT_EQ(n, 3u * interesting_32().size() * 2);  // 3 positions x LE/BE
}

TEST(DetDictionaryTest, OverwritesAtEveryPosition) {
  Mutator::Options opts;
  opts.max_input_size = 64;
  opts.dictionary = {{0xDE, 0xAD}};
  Mutator m(opts, 1);
  const Input base(4, 0x00);
  std::set<Input> variants;
  const usize n =
      m.det_dictionary(base, [&](const Input& v) { variants.insert(v); });
  EXPECT_EQ(n, 3u);  // positions 0, 1, 2
  EXPECT_TRUE(variants.count(Input{0xDE, 0xAD, 0x00, 0x00}));
  EXPECT_TRUE(variants.count(Input{0x00, 0xDE, 0xAD, 0x00}));
  EXPECT_TRUE(variants.count(Input{0x00, 0x00, 0xDE, 0xAD}));
}

TEST(DetDictionaryTest, SkipsOversizedTokens) {
  Mutator::Options opts;
  opts.max_input_size = 64;
  opts.dictionary = {{1, 2, 3, 4, 5}};
  Mutator m(opts, 1);
  EXPECT_EQ(m.det_dictionary(Input{0, 0}, [](const Input&) {}), 0u);
}

TEST(DetStagesTest, AllRestoreBase) {
  // Property: after any deterministic stage completes, emitting the base
  // again must produce identical variants (working buffer fully restored).
  Mutator m = make();
  const Input base{10, 20, 30, 40, 50, 60};
  std::set<Input> first, second;
  m.det_arith16(base, [&](const Input& v) { first.insert(v); });
  m.det_arith16(base, [&](const Input& v) { second.insert(v); });
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace bigmap
