// Tests for crash triage and the three deduplication notions.
#include "fuzzer/crash.h"

#include <gtest/gtest.h>

namespace bigmap {
namespace {

ExecResult crash(u32 bug_id, u32 block, u64 stack_hash) {
  ExecResult r;
  r.outcome = ExecResult::Outcome::kCrash;
  r.bug_id = bug_id;
  r.faulting_block = block;
  r.stack_hash = stack_hash;
  return r;
}

TEST(CrashTriageTest, StartsEmpty) {
  CrashTriage t;
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.afl_unique(), 0u);
  EXPECT_EQ(t.crashwalk_unique(), 0u);
  EXPECT_EQ(t.ground_truth_unique(), 0u);
}

TEST(CrashTriageTest, CountsTotals) {
  CrashTriage t;
  t.record(crash(0, 10, 111), true);
  t.record(crash(0, 10, 111), false);
  t.record(crash(0, 10, 111), false);
  EXPECT_EQ(t.total(), 3u);
  EXPECT_EQ(t.afl_unique(), 1u);
  EXPECT_EQ(t.crashwalk_unique(), 1u);
  EXPECT_EQ(t.ground_truth_unique(), 1u);
}

TEST(CrashTriageTest, DistinctBugsDistinctEverywhere) {
  CrashTriage t;
  t.record(crash(0, 10, 111), true);
  t.record(crash(1, 20, 222), true);
  t.record(crash(2, 30, 333), true);
  EXPECT_EQ(t.crashwalk_unique(), 3u);
  EXPECT_EQ(t.ground_truth_unique(), 3u);
}

TEST(CrashTriageTest, SameBugDifferentStackCountsAsDistinctCrashwalk) {
  // Crashwalk keys on (stack, address): one planted bug reached through two
  // call chains counts twice for crashwalk, once for ground truth.
  CrashTriage t;
  t.record(crash(0, 10, 111), true);
  t.record(crash(0, 10, 999), false);
  EXPECT_EQ(t.crashwalk_unique(), 2u);
  EXPECT_EQ(t.ground_truth_unique(), 1u);
}

TEST(CrashTriageTest, SameStackDifferentBlockDistinct) {
  CrashTriage t;
  t.record(crash(0, 10, 111), true);
  t.record(crash(1, 11, 111), false);
  EXPECT_EQ(t.crashwalk_unique(), 2u);
}

TEST(CrashTriageTest, AflUniqueIndependentOfOtherDedup) {
  // AFL's map-based uniqueness can over- or under-count relative to
  // crashwalk; the triage records whatever the virgin-map comparison said.
  CrashTriage t;
  t.record(crash(0, 10, 111), false);  // AFL saw nothing new
  EXPECT_EQ(t.afl_unique(), 0u);
  EXPECT_EQ(t.crashwalk_unique(), 1u);
  t.record(crash(0, 10, 111), true);  // later, AFL map says new
  EXPECT_EQ(t.afl_unique(), 1u);
  EXPECT_EQ(t.crashwalk_unique(), 1u);
}

TEST(CrashTriageTest, BugIdsExposed) {
  CrashTriage t;
  t.record(crash(3, 1, 1), true);
  t.record(crash(9, 2, 2), true);
  EXPECT_TRUE(t.bug_ids().count(3));
  EXPECT_TRUE(t.bug_ids().count(9));
  EXPECT_FALSE(t.bug_ids().count(4));
}

}  // namespace
}  // namespace bigmap
