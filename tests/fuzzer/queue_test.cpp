// Tests for the seed queue: top_rated scoring, culling, perf score.
#include "fuzzer/queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace bigmap {
namespace {

Input bytes(usize n, u8 fill = 0xAA) { return Input(n, fill); }

TEST(SeedQueueTest, StartsEmpty) {
  SeedQueue q(64);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.favored_count(), 0u);
  EXPECT_EQ(q.top_rated_positions(), 0u);
}

TEST(SeedQueueTest, AddStoresMetadata) {
  SeedQueue q(64);
  const usize idx = q.add(bytes(10), 5000, 0xDEAD, 2);
  EXPECT_EQ(q.size(), 1u);
  const QueueEntry& e = q.entry(idx);
  EXPECT_EQ(e.data.size(), 10u);
  EXPECT_EQ(e.exec_ns, 5000u);
  EXPECT_EQ(e.bitmap_hash, 0xDEADu);
  EXPECT_EQ(e.depth, 2u);
  EXPECT_FALSE(e.favored);
  EXPECT_FALSE(e.was_fuzzed);
}

TEST(SeedQueueTest, EntryReferencesStableAcrossGrowth) {
  SeedQueue q(64);
  q.add(bytes(4, 1), 1, 0, 0);
  QueueEntry& first = q.entry(0);
  for (int i = 0; i < 100; ++i) q.add(bytes(4, 2), 1, 0, 0);
  EXPECT_EQ(first.data[0], 1);  // reference still valid
}

TEST(SeedQueueTest, TopRatedPrefersFasterSmaller) {
  SeedQueue q(16);
  std::vector<u8> trace(16, 0);
  trace[3] = 1;

  const usize slow = q.add(bytes(100), 10000, 0, 0);
  q.update_scores(slow, trace);
  q.cull();
  EXPECT_TRUE(q.entry(slow).favored);

  // A faster, smaller entry covering the same position takes over.
  const usize fast = q.add(bytes(10), 1000, 0, 0);
  q.update_scores(fast, trace);
  q.cull();
  EXPECT_TRUE(q.entry(fast).favored);
  EXPECT_FALSE(q.entry(slow).favored);
}

TEST(SeedQueueTest, WorseEntryDoesNotDethrone) {
  SeedQueue q(16);
  std::vector<u8> trace(16, 0);
  trace[3] = 1;

  const usize good = q.add(bytes(10), 1000, 0, 0);
  q.update_scores(good, trace);
  const usize bad = q.add(bytes(100), 9000, 0, 0);
  q.update_scores(bad, trace);
  q.cull();
  EXPECT_TRUE(q.entry(good).favored);
  EXPECT_FALSE(q.entry(bad).favored);
}

TEST(SeedQueueTest, DisjointCoverageBothFavored) {
  SeedQueue q(16);
  std::vector<u8> t1(16, 0), t2(16, 0);
  t1[1] = 1;
  t2[9] = 1;
  const usize a = q.add(bytes(8), 100, 0, 0);
  q.update_scores(a, t1);
  const usize b = q.add(bytes(8), 100, 0, 0);
  q.update_scores(b, t2);
  q.cull();
  EXPECT_TRUE(q.entry(a).favored);
  EXPECT_TRUE(q.entry(b).favored);
  EXPECT_EQ(q.top_rated_positions(), 2u);
}

TEST(SeedQueueTest, TraceSpanShorterThanMapIsFine) {
  // BigMap passes only the used region; positions beyond must be ignored.
  SeedQueue q(1024);
  std::vector<u8> used(5, 0);
  used[4] = 2;
  const usize e = q.add(bytes(8), 100, 0, 0);
  q.update_scores(e, used);
  q.cull();
  EXPECT_TRUE(q.entry(e).favored);
  EXPECT_EQ(q.top_rated_positions(), 1u);
}

TEST(SeedQueueTest, PerfScoreRewardsFastEntries) {
  SeedQueue q(16);
  const usize fast = q.add(bytes(8), 100, 0, 0);
  const usize slow = q.add(bytes(8), 10000, 0, 0);
  const u64 avg = q.average_exec_ns();
  EXPECT_GT(q.perf_score(fast, avg), q.perf_score(slow, avg));
}

TEST(SeedQueueTest, PerfScoreRewardsDepth) {
  SeedQueue q(16);
  const usize shallow = q.add(bytes(8), 100, 0, 0);
  const usize deep = q.add(bytes(8), 100, 0, 20);
  const u64 avg = q.average_exec_ns();
  EXPECT_GT(q.perf_score(deep, avg), q.perf_score(shallow, avg));
}

TEST(SeedQueueTest, PerfScoreClamped) {
  SeedQueue q(16);
  const usize e = q.add(bytes(8), 1, 0, 100);
  EXPECT_LE(q.perf_score(e, 1000000), 1600.0);
  EXPECT_GE(q.perf_score(e, 0), 10.0);
}

TEST(SeedQueueTest, AverageExecNs) {
  SeedQueue q(16);
  EXPECT_EQ(q.average_exec_ns(), 0u);
  q.add(bytes(1), 100, 0, 0);
  q.add(bytes(1), 300, 0, 0);
  EXPECT_EQ(q.average_exec_ns(), 200u);
}

TEST(SeedQueueTest, CullIsIdempotent) {
  SeedQueue q(16);
  std::vector<u8> trace(16, 0);
  trace[0] = 1;
  q.update_scores(q.add(bytes(4), 10, 0, 0), trace);
  q.cull();
  const usize favored = q.favored_count();
  q.cull();  // no pending changes: must not alter anything
  EXPECT_EQ(q.favored_count(), favored);
}

}  // namespace
}  // namespace bigmap
