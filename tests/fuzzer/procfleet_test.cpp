// Tests for the multi-process fleet runtime (fuzzer/procfleet).
//
// Key properties, mirroring the thread supervisor's acceptance but with
// real process deaths:
//  - a seeded chaos storm (SIGKILL-self, SIGSTOP-stall, exit-mid-publish,
//    mmap-fail, in-campaign kill) converges to exactly the fault-free
//    run's crash union and exec budget;
//  - a worker that keeps dying is quarantined, its undone budget is
//    redistributed, and the fleet still delivers the exact configured
//    budget (degraded but exact);
//  - every abnormal exit is triaged into its own counter class.
//
// The planted-bug target is shallow (every instance finds every bug well
// within its budget) so union comparisons are robust to interleaving.
#include "fuzzer/procfleet/coordinator.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "fuzzer/procfleet/shm.h"
#include "target/generator.h"
#include "telemetry/emit.h"

namespace bigmap {
namespace {

using procfleet::ProcFleetConfig;
using procfleet::ProcFleetResult;
using procfleet::WorkerState;
using procfleet::run_process_fleet;

GeneratedTarget make_target() {
  GeneratorParams gp;
  gp.seed = 33;
  gp.live_blocks = 200;
  gp.num_bugs = 3;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

std::string fresh_dir(const char* name) {
  const std::string dir = std::filesystem::temp_directory_path() /
                          (std::string("bigmap_procfleet_") + name + "_" +
                           std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

ProcFleetConfig make_config(const std::string& dir) {
  ProcFleetConfig fc;
  fc.num_workers = 4;
  fc.base.scheme = MapScheme::kTwoLevel;
  fc.base.map.map_size = 1u << 16;
  fc.base.map.huge_pages = false;
  fc.base.max_execs = 10000;
  fc.base.seed = 501;
  fc.base.sync_interval = 1024;
  fc.base.deterministic_timing = true;
  fc.poll_ms = 2;
  fc.stall_deadline_ms = 600;
  fc.max_restarts_per_worker = 10;
  fc.backoff_initial_ms = 5;
  fc.backoff_cap_ms = 50;
  fc.checkpoint_interval = 512;
  fc.persist_dir = dir;
  return fc;
}

TEST(ProcFleetTest, FaultFreeFleetCompletesExactly) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  const std::string dir = fresh_dir("clean");
  ProcFleetConfig fc = make_config(dir);

  ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
  ASSERT_EQ(r.workers.size(), 4u);
  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.total_restarts, 0u);
  EXPECT_EQ(r.total_execs, 4u * fc.base.max_execs);
  EXPECT_FALSE(r.resumed);
  EXPECT_FALSE(r.found_bug_ids.empty());
  std::filesystem::remove_all(dir);
}

TEST(ProcFleetTest, ChaosStormMatchesFaultFreeRun) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);

  const std::string clean_dir = fresh_dir("storm_ref");
  ProcFleetConfig clean = make_config(clean_dir);
  ProcFleetResult ref = run_process_fleet(target.program, seeds, clean);
  ASSERT_TRUE(ref.all_completed());

  const std::string storm_dir = fresh_dir("storm");
  ProcFleetConfig fc = make_config(storm_dir);
  fc.fault_enabled = true;
  fc.fault_seed = 77;
  fc.chaos_check_interval = 64;
  fc.fault_plan.triggers.push_back({FaultSite::kInstanceKill, 0, 800});
  fc.fault_plan.triggers.push_back({FaultSite::kProcKill, 1, 2});
  fc.fault_plan.triggers.push_back({FaultSite::kProcStall, 2, 5});
  fc.fault_plan.triggers.push_back({FaultSite::kProcExitMidPublish, 3, 3});
  fc.fault_plan.hang_ms = 20;

  ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
  EXPECT_TRUE(r.all_completed());
  EXPECT_GE(r.total_restarts, 3u);
  // Exact convergence: same crash union, same exec budget.
  EXPECT_EQ(r.found_bug_ids, ref.found_bug_ids);
  EXPECT_EQ(r.found_stack_hashes, ref.found_stack_hashes);
  EXPECT_EQ(r.total_execs, ref.total_execs);
  std::filesystem::remove_all(clean_dir);
  std::filesystem::remove_all(storm_dir);
}

TEST(ProcFleetTest, HangKillTriageCatchesStalledWorker) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  const std::string dir = fresh_dir("stall");
  ProcFleetConfig fc = make_config(dir);
  fc.num_workers = 2;
  fc.fault_enabled = true;
  fc.fault_seed = 7;
  fc.fault_plan.triggers.push_back({FaultSite::kProcStall, 1, 1});

  ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.workers[1].hang_kills, 1u);
  EXPECT_EQ(r.workers[0].hang_kills, 0u);
  EXPECT_EQ(r.total_execs, 2u * fc.base.max_execs);
  std::filesystem::remove_all(dir);
}

TEST(ProcFleetTest, OomExitIsTriagedAndRetried) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  const std::string dir = fresh_dir("oom");
  ProcFleetConfig fc = make_config(dir);
  fc.num_workers = 2;
  fc.fault_enabled = true;
  fc.fault_seed = 7;
  // First PageBuffer allocation of worker 1 throws bad_alloc -> exit 42.
  fc.fault_plan.triggers.push_back({FaultSite::kAllocFail, 1, 0});

  ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.workers[1].oom_kills, 1u);
  EXPECT_EQ(r.total_execs, 2u * fc.base.max_execs);
  std::filesystem::remove_all(dir);
}

TEST(ProcFleetTest, ShmAttachFailureIsTriagedAndRetried) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  const std::string dir = fresh_dir("shmfail");
  ProcFleetConfig fc = make_config(dir);
  fc.num_workers = 2;
  fc.fault_enabled = true;
  fc.fault_seed = 7;
  fc.fault_plan.triggers.push_back({FaultSite::kMmapFail, 0, 0});

  ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(r.workers[0].shm_failures, 1u);
  EXPECT_EQ(r.total_execs, 2u * fc.base.max_execs);
  std::filesystem::remove_all(dir);
}

TEST(ProcFleetTest, QuarantineParksRepeatOffenderWithExactBudget) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  const std::string dir = fresh_dir("quarantine");
  ProcFleetConfig fc = make_config(dir);
  fc.fault_enabled = true;
  fc.fault_seed = 7;
  fc.quarantine_deaths = 3;
  fc.quarantine_window_ms = 60000;
  // Worker 1 SIGKILLs itself on three consecutive chaos checks across
  // three process generations (occurrences are cumulative via the shm
  // mirror, so each relaunch consumes the next trigger).
  fc.fault_plan.triggers.push_back({FaultSite::kProcKill, 1, 1});
  fc.fault_plan.triggers.push_back({FaultSite::kProcKill, 1, 2});
  fc.fault_plan.triggers.push_back({FaultSite::kProcKill, 1, 3});

  ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
  ASSERT_EQ(r.workers.size(), 4u);
  EXPECT_EQ(r.quarantined, 1u);
  EXPECT_EQ(r.workers[1].state, WorkerState::kQuarantined);
  EXPECT_FALSE(r.all_completed());
  for (u32 id : {0u, 2u, 3u}) {
    EXPECT_EQ(r.workers[id].state, WorkerState::kCompleted) << id;
    // Survivors absorbed the parked worker's undone budget.
    EXPECT_GT(r.workers[id].goal, fc.base.max_execs) << id;
    EXPECT_GE(r.workers[id].execs, r.workers[id].goal) << id;
  }
  // Degraded but exact: parked durable execs + grown survivor goals sum
  // to precisely the configured fleet budget.
  EXPECT_EQ(r.total_execs, 4u * fc.base.max_execs);
  EXPECT_EQ(r.unassigned_budget, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ProcFleetTest, PersistDirIsRequired) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  ProcFleetConfig fc = make_config("");
  EXPECT_THROW(run_process_fleet(target.program, seeds, fc),
               std::invalid_argument);
}

TEST(ProcFleetTest, UndersizedTelemetryIsRejected) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  const std::string dir = fresh_dir("smalltel");
  ProcFleetConfig fc = make_config(dir);
  telemetry::FleetTelemetry fleet(2);  // 4 workers need >= 4 sinks
  fc.telemetry = &fleet;
  EXPECT_THROW(run_process_fleet(target.program, seeds, fc),
               std::invalid_argument);
  std::filesystem::remove_all(dir);
}

TEST(ProcFleetTest, ProcfleetCountersReachRegistryAndStatsFile) {
  auto target = make_target();
  auto seeds = make_seed_corpus(target, 4, 1);
  const std::string dir = fresh_dir("telemetry");
  ProcFleetConfig fc = make_config(dir);
  fc.num_workers = 2;
  fc.fault_enabled = true;
  fc.fault_seed = 7;
  fc.fault_plan.triggers.push_back({FaultSite::kProcKill, 1, 1});
  telemetry::FleetTelemetry fleet(2);
  fc.telemetry = &fleet;

  ProcFleetResult r = run_process_fleet(target.program, seeds, fc);
  EXPECT_TRUE(r.all_completed());
  EXPECT_EQ(fleet.registry().counter("procfleet.restarts").get(), 1u);
  EXPECT_EQ(fleet.registry().counter("procfleet.crash_signals").get(), 1u);
  // Per-worker heartbeats fed the sinks: fleet execs total matches.
  EXPECT_EQ(fleet.fleet_total().execs, r.total_execs);

  const std::string rendered =
      telemetry::render_registry_stats(fleet.registry());
  EXPECT_NE(rendered.find("procfleet.restarts"), std::string::npos);
  EXPECT_NE(rendered.find("procfleet.crash_signals"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ProcFleetShmTest, ValidateRejectsGeometryMismatch) {
  procfleet::ShmGeometry geom;
  geom.num_workers = 4;
  geom.max_records = 64;
  geom.max_input_size = 256;
  procfleet::ShmSegment seg(geom);

  std::string err;
  EXPECT_TRUE(seg.validate(4, nullptr, 0, &err)) << err;
  // A worker forked by a differently shaped coordinator must refuse.
  EXPECT_FALSE(seg.validate(8, nullptr, 0, &err));
  EXPECT_FALSE(err.empty());
}

TEST(ProcFleetShmTest, ValidateRejectsCorruptFingerprint) {
  procfleet::ShmGeometry geom;
  geom.num_workers = 2;
  geom.max_records = 64;
  geom.max_input_size = 256;
  procfleet::ShmSegment seg(geom);
  seg.header()->layout_fingerprint ^= 0xDEADBEEFULL;
  std::string err;
  EXPECT_FALSE(seg.validate(2, nullptr, 0, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace bigmap
