// Mode-equivalence differential harness (PR 4 kernel_diff_test style) for
// the coverage-guided tracing fast path.
//
// Claim under test: a TracingMode::kDual campaign — untraced execution by
// default, traced re-execution only when the interest oracle fires — finds
// EXACTLY what a TracingMode::kAlways campaign finds, at equal exec
// budgets, over the Table II profiles, including across mid-campaign
// checkpoint/resume and under injected instance kills (supervisor-restart
// semantics).
//
// What "exactly" means here (with deterministic_timing, same seed):
//   - execs / seed_execs / interesting / hangs counters equal
//   - found_bug_ids and found_stack_hashes (crash-dedup identities) equal
//   - every crash counter equal (total, AFL-unique, Crashwalk, ground truth)
//   - the queue CONTENTS equal: same entries, same bytes, same order
//   - covered virgin positions equal, coverage_series equal
//   - trim decisions equal (trim_execs / trimmed_bytes)
//
// What deliberately is NOT compared for the two-level scheme: used_key and
// per-entry bitmap_hash values. Dual mode allocates condensed slots only
// during traced executions, so the key->slot assignment ORDER differs
// between modes; the key-wise virgin state is provably identical (boring
// execs clear nothing in either mode, firing execs run identical traced
// compares), but slot-numbered artifacts are mode-relative. The flat
// scheme has no such indirection, so there everything is compared,
// bitmap hashes included.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzzer/campaign.h"
#include "persist/checkpoint.h"
#include "target/generator.h"
#include "target/suite.h"
#include "util/fault.h"

namespace bigmap {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const char* tag) {
    path = (fs::temp_directory_path() /
            (std::string("bigmap_modediff_") + tag + "_" +
             std::to_string(static_cast<unsigned>(::getpid()))))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

CampaignConfig diff_config(MapScheme scheme, TracingMode tracing,
                           u64 execs) {
  CampaignConfig c;
  c.scheme = scheme;
  c.tracing = tracing;
  c.map.map_size = 1u << 16;
  c.map.huge_pages = false;
  c.max_execs = execs;
  c.seed = 77;
  c.deterministic_timing = true;  // sched_ns = steps*100: mode-independent
  c.keep_corpus = true;
  c.series_interval = 1000;
  return c;
}

std::vector<u32> sorted(std::vector<u32> v) {
  std::sort(v.begin(), v.end());
  return v;
}
std::vector<u64> sorted(std::vector<u64> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// The full equality contract between a dual-mode and an always-trace result.
// `compare_map_artifacts` adds the slot-numbered comparisons that are only
// meaningful for the flat scheme.
void expect_equivalent(const CampaignResult& dual,
                       const CampaignResult& always,
                       bool compare_map_artifacts) {
  EXPECT_EQ(dual.execs, always.execs);
  EXPECT_EQ(dual.seed_execs, always.seed_execs);
  EXPECT_EQ(dual.interesting, always.interesting);
  EXPECT_EQ(dual.hangs, always.hangs);
  EXPECT_EQ(dual.trim_execs, always.trim_execs);
  EXPECT_EQ(dual.trimmed_bytes, always.trimmed_bytes);

  EXPECT_EQ(dual.crashes_total, always.crashes_total);
  EXPECT_EQ(dual.crashes_afl_unique, always.crashes_afl_unique);
  EXPECT_EQ(dual.crashes_crashwalk_unique, always.crashes_crashwalk_unique);
  EXPECT_EQ(dual.crashes_ground_truth, always.crashes_ground_truth);
  EXPECT_EQ(sorted(dual.found_bug_ids), sorted(always.found_bug_ids));
  EXPECT_EQ(sorted(dual.found_stack_hashes),
            sorted(always.found_stack_hashes));

  EXPECT_EQ(dual.covered_positions, always.covered_positions);
  EXPECT_EQ(dual.coverage_series, always.coverage_series);

  // Queue contents: byte-identical, in order.
  EXPECT_EQ(dual.corpus_size, always.corpus_size);
  ASSERT_EQ(dual.corpus.size(), always.corpus.size());
  for (usize i = 0; i < dual.corpus.size(); ++i) {
    EXPECT_EQ(dual.corpus[i], always.corpus[i]) << "queue entry " << i;
  }

  if (compare_map_artifacts) {
    EXPECT_EQ(dual.used_key, always.used_key);
    EXPECT_EQ(dual.saturated_updates, always.saturated_updates);
  }

  // Accounting invariants on both arms.
  EXPECT_EQ(dual.tracing_untraced_execs + dual.tracing_traced_execs,
            dual.execs);
  EXPECT_EQ(always.tracing_untraced_execs, 0u);
  EXPECT_EQ(always.tracing_traced_execs, always.execs);
}

// --- Table II sweep ---------------------------------------------------------

class ModeDiffTable2Test : public ::testing::TestWithParam<usize> {};

TEST_P(ModeDiffTable2Test, DualEqualsAlwaysTrace) {
  const BenchmarkInfo& info = full_table2_suite()[GetParam()];
  GeneratedTarget target = build_benchmark(info);
  std::vector<Input> seeds = benchmark_seeds(target, info);
  if (seeds.size() > 6) seeds.resize(6);  // runtime budget, not coverage

  for (MapScheme scheme : {MapScheme::kTwoLevel, MapScheme::kFlat}) {
    CampaignResult dual =
        run_campaign(target.program, seeds,
                     diff_config(scheme, TracingMode::kDual, 4000));
    CampaignResult always =
        run_campaign(target.program, seeds,
                     diff_config(scheme, TracingMode::kAlways, 4000));
    SCOPED_TRACE(info.name + (scheme == MapScheme::kFlat ? "/flat" : "/2l"));
    expect_equivalent(dual, always,
                      /*compare_map_artifacts=*/scheme == MapScheme::kFlat);
    // The fast path must actually engage, and every traced re-execution
    // must be PAID FOR: an eligible exec (non-seed, non-trim) runs traced
    // only when the oracle fired (=> it was interesting or crashed/hung)
    // or it crashed/hung unfired. So the untraced count is bounded below
    // by eligible - interesting - 2*(crashes + hangs) — any oracle
    // over-fire regression breaks this immediately, at every budget. The
    // tracing bench demonstrates the >80% steady-state ratio at scale.
    const u64 eligible = dual.execs - dual.seed_execs - dual.trim_execs;
    const u64 justified =
        dual.interesting + 2 * (dual.crashes_total + dual.hangs);
    EXPECT_GT(dual.tracing_untraced_execs, 0u);
    EXPECT_GE(dual.tracing_untraced_execs,
              eligible - std::min(eligible, justified));
    EXPECT_LE(dual.tracing_oracle_fires,
              dual.interesting + dual.crashes_total + dual.hangs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ModeDiffTable2Test,
    ::testing::Range<usize>(0, 19),
    [](const ::testing::TestParamInfo<usize>& i) {
      std::string n = full_table2_suite()[i.param].name;
      for (char& c : n) {
        if (c == '-' || c == '.' || c == '+') c = '_';
      }
      return n;
    });

// --- checkpoint / resume crossing -------------------------------------------

// Runs one interrupt-at-`part`-execs + resume-to-`full` sequence and
// returns the resumed result. The clean interrupt writes a completion
// checkpoint at exactly `part` execs, so both tracing modes restore from
// the identical exec point.
CampaignResult interrupted_resumed(const GeneratedTarget& target,
                                   const std::vector<Input>& seeds,
                                   MapScheme scheme, TracingMode tracing,
                                   const std::string& dir, u64 part,
                                   u64 full) {
  persist::CheckpointStore store1(dir, persist::FaultCtx{}, /*fresh=*/true);
  CampaignConfig pc = diff_config(scheme, tracing, part);
  pc.checkpoint = &store1;
  pc.checkpoint_interval = 1024;
  CampaignResult first = run_campaign(target.program, seeds, pc);
  EXPECT_GT(first.checkpoints_written, 0u);

  persist::CheckpointStore store2(dir, persist::FaultCtx{}, /*fresh=*/false);
  CampaignConfig rc = diff_config(scheme, tracing, full);
  rc.checkpoint = &store2;
  rc.checkpoint_interval = 1024;
  rc.resume_from_checkpoint = true;
  CampaignResult resumed = run_campaign(target.program, seeds, rc);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_from_execs, part);
  return resumed;
}

// Mode equivalence must survive a mid-campaign checkpoint/resume: when BOTH
// modes are interrupted at the same exec count and resumed from their
// snapshots, the resumed dual campaign still lands exactly on the resumed
// always-trace campaign's final state — resume re-derives the oracle's
// breakpoint set entirely from the snapshotted virgin + index state.
//
// (Deliberately NOT asserted: resumed == uninterrupted. The snapshot
// restarts the queue cycle at an entry boundary, so an interrupt landing
// mid-entry legally reshuffles the remaining havoc rounds — identically in
// both modes, which is exactly what this test pins.)
TEST(ModeDiffCheckpointTest, ResumeCrossesModesExactly) {
  GeneratorParams gp;
  gp.name = "modediff-ckpt";
  gp.seed = 9;
  gp.live_blocks = 250;
  gp.num_bugs = 4;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 2;
  GeneratedTarget target = generate_target(gp);
  std::vector<Input> seeds = make_seed_corpus(target, 4, 1);

  const u64 kPart = 4000, kFull = 9000;
  for (MapScheme scheme : {MapScheme::kTwoLevel, MapScheme::kFlat}) {
    SCOPED_TRACE(scheme == MapScheme::kFlat ? "flat" : "two-level");
    const bool flat = scheme == MapScheme::kFlat;

    TempDir dual_dir(flat ? "flat_d" : "twolevel_d");
    CampaignResult resumed_dual =
        interrupted_resumed(target, seeds, scheme, TracingMode::kDual,
                            dual_dir.path, kPart, kFull);
    TempDir always_dir(flat ? "flat_a" : "twolevel_a");
    CampaignResult resumed_always =
        interrupted_resumed(target, seeds, scheme, TracingMode::kAlways,
                            always_dir.path, kPart, kFull);

    expect_equivalent(resumed_dual, resumed_always, flat);

    // The kTracingState record carried the lifetime split across the
    // restart: the resumed dual run keeps accumulating untraced execs on
    // top of the restored counters, and the invariant stays exact.
    EXPECT_GT(resumed_dual.tracing_untraced_execs, 0u);
    EXPECT_GT(resumed_dual.tracing_oracle_fires, 0u);

    // Uninterrupted arms agree with each other too (same contract at a
    // budget the Table II sweep doesn't cover).
    CampaignResult straight = run_campaign(
        target.program, seeds, diff_config(scheme, TracingMode::kDual, kFull));
    CampaignResult always = run_campaign(
        target.program, seeds,
        diff_config(scheme, TracingMode::kAlways, kFull));
    expect_equivalent(straight, always, flat);
  }
}

// Kills a campaign mid-run with an injected kInstanceKill (a crashing
// worker cannot checkpoint at death), then relaunches it from the last
// periodic checkpoint and returns the recovered result.
CampaignResult killed_restarted(const GeneratedTarget& target,
                                const std::vector<Input>& seeds,
                                TracingMode tracing, const std::string& dir,
                                u64 kill_nth, u64 full) {
  persist::CheckpointStore store1(dir, persist::FaultCtx{}, /*fresh=*/true);
  FaultPlan plan;
  plan.triggers.push_back({FaultSite::kInstanceKill, 0, kill_nth});
  FaultInjector injector(1, plan);
  CampaignConfig doomed = diff_config(MapScheme::kTwoLevel, tracing, full);
  doomed.checkpoint = &store1;
  doomed.checkpoint_interval = 512;
  doomed.fault = &injector;
  CampaignResult died = run_campaign(target.program, seeds, doomed);
  EXPECT_TRUE(died.fault_aborted);
  EXPECT_GT(died.checkpoints_written, 0u);

  persist::CheckpointStore store2(dir, persist::FaultCtx{}, /*fresh=*/false);
  CampaignConfig relaunch = diff_config(MapScheme::kTwoLevel, tracing, full);
  relaunch.checkpoint = &store2;
  relaunch.checkpoint_interval = 512;
  relaunch.resume_from_checkpoint = true;
  CampaignResult resumed = run_campaign(target.program, seeds, relaunch);
  EXPECT_TRUE(resumed.resumed);
  return resumed;
}

// Supervisor-restart semantics: both modes die to the same injected
// kInstanceKill schedule mid-run and recover from their last periodic
// checkpoint, replaying the lost tail. The recovered dual campaign must
// land exactly on the recovered always-trace campaign's final state.
//
// The kill trigger counts fault-gate checks, and dual mode consumes one
// extra check per oracle fire — so the two arms die a few dozen execs
// apart. The restore points still align as long as both deaths fall in
// the same 512-exec checkpoint window, which the resumed_from assertion
// verifies before any stream comparison.
TEST(ModeDiffCheckpointTest, InstanceKillRestartStillMatchesAlwaysTrace) {
  GeneratorParams gp;
  gp.name = "modediff-kill";
  gp.seed = 21;
  gp.live_blocks = 250;
  gp.num_bugs = 4;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 2;
  GeneratedTarget target = generate_target(gp);
  std::vector<Input> seeds = make_seed_corpus(target, 4, 1);

  const u64 kFull = 8000, kKillNth = 3000;
  TempDir dual_dir("kill_d");
  CampaignResult resumed_dual = killed_restarted(
      target, seeds, TracingMode::kDual, dual_dir.path, kKillNth, kFull);
  TempDir always_dir("kill_a");
  CampaignResult resumed_always = killed_restarted(
      target, seeds, TracingMode::kAlways, always_dir.path, kKillNth, kFull);

  ASSERT_EQ(resumed_dual.resumed_from_execs,
            resumed_always.resumed_from_execs);
  expect_equivalent(resumed_dual, resumed_always,
                    /*compare_map_artifacts=*/false);
  EXPECT_GT(resumed_dual.tracing_untraced_execs, 0u);
}

}  // namespace
}  // namespace bigmap
