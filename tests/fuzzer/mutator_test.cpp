// Tests for the AFL mutation engine.
#include "fuzzer/mutator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace bigmap {
namespace {

Mutator::Options default_opts() {
  Mutator::Options o;
  o.max_input_size = 1024;
  return o;
}

TEST(MutatorTest, HavocChangesInput) {
  Mutator m(default_opts(), 1);
  const Input base(64, 0x00);
  usize changed = 0;
  for (int i = 0; i < 50; ++i) {
    Input work = base;
    m.havoc(work);
    if (work != base) ++changed;
  }
  EXPECT_GT(changed, 45u);  // havoc virtually always mutates something
}

TEST(MutatorTest, HavocRespectsMaxSize) {
  Mutator::Options o = default_opts();
  o.max_input_size = 100;
  Mutator m(o, 2);
  Input work(90, 0xAB);
  for (int i = 0; i < 500; ++i) m.havoc(work);
  EXPECT_LE(work.size(), 100u);
}

TEST(MutatorTest, HavocOnEmptyInputProducesBytes) {
  Mutator m(default_opts(), 3);
  Input work;
  m.havoc(work);
  EXPECT_FALSE(work.empty());
}

TEST(MutatorTest, HavocNeverProducesEmpty) {
  Mutator m(default_opts(), 4);
  Input work(2, 1);
  for (int i = 0; i < 1000; ++i) {
    m.havoc(work);
    ASSERT_FALSE(work.empty());
  }
}

TEST(MutatorTest, DeterministicInSeed) {
  Mutator a(default_opts(), 42), b(default_opts(), 42);
  Input wa(32, 0x11), wb(32, 0x11);
  for (int i = 0; i < 20; ++i) {
    a.havoc(wa);
    b.havoc(wb);
    ASSERT_EQ(wa, wb);
  }
}

TEST(MutatorTest, DictionaryTokensAppear) {
  Mutator::Options o = default_opts();
  o.dictionary = {{0xDE, 0xAD, 0xBE, 0xEF}};
  Mutator m(o, 5);
  bool seen = false;
  for (int i = 0; i < 2000 && !seen; ++i) {
    Input work(32, 0x00);
    m.havoc(work);
    for (usize j = 0; j + 4 <= work.size(); ++j) {
      if (work[j] == 0xDE && work[j + 1] == 0xAD && work[j + 2] == 0xBE &&
          work[j + 3] == 0xEF) {
        seen = true;
        break;
      }
    }
  }
  EXPECT_TRUE(seen);
}

TEST(MutatorTest, SpliceCombinesBothParents) {
  Mutator m(default_opts(), 6);
  const Input a(50, 0xAA), b(50, 0xBB);
  bool mixed = false;
  for (int i = 0; i < 50 && !mixed; ++i) {
    auto out = m.splice(a, b);
    ASSERT_TRUE(out.has_value());
    const bool has_a = std::count(out->begin(), out->end(), 0xAA) > 0;
    const bool has_b = std::count(out->begin(), out->end(), 0xBB) > 0;
    mixed = has_a && has_b;
    // Prefix from a, suffix from b.
    EXPECT_EQ(out->front(), 0xAA);
    EXPECT_EQ(out->back(), 0xBB);
  }
  EXPECT_TRUE(mixed);
}

TEST(MutatorTest, SpliceRejectsTinyInputs) {
  Mutator m(default_opts(), 7);
  EXPECT_FALSE(m.splice(Input(2), Input(50)).has_value());
  EXPECT_FALSE(m.splice(Input(50), Input(3)).has_value());
  EXPECT_TRUE(m.splice(Input(4), Input(4)).has_value());
}

TEST(MutatorTest, DetBitflipsEnumerateAllPositions) {
  Mutator m(default_opts(), 8);
  const Input base{0x00, 0x00};
  std::set<Input> variants;
  const usize n = m.det_bitflips(base, 1, [&](const Input& v) {
    variants.insert(v);
    EXPECT_EQ(v.size(), base.size());
  });
  EXPECT_EQ(n, 16u);             // 2 bytes * 8 bits
  EXPECT_EQ(variants.size(), 16u);  // all distinct single-bit flips
  // Each variant differs from base in exactly one bit.
  for (const Input& v : variants) {
    int bits = 0;
    for (usize i = 0; i < v.size(); ++i) {
      bits += __builtin_popcount(v[i] ^ base[i]);
    }
    EXPECT_EQ(bits, 1);
  }
}

TEST(MutatorTest, DetBitflipsWiderWindows) {
  Mutator m(default_opts(), 9);
  const Input base{0xFF};
  usize count2 = m.det_bitflips(base, 2, [](const Input&) {});
  EXPECT_EQ(count2, 7u);  // 8 bits, window 2 -> 7 positions
  usize count4 = m.det_bitflips(base, 4, [](const Input&) {});
  EXPECT_EQ(count4, 5u);
}

TEST(MutatorTest, DetBitflipsRestoresBase) {
  // The walking flip must leave the working buffer equal to base at the
  // end — verified indirectly: first and last variants relate to base.
  Mutator m(default_opts(), 10);
  const Input base{0x0F, 0xF0};
  Input last;
  m.det_bitflips(base, 1, [&](const Input& v) { last = v; });
  // Last variant flips the lowest bit of the last byte.
  Input expect = base;
  expect[1] ^= 0x01;
  EXPECT_EQ(last, expect);
}

TEST(MutatorTest, DetArith8CoversPlusMinus) {
  Mutator m(default_opts(), 11);
  const Input base{100};
  std::set<u8> values;
  const usize n = m.det_arith8(base, [&](const Input& v) {
    values.insert(v[0]);
  });
  EXPECT_EQ(n, 70u);  // 35 deltas * 2 directions
  EXPECT_TRUE(values.count(101));
  EXPECT_TRUE(values.count(135));
  EXPECT_TRUE(values.count(99));
  EXPECT_TRUE(values.count(65));
}

TEST(MutatorTest, DetInterestingCoversConstants) {
  Mutator m(default_opts(), 12);
  const Input base{0x55};
  std::set<u8> values;
  m.det_interesting8(base, [&](const Input& v) { values.insert(v[0]); });
  for (i8 v : interesting_8()) {
    EXPECT_TRUE(values.count(static_cast<u8>(v))) << static_cast<int>(v);
  }
}

TEST(MutatorTest, DetStagesOnEmptyInput) {
  Mutator m(default_opts(), 13);
  const Input base;
  EXPECT_EQ(m.det_bitflips(base, 1, [](const Input&) {}), 0u);
  EXPECT_EQ(m.det_arith8(base, [](const Input&) {}), 0u);
  EXPECT_EQ(m.det_interesting8(base, [](const Input&) {}), 0u);
}

TEST(InterestingConstantsTest, TablesMatchAflSizes) {
  EXPECT_EQ(interesting_8().size(), 9u);
  EXPECT_EQ(interesting_16().size(), 10u);
  EXPECT_EQ(interesting_32().size(), 8u);
}

}  // namespace
}  // namespace bigmap
