// Tests for input trimming and coverage-series sampling.
#include <gtest/gtest.h>

#include "core/two_level_map.h"
#include "fuzzer/campaign.h"
#include "fuzzer/executor.h"
#include "fuzzer/queue.h"
#include "target/generator.h"

namespace bigmap {
namespace {

// Target whose path depends only on input[0]: trailing bytes are
// redundant, so trimming should strip most of them.
Program prefix_only_program() {
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].pred = CmpPred::kLt;
  p.blocks[0].expected = 0x80;
  p.blocks[0].input_offset = 0;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kExit;
  p.num_bugs = 0;
  p.validate();
  return p;
}

TEST(RunForHashTest, StablePathStableHash) {
  Program p = prefix_only_program();
  BlockIdTable ids(3, 1u << 12, 5);
  MapOptions o;
  o.map_size = 1u << 12;
  o.huge_pages = false;
  Executor<TwoLevelCoverageMap, EdgeMetric> ex(p, o, ids, 1u << 12);
  OpTimeBreakdown t;

  const auto a = ex.run_for_hash(Input{0x10, 1, 2, 3}, t);
  const auto b = ex.run_for_hash(Input{0x10, 9, 9}, t);  // same path
  const auto c = ex.run_for_hash(Input{0x90}, t);        // other path
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_NE(a.hash, c.hash);
  EXPECT_EQ(a.exec.outcome, ExecResult::Outcome::kOk);
}

TEST(RunForHashTest, MatchesInterestingRunHash) {
  // The hash produced by run_for_hash must equal the hash the normal
  // pipeline stored for the same input (trim compares against it).
  Program p = prefix_only_program();
  BlockIdTable ids(3, 1u << 12, 5);
  MapOptions o;
  o.map_size = 1u << 12;
  o.huge_pages = false;
  Executor<TwoLevelCoverageMap, EdgeMetric> ex(p, o, ids, 1u << 12);
  OpTimeBreakdown t;

  auto full = ex.run(Input{0x10}, t);
  ASSERT_TRUE(full.interesting());
  auto silent = ex.run_for_hash(Input{0x10}, t);
  EXPECT_EQ(silent.hash, full.hash);
}

TEST(TrimTest, CampaignTrimsRedundantSeeds) {
  Program p = prefix_only_program();
  std::vector<Input> seeds = {Input(512, 0x10)};  // 511 redundant bytes

  CampaignConfig c;
  c.scheme = MapScheme::kTwoLevel;
  c.map.map_size = 1u << 12;
  c.map.huge_pages = false;
  c.max_execs = 2000;
  c.seed = 1;
  c.trim_enabled = true;
  c.keep_corpus = true;
  auto r = run_campaign(p, seeds, c);

  EXPECT_GT(r.trim_execs, 0u);
  EXPECT_GT(r.trimmed_bytes, 300u);
  // The seed entry itself must have shrunk.
  ASSERT_FALSE(r.corpus.empty());
  EXPECT_LT(r.corpus[0].size(), 128u);
}

TEST(TrimTest, DisabledMeansNoTrimExecs) {
  Program p = prefix_only_program();
  std::vector<Input> seeds = {Input(512, 0x10)};
  CampaignConfig c;
  c.scheme = MapScheme::kTwoLevel;
  c.map.map_size = 1u << 12;
  c.map.huge_pages = false;
  c.max_execs = 2000;
  c.trim_enabled = false;
  c.keep_corpus = true;
  auto r = run_campaign(p, seeds, c);
  EXPECT_EQ(r.trim_execs, 0u);
  EXPECT_EQ(r.corpus[0].size(), 512u);
}

TEST(TrimTest, PreservesBehaviorOnRealTarget) {
  // Trimming must never lose coverage: replaying the trimmed corpus gives
  // at least the coverage of the campaign (the hash guard guarantees the
  // per-entry path is intact).
  GeneratorParams gp;
  gp.seed = 31;
  gp.live_blocks = 300;
  auto target = generate_target(gp);
  auto seeds = make_seed_corpus(target, 4, 1);

  CampaignConfig c;
  c.scheme = MapScheme::kTwoLevel;
  c.map.map_size = 1u << 16;
  c.map.huge_pages = false;
  c.max_execs = 15000;
  c.seed = 2;
  c.keep_corpus = true;

  c.trim_enabled = true;
  auto trimmed = run_campaign(target.program, seeds, c);
  const u64 edges_trimmed =
      measure_corpus_edges(target.program, trimmed.corpus);
  EXPECT_GT(edges_trimmed, 0u);
  EXPECT_GT(trimmed.covered_positions, 0u);
}

TEST(SeriesTest, SamplesCoverageGrowth) {
  GeneratorParams gp;
  gp.seed = 8;
  gp.live_blocks = 300;
  auto target = generate_target(gp);
  auto seeds = make_seed_corpus(target, 4, 1);

  CampaignConfig c;
  c.scheme = MapScheme::kTwoLevel;
  c.map.map_size = 1u << 16;
  c.map.huge_pages = false;
  c.max_execs = 10000;
  c.series_interval = 1000;
  auto r = run_campaign(target.program, seeds, c);

  ASSERT_GE(r.coverage_series.size(), 5u);
  // Exec counters strictly increase; coverage is non-decreasing.
  for (usize i = 1; i < r.coverage_series.size(); ++i) {
    EXPECT_GT(r.coverage_series[i].first, r.coverage_series[i - 1].first);
    EXPECT_GE(r.coverage_series[i].second,
              r.coverage_series[i - 1].second);
  }
  // Final sample matches the final coverage.
  EXPECT_LE(r.coverage_series.back().second, r.covered_positions);
}

TEST(SeriesTest, DisabledByDefault) {
  GeneratorParams gp;
  gp.seed = 8;
  gp.live_blocks = 300;
  auto target = generate_target(gp);
  CampaignConfig c;
  c.scheme = MapScheme::kTwoLevel;
  c.map.map_size = 1u << 16;
  c.map.huge_pages = false;
  c.max_execs = 2000;
  auto r = run_campaign(target.program, make_seed_corpus(target, 2, 1), c);
  EXPECT_TRUE(r.coverage_series.empty());
}

}  // namespace
}  // namespace bigmap
