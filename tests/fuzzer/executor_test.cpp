// Tests for the executor: the per-test-case map-operation pipeline.
#include "fuzzer/executor.h"

#include <gtest/gtest.h>

#include "core/flat_map.h"
#include "core/two_level_map.h"
#include "fuzzer/queue.h"
#include "target/generator.h"

namespace bigmap {
namespace {

// 0 branch(input[0]==7) -> 1 : 2 ; 1 bug ; 2 exit.
Program tiny_program() {
  Program p;
  p.name = "tiny";
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kBranch;
  p.blocks[0].pred = CmpPred::kEq;
  p.blocks[0].expected = 7;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kBug;
  p.blocks[1].bug_id = 0;
  p.blocks[2].kind = BlockKind::kExit;
  p.num_bugs = 1;
  p.validate();
  return p;
}

MapOptions opts(usize size = 1u << 12) {
  MapOptions o;
  o.map_size = size;
  o.huge_pages = false;
  return o;
}

template <class Map>
struct ExecutorFixtureT {
  Program prog = tiny_program();
  BlockIdTable ids{3, 1u << 12, 77};
  Executor<Map, EdgeMetric> ex{prog, opts(), ids, 1u << 12};
  OpTimeBreakdown timing;
};

TEST(ExecutorTest, FirstRunIsInterestingSecondIsNot) {
  ExecutorFixtureT<FlatCoverageMap> f;
  auto out1 = f.ex.run(Input{0}, f.timing);
  EXPECT_EQ(out1.exec.outcome, ExecResult::Outcome::kOk);
  EXPECT_EQ(out1.new_bits, NewBits::kNewTuple);
  EXPECT_TRUE(out1.interesting());

  auto out2 = f.ex.run(Input{0}, f.timing);
  EXPECT_EQ(out2.new_bits, NewBits::kNone);
  EXPECT_FALSE(out2.interesting());
}

TEST(ExecutorTest, TwoLevelSameDecisions) {
  ExecutorFixtureT<TwoLevelCoverageMap> f;
  auto out1 = f.ex.run(Input{0}, f.timing);
  EXPECT_EQ(out1.new_bits, NewBits::kNewTuple);
  auto out2 = f.ex.run(Input{0}, f.timing);
  EXPECT_EQ(out2.new_bits, NewBits::kNone);
}

TEST(ExecutorTest, CrashGoesToCrashVirgin) {
  ExecutorFixtureT<TwoLevelCoverageMap> f;
  auto out = f.ex.run(Input{7}, f.timing);
  EXPECT_TRUE(out.exec.crashed());
  EXPECT_EQ(out.new_bits, NewBits::kNone);  // queue virgin untouched
  EXPECT_NE(out.outcome_new_bits, NewBits::kNone);  // crash virgin hit
  EXPECT_EQ(f.ex.virgin_queue().count_covered(), 0u);
  EXPECT_GT(f.ex.virgin_crash().count_covered(), 0u);

  // Same crash again: no longer new in the crash map.
  auto out2 = f.ex.run(Input{7}, f.timing);
  EXPECT_EQ(out2.outcome_new_bits, NewBits::kNone);
}

TEST(ExecutorTest, HangGoesToHangVirgin) {
  // Loop program with budget too small.
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kLoop;
  p.blocks[0].loop_max = 100;
  p.blocks[0].targets = {1, 2};
  p.blocks[1].kind = BlockKind::kFallthrough;
  p.blocks[1].targets = {0};
  p.blocks[2].kind = BlockKind::kExit;
  p.validate();

  BlockIdTable ids(3, 1u << 12, 5);
  Executor<FlatCoverageMap, EdgeMetric> ex(p, opts(), ids, /*budget=*/8);
  OpTimeBreakdown t;
  auto out = ex.run(Input{99}, t);
  EXPECT_TRUE(out.exec.hung());
  EXPECT_NE(out.outcome_new_bits, NewBits::kNone);
  EXPECT_GT(ex.virgin_hang().count_covered(), 0u);
}

TEST(ExecutorTest, HashComputedOnlyWhenInteresting) {
  ExecutorFixtureT<FlatCoverageMap> f;
  auto out1 = f.ex.run(Input{0}, f.timing);
  EXPECT_NE(out1.hash, 0u);  // crc32 of a non-empty trace is nonzero here
  auto out2 = f.ex.run(Input{0}, f.timing);
  EXPECT_EQ(out2.hash, 0u);  // not interesting: hash skipped
}

TEST(ExecutorTest, TimingCategoriesPopulated) {
  ExecutorFixtureT<FlatCoverageMap> f;
  for (int i = 0; i < 50; ++i) f.ex.run(Input{static_cast<u8>(i)}, f.timing);
  EXPECT_GT(f.timing.ns(MapOp::kExecution), 0u);
  EXPECT_GT(f.timing.ns(MapOp::kReset), 0u);
  // Merged classify+compare splits between the two categories.
  EXPECT_GT(f.timing.ns(MapOp::kClassify) + f.timing.ns(MapOp::kCompare),
            0u);
}

TEST(ExecutorTest, LastTraceSpanMatchesScheme) {
  ExecutorFixtureT<FlatCoverageMap> flat;
  flat.ex.run(Input{0}, flat.timing);
  EXPECT_EQ(flat.ex.last_trace().size(), flat.ex.map().map_size());

  ExecutorFixtureT<TwoLevelCoverageMap> two;
  two.ex.run(Input{0}, two.timing);
  EXPECT_EQ(two.ex.last_trace().size(), two.ex.map().used_key());
  EXPECT_LT(two.ex.last_trace().size(), two.ex.map().map_size());
}

TEST(ExecutorTest, UsedKeyGrowsOnlyOnNewEdges) {
  ExecutorFixtureT<TwoLevelCoverageMap> f;
  f.ex.run(Input{0}, f.timing);
  const u32 used1 = f.ex.map().used_key();
  f.ex.run(Input{0}, f.timing);
  EXPECT_EQ(f.ex.map().used_key(), used1);  // same path: no growth
  f.ex.run(Input{7}, f.timing);             // crash path: new edge
  EXPECT_GT(f.ex.map().used_key(), used1);
}

TEST(ExecutorTest, ContextMetricHooksEngage) {
  // Program with a call: 0 call(2 cont 1); 1 exit; 2 return.
  Program p;
  p.blocks.resize(3);
  p.blocks[0].kind = BlockKind::kCall;
  p.blocks[0].targets = {2, 1};
  p.blocks[1].kind = BlockKind::kExit;
  p.blocks[2].kind = BlockKind::kReturn;
  p.validate();

  BlockIdTable ids(3, 1u << 12, 5);
  Executor<TwoLevelCoverageMap, ContextMetric> ex(p, opts(), ids, 1u << 12);
  OpTimeBreakdown t;
  auto out = ex.run(Input{}, t);
  EXPECT_EQ(out.exec.outcome, ExecResult::Outcome::kOk);
  EXPECT_GT(ex.map().used_key(), 0u);
}

TEST(ExecutorTest, IdenticalPathsIdenticalHashesAcrossUsedKeyGrowth) {
  // End-to-end validation of the §IV-D hash rule through the executor.
  GeneratorParams gp;
  gp.seed = 2;
  gp.live_blocks = 200;
  auto target = generate_target(gp);
  BlockIdTable ids(target.program.blocks.size(), 1u << 16, 9);
  Executor<TwoLevelCoverageMap, EdgeMetric> ex(target.program, opts(1u << 16),
                                               ids, 1u << 14);
  OpTimeBreakdown t;

  const Input a(64, 0x11);
  const Input b(64, 0x77);  // different path: grows used_key
  auto out_a1 = ex.run(a, t);
  ex.run(b, t);
  auto out_a2 = ex.run(a, t);
  // a2 is not interesting, so its hash field is 0; recompute directly.
  EXPECT_FALSE(out_a2.interesting());
  ex.run(a, t);
  EXPECT_EQ(ex.map().hash(), out_a1.hash);
}

}  // namespace
}  // namespace bigmap
