// Coverage-guided tracing oracle tests: breakpoint derivation, retention
// across aborted re-executions, exact-conservativeness against the traced
// pipeline, and campaign-level fault interaction (kExecAbort /
// kTransientHang landing on the traced re-exec path).
#include <gtest/gtest.h>

#include <vector>

#include "core/flat_map.h"
#include "core/two_level_map.h"
#include "fuzzer/campaign.h"
#include "fuzzer/executor.h"
#include "target/generator.h"
#include "util/fault.h"
#include "util/rng.h"

namespace bigmap {
namespace {

MapOptions opts(usize size = 1u << 12) {
  MapOptions o;
  o.map_size = size;
  o.huge_pages = false;
  return o;
}

// A branchy target whose inputs steer real coverage differences.
GeneratedTarget branchy_target(u64 seed = 11) {
  GeneratorParams p;
  p.name = "tracing-target";
  p.seed = seed;
  p.live_blocks = 200;
  p.num_bugs = 2;
  p.bug_min_depth = 1;
  p.bug_max_depth = 2;
  return generate_target(p);
}

template <class Map>
struct Fixture {
  GeneratedTarget target = branchy_target();
  BlockIdTable ids{target.program.blocks.size(), 1u << 12, 77};
  Executor<Map, EdgeMetric> ex{target.program, opts(), ids, 1u << 12};
  OpTimeBreakdown timing;
};

using TwoLevelFixture = Fixture<TwoLevelCoverageMap>;
using FlatFixture = Fixture<FlatCoverageMap>;

// The oracle must fire on an input whose coverage is entirely new, and go
// quiet once a traced run has consumed that novelty.
TEST(TracingOracleTest, FiresOnNoveltyThenQuiesces) {
  TwoLevelFixture f;
  const Input input{1, 2, 3, 4};

  auto fast1 = f.ex.run_untraced(input, f.timing);
  EXPECT_TRUE(fast1.fired);  // fresh virgin state: everything is new

  auto traced = f.ex.run(input, f.timing);
  ASSERT_TRUE(traced.interesting());

  auto fast2 = f.ex.run_untraced(input, f.timing);
  EXPECT_FALSE(fast2.fired);  // novelty consumed; same input is now boring
}

TEST(TracingOracleTest, FlatSchemeFiresOnNoveltyThenQuiesces) {
  FlatFixture f;
  const Input input{1, 2, 3, 4};
  EXPECT_TRUE(f.ex.run_untraced(input, f.timing).fired);
  ASSERT_TRUE(f.ex.run(input, f.timing).interesting());
  EXPECT_FALSE(f.ex.run_untraced(input, f.timing).fired);
}

// Breakpoint retention (the fault-interaction guarantee): an untraced run
// mutates NO campaign-lifetime state, so when the traced re-exec is lost —
// to an injected abort, a crash of the worker, anything — the same input
// simply fires again on the next attempt. Also pins that the virgin maps
// and the two-level index are untouched by untraced runs.
TEST(TracingOracleTest, AbortedReexecKeepsBreakpointArmed) {
  TwoLevelFixture f;
  const Input input{5, 6, 7, 8};

  const u32 used_before = f.ex.map().used_key();
  std::vector<u8> virgin_before(f.ex.virgin_queue().data(),
                                f.ex.virgin_queue().data() +
                                    f.ex.virgin_queue().size());

  // Fire three times in a row — each one simulates a re-exec that never
  // happened. Nothing may change between attempts.
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto fast = f.ex.run_untraced(input, f.timing);
    EXPECT_TRUE(fast.fired) << "attempt " << attempt;
    EXPECT_EQ(f.ex.map().used_key(), used_before) << "attempt " << attempt;
    std::vector<u8> virgin_now(f.ex.virgin_queue().data(),
                               f.ex.virgin_queue().data() +
                                   f.ex.virgin_queue().size());
    EXPECT_EQ(virgin_now, virgin_before) << "attempt " << attempt;
  }

  // The re-exec finally lands: the input is still interesting.
  EXPECT_TRUE(f.ex.run(input, f.timing).interesting());
  EXPECT_FALSE(f.ex.run_untraced(input, f.timing).fired);
}

// Exactness property: over a stream of random inputs, the untraced oracle
// must fire on EVERY input the traced pipeline would have found
// interesting (an under-fire is a lost find and must never happen), and —
// for normally-completing executions — ONLY on those (an over-fire wastes
// a traced re-exec; the early breakpoints may legitimately fire on runs
// that then turn out to crash or hang). Two executors with identical
// seeds run in lockstep: A decides untraced-first, B is the always-traced
// control.
template <class Map>
void run_conservativeness_stream(u64 target_seed) {
  GeneratedTarget target = branchy_target(target_seed);
  BlockIdTable ids{target.program.blocks.size(), 1u << 12, 77};
  Executor<Map, EdgeMetric> a{target.program, opts(), ids, 1u << 12};
  Executor<Map, EdgeMetric> b{target.program, opts(), ids, 1u << 12};
  OpTimeBreakdown timing;

  Xoshiro256 rng(42);
  u64 fires = 0;
  u64 interesting = 0;
  for (int i = 0; i < 400; ++i) {
    Input input(12);
    for (u8& byte : input) byte = static_cast<u8>(rng.next());

    auto fast = a.run_untraced(input, timing);
    const bool reexec =
        fast.fired || fast.exec.crashed() || fast.exec.hung();
    typename Executor<Map, EdgeMetric>::Outcome a_out;
    if (reexec) a_out = a.run(input, timing);

    auto b_out = b.run(input, timing);
    if (b_out.interesting()) {
      ++interesting;
      ASSERT_TRUE(fast.fired) << "oracle under-fired on input " << i;
    }
    if (reexec) {
      EXPECT_EQ(a_out.interesting(), b_out.interesting()) << i;
      EXPECT_EQ(a_out.exec.outcome, b_out.exec.outcome) << i;
      if (fast.fired && b_out.exec.outcome == ExecResult::Outcome::kOk) {
        EXPECT_TRUE(b_out.interesting()) << "oracle over-fired on " << i;
      }
    } else {
      EXPECT_FALSE(b_out.interesting()) << i;
      EXPECT_EQ(b_out.exec.outcome, ExecResult::Outcome::kOk) << i;
    }
    if (fast.fired) ++fires;
  }
  // The stream must exercise both regimes for the assertions to mean
  // anything.
  EXPECT_GT(interesting, 0u);
  EXPECT_LT(fires, 400u);
}

TEST(TracingOracleTest, NeverUnderFiresTwoLevel) {
  for (u64 seed : {3u, 11u, 29u}) {
    run_conservativeness_stream<TwoLevelCoverageMap>(seed);
  }
}

TEST(TracingOracleTest, NeverUnderFiresFlat) {
  for (u64 seed : {3u, 11u, 29u}) {
    run_conservativeness_stream<FlatCoverageMap>(seed);
  }
}

// --- campaign-level fault interaction ---------------------------------------

CampaignConfig tracing_config(TracingMode tracing, u64 execs) {
  CampaignConfig c;
  c.scheme = MapScheme::kTwoLevel;
  c.tracing = tracing;
  c.map.map_size = 1u << 16;
  c.map.huge_pages = false;
  c.max_execs = execs;
  c.seed = 77;
  c.deterministic_timing = true;
  return c;
}

// kExecAbort aimed at the traced re-exec: with trim and the deterministic
// stage off, every seed consumes exactly one pre-exec gate check, so check
// index num_seeds is the first non-seed exec's pre-exec gate and check
// num_seeds+1 is its re-exec gate (the first non-seed exec always fires on
// a fresh-ish virgin map). The abort must count the exec in NEITHER
// tracing counter (no double-counting against the budget), and the
// breakpoint must stay armed — pinned by exact determinism: a second run
// under the same fault plan reproduces the identical result.
TEST(TracingFaultTest, AbortedReexecCountsNothingAndStaysDeterministic) {
  GeneratedTarget target = branchy_target();
  std::vector<Input> seeds = make_seed_corpus(target, 4, 1);

  auto run_with_abort = [&]() {
    FaultPlan plan;
    plan.triggers.push_back(
        {FaultSite::kExecAbort, 0, seeds.size() + 1});
    FaultInjector injector(1, plan);
    CampaignConfig c = tracing_config(TracingMode::kDual, 3000);
    c.trim_enabled = false;
    c.fault = &injector;
    return run_campaign(target.program, seeds, c);
  };

  CampaignResult r1 = run_with_abort();
  EXPECT_EQ(r1.faulted_execs, 1u);
  EXPECT_EQ(r1.execs, 3000u);  // the aborted exec did not consume budget
  EXPECT_EQ(r1.tracing_untraced_execs + r1.tracing_traced_execs, r1.execs);

  CampaignResult r2 = run_with_abort();
  EXPECT_EQ(r1.execs, r2.execs);
  EXPECT_EQ(r1.interesting, r2.interesting);
  EXPECT_EQ(r1.tracing_untraced_execs, r2.tracing_untraced_execs);
  EXPECT_EQ(r1.tracing_traced_execs, r2.tracing_traced_execs);
  EXPECT_EQ(r1.tracing_oracle_fires, r2.tracing_oracle_fires);
  EXPECT_EQ(r1.covered_positions, r2.covered_positions);
  EXPECT_EQ(r1.found_bug_ids, r2.found_bug_ids);
}

// Sustained kExecAbort pressure (rate-based, so aborts land on pre-exec
// and re-exec gates alike): the accounting invariant must hold throughout,
// and oracle fires must keep converting into traced re-executions — a
// lost-breakpoint bug would strand fires with no matching traced exec.
TEST(TracingFaultTest, AbortStormKeepsAccountingExact) {
  GeneratedTarget target = branchy_target();
  std::vector<Input> seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  plan.rates.push_back({FaultSite::kExecAbort, 50000,
                        FaultRate::kAllInstances});  // 5% of gate checks
  FaultInjector injector(1, plan);
  CampaignConfig c = tracing_config(TracingMode::kDual, 6000);
  c.fault = &injector;
  CampaignResult res = run_campaign(target.program, seeds, c);

  EXPECT_EQ(res.execs, 6000u);
  EXPECT_GT(res.faulted_execs, 0u);
  EXPECT_EQ(res.tracing_untraced_execs + res.tracing_traced_execs,
            res.execs);
  EXPECT_GT(res.tracing_untraced_execs, 0u);
  // Seeds and trim run traced, and every surviving fire re-executes
  // traced; the traced count can therefore never undercut the number of
  // queued entries.
  EXPECT_GE(res.tracing_traced_execs, res.interesting);
  EXPECT_GT(res.interesting, 0u);
}

// kTransientHang on the re-exec gate: the stall is served (injected_hangs
// counted) and the re-exec still runs — a hang is a delay, not a loss, so
// the result equals the fault-free dual campaign's exactly.
TEST(TracingFaultTest, TransientHangOnReexecDelaysButLosesNothing) {
  GeneratedTarget target = branchy_target();
  std::vector<Input> seeds = make_seed_corpus(target, 4, 1);

  FaultPlan plan;
  plan.hang_ms = 1;
  plan.triggers.push_back(
      {FaultSite::kTransientHang, 0, seeds.size() + 1});
  FaultInjector injector(1, plan);
  CampaignConfig hang_cfg = tracing_config(TracingMode::kDual, 3000);
  hang_cfg.trim_enabled = false;
  hang_cfg.fault = &injector;
  CampaignResult hung = run_campaign(target.program, seeds, hang_cfg);
  EXPECT_EQ(hung.injected_hangs, 1u);

  CampaignConfig clean_cfg = tracing_config(TracingMode::kDual, 3000);
  clean_cfg.trim_enabled = false;
  CampaignResult clean = run_campaign(target.program, seeds, clean_cfg);

  EXPECT_EQ(hung.execs, clean.execs);
  EXPECT_EQ(hung.interesting, clean.interesting);
  EXPECT_EQ(hung.tracing_untraced_execs, clean.tracing_untraced_execs);
  EXPECT_EQ(hung.tracing_traced_execs, clean.tracing_traced_execs);
  EXPECT_EQ(hung.tracing_oracle_fires, clean.tracing_oracle_fires);
  EXPECT_EQ(hung.covered_positions, clean.covered_positions);
  EXPECT_EQ(hung.found_bug_ids, clean.found_bug_ids);
  EXPECT_EQ(hung.found_stack_hashes, clean.found_stack_hashes);
}

}  // namespace
}  // namespace bigmap
