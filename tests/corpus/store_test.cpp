// CorpusStore tests: WAL round-trip property, corruption drills (every
// truncation point, every flipped byte), compaction-crash recovery at each
// phase, dedup/min-merge and trim invariants, canonical-export determinism,
// pending-append retry under injected I/O faults, and fsck reporting.
#include "corpus/store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/fault.h"
#include "util/hash.h"
#include "util/rng.h"

namespace bigmap::corpus {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const char* tag) {
    path = (fs::temp_directory_path() /
            (std::string("bigmap_corpus_") + tag + "_" +
             std::to_string(static_cast<unsigned>(::getpid()))))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

std::vector<u8> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<u8>((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, std::span<const u8> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Deterministic input blob: `tag` selects content, so distinct tags are
// distinct corpus entries.
std::vector<u8> blob(u64 tag, usize len = 16) {
  Xoshiro256 rng(tag * 0x9E3779B97F4A7C15ULL + 1);
  std::vector<u8> out(len);
  for (u8& b : out) b = static_cast<u8>(rng());
  return out;
}

// Fills `store` with `n` random-ish entries and a couple of crash rows.
// Returns the content hashes in insertion order.
std::vector<u64> populate(CorpusStore& store, u64 seed, usize n) {
  Xoshiro256 rng(seed);
  std::vector<u64> hashes;
  for (usize i = 0; i < n; ++i) {
    const std::vector<u8> data = blob(seed * 1000 + i, 8 + (i % 24));
    std::vector<u32> pos;
    const usize npos = 1 + rng() % 5;
    for (usize p = 0; p < npos; ++p) pos.push_back(static_cast<u32>(rng() % 64));
    u64 h = 0;
    store.add_entry(data, 100 + rng() % 900, static_cast<u32>(rng()),
                    static_cast<u32>(rng() % 8), pos, &h);
    hashes.push_back(h);
  }
  store.record_crash(0xDEAD0000 + seed, 1, 0, 10 + seed, blob(seed + 7000));
  store.record_crash(0xBEEF0000 + seed, 2, 1, 20 + seed, blob(seed + 8000));
  return hashes;
}

// --- WAL round-trip property ------------------------------------------------

TEST(CorpusStoreTest, WalRoundTripProperty) {
  for (u64 seed = 1; seed <= 8; ++seed) {
    TempDir dir("roundtrip");
    std::vector<u64> entry_hashes;
    std::vector<CrashRow> crash_rows;
    u64 digest = 0;
    {
      CorpusStore store(dir.path);
      ASSERT_TRUE(store.open(/*fresh=*/true).ok);
      populate(store, seed, 5 + static_cast<usize>(seed % 4));
      entry_hashes = store.entry_hashes();
      crash_rows = store.crash_rows();
      digest = store.corpus_digest();
    }
    CorpusStore reopened(dir.path);
    OpenReport rep = reopened.open(/*fresh=*/false);
    ASSERT_TRUE(rep.ok) << "seed " << seed << ": " << rep.error;
    EXPECT_EQ(reopened.entry_hashes(), entry_hashes) << "seed " << seed;
    EXPECT_EQ(reopened.corpus_digest(), digest) << "seed " << seed;
    ASSERT_EQ(reopened.crash_row_count(), crash_rows.size());
    const std::vector<CrashRow> rows = reopened.crash_rows();
    for (usize i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].stack_hash, crash_rows[i].stack_hash);
      EXPECT_EQ(rows[i].bug_id, crash_rows[i].bug_id);
      EXPECT_EQ(rows[i].witness, crash_rows[i].witness);
      EXPECT_EQ(rows[i].occurrences(), crash_rows[i].occurrences());
    }
    // Entry payloads survive byte-for-byte.
    for (u64 h : entry_hashes) {
      CorpusEntry e;
      ASSERT_TRUE(reopened.fetch(h, &e));
      EXPECT_EQ(fnv1a64(e.data), h);
      EXPECT_TRUE(std::is_sorted(e.positions.begin(), e.positions.end()));
    }
  }
}

// --- corruption drills ------------------------------------------------------

// Cutting the WAL at every possible byte must always reopen cleanly, with
// the live set equal to exactly the adds whose record fully precedes the
// cut — the truncated-tail recovery rule, checked at byte granularity.
TEST(CorpusStoreTest, WalTruncationAtEveryByte) {
  TempDir dir("trunc");
  std::vector<usize> boundary;  // WAL size after each add
  usize n_adds = 0;
  {
    CorpusStore store(dir.path);
    ASSERT_TRUE(store.open(true).ok);
    for (u64 i = 0; i < 6; ++i) {
      store.add_entry(blob(i), 100 + i, 0, 0, std::vector<u32>{1});
      boundary.push_back(read_all(dir.path + "/corpus.wal").size());
      ++n_adds;
    }
  }
  const std::vector<u8> wal = read_all(dir.path + "/corpus.wal");
  ASSERT_EQ(wal.size(), boundary.back());
  for (usize cut = 0; cut <= wal.size(); ++cut) {
    TempDir sub("trunc_sub");
    CorpusStore probe(sub.path);
    ASSERT_TRUE(probe.open(true).ok);
    write_all(sub.path + "/corpus.wal",
              std::span<const u8>(wal.data(), cut));
    CorpusStore reopened(sub.path);
    OpenReport rep = reopened.open(false);
    if (cut >= 1 && cut < 8) {
      // A torn *file header* cannot come from a crash (it is written via
      // temp + rename), so it is rejected as real damage. An empty file
      // (cut 0) is re-headered like a fresh store.
      EXPECT_FALSE(rep.ok) << "cut at " << cut;
      continue;
    }
    ASSERT_TRUE(rep.ok) << "cut at " << cut << ": " << rep.error;
    usize expect = 0;
    for (usize b : boundary) {
      if (b <= cut) ++expect;
    }
    EXPECT_EQ(reopened.size(), expect) << "cut at " << cut;
  }
}

// Flipping any single WAL byte must reopen cleanly: the CRC catches the
// damage and the tail past it is truncated away — never a crash, never a
// corrupted entry admitted (content hashes are re-verified on replay).
TEST(CorpusStoreTest, WalByteFlipTruncatesTail) {
  TempDir dir("flip");
  {
    CorpusStore store(dir.path);
    ASSERT_TRUE(store.open(true).ok);
    for (u64 i = 0; i < 4; ++i) {
      store.add_entry(blob(100 + i), 10 + i, 0, 0, std::vector<u32>{2});
    }
  }
  const std::vector<u8> wal = read_all(dir.path + "/corpus.wal");
  const usize full = [&] {
    CorpusStore s(dir.path);
    s.open(false);
    return s.size();
  }();
  ASSERT_EQ(full, 4u);
  for (usize i = 0; i < wal.size(); ++i) {
    TempDir sub("flip_sub");
    CorpusStore probe(sub.path);
    ASSERT_TRUE(probe.open(true).ok);
    std::vector<u8> corrupt = wal;
    corrupt[i] ^= 0xFF;
    write_all(sub.path + "/corpus.wal", corrupt);
    CorpusStore reopened(sub.path);
    OpenReport rep = reopened.open(false);
    if (i < 8) {
      // Damage in the file header: the whole journal is rejected.
      EXPECT_FALSE(rep.ok) << "byte " << i;
    } else {
      ASSERT_TRUE(rep.ok) << "byte " << i << ": " << rep.error;
      EXPECT_LE(reopened.size(), full) << "byte " << i;
      for (u64 h : reopened.entry_hashes()) {
        CorpusEntry e;
        ASSERT_TRUE(reopened.fetch(h, &e));
        EXPECT_EQ(fnv1a64(e.data), h) << "byte " << i;
      }
    }
  }
}

// A pack is committed atomically, so any flipped byte is real corruption
// and open() must refuse it outright rather than guess.
TEST(CorpusStoreTest, PackByteFlipRejectsOpen) {
  TempDir dir("packflip");
  {
    CorpusStore store(dir.path);
    ASSERT_TRUE(store.open(true).ok);
    populate(store, 3, 4);
    std::string err;
    ASSERT_TRUE(store.compact(&err)) << err;
  }
  const std::vector<u8> pack = read_all(dir.path + "/corpus.pack");
  ASSERT_FALSE(pack.empty());
  for (usize i = 0; i < pack.size(); i += 7) {  // stride keeps the drill fast
    TempDir sub("packflip_sub");
    CorpusStore probe(sub.path);
    ASSERT_TRUE(probe.open(true).ok);
    std::vector<u8> corrupt = pack;
    corrupt[i] ^= 0xFF;
    write_all(sub.path + "/corpus.pack", corrupt);
    CorpusStore reopened(sub.path);
    EXPECT_FALSE(reopened.open(false).ok) << "byte " << i;
  }
}

// --- compaction crash recovery ----------------------------------------------

// Aborting compaction at either phase (before the pack write; after the
// rename but before the WAL reset) must reopen to the identical logical
// state — the two-file commit protocol's core guarantee.
TEST(CorpusStoreTest, CompactionCrashAtEachPhaseRecovers) {
  for (CompactPhase crash_at :
       {CompactPhase::kBeforePackWrite, CompactPhase::kAfterPackRename}) {
    TempDir dir("compact_crash");
    u64 digest = 0;
    std::vector<u64> hashes;
    usize crash_rows = 0;
    {
      CorpusStore store(dir.path);
      ASSERT_TRUE(store.open(true).ok);
      populate(store, 11, 6);
      digest = store.corpus_digest();
      hashes = store.entry_hashes();
      crash_rows = store.crash_row_count();
      store.set_compact_hook(
          [crash_at](CompactPhase p) { return p != crash_at; });
      std::string err;
      EXPECT_FALSE(store.compact(&err));
    }
    CorpusStore reopened(dir.path);
    OpenReport rep = reopened.open(false);
    ASSERT_TRUE(rep.ok) << rep.error;
    EXPECT_EQ(reopened.corpus_digest(), digest);
    EXPECT_EQ(reopened.entry_hashes(), hashes);
    EXPECT_EQ(reopened.crash_row_count(), crash_rows);
    // And the wreckage must compact cleanly afterwards.
    std::string err;
    ASSERT_TRUE(reopened.compact(&err)) << err;
    CorpusStore again(dir.path);
    ASSERT_TRUE(again.open(false).ok);
    EXPECT_EQ(again.corpus_digest(), digest);
  }
}

// --- dedup / min-merge ------------------------------------------------------

TEST(CorpusStoreTest, DedupByContentHash) {
  TempDir dir("dedup");
  CorpusStore store(dir.path);
  ASSERT_TRUE(store.open(true).ok);
  const std::vector<u8> data = blob(42);
  EXPECT_TRUE(store.add_entry(data, 500, 1, 1, std::vector<u32>{3}));
  EXPECT_FALSE(store.add_entry(data, 500, 1, 1, std::vector<u32>{3}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().dedup_hits, 1u);
}

// Two observations of the same content with different metadata must
// converge to the same stored row whichever arrived first, both live and
// across a WAL replay.
TEST(CorpusStoreTest, DuplicateMetadataMergeIsOrderIndependent) {
  const std::vector<u8> data = blob(77);
  const std::vector<u32> pos_a{1, 2, 3};
  const std::vector<u32> pos_b{4};
  auto build = [&](const char* tag, bool a_first, std::vector<u8>* canonical) {
    TempDir dir(tag);
    CorpusStore store(dir.path);
    ASSERT_TRUE(store.open(true).ok);
    if (a_first) {
      store.add_entry(data, 900, 10, 5, pos_a);
      store.add_entry(data, 200, 20, 2, pos_b);
    } else {
      store.add_entry(data, 200, 20, 2, pos_b);
      store.add_entry(data, 900, 10, 5, pos_a);
    }
    // The merged row must survive replay identically.
    CorpusStore reopened(dir.path);
    ASSERT_TRUE(reopened.open(false).ok);
    CorpusEntry live, replayed;
    ASSERT_TRUE(store.fetch(fnv1a64(data), &live));
    ASSERT_TRUE(reopened.fetch(fnv1a64(data), &replayed));
    EXPECT_EQ(live.exec_ns, replayed.exec_ns);
    EXPECT_EQ(live.depth, replayed.depth);
    EXPECT_EQ(live.positions, replayed.positions);
    std::string err;
    ASSERT_TRUE(store.export_canonical(dir.path + "/c.bin", &err)) << err;
    *canonical = read_all(dir.path + "/c.bin");
  };
  std::vector<u8> ab, ba;
  build("merge_ab", true, &ab);
  build("merge_ba", false, &ba);
  ASSERT_FALSE(ab.empty());
  EXPECT_EQ(ab, ba);
}

// --- trimming ---------------------------------------------------------------

TEST(CorpusStoreTest, TrimKeepsRareWitnessesAndPins) {
  TempDir dir("trim");
  CorpusStore store(dir.path);
  ASSERT_TRUE(store.open(true).ok);
  // cheap covers {1,2}; expensive covers {1,2} too (dominated); rare
  // covers {9} alone; pinned covers {1} (dominated but pinned).
  u64 cheap = 0, expensive = 0, rare = 0, pinned = 0;
  store.add_entry(blob(1), 10, 0, 0, std::vector<u32>{1, 2}, &cheap);
  store.add_entry(blob(2), 10000, 0, 0, std::vector<u32>{1, 2}, &expensive);
  store.add_entry(blob(3), 9000, 0, 0, std::vector<u32>{9}, &rare);
  store.add_entry(blob(4), 9000, 0, 0, std::vector<u32>{1}, &pinned);
  TrimReport rep = store.trim({pinned});
  EXPECT_EQ(rep.scanned, 4u);
  EXPECT_EQ(rep.kept + rep.dropped, rep.scanned);
  EXPECT_TRUE(store.contains(cheap));     // position winner
  EXPECT_TRUE(store.contains(rare));      // sole coverer of 9
  EXPECT_TRUE(store.contains(pinned));    // caller pin
  EXPECT_FALSE(store.contains(expensive));  // dominated, unpinned
  EXPECT_EQ(rep.rare_positions, 1u);  // position 9
  // Idempotent: a second pass drops nothing further.
  TrimReport again = store.trim({pinned});
  EXPECT_EQ(again.dropped, 0u);
  // Tombstones are durable: the drop survives replay and compaction.
  CorpusStore reopened(dir.path);
  ASSERT_TRUE(reopened.open(false).ok);
  EXPECT_FALSE(reopened.contains(expensive));
  EXPECT_EQ(reopened.size(), 3u);
}

// --- canonical export -------------------------------------------------------

// Stores reaching the same live set through different histories (insertion
// order, extra duplicates, trim timing, compaction count) must export
// byte-identical canonical packs.
TEST(CorpusStoreTest, ExportCanonicalIsHistoryIndependent) {
  auto entry = [&](CorpusStore& s, u64 tag) {
    s.add_entry(blob(tag), 50 + tag, static_cast<u32>(tag), 1,
                std::vector<u32>{static_cast<u32>(tag % 7)});
  };
  TempDir d1("exp1"), d2("exp2");
  CorpusStore s1(d1.path), s2(d2.path);
  ASSERT_TRUE(s1.open(true).ok);
  ASSERT_TRUE(s2.open(true).ok);
  for (u64 t : {1, 2, 3, 4, 5}) entry(s1, t);
  s1.record_crash(0xAB, 1, 0, 5, blob(900));
  std::string err;
  ASSERT_TRUE(s1.compact(&err)) << err;

  for (u64 t : {5, 4, 3, 2, 1}) entry(s2, t);
  for (u64 t : {2, 4}) entry(s2, t);  // dup observations
  s2.record_crash(0xAB, 1, 0, 5, blob(900));
  ASSERT_TRUE(s2.compact(&err)) << err;
  ASSERT_TRUE(s2.compact(&err)) << err;  // extra generation

  ASSERT_TRUE(s1.export_canonical(d1.path + "/c.bin", &err)) << err;
  ASSERT_TRUE(s2.export_canonical(d2.path + "/c.bin", &err)) << err;
  const std::vector<u8> c1 = read_all(d1.path + "/c.bin");
  ASSERT_FALSE(c1.empty());
  EXPECT_EQ(c1, read_all(d2.path + "/c.bin"));
  // The live packs differ (generation counters); only the export is
  // history-free.
  EXPECT_NE(s1.generation(), s2.generation());
}

// --- pending retries under injected I/O faults ------------------------------

TEST(CorpusStoreTest, FailedWalAppendIsPendingUntilFlushed) {
  TempDir dir("pending");
  FaultPlan plan;
  // Occurrence 0 of kNoSpace is the fresh open's WAL header write,
  // occurrence 1 the first add's append — target the second add.
  plan.triggers.push_back(FaultTrigger{FaultSite::kNoSpace, 0, 2});
  FaultInjector inj(99, plan);
  CorpusStore store(dir.path, persist::FaultCtx{&inj, 0});
  ASSERT_TRUE(store.open(true).ok);
  u64 h1 = 0, h2 = 0;
  bool durable = false;
  ASSERT_TRUE(store.add_entry(blob(1), 10, 0, 0, std::vector<u32>{1}, &h1,
                              &durable));
  EXPECT_TRUE(durable);
  // Second append hits the injected ENOSPC: entry stays live but volatile.
  ASSERT_TRUE(store.add_entry(blob(2), 10, 0, 0, std::vector<u32>{2}, &h2,
                              &durable));
  EXPECT_FALSE(durable);
  EXPECT_TRUE(store.contains(h2));
  EXPECT_TRUE(store.durable(h1));
  EXPECT_FALSE(store.durable(h2));
  // A crash here would lose it — replay sees only the durable entry.
  {
    CorpusStore probe(dir.path);
    ASSERT_TRUE(probe.open(false).ok);
    EXPECT_TRUE(probe.contains(h1));
    EXPECT_FALSE(probe.contains(h2));
  }
  // The one-shot fault has passed; the retry lands and durability returns.
  std::string err;
  EXPECT_TRUE(store.flush_pending(&err)) << err;
  EXPECT_TRUE(store.durable(h2));
  CorpusStore reopened(dir.path);
  ASSERT_TRUE(reopened.open(false).ok);
  EXPECT_TRUE(reopened.contains(h2));
}

// --- crash rows -------------------------------------------------------------

TEST(CorpusStoreTest, CrashRowAggregatesAndDedupsReplays) {
  TempDir dir("crash");
  CorpusStore store(dir.path);
  ASSERT_TRUE(store.open(true).ok);
  const u64 stack = 0xFEEDFACE;
  EXPECT_TRUE(store.record_crash(stack, 7, 2, 100, blob(1)));
  EXPECT_TRUE(store.record_crash(stack, 7, 2, 250, {}));
  // Replayed event (exec_seq <= last seen for the instance): dropped.
  EXPECT_FALSE(store.record_crash(stack, 7, 2, 250, {}));
  EXPECT_FALSE(store.record_crash(stack, 7, 2, 90, {}));
  // Smaller instance id takes over the witness.
  EXPECT_TRUE(store.record_crash(stack, 7, 0, 40, blob(2)));
  ASSERT_EQ(store.crash_row_count(), 1u);
  const CrashRow row = store.crash_rows()[0];
  EXPECT_EQ(row.bug_id, 7u);
  EXPECT_EQ(row.occurrences(), 3u);
  EXPECT_EQ(row.witness_instance, 0u);
  EXPECT_EQ(row.witness, blob(2));
  EXPECT_EQ(row.sightings.at(2).first_exec, 100u);
  EXPECT_EQ(row.sightings.at(2).last_exec, 250u);
  // All of it survives replay.
  CorpusStore reopened(dir.path);
  ASSERT_TRUE(reopened.open(false).ok);
  ASSERT_EQ(reopened.crash_row_count(), 1u);
  const CrashRow replayed = reopened.crash_rows()[0];
  EXPECT_EQ(replayed.occurrences(), 3u);
  EXPECT_EQ(replayed.witness, blob(2));
  EXPECT_EQ(replayed.witness_instance, 0u);
}

// --- fsck -------------------------------------------------------------------

TEST(CorpusStoreTest, FsckReportsTornTailAsWarning) {
  TempDir dir("fsck_tail");
  {
    CorpusStore store(dir.path);
    ASSERT_TRUE(store.open(true).ok);
    populate(store, 21, 3);
  }
  // Append garbage — a torn in-flight append.
  {
    std::ofstream out(dir.path + "/corpus.wal",
                      std::ios::binary | std::ios::app);
    out.write("garbage", 7);
  }
  CorpusStore probe(dir.path);
  FsckReport rep = probe.fsck();
  EXPECT_TRUE(rep.ok);  // recoverable by design
  EXPECT_GT(rep.torn_tail_bytes, 0u);
  EXPECT_EQ(rep.entries, 3u);
  EXPECT_EQ(rep.live_hashes.size(), 3u);
  EXPECT_TRUE(std::is_sorted(rep.live_hashes.begin(), rep.live_hashes.end()));
  // open() repairs (truncates); fsck is then clean.
  CorpusStore repair(dir.path);
  ASSERT_TRUE(repair.open(false).ok);
  CorpusStore again(dir.path);
  FsckReport clean = again.fsck();
  EXPECT_TRUE(clean.ok);
  EXPECT_EQ(clean.torn_tail_bytes, 0u);
}

TEST(CorpusStoreTest, FsckFailsOnCorruptPack) {
  TempDir dir("fsck_pack");
  {
    CorpusStore store(dir.path);
    ASSERT_TRUE(store.open(true).ok);
    populate(store, 22, 3);
    std::string err;
    ASSERT_TRUE(store.compact(&err)) << err;
  }
  std::vector<u8> pack = read_all(dir.path + "/corpus.pack");
  pack[pack.size() / 2] ^= 0xFF;
  write_all(dir.path + "/corpus.pack", pack);
  CorpusStore probe(dir.path);
  FsckReport rep = probe.fsck();
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(rep.errors.empty());
}

}  // namespace
}  // namespace bigmap::corpus
