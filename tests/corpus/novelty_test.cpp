// NoveltyOracle tests: the differential property (an oracle's admit()
// verdict must equal the interesting() verdict of an Executor with the
// same geometry fed the same sequence), determinism across replays, and
// the monotone-coverage / stats invariants.
#include "corpus/novelty.h"

#include <gtest/gtest.h>

#include "core/two_level_map.h"
#include "fuzzer/executor.h"
#include "target/generator.h"
#include "util/hash.h"

namespace bigmap::corpus {
namespace {

GeneratedTarget small_target(u64 seed) {
  GeneratorParams gp;
  gp.name = "oracle_t";
  gp.seed = seed;
  gp.live_blocks = 120;
  gp.num_bugs = 2;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

OracleConfig oracle_config(u64 seed) {
  OracleConfig oc;
  oc.scheme = MapScheme::kTwoLevel;
  oc.metric = MetricKind::kEdge;
  oc.map.map_size = 1u << 14;
  oc.map.huge_pages = false;
  oc.seed = seed;
  return oc;
}

// The candidate stream a federation gateway would classify: seed corpus
// inputs, repeats, and a couple of crashing inputs.
std::vector<std::vector<u8>> candidate_stream(const GeneratedTarget& t,
                                              u64 seed) {
  std::vector<std::vector<u8>> inputs = make_seed_corpus(t, 24, seed);
  for (usize i = 0; i < 6; ++i) inputs.push_back(inputs[i]);  // repeats
  inputs.push_back(t.crashing_input(0));
  inputs.push_back(t.crashing_input(1));
  inputs.push_back(t.crashing_input(0));  // replayed crash: not novel
  return inputs;
}

// Differential: admit() must agree input-by-input with a reference
// Executor built exactly the way the oracle builds its own (same block-id
// seed derivation, geometry, budgets) — the oracle IS the executor's
// novelty verdict, nothing more.
TEST(NoveltyOracleTest, MatchesExecutorVerdictInputByInput) {
  const u64 seed = 17;
  const GeneratedTarget t = small_target(seed);
  const OracleConfig oc = oracle_config(seed);
  auto oracle = make_novelty_oracle(t.program, oc);
  ASSERT_NE(oracle, nullptr);

  BlockIdTable ids(t.program.blocks.size(), oc.map.map_size,
                   mix64(oc.seed ^ 0xB10C1D5ULL));
  Executor<TwoLevelCoverageMap, EdgeMetric> ref(t.program, oc.map, ids,
                                                oc.step_budget,
                                                oc.work_per_block);
  usize accepted = 0;
  const std::vector<std::vector<u8>> inputs = candidate_stream(t, seed);
  for (usize i = 0; i < inputs.size(); ++i) {
    OpTimeBreakdown timing;
    const auto out = ref.run(inputs[i], timing);
    const bool want = out.new_bits != NewBits::kNone ||
                      out.outcome_new_bits != NewBits::kNone;
    EXPECT_EQ(oracle->admit(inputs[i]), want) << "input " << i;
    if (want) ++accepted;
  }
  EXPECT_EQ(oracle->stats().checked, inputs.size());
  EXPECT_EQ(oracle->stats().accepted, accepted);
  EXPECT_EQ(oracle->stats().rejected, inputs.size() - accepted);
  EXPECT_EQ(oracle->covered(), ref.virgin_queue().count_covered());
}

// Same seed + same admission sequence => same verdicts. Federation drills
// rely on this to keep oracle-filtered exchanges reproducible.
TEST(NoveltyOracleTest, DeterministicAcrossReplays) {
  const GeneratedTarget t = small_target(5);
  const std::vector<std::vector<u8>> inputs = candidate_stream(t, 5);
  std::vector<bool> first;
  for (int round = 0; round < 2; ++round) {
    auto oracle = make_novelty_oracle(t.program, oracle_config(5));
    std::vector<bool> verdicts;
    for (const auto& in : inputs) verdicts.push_back(oracle->admit(in));
    if (round == 0) {
      first = verdicts;
    } else {
      EXPECT_EQ(verdicts, first);
    }
  }
}

// Re-admitting an already-admitted input is never novel: the model's
// virgin maps advanced when it was first accepted.
TEST(NoveltyOracleTest, ReadmissionIsRejected) {
  const GeneratedTarget t = small_target(9);
  auto oracle = make_novelty_oracle(t.program, oracle_config(9));
  const std::vector<std::vector<u8>> inputs = make_seed_corpus(t, 8, 9);
  for (const auto& in : inputs) oracle->admit(in);
  const usize covered = oracle->covered();
  for (const auto& in : inputs) {
    EXPECT_FALSE(oracle->admit(in));
  }
  EXPECT_EQ(oracle->covered(), covered);  // model did not move
}

// A different oracle seed means a different block-id table: the model only
// stands in for a fleet when seeded identically, so verdict streams from
// different seeds may legitimately diverge — but each remains internally
// deterministic and coverage stays monotone.
TEST(NoveltyOracleTest, CoverageMonotone) {
  const GeneratedTarget t = small_target(13);
  auto oracle = make_novelty_oracle(t.program, oracle_config(13));
  usize last = 0;
  for (const auto& in : candidate_stream(t, 13)) {
    oracle->admit(in);
    const usize now = oracle->covered();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GT(last, 0u);
}

// ------------------------------------------------------- delta sync --

TEST(OracleDeltaTest, CodecRoundTripsAndRejectsMalformed) {
  OracleDelta d;
  d.epoch = 7;
  d.seq = 3;
  d.map_kind = OracleDelta::kCrash;
  d.cells = {{2, 0xFE}, {9, 0x7F}, {1000, 0x00}};

  OracleDelta back;
  ASSERT_TRUE(decode_oracle_delta(encode_oracle_delta(d), &back));
  EXPECT_EQ(back.epoch, 7u);
  EXPECT_EQ(back.seq, 3u);
  EXPECT_EQ(back.map_kind, OracleDelta::kCrash);
  ASSERT_EQ(back.cells.size(), 3u);
  EXPECT_EQ(back.cells[1].pos, 9u);
  EXPECT_EQ(back.cells[1].value, 0x7F);

  // Truncation and trailing garbage are structural failures.
  std::vector<u8> bytes = encode_oracle_delta(d);
  OracleDelta junk;
  EXPECT_FALSE(decode_oracle_delta(
      std::span<const u8>(bytes.data(), bytes.size() - 1), &junk));
  bytes.push_back(0);
  EXPECT_FALSE(decode_oracle_delta(bytes, &junk));

  // Positions must be strictly ascending (unique).
  OracleDelta dup = d;
  dup.cells = {{5, 1}, {5, 2}};
  EXPECT_FALSE(decode_oracle_delta(encode_oracle_delta(dup), &junk));
  OracleDelta desc = d;
  desc.cells = {{9, 1}, {2, 2}};
  EXPECT_FALSE(decode_oracle_delta(encode_oracle_delta(desc), &junk));
}

// The tentpole acceptance differential: an oracle rebuilt purely from
// another's exported deltas — zero candidate executions — must issue the
// same admit() verdicts as one built from scratch by executing everything.
TEST(OracleDeltaTest, DeltaRebuiltOracleMatchesFromScratch) {
  const u64 seed = 21;
  const GeneratedTarget t = small_target(seed);
  const OracleConfig oc = oracle_config(seed);

  // Source oracle A executes the first half of the stream, exporting
  // incrementally like a spoke on a delta cadence.
  auto a = make_novelty_oracle(t.program, oc);
  auto b = make_novelty_oracle(t.program, oc);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  const std::vector<std::vector<u8>> stream = candidate_stream(t, seed);
  const usize half = stream.size() / 2;
  std::vector<OracleDelta> shipped = a->export_full();
  for (usize i = 0; i < half; ++i) {
    (void)a->admit(stream[i]);
    if (i % 4 == 3) {
      for (OracleDelta& d : a->export_delta()) {
        shipped.push_back(std::move(d));
      }
    }
  }
  for (OracleDelta& d : a->export_delta()) shipped.push_back(std::move(d));

  // Rebuild B by applying the shipped records — never executing.
  for (const OracleDelta& d : shipped) {
    ASSERT_TRUE(b->apply_delta(d));
  }
  EXPECT_EQ(b->stats().checked, 0u);  // the zero-execution guarantee
  EXPECT_GT(b->stats().deltas_applied, 0u);
  EXPECT_EQ(b->covered(), a->covered());

  // From here both must agree verdict-for-verdict on fresh candidates
  // (each admit advances both models identically, so they stay locked).
  for (usize i = half; i < stream.size(); ++i) {
    EXPECT_EQ(b->admit(stream[i]), a->admit(stream[i])) << "input " << i;
  }
}

TEST(OracleDeltaTest, ApplyIsIdempotentAndAtomicOnMalformed) {
  const GeneratedTarget t = small_target(3);
  auto a = make_novelty_oracle(t.program, oracle_config(3));
  auto b = make_novelty_oracle(t.program, oracle_config(3));
  for (const auto& in : make_seed_corpus(t, 8, 3)) (void)a->admit(in);
  const std::vector<OracleDelta> full = a->export_full();

  for (const OracleDelta& d : full) ASSERT_TRUE(b->apply_delta(d));
  const usize covered = b->covered();
  // AND-application: replaying the same records moves nothing.
  for (const OracleDelta& d : full) ASSERT_TRUE(b->apply_delta(d));
  EXPECT_EQ(b->covered(), covered);

  // A cell outside this geometry is refused with nothing applied.
  OracleDelta bad;
  bad.map_kind = OracleDelta::kQueue;
  bad.cells = {{0x7FFFFFFFu, 0}};
  EXPECT_FALSE(b->apply_delta(bad));
  EXPECT_EQ(b->covered(), covered);
  OracleDelta unknown;
  unknown.map_kind = 9;
  EXPECT_FALSE(b->apply_delta(unknown));
}

}  // namespace
}  // namespace bigmap::corpus
