// NoveltyOracle tests: the differential property (an oracle's admit()
// verdict must equal the interesting() verdict of an Executor with the
// same geometry fed the same sequence), determinism across replays, and
// the monotone-coverage / stats invariants.
#include "corpus/novelty.h"

#include <gtest/gtest.h>

#include "core/two_level_map.h"
#include "fuzzer/executor.h"
#include "target/generator.h"
#include "util/hash.h"

namespace bigmap::corpus {
namespace {

GeneratedTarget small_target(u64 seed) {
  GeneratorParams gp;
  gp.name = "oracle_t";
  gp.seed = seed;
  gp.live_blocks = 120;
  gp.num_bugs = 2;
  gp.bug_min_depth = 1;
  gp.bug_max_depth = 1;
  return generate_target(gp);
}

OracleConfig oracle_config(u64 seed) {
  OracleConfig oc;
  oc.scheme = MapScheme::kTwoLevel;
  oc.metric = MetricKind::kEdge;
  oc.map.map_size = 1u << 14;
  oc.map.huge_pages = false;
  oc.seed = seed;
  return oc;
}

// The candidate stream a federation gateway would classify: seed corpus
// inputs, repeats, and a couple of crashing inputs.
std::vector<std::vector<u8>> candidate_stream(const GeneratedTarget& t,
                                              u64 seed) {
  std::vector<std::vector<u8>> inputs = make_seed_corpus(t, 24, seed);
  for (usize i = 0; i < 6; ++i) inputs.push_back(inputs[i]);  // repeats
  inputs.push_back(t.crashing_input(0));
  inputs.push_back(t.crashing_input(1));
  inputs.push_back(t.crashing_input(0));  // replayed crash: not novel
  return inputs;
}

// Differential: admit() must agree input-by-input with a reference
// Executor built exactly the way the oracle builds its own (same block-id
// seed derivation, geometry, budgets) — the oracle IS the executor's
// novelty verdict, nothing more.
TEST(NoveltyOracleTest, MatchesExecutorVerdictInputByInput) {
  const u64 seed = 17;
  const GeneratedTarget t = small_target(seed);
  const OracleConfig oc = oracle_config(seed);
  auto oracle = make_novelty_oracle(t.program, oc);
  ASSERT_NE(oracle, nullptr);

  BlockIdTable ids(t.program.blocks.size(), oc.map.map_size,
                   mix64(oc.seed ^ 0xB10C1D5ULL));
  Executor<TwoLevelCoverageMap, EdgeMetric> ref(t.program, oc.map, ids,
                                                oc.step_budget,
                                                oc.work_per_block);
  usize accepted = 0;
  const std::vector<std::vector<u8>> inputs = candidate_stream(t, seed);
  for (usize i = 0; i < inputs.size(); ++i) {
    OpTimeBreakdown timing;
    const auto out = ref.run(inputs[i], timing);
    const bool want = out.new_bits != NewBits::kNone ||
                      out.outcome_new_bits != NewBits::kNone;
    EXPECT_EQ(oracle->admit(inputs[i]), want) << "input " << i;
    if (want) ++accepted;
  }
  EXPECT_EQ(oracle->stats().checked, inputs.size());
  EXPECT_EQ(oracle->stats().accepted, accepted);
  EXPECT_EQ(oracle->stats().rejected, inputs.size() - accepted);
  EXPECT_EQ(oracle->covered(), ref.virgin_queue().count_covered());
}

// Same seed + same admission sequence => same verdicts. Federation drills
// rely on this to keep oracle-filtered exchanges reproducible.
TEST(NoveltyOracleTest, DeterministicAcrossReplays) {
  const GeneratedTarget t = small_target(5);
  const std::vector<std::vector<u8>> inputs = candidate_stream(t, 5);
  std::vector<bool> first;
  for (int round = 0; round < 2; ++round) {
    auto oracle = make_novelty_oracle(t.program, oracle_config(5));
    std::vector<bool> verdicts;
    for (const auto& in : inputs) verdicts.push_back(oracle->admit(in));
    if (round == 0) {
      first = verdicts;
    } else {
      EXPECT_EQ(verdicts, first);
    }
  }
}

// Re-admitting an already-admitted input is never novel: the model's
// virgin maps advanced when it was first accepted.
TEST(NoveltyOracleTest, ReadmissionIsRejected) {
  const GeneratedTarget t = small_target(9);
  auto oracle = make_novelty_oracle(t.program, oracle_config(9));
  const std::vector<std::vector<u8>> inputs = make_seed_corpus(t, 8, 9);
  for (const auto& in : inputs) oracle->admit(in);
  const usize covered = oracle->covered();
  for (const auto& in : inputs) {
    EXPECT_FALSE(oracle->admit(in));
  }
  EXPECT_EQ(oracle->covered(), covered);  // model did not move
}

// A different oracle seed means a different block-id table: the model only
// stands in for a fleet when seeded identically, so verdict streams from
// different seeds may legitimately diverge — but each remains internally
// deterministic and coverage stays monotone.
TEST(NoveltyOracleTest, CoverageMonotone) {
  const GeneratedTarget t = small_target(13);
  auto oracle = make_novelty_oracle(t.program, oracle_config(13));
  usize last = 0;
  for (const auto& in : candidate_stream(t, 13)) {
    oracle->admit(in);
    const usize now = oracle->covered();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GT(last, 0u);
}

}  // namespace
}  // namespace bigmap::corpus
