// Tests for the DTLB model (§IV-E huge-page rationale).
#include "cachesim/tlb.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bigmap {
namespace {

TEST(TlbTest, RejectsBadConfig) {
  TlbConfig c;
  c.page_size = 3000;  // not a power of two
  EXPECT_THROW(Tlb t(c), std::invalid_argument);
  TlbConfig c2;
  c2.l1_entries = 10;
  c2.l1_ways = 4;  // 10 % 4 != 0
  EXPECT_THROW(Tlb t(c2), std::invalid_argument);
}

TEST(TlbTest, MissThenHitSamePage) {
  Tlb t(TlbConfig{});
  EXPECT_EQ(t.access(0x1000), TlbLevel::kPageWalk);
  EXPECT_EQ(t.access(0x1abc), TlbLevel::kL1);  // same 4k page
  EXPECT_EQ(t.access(0x2000), TlbLevel::kPageWalk);  // next page
  EXPECT_EQ(t.page_walks(), 2u);
}

TEST(TlbTest, HugePagesCoverWideRanges) {
  TlbConfig c;
  c.page_size = 2u << 20;
  Tlb t(c);
  t.access(0x0);
  // Anywhere within the same 2 MiB page hits L1.
  EXPECT_EQ(t.access(1u << 20), TlbLevel::kL1);
  EXPECT_EQ(t.access((2u << 20) - 1), TlbLevel::kL1);
  EXPECT_EQ(t.access(2u << 20), TlbLevel::kPageWalk);
}

TEST(TlbTest, EvictedEntryFallsToL2ThenWalk) {
  Tlb t(TlbConfig{});
  // Touch 128 distinct pages: more than L1's 64 entries, fewer than L2's
  // 512 — re-touching page 0 should hit L2.
  for (u64 p = 0; p < 128; ++p) t.access(p * 4096);
  EXPECT_EQ(t.access(0x0), TlbLevel::kL2);
  // Blow L2 as well.
  for (u64 p = 0; p < 1024; ++p) t.access(p * 4096);
  EXPECT_EQ(t.access(0x0), TlbLevel::kPageWalk);
}

TEST(TlbTest, ResetClears) {
  Tlb t(TlbConfig{});
  t.access(0x0);
  t.reset();
  EXPECT_EQ(t.accesses(), 0u);
  EXPECT_EQ(t.access(0x0), TlbLevel::kPageWalk);
}

TEST(TlbSimTest, FlatLargeMapWalksOn4kPages) {
  auto small_pages = simulate_map_tlb_pressure(
      /*two_level=*/false, 8u << 20, 20000, 4000, 4096, 4, 1);
  auto huge_pages = simulate_map_tlb_pressure(
      /*two_level=*/false, 8u << 20, 20000, 4000, 2u << 20, 4, 1);
  // 8MB map on 4k pages = 2048 pages per scan: heavy walking.
  EXPECT_GT(small_pages.walks_per_exec, 1000u);
  // On 2MB pages the same map is 4 pages: negligible.
  EXPECT_LT(huge_pages.walks_per_exec, 10u);
}

TEST(TlbSimTest, TwoLevelBarelyPressuresTlb) {
  auto r = simulate_map_tlb_pressure(
      /*two_level=*/true, 8u << 20, 20000, 4000, 4096, 4, 1);
  auto flat = simulate_map_tlb_pressure(
      /*two_level=*/false, 8u << 20, 20000, 4000, 4096, 4, 1);
  EXPECT_LT(r.walks_per_exec, flat.walks_per_exec / 4);
}

TEST(TlbSimTest, SmallMapFineEitherWay) {
  auto r4k = simulate_map_tlb_pressure(false, 64u << 10, 2000, 4000, 4096,
                                       4, 1);
  // 64kB map = 16 pages + virgin 16: fits the 64-entry L1 DTLB.
  EXPECT_LT(r4k.walk_rate, 0.02);
}

}  // namespace
}  // namespace bigmap
