// Tests for the parallel-fuzzing cache-contention model (Figure 9).
#include "cachesim/smp.h"

#include <gtest/gtest.h>

namespace bigmap {
namespace {

SmpParams params(MapScheme scheme, u32 instances) {
  SmpParams p;
  p.scheme = scheme;
  p.map_size = 2u << 20;
  p.used_keys = 20000;
  p.edges_per_exec = 3000;
  p.instances = instances;
  p.execs_per_instance = 4;
  p.seed = 3;
  return p;
}

TEST(SmpTest, SingleInstanceBaseline) {
  auto r = simulate_parallel_fuzzing(params(MapScheme::kFlat, 1));
  EXPECT_EQ(r.instances, 1u);
  EXPECT_GT(r.ns_per_exec, 0.0);
  EXPECT_GT(r.instance_throughput, 0.0);
  EXPECT_DOUBLE_EQ(r.aggregate_throughput, r.instance_throughput);
}

TEST(SmpTest, BigMapFasterPerInstance) {
  auto flat = simulate_parallel_fuzzing(params(MapScheme::kFlat, 1));
  auto two = simulate_parallel_fuzzing(params(MapScheme::kTwoLevel, 1));
  EXPECT_GT(two.instance_throughput, flat.instance_throughput * 3);
}

TEST(SmpTest, FlatScalingDegradesWithInstances) {
  // The Figure 9(a) shape: AFL's per-instance throughput drops as
  // instances contend for the shared L3 and memory bandwidth.
  auto n1 = simulate_parallel_fuzzing(params(MapScheme::kFlat, 1));
  auto n12 = simulate_parallel_fuzzing(params(MapScheme::kFlat, 12));
  EXPECT_LT(n12.instance_throughput, n1.instance_throughput * 0.7);
  // Aggregate stays well short of 12x.
  EXPECT_LT(n12.aggregate_throughput, n1.aggregate_throughput * 8.0);
}

TEST(SmpTest, TwoLevelScalesNearLinearly) {
  auto n1 = simulate_parallel_fuzzing(params(MapScheme::kTwoLevel, 1));
  auto n12 = simulate_parallel_fuzzing(params(MapScheme::kTwoLevel, 12));
  EXPECT_GT(n12.aggregate_throughput, n1.aggregate_throughput * 6.0);
}

TEST(SmpTest, SpeedupGrowsWithInstanceCount) {
  // Figure 9(b): BigMap's advantage over AFL grows super-linearly with
  // the number of instances.
  double prev_ratio = 0.0;
  for (u32 n : {1u, 4u, 8u}) {
    auto flat = simulate_parallel_fuzzing(params(MapScheme::kFlat, n));
    auto two = simulate_parallel_fuzzing(params(MapScheme::kTwoLevel, n));
    const double ratio =
        two.aggregate_throughput / flat.aggregate_throughput;
    EXPECT_GT(ratio, prev_ratio) << "n=" << n;
    prev_ratio = ratio;
  }
}

TEST(SmpTest, FlatSaturatesMemoryBandwidth) {
  auto n12 = simulate_parallel_fuzzing(params(MapScheme::kFlat, 12));
  auto two12 = simulate_parallel_fuzzing(params(MapScheme::kTwoLevel, 12));
  EXPECT_GT(n12.mem_utilization, 0.3);
  EXPECT_LT(two12.mem_utilization, n12.mem_utilization);
  EXPECT_GT(n12.mem_bytes_per_exec, two12.mem_bytes_per_exec * 10);
}

TEST(SmpTest, DeterministicInSeed) {
  auto a = simulate_parallel_fuzzing(params(MapScheme::kFlat, 4));
  auto b = simulate_parallel_fuzzing(params(MapScheme::kFlat, 4));
  EXPECT_DOUBLE_EQ(a.ns_per_exec, b.ns_per_exec);
  EXPECT_DOUBLE_EQ(a.l3_miss_rate, b.l3_miss_rate);
}

TEST(SmpTest, UsedKeysClampedToMapSize) {
  SmpParams p = params(MapScheme::kTwoLevel, 1);
  p.map_size = 1u << 10;
  p.used_keys = 1u << 20;
  auto r = simulate_parallel_fuzzing(p);  // must not hang or overflow
  EXPECT_GT(r.instance_throughput, 0.0);
}

}  // namespace
}  // namespace bigmap
