// Tests for the set-associative cache model and hierarchy.
#include "cachesim/cache.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bigmap {
namespace {

TEST(CacheTest, RejectsBadConfigs) {
  EXPECT_THROW(Cache({1024, 8, 60}), std::invalid_argument);  // line not pow2
  EXPECT_THROW(Cache({1024, 0, 64}), std::invalid_argument);  // 0 ways
  EXPECT_THROW(Cache({100, 8, 64}), std::invalid_argument);  // lines % ways
}

TEST(CacheTest, NonPowerOfTwoSetCountWorks) {
  // The Xeon E5645's 12 MB L3 has 12288 sets; modulo indexing handles it.
  Cache c({12 * 1024 * 1024, 16, 64});
  EXPECT_EQ(c.num_sets(), 12288u);
  EXPECT_FALSE(c.access(0x0));
  EXPECT_TRUE(c.access(0x0));
}

TEST(CacheTest, ColdMissThenHit) {
  Cache c({1024, 2, 64});
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1010));  // same 64B line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheTest, ContainsDoesNotDisturbState) {
  Cache c({1024, 2, 64});
  c.access(0x2000);
  const u64 h = c.hits(), m = c.misses();
  EXPECT_TRUE(c.contains(0x2000));
  EXPECT_FALSE(c.contains(0x9000));
  EXPECT_EQ(c.hits(), h);
  EXPECT_EQ(c.misses(), m);
}

TEST(CacheTest, LruEvictionOrder) {
  // Direct-mapped-per-set behaviour with 2 ways: fill a set with two lines,
  // touch the first, insert a third — the second (least recent) is evicted.
  Cache c({1024, 2, 64});  // 8 sets
  const u64 set_stride = 8 * 64;
  const u64 a = 0, b = set_stride, d = 2 * set_stride;  // same set 0
  c.access(a);
  c.access(b);
  c.access(a);  // a most recent
  c.access(d);  // evicts b
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(CacheTest, CapacityLines) {
  Cache c({32 * 1024, 8, 64});
  EXPECT_EQ(c.capacity_lines(), 512u);
  EXPECT_EQ(c.num_sets(), 64u);
}

TEST(CacheTest, SequentialScanLargerThanCacheMissesEveryLine) {
  Cache c({1024, 2, 64});
  const usize lines = 64;  // 4 KiB scan through a 1 KiB cache
  for (usize i = 0; i < lines; ++i) c.access(i * 64);
  EXPECT_EQ(c.misses(), lines);
  // Second pass also misses everything (no reuse fits).
  for (usize i = 0; i < lines; ++i) c.access(i * 64);
  EXPECT_EQ(c.misses(), 2 * lines);
}

TEST(CacheTest, SmallWorkingSetAllHitsAfterWarmup) {
  Cache c({32 * 1024, 8, 64});
  for (int round = 0; round < 4; ++round) {
    for (u64 a = 0; a < 8 * 1024; a += 64) c.access(a);
  }
  // 128 cold misses, everything else hits.
  EXPECT_EQ(c.misses(), 128u);
  EXPECT_EQ(c.hits(), 3u * 128u);
}

TEST(CacheTest, ResidentLinesInRange) {
  Cache c({1024, 2, 64});
  c.access(0x0);
  c.access(0x40);
  c.access(0x10000);
  EXPECT_EQ(c.resident_lines_in(0x0, 0x80), 2u);
  EXPECT_EQ(c.resident_lines_in(0x10000, 0x10040), 1u);
  EXPECT_EQ(c.resident_lines_in(0x20000, 0x30000), 0u);
}

TEST(CacheTest, ResetClearsEverything) {
  Cache c({1024, 2, 64});
  c.access(0x0);
  c.reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.contains(0x0));
}

TEST(CacheHierarchyTest, XeonConfigMatchesPaperTestbed) {
  auto h = CacheHierarchy::xeon_e5645();
  EXPECT_EQ(h.l1().config().size_bytes, 32u * 1024);
  EXPECT_EQ(h.l2().config().size_bytes, 256u * 1024);
  EXPECT_EQ(h.l3().config().size_bytes, 12u * 1024 * 1024);
}

TEST(CacheHierarchyTest, MissesCascade) {
  auto h = CacheHierarchy::xeon_e5645();
  EXPECT_EQ(h.access(0x1234), HitLevel::kMemory);  // cold
  EXPECT_EQ(h.access(0x1234), HitLevel::kL1);      // now in L1
  EXPECT_EQ(h.memory_accesses(), 1u);
}

TEST(CacheHierarchyTest, L1EvictionFallsBackToL2) {
  auto h = CacheHierarchy::xeon_e5645();
  h.access(0x0);
  // Blow L1 (32k) but stay within L2 (256k).
  for (u64 a = 64; a < 64 * 1024; a += 64) h.access(a);
  EXPECT_EQ(h.access(0x0), HitLevel::kL2);
}

TEST(CacheHierarchyTest, NontemporalStoresBypass) {
  auto h = CacheHierarchy::xeon_e5645();
  for (u64 a = 0; a < 1 << 20; a += 64) h.access_nontemporal(a);
  EXPECT_EQ(h.nt_stores(), (1u << 20) / 64);
  EXPECT_EQ(h.l1().accesses(), 0u);
  EXPECT_EQ(h.memory_accesses(), 0u);
}

TEST(CacheHierarchyTest, ResetClearsAllLevels) {
  auto h = CacheHierarchy::xeon_e5645();
  h.access(0x0);
  h.reset();
  EXPECT_EQ(h.l1().accesses(), 0u);
  EXPECT_EQ(h.memory_accesses(), 0u);
  EXPECT_EQ(h.access(0x0), HitLevel::kMemory);
}

}  // namespace
}  // namespace bigmap
