// Tests for the map-operation cache-behaviour simulation (Table I).
#include "cachesim/mapsim.h"

#include <gtest/gtest.h>

namespace bigmap {
namespace {

CacheSimParams params(MapScheme scheme, usize map_size) {
  CacheSimParams p;
  p.scheme = scheme;
  p.map_size = map_size;
  p.used_keys = 2000;
  p.edges_per_exec = 2000;
  p.iterations = 4;
  p.seed = 7;
  return p;
}

TEST(MapSimTest, ReportsAllOps) {
  auto rep = simulate_map_cache_behavior(params(MapScheme::kFlat, 1u << 16));
  EXPECT_NE(rep.find("update"), nullptr);
  EXPECT_NE(rep.find("reset"), nullptr);
  EXPECT_NE(rep.find("classify"), nullptr);
  EXPECT_NE(rep.find("compare"), nullptr);
  EXPECT_NE(rep.find("hash"), nullptr);
  EXPECT_NE(rep.find("app"), nullptr);
  EXPECT_EQ(rep.find("nonexistent"), nullptr);
}

TEST(MapSimTest, UsedKeysClampedToMapSize) {
  CacheSimParams p = params(MapScheme::kTwoLevel, 1u << 10);
  p.used_keys = 1u << 16;
  auto rep = simulate_map_cache_behavior(p);
  EXPECT_EQ(rep.used_keys, 1u << 10);
}

TEST(MapSimTest, ScanAccessCountsScaleWithScheme) {
  // Flat scans the full 8 MB map; BigMap scans only the used region.
  auto flat =
      simulate_map_cache_behavior(params(MapScheme::kFlat, 8u << 20));
  auto two =
      simulate_map_cache_behavior(params(MapScheme::kTwoLevel, 8u << 20));
  EXPECT_GT(flat.find("classify")->accesses,
            two.find("classify")->accesses * 100);
  EXPECT_GT(flat.find("compare")->accesses,
            two.find("compare")->accesses * 100);
}

TEST(MapSimTest, BigMapScansHitL1AfterWarmup) {
  // Table I(b): BigMap's scans over the condensed region show high
  // locality — most accesses hit cache, few go to memory.
  auto rep =
      simulate_map_cache_behavior(params(MapScheme::kTwoLevel, 8u << 20));
  const auto* classify = rep.find("classify");
  EXPECT_LT(classify->memory_rate(), 0.05);
}

TEST(MapSimTest, FlatBigMapScansThrashOnLargeMaps) {
  // Table I(a): flat whole-map scans on an 8MB map exceed the LLC; a large
  // share of accesses reach memory.
  auto rep = simulate_map_cache_behavior(params(MapScheme::kFlat, 32u << 20));
  const auto* compare = rep.find("compare");
  // Every 64B line is touched once per scan per map; lines don't survive.
  EXPECT_GT(compare->memory_rate() +
                static_cast<double>(compare->l3_hits) / compare->accesses,
            0.05);
}

TEST(MapSimTest, AppMissRateWorseUnderFlatLargeMap) {
  // The pollution claim: the application's own working set suffers more
  // under the flat scheme's whole-map scans.
  auto flat =
      simulate_map_cache_behavior(params(MapScheme::kFlat, 8u << 20));
  auto two =
      simulate_map_cache_behavior(params(MapScheme::kTwoLevel, 8u << 20));
  EXPECT_GT(flat.app_miss_rate, two.app_miss_rate);
}

TEST(MapSimTest, NontemporalResetReducesPollution) {
  CacheSimParams with_nt = params(MapScheme::kFlat, 8u << 20);
  with_nt.nontemporal_reset = true;
  CacheSimParams without = params(MapScheme::kFlat, 8u << 20);

  auto rep_nt = simulate_map_cache_behavior(with_nt);
  auto rep_plain = simulate_map_cache_behavior(without);
  // Streaming stores never allocate: reset contributes no cache pressure.
  EXPECT_LE(rep_nt.app_miss_rate, rep_plain.app_miss_rate);
}

TEST(MapSimTest, SmallMapBothSchemesBehaveSimilarly) {
  // At 64 kB both schemes fit comfortably in L2: app miss rates converge
  // (the paper's "identical throughput at 64 kB" observation).
  auto flat =
      simulate_map_cache_behavior(params(MapScheme::kFlat, 1u << 16));
  auto two =
      simulate_map_cache_behavior(params(MapScheme::kTwoLevel, 1u << 16));
  EXPECT_NEAR(flat.app_miss_rate, two.app_miss_rate, 0.05);
}

TEST(MapSimTest, OccupancyBoundsSane) {
  auto rep = simulate_map_cache_behavior(params(MapScheme::kFlat, 2u << 20));
  EXPECT_GE(rep.l1_map_occupancy, 0.0);
  EXPECT_LE(rep.l1_map_occupancy, 1.0);
  EXPECT_GE(rep.l3_map_occupancy, 0.0);
  EXPECT_LE(rep.l3_map_occupancy, 1.0);
}

TEST(MapSimTest, FlatLargeMapOccupiesLLC) {
  // After whole-map scans, map data dominates the LLC under the flat
  // scheme (cache pollution, Table I(a) "High").
  auto flat =
      simulate_map_cache_behavior(params(MapScheme::kFlat, 8u << 20));
  auto two =
      simulate_map_cache_behavior(params(MapScheme::kTwoLevel, 8u << 20));
  EXPECT_GT(flat.l3_map_occupancy, 0.5);
  EXPECT_LT(two.l3_map_occupancy, flat.l3_map_occupancy);
}

TEST(MapSimTest, DeterministicInSeed) {
  auto a = simulate_map_cache_behavior(params(MapScheme::kFlat, 1u << 20));
  auto b = simulate_map_cache_behavior(params(MapScheme::kFlat, 1u << 20));
  EXPECT_EQ(a.find("update")->l1_hits, b.find("update")->l1_hits);
  EXPECT_EQ(a.app_miss_rate, b.app_miss_rate);
}

}  // namespace
}  // namespace bigmap
