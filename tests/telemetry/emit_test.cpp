// Golden-file tests pinning the fuzzer_stats / plot_data / BenchReport
// JSON formats byte-for-byte, plus StatsEmitter directory-tree writing.
#include "telemetry/emit.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "telemetry/bench_report.h"
#include "util/report.h"

namespace bigmap::telemetry {
namespace {

StatsSnapshot golden_snapshot() {
  StatsSnapshot s;
  s.instance_id = 2;
  s.kernel = "swar";
  s.relative_ms = 1500;
  s.execs = 12345;
  s.interesting = 67;
  s.crashes = 3;
  s.hangs = 1;
  s.trim_execs = 89;
  s.sync_published = 44;
  s.sync_imported = 21;
  s.faulted_execs = 5;
  s.injected_hangs = 2;
  s.restarts = 1;
  s.tracing_untraced_execs = 11000;
  s.tracing_traced_execs = 1345;
  s.tracing_oracle_fires = 70;
  s.tracing_reexec_ns = 654321;
  s.checkpoints_written = 7;
  s.checkpoints_loaded = 1;
  s.checkpoint_bytes = 4096;
  s.recovery_torn_tail = 1;
  s.recovery_bad_crc = 0;
  s.recovery_version_mismatch = 0;
  s.queue_depth = 70;
  s.covered_positions = 2111;
  s.map_positions = 65536;
  s.used_key = 2100;
  s.saturated_updates = 9;
  s.map_resets = 12345;
  s.map_classifies = 12345;
  s.map_compares = 12000;
  s.map_hashes = 400;
  s.execs_per_sec = 8230.0;
  s.execs_per_sec_now = 9100.5;
  return s;
}

TEST(FuzzerStatsGoldenTest, ExactFormat) {
  const std::string expected =
      "banner            : unit-test\n"
      "instance_id       : 2\n"
      "kernel            : swar\n"
      "relative_ms       : 1500\n"
      "execs_done        : 12345\n"
      "execs_per_sec     : 8230.00\n"
      "execs_per_sec_now : 9100.50\n"
      "paths_total       : 70\n"
      "paths_found       : 67\n"
      "crashes           : 3\n"
      "hangs             : 1\n"
      "covered_positions : 2111\n"
      "map_positions     : 65536\n"
      "map_density_pct   : 3.22\n"
      "used_key          : 2100\n"
      "saturated_updates : 9\n"
      "trim_execs        : 89\n"
      "sync_published    : 44\n"
      "sync_imported     : 21\n"
      "faulted_execs     : 5\n"
      "injected_hangs    : 2\n"
      "restarts          : 1\n"
      "tracing_untraced  : 11000\n"
      "tracing_traced    : 1345\n"
      "tracing_fires     : 70\n"
      "tracing_reexec_ns : 654321\n"
      "checkpoints_written: 7\n"
      "checkpoints_loaded: 1\n"
      "checkpoint_bytes  : 4096\n"
      "recovery_torn_tail: 1\n"
      "recovery_bad_crc  : 0\n"
      "recovery_version_mismatch: 0\n"
      "map_resets        : 12345\n"
      "map_classifies    : 12345\n"
      "map_compares      : 12000\n"
      "map_hashes        : 400\n";
  EXPECT_EQ(render_fuzzer_stats(golden_snapshot(), "unit-test"), expected);
}

TEST(FuzzerStatsGoldenTest, FleetMarkerRendersAsFleet) {
  StatsSnapshot s = golden_snapshot();
  s.instance_id = 0xFFFFFFFFu;
  const std::string out = render_fuzzer_stats(s, "b");
  EXPECT_NE(out.find("instance_id       : fleet\n"), std::string::npos);
}

TEST(PlotDataGoldenTest, HeaderMatchesRowOrder) {
  EXPECT_EQ(plot_data_header(),
            "# relative_ms, execs_done, execs_per_sec, execs_per_sec_now, "
            "paths_total, covered_positions, map_density_pct, used_key, "
            "saturated_updates, crashes, hangs, restarts\n");
}

TEST(PlotDataGoldenTest, ExactRow) {
  EXPECT_EQ(render_plot_data_row(golden_snapshot()),
            "1500, 12345, 8230.00, 9100.50, 70, 2111, 3.22, 2100, 9, 3, 1, "
            "1\n");
}

TEST(PlotDataGoldenTest, SeriesIsHeaderPlusRows) {
  StatsSnapshot a = golden_snapshot();
  StatsSnapshot b = golden_snapshot();
  b.relative_ms = 3000;
  b.execs = 24690;
  const std::string out = render_plot_data({a, b});
  EXPECT_EQ(out, plot_data_header() + render_plot_data_row(a) +
                     render_plot_data_row(b));
}

TEST(BenchReportGoldenTest, ExactJson) {
  BenchReport report("unit", 0.5);
  report.set_meta("experiment", std::string("Exp"));
  report.set_meta("iterations", u64{12});
  report.set_meta("ratio", 1.5);
  TableWriter t({"A", "B"});
  t.add_row({"x", "1"});
  t.add_row({"y", "2"});
  report.add_table("tbl", t);

  const std::string expected =
      "{\"schema_version\":1,"
      "\"bench\":\"unit\","
      "\"scale\":0.5,"
      "\"meta\":{\"experiment\":\"Exp\",\"iterations\":12,\"ratio\":1.5},"
      "\"tables\":[{\"name\":\"tbl\",\"columns\":[\"A\",\"B\"],"
      "\"rows\":[[\"x\",\"1\"],[\"y\",\"2\"]]}],"
      "\"series\":[]}";
  EXPECT_EQ(report.to_json(), expected);
}

TEST(BenchReportGoldenTest, SeriesSnapshotFields) {
  BenchReport report("unit", 1.0);
  StatsSnapshot s = golden_snapshot();
  report.add_series("fleet", {s});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"series\":[{\"name\":\"fleet\",\"snapshots\":[{"),
            std::string::npos);
  EXPECT_NE(json.find("\"execs\":12345"), std::string::npos);
  EXPECT_NE(json.find("\"relative_ms\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"used_key\":2100"), std::string::npos);
  EXPECT_NE(json.find("\"kernel\":\"swar\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoints_written\":7"), std::string::npos);
  EXPECT_NE(json.find("\"recovery_torn_tail\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tracing_untraced_execs\":11000"),
            std::string::npos);
  EXPECT_NE(json.find("\"tracing_traced_execs\":1345"), std::string::npos);
  EXPECT_NE(json.find("\"tracing_oracle_fires\":70"), std::string::npos);
  EXPECT_NE(json.find("\"tracing_reexec_ns\":654321"), std::string::npos);
}

TEST(BenchReportTest, WriteFileRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bigmap_report_test.json")
          .string();
  BenchReport report("unit", 1.0);
  ASSERT_TRUE(report.write_file(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), report.to_json() + "\n");  // file gets a trailing \n
  std::filesystem::remove(path);
}

TEST(BenchReportTest, WriteFileFailsOnBadPath) {
  BenchReport report("unit", 1.0);
  EXPECT_FALSE(report.write_file("/nonexistent-dir-xyz/report.json"));
}

class StatsEmitterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("bigmap_emit_test_" +
              std::to_string(static_cast<unsigned>(::getpid()))))
                .string();
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  static std::string slurp(const std::string& path) {
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }

  std::string root_;
};

TEST_F(StatsEmitterTest, EmitSinkWritesBothFiles) {
  TelemetrySink sink(0);
  sink.execs.add(10);
  sink.stamp_at(100);

  StatsEmitter emitter(root_);
  ASSERT_TRUE(emitter.emit_sink(sink, "instance_0", "test-banner"));
  const std::string stats = slurp(root_ + "/instance_0/fuzzer_stats");
  EXPECT_NE(stats.find("banner            : test-banner\n"),
            std::string::npos);
  EXPECT_NE(stats.find("execs_done        : 10\n"), std::string::npos);
  const std::string plot = slurp(root_ + "/instance_0/plot_data");
  EXPECT_EQ(plot, render_plot_data(sink.series()));
}

TEST_F(StatsEmitterTest, EmitFleetWritesEveryInstanceAndAggregate) {
  FleetTelemetry fleet(2);
  fleet.instance(0).execs.add(30);
  fleet.instance(1).execs.add(12);
  fleet.instance(0).stamp_at(50);
  fleet.instance(1).stamp_at(50);
  fleet.stamp_fleet();

  StatsEmitter emitter(root_);
  ASSERT_TRUE(emitter.emit_fleet(fleet, "fleet-banner"));
  for (const char* sub : {"instance_0", "instance_1", "fleet"}) {
    EXPECT_TRUE(std::filesystem::exists(root_ + "/" + sub + "/fuzzer_stats"))
        << sub;
    EXPECT_TRUE(std::filesystem::exists(root_ + "/" + sub + "/plot_data"))
        << sub;
  }
  const std::string fleet_stats = slurp(root_ + "/fleet/fuzzer_stats");
  EXPECT_NE(fleet_stats.find("instance_id       : fleet\n"),
            std::string::npos);
  EXPECT_NE(fleet_stats.find("execs_done        : 42\n"), std::string::npos);
}

TEST_F(StatsEmitterTest, ReportsFailureOnUnwritableRoot) {
  TelemetrySink sink(0);
  StatsEmitter emitter("/proc/no-such-root");
  EXPECT_FALSE(emitter.emit_sink(sink, "x", "b"));
}

}  // namespace
}  // namespace bigmap::telemetry
