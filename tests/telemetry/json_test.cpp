// Golden-output tests for the dependency-free JSON writer: exact strings
// for every value type, comma placement, nesting, and escaping.
#include "telemetry/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace bigmap::telemetry {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world_123"), "hello world_123");
}

TEST(JsonEscapeTest, EscapesQuotesAndBackslash) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscapeTest, EscapesNamedControlCharacters) {
  EXPECT_EQ(json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
}

TEST(JsonEscapeTest, EscapesOtherControlCharactersAsUnicode) {
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonEscapeTest, LeavesUtf8BytesAlone) {
  EXPECT_EQ(json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriterTest, EmptyArray) {
  JsonWriter w;
  w.begin_array().end_array();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "[]");
}

TEST(JsonWriterTest, ObjectFieldsGetCommas) {
  JsonWriter w;
  w.begin_object()
      .field("a", u64{1})
      .field("b", "two")
      .field("c", true)
      .end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"two\",\"c\":true}");
}

TEST(JsonWriterTest, ArrayElementsGetCommas) {
  JsonWriter w;
  w.begin_array().value(u64{1}).value(u64{2}).value(u64{3}).end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriterTest, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("rows").begin_array();
  w.begin_array().value("x").value("y").end_array();
  w.begin_array().value("z").end_array();
  w.end_array();
  w.field("n", u64{2});
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "{\"rows\":[[\"x\",\"y\"],[\"z\"]],\"n\":2}");
}

TEST(JsonWriterTest, SignedAndUnsignedIntegers) {
  JsonWriter w;
  w.begin_array()
      .value(i64{-42})
      .value(u64{18446744073709551615ull})
      .value(int{-1})
      .value(u32{7})
      .end_array();
  EXPECT_EQ(w.str(), "[-42,18446744073709551615,-1,7]");
}

TEST(JsonWriterTest, Doubles) {
  JsonWriter w;
  w.begin_array().value(1.5).value(0.25).value(-3.0).end_array();
  EXPECT_EQ(w.str(), "[1.5,0.25,-3]");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterTest, ExplicitNull) {
  JsonWriter w;
  w.begin_object().key("missing").null().end_object();
  EXPECT_EQ(w.str(), "{\"missing\":null}");
}

TEST(JsonWriterTest, StringValuesAreEscaped) {
  JsonWriter w;
  w.begin_object().field("msg", "line1\nline2 \"quoted\"").end_object();
  EXPECT_EQ(w.str(), "{\"msg\":\"line1\\nline2 \\\"quoted\\\"\"}");
}

TEST(JsonWriterTest, KeysAreEscaped) {
  JsonWriter w;
  w.begin_object().field("we\"ird", u64{1}).end_object();
  EXPECT_EQ(w.str(), "{\"we\\\"ird\":1}");
}

TEST(JsonWriterTest, NotCompleteUntilClosed) {
  JsonWriter w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

TEST(JsonWriterTest, ScalarTopLevelIsComplete) {
  JsonWriter w;
  w.value(u64{5});
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "5");
}

}  // namespace
}  // namespace bigmap::telemetry
