// TelemetrySink / FleetTelemetry: snapshot assembly, series monotonicity,
// rate computation, and the fleet-total invariant the fig9 bench checks
// (sum of per-instance latest snapshots == fleet total). Concurrent
// stamping while counters are hammered runs under TSan in CI.
#include "telemetry/sink.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bigmap::telemetry {
namespace {

TEST(SinkTest, LiveSnapshotReflectsCounters) {
  TelemetrySink sink(3);
  sink.execs.add(100);
  sink.interesting.add(5);
  sink.crashes.add(2);
  sink.queue_depth.set(7);
  sink.used_key.set(1234);

  StatsSnapshot s = sink.live_at(2000);
  EXPECT_EQ(s.instance_id, 3u);
  EXPECT_EQ(s.relative_ms, 2000u);
  EXPECT_EQ(s.execs, 100u);
  EXPECT_EQ(s.interesting, 5u);
  EXPECT_EQ(s.crashes, 2u);
  EXPECT_EQ(s.queue_depth, 7u);
  EXPECT_EQ(s.used_key, 1234u);
  EXPECT_DOUBLE_EQ(s.execs_per_sec, 50.0);  // 100 execs / 2 s
}

TEST(SinkTest, LiveDoesNotAppendToSeries) {
  TelemetrySink sink;
  sink.live();
  EXPECT_EQ(sink.series_size(), 0u);
}

TEST(SinkTest, StampAppendsToSeries) {
  TelemetrySink sink;
  sink.execs.add(10);
  sink.stamp_at(100);
  sink.execs.add(10);
  sink.stamp_at(200);
  auto series = sink.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].execs, 10u);
  EXPECT_EQ(series[1].execs, 20u);
}

TEST(SinkTest, SeriesTimestampsAreMonotone) {
  TelemetrySink sink;
  sink.stamp_at(500);
  sink.stamp_at(100);  // clock skew / restart: clamped, never backwards
  sink.stamp_at(700);
  auto series = sink.series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_LE(series[0].relative_ms, series[1].relative_ms);
  EXPECT_LE(series[1].relative_ms, series[2].relative_ms);
}

TEST(SinkTest, SeriesCountersAreMonotone) {
  TelemetrySink sink;
  for (int i = 0; i < 5; ++i) {
    sink.execs.add(100);
    sink.crashes.add(1);
    sink.stamp_at(static_cast<u64>(i) * 50);
  }
  auto series = sink.series();
  ASSERT_EQ(series.size(), 5u);
  for (usize i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].execs, series[i - 1].execs);
    EXPECT_GE(series[i].crashes, series[i - 1].crashes);
  }
}

TEST(SinkTest, InstantaneousRateUsesPreviousSnapshot) {
  TelemetrySink sink;
  sink.execs.add(100);
  sink.stamp_at(1000);  // lifetime: 100 execs in 1 s
  sink.execs.add(300);
  StatsSnapshot s = sink.stamp_at(2000);  // +300 execs in +1 s
  EXPECT_DOUBLE_EQ(s.execs_per_sec, 200.0);
  EXPECT_DOUBLE_EQ(s.execs_per_sec_now, 300.0);
}

TEST(SinkTest, FirstStampRateEqualsLifetimeRate) {
  TelemetrySink sink;
  sink.execs.add(50);
  StatsSnapshot s = sink.stamp_at(500);
  EXPECT_DOUBLE_EQ(s.execs_per_sec, s.execs_per_sec_now);
}

TEST(SinkTest, LatestFallsBackToLiveWhenUnstamped) {
  TelemetrySink sink(9);
  sink.execs.add(42);
  StatsSnapshot s = sink.latest();
  EXPECT_EQ(s.instance_id, 9u);
  EXPECT_EQ(s.execs, 42u);
}

TEST(SinkTest, ConcurrentCountingAndStampingSumsExactly) {
  constexpr int kThreads = 4;
  constexpr u64 kPerThread = 10000;
  TelemetrySink sink;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sink] {
      for (u64 i = 0; i < kPerThread; ++i) {
        sink.execs.add();
        sink.exec_ns.record(100);
      }
    });
  }
  std::thread stamper([&sink] {
    for (int i = 0; i < 50; ++i) sink.stamp();
  });
  for (auto& w : workers) w.join();
  stamper.join();
  sink.stamp();
  EXPECT_EQ(sink.latest().execs, kThreads * kPerThread);
  EXPECT_EQ(sink.exec_ns.count(), kThreads * kPerThread);
  // Stamped exec counts never decrease even under concurrent stamping.
  auto series = sink.series();
  for (usize i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].execs, series[i - 1].execs);
  }
}

TEST(FleetTest, InstanceSinksCarryTheirIds) {
  FleetTelemetry fleet(3);
  EXPECT_EQ(fleet.num_instances(), 3u);
  for (u32 i = 0; i < 3; ++i) {
    EXPECT_EQ(fleet.instance(i).instance_id(), i);
  }
}

TEST(FleetTest, FleetTotalSumsInstanceLatest) {
  FleetTelemetry fleet(3);
  for (u32 i = 0; i < 3; ++i) {
    fleet.instance(i).execs.add((i + 1) * 100);
    fleet.instance(i).crashes.add(i);
    fleet.instance(i).queue_depth.set(10);
    fleet.instance(i).stamp_at(100 * (i + 1));
  }
  StatsSnapshot total = fleet.fleet_total();
  EXPECT_EQ(total.instance_id, 0xFFFFFFFFu);
  EXPECT_EQ(total.execs, 600u);
  EXPECT_EQ(total.crashes, 3u);
  EXPECT_EQ(total.queue_depth, 30u);  // gauges sum across the fleet
  EXPECT_EQ(total.relative_ms, 300u);
}

TEST(FleetTest, FleetTotalMatchesSumOfLatestSnapshots) {
  // The fig9 acceptance invariant: summed per-instance plot_data execs
  // (each instance's last stamped snapshot) equal the fleet total.
  FleetTelemetry fleet(4);
  for (u32 i = 0; i < 4; ++i) {
    fleet.instance(i).execs.add(1000 + i * 37);
    fleet.instance(i).stamp();
  }
  u64 plot_sum = 0;
  for (u32 i = 0; i < 4; ++i) plot_sum += fleet.instance(i).latest().execs;
  EXPECT_EQ(fleet.fleet_total().execs, plot_sum);
}

TEST(FleetTest, RestartCountersFlowIntoRegistryAndTotal) {
  FleetTelemetry fleet(2);
  fleet.restarts().add(3);
  fleet.instance(0).restarts.add(2);
  fleet.instance(1).restarts.add(1);
  EXPECT_EQ(fleet.registry().counter("supervisor.restarts").get(), 3u);
  EXPECT_EQ(fleet.fleet_total().restarts, 3u);
}

TEST(FleetTest, StampFleetBuildsSeries) {
  FleetTelemetry fleet(2);
  fleet.instance(0).execs.add(10);
  fleet.stamp_fleet();
  fleet.instance(1).execs.add(20);
  fleet.stamp_fleet();
  auto series = fleet.fleet_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].execs, 10u);
  EXPECT_EQ(series[1].execs, 30u);
  EXPECT_GE(series[1].relative_ms, series[0].relative_ms);
}

}  // namespace
}  // namespace bigmap::telemetry
